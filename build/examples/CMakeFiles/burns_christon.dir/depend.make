# Empty dependencies file for burns_christon.
# This may be replaced when dependencies are built.
