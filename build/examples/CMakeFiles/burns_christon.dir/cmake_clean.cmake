file(REMOVE_RECURSE
  "CMakeFiles/burns_christon.dir/burns_christon.cpp.o"
  "CMakeFiles/burns_christon.dir/burns_christon.cpp.o.d"
  "burns_christon"
  "burns_christon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burns_christon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
