# Empty dependencies file for boiler.
# This may be replaced when dependencies are built.
