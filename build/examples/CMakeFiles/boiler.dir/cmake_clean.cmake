file(REMOVE_RECURSE
  "CMakeFiles/boiler.dir/boiler.cpp.o"
  "CMakeFiles/boiler.dir/boiler.cpp.o.d"
  "boiler"
  "boiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
