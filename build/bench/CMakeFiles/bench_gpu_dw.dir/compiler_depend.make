# Empty compiler generated dependencies file for bench_gpu_dw.
# This may be replaced when dependencies are built.
