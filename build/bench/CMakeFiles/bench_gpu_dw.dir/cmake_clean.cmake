file(REMOVE_RECURSE
  "CMakeFiles/bench_gpu_dw.dir/bench_gpu_dw.cc.o"
  "CMakeFiles/bench_gpu_dw.dir/bench_gpu_dw.cc.o.d"
  "bench_gpu_dw"
  "bench_gpu_dw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gpu_dw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
