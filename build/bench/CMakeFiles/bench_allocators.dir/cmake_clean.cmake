file(REMOVE_RECURSE
  "CMakeFiles/bench_allocators.dir/bench_allocators.cc.o"
  "CMakeFiles/bench_allocators.dir/bench_allocators.cc.o.d"
  "bench_allocators"
  "bench_allocators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_allocators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
