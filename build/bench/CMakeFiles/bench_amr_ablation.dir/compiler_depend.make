# Empty compiler generated dependencies file for bench_amr_ablation.
# This may be replaced when dependencies are built.
