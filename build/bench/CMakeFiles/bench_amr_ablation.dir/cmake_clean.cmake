file(REMOVE_RECURSE
  "CMakeFiles/bench_amr_ablation.dir/bench_amr_ablation.cc.o"
  "CMakeFiles/bench_amr_ablation.dir/bench_amr_ablation.cc.o.d"
  "bench_amr_ablation"
  "bench_amr_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_amr_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
