# Empty dependencies file for bench_scaling_medium.
# This may be replaced when dependencies are built.
