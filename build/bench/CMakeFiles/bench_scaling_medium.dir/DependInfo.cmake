
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_scaling_medium.cc" "bench/CMakeFiles/bench_scaling_medium.dir/bench_scaling_medium.cc.o" "gcc" "bench/CMakeFiles/bench_scaling_medium.dir/bench_scaling_medium.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rmcrt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rmcrt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/rmcrt_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/rmcrt_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/rmcrt_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/rmcrt_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/rmcrt_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
