file(REMOVE_RECURSE
  "CMakeFiles/bench_scaling_medium.dir/bench_scaling_medium.cc.o"
  "CMakeFiles/bench_scaling_medium.dir/bench_scaling_medium.cc.o.d"
  "bench_scaling_medium"
  "bench_scaling_medium.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling_medium.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
