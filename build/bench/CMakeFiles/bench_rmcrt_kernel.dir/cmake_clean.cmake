file(REMOVE_RECURSE
  "CMakeFiles/bench_rmcrt_kernel.dir/bench_rmcrt_kernel.cc.o"
  "CMakeFiles/bench_rmcrt_kernel.dir/bench_rmcrt_kernel.cc.o.d"
  "bench_rmcrt_kernel"
  "bench_rmcrt_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rmcrt_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
