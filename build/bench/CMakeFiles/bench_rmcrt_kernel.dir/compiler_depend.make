# Empty compiler generated dependencies file for bench_rmcrt_kernel.
# This may be replaced when dependencies are built.
