# Empty dependencies file for bench_comm_pool.
# This may be replaced when dependencies are built.
