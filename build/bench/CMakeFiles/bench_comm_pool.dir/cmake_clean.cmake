file(REMOVE_RECURSE
  "CMakeFiles/bench_comm_pool.dir/bench_comm_pool.cc.o"
  "CMakeFiles/bench_comm_pool.dir/bench_comm_pool.cc.o.d"
  "bench_comm_pool"
  "bench_comm_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_comm_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
