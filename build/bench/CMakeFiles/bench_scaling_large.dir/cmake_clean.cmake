file(REMOVE_RECURSE
  "CMakeFiles/bench_scaling_large.dir/bench_scaling_large.cc.o"
  "CMakeFiles/bench_scaling_large.dir/bench_scaling_large.cc.o.d"
  "bench_scaling_large"
  "bench_scaling_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
