
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mem/allocation_tracker_test.cc" "tests/CMakeFiles/mem_test.dir/mem/allocation_tracker_test.cc.o" "gcc" "tests/CMakeFiles/mem_test.dir/mem/allocation_tracker_test.cc.o.d"
  "/root/repo/tests/mem/allocators_test.cc" "tests/CMakeFiles/mem_test.dir/mem/allocators_test.cc.o" "gcc" "tests/CMakeFiles/mem_test.dir/mem/allocators_test.cc.o.d"
  "/root/repo/tests/mem/heap_probe_test.cc" "tests/CMakeFiles/mem_test.dir/mem/heap_probe_test.cc.o" "gcc" "tests/CMakeFiles/mem_test.dir/mem/heap_probe_test.cc.o.d"
  "/root/repo/tests/mem/lockfree_pool_test.cc" "tests/CMakeFiles/mem_test.dir/mem/lockfree_pool_test.cc.o" "gcc" "tests/CMakeFiles/mem_test.dir/mem/lockfree_pool_test.cc.o.d"
  "/root/repo/tests/mem/mmap_arena_test.cc" "tests/CMakeFiles/mem_test.dir/mem/mmap_arena_test.cc.o" "gcc" "tests/CMakeFiles/mem_test.dir/mem/mmap_arena_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/rmcrt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/rmcrt_comm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
