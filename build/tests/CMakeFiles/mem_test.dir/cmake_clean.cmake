file(REMOVE_RECURSE
  "CMakeFiles/mem_test.dir/mem/allocation_tracker_test.cc.o"
  "CMakeFiles/mem_test.dir/mem/allocation_tracker_test.cc.o.d"
  "CMakeFiles/mem_test.dir/mem/allocators_test.cc.o"
  "CMakeFiles/mem_test.dir/mem/allocators_test.cc.o.d"
  "CMakeFiles/mem_test.dir/mem/heap_probe_test.cc.o"
  "CMakeFiles/mem_test.dir/mem/heap_probe_test.cc.o.d"
  "CMakeFiles/mem_test.dir/mem/lockfree_pool_test.cc.o"
  "CMakeFiles/mem_test.dir/mem/lockfree_pool_test.cc.o.d"
  "CMakeFiles/mem_test.dir/mem/mmap_arena_test.cc.o"
  "CMakeFiles/mem_test.dir/mem/mmap_arena_test.cc.o.d"
  "mem_test"
  "mem_test.pdb"
  "mem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
