
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/comm/communicator_test.cc" "tests/CMakeFiles/comm_test.dir/comm/communicator_test.cc.o" "gcc" "tests/CMakeFiles/comm_test.dir/comm/communicator_test.cc.o.d"
  "/root/repo/tests/comm/request_containers_test.cc" "tests/CMakeFiles/comm_test.dir/comm/request_containers_test.cc.o" "gcc" "tests/CMakeFiles/comm_test.dir/comm/request_containers_test.cc.o.d"
  "/root/repo/tests/comm/waitfree_pool_test.cc" "tests/CMakeFiles/comm_test.dir/comm/waitfree_pool_test.cc.o" "gcc" "tests/CMakeFiles/comm_test.dir/comm/waitfree_pool_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/rmcrt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/rmcrt_comm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
