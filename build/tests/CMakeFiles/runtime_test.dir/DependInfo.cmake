
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/runtime/data_archiver_test.cc" "tests/CMakeFiles/runtime_test.dir/runtime/data_archiver_test.cc.o" "gcc" "tests/CMakeFiles/runtime_test.dir/runtime/data_archiver_test.cc.o.d"
  "/root/repo/tests/runtime/data_warehouse_test.cc" "tests/CMakeFiles/runtime_test.dir/runtime/data_warehouse_test.cc.o" "gcc" "tests/CMakeFiles/runtime_test.dir/runtime/data_warehouse_test.cc.o.d"
  "/root/repo/tests/runtime/reductions_test.cc" "tests/CMakeFiles/runtime_test.dir/runtime/reductions_test.cc.o" "gcc" "tests/CMakeFiles/runtime_test.dir/runtime/reductions_test.cc.o.d"
  "/root/repo/tests/runtime/scheduler_sweep_test.cc" "tests/CMakeFiles/runtime_test.dir/runtime/scheduler_sweep_test.cc.o" "gcc" "tests/CMakeFiles/runtime_test.dir/runtime/scheduler_sweep_test.cc.o.d"
  "/root/repo/tests/runtime/scheduler_test.cc" "tests/CMakeFiles/runtime_test.dir/runtime/scheduler_test.cc.o" "gcc" "tests/CMakeFiles/runtime_test.dir/runtime/scheduler_test.cc.o.d"
  "/root/repo/tests/runtime/simulation_controller_test.cc" "tests/CMakeFiles/runtime_test.dir/runtime/simulation_controller_test.cc.o" "gcc" "tests/CMakeFiles/runtime_test.dir/runtime/simulation_controller_test.cc.o.d"
  "/root/repo/tests/runtime/task_graph_test.cc" "tests/CMakeFiles/runtime_test.dir/runtime/task_graph_test.cc.o" "gcc" "tests/CMakeFiles/runtime_test.dir/runtime/task_graph_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/rmcrt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/rmcrt_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/rmcrt_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/rmcrt_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rmcrt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/rmcrt_gpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
