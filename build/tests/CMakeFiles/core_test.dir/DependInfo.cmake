
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/dom_solver_test.cc" "tests/CMakeFiles/core_test.dir/core/dom_solver_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/dom_solver_test.cc.o.d"
  "/root/repo/tests/core/gpu_batch_trace_test.cc" "tests/CMakeFiles/core_test.dir/core/gpu_batch_trace_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/gpu_batch_trace_test.cc.o.d"
  "/root/repo/tests/core/multilevel_test.cc" "tests/CMakeFiles/core_test.dir/core/multilevel_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/multilevel_test.cc.o.d"
  "/root/repo/tests/core/pipeline_sweep_test.cc" "tests/CMakeFiles/core_test.dir/core/pipeline_sweep_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/pipeline_sweep_test.cc.o.d"
  "/root/repo/tests/core/pipeline_test.cc" "tests/CMakeFiles/core_test.dir/core/pipeline_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/pipeline_test.cc.o.d"
  "/root/repo/tests/core/problems_test.cc" "tests/CMakeFiles/core_test.dir/core/problems_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/problems_test.cc.o.d"
  "/root/repo/tests/core/radiometer_test.cc" "tests/CMakeFiles/core_test.dir/core/radiometer_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/radiometer_test.cc.o.d"
  "/root/repo/tests/core/ray_tracer_test.cc" "tests/CMakeFiles/core_test.dir/core/ray_tracer_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/ray_tracer_test.cc.o.d"
  "/root/repo/tests/core/spectral_test.cc" "tests/CMakeFiles/core_test.dir/core/spectral_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/spectral_test.cc.o.d"
  "/root/repo/tests/core/tracer_edge_cases_test.cc" "tests/CMakeFiles/core_test.dir/core/tracer_edge_cases_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/tracer_edge_cases_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/rmcrt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/rmcrt_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rmcrt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/rmcrt_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/rmcrt_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/rmcrt_grid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
