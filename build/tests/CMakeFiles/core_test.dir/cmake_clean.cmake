file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/dom_solver_test.cc.o"
  "CMakeFiles/core_test.dir/core/dom_solver_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/gpu_batch_trace_test.cc.o"
  "CMakeFiles/core_test.dir/core/gpu_batch_trace_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/multilevel_test.cc.o"
  "CMakeFiles/core_test.dir/core/multilevel_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/pipeline_sweep_test.cc.o"
  "CMakeFiles/core_test.dir/core/pipeline_sweep_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/pipeline_test.cc.o"
  "CMakeFiles/core_test.dir/core/pipeline_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/problems_test.cc.o"
  "CMakeFiles/core_test.dir/core/problems_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/radiometer_test.cc.o"
  "CMakeFiles/core_test.dir/core/radiometer_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/ray_tracer_test.cc.o"
  "CMakeFiles/core_test.dir/core/ray_tracer_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/spectral_test.cc.o"
  "CMakeFiles/core_test.dir/core/spectral_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/tracer_edge_cases_test.cc.o"
  "CMakeFiles/core_test.dir/core/tracer_edge_cases_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
