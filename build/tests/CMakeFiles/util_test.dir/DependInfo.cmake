
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/array3_test.cc" "tests/CMakeFiles/util_test.dir/util/array3_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/util/array3_test.cc.o.d"
  "/root/repo/tests/util/int_vector_test.cc" "tests/CMakeFiles/util_test.dir/util/int_vector_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/util/int_vector_test.cc.o.d"
  "/root/repo/tests/util/range_test.cc" "tests/CMakeFiles/util_test.dir/util/range_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/util/range_test.cc.o.d"
  "/root/repo/tests/util/rng_test.cc" "tests/CMakeFiles/util_test.dir/util/rng_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/util/rng_test.cc.o.d"
  "/root/repo/tests/util/stats_test.cc" "tests/CMakeFiles/util_test.dir/util/stats_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/util/stats_test.cc.o.d"
  "/root/repo/tests/util/thread_pool_test.cc" "tests/CMakeFiles/util_test.dir/util/thread_pool_test.cc.o" "gcc" "tests/CMakeFiles/util_test.dir/util/thread_pool_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/rmcrt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/rmcrt_comm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
