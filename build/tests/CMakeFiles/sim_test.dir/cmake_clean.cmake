file(REMOVE_RECURSE
  "CMakeFiles/sim_test.dir/sim/calibration_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/calibration_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/csv_export_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/csv_export_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/perf_model_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/perf_model_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/weak_scaling_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/weak_scaling_test.cc.o.d"
  "CMakeFiles/sim_test.dir/sim/workload_test.cc.o"
  "CMakeFiles/sim_test.dir/sim/workload_test.cc.o.d"
  "sim_test"
  "sim_test.pdb"
  "sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
