
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/grid/grid_test.cc" "tests/CMakeFiles/grid_test.dir/grid/grid_test.cc.o" "gcc" "tests/CMakeFiles/grid_test.dir/grid/grid_test.cc.o.d"
  "/root/repo/tests/grid/level_test.cc" "tests/CMakeFiles/grid_test.dir/grid/level_test.cc.o" "gcc" "tests/CMakeFiles/grid_test.dir/grid/level_test.cc.o.d"
  "/root/repo/tests/grid/load_balancer_test.cc" "tests/CMakeFiles/grid_test.dir/grid/load_balancer_test.cc.o" "gcc" "tests/CMakeFiles/grid_test.dir/grid/load_balancer_test.cc.o.d"
  "/root/repo/tests/grid/regrid_vtk_test.cc" "tests/CMakeFiles/grid_test.dir/grid/regrid_vtk_test.cc.o" "gcc" "tests/CMakeFiles/grid_test.dir/grid/regrid_vtk_test.cc.o.d"
  "/root/repo/tests/grid/variable_test.cc" "tests/CMakeFiles/grid_test.dir/grid/variable_test.cc.o" "gcc" "tests/CMakeFiles/grid_test.dir/grid/variable_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/rmcrt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/rmcrt_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/rmcrt_grid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
