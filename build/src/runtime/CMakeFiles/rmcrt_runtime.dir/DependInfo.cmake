
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/data_archiver.cc" "src/runtime/CMakeFiles/rmcrt_runtime.dir/data_archiver.cc.o" "gcc" "src/runtime/CMakeFiles/rmcrt_runtime.dir/data_archiver.cc.o.d"
  "/root/repo/src/runtime/scheduler.cc" "src/runtime/CMakeFiles/rmcrt_runtime.dir/scheduler.cc.o" "gcc" "src/runtime/CMakeFiles/rmcrt_runtime.dir/scheduler.cc.o.d"
  "/root/repo/src/runtime/simulation_controller.cc" "src/runtime/CMakeFiles/rmcrt_runtime.dir/simulation_controller.cc.o" "gcc" "src/runtime/CMakeFiles/rmcrt_runtime.dir/simulation_controller.cc.o.d"
  "/root/repo/src/runtime/task_graph.cc" "src/runtime/CMakeFiles/rmcrt_runtime.dir/task_graph.cc.o" "gcc" "src/runtime/CMakeFiles/rmcrt_runtime.dir/task_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/rmcrt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/rmcrt_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/rmcrt_grid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
