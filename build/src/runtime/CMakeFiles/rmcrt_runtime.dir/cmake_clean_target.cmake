file(REMOVE_RECURSE
  "librmcrt_runtime.a"
)
