# Empty compiler generated dependencies file for rmcrt_runtime.
# This may be replaced when dependencies are built.
