file(REMOVE_RECURSE
  "CMakeFiles/rmcrt_runtime.dir/data_archiver.cc.o"
  "CMakeFiles/rmcrt_runtime.dir/data_archiver.cc.o.d"
  "CMakeFiles/rmcrt_runtime.dir/scheduler.cc.o"
  "CMakeFiles/rmcrt_runtime.dir/scheduler.cc.o.d"
  "CMakeFiles/rmcrt_runtime.dir/simulation_controller.cc.o"
  "CMakeFiles/rmcrt_runtime.dir/simulation_controller.cc.o.d"
  "CMakeFiles/rmcrt_runtime.dir/task_graph.cc.o"
  "CMakeFiles/rmcrt_runtime.dir/task_graph.cc.o.d"
  "librmcrt_runtime.a"
  "librmcrt_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmcrt_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
