file(REMOVE_RECURSE
  "CMakeFiles/rmcrt_gpu.dir/gpu_device.cc.o"
  "CMakeFiles/rmcrt_gpu.dir/gpu_device.cc.o.d"
  "CMakeFiles/rmcrt_gpu.dir/gpu_task_executor.cc.o"
  "CMakeFiles/rmcrt_gpu.dir/gpu_task_executor.cc.o.d"
  "librmcrt_gpu.a"
  "librmcrt_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmcrt_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
