# Empty dependencies file for rmcrt_gpu.
# This may be replaced when dependencies are built.
