file(REMOVE_RECURSE
  "librmcrt_gpu.a"
)
