# Empty dependencies file for rmcrt_sim.
# This may be replaced when dependencies are built.
