file(REMOVE_RECURSE
  "CMakeFiles/rmcrt_sim.dir/calibration.cc.o"
  "CMakeFiles/rmcrt_sim.dir/calibration.cc.o.d"
  "CMakeFiles/rmcrt_sim.dir/perf_model.cc.o"
  "CMakeFiles/rmcrt_sim.dir/perf_model.cc.o.d"
  "CMakeFiles/rmcrt_sim.dir/scaling_study.cc.o"
  "CMakeFiles/rmcrt_sim.dir/scaling_study.cc.o.d"
  "librmcrt_sim.a"
  "librmcrt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmcrt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
