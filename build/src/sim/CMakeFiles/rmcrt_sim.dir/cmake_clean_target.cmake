file(REMOVE_RECURSE
  "librmcrt_sim.a"
)
