file(REMOVE_RECURSE
  "CMakeFiles/rmcrt_grid.dir/grid.cc.o"
  "CMakeFiles/rmcrt_grid.dir/grid.cc.o.d"
  "CMakeFiles/rmcrt_grid.dir/level.cc.o"
  "CMakeFiles/rmcrt_grid.dir/level.cc.o.d"
  "librmcrt_grid.a"
  "librmcrt_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmcrt_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
