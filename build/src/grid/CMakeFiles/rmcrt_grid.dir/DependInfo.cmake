
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grid/grid.cc" "src/grid/CMakeFiles/rmcrt_grid.dir/grid.cc.o" "gcc" "src/grid/CMakeFiles/rmcrt_grid.dir/grid.cc.o.d"
  "/root/repo/src/grid/level.cc" "src/grid/CMakeFiles/rmcrt_grid.dir/level.cc.o" "gcc" "src/grid/CMakeFiles/rmcrt_grid.dir/level.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/rmcrt_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
