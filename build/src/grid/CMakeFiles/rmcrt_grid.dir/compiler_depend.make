# Empty compiler generated dependencies file for rmcrt_grid.
# This may be replaced when dependencies are built.
