file(REMOVE_RECURSE
  "librmcrt_grid.a"
)
