file(REMOVE_RECURSE
  "librmcrt_comm.a"
)
