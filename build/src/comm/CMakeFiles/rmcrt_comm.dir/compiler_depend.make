# Empty compiler generated dependencies file for rmcrt_comm.
# This may be replaced when dependencies are built.
