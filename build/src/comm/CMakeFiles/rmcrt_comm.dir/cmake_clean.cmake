file(REMOVE_RECURSE
  "CMakeFiles/rmcrt_comm.dir/communicator.cc.o"
  "CMakeFiles/rmcrt_comm.dir/communicator.cc.o.d"
  "librmcrt_comm.a"
  "librmcrt_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmcrt_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
