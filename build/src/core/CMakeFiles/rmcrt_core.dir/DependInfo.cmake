
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dom_solver.cc" "src/core/CMakeFiles/rmcrt_core.dir/dom_solver.cc.o" "gcc" "src/core/CMakeFiles/rmcrt_core.dir/dom_solver.cc.o.d"
  "/root/repo/src/core/ray_tracer.cc" "src/core/CMakeFiles/rmcrt_core.dir/ray_tracer.cc.o" "gcc" "src/core/CMakeFiles/rmcrt_core.dir/ray_tracer.cc.o.d"
  "/root/repo/src/core/rmcrt_component.cc" "src/core/CMakeFiles/rmcrt_core.dir/rmcrt_component.cc.o" "gcc" "src/core/CMakeFiles/rmcrt_core.dir/rmcrt_component.cc.o.d"
  "/root/repo/src/core/spectral.cc" "src/core/CMakeFiles/rmcrt_core.dir/spectral.cc.o" "gcc" "src/core/CMakeFiles/rmcrt_core.dir/spectral.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/rmcrt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/rmcrt_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/rmcrt_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/rmcrt_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/rmcrt_comm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
