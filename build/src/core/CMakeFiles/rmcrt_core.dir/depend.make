# Empty dependencies file for rmcrt_core.
# This may be replaced when dependencies are built.
