file(REMOVE_RECURSE
  "CMakeFiles/rmcrt_core.dir/dom_solver.cc.o"
  "CMakeFiles/rmcrt_core.dir/dom_solver.cc.o.d"
  "CMakeFiles/rmcrt_core.dir/ray_tracer.cc.o"
  "CMakeFiles/rmcrt_core.dir/ray_tracer.cc.o.d"
  "CMakeFiles/rmcrt_core.dir/rmcrt_component.cc.o"
  "CMakeFiles/rmcrt_core.dir/rmcrt_component.cc.o.d"
  "CMakeFiles/rmcrt_core.dir/spectral.cc.o"
  "CMakeFiles/rmcrt_core.dir/spectral.cc.o.d"
  "librmcrt_core.a"
  "librmcrt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmcrt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
