file(REMOVE_RECURSE
  "librmcrt_core.a"
)
