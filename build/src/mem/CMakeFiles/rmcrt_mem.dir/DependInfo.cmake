
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/lockfree_pool.cc" "src/mem/CMakeFiles/rmcrt_mem.dir/lockfree_pool.cc.o" "gcc" "src/mem/CMakeFiles/rmcrt_mem.dir/lockfree_pool.cc.o.d"
  "/root/repo/src/mem/mmap_arena.cc" "src/mem/CMakeFiles/rmcrt_mem.dir/mmap_arena.cc.o" "gcc" "src/mem/CMakeFiles/rmcrt_mem.dir/mmap_arena.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
