# Empty compiler generated dependencies file for rmcrt_mem.
# This may be replaced when dependencies are built.
