file(REMOVE_RECURSE
  "librmcrt_mem.a"
)
