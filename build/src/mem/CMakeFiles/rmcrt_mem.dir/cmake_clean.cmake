file(REMOVE_RECURSE
  "CMakeFiles/rmcrt_mem.dir/lockfree_pool.cc.o"
  "CMakeFiles/rmcrt_mem.dir/lockfree_pool.cc.o.d"
  "CMakeFiles/rmcrt_mem.dir/mmap_arena.cc.o"
  "CMakeFiles/rmcrt_mem.dir/mmap_arena.cc.o.d"
  "librmcrt_mem.a"
  "librmcrt_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmcrt_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
