#!/usr/bin/env python3
"""Perf-regression gate for the committed bench JSON baselines.

Four modes, selected by --mode (default: kernel). Every mode's key
tables — which sections a JSON must carry, which floors apply, which
paper regimes bound a value — live in the single declarative SCHEMA
dict below; the check_* functions only interpret it.

kernel — compares a freshly measured bench_rmcrt_kernel sweep (e.g. the
CI --smoke run) against the committed baseline and fails on a
throughput collapse:

    check_bench_regression.py --current ci.json --baseline BENCH_rmcrt_kernel.json

  1. Every bitwise_match flag in the current run is true (thread sweep,
     layout A/B, segment microbench) — a perf number from a wrong answer
     is meaningless.
  2. Single-thread sweep Mseg/s >= tolerance * the baseline's. The
     default tolerance of 0.5 only catches collapses (an accidental
     debug-layout revert, an O(N) regression in the march loop), not
     machine-to-machine noise: CI runners and the baseline host differ,
     so tighter bounds would flake.
  3. The packed layout has not collapsed against unpacked. The segment
     microbench (a fixed ray bundle through the bare march loop) is the
     stable signal and must show speedup >= 1.0; the end-to-end divQ A/B
     shares its timing with per-ray sampling overhead and inherits
     single-core runner jitter, so it only fails below 0.75.
  4. The SIMD packet march has not collapsed against the scalar golden
     reference, with an ISA-dependent floor, and its worst per-ray
     deviation stays inside the documented ULP envelope. Hosts where
     Tracer::simdSupported() is false skip the perf floor but still must
     carry the section.

scaling — compares a freshly collected bench_scaling_{medium,large}
study against the committed BENCH_scaling.json and fails when the
paper's reproduced shape drifts: a patch-size crossover flips, a series
stops decreasing, the Titan-default Eq. 3 efficiencies leave the
paper's regime, or the Table I speedups leave 2x-5x. The study is
deterministic model arithmetic, so current-vs-baseline values must also
agree closely (they only differ by libm ulps across hosts):

    check_bench_regression.py --mode scaling --current scaling-smoke.json \\
        --baseline BENCH_scaling.json

service — gates the radiation-as-a-service load generator
(bench_service, DESIGN.md §16) against BENCH_service.json:

    check_bench_regression.py --mode service --current svc-smoke.json \\
        --baseline BENCH_service.json

  1. bitwise_match is true in both runs: every batched response was
     element-for-element identical to the naive one-solve-per-request
     baseline — fixed accuracy is the premise of the headline.
  2. Cross-request batching beats the per-request baseline
     (speedup >= 1.0; it is the point of the subsystem).
  3. Accounting reconciles in both sections: submitted ==
     completed + rejected and the benchmark load runs shed-free
     (rejected == 0 — admission caps are sized so the gate measures
     throughput, not shedding).
  4. The sharing contract held: the batched run staged exactly one
     coarse upload for its single scene generation while the
     per-request baseline paid one per request.
  5. Batched queries/s >= tolerance * the baseline's (same 0.5-style
     collapse floor as kernel mode; runners differ).

adaptive — gates the variance-adaptive ray-budget + spectral-banding
bench (bench_rmcrt_kernel --adaptive-rays, DESIGN.md §17) against
BENCH_adaptive.json:

    check_bench_regression.py --mode adaptive --current adaptive-smoke.json \\
        --baseline BENCH_adaptive.json

  1. The bitwise neutrality contract held, in this run and the committed
     one: adaptiveRays=false with the knobs set is the fixed fan,
     pilot == cap saturates to the fixed fan, and a single
     {weight=1, kappaScale=1} spectral band is the gray solver.
  2. The headline: total traced segments dropped by at least the floor
     (1.5x) against the fixed fan on the golden fixture...
  3. ...at equal accuracy: the Burns & Christon centerline relative-L2
     against the fixed-fan answer stays under the golden test's 1% band.
     (Both are deterministic given the fixture, so current and baseline
     must both pass; runs differ only in wall time.)
  4. The spectral section is sane: band count matches the baseline, the
     band loop traced more than the gray solve, and the adaptive band
     loop traced less than the fixed-fan band loop.
  5. Adaptive-solve Mseg/s >= tolerance * the baseline's (same 0.5-style
     collapse floor as kernel mode; runners differ).

--self-test runs the embedded fixture suite (pytest-style test_*
functions over synthetic JSON docs) and exits 0/1; CI runs it before
trusting any gate verdict.

Exit code 0 = pass, 1 = regression, 2 = unusable input. Stdlib only.
"""

import argparse
import json
import sys

# --------------------------------------------------------------------------
# Declarative per-mode schema: every key table, floor, and regime bound
# the gates consult. check_* functions read this; nothing else defines
# thresholds.
SCHEMA = {
    "kernel": {
        # Sections whose bitwise_match flag must be true when present.
        "bitwise_sections": ("layout", "segment_microbench"),
        # (section, floor, label): packed-vs-unpacked speedup floors.
        "speedup_floors": (
            ("segment_microbench", 1.0, "segment microbench"),
            ("layout", 0.75, "divQ layout A/B"),
        ),
        # Within-run SIMD-vs-scalar floor per reported ISA. The AVX-512
        # kernel marches two interleaved 8-lane packets and measures ~3x
        # on the committed baseline host, so 1.5 only catches collapses;
        # the AVX2 kernel is roughly at scalar parity on wide cores.
        "simd_speedup_floor": {"avx512": 1.5, "avx2": 0.6},
        # Loose ceiling on worst per-ray |simd-scalar|/|scalar|; the
        # simd_march_test harness enforces the real 4096-ULP bound.
        "simd_max_rel_err": 1e-9,
    },
    "scaling": {
        "models": ("titan_default", "calibrated"),
        "studies": ("medium", "large"),
        # Paper Section V headline efficiencies, gated on the
        # Titan-default model only. Slightly looser than the C++ shape
        # gate's +-0.06 so this script is never the flakier of the two.
        "paper_eff": {"eff_4096_to_8192": 0.96, "eff_4096_to_16384": 0.89},
        "paper_eff_tol": 0.08,
        "eff_keys": ("eff_4096_to_8192", "eff_4096_to_16384"),
        "comm_speedup_range": (2.0, 5.0),  # paper Table I: 2.27-4.40x
        # Current vs baseline: identical deterministic arithmetic
        # modulo libm.
        "value_rtol": 0.05,
    },
    "service": {
        "sections": ("batched", "per_request"),
        "required_numbers": ("queries_per_s", "p50_ms", "p99_ms",
                             "submitted", "completed", "rejected",
                             "coarse_uploads"),
        # Batching must not lose to one-solve-per-request.
        "speedup_floor": 1.0,
    },
    "adaptive": {
        # The headline: segments traced by the adaptive controller vs the
        # fixed fan on the golden fixture (the calibrated operating point
        # measures ~1.7x; 1.5 is the acceptance floor, not a noise bound —
        # budgets are deterministic, so this never flakes).
        "segment_reduction_floor": 1.5,
        # Burns & Christon centerline relative-L2 of the adaptive answer
        # against the fixed-fan answer: the golden test's 1% band.
        "rel_l2_centerline_max": 0.01,
        # (section, flag): bitwise neutrality gates that must be true.
        "bitwise_flags": (
            ("adaptive", "bitwise_off_identical"),
            ("adaptive", "bitwise_saturated_identical"),
            ("spectral", "bitwise_single_band"),
        ),
    },
}


class UnusableInput(Exception):
    """A bench JSON exists but is missing a key/sample the gate needs.

    Distinct from a regression: the measurement never happened (wrong
    bench binary, a mode like --snapshot-every that writes a different
    schema, a half-written file), so the gate must say exactly what is
    missing and exit 2, not crash with a traceback or report FAIL.
    """


def require_number(mapping, key, where):
    value = mapping.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise UnusableInput(
            f"{where}: missing or non-numeric key '{key}' "
            f"(got {value!r}) — wrong or incomplete bench JSON?")
    return float(value)


def require_section(doc, key, path):
    entry = doc.get(key)
    if not isinstance(entry, dict):
        raise UnusableInput(
            f"{path}: missing section '{key}' — wrong or incomplete "
            "bench JSON?")
    return entry


# --- kernel mode ------------------------------------------------------------

def single_thread_mseg(doc, path):
    for sample in doc.get("sweep", []):
        if sample.get("threads") == 1:
            return require_number(sample, "mseg_per_s",
                                  f"{path} sweep threads=1")
    raise UnusableInput(f"{path}: no threads==1 sample in 'sweep' — "
                        "wrong or incomplete bench JSON?")


def check_kernel_bitwise(doc, path):
    bad = []
    for sample in doc.get("sweep", []):
        if sample.get("bitwise_match") is not True:
            bad.append(f"sweep threads={sample.get('threads')}")
    for section in SCHEMA["kernel"]["bitwise_sections"]:
        entry = doc.get(section)
        if entry is not None and entry.get("bitwise_match") is not True:
            bad.append(section)
    return bad


def check_simd(current, baseline, cur_path, base_path):
    """Gate the simd_microbench section; raises UnusableInput if absent."""
    schema = SCHEMA["kernel"]
    failures = []
    for doc, path in ((current, cur_path), (baseline, base_path)):
        if not isinstance(doc.get("simd_microbench"), dict):
            raise UnusableInput(
                f"{path}: no 'simd_microbench' section — bench binary or "
                "baseline predates the SIMD packet march; refresh it with "
                "a full bench_rmcrt_kernel run")
    entry = current["simd_microbench"]
    where = f"{cur_path} simd_microbench"
    if entry.get("supported") is not True:
        print("simd microbench: host unsupported, perf floor skipped")
        return failures
    isa = entry.get("isa")
    floor = schema["simd_speedup_floor"].get(isa)
    if floor is None:
        raise UnusableInput(
            f"{where}: supported host reports unknown isa {isa!r}")
    speedup = require_number(entry, "speedup", where)
    scalar = require_number(entry, "scalar_mseg_per_s", where)
    simd = require_number(entry, "simd_mseg_per_s", where)
    rel_err = require_number(entry, "max_rel_err", where)
    verdict = "OK" if speedup >= floor else "FAIL"
    print(f"simd microbench [{isa}]: simd {simd:.2f} vs scalar "
          f"{scalar:.2f} Mseg/s ({speedup:.2f}x, floor {floor}) [{verdict}]")
    if speedup < floor:
        failures.append(
            f"simd packet march collapsed ({speedup:.2f}x < {floor}x "
            f"on {isa})")
    if rel_err > schema["simd_max_rel_err"]:
        failures.append(
            f"simd microbench max_rel_err {rel_err:.3e} exceeds "
            f"{schema['simd_max_rel_err']:.0e} — vector exp or lane "
            "masking broke")
    return failures


def check_kernel(current, baseline, cur_path, base_path, tolerance):
    failures = []
    bad_bitwise = check_kernel_bitwise(current, cur_path)
    if bad_bitwise:
        failures.append("bitwise mismatch in: " + ", ".join(bad_bitwise))

    cur = single_thread_mseg(current, cur_path)
    base = single_thread_mseg(baseline, base_path)
    floor = tolerance * base
    verdict = "OK" if cur >= floor else "FAIL"
    print(f"single-thread: current {cur:.2f} Mseg/s vs baseline "
          f"{base:.2f} Mseg/s (floor {floor:.2f}, x{tolerance}) "
          f"[{verdict}]")
    if cur < floor:
        failures.append(
            f"single-thread Mseg/s collapsed: {cur:.2f} < {floor:.2f}")

    for key, spd_floor, label in SCHEMA["kernel"]["speedup_floors"]:
        entry = current.get(key)
        if entry is None:
            continue
        where = f"{cur_path} {key}"
        speedup = require_number(entry, "speedup", where)
        packed = require_number(entry, "packed_mseg_per_s", where)
        unpacked = require_number(entry, "unpacked_mseg_per_s", where)
        verdict = "OK" if speedup >= spd_floor else "FAIL"
        print(f"{label}: packed {packed:.2f} "
              f"vs unpacked {unpacked:.2f} Mseg/s "
              f"({speedup:.2f}x, floor {spd_floor}) [{verdict}]")
        if speedup < spd_floor:
            failures.append(
                f"{label}: packed vs unpacked collapsed ({speedup:.2f}x "
                f"< {spd_floor}x)")

    failures.extend(check_simd(current, baseline, cur_path, base_path))
    return failures


# --- scaling mode -----------------------------------------------------------

def scaling_model(doc, name, path):
    models = doc.get("models")
    if not isinstance(models, dict) or not isinstance(models.get(name), dict):
        raise UnusableInput(
            f"{path}: missing scaling key 'models.{name}' — not a "
            "bench_scaling JSON? Regenerate with "
            "bench_scaling_large --smoke --json=...")
    return models[name]


def scaling_series(model, study, path):
    where = f"{path} {study}"
    entry = model.get(study)
    if not isinstance(entry, dict) or not isinstance(
            entry.get("series"), list) or not entry["series"]:
        raise UnusableInput(
            f"{where}: missing scaling key '{study}.series'")
    out = {}
    for se in entry["series"]:
        patch = int(require_number(se, "patch_size", where))
        pts = se.get("points")
        if not isinstance(pts, list) or not pts:
            raise UnusableInput(f"{where}: patch {patch} has no points")
        out[patch] = [(int(require_number(p, "gpus", where)),
                       require_number(p, "seconds", where)) for p in pts]
    return out


def check_scaling_model(current, baseline, name, cur_path, base_path):
    schema = SCHEMA["scaling"]
    rtol = schema["value_rtol"]
    failures = []
    cur = scaling_model(current, name, cur_path)
    base = scaling_model(baseline, name, base_path)
    for study in schema["studies"]:
        cur_series = scaling_series(cur, study, cur_path)
        base_series = scaling_series(base, study, base_path)
        if set(cur_series) != set(base_series):
            failures.append(
                f"{name} {study}: patch sizes {sorted(cur_series)} != "
                f"baseline {sorted(base_series)}")
            continue
        # Monotone decrease while over-decomposed, and agreement with
        # the baseline values point by point.
        for patch, pts in cur_series.items():
            for (ga, ta), (gb, tb) in zip(pts, pts[1:]):
                if tb >= ta:
                    failures.append(
                        f"{name} {study} {patch}^3: time stopped falling "
                        f"at {gb} GPUs ({tb:.4f} >= {ta:.4f} s)")
            for (g, t), (bg, bt) in zip(pts, base_series[patch]):
                if g != bg:
                    failures.append(
                        f"{name} {study} {patch}^3: GPU grid {g} != "
                        f"baseline {bg}")
                elif abs(t - bt) > rtol * bt:
                    failures.append(
                        f"{name} {study} {patch}^3 @{g}: {t:.4f} s drifted "
                        f"from baseline {bt:.4f} s (> {rtol:.0%})")
        # The paper's crossover: the largest feasible patch wins at every
        # GPU count, and the winner must match the baseline's.
        by_gpus = {}
        for patch, pts in cur_series.items():
            for g, t in pts:
                by_gpus.setdefault(g, {})[patch] = t
        for g, entries in sorted(by_gpus.items()):
            winner = min(entries, key=entries.get)
            if winner != max(entries):
                failures.append(
                    f"{name} {study} @{g} GPUs: {winner}^3 beats the "
                    f"largest feasible patch {max(entries)}^3 — crossover "
                    "flipped")
    eff = cur.get("efficiency_large_p16")
    if not isinstance(eff, dict):
        raise UnusableInput(
            f"{cur_path}: missing scaling key "
            f"'models.{name}.efficiency_large_p16'")
    for key in schema["eff_keys"]:
        e = require_number(eff, key, f"{cur_path} {name}")
        if name == "titan_default":
            ref = schema["paper_eff"][key]
            tol = schema["paper_eff_tol"]
            verdict = "OK" if abs(e - ref) <= tol else "FAIL"
            print(f"{name} {key}: {e:.4f} vs paper {ref:.2f} "
                  f"(+-{tol}) [{verdict}]")
            if abs(e - ref) > tol:
                failures.append(
                    f"{name} {key} = {e:.4f} left the paper regime "
                    f"{ref:.2f}+-{tol}")
        if e > 1.0 + 1e-9:
            failures.append(f"{name} {key} = {e:.4f} exceeds 1.0")
    lo, hi = schema["comm_speedup_range"]
    for row in cur.get("comm_study", []):
        s = require_number(row, "speedup", f"{cur_path} {name} comm_study")
        if not lo <= s <= hi:
            failures.append(
                f"{name} comm_study @{row.get('nodes')} nodes: speedup "
                f"{s:.2f}x outside [{lo}, {hi}] (paper Table I: 2.27-4.40x)")
    return failures


def check_scaling(current, baseline, cur_path, base_path, tolerance):
    del tolerance  # deterministic arithmetic; SCHEMA carries its own rtol
    failures = []
    for name in SCHEMA["scaling"]["models"]:
        failures.extend(
            check_scaling_model(current, baseline, name, cur_path,
                                base_path))
    return failures


# --- service mode -----------------------------------------------------------

def check_service(current, baseline, cur_path, base_path, tolerance):
    schema = SCHEMA["service"]
    failures = []

    # 1. Fixed accuracy: every batched response bitwise equal to the
    # naive per-request baseline, in this run and in the committed one.
    for doc, path in ((current, cur_path), (baseline, base_path)):
        if "bitwise_match" not in doc:
            raise UnusableInput(
                f"{path}: missing 'bitwise_match' — not a bench_service "
                "JSON? Regenerate with bench_service --smoke --json=...")
        if doc["bitwise_match"] is not True:
            failures.append(
                f"{path}: batched responses diverged from the "
                "per-request baseline (bitwise_match false)")

    sections = {}
    for name in schema["sections"]:
        entry = require_section(current, name, cur_path)
        where = f"{cur_path} {name}"
        vals = {key: require_number(entry, key, where)
                for key in schema["required_numbers"]}
        sections[name] = vals
        # 3. Accounting reconciles and the gate load ran shed-free.
        if vals["submitted"] != vals["completed"] + vals["rejected"]:
            failures.append(
                f"{name}: submitted {vals['submitted']:.0f} != completed "
                f"{vals['completed']:.0f} + rejected {vals['rejected']:.0f}")
        if vals["rejected"] != 0:
            failures.append(
                f"{name}: {vals['rejected']:.0f} requests shed — the gate "
                "load must run under its admission caps")
        if not vals["p99_ms"] >= vals["p50_ms"] > 0.0:
            failures.append(
                f"{name}: implausible latency quantiles p50 "
                f"{vals['p50_ms']:.3f} ms / p99 {vals['p99_ms']:.3f} ms")

    # 2. Batching is the point: it must not lose to per-request.
    speedup = require_number(current, "speedup", cur_path)
    floor = schema["speedup_floor"]
    verdict = "OK" if speedup >= floor else "FAIL"
    print(f"service batching: batched {sections['batched']['queries_per_s']:.1f}"
          f" vs per-request {sections['per_request']['queries_per_s']:.1f}"
          f" queries/s ({speedup:.2f}x, floor {floor}) [{verdict}]")
    if speedup < floor:
        failures.append(
            f"cross-request batching lost to one-solve-per-request "
            f"({speedup:.2f}x < {floor}x)")

    # 4. The sharing contract: one coarse upload per scene generation for
    # the batched run; one per request for the naive baseline.
    if sections["batched"]["coarse_uploads"] != 1:
        failures.append(
            f"batched run staged {sections['batched']['coarse_uploads']:.0f} "
            "coarse uploads for its single scene generation (want exactly 1 "
            "— the shared-upload contract broke)")
    if (sections["per_request"]["coarse_uploads"]
            != sections["per_request"]["completed"]):
        failures.append(
            f"per-request baseline staged "
            f"{sections['per_request']['coarse_uploads']:.0f} uploads for "
            f"{sections['per_request']['completed']:.0f} requests — it is "
            "no longer the one-upload-per-request contrast")

    # 5. Throughput collapse vs the committed baseline.
    base_batched = require_section(baseline, "batched", base_path)
    base_qps = require_number(base_batched, "queries_per_s",
                              f"{base_path} batched")
    cur_qps = sections["batched"]["queries_per_s"]
    qps_floor = tolerance * base_qps
    verdict = "OK" if cur_qps >= qps_floor else "FAIL"
    print(f"service throughput: current {cur_qps:.1f} vs baseline "
          f"{base_qps:.1f} queries/s (floor {qps_floor:.1f}, x{tolerance}) "
          f"[{verdict}]")
    if cur_qps < qps_floor:
        failures.append(
            f"batched queries/s collapsed: {cur_qps:.1f} < {qps_floor:.1f}")

    return failures


# --- adaptive mode ----------------------------------------------------------

def check_adaptive(current, baseline, cur_path, base_path, tolerance):
    schema = SCHEMA["adaptive"]
    failures = []

    # 1. Bitwise neutrality in both runs: a segment reduction measured by
    # a controller that perturbs the off path is meaningless.
    for doc, path in ((current, cur_path), (baseline, base_path)):
        for section, flag in schema["bitwise_flags"]:
            entry = require_section(doc, section, path)
            if entry.get(flag) is not True:
                failures.append(
                    f"{path} {section}: {flag} is not true — the "
                    "adaptive/spectral machinery perturbed a path that "
                    "must be bitwise the gray fixed fan")

    # 2+3. Segment reduction at equal accuracy, in both runs (the bench
    # is deterministic given the fixture; only wall time varies).
    floor = schema["segment_reduction_floor"]
    err_max = schema["rel_l2_centerline_max"]
    for doc, path in ((current, cur_path), (baseline, base_path)):
        entry = require_section(doc, "adaptive", path)
        where = f"{path} adaptive"
        reduction = require_number(entry, "segment_reduction", where)
        rel_l2 = require_number(entry, "rel_l2_centerline", where)
        verdict = "OK" if reduction >= floor and rel_l2 <= err_max else "FAIL"
        print(f"adaptive [{path}]: {reduction:.2f}x segment reduction "
              f"(floor {floor}) at centerline rel L2 {rel_l2:.3e} "
              f"(ceiling {err_max}) [{verdict}]")
        if reduction < floor:
            failures.append(
                f"{where}: segment reduction {reduction:.2f}x below the "
                f"{floor}x acceptance floor")
        if rel_l2 > err_max:
            failures.append(
                f"{where}: centerline rel L2 {rel_l2:.3e} exceeds the "
                f"golden {err_max} band — the budget controller is "
                "trading away accuracy")

    # 4. Spectral section shape.
    cur_sp = require_section(current, "spectral", cur_path)
    base_sp = require_section(baseline, "spectral", base_path)
    where = f"{cur_path} spectral"
    bands = require_number(cur_sp, "bands", where)
    if bands != require_number(base_sp, "bands", f"{base_path} spectral"):
        failures.append(
            f"spectral band count {bands:.0f} != baseline — not comparable")
    rates = cur_sp.get("band_mseg_per_s")
    if not isinstance(rates, list) or len(rates) != int(bands):
        raise UnusableInput(
            f"{where}: 'band_mseg_per_s' must list one rate per band "
            f"(got {rates!r})")
    gray = require_number(cur_sp, "gray_segments", where)
    band_seg = require_number(cur_sp, "band_segments", where)
    ad_band_seg = require_number(cur_sp, "adaptive_band_segments", where)
    if bands > 1 and not band_seg > gray:
        failures.append(
            f"{where}: {bands:.0f}-band loop traced {band_seg:.0f} segments "
            f"vs gray {gray:.0f} — the band loop is not running")
    if not ad_band_seg < band_seg:
        failures.append(
            f"{where}: adaptive band loop traced {ad_band_seg:.0f} segments "
            f"vs fixed-fan {band_seg:.0f} — budgets are not propagating "
            "through the spectral pipeline")

    # 5. Throughput collapse vs the committed baseline.
    cur_mseg = require_number(require_section(current, "adaptive", cur_path),
                              "adaptive_mseg_per_s", f"{cur_path} adaptive")
    base_mseg = require_number(
        require_section(baseline, "adaptive", base_path),
        "adaptive_mseg_per_s", f"{base_path} adaptive")
    mseg_floor = tolerance * base_mseg
    verdict = "OK" if cur_mseg >= mseg_floor else "FAIL"
    print(f"adaptive throughput: current {cur_mseg:.2f} vs baseline "
          f"{base_mseg:.2f} Mseg/s (floor {mseg_floor:.2f}, x{tolerance}) "
          f"[{verdict}]")
    if cur_mseg < mseg_floor:
        failures.append(
            f"adaptive-solve Mseg/s collapsed: {cur_mseg:.2f} < "
            f"{mseg_floor:.2f}")

    return failures


MODES = {
    "kernel": (check_kernel, "perf gate passed"),
    "scaling": (check_scaling, "scaling shape gate passed"),
    "service": (check_service, "service gate passed"),
    "adaptive": (check_adaptive, "adaptive sampling gate passed"),
}


# --- self-test --------------------------------------------------------------
# Pytest-style fixtures + test_* functions over synthetic docs, run by
# --self-test (and by CI before any gate verdict is trusted). Stdlib
# only, so no pytest dependency: tests assert, the runner collects.

def kernel_fixture(mseg=10.0, bitwise=True):
    return {
        "sweep": [{"threads": 1, "mseg_per_s": mseg,
                   "bitwise_match": bitwise}],
        "simd_microbench": {"supported": False},
    }


def scaling_fixture(seconds=4.0):
    def series():
        return {"series": [{"patch_size": 32,
                            "points": [{"gpus": 1, "seconds": seconds},
                                       {"gpus": 2, "seconds": seconds / 2}]}]}
    model = {
        "medium": series(),
        "large": series(),
        "efficiency_large_p16": {"eff_4096_to_8192": 0.96,
                                 "eff_4096_to_16384": 0.89},
        "comm_study": [{"nodes": 4, "speedup": 3.0}],
    }
    return {"models": {"titan_default": model,
                       "calibrated": json.loads(json.dumps(model))}}


def service_fixture(qps=2000.0, naive_qps=1000.0, uploads=1, rejected=0,
                    bitwise=True):
    def section(q, up):
        n = 96.0
        return {"queries_per_s": q, "p50_ms": 3.0, "p99_ms": 8.0,
                "submitted": n, "completed": n - rejected,
                "rejected": rejected, "coarse_uploads": up}
    return {
        "bitwise_match": bitwise,
        "speedup": qps / naive_qps,
        "batched": section(qps, uploads),
        "per_request": section(naive_qps, 96.0 - rejected),
    }


def adaptive_fixture(reduction=1.7, rel_l2=0.007, off=True, sat=True,
                     single=True, mseg=10.0, band_seg=3.0e8,
                     ad_band_seg=1.7e8):
    return {
        "adaptive": {
            "segment_reduction": reduction,
            "rel_l2_centerline": rel_l2,
            "adaptive_mseg_per_s": mseg,
            "bitwise_off_identical": off,
            "bitwise_saturated_identical": sat,
        },
        "spectral": {
            "bands": 3,
            "bitwise_single_band": single,
            "gray_segments": 1.2e8,
            "band_segments": band_seg,
            "adaptive_band_segments": ad_band_seg,
            "band_mseg_per_s": [10.0, 10.0, 10.0],
        },
    }


def test_kernel_pass():
    assert check_kernel(kernel_fixture(), kernel_fixture(), "cur", "base",
                        0.5) == []


def test_kernel_single_thread_collapse():
    fails = check_kernel(kernel_fixture(mseg=1.0), kernel_fixture(mseg=10.0),
                         "cur", "base", 0.5)
    assert any("collapsed" in f for f in fails), fails


def test_kernel_bitwise_mismatch():
    fails = check_kernel(kernel_fixture(bitwise=False), kernel_fixture(),
                         "cur", "base", 0.5)
    assert any("bitwise" in f for f in fails), fails


def test_kernel_missing_sweep_is_unusable():
    try:
        check_kernel({"simd_microbench": {"supported": False}},
                     kernel_fixture(), "cur", "base", 0.5)
    except UnusableInput:
        return
    raise AssertionError("missing sweep must raise UnusableInput")


def test_scaling_pass():
    assert check_scaling(scaling_fixture(), scaling_fixture(), "cur",
                         "base", 0.5) == []


def test_scaling_value_drift_fails():
    fails = check_scaling(scaling_fixture(seconds=6.0), scaling_fixture(),
                          "cur", "base", 0.5)
    assert any("drifted" in f for f in fails), fails


def test_scaling_missing_models_is_unusable():
    try:
        check_scaling({}, scaling_fixture(), "cur", "base", 0.5)
    except UnusableInput:
        return
    raise AssertionError("missing models must raise UnusableInput")


def test_service_pass():
    assert check_service(service_fixture(), service_fixture(), "cur",
                         "base", 0.5) == []


def test_service_batching_loses_fails():
    fails = check_service(service_fixture(qps=800.0), service_fixture(),
                          "cur", "base", 0.5)
    assert any("lost to one-solve-per-request" in f for f in fails), fails


def test_service_bitwise_false_fails():
    fails = check_service(service_fixture(bitwise=False), service_fixture(),
                          "cur", "base", 0.5)
    assert any("bitwise_match" in f for f in fails), fails


def test_service_shared_upload_contract():
    fails = check_service(service_fixture(uploads=5), service_fixture(),
                          "cur", "base", 0.5)
    assert any("shared-upload contract" in f for f in fails), fails


def test_service_shed_load_fails():
    fails = check_service(service_fixture(rejected=3), service_fixture(),
                          "cur", "base", 0.5)
    assert any("shed" in f for f in fails), fails


def test_service_throughput_collapse():
    fails = check_service(service_fixture(qps=1200.0, naive_qps=1000.0),
                          service_fixture(qps=5000.0, naive_qps=2500.0),
                          "cur", "base", 0.5)
    assert any("queries/s collapsed" in f for f in fails), fails


def test_service_missing_section_is_unusable():
    doc = service_fixture()
    del doc["batched"]
    try:
        check_service(doc, service_fixture(), "cur", "base", 0.5)
    except UnusableInput:
        return
    raise AssertionError("missing section must raise UnusableInput")


def test_adaptive_pass():
    assert check_adaptive(adaptive_fixture(), adaptive_fixture(), "cur",
                          "base", 0.5) == []


def test_adaptive_reduction_floor():
    fails = check_adaptive(adaptive_fixture(reduction=1.2),
                           adaptive_fixture(), "cur", "base", 0.5)
    assert any("acceptance floor" in f for f in fails), fails


def test_adaptive_error_ceiling():
    fails = check_adaptive(adaptive_fixture(rel_l2=0.02),
                           adaptive_fixture(), "cur", "base", 0.5)
    assert any("trading away accuracy" in f for f in fails), fails


def test_adaptive_bitwise_off_fails():
    fails = check_adaptive(adaptive_fixture(off=False), adaptive_fixture(),
                           "cur", "base", 0.5)
    assert any("bitwise_off_identical" in f for f in fails), fails


def test_adaptive_single_band_fails():
    fails = check_adaptive(adaptive_fixture(single=False),
                           adaptive_fixture(), "cur", "base", 0.5)
    assert any("bitwise_single_band" in f for f in fails), fails


def test_adaptive_spectral_budget_leak_fails():
    fails = check_adaptive(adaptive_fixture(ad_band_seg=3.0e8),
                           adaptive_fixture(), "cur", "base", 0.5)
    assert any("not propagating" in f for f in fails), fails


def test_adaptive_throughput_collapse():
    fails = check_adaptive(adaptive_fixture(mseg=1.0),
                           adaptive_fixture(mseg=10.0), "cur", "base", 0.5)
    assert any("Mseg/s collapsed" in f for f in fails), fails


def test_adaptive_missing_section_is_unusable():
    doc = adaptive_fixture()
    del doc["adaptive"]
    try:
        check_adaptive(doc, adaptive_fixture(), "cur", "base", 0.5)
    except UnusableInput:
        return
    raise AssertionError("missing section must raise UnusableInput")


def run_self_test():
    tests = sorted((name, fn) for name, fn in globals().items()
                   if name.startswith("test_") and callable(fn))
    failed = 0
    for name, fn in tests:
        try:
            fn()
        except Exception as e:  # noqa: BLE001 — report, keep running
            failed += 1
            print(f"self-test {name}: FAIL ({e})", file=sys.stderr)
        else:
            print(f"self-test {name}: ok")
    print(f"self-test: {len(tests) - failed}/{len(tests)} passed")
    return 1 if failed else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--mode", choices=sorted(MODES), default="kernel",
                    help="kernel: bench_rmcrt_kernel throughput gate; "
                         "scaling: bench_scaling_* shape gate; "
                         "service: bench_service batching gate; "
                         "adaptive: adaptive ray-budget + banding gate")
    ap.add_argument("--current",
                    help="JSON written by this run's bench binary")
    ap.add_argument("--baseline",
                    help="committed baseline JSON to compare against")
    ap.add_argument("--tolerance", type=float, default=0.5,
                    help="kernel/service: minimum fraction of the "
                         "baseline throughput that passes (default 0.5)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the embedded fixture suite and exit")
    args = ap.parse_args()

    if args.self_test:
        return run_self_test()
    if not args.current or not args.baseline:
        ap.error("--current and --baseline are required unless --self-test")

    try:
        with open(args.current) as f:
            current = json.load(f)
        with open(args.baseline) as f:
            baseline = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot load bench JSON: {e}", file=sys.stderr)
        return 2

    check, pass_message = MODES[args.mode]
    try:
        failures = check(current, baseline, args.current, args.baseline,
                         args.tolerance)
    except UnusableInput as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    if failures:
        for f in failures:
            print(f"REGRESSION: {f}", file=sys.stderr)
        return 1
    print(pass_message)
    return 0


if __name__ == "__main__":
    sys.exit(main())
