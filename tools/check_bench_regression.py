#!/usr/bin/env python3
"""Perf-regression gate for the committed bench JSON baselines.

Two modes, selected by --mode (default: kernel):

kernel — compares a freshly measured bench_rmcrt_kernel sweep (e.g. the
CI --smoke run) against the committed baseline and fails on a
throughput collapse:

    check_bench_regression.py --current ci.json --baseline BENCH_rmcrt_kernel.json

scaling — compares a freshly collected bench_scaling_{medium,large}
study against the committed BENCH_scaling.json and fails when the
paper's reproduced shape drifts: a patch-size crossover flips, a series
stops decreasing, the Titan-default Eq. 3 efficiencies leave the
paper's regime, or the Table I speedups leave 2x-5x. The study is
deterministic model arithmetic, so current-vs-baseline values must also
agree closely (they only differ by libm ulps across hosts):

    check_bench_regression.py --mode scaling --current scaling-smoke.json \\
        --baseline BENCH_scaling.json

Checks, in order:
  1. Every bitwise_match flag in the current run is true (thread sweep,
     layout A/B, segment microbench) — a perf number from a wrong answer
     is meaningless.
  2. Single-thread sweep Mseg/s >= tolerance * the baseline's. The
     default tolerance of 0.5 only catches collapses (an accidental
     debug-layout revert, an O(N) regression in the march loop), not
     machine-to-machine noise: CI runners and the baseline host differ,
     so tighter bounds would flake.
  3. The packed layout has not collapsed against unpacked. The segment
     microbench (a fixed ray bundle through the bare march loop) is the
     stable signal and must show speedup >= 1.0; the end-to-end divQ A/B
     shares its timing with per-ray sampling overhead and inherits
     single-core runner jitter, so it only fails below 0.75.
  4. The SIMD packet march has not collapsed against the scalar golden
     reference, with an ISA-dependent floor (the dual-packet AVX-512
     kernel must hold well above parity; the AVX2 fallback is roughly at
     parity, so only a collapse fails), and its worst per-ray deviation
     stays inside the documented ULP envelope. Hosts where
     Tracer::simdSupported() is false skip the perf floor but still must
     carry the section — a run without simd_microbench keys (an older
     bench binary, or a baseline predating the SIMD path) is unusable
     input, not a pass.

Exit code 0 = pass, 1 = regression, 2 = unusable input. Stdlib only.
"""

import argparse
import json
import sys


class UnusableInput(Exception):
    """A bench JSON exists but is missing a key/sample the gate needs.

    Distinct from a regression: the measurement never happened (wrong
    bench binary, a mode like --snapshot-every that writes a different
    schema, a half-written file), so the gate must say exactly what is
    missing and exit 2, not crash with a traceback or report FAIL.
    """


def require_number(mapping, key, where):
    value = mapping.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise UnusableInput(
            f"{where}: missing or non-numeric key '{key}' "
            f"(got {value!r}) — wrong or incomplete bench JSON?")
    return float(value)


def single_thread_mseg(doc, path):
    for sample in doc.get("sweep", []):
        if sample.get("threads") == 1:
            return require_number(sample, "mseg_per_s",
                                  f"{path} sweep threads=1")
    raise UnusableInput(f"{path}: no threads==1 sample in 'sweep' — "
                        "wrong or incomplete bench JSON?")


def check_bitwise(doc, path):
    bad = []
    for sample in doc.get("sweep", []):
        if sample.get("bitwise_match") is not True:
            bad.append(f"sweep threads={sample.get('threads')}")
    for section in ("layout", "segment_microbench"):
        entry = doc.get(section)
        if entry is not None and entry.get("bitwise_match") is not True:
            bad.append(section)
    return bad


# Within-run SIMD-vs-scalar floor per reported ISA. The AVX-512 kernel
# marches two interleaved 8-lane packets and measures ~3x on the
# committed baseline host, so 1.5 only catches collapses; the AVX2
# kernel is roughly at scalar parity on wide cores, so anything above a
# collapse passes.
SIMD_SPEEDUP_FLOOR = {"avx512": 1.5, "avx2": 0.6}

# Loose ceiling on the microbench's worst per-ray |simd-scalar|/|scalar|.
# The simd_march_test harness enforces the real 4096-ULP bound (~9e-13);
# this only rejects a broken vector exp or masking bug at a glance.
SIMD_MAX_REL_ERR = 1e-9


def check_simd(current, baseline, cur_path, base_path):
    """Gate the simd_microbench section; raises UnusableInput if absent."""
    failures = []
    for doc, path in ((current, cur_path), (baseline, base_path)):
        if not isinstance(doc.get("simd_microbench"), dict):
            raise UnusableInput(
                f"{path}: no 'simd_microbench' section — bench binary or "
                "baseline predates the SIMD packet march; refresh it with "
                "a full bench_rmcrt_kernel run")
    entry = current["simd_microbench"]
    where = f"{cur_path} simd_microbench"
    if entry.get("supported") is not True:
        print("simd microbench: host unsupported, perf floor skipped")
        return failures
    isa = entry.get("isa")
    floor = SIMD_SPEEDUP_FLOOR.get(isa)
    if floor is None:
        raise UnusableInput(
            f"{where}: supported host reports unknown isa {isa!r}")
    speedup = require_number(entry, "speedup", where)
    scalar = require_number(entry, "scalar_mseg_per_s", where)
    simd = require_number(entry, "simd_mseg_per_s", where)
    rel_err = require_number(entry, "max_rel_err", where)
    verdict = "OK" if speedup >= floor else "FAIL"
    print(f"simd microbench [{isa}]: simd {simd:.2f} vs scalar "
          f"{scalar:.2f} Mseg/s ({speedup:.2f}x, floor {floor}) [{verdict}]")
    if speedup < floor:
        failures.append(
            f"simd packet march collapsed ({speedup:.2f}x < {floor}x "
            f"on {isa})")
    if rel_err > SIMD_MAX_REL_ERR:
        failures.append(
            f"simd microbench max_rel_err {rel_err:.3e} exceeds "
            f"{SIMD_MAX_REL_ERR:.0e} — vector exp or lane masking broke")
    return failures


# --- scaling mode -----------------------------------------------------------

# Paper Section V headline efficiencies, gated on the Titan-default model
# only (the kernel-calibrated variant is slower per GPU, hence flatter;
# it gets shape checks, not absolute bounds). Slightly looser than the
# C++ shape gate's +-0.06 so this script is never the flakier of the two.
PAPER_EFF = {"eff_4096_to_8192": 0.96, "eff_4096_to_16384": 0.89}
PAPER_EFF_TOL = 0.08
COMM_SPEEDUP_RANGE = (2.0, 5.0)
# Current vs baseline: identical deterministic arithmetic modulo libm.
SCALING_VALUE_RTOL = 0.05


def scaling_model(doc, name, path):
    models = doc.get("models")
    if not isinstance(models, dict) or not isinstance(models.get(name), dict):
        raise UnusableInput(
            f"{path}: missing scaling key 'models.{name}' — not a "
            "bench_scaling JSON? Regenerate with "
            "bench_scaling_large --smoke --json=...")
    return models[name]


def scaling_series(model, study, path):
    where = f"{path} {study}"
    entry = model.get(study)
    if not isinstance(entry, dict) or not isinstance(
            entry.get("series"), list) or not entry["series"]:
        raise UnusableInput(
            f"{where}: missing scaling key '{study}.series'")
    out = {}
    for se in entry["series"]:
        patch = int(require_number(se, "patch_size", where))
        pts = se.get("points")
        if not isinstance(pts, list) or not pts:
            raise UnusableInput(f"{where}: patch {patch} has no points")
        out[patch] = [(int(require_number(p, "gpus", where)),
                       require_number(p, "seconds", where)) for p in pts]
    return out


def check_scaling_model(current, baseline, name, cur_path, base_path):
    failures = []
    cur = scaling_model(current, name, cur_path)
    base = scaling_model(baseline, name, base_path)
    for study in ("medium", "large"):
        cur_series = scaling_series(cur, study, cur_path)
        base_series = scaling_series(base, study, base_path)
        if set(cur_series) != set(base_series):
            failures.append(
                f"{name} {study}: patch sizes {sorted(cur_series)} != "
                f"baseline {sorted(base_series)}")
            continue
        # Monotone decrease while over-decomposed, and agreement with
        # the baseline values point by point.
        for patch, pts in cur_series.items():
            for (ga, ta), (gb, tb) in zip(pts, pts[1:]):
                if tb >= ta:
                    failures.append(
                        f"{name} {study} {patch}^3: time stopped falling "
                        f"at {gb} GPUs ({tb:.4f} >= {ta:.4f} s)")
            for (g, t), (bg, bt) in zip(pts, base_series[patch]):
                if g != bg:
                    failures.append(
                        f"{name} {study} {patch}^3: GPU grid {g} != "
                        f"baseline {bg}")
                elif abs(t - bt) > SCALING_VALUE_RTOL * bt:
                    failures.append(
                        f"{name} {study} {patch}^3 @{g}: {t:.4f} s drifted "
                        f"from baseline {bt:.4f} s (> {SCALING_VALUE_RTOL:.0%})")
        # The paper's crossover: the largest feasible patch wins at every
        # GPU count, and the winner must match the baseline's.
        by_gpus = {}
        for patch, pts in cur_series.items():
            for g, t in pts:
                by_gpus.setdefault(g, {})[patch] = t
        for g, entries in sorted(by_gpus.items()):
            winner = min(entries, key=entries.get)
            if winner != max(entries):
                failures.append(
                    f"{name} {study} @{g} GPUs: {winner}^3 beats the "
                    f"largest feasible patch {max(entries)}^3 — crossover "
                    "flipped")
    eff = cur.get("efficiency_large_p16")
    if not isinstance(eff, dict):
        raise UnusableInput(
            f"{cur_path}: missing scaling key "
            f"'models.{name}.efficiency_large_p16'")
    for key in ("eff_4096_to_8192", "eff_4096_to_16384"):
        e = require_number(eff, key, f"{cur_path} {name}")
        if name == "titan_default":
            ref = PAPER_EFF[key]
            verdict = "OK" if abs(e - ref) <= PAPER_EFF_TOL else "FAIL"
            print(f"{name} {key}: {e:.4f} vs paper {ref:.2f} "
                  f"(+-{PAPER_EFF_TOL}) [{verdict}]")
            if abs(e - ref) > PAPER_EFF_TOL:
                failures.append(
                    f"{name} {key} = {e:.4f} left the paper regime "
                    f"{ref:.2f}+-{PAPER_EFF_TOL}")
        if e > 1.0 + 1e-9:
            failures.append(f"{name} {key} = {e:.4f} exceeds 1.0")
    lo, hi = COMM_SPEEDUP_RANGE
    for row in cur.get("comm_study", []):
        s = require_number(row, "speedup", f"{cur_path} {name} comm_study")
        if not lo <= s <= hi:
            failures.append(
                f"{name} comm_study @{row.get('nodes')} nodes: speedup "
                f"{s:.2f}x outside [{lo}, {hi}] (paper Table I: 2.27-4.40x)")
    return failures


def check_scaling(current, baseline, cur_path, base_path):
    failures = []
    for name in ("titan_default", "calibrated"):
        failures.extend(
            check_scaling_model(current, baseline, name, cur_path,
                                base_path))
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--mode", choices=("kernel", "scaling"),
                    default="kernel",
                    help="kernel: bench_rmcrt_kernel throughput gate; "
                         "scaling: bench_scaling_* shape gate")
    ap.add_argument("--current", required=True,
                    help="JSON written by this run's bench binary")
    ap.add_argument("--baseline", required=True,
                    help="committed baseline JSON to compare against")
    ap.add_argument("--tolerance", type=float, default=0.5,
                    help="kernel mode: minimum fraction of baseline "
                         "single-thread Mseg/s that passes (default 0.5)")
    args = ap.parse_args()

    try:
        with open(args.current) as f:
            current = json.load(f)
        with open(args.baseline) as f:
            baseline = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot load bench JSON: {e}", file=sys.stderr)
        return 2

    if args.mode == "scaling":
        try:
            failures = check_scaling(current, baseline, args.current,
                                     args.baseline)
        except UnusableInput as e:
            print(f"error: {e}", file=sys.stderr)
            return 2
        if failures:
            for f in failures:
                print(f"REGRESSION: {f}", file=sys.stderr)
            return 1
        print("scaling shape gate passed")
        return 0

    failures = []

    bad_bitwise = check_bitwise(current, args.current)
    if bad_bitwise:
        failures.append("bitwise mismatch in: " + ", ".join(bad_bitwise))

    try:
        cur = single_thread_mseg(current, args.current)
        base = single_thread_mseg(baseline, args.baseline)
        floor = args.tolerance * base
        verdict = "OK" if cur >= floor else "FAIL"
        print(f"single-thread: current {cur:.2f} Mseg/s vs baseline "
              f"{base:.2f} Mseg/s (floor {floor:.2f}, x{args.tolerance}) "
              f"[{verdict}]")
        if cur < floor:
            failures.append(
                f"single-thread Mseg/s collapsed: {cur:.2f} < {floor:.2f}")

        # (section key, floor, label): the microbench isolates the march
        # loop and is stable enough for a hard >= 1.0 bound; the
        # end-to-end divQ A/B jitters with the runner, so only a collapse
        # below 0.75 fails.
        for key, floor, label in (("segment_microbench", 1.0,
                                   "segment microbench"),
                                  ("layout", 0.75, "divQ layout A/B")):
            entry = current.get(key)
            if entry is None:
                continue
            where = f"{args.current} {key}"
            speedup = require_number(entry, "speedup", where)
            packed = require_number(entry, "packed_mseg_per_s", where)
            unpacked = require_number(entry, "unpacked_mseg_per_s", where)
            verdict = "OK" if speedup >= floor else "FAIL"
            print(f"{label}: packed {packed:.2f} "
                  f"vs unpacked {unpacked:.2f} Mseg/s "
                  f"({speedup:.2f}x, floor {floor}) [{verdict}]")
            if speedup < floor:
                failures.append(
                    f"{label}: packed vs unpacked collapsed ({speedup:.2f}x "
                    f"< {floor}x)")

        failures.extend(
            check_simd(current, baseline, args.current, args.baseline))
    except UnusableInput as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    if failures:
        for f in failures:
            print(f"REGRESSION: {f}", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
