#!/usr/bin/env python3
"""Perf-regression gate for bench_rmcrt_kernel JSON baselines.

Compares a freshly measured sweep (e.g. the CI --smoke run) against the
committed baseline and fails on a throughput collapse:

    check_bench_regression.py --current ci.json --baseline BENCH_rmcrt_kernel.json

Checks, in order:
  1. Every bitwise_match flag in the current run is true (thread sweep,
     layout A/B, segment microbench) — a perf number from a wrong answer
     is meaningless.
  2. Single-thread sweep Mseg/s >= tolerance * the baseline's. The
     default tolerance of 0.5 only catches collapses (an accidental
     debug-layout revert, an O(N) regression in the march loop), not
     machine-to-machine noise: CI runners and the baseline host differ,
     so tighter bounds would flake.
  3. The packed layout has not collapsed against unpacked. The segment
     microbench (a fixed ray bundle through the bare march loop) is the
     stable signal and must show speedup >= 1.0; the end-to-end divQ A/B
     shares its timing with per-ray sampling overhead and inherits
     single-core runner jitter, so it only fails below 0.75.
  4. The SIMD packet march has not collapsed against the scalar golden
     reference, with an ISA-dependent floor (the dual-packet AVX-512
     kernel must hold well above parity; the AVX2 fallback is roughly at
     parity, so only a collapse fails), and its worst per-ray deviation
     stays inside the documented ULP envelope. Hosts where
     Tracer::simdSupported() is false skip the perf floor but still must
     carry the section — a run without simd_microbench keys (an older
     bench binary, or a baseline predating the SIMD path) is unusable
     input, not a pass.

Exit code 0 = pass, 1 = regression, 2 = unusable input. Stdlib only.
"""

import argparse
import json
import sys


class UnusableInput(Exception):
    """A bench JSON exists but is missing a key/sample the gate needs.

    Distinct from a regression: the measurement never happened (wrong
    bench binary, a mode like --snapshot-every that writes a different
    schema, a half-written file), so the gate must say exactly what is
    missing and exit 2, not crash with a traceback or report FAIL.
    """


def require_number(mapping, key, where):
    value = mapping.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise UnusableInput(
            f"{where}: missing or non-numeric key '{key}' "
            f"(got {value!r}) — wrong or incomplete bench JSON?")
    return float(value)


def single_thread_mseg(doc, path):
    for sample in doc.get("sweep", []):
        if sample.get("threads") == 1:
            return require_number(sample, "mseg_per_s",
                                  f"{path} sweep threads=1")
    raise UnusableInput(f"{path}: no threads==1 sample in 'sweep' — "
                        "wrong or incomplete bench JSON?")


def check_bitwise(doc, path):
    bad = []
    for sample in doc.get("sweep", []):
        if sample.get("bitwise_match") is not True:
            bad.append(f"sweep threads={sample.get('threads')}")
    for section in ("layout", "segment_microbench"):
        entry = doc.get(section)
        if entry is not None and entry.get("bitwise_match") is not True:
            bad.append(section)
    return bad


# Within-run SIMD-vs-scalar floor per reported ISA. The AVX-512 kernel
# marches two interleaved 8-lane packets and measures ~3x on the
# committed baseline host, so 1.5 only catches collapses; the AVX2
# kernel is roughly at scalar parity on wide cores, so anything above a
# collapse passes.
SIMD_SPEEDUP_FLOOR = {"avx512": 1.5, "avx2": 0.6}

# Loose ceiling on the microbench's worst per-ray |simd-scalar|/|scalar|.
# The simd_march_test harness enforces the real 4096-ULP bound (~9e-13);
# this only rejects a broken vector exp or masking bug at a glance.
SIMD_MAX_REL_ERR = 1e-9


def check_simd(current, baseline, cur_path, base_path):
    """Gate the simd_microbench section; raises UnusableInput if absent."""
    failures = []
    for doc, path in ((current, cur_path), (baseline, base_path)):
        if not isinstance(doc.get("simd_microbench"), dict):
            raise UnusableInput(
                f"{path}: no 'simd_microbench' section — bench binary or "
                "baseline predates the SIMD packet march; refresh it with "
                "a full bench_rmcrt_kernel run")
    entry = current["simd_microbench"]
    where = f"{cur_path} simd_microbench"
    if entry.get("supported") is not True:
        print("simd microbench: host unsupported, perf floor skipped")
        return failures
    isa = entry.get("isa")
    floor = SIMD_SPEEDUP_FLOOR.get(isa)
    if floor is None:
        raise UnusableInput(
            f"{where}: supported host reports unknown isa {isa!r}")
    speedup = require_number(entry, "speedup", where)
    scalar = require_number(entry, "scalar_mseg_per_s", where)
    simd = require_number(entry, "simd_mseg_per_s", where)
    rel_err = require_number(entry, "max_rel_err", where)
    verdict = "OK" if speedup >= floor else "FAIL"
    print(f"simd microbench [{isa}]: simd {simd:.2f} vs scalar "
          f"{scalar:.2f} Mseg/s ({speedup:.2f}x, floor {floor}) [{verdict}]")
    if speedup < floor:
        failures.append(
            f"simd packet march collapsed ({speedup:.2f}x < {floor}x "
            f"on {isa})")
    if rel_err > SIMD_MAX_REL_ERR:
        failures.append(
            f"simd microbench max_rel_err {rel_err:.3e} exceeds "
            f"{SIMD_MAX_REL_ERR:.0e} — vector exp or lane masking broke")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--current", required=True,
                    help="JSON written by this run's bench_rmcrt_kernel")
    ap.add_argument("--baseline", required=True,
                    help="committed baseline JSON to compare against")
    ap.add_argument("--tolerance", type=float, default=0.5,
                    help="minimum fraction of baseline single-thread "
                         "Mseg/s that passes (default 0.5)")
    args = ap.parse_args()

    try:
        with open(args.current) as f:
            current = json.load(f)
        with open(args.baseline) as f:
            baseline = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot load bench JSON: {e}", file=sys.stderr)
        return 2

    failures = []

    bad_bitwise = check_bitwise(current, args.current)
    if bad_bitwise:
        failures.append("bitwise mismatch in: " + ", ".join(bad_bitwise))

    try:
        cur = single_thread_mseg(current, args.current)
        base = single_thread_mseg(baseline, args.baseline)
        floor = args.tolerance * base
        verdict = "OK" if cur >= floor else "FAIL"
        print(f"single-thread: current {cur:.2f} Mseg/s vs baseline "
              f"{base:.2f} Mseg/s (floor {floor:.2f}, x{args.tolerance}) "
              f"[{verdict}]")
        if cur < floor:
            failures.append(
                f"single-thread Mseg/s collapsed: {cur:.2f} < {floor:.2f}")

        # (section key, floor, label): the microbench isolates the march
        # loop and is stable enough for a hard >= 1.0 bound; the
        # end-to-end divQ A/B jitters with the runner, so only a collapse
        # below 0.75 fails.
        for key, floor, label in (("segment_microbench", 1.0,
                                   "segment microbench"),
                                  ("layout", 0.75, "divQ layout A/B")):
            entry = current.get(key)
            if entry is None:
                continue
            where = f"{args.current} {key}"
            speedup = require_number(entry, "speedup", where)
            packed = require_number(entry, "packed_mseg_per_s", where)
            unpacked = require_number(entry, "unpacked_mseg_per_s", where)
            verdict = "OK" if speedup >= floor else "FAIL"
            print(f"{label}: packed {packed:.2f} "
                  f"vs unpacked {unpacked:.2f} Mseg/s "
                  f"({speedup:.2f}x, floor {floor}) [{verdict}]")
            if speedup < floor:
                failures.append(
                    f"{label}: packed vs unpacked collapsed ({speedup:.2f}x "
                    f"< {floor}x)")

        failures.extend(
            check_simd(current, baseline, args.current, args.baseline))
    except UnusableInput as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    if failures:
        for f in failures:
            print(f"REGRESSION: {f}", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
