/// rmcrt::service::Service tests (DESIGN.md §16): cross-request batching
/// bitwise identical to the serial one-shot path under ≥8 concurrent
/// tenants, exactly one shared coarse upload per scene generation,
/// scene-generation invalidation (property update and regrid bump the
/// generation, evict the shared packed cache, and turn pinned stale
/// queries into typed errors — never stale data), typed admission
/// shedding with no deadlocks (this suite also runs under TSan in CI),
/// per-tenant metrics views, and the submitted == completed + rejected
/// reconciliation invariant.

#include "service/service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "comm/fault_injector.h"
#include "grid/grid.h"

namespace rmcrt::service {
namespace {

using core::RmcrtSetup;
using core::TraceConfig;

std::shared_ptr<const grid::Grid> makeScene(int fineEdge = 16) {
  // Patch sizes must divide the level extents (coarse edge = fineEdge/4).
  const int finePatch = std::min(8, fineEdge);
  const int coarsePatch = std::min(4, fineEdge / 4);
  return grid::Grid::makeTwoLevel(Vector(0.0), Vector(1.0),
                                  IntVector(fineEdge), IntVector(4),
                                  IntVector(finePatch),
                                  IntVector(coarsePatch));
}

RmcrtSetup makeSetup(int nRays = 4, std::uint64_t seed = 7) {
  RmcrtSetup setup;
  setup.problem = core::burnsChriston();
  setup.trace = TraceConfig{};
  setup.trace.nDivQRays = nRays;
  setup.trace.seed = seed;
  setup.roiHalo = 4;
  return setup;
}

/// Carve the fine level into one disjoint slab per tenant.
std::vector<CellRange> tenantSlabs(const grid::Grid& g, int nTenants) {
  const CellRange cells = g.fineLevel().cells();
  const int nx = cells.size().x();
  std::vector<CellRange> slabs;
  for (int t = 0; t < nTenants; ++t) {
    const int lo = cells.low().x() + t * nx / nTenants;
    const int hi = cells.low().x() + (t + 1) * nx / nTenants;
    slabs.push_back(CellRange(IntVector(lo, cells.low().y(), cells.low().z()),
                              IntVector(hi, cells.high().y(),
                                        cells.high().z())));
  }
  return slabs;
}

TEST(ServiceTest, ConcurrentTenantsBitwiseIdenticalToOneShot) {
  auto g = makeScene();
  const RmcrtSetup setup = makeSetup();
  Service svc;
  const SceneHandle h = svc.registerScene(g, setup);

  constexpr int kTenants = 8;
  const auto slabs = tenantSlabs(*g, kTenants);

  // All tenants submit concurrently from their own threads.
  std::vector<std::future<Outcome<DivQResult>>> futs(kTenants);
  {
    std::vector<std::thread> clients;
    for (int t = 0; t < kTenants; ++t) {
      clients.emplace_back([&, t] {
        futs[t] = svc.submitDivQ(DivQQuery{"tenant" + std::to_string(t),
                                           h.id, 0, slabs[t]});
      });
    }
    for (auto& c : clients) c.join();
  }

  for (int t = 0; t < kTenants; ++t) {
    Outcome<DivQResult> o = futs[t].get();
    ASSERT_TRUE(o.ok()) << toString(o.reject);
    EXPECT_EQ(o.value.generation, 1u);
    const DivQResult ref = Service::solveDivQOneShot(*g, setup, slabs[t]);
    ASSERT_EQ(o.value.divQ.size(), ref.divQ.size());
    for (std::size_t i = 0; i < ref.divQ.size(); ++i)
      ASSERT_EQ(o.value.divQ[i], ref.divQ[i])
          << "tenant " << t << " element " << i
          << ": batched result must be bitwise identical to one-shot";
  }

  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.submitted, static_cast<std::uint64_t>(kTenants));
  EXPECT_EQ(st.completed, static_cast<std::uint64_t>(kTenants));
  EXPECT_EQ(st.rejected, 0u);
  EXPECT_GT(st.tileJobs, 0u);
}

TEST(ServiceTest, ExactlyOneCoarseUploadPerGenerationUnderConcurrentLoad) {
  auto g = makeScene();
  Service svc;
  const SceneHandle h = svc.registerScene(g, makeSetup(2));
  const auto slabs = tenantSlabs(*g, 8);

  auto floodOnce = [&] {
    std::vector<std::future<Outcome<DivQResult>>> futs;
    std::vector<std::thread> clients;
    std::mutex mu;
    for (int t = 0; t < 8; ++t) {
      clients.emplace_back([&, t] {
        for (int rep = 0; rep < 3; ++rep) {
          auto f = svc.submitDivQ(
              DivQQuery{"t" + std::to_string(t), h.id, 0, slabs[t]});
          std::lock_guard<std::mutex> lk(mu);
          futs.push_back(std::move(f));
        }
      });
    }
    for (auto& c : clients) c.join();
    for (auto& f : futs) ASSERT_TRUE(f.get().ok());
  };

  floodOnce();
  EXPECT_EQ(svc.stats().coarseUploads, 1u)
      << "24 concurrent queries on one generation must share ONE upload";

  // A property update bumps the generation; the next load re-uploads
  // exactly once more.
  const auto upd = svc.updateProperties(h.id, core::syntheticBoiler());
  ASSERT_TRUE(upd.ok());
  EXPECT_EQ(upd.value.generation, 2u);
  floodOnce();
  EXPECT_EQ(svc.stats().coarseUploads, 2u);
  EXPECT_EQ(svc.stats().generationEvictions, 1u);
}

TEST(ServiceTest, PropertyUpdateInvalidatesAndRejectsPinnedStaleQueries) {
  auto g = makeScene();
  const RmcrtSetup setup = makeSetup();
  Service svc;
  const SceneHandle h = svc.registerScene(g, setup);

  // Warm generation 1.
  const auto slab = tenantSlabs(*g, 4)[0];
  ASSERT_TRUE(svc.submitDivQ(DivQQuery{"a", h.id, h.generation, slab})
                  .get()
                  .ok());

  const auto upd = svc.updateProperties(h.id, core::syntheticBoiler());
  ASSERT_TRUE(upd.ok());

  // Pinned to the evicted generation: typed error, not stale data.
  Outcome<DivQResult> stale =
      svc.submitDivQ(DivQQuery{"a", h.id, h.generation, slab}).get();
  EXPECT_FALSE(stale.ok());
  EXPECT_EQ(stale.reject, RejectReason::StaleGeneration);
  EXPECT_TRUE(stale.value.divQ.empty()) << "no data rides on a rejection";

  // Unpinned (latest) queries are served by generation 2 and match a
  // one-shot solve of the UPDATED scene.
  RmcrtSetup updated = setup;
  updated.problem = core::syntheticBoiler();
  Outcome<DivQResult> fresh =
      svc.submitDivQ(DivQQuery{"a", h.id, 0, slab}).get();
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh.value.generation, 2u);
  const DivQResult ref = Service::solveDivQOneShot(*g, updated, slab);
  for (std::size_t i = 0; i < ref.divQ.size(); ++i)
    ASSERT_EQ(fresh.value.divQ[i], ref.divQ[i]);
}

TEST(ServiceTest, RegridBumpsGenerationAndServesTheNewGrid) {
  auto g = makeScene(16);
  const RmcrtSetup setup = makeSetup();
  Service svc;
  const SceneHandle h = svc.registerScene(g, setup);
  const auto slab = tenantSlabs(*g, 4)[1];
  ASSERT_TRUE(svc.submitDivQ(DivQQuery{"a", h.id, 1, slab}).get().ok());
  const std::uint64_t uploadsBefore = svc.stats().coarseUploads;

  auto g2 = makeScene(8);  // regrid to a coarser fine level
  const auto re = svc.regrid(h.id, g2);
  ASSERT_TRUE(re.ok());
  EXPECT_EQ(re.value.generation, 2u);

  // The pre-regrid generation is gone.
  Outcome<DivQResult> stale = svc.submitDivQ(DivQQuery{"a", h.id, 1, slab})
                                  .get();
  EXPECT_EQ(stale.reject, RejectReason::StaleGeneration);

  // Queries against the new grid rebuild shared state (one more upload)
  // and match the one-shot solve on the new grid.
  const CellRange newSlab = tenantSlabs(*g2, 4)[1];
  Outcome<DivQResult> fresh =
      svc.submitDivQ(DivQQuery{"a", h.id, 0, newSlab}).get();
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(svc.stats().coarseUploads, uploadsBefore + 1);
  const DivQResult ref = Service::solveDivQOneShot(*g2, setup, newSlab);
  for (std::size_t i = 0; i < ref.divQ.size(); ++i)
    ASSERT_EQ(fresh.value.divQ[i], ref.divQ[i]);
}

TEST(ServiceTest, AdmissionShedsWithTypedRejectionsAndRecovers) {
  ServiceConfig cfg;
  cfg.admission.maxQueueDepth = 3;
  cfg.admission.maxPerTenant = 1;
  Service svc(cfg);
  auto g = makeScene();
  const SceneHandle h = svc.registerScene(g, makeSetup(2));
  const auto slab = tenantSlabs(*g, 4)[0];

  svc.pause();  // deterministic queue buildup
  auto f1 = svc.submitDivQ(DivQQuery{"flood", h.id, 0, slab});
  auto f2 = svc.submitDivQ(DivQQuery{"flood", h.id, 0, slab});
  auto f3 = svc.submitDivQ(DivQQuery{"polite", h.id, 0, slab});
  auto f4 = svc.submitDivQ(DivQQuery{"calm", h.id, 0, slab});
  auto f5 = svc.submitDivQ(DivQQuery{"late", h.id, 0, slab});

  // Tenant cap sheds the flooder's second request immediately...
  Outcome<DivQResult> shed = f2.get();
  EXPECT_EQ(shed.reject, RejectReason::TenantBacklog);
  // ...and the global depth cap sheds the 4th distinct tenant.
  Outcome<DivQResult> full = f5.get();
  EXPECT_EQ(full.reject, RejectReason::QueueFull);

  svc.resume();
  EXPECT_TRUE(f1.get().ok());
  EXPECT_TRUE(f3.get().ok());
  EXPECT_TRUE(f4.get().ok());

  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.submitted, 5u);
  EXPECT_EQ(st.completed, 3u);
  EXPECT_EQ(st.rejected, 2u);
  EXPECT_EQ(st.submitted, st.completed + st.rejected)
      << "reconciliation: nothing lost, nothing double-counted";
  EXPECT_EQ(st.admission.inFlight, 0u);
}

TEST(ServiceTest, UnknownSceneAndShutdownAreTypedErrors) {
  Service svc;
  Outcome<DivQResult> bad =
      svc.submitDivQ(DivQQuery{"a", 42, 0, CellRange(IntVector(0),
                                                     IntVector(4))})
          .get();
  EXPECT_EQ(bad.reject, RejectReason::UnknownScene);
  EXPECT_EQ(svc.updateProperties(7, core::burnsChriston()).reject,
            RejectReason::UnknownScene);

  svc.shutdown();
  Outcome<DivQResult> dead =
      svc.submitDivQ(DivQQuery{"a", 0, 0, CellRange(IntVector(0),
                                                    IntVector(4))})
          .get();
  EXPECT_EQ(dead.reject, RejectReason::ShuttingDown);
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.submitted, st.completed + st.rejected);
}

TEST(ServiceTest, ShutdownRejectsQueuedRequestsInsteadOfLosingThem) {
  Service svc;
  auto g = makeScene();
  const SceneHandle h = svc.registerScene(g, makeSetup(2));
  const auto slab = tenantSlabs(*g, 4)[2];
  svc.pause();
  auto f1 = svc.submitDivQ(DivQQuery{"a", h.id, 0, slab});
  auto f2 = svc.submitDivQ(DivQQuery{"b", h.id, 0, slab});
  svc.shutdown();
  EXPECT_EQ(f1.get().reject, RejectReason::ShuttingDown);
  EXPECT_EQ(f2.get().reject, RejectReason::ShuttingDown);
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.submitted, 2u);
  EXPECT_EQ(st.rejected, 2u);
  EXPECT_EQ(st.admission.inFlight, 0u) << "shed requests release slots";
}

TEST(ServiceTest, FluxAndRadiometerMatchOneShotAndShareTheBatch) {
  auto g = makeScene();
  const RmcrtSetup setup = makeSetup(4);
  Service svc;
  const SceneHandle h = svc.registerScene(g, setup);

  const CellRange fine = g->fineLevel().cells();
  FluxQuery fq;
  fq.tenant = "wall-watcher";
  fq.scene = h.id;
  fq.faces = {{IntVector(0, 8, 8), IntVector(-1, 0, 0)},
              {IntVector(15, 8, 8), IntVector(1, 0, 0)}};
  fq.nRays = 16;

  RadiometerQuery rq;
  rq.tenant = "instrument";
  rq.scene = h.id;
  rq.spec.position = Vector(0.5, 0.5, 0.1);
  rq.spec.viewDirection = Vector(0.0, 0.0, 1.0);
  rq.spec.nRays = 32;

  DivQQuery dq{"solver", h.id, 0, tenantSlabs(*g, 4)[3]};

  // All three query kinds ride one batch.
  svc.pause();
  auto ff = svc.submitBoundaryFlux(fq);
  auto rf = svc.submitRadiometer(rq);
  auto df = svc.submitDivQ(dq);
  svc.resume();

  Outcome<FluxResult> fo = ff.get();
  ASSERT_TRUE(fo.ok());
  const FluxResult fref = Service::solveFluxOneShot(*g, setup, fq.faces, 16);
  ASSERT_EQ(fo.value.fluxes.size(), 2u);
  EXPECT_EQ(fo.value.fluxes[0], fref.fluxes[0]);
  EXPECT_EQ(fo.value.fluxes[1], fref.fluxes[1]);
  EXPECT_GT(fo.value.fluxes[0], 0.0) << "emitting medium: flux onto wall";

  Outcome<RadiometerResult> ro = rf.get();
  ASSERT_TRUE(ro.ok());
  const RadiometerResult rref = Service::solveRadiometerOneShot(*g, setup,
                                                                rq.spec);
  EXPECT_EQ(ro.value.reading.flux, rref.reading.flux);
  EXPECT_EQ(ro.value.reading.meanIntensity, rref.reading.meanIntensity);

  ASSERT_TRUE(df.get().ok());
  (void)fine;
}

TEST(ServiceTest, NaiveModeMatchesBatchedBitwiseButUploadsPerRequest) {
  auto g = makeScene();
  const RmcrtSetup setup = makeSetup(2);
  const auto slabs = tenantSlabs(*g, 4);

  ServiceConfig naiveCfg;
  naiveCfg.batching = false;
  Service naive(naiveCfg);
  const SceneHandle nh = naive.registerScene(g, setup);
  std::vector<std::future<Outcome<DivQResult>>> futs;
  for (int t = 0; t < 4; ++t)
    futs.push_back(naive.submitDivQ(
        DivQQuery{"t" + std::to_string(t), nh.id, 0, slabs[t]}));
  for (int t = 0; t < 4; ++t) {
    Outcome<DivQResult> o = futs[t].get();
    ASSERT_TRUE(o.ok());
    const DivQResult ref = Service::solveDivQOneShot(*g, setup, slabs[t]);
    for (std::size_t i = 0; i < ref.divQ.size(); ++i)
      ASSERT_EQ(o.value.divQ[i], ref.divQ[i]);
  }
  EXPECT_EQ(naive.stats().coarseUploads, 4u)
      << "the baseline re-uploads per request — the cost batching removes";
}

TEST(ServiceTest, PerTenantMetricsViewsCarryTheSplit) {
  auto g = makeScene();
  Service svc;
  const SceneHandle h = svc.registerScene(g, makeSetup(2));
  const auto slab = tenantSlabs(*g, 4)[0];
  ASSERT_TRUE(svc.submitDivQ(DivQQuery{"alice", h.id, 0, slab}).get().ok());
  ASSERT_TRUE(svc.submitDivQ(DivQQuery{"alice", h.id, 0, slab}).get().ok());
  EXPECT_EQ(svc.submitDivQ(DivQQuery{"bob", 99, 0, slab}).get().reject,
            RejectReason::UnknownScene);

  auto alice = svc.metrics().view("service.tenant.alice").snapshot();
  const auto* aSub = alice.find("service.tenant.alice.submitted");
  const auto* aDone = alice.find("service.tenant.alice.completed");
  ASSERT_NE(aSub, nullptr);
  ASSERT_NE(aDone, nullptr);
  EXPECT_EQ(aSub->value, 2.0);
  EXPECT_EQ(aDone->value, 2.0);
  EXPECT_EQ(alice.find("service.tenant.bob.submitted"), nullptr);

  auto bob = svc.metrics().view("service.tenant.bob").snapshot();
  const auto* bRej = bob.find("service.tenant.bob.rejected");
  ASSERT_NE(bRej, nullptr);
  EXPECT_EQ(bRej->value, 1.0);

  // Latency estimator published after completions.
  const ServiceStats st = svc.stats();
  EXPECT_GT(st.p50Ms, 0.0);
  EXPECT_GE(st.p99Ms, st.p50Ms * 0.5);
}

TEST(ServiceTest, FaultInjectedSubmissionsStillReconcileExactly) {
  ServiceConfig cfg;
  cfg.injector = std::make_shared<comm::FaultInjector>(1234);
  comm::FaultProbabilities p;
  p.drop = 0.2;
  p.delay = 0.2;
  p.duplicate = 0.1;
  p.reorder = 0.1;
  p.delayMinMs = 0.05;
  p.delayMaxMs = 0.2;
  cfg.injector->setDefaultProbabilities(p);
  Service svc(cfg);
  auto g = makeScene();
  const SceneHandle h = svc.registerScene(g, makeSetup(2));
  const auto slabs = tenantSlabs(*g, 4);

  std::vector<std::thread> clients;
  std::vector<std::future<Outcome<DivQResult>>> futs(24);
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      for (int rep = 0; rep < 6; ++rep)
        futs[t * 6 + rep] = svc.submitDivQ(
            DivQQuery{"t" + std::to_string(t), h.id, 0, slabs[t]});
    });
  }
  for (auto& c : clients) c.join();
  for (auto& f : futs) ASSERT_TRUE(f.get().ok());

  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.submitted, 24u);
  EXPECT_EQ(st.submitted, st.completed + st.rejected)
      << "drops retransmit and duplicates dedup: nothing lost or doubled";
  EXPECT_GT(st.faultsRetransmitted + st.faultsDelayed +
                st.faultsDeduplicated + st.faultsReordered,
            0u)
      << "with these probabilities over 24 sends, some fault must fire";
}

}  // namespace
}  // namespace rmcrt::service
