#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "grid/regridder.h"
#include "grid/vtk_writer.h"

namespace rmcrt::grid {
namespace {

TEST(Regridder, ChangesOnlyFinePatchSize) {
  auto old = Grid::makeTwoLevel(Vector(0.0), Vector(1.0), IntVector(32),
                                IntVector(4), IntVector(16), IntVector(4));
  auto fresh = regridWithPatchSize(*old, 8);
  EXPECT_EQ(fresh->numLevels(), 2);
  EXPECT_EQ(fresh->fineLevel().patchSize(), IntVector(8));
  EXPECT_EQ(fresh->coarseLevel().patchSize(), IntVector(4));
  EXPECT_EQ(fresh->fineLevel().cells(), old->fineLevel().cells());
  EXPECT_EQ(fresh->coarseLevel().cells(), old->coarseLevel().cells());
  EXPECT_EQ(fresh->fineLevel().numPatches(), 64u);  // (32/8)^3
}

TEST(Regridder, ScatterGatherRoundTrip) {
  auto g = Grid::makeSingleLevel(Vector(0.0), Vector(1.0), IntVector(16),
                                 IntVector(4));
  CCVariable<double> levelVar(g->fineLevel().cells(), 0.0);
  for (const auto& c : levelVar.window())
    levelVar[c] = c.x() + 100.0 * c.y() + 10000.0 * c.z();

  const auto patchVars = scatterToPatches(levelVar, g->fineLevel());
  ASSERT_EQ(patchVars.size(), g->fineLevel().numPatches());
  for (std::size_t i = 0; i < patchVars.size(); ++i) {
    for (const auto& c : g->fineLevel().patch(i).cells())
      EXPECT_DOUBLE_EQ(patchVars[i][c], levelVar[c]);
  }
  const CCVariable<double> back =
      gatherFromPatches(patchVars, g->fineLevel());
  for (const auto& c : levelVar.window())
    EXPECT_DOUBLE_EQ(back[c], levelVar[c]);
}

TEST(Regridder, ScatterWithGhostsClipsAtBoundary) {
  auto g = Grid::makeSingleLevel(Vector(0.0), Vector(1.0), IntVector(8),
                                 IntVector(4));
  CCVariable<double> levelVar(g->fineLevel().cells(), 7.0);
  const auto patchVars =
      scatterToPatches(levelVar, g->fineLevel(), /*numGhost=*/2);
  // Interior + in-domain ghosts carry data; out-of-domain ghosts remain
  // default-initialized.
  const auto& v = patchVars[0];  // patch at the low corner
  EXPECT_DOUBLE_EQ(v[IntVector(0, 0, 0)], 7.0);
  EXPECT_DOUBLE_EQ(v[IntVector(5, 5, 5)], 7.0);   // in-domain ghost
  EXPECT_DOUBLE_EQ(v[IntVector(-1, 0, 0)], 0.0);  // outside the domain
}

TEST(Regridder, MigrationAcrossPatchSizes) {
  // Full D4 workflow: gather from the old decomposition, regrid, scatter
  // to the new one — data identical cell by cell.
  auto old = Grid::makeSingleLevel(Vector(0.0), Vector(1.0), IntVector(16),
                                   IntVector(8));
  CCVariable<double> levelVar(old->fineLevel().cells(), 0.0);
  for (const auto& c : levelVar.window()) levelVar[c] = 3.0 * c.x() - c.z();
  auto oldPatchVars = scatterToPatches(levelVar, old->fineLevel());

  auto fresh = regridWithPatchSize(*old, 4);
  const auto image = gatherFromPatches(oldPatchVars, old->fineLevel());
  auto newPatchVars = scatterToPatches(image, fresh->fineLevel());
  for (std::size_t i = 0; i < newPatchVars.size(); ++i) {
    for (const auto& c : fresh->fineLevel().patch(i).cells())
      EXPECT_DOUBLE_EQ(newPatchVars[i][c], levelVar[c]);
  }
}

TEST(VtkWriter, WritesParsableStructuredPoints) {
  auto g = Grid::makeSingleLevel(Vector(0.0), Vector(1.0), IntVector(4),
                                 IntVector(4));
  CCVariable<double> divQ(g->fineLevel().cells(), 0.0);
  for (const auto& c : divQ.window()) divQ[c] = c.x() + 0.5;
  const std::string path = "/tmp/rmcrt_vtk_test.vtk";
  ASSERT_TRUE(writeVtkLevel(path, g->fineLevel(), {{"divQ", &divQ}}));

  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::stringstream ss;
  ss << is.rdbuf();
  const std::string content = ss.str();
  EXPECT_NE(content.find("DATASET STRUCTURED_POINTS"), std::string::npos);
  EXPECT_NE(content.find("DIMENSIONS 4 4 4"), std::string::npos);
  EXPECT_NE(content.find("SCALARS divQ double 1"), std::string::npos);
  EXPECT_NE(content.find("POINT_DATA 64"), std::string::npos);
  // First value = cell (0,0,0) -> 0.5 (x fastest ordering).
  const auto pos = content.find("LOOKUP_TABLE default\n");
  ASSERT_NE(pos, std::string::npos);
  std::istringstream vals(content.substr(pos + 21));
  double first = -1, second = -1;
  vals >> first >> second;
  EXPECT_DOUBLE_EQ(first, 0.5);
  EXPECT_DOUBLE_EQ(second, 1.5);
  std::remove(path.c_str());
}

TEST(VtkWriter, MultipleFieldsAndFailurePaths) {
  auto g = Grid::makeSingleLevel(Vector(0.0), Vector(1.0), IntVector(2),
                                 IntVector(2));
  CCVariable<double> a(g->fineLevel().cells(), 1.0);
  CCVariable<double> b(g->fineLevel().cells(), 2.0);
  const std::string path = "/tmp/rmcrt_vtk_test2.vtk";
  ASSERT_TRUE(
      writeVtkLevel(path, g->fineLevel(), {{"a", &a}, {"b", &b}}));
  std::ifstream is(path);
  std::stringstream ss;
  ss << is.rdbuf();
  EXPECT_NE(ss.str().find("SCALARS a double"), std::string::npos);
  EXPECT_NE(ss.str().find("SCALARS b double"), std::string::npos);
  std::remove(path.c_str());

  // Unwritable path and undersized variable both fail cleanly.
  EXPECT_FALSE(writeVtkLevel("/nonexistent-dir/x.vtk", g->fineLevel(),
                             {{"a", &a}}));
  CCVariable<double> tooSmall(
      CellRange(IntVector(0), IntVector(1)), 0.0);
  EXPECT_FALSE(writeVtkLevel(path, g->fineLevel(), {{"a", &tooSmall}}));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rmcrt::grid
