#include "grid/level.h"

#include <gtest/gtest.h>

#include <set>

namespace rmcrt::grid {
namespace {

Level makeLevel(int cellsPerSide = 16, int patchSide = 4) {
  const double dx = 1.0 / cellsPerSide;
  return Level(0, CellRange(IntVector(0), IntVector(cellsPerSide)),
               Vector(0.0), Vector(dx), IntVector(patchSide), IntVector(1),
               0);
}

TEST(Level, PatchTilingCoversLevelExactly) {
  Level l = makeLevel(16, 4);
  EXPECT_EQ(l.numPatches(), 64u);
  EXPECT_EQ(l.patchLayout(), IntVector(4, 4, 4));
  std::int64_t covered = 0;
  for (const Patch& p : l.patches()) {
    covered += p.numCells();
    EXPECT_TRUE(l.cells().contains(p.cells()));
  }
  EXPECT_EQ(covered, l.numCells());
}

TEST(Level, PatchIdsAreSequentialFromFirst) {
  Level l(1, CellRange(IntVector(0), IntVector(8)), Vector(0.0),
          Vector(0.125), IntVector(4), IntVector(2), 100);
  EXPECT_EQ(l.patch(0).id(), 100);
  EXPECT_EQ(l.patch(7).id(), 107);
  EXPECT_EQ(l.patch(0).levelIndex(), 1);
}

TEST(Level, CellCenterAndCellAtPositionRoundTrip) {
  Level l = makeLevel(16, 4);
  for (const IntVector& c :
       CellRange(IntVector(0), IntVector(16))) {
    EXPECT_EQ(l.cellAtPosition(l.cellCenter(c)), c);
  }
}

TEST(Level, CellAtPositionClampsBoundary) {
  Level l = makeLevel(8, 4);
  EXPECT_EQ(l.cellAtPosition(Vector(1.0, 1.0, 1.0)), IntVector(7, 7, 7));
  EXPECT_EQ(l.cellAtPosition(Vector(0.0, 0.0, 0.0)), IntVector(0, 0, 0));
  EXPECT_EQ(l.cellAtPosition(Vector(-0.5, 0.5, 0.5)).x(), 0);
}

TEST(Level, PatchContaining) {
  Level l = makeLevel(16, 4);
  const Patch* p = l.patchContaining(IntVector(5, 0, 0));
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->contains(IntVector(5, 0, 0)));
  EXPECT_EQ(p->low(), IntVector(4, 0, 0));
  EXPECT_EQ(l.patchContaining(IntVector(16, 0, 0)), nullptr);
  EXPECT_EQ(l.patchContaining(IntVector(-1, 0, 0)), nullptr);
}

TEST(Level, PatchesIntersectingFindsAllOverlaps) {
  Level l = makeLevel(16, 4);
  // Range straddling a 2x2x2 corner of patches.
  CellRange r(IntVector(3, 3, 3), IntVector(5, 5, 5));
  auto overlaps = l.patchesIntersecting(r);
  EXPECT_EQ(overlaps.size(), 8u);
  std::int64_t covered = 0;
  for (const auto& o : overlaps) covered += o.region.volume();
  EXPECT_EQ(covered, r.volume());
}

TEST(Level, PatchesIntersectingClipsToLevel) {
  Level l = makeLevel(8, 4);
  CellRange r(IntVector(-3, -3, -3), IntVector(2, 2, 2));
  auto overlaps = l.patchesIntersecting(r);
  ASSERT_EQ(overlaps.size(), 1u);
  EXPECT_EQ(overlaps[0].region,
            CellRange(IntVector(0, 0, 0), IntVector(2, 2, 2)));
}

TEST(Level, NeighborsExcludeSelfAndCoverGhostRegion) {
  Level l = makeLevel(12, 4);  // 3x3x3 patches
  const Patch* center = l.patchContaining(IntVector(5, 5, 5));
  ASSERT_NE(center, nullptr);
  auto nbrs = l.neighbors(*center, 1);
  EXPECT_EQ(nbrs.size(), 26u);  // full 3^3 - self
  for (const auto& o : nbrs) EXPECT_NE(o.patch->id(), center->id());
}

TEST(Level, CornerPatchHasFewerNeighbors) {
  Level l = makeLevel(12, 4);
  const Patch* corner = l.patchContaining(IntVector(0, 0, 0));
  auto nbrs = l.neighbors(*corner, 1);
  EXPECT_EQ(nbrs.size(), 7u);  // 2^3 - self
}

TEST(Level, MapCellToCoarserUsesFloor) {
  Level fine(1, CellRange(IntVector(0), IntVector(16)), Vector(0.0),
             Vector(1.0 / 16), IntVector(4), IntVector(4), 0);
  EXPECT_EQ(fine.mapCellToCoarser(IntVector(0, 5, 15)), IntVector(0, 1, 3));
  EXPECT_EQ(fine.mapCellToCoarser(IntVector(-1, -4, -5)),
            IntVector(-1, -1, -2));
  EXPECT_EQ(fine.mapCellToFiner(IntVector(1, 1, 1)), IntVector(4, 4, 4));
}

TEST(Level, PhysicalExtents) {
  Level l = makeLevel(10, 5);
  EXPECT_EQ(l.physLow(), Vector(0.0));
  const Vector hi = l.physHigh();
  EXPECT_NEAR(hi.x(), 1.0, 1e-14);
  EXPECT_NEAR(hi.y(), 1.0, 1e-14);
}

}  // namespace
}  // namespace rmcrt::grid
