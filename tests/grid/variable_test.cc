#include "grid/variable.h"

#include <gtest/gtest.h>

#include "grid/operators.h"

namespace rmcrt::grid {
namespace {

TEST(CCVariable, AllocatesInteriorPlusGhosts) {
  Patch p(0, 0, CellRange(IntVector(4, 4, 4), IntVector(8, 8, 8)));
  CCVariable<double> v(p, 2, 0.0);
  EXPECT_EQ(v.interior(), p.cells());
  EXPECT_EQ(v.window(), p.cells().grown(2));
  EXPECT_EQ(v.numGhost(), 2);
  EXPECT_EQ(v.sizeCells(), 8 * 8 * 8);
  EXPECT_EQ(v.sizeBytes(), 8 * 8 * 8 * 8);
  v[IntVector(2, 2, 2)] = 5.0;  // ghost cell below interior
  EXPECT_DOUBLE_EQ(v[IntVector(2, 2, 2)], 5.0);
}

TEST(CCVariable, UsesMmapStorage) {
  const auto before = mem::MmapArena::stats().bytesMapped;
  {
    Patch p(0, 0, CellRange(IntVector(0), IntVector(32)));
    CCVariable<double> v(p, 1, 1.0);
    EXPECT_GT(mem::MmapArena::stats().bytesMapped, before);
  }
  EXPECT_EQ(mem::MmapArena::stats().bytesMapped, before);
}

TEST(CCVariable, WindowConstructorForLevelWideVars) {
  CCVariable<float> v(CellRange(IntVector(0), IntVector(64)), 3.0f);
  EXPECT_EQ(v.sizeCells(), 64 * 64 * 64);
  EXPECT_FLOAT_EQ(v[IntVector(63, 63, 63)], 3.0f);
}

TEST(CCVariable, CopyRegionGhostExchange) {
  Patch a(0, 0, CellRange(IntVector(0, 0, 0), IntVector(4, 4, 4)));
  Patch b(1, 0, CellRange(IntVector(4, 0, 0), IntVector(8, 4, 4)));
  CCVariable<double> va(a, 0);
  CCVariable<double> vb(b, 1, -1.0);
  va.fill(7.0);
  // b's ghost window overlaps a's interior in the x face.
  const CellRange overlap = vb.window().intersect(va.interior());
  EXPECT_EQ(overlap, CellRange(IntVector(3, -1, -1), IntVector(4, 4, 4))
                         .intersect(va.interior()));
  vb.copyRegion(va, overlap);
  EXPECT_DOUBLE_EQ(vb[IntVector(3, 2, 2)], 7.0);
  EXPECT_DOUBLE_EQ(vb[IntVector(4, 2, 2)], -1.0);  // own interior untouched
}

TEST(VarLabel, EqualityByName) {
  VarLabel a("divQ"), b("divQ"), c("abskg");
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a.name(), "divQ");
}

TEST(Operators, CoarsenAverageExactForConstantField) {
  CCVariable<double> fine(CellRange(IntVector(0), IntVector(8)), 3.5);
  CCVariable<double> coarse(CellRange(IntVector(0), IntVector(2)), 0.0);
  coarsenAverage(fine, IntVector(4), coarse, coarse.window());
  for (const auto& c : coarse.window()) EXPECT_DOUBLE_EQ(coarse[c], 3.5);
}

TEST(Operators, CoarsenAveragePreservesMean) {
  CCVariable<double> fine(CellRange(IntVector(0), IntVector(8)), 0.0);
  double fineSum = 0.0;
  for (const auto& c : fine.window()) {
    fine[c] = c.x() + 2.0 * c.y() + 3.0 * c.z();
    fineSum += fine[c];
  }
  CCVariable<double> coarse(CellRange(IntVector(0), IntVector(4)), 0.0);
  coarsenAverage(fine, IntVector(2), coarse, coarse.window());
  double coarseSum = 0.0;
  for (const auto& c : coarse.window()) coarseSum += coarse[c];
  EXPECT_NEAR(coarseSum * 8.0, fineSum, 1e-9);
}

TEST(Operators, CoarsenAverageLinearFieldExact) {
  // The mean of a linear function over a block equals its value at the
  // block centroid.
  CCVariable<double> fine(CellRange(IntVector(0), IntVector(4)), 0.0);
  for (const auto& c : fine.window()) fine[c] = 2.0 * c.x();
  CCVariable<double> coarse(CellRange(IntVector(0), IntVector(2)), 0.0);
  coarsenAverage(fine, IntVector(2), coarse, coarse.window());
  EXPECT_DOUBLE_EQ(coarse[IntVector(0, 0, 0)], 1.0);   // mean of 0,2
  EXPECT_DOUBLE_EQ(coarse[IntVector(1, 0, 0)], 5.0);   // mean of 4,6
}

TEST(Operators, CoarsenCellTypeWallDominates) {
  CCVariable<CellType> fine(CellRange(IntVector(0), IntVector(4)),
                            CellType::Flow);
  fine[IntVector(3, 3, 3)] = CellType::Wall;
  CCVariable<CellType> coarse(CellRange(IntVector(0), IntVector(2)),
                              CellType::Flow);
  coarsenCellType(fine, IntVector(2), coarse, coarse.window());
  EXPECT_EQ(coarse[IntVector(1, 1, 1)], CellType::Wall);
  EXPECT_EQ(coarse[IntVector(0, 0, 0)], CellType::Flow);
}

TEST(Operators, RefineConstantRoundTripsConstants) {
  CCVariable<double> coarse(CellRange(IntVector(0), IntVector(2)), 0.0);
  for (const auto& c : coarse.window())
    coarse[c] = c.x() + 10.0 * c.y() + 100.0 * c.z();
  CCVariable<double> fine(CellRange(IntVector(0), IntVector(8)), 0.0);
  refineConstant(coarse, IntVector(4), fine, fine.window());
  for (const auto& fc : fine.window()) {
    const IntVector cc(fc.x() / 4, fc.y() / 4, fc.z() / 4);
    EXPECT_DOUBLE_EQ(fine[fc], coarse[cc]);
  }
  // And coarsening back reproduces the coarse field exactly.
  CCVariable<double> back(CellRange(IntVector(0), IntVector(2)), 0.0);
  coarsenAverage(fine, IntVector(4), back, back.window());
  for (const auto& c : coarse.window())
    EXPECT_NEAR(back[c], coarse[c], 1e-12);
}

}  // namespace
}  // namespace rmcrt::grid
