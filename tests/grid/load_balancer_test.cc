#include "grid/load_balancer.h"

#include <gtest/gtest.h>

#include <set>

namespace rmcrt::grid {
namespace {

class LoadBalancerStrategies : public ::testing::TestWithParam<LbStrategy> {};

TEST_P(LoadBalancerStrategies, EveryPatchOwnedByExactlyOneRank) {
  auto g = Grid::makeTwoLevel(Vector(0.0), Vector(1.0), IntVector(32),
                              IntVector(2), IntVector(8), IntVector(8));
  const int P = 7;  // deliberately not a divisor of the patch count
  LoadBalancer lb(*g, P, GetParam());
  std::set<int> seen;
  for (int r = 0; r < P; ++r) {
    for (int id : lb.patchesOf(r)) {
      EXPECT_TRUE(seen.insert(id).second) << "patch " << id << " owned twice";
      EXPECT_EQ(lb.rankOf(id), r);
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), g->numPatches());
}

TEST_P(LoadBalancerStrategies, EveryRankOwnsFinePatchesWhenEnough) {
  auto g = Grid::makeTwoLevel(Vector(0.0), Vector(1.0), IntVector(64),
                              IntVector(4), IntVector(16), IntVector(8));
  const int P = 8;
  LoadBalancer lb(*g, P, GetParam());
  for (int r = 0; r < P; ++r) {
    EXPECT_FALSE(lb.patchesOf(r, *g, g->numLevels() - 1).empty())
        << "rank " << r << " has no fine patches";
  }
}

TEST_P(LoadBalancerStrategies, BalancedWithinOnePatch) {
  auto g = Grid::makeSingleLevel(Vector(0.0), Vector(1.0), IntVector(32),
                                 IntVector(8));  // 64 patches
  const int P = 8;
  LoadBalancer lb(*g, P, GetParam());
  for (int r = 0; r < P; ++r)
    EXPECT_EQ(lb.patchesOf(r).size(), 8u);
  EXPECT_DOUBLE_EQ(lb.imbalance(*g), 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, LoadBalancerStrategies,
                         ::testing::Values(LbStrategy::Block,
                                           LbStrategy::RoundRobin,
                                           LbStrategy::Morton),
                         [](const auto& info) {
                           switch (info.param) {
                             case LbStrategy::Block: return "Block";
                             case LbStrategy::RoundRobin: return "RoundRobin";
                             default: return "Morton";
                           }
                         });

TEST(LoadBalancer, MortonKeepsBlocksSpatiallyCompact) {
  // With a Morton ordering, the 8 patches owned by one rank out of a
  // 4x4x4 layout should form a 2x2x2 octant — bounding box volume equals
  // the owned volume. Block (id) ordering produces slabs with a larger
  // bounding box in at least one rank.
  auto g = Grid::makeSingleLevel(Vector(0.0), Vector(1.0), IntVector(32),
                                 IntVector(8));  // 4x4x4 patches
  LoadBalancer morton(*g, 8, LbStrategy::Morton);
  for (int r = 0; r < 8; ++r) {
    CellRange bbox;
    std::int64_t owned = 0;
    for (int id : morton.patchesOf(r)) {
      const Patch* p = g->patchById(id);
      bbox = bbox.unionWith(p->cells());
      owned += p->numCells();
    }
    EXPECT_EQ(bbox.volume(), owned) << "rank " << r << " not an octant";
  }
}

TEST(LoadBalancer, MortonEncodeInterleavesBits) {
  EXPECT_EQ(mortonEncode(0, 0, 0), 0u);
  EXPECT_EQ(mortonEncode(1, 0, 0), 1u);
  EXPECT_EQ(mortonEncode(0, 1, 0), 2u);
  EXPECT_EQ(mortonEncode(0, 0, 1), 4u);
  EXPECT_EQ(mortonEncode(1, 1, 1), 7u);
  EXPECT_EQ(mortonEncode(2, 0, 0), 8u);
}

TEST(LoadBalancer, SingleRankOwnsEverything) {
  auto g = Grid::makeTwoLevel(Vector(0.0), Vector(1.0), IntVector(16),
                              IntVector(2), IntVector(8), IntVector(8));
  LoadBalancer lb(*g, 1);
  EXPECT_EQ(static_cast<int>(lb.patchesOf(0).size()), g->numPatches());
}

TEST(LoadBalancer, MoreRanksThanPatches) {
  auto g = Grid::makeSingleLevel(Vector(0.0), Vector(1.0), IntVector(16),
                                 IntVector(16));  // 1 patch
  LoadBalancer lb(*g, 4);
  int owners = 0;
  for (int r = 0; r < 4; ++r) owners += static_cast<int>(lb.patchesOf(r).size());
  EXPECT_EQ(owners, 1);
}

}  // namespace
}  // namespace rmcrt::grid
