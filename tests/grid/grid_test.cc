#include "grid/grid.h"

#include <gtest/gtest.h>

namespace rmcrt::grid {
namespace {

TEST(Grid, SingleLevelBasics) {
  auto g = Grid::makeSingleLevel(Vector(0.0), Vector(1.0), IntVector(32),
                                 IntVector(16));
  EXPECT_EQ(g->numLevels(), 1);
  EXPECT_EQ(g->fineLevel().numCells(), 32 * 32 * 32);
  EXPECT_EQ(g->numPatches(), 8);
  EXPECT_NEAR(g->fineLevel().dx().x(), 1.0 / 32, 1e-15);
}

TEST(Grid, TwoLevelMatchesPaperConfiguration) {
  // The paper's MEDIUM problem: 256^3 fine, 64^3 coarse, RR 4.
  auto g = Grid::makeTwoLevel(Vector(0.0), Vector(1.0), IntVector(256),
                              IntVector(4), IntVector(32), IntVector(32));
  EXPECT_EQ(g->numLevels(), 2);
  EXPECT_EQ(g->coarseLevel().cells().size(), IntVector(64));
  EXPECT_EQ(g->fineLevel().cells().size(), IntVector(256));
  // Total cells: 256^3 + 64^3 = 17.04M (paper Section V).
  const std::int64_t total =
      g->coarseLevel().numCells() + g->fineLevel().numCells();
  EXPECT_EQ(total, 17039360);
  // Coarse level spans the whole domain at 4x coarser resolution.
  EXPECT_NEAR(g->coarseLevel().dx().x(), 4.0 * g->fineLevel().dx().x(),
              1e-15);
  EXPECT_EQ(g->fineLevel().refinementRatio(), IntVector(4));
}

TEST(Grid, LargeProblemCellCount) {
  // LARGE: 512^3 fine + 128^3 coarse = 136.31M cells (paper Section V).
  auto g = Grid::makeTwoLevel(Vector(0.0), Vector(1.0), IntVector(512),
                              IntVector(4), IntVector(64), IntVector(64));
  const std::int64_t total =
      g->coarseLevel().numCells() + g->fineLevel().numCells();
  EXPECT_EQ(total, 136314880);
}

TEST(Grid, PatchIdsGloballyUniqueAndResolvable) {
  auto g = Grid::makeTwoLevel(Vector(0.0), Vector(1.0), IntVector(32),
                              IntVector(2), IntVector(16), IntVector(8));
  const int n = g->numPatches();
  EXPECT_EQ(n, 8 + 8);  // 16^3 coarse/8^3 patches + 32^3 fine/16^3 patches
  for (int id = 0; id < n; ++id) {
    const Patch* p = g->patchById(id);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->id(), id);
    EXPECT_EQ(g->levelOfPatch(id).index(), p->levelIndex());
  }
  EXPECT_EQ(g->patchById(n), nullptr);
  EXPECT_EQ(g->patchById(-1), nullptr);
}

TEST(Grid, MultiLevelThreeLevels) {
  auto g = Grid::makeMultiLevel(
      Vector(0.0), Vector(1.0), IntVector(64), IntVector(2),
      {IntVector(8), IntVector(16), IntVector(16)});
  EXPECT_EQ(g->numLevels(), 3);
  EXPECT_EQ(g->level(0).cells().size(), IntVector(16));
  EXPECT_EQ(g->level(1).cells().size(), IntVector(32));
  EXPECT_EQ(g->level(2).cells().size(), IntVector(64));
}

TEST(Grid, LevelsShareDomainCorners) {
  auto g = Grid::makeTwoLevel(Vector(-0.5), Vector(0.5), IntVector(64),
                              IntVector(4), IntVector(16), IntVector(8));
  for (int l = 0; l < g->numLevels(); ++l) {
    EXPECT_EQ(g->level(l).physLow(), Vector(-0.5));
    const Vector hi = g->level(l).physHigh();
    EXPECT_NEAR(hi.x(), 0.5, 1e-14);
    EXPECT_NEAR(hi.z(), 0.5, 1e-14);
  }
}

TEST(Grid, FineCoarseCellMapping) {
  auto g = Grid::makeTwoLevel(Vector(0.0), Vector(1.0), IntVector(16),
                              IntVector(4), IntVector(4), IntVector(4));
  const Level& fine = g->fineLevel();
  const Level& coarse = g->coarseLevel();
  // A physical point maps to corresponding cells on both levels.
  const Vector p(0.3, 0.6, 0.9);
  const IntVector fc = fine.cellAtPosition(p);
  const IntVector cc = coarse.cellAtPosition(p);
  EXPECT_EQ(fine.mapCellToCoarser(fc), cc);
}

}  // namespace
}  // namespace rmcrt::grid
