/// Property tests for the Berger–Rigoutsos-style clusterer: coverage of
/// every flagged cell, pairwise disjointness, the min/max patch-size
/// bounds, and cross-call determinism (the canonical ordering every rank
/// relies on to build the identical grid without communication).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "amr/clusterer.h"
#include "amr/error_estimator.h"

namespace rmcrt::amr {
namespace {

FlagField makeFlags(const CellRange& extent) {
  return FlagField(extent, std::uint8_t{0});
}

bool inAnyBox(const std::vector<CellRange>& boxes, const IntVector& c) {
  for (const CellRange& b : boxes)
    if (b.contains(c)) return true;
  return false;
}

int boxesContaining(const std::vector<CellRange>& boxes, const IntVector& c) {
  int n = 0;
  for (const CellRange& b : boxes)
    if (b.contains(c)) ++n;
  return n;
}

/// A deterministic scattered flag pattern: two blobs plus a stripe.
FlagField scatteredFlags(const CellRange& extent) {
  FlagField flags = makeFlags(extent);
  for (const IntVector& c : CellRange(IntVector(1), IntVector(5)))
    flags[c] = 1;
  for (const IntVector& c : CellRange(IntVector(10, 10, 10), IntVector(14)))
    if (extent.contains(c)) flags[c] = 1;
  for (int x = 0; x < extent.high().x(); ++x)
    flags[IntVector(x, 7, 2)] = 1;
  return flags;
}

TEST(Clusterer, EmptyFlagsYieldNoBoxes) {
  const CellRange extent(IntVector(0), IntVector(16));
  EXPECT_TRUE(clusterFlags(makeFlags(extent), extent, {}).empty());
}

TEST(Clusterer, CoversEveryFlaggedCellExactlyOnce) {
  const CellRange extent(IntVector(0), IntVector(16));
  const FlagField flags = scatteredFlags(extent);
  ClusterConfig cfg;
  cfg.minPatchSize = 4;
  cfg.fillRatio = 0.5;
  const auto boxes = clusterFlags(flags, extent, cfg);
  ASSERT_FALSE(boxes.empty());
  for (const IntVector& c : extent) {
    if (flags[c]) {
      EXPECT_TRUE(inAnyBox(boxes, c)) << "flagged cell " << c << " uncovered";
    }
    EXPECT_LE(boxesContaining(boxes, c), 1)
        << "cell " << c << " in overlapping boxes";
  }
}

TEST(Clusterer, BoxesStayWithinExtentAndRespectMinSize) {
  const CellRange extent(IntVector(0), IntVector(16));
  ClusterConfig cfg;
  cfg.minPatchSize = 4;
  const auto boxes = clusterFlags(scatteredFlags(extent), extent, cfg);
  for (const CellRange& b : boxes) {
    EXPECT_TRUE(extent.contains(b));
    for (int axis = 0; axis < 3; ++axis) {
      // Full min edge except where the domain boundary clips a tile.
      EXPECT_TRUE(b.size()[axis] >= cfg.minPatchSize ||
                  b.high()[axis] == extent.high()[axis])
          << "box " << b << " axis " << axis;
    }
  }
}

TEST(Clusterer, MaxPatchSizeBoundsEveryEdge) {
  const CellRange extent(IntVector(0), IntVector(16));
  FlagField flags = makeFlags(extent);
  for (const IntVector& c : extent) flags[c] = 1;  // everything flagged
  ClusterConfig cfg;
  cfg.minPatchSize = 4;
  cfg.maxPatchSize = 8;
  const auto boxes = clusterFlags(flags, extent, cfg);
  ASSERT_GE(boxes.size(), 8u);  // 16^3 fully flagged, <=8^3 boxes
  std::int64_t covered = 0;
  for (const CellRange& b : boxes) {
    for (int axis = 0; axis < 3; ++axis)
      EXPECT_LE(b.size()[axis], cfg.maxPatchSize);
    covered += b.volume();
  }
  EXPECT_EQ(covered, extent.volume());
}

TEST(Clusterer, SingleFlaggedCellGetsOneMinSizeBox) {
  const CellRange extent(IntVector(0), IntVector(16));
  FlagField flags = makeFlags(extent);
  flags[IntVector(9, 9, 9)] = 1;
  ClusterConfig cfg;
  cfg.minPatchSize = 4;
  const auto boxes = clusterFlags(flags, extent, cfg);
  ASSERT_EQ(boxes.size(), 1u);
  EXPECT_TRUE(boxes[0].contains(IntVector(9, 9, 9)));
  EXPECT_EQ(boxes[0].volume(), 64);
}

TEST(Clusterer, DeterministicAcrossCalls) {
  const CellRange extent(IntVector(0), IntVector(16));
  const FlagField flags = scatteredFlags(extent);
  ClusterConfig cfg;
  cfg.minPatchSize = 4;
  cfg.maxPatchSize = 8;
  const auto a = clusterFlags(flags, extent, cfg);
  const auto b = clusterFlags(flags, extent, cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_TRUE(a[i] == b[i]);
  // Canonical (z, y, x) ordering of low corners.
  for (std::size_t i = 1; i < a.size(); ++i) {
    const IntVector p = a[i - 1].low();
    const IntVector q = a[i].low();
    EXPECT_TRUE(p.z() < q.z() || (p.z() == q.z() && p.y() < q.y()) ||
                (p.z() == q.z() && p.y() == q.y() && p.x() < q.x()));
  }
}

TEST(ErrorEstimator, FlagsSteepGradientsOnly) {
  // A sharp step in sigmaT4 at x=8 flags cells around the step and
  // leaves the flat far field unflagged.
  auto level = grid::Level(0, CellRange(IntVector(0), IntVector(16)),
                           Vector(0.0), Vector(1.0 / 16.0), IntVector(8),
                           IntVector(1), 0);
  grid::CCVariable<double> abskg(level.cells(), 1.0);
  grid::CCVariable<double> sig(level.cells(), 0.0);
  for (const IntVector& c : level.cells())
    sig[c] = c.x() < 8 ? 10.0 : 1.0;
  EstimatorConfig cfg;
  cfg.refineThreshold = 0.15;
  const FlagField flags = estimateRefinementFlags(level, abskg, sig, cfg);
  for (const IntVector& c : level.cells()) {
    const bool nearStep = c.x() == 7 || c.x() == 8;
    EXPECT_EQ(flags[c] != 0, nearStep) << "cell " << c;
  }
}

TEST(ErrorEstimator, CostBiasLowersThresholdWhereCostIsHigh) {
  auto level = grid::Level(0, CellRange(IntVector(0), IntVector(16)),
                           Vector(0.0), Vector(1.0 / 16.0), IntVector(8),
                           IntVector(1), 0);
  grid::CCVariable<double> abskg(level.cells(), 1.0);
  grid::CCVariable<double> sig(level.cells(), 0.0);
  // A mild ramp that stays just under the threshold on its own.
  for (const IntVector& c : level.cells())
    sig[c] = 1.0 + 0.12 * c.x();
  EstimatorConfig cfg;
  cfg.refineThreshold = 0.05;
  const FlagField unbiased = estimateRefinementFlags(level, abskg, sig, cfg);

  grid::CCVariable<double> density(level.cells(), 1.0);
  for (const IntVector& c : level.cells())
    if (c.z() >= 8) density[c] = 50.0;  // hot half
  cfg.costBias = 1.0;
  const FlagField biased =
      estimateRefinementFlags(level, abskg, sig, cfg, &density);
  int extra = 0;
  for (const IntVector& c : level.cells()) {
    if (unbiased[c]) {
      EXPECT_TRUE(biased[c]) << c;  // bias only adds flags
    }
    if (biased[c] && !unbiased[c]) {
      ++extra;
      EXPECT_GE(c.z(), 8) << "extra flag outside the hot half at " << c;
    }
  }
  EXPECT_GT(extra, 0) << "cost feedback should flag extra hot cells";
}

}  // namespace
}  // namespace rmcrt::amr
