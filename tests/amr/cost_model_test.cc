/// CostModel (EWMA smoothing, density-transfer prediction, regrid
/// remapping) and the measured-cost LoadBalancer path it feeds: the
/// imbalance(grid, costs) overload and the cost-weighted contiguous
/// partition that pulls the metric down on skewed workloads.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "amr/cost_model.h"
#include "grid/load_balancer.h"

namespace rmcrt::amr {
namespace {

using grid::Grid;
using grid::LoadBalancer;

std::shared_ptr<Grid> uniformTwoLevel() {
  return Grid::makeTwoLevel(Vector(0.0), Vector(1.0), IntVector(16),
                            IntVector(2), IntVector(4), IntVector(4));
}

TEST(CostModel, EwmaBlendsSamples) {
  CostModel m(0.5);
  m.record(3, 100.0);
  EXPECT_DOUBLE_EQ(m.cost(3), 100.0);  // first sample seeds
  m.record(3, 200.0);
  EXPECT_DOUBLE_EQ(m.cost(3), 150.0);  // 0.5*200 + 0.5*100
  EXPECT_FALSE(m.has(7));
  EXPECT_DOUBLE_EQ(m.cost(7), 0.0);
}

TEST(CostModel, MeasuredCostsFallBackToCellCounts) {
  auto grid = uniformTwoLevel();
  CostModel m;
  const auto costs = m.measuredCosts(*grid);
  ASSERT_EQ(static_cast<int>(costs.size()), grid->numPatches());
  for (int l = 0; l < grid->numLevels(); ++l)
    for (const auto& p : grid->level(l).patches())
      EXPECT_DOUBLE_EQ(costs[static_cast<std::size_t>(p.id())],
                       static_cast<double>(p.numCells()));
}

TEST(CostModel, MeasuredCostsUseRecordedValuesAndLevelDensity) {
  auto grid = uniformTwoLevel();
  CostModel m;
  const auto& fine = grid->fineLevel();
  const int recorded = fine.patches().front().id();
  const double cells =
      static_cast<double>(fine.patches().front().numCells());
  m.record(recorded, 10.0 * cells);  // density 10 per cell
  const auto costs = m.measuredCosts(*grid);
  EXPECT_DOUBLE_EQ(costs[static_cast<std::size_t>(recorded)], 10.0 * cells);
  // Unrecorded fine patches inherit the level's mean recorded density.
  const int other = fine.patches().back().id();
  EXPECT_DOUBLE_EQ(
      costs[static_cast<std::size_t>(other)],
      10.0 * static_cast<double>(fine.patches().back().numCells()));
}

TEST(CostModel, PredictCostsTransfersDensityThroughOverlap) {
  // Old fine level: full uniform tiling. New fine level: one adaptive box
  // covering exactly one old patch -> predicted cost equals that patch's
  // recorded cost.
  auto oldGrid = uniformTwoLevel();
  CostModel m;
  for (const auto& p : oldGrid->fineLevel().patches())
    m.record(p.id(), 1000.0);
  const auto& first = oldGrid->fineLevel().patches().front();
  const CellRange coarseBox = first.cells().coarsened(IntVector(2));
  auto newGrid =
      Grid::makeAdaptive(Vector(0.0), Vector(1.0), IntVector(8),
                         IntVector(4), IntVector(2), {coarseBox});
  const auto predicted = m.predictCosts(*newGrid, *oldGrid);
  const auto& newFine = newGrid->fineLevel();
  ASSERT_EQ(newFine.numPatches(), 1u);
  EXPECT_DOUBLE_EQ(
      predicted[static_cast<std::size_t>(newFine.patches()[0].id())],
      1000.0);
}

TEST(CostModel, RemapAfterRegridSeedsNewPatchIds) {
  auto oldGrid = uniformTwoLevel();
  CostModel m;
  for (const auto& p : oldGrid->fineLevel().patches())
    m.record(p.id(), 500.0);
  auto newGrid = Grid::makeAdaptive(
      Vector(0.0), Vector(1.0), IntVector(8), IntVector(4), IntVector(2),
      {CellRange(IntVector(0), IntVector(4))});
  m.remapAfterRegrid(*oldGrid, *newGrid);
  EXPECT_EQ(static_cast<int>(m.numRecorded()), newGrid->numPatches());
  for (const auto& p : newGrid->fineLevel().patches())
    EXPECT_TRUE(m.has(p.id()));
}

TEST(LoadBalancer, CostImbalanceIsMaxOverMean) {
  // 2 ranks; hand-checkable: rank totals {30, 10} -> 30 / 20 = 1.5.
  auto grid = Grid::makeSingleLevel(Vector(0.0), Vector(1.0), IntVector(8),
                                    IntVector(4));  // 8 patches
  LoadBalancer lb(*grid, 2);
  std::vector<double> costs(8, 0.0);
  double rank0 = 0.0, rank1 = 0.0;
  for (int id = 0; id < 8; ++id) {
    const double c = lb.rankOf(id) == 0 ? 7.5 : 2.5;
    costs[static_cast<std::size_t>(id)] = c;
    (lb.rankOf(id) == 0 ? rank0 : rank1) += c;
  }
  ASSERT_DOUBLE_EQ(rank0, 30.0);
  ASSERT_DOUBLE_EQ(rank1, 10.0);
  EXPECT_DOUBLE_EQ(lb.imbalance(*grid, costs), 1.5);
  // Degenerate input: all-zero costs read as balanced.
  EXPECT_DOUBLE_EQ(lb.imbalance(*grid, std::vector<double>(8, 0.0)), 1.0);
}

TEST(LoadBalancer, CostWeightedPartitionBeatsUniformOnSkewedCosts) {
  auto grid = Grid::makeSingleLevel(Vector(0.0), Vector(1.0), IntVector(16),
                                    IntVector(4));  // 64 patches
  const int P = 8;
  // Skew: a handful of patches dominate.
  std::vector<double> costs(64, 1.0);
  for (int id = 0; id < 8; ++id) costs[static_cast<std::size_t>(id)] = 40.0;

  LoadBalancer uniform(*grid, P);
  LoadBalancer weighted(*grid, P, costs);
  const double before = uniform.imbalance(*grid, costs);
  const double after = weighted.imbalance(*grid, costs);
  EXPECT_LT(after, before);
  // Contiguous SFC prefixes cannot split two Morton-adjacent hot patches
  // across a rank boundary, so the floor here is ~2 * 40 / mean, not 1.0.
  EXPECT_LE(after, 1.8);
  // Every patch still owned by exactly one valid rank.
  for (int id = 0; id < 64; ++id) {
    EXPECT_GE(weighted.rankOf(id), 0);
    EXPECT_LT(weighted.rankOf(id), P);
  }
}

}  // namespace
}  // namespace rmcrt::amr
