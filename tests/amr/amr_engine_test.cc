/// AmrEngine lifecycle tests: regrid decisions, task-graph recompiles,
/// migration through the scheduler, rebalance hysteresis, divQ
/// determinism across rank counts on a regridded grid, and the
/// Burns & Christon acceptance run (>= 30% fewer fine cells than the
/// uniform fine grid with a post-rebalance measured-cost imbalance
/// <= 1.15 on 8 simulated ranks).

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "amr/amr_engine.h"
#include "core/problems.h"
#include "core/rmcrt_component.h"
#include "gpu/gpu_data_warehouse.h"
#include "grid/load_balancer.h"
#include "runtime/scheduler.h"
#include "runtime/simulation_controller.h"
#include "util/metrics.h"

namespace rmcrt::amr {
namespace {

using core::RmcrtComponent;
using core::RmcrtLabels;
using core::RmcrtSetup;
using grid::CCVariable;
using grid::Grid;
using grid::LoadBalancer;
using runtime::Scheduler;
using runtime::SimulationController;

RmcrtSetup smallSetup(int rays = 8) {
  RmcrtSetup setup;
  setup.problem = core::burnsChriston();
  setup.trace.nDivQRays = rays;
  setup.trace.seed = 71;
  setup.roiHalo = 2;
  return setup;
}

AmrConfig smallConfig() {
  AmrConfig cfg;
  cfg.regridEvery = 2;
  cfg.estimator.refineThreshold = 0.10;
  cfg.cluster.minPatchSize = 2;
  cfg.cluster.maxPatchSize = 2;
  cfg.cluster.fillRatio = 0.7;
  return cfg;
}

struct AdaptiveRun {
  std::shared_ptr<AmrEngine> engine;
  // Schedulers hold channels into the communicator; keep it alive past
  // them (members destroy in reverse declaration order).
  std::shared_ptr<comm::Communicator> world;
  std::vector<std::unique_ptr<Scheduler>> scheds;
};

/// Drive the full adaptive lifecycle on \p numRanks simulated ranks.
AdaptiveRun runAdaptive(int numRanks, int steps, const RmcrtSetup& setup,
                        const AmrConfig& cfg, const IntVector& coarseCells,
                        const IntVector& coarsePatchSize,
                        MetricsRegistry* metrics = nullptr) {
  auto grid =
      Grid::makeTwoLevel(Vector(0.0), Vector(1.0), coarseCells * IntVector(2),
                         IntVector(2), coarsePatchSize * IntVector(2),
                         coarsePatchSize);
  auto lb = std::make_shared<LoadBalancer>(*grid, numRanks);

  AdaptiveRun run;
  run.engine = std::make_shared<AmrEngine>(grid, lb, numRanks, cfg);
  run.engine->setPropertySampler(
      RmcrtComponent::makePropertySampler(setup.problem));
  if (metrics) run.engine->setMetrics(metrics);
  run.world = std::make_shared<comm::Communicator>(numRanks);
  for (int r = 0; r < numRanks; ++r)
    run.scheds.push_back(
        std::make_unique<Scheduler>(grid, lb, *run.world, r));

  std::vector<std::thread> threads;
  for (int r = 0; r < numRanks; ++r) {
    threads.emplace_back([&, r] {
      Scheduler& sched = *run.scheds[r];
      SimulationController ctl(
          sched,
          [&](Scheduler& s) {
            RmcrtComponent::registerAdaptivePipeline(
                s, setup, &run.engine->costModel());
          },
          [&](Scheduler& s) {
            s.addTask(runtime::makeCarryForwardTask(
                {RmcrtLabels::divQ}, s.grid().numLevels() - 1));
          });
      ctl.setRegridHook(
          [&](int step) { return run.engine->maybeRegrid(step, sched); });
      if (metrics && r == 0)
        ctl.setMetrics(metrics, "sim.", /*ownsTimeline=*/true);
      ctl.run(steps);
    });
  }
  for (auto& t : threads) t.join();
  return run;
}

TEST(AmrEngine, RequiresTwoLevelUniformCoarseGrid) {
  auto single = Grid::makeSingleLevel(Vector(0.0), Vector(1.0),
                                      IntVector(8), IntVector(4));
  auto lb = std::make_shared<LoadBalancer>(*single, 1);
  EXPECT_THROW(AmrEngine(single, lb, 1, AmrConfig{}), std::invalid_argument);
}

TEST(AmrEngine, RegridProducesAdaptiveGridAndRecompilesGraph) {
  MetricsRegistry metrics;
  auto run = runAdaptive(1, 5, smallSetup(), smallConfig(), IntVector(8),
                         IntVector(4), &metrics);
  const auto stats = run.engine->stats();
  EXPECT_GE(stats.regrids, 1);
  const auto grid = run.engine->grid();
  ASSERT_EQ(grid->numLevels(), 2);
  EXPECT_FALSE(grid->fineLevel().uniformlyTiled());
  EXPECT_LT(grid->fineLevel().coveredCells(),
            grid->fineLevel().numCells());
  EXPECT_GT(grid->fineLevel().numPatches(), 0u);
  // Scheduler was rewired onto the engine's grid.
  EXPECT_EQ(&run.scheds[0]->grid(), grid.get());
  // The controller recompiled and validated the graph on regrid steps.
  const auto snap = metrics.snapshot();
  const auto* recompiles = snap.find("sim.graph_recompiles");
  ASSERT_NE(recompiles, nullptr);
  EXPECT_GE(recompiles->value, 1.0);
  // The regrid lifecycle counters made it to the registry.
  const auto* regrids = snap.find("rmcrt.amr.regrids");
  ASSERT_NE(regrids, nullptr);
  EXPECT_GE(regrids->value, 1.0);
  // S2: the imbalance gauge is exported and live.
  const auto* gauge = snap.find("rmcrt.lb.imbalance");
  ASSERT_NE(gauge, nullptr);
  EXPECT_GE(gauge->value, 1.0);
}

TEST(AmrEngine, DivQDeterministicAcrossRankCounts) {
  // The complete adaptive lifecycle (estimate, cluster, regrid, migrate,
  // rebalance, trace) must produce the identical grid AND bitwise
  // identical divQ regardless of the rank decomposition.
  const RmcrtSetup setup = smallSetup(12);
  const AmrConfig cfg = smallConfig();
  auto r1 = runAdaptive(1, 5, setup, cfg, IntVector(8), IntVector(4));
  auto r2 = runAdaptive(2, 5, setup, cfg, IntVector(8), IntVector(4));
  auto r3 = runAdaptive(3, 5, setup, cfg, IntVector(8), IntVector(4));

  const auto g1 = r1.engine->grid();
  for (const auto& other : {r2.engine->grid(), r3.engine->grid()}) {
    ASSERT_EQ(g1->numPatches(), other->numPatches());
    for (int id = 0; id < g1->numPatches(); ++id)
      ASSERT_TRUE(g1->patchById(id)->cells() == other->patchById(id)->cells())
          << "patch " << id << " differs between rank counts";
  }

  auto divQOf = [&](AdaptiveRun& run, int pid) -> const CCVariable<double>& {
    const int owner = run.engine->loadBalancer()->rankOf(pid);
    return run.scheds[static_cast<std::size_t>(owner)]
        ->newDW()
        .get<double>(RmcrtLabels::divQ, pid);
  };
  const int fineLevel = g1->numLevels() - 1;
  for (const auto& p : g1->level(fineLevel).patches()) {
    const auto& a = divQOf(r1, p.id());
    const auto& b = divQOf(r2, p.id());
    const auto& c = divQOf(r3, p.id());
    for (const IntVector& cell : p.cells()) {
      ASSERT_DOUBLE_EQ(a[cell], b[cell]) << "patch " << p.id();
      ASSERT_DOUBLE_EQ(a[cell], c[cell]) << "patch " << p.id();
    }
  }
}

TEST(AmrEngine, MigrationCarriesDivQAcrossRegrid) {
  // With radiation every 2 steps and a regrid on the off-step, the
  // carry-forward right after the regrid must read migrated divQ (old
  // ids are gone); the run completing with finite divQ everywhere means
  // migration + DW rewiring held together.
  const RmcrtSetup setup = smallSetup();
  AmrConfig cfg = smallConfig();
  cfg.regridEvery = 3;

  auto grid = Grid::makeTwoLevel(Vector(0.0), Vector(1.0), IntVector(16),
                                 IntVector(2), IntVector(8), IntVector(4));
  auto lb = std::make_shared<LoadBalancer>(*grid, 1);
  auto engine = std::make_shared<AmrEngine>(grid, lb, 1, cfg);
  engine->setPropertySampler(
      RmcrtComponent::makePropertySampler(setup.problem));
  comm::Communicator world(1);
  Scheduler sched(grid, lb, world, 0);
  SimulationController ctl(
      sched,
      [&](Scheduler& s) {
        RmcrtComponent::registerAdaptivePipeline(s, setup,
                                                 &engine->costModel());
      },
      [&](Scheduler& s) {
        s.addTask(runtime::makeCarryForwardTask(
            {RmcrtLabels::divQ}, s.grid().numLevels() - 1));
      });
  ctl.setRadiationInterval(2);
  ctl.setRegridHook([&](int step) { return engine->maybeRegrid(step, sched); });
  const auto records = ctl.run(5);  // regrid at step 3 (a carry-forward step)
  ASSERT_TRUE(records[3].regridded);
  ASSERT_FALSE(records[3].radiationStep);
  EXPECT_GE(engine->stats().regrids, 1);
  const auto g = engine->grid();
  for (const auto& p : g->fineLevel().patches()) {
    const auto& divQ = sched.newDW().get<double>(RmcrtLabels::divQ, p.id());
    for (const IntVector& c : p.cells())
      ASSERT_TRUE(std::isfinite(divQ[c])) << "patch " << p.id();
  }
}

TEST(AmrEngine, GpuLevelDatabaseInvalidatedOnRegrid) {
  gpu::GpuDevice dev{[] {
    gpu::GpuDevice::Config c;
    c.globalMemoryBytes = 64 << 20;
    return c;
  }()};
  gpu::GpuDataWarehouse gdw(dev);
  CCVariable<double> coarse(CellRange(IntVector(0), IntVector(8)), 1.0);
  gdw.getOrUploadLevelVar("abskg", 0, coarse);
  gdw.getOrUploadLevelVar("sigmaT4OverPi", 1, coarse);
  ASSERT_EQ(gdw.numLevelVarCopies(), 2u);
  EXPECT_GT(gdw.invalidateLevel(0), 0u);
  EXPECT_EQ(gdw.numLevelVarCopies(), 1u);  // level 1 entry survives
  EXPECT_GT(gdw.invalidateLevel(1), 0u);
  EXPECT_EQ(gdw.numLevelVarCopies(), 0u);
}

TEST(AmrEngine, RebalanceHysteresisSkipsMarginalGains) {
  // Feed the cost model a perfectly uniform workload: measured imbalance
  // stays at 1.0, below the threshold, so no rebalance ever fires.
  auto grid = Grid::makeTwoLevel(Vector(0.0), Vector(1.0), IntVector(16),
                                 IntVector(2), IntVector(8), IntVector(4));
  auto lb = std::make_shared<LoadBalancer>(*grid, 2);
  AmrConfig cfg;
  cfg.regridEvery = 0;  // isolate the rebalance path
  AmrEngine engine(grid, lb, 2, cfg);
  for (const auto& p : grid->fineLevel().patches())
    engine.costModel().record(p.id(), 100.0);
  comm::Communicator world(2);
  Scheduler s0(grid, lb, world, 0);
  EXPECT_FALSE(engine.maybeRegrid(1, s0));
  EXPECT_EQ(engine.stats().rebalances, 0);
  EXPECT_DOUBLE_EQ(engine.stats().lastImbalance,
                   lb->imbalance(*grid, engine.costModel().measuredCosts(*grid)));
}

TEST(AmrEngine, BurnsChristonAcceptance8Ranks) {
  // The PR's acceptance demo: adaptive Burns & Christon on 8 simulated
  // ranks refines <= 70% of the uniform fine grid while the
  // measured-cost imbalance gauge lands at or below 1.15 after
  // rebalancing.
  MetricsRegistry metrics;
  RmcrtSetup setup = smallSetup(6);
  AmrConfig cfg;
  cfg.regridEvery = 2;
  cfg.estimator.refineThreshold = 0.10;
  cfg.cluster.minPatchSize = 2;
  cfg.cluster.maxPatchSize = 2;
  auto run = runAdaptive(8, 7, setup, cfg, IntVector(16), IntVector(8),
                         &metrics);
  const auto stats = run.engine->stats();
  const auto grid = run.engine->grid();
  ASSERT_GE(stats.regrids, 1);
  const double uniformFine =
      static_cast<double>(grid->fineLevel().numCells());
  const double adaptiveFine = static_cast<double>(stats.fineCoveredCells);
  EXPECT_LE(adaptiveFine, 0.70 * uniformFine)
      << "adaptive grid must save >= 30% of fine cells";
  EXPECT_GT(adaptiveFine, 0.0);
  EXPECT_LE(stats.lastImbalance, 1.15)
      << "post-rebalance measured-cost imbalance too high";
  const auto snap = metrics.snapshot();
  const auto* gauge = snap.find("rmcrt.lb.imbalance");
  ASSERT_NE(gauge, nullptr);
  EXPECT_LE(gauge->value, 1.15);
}

}  // namespace
}  // namespace rmcrt::amr
