/// Satellites around the regrid lifecycle: regridWithPatchSize input
/// validation (S1), VTK refinement-flag / patch-ownership cell fields
/// (S4), and grid-structure checkpoints that survive a regrid (S3).

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "amr/migrator.h"
#include "grid/grid.h"
#include "grid/load_balancer.h"
#include "grid/regridder.h"
#include "grid/vtk_writer.h"
#include "runtime/data_archiver.h"
#include "runtime/data_warehouse.h"

namespace rmcrt::grid {
namespace {

std::shared_ptr<Grid> adaptiveGrid() {
  return Grid::makeAdaptive(
      Vector(0.0), Vector(1.0), IntVector(8), IntVector(4), IntVector(2),
      {CellRange(IntVector(0), IntVector(4)),
       CellRange(IntVector(4, 4, 4), IntVector(8))});
}

TEST(Regridder, RejectsAdaptiveGrids) {
  auto grid = adaptiveGrid();
  try {
    regridWithPatchSize(*grid, 4);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("AmrEngine"), std::string::npos)
        << "error should point at the adaptive regrid path: " << e.what();
  }
}

TEST(Regridder, RejectsNonDividingPatchSizeWithDescriptiveError) {
  auto grid = Grid::makeTwoLevel(Vector(0.0), Vector(1.0), IntVector(16),
                                 IntVector(2), IntVector(4), IntVector(4));
  try {
    regridWithPatchSize(*grid, 5);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("5"), std::string::npos) << msg;
    EXPECT_NE(msg.find("16"), std::string::npos) << msg;
  }
  EXPECT_THROW(regridWithPatchSize(*grid, 0), std::invalid_argument);
}

TEST(VtkWriter, RefinementFlagFieldMarksCoveredCoarseCells) {
  auto grid = adaptiveGrid();
  const auto field =
      refinementFlagField(grid->coarseLevel(), grid->fineLevel());
  for (const IntVector& c : grid->coarseLevel().cells()) {
    const bool covered = CellRange(IntVector(0), IntVector(4)).contains(c) ||
                         CellRange(IntVector(4), IntVector(8)).contains(c);
    EXPECT_DOUBLE_EQ(field[c], covered ? 1.0 : 0.0) << "cell " << c;
  }
}

TEST(VtkWriter, OwnershipFieldTracksLoadBalancerRanks) {
  auto grid = adaptiveGrid();
  LoadBalancer lb(*grid, 2);
  const auto field = ownershipField(grid->fineLevel(), lb);
  for (const auto& p : grid->fineLevel().patches())
    for (const IntVector& c : p.cells())
      EXPECT_DOUBLE_EQ(field[c], static_cast<double>(lb.rankOf(p.id())));
  // Cells outside every fine patch carry the -1 sentinel.
  EXPECT_DOUBLE_EQ(field[IntVector(0, 0, 15)], -1.0);
}

TEST(DataArchiver, GridRoundTripsThroughCheckpoint) {
  const std::string dir = "amr_ckpt_grid_test";
  auto grid = adaptiveGrid();
  ASSERT_TRUE(runtime::DataArchiver::checkpointGrid(dir, *grid));
  auto restored = runtime::DataArchiver::restoreGrid(dir);
  ASSERT_NE(restored, nullptr);
  ASSERT_EQ(restored->numLevels(), grid->numLevels());
  for (int l = 0; l < grid->numLevels(); ++l) {
    const Level& a = grid->level(l);
    const Level& b = restored->level(l);
    EXPECT_TRUE(a.cells() == b.cells());
    EXPECT_EQ(a.uniformlyTiled(), b.uniformlyTiled());
    EXPECT_TRUE(a.refinementRatio() == b.refinementRatio());
    ASSERT_EQ(a.numPatches(), b.numPatches());
    for (std::size_t i = 0; i < a.numPatches(); ++i) {
      EXPECT_TRUE(a.patch(i).cells() == b.patch(i).cells());
      EXPECT_EQ(a.patch(i).id(), b.patch(i).id());
    }
    EXPECT_DOUBLE_EQ(a.dx().x(), b.dx().x());
  }
  std::remove((dir + "/grid.txt").c_str());
  std::remove(dir.c_str());
}

TEST(DataArchiver, CheckpointRestoreSurvivesARegrid) {
  // Simulate a regrid mid-run: write data + grid on the regridded patch
  // set, restore both into a fresh warehouse, and verify values land on
  // the restored grid's patches exactly.
  const std::string dir = "amr_ckpt_regrid_test";
  auto before = Grid::makeTwoLevel(Vector(0.0), Vector(1.0), IntVector(16),
                                   IntVector(2), IntVector(8), IntVector(4));
  auto after = adaptiveGrid();  // "the grid the engine emitted"

  // Data produced on the old grid migrates onto the new one, then gets
  // checkpointed against the new grid's structure.
  runtime::DataWarehouse oldDW;
  for (const auto& p : before->fineLevel().patches()) {
    CCVariable<double> v(p, 0, 0.0);
    for (const IntVector& c : p.cells())
      v[c] = 1.0 + c.x() + 100.0 * c.y() + 10000.0 * c.z();
    oldDW.put("divQ", p.id(), std::move(v));
  }
  amr::Migrator mig(*before, *after);
  std::vector<int> ids;
  for (const auto& p : after->fineLevel().patches()) ids.push_back(p.id());
  auto migrated = mig.migratePatchVar<double>("divQ", 1, oldDW, ids);
  runtime::DataWarehouse dw;
  for (std::size_t i = 0; i < ids.size(); ++i)
    dw.put("divQ", ids[i], std::move(migrated[i]));

  ASSERT_TRUE(runtime::DataArchiver::checkpointGrid(dir, *after));
  ASSERT_TRUE(runtime::DataArchiver::checkpoint(dir, dw, {"divQ"}, ids));

  auto restoredGrid = runtime::DataArchiver::restoreGrid(dir);
  ASSERT_NE(restoredGrid, nullptr);
  EXPECT_FALSE(restoredGrid->fineLevel().uniformlyTiled());
  runtime::DataWarehouse restoredDW;
  ASSERT_TRUE(runtime::DataArchiver::restore(dir, restoredDW));
  for (const auto& p : restoredGrid->fineLevel().patches()) {
    ASSERT_TRUE(restoredDW.exists("divQ", p.id()));
    const auto& v = restoredDW.get<double>("divQ", p.id());
    EXPECT_TRUE(v.window() == p.cells());
    for (const IntVector& c : p.cells())
      ASSERT_DOUBLE_EQ(v[c], 1.0 + c.x() + 100.0 * c.y() + 10000.0 * c.z());
  }
  for (const auto& e : runtime::DataArchiver::index(dir))
    std::remove((dir + "/" + e.label + ".p" + std::to_string(e.patchId) +
                 ".bin").c_str());
  std::remove((dir + "/index.txt").c_str());
  std::remove((dir + "/grid.txt").c_str());
  std::remove(dir.c_str());
}

TEST(DataArchiver, RestoreGridRejectsMissingOrCorruptRecord) {
  EXPECT_EQ(runtime::DataArchiver::restoreGrid("no_such_dir"), nullptr);
}

}  // namespace
}  // namespace rmcrt::grid
