/// Migration round-trips: windowed copy is bit-exact where old patches
/// covered, coarse interpolation fills newly refined space, restriction
/// projects derefined fine data back, and a refine -> derefine cycle of
/// coarse-constant data is exact. Also the trace-side prolongation
/// (fillUncoveredFromCoarser) used by the adaptive pipeline.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "amr/migrator.h"
#include "grid/grid.h"
#include "runtime/data_warehouse.h"

namespace rmcrt::amr {
namespace {

using grid::CCVariable;
using grid::Grid;
using runtime::DataWarehouse;

double cellValue(const IntVector& c) {
  return 1.0 + c.x() + 100.0 * c.y() + 10000.0 * c.z();
}

TEST(Migrator, WindowedCopyIsBitExactAcrossRelayout) {
  // Same extent, different fine patch layout old -> new: every fine cell
  // covered by both keeps its exact value.
  auto oldGrid = Grid::makeTwoLevel(Vector(0.0), Vector(1.0), IntVector(16),
                                    IntVector(2), IntVector(4), IntVector(4));
  auto newGrid = Grid::makeAdaptive(
      Vector(0.0), Vector(1.0), IntVector(8), IntVector(4), IntVector(2),
      {CellRange(IntVector(0), IntVector(4)),
       CellRange(IntVector(4, 0, 0), IntVector(8, 4, 4))});

  DataWarehouse dw;
  const int fineLevel = 1;
  for (const auto& p : oldGrid->level(fineLevel).patches()) {
    CCVariable<double> v(p, 0, 0.0);
    for (const IntVector& c : p.cells()) v[c] = cellValue(c);
    dw.put("divQ", p.id(), std::move(v));
  }

  Migrator mig(*oldGrid, *newGrid);
  std::vector<int> ids;
  for (const auto& p : newGrid->level(fineLevel).patches())
    ids.push_back(p.id());
  const auto out = mig.migratePatchVar<double>("divQ", fineLevel, dw, ids);
  ASSERT_EQ(out.size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const grid::Patch* p = newGrid->patchById(ids[i]);
    for (const IntVector& c : p->cells())
      ASSERT_DOUBLE_EQ(out[i][c], cellValue(c)) << "cell " << c;
  }
}

TEST(Migrator, NewlyRefinedCellsTakeCoarseParentValues) {
  // Old grid has NO fine patches; the new fine patch must be prolonged
  // entirely from the coarse source.
  auto oldGrid = Grid::makeAdaptive(Vector(0.0), Vector(1.0), IntVector(8),
                                    IntVector(4), IntVector(2), {});
  auto newGrid = Grid::makeAdaptive(
      Vector(0.0), Vector(1.0), IntVector(8), IntVector(4), IntVector(2),
      {CellRange(IntVector(2, 2, 2), IntVector(6))});

  DataWarehouse dw;  // empty: no old fine data
  CCVariable<double> coarse(oldGrid->coarseLevel().cells(), 0.0);
  for (const IntVector& c : coarse.window()) coarse[c] = cellValue(c);

  Migrator mig(*oldGrid, *newGrid);
  std::vector<int> ids;
  for (const auto& p : newGrid->fineLevel().patches()) ids.push_back(p.id());
  const auto out =
      mig.migratePatchVar<double>("divQ", 1, dw, ids, &coarse);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const grid::Patch* p = newGrid->patchById(ids[i]);
    for (const IntVector& c : p->cells()) {
      const IntVector cc(c.x() / 2, c.y() / 2, c.z() / 2);
      ASSERT_DOUBLE_EQ(out[i][c], cellValue(cc));
    }
  }
}

TEST(Migrator, RefineThenDerefineIsExactForCoarseConstantData) {
  // Prolong coarse data to fine (piecewise constant), then restrict the
  // fine image back: averaging rr^3 identical children recovers the
  // original coarse values exactly, cell for cell.
  auto coarseOnly = Grid::makeAdaptive(Vector(0.0), Vector(1.0), IntVector(8),
                                       IntVector(4), IntVector(2), {});
  auto refined = Grid::makeAdaptive(
      Vector(0.0), Vector(1.0), IntVector(8), IntVector(4), IntVector(2),
      {CellRange(IntVector(0), IntVector(8))});  // fully refined

  CCVariable<double> coarse(coarseOnly->coarseLevel().cells(), 0.0);
  for (const IntVector& c : coarse.window()) coarse[c] = cellValue(c);

  DataWarehouse dw;
  Migrator refineMig(*coarseOnly, *refined);
  std::vector<int> ids;
  for (const auto& p : refined->fineLevel().patches()) ids.push_back(p.id());
  auto fineVars =
      refineMig.migratePatchVar<double>("divQ", 1, dw, ids, &coarse);

  // Stash the refined data as the "old" DW of the derefining regrid.
  DataWarehouse fineDW;
  for (std::size_t i = 0; i < ids.size(); ++i)
    fineDW.put("divQ", ids[i], std::move(fineVars[i]));

  Migrator derefMig(*refined, *coarseOnly);
  const LevelImage<double> img =
      gatherAvailable<double>(fineDW, "divQ", refined->fineLevel());
  CCVariable<double> restored(coarseOnly->coarseLevel().cells(), -1.0);
  derefMig.restrictToCoarse<double>(img, 1, restored);
  for (const IntVector& c : restored.window())
    ASSERT_DOUBLE_EQ(restored[c], coarse[c]) << "coarse cell " << c;
}

TEST(Migrator, RestrictionSkipsPartialBlocks) {
  auto refined = Grid::makeAdaptive(
      Vector(0.0), Vector(1.0), IntVector(8), IntVector(4), IntVector(2),
      {CellRange(IntVector(0), IntVector(4))});  // quarter refined
  auto coarseOnly = Grid::makeAdaptive(Vector(0.0), Vector(1.0), IntVector(8),
                                       IntVector(4), IntVector(2), {});
  DataWarehouse dw;
  for (const auto& p : refined->fineLevel().patches()) {
    CCVariable<double> v(p, 0, 7.0);
    dw.put("divQ", p.id(), std::move(v));
  }
  Migrator mig(*refined, *coarseOnly);
  const auto img = gatherAvailable<double>(dw, "divQ", refined->fineLevel());
  CCVariable<double> coarse(coarseOnly->coarseLevel().cells(), -3.0);
  mig.restrictToCoarse<double>(img, 1, coarse);
  const CellRange coveredCoarse(IntVector(0), IntVector(4));
  for (const IntVector& c : coarse.window()) {
    if (coveredCoarse.contains(c))
      EXPECT_DOUBLE_EQ(coarse[c], 7.0);
    else
      EXPECT_DOUBLE_EQ(coarse[c], -3.0);  // untouched
  }
}

TEST(FillUncovered, ProlongsOnlyUncoveredCells) {
  auto grid = Grid::makeAdaptive(
      Vector(0.0), Vector(1.0), IntVector(8), IntVector(4), IntVector(2),
      {CellRange(IntVector(0), IntVector(4))});
  const grid::Level& fine = grid->fineLevel();
  CCVariable<double> coarse(grid->coarseLevel().cells(), 0.0);
  for (const IntVector& c : coarse.window()) coarse[c] = cellValue(c);

  const CellRange region(IntVector(4), IntVector(12));  // straddles the box
  CCVariable<double> v(region, -5.0);
  fillUncoveredFromCoarser(v, region, fine, coarse);
  const CellRange coveredFine(IntVector(0), IntVector(8));
  for (const IntVector& c : region) {
    if (coveredFine.contains(c)) {
      EXPECT_DOUBLE_EQ(v[c], -5.0) << "covered cell overwritten at " << c;
    } else {
      const IntVector cc(c.x() / 2, c.y() / 2, c.z() / 2);
      EXPECT_DOUBLE_EQ(v[c], cellValue(cc)) << "cell " << c;
    }
  }
}

}  // namespace
}  // namespace rmcrt::amr
