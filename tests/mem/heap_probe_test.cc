#include "mem/heap_probe.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

namespace rmcrt::mem {
namespace {

TEST(HeapProbe, SnapshotIsValidOnGlibc) {
#if RMCRT_HAVE_MALLINFO2
  const HeapSnapshot s = probeHeap();
  EXPECT_TRUE(s.valid);
  EXPECT_GT(s.heapBytesTotal, 0u);
#else
  GTEST_SKIP() << "mallinfo2 unavailable";
#endif
}

TEST(HeapProbe, InUseGrowsWithLiveAllocations) {
#if RMCRT_HAVE_MALLINFO2
  const HeapSnapshot before = probeHeap();
  std::vector<void*> blocks;
  for (int i = 0; i < 1000; ++i) blocks.push_back(std::malloc(1024));
  const HeapSnapshot during = probeHeap();
  EXPECT_GT(during.heapBytesInUse, before.heapBytesInUse);
  for (void* p : blocks) std::free(p);
#else
  GTEST_SKIP();
#endif
}

TEST(HeapProbe, FragmentationRatioBounded) {
  const HeapSnapshot s = probeHeap();
  EXPECT_GE(s.fragmentationRatio(), 0.0);
  EXPECT_LE(s.fragmentationRatio(), 1.0 + 1e-9);
  // Default-constructed snapshot divides by zero safely.
  EXPECT_DOUBLE_EQ(HeapSnapshot{}.fragmentationRatio(), 0.0);
}

}  // namespace
}  // namespace rmcrt::mem
