#include "mem/lockfree_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

namespace rmcrt::mem {
namespace {

TEST(LockFreePool, AllocateDistinctBlocks) {
  LockFreePool pool(64, 16);
  std::set<void*> seen;
  std::vector<void*> blocks;
  for (int i = 0; i < 100; ++i) {
    void* p = pool.allocate();
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(seen.insert(p).second) << "duplicate block";
    blocks.push_back(p);
  }
  for (void* p : blocks) pool.deallocate(p);
  EXPECT_EQ(pool.stats().liveBlocks, 0u);
}

TEST(LockFreePool, BlockSizeRoundedTo16) {
  LockFreePool pool(1);
  EXPECT_EQ(pool.blockSize(), 16u);
  LockFreePool pool2(17);
  EXPECT_EQ(pool2.blockSize(), 32u);
  LockFreePool pool3(64);
  EXPECT_EQ(pool3.blockSize(), 64u);
}

TEST(LockFreePool, BlocksAreWritableToFullSize) {
  LockFreePool pool(256, 8);
  void* p = pool.allocate();
  std::memset(p, 0x5A, pool.blockSize());
  pool.deallocate(p);
}

TEST(LockFreePool, ReusesFreedBlocks) {
  LockFreePool pool(32, 4);
  void* a = pool.allocate();
  pool.deallocate(a);
  // LIFO free list: the same block should come back.
  void* b = pool.allocate();
  EXPECT_EQ(a, b);
  pool.deallocate(b);
}

TEST(LockFreePool, GrowsAcrossSlabs) {
  LockFreePool pool(32, 4);  // tiny slabs force growth
  std::vector<void*> blocks;
  for (int i = 0; i < 20; ++i) blocks.push_back(pool.allocate());
  EXPECT_GE(pool.stats().slabCount, 5u);
  std::set<void*> unique(blocks.begin(), blocks.end());
  EXPECT_EQ(unique.size(), blocks.size());
  for (void* p : blocks) pool.deallocate(p);
}

TEST(LockFreePool, StatsCountAllocations) {
  LockFreePool pool(48, 8);
  void* a = pool.allocate();
  void* b = pool.allocate();
  EXPECT_EQ(pool.stats().allocations, 2u);
  EXPECT_EQ(pool.stats().liveBlocks, 2u);
  pool.deallocate(a);
  pool.deallocate(b);
  EXPECT_EQ(pool.stats().deallocations, 2u);
  EXPECT_EQ(pool.stats().liveBlocks, 0u);
}

// The concurrency property the paper needs: many threads allocating and
// freeing small transient objects with no lock contention and no
// corruption. Each thread stamps its blocks and verifies the stamp before
// freeing — overlap between two live blocks would trip the check.
TEST(LockFreePool, ConcurrentAllocateFreeNoCorruption) {
  LockFreePool pool(64, 256);
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::atomic<bool> failed{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &failed, t] {
      std::vector<void*> mine;
      for (int i = 0; i < kIters; ++i) {
        void* p = pool.allocate();
        if (!p) {
          failed.store(true);
          return;
        }
        std::memset(p, t + 1, 64);
        mine.push_back(p);
        if (mine.size() >= 16) {
          // Verify stamps then free half.
          for (std::size_t k = 0; k < mine.size(); k += 2) {
            auto* bytes = static_cast<unsigned char*>(mine[k]);
            for (int j = 0; j < 64; ++j) {
              if (bytes[j] != static_cast<unsigned char>(t + 1)) {
                failed.store(true);
                return;
              }
            }
          }
          for (std::size_t k = 0; k < mine.size(); k += 2)
            pool.deallocate(mine[k]);
          std::vector<void*> keep;
          for (std::size_t k = 1; k < mine.size(); k += 2)
            keep.push_back(mine[k]);
          mine.swap(keep);
        }
      }
      for (void* p : mine) pool.deallocate(p);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(pool.stats().liveBlocks, 0u);
}

// ABA stress: tight alloc/free ping-pong across threads exercises the
// tagged-head CAS. A classic ABA corruption manifests as two threads
// receiving the same block concurrently.
TEST(LockFreePool, AbaStressNoDuplicateLiveBlocks) {
  LockFreePool pool(16, 64);
  constexpr int kThreads = 8;
  std::atomic<bool> duplicate{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &duplicate] {
      for (int i = 0; i < 20000; ++i) {
        void* p = pool.allocate();
        auto* flag = static_cast<std::atomic<std::uint32_t>*>(p);
        // Claim the block exclusively via its own memory.
        std::uint32_t expected = flag->load(std::memory_order_relaxed);
        flag->store(0xDEADBEEF, std::memory_order_relaxed);
        (void)expected;
        // If another thread holds this same block live, both write and
        // one later sees a torn pattern; approximate by re-checking.
        if (flag->load(std::memory_order_relaxed) != 0xDEADBEEF)
          duplicate.store(true);
        flag->store(0, std::memory_order_relaxed);
        pool.deallocate(p);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(duplicate.load());
  EXPECT_EQ(pool.stats().liveBlocks, 0u);
}

}  // namespace
}  // namespace rmcrt::mem
