#include "mem/allocation_tracker.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace rmcrt::mem {
namespace {

class AllocationTrackerTest : public ::testing::Test {
 protected:
  void SetUp() override { AllocationTracker::instance().reset(); }
};

TEST_F(AllocationTrackerTest, RecordsLiveAndPeak) {
  auto& t = AllocationTracker::instance();
  t.recordAlloc("MPI buffers", 1000);
  t.recordAlloc("MPI buffers", 500);
  EXPECT_EQ(t.stats("MPI buffers").liveBytes, 1500);
  EXPECT_EQ(t.stats("MPI buffers").peakBytes, 1500);
  t.recordFree("MPI buffers", 1000);
  EXPECT_EQ(t.stats("MPI buffers").liveBytes, 500);
  EXPECT_EQ(t.stats("MPI buffers").peakBytes, 1500);  // peak sticks
  EXPECT_EQ(t.stats("MPI buffers").totalAllocs, 2);
}

TEST_F(AllocationTrackerTest, TagsAreIndependent) {
  auto& t = AllocationTracker::instance();
  t.recordAlloc("a", 10);
  t.recordAlloc("b", 20);
  EXPECT_EQ(t.stats("a").liveBytes, 10);
  EXPECT_EQ(t.stats("b").liveBytes, 20);
  EXPECT_EQ(t.stats("missing").liveBytes, 0);
}

TEST_F(AllocationTrackerTest, RaiiScopeReleases) {
  auto& t = AllocationTracker::instance();
  {
    TrackedAllocation a("GridVariables", 4096);
    EXPECT_EQ(t.stats("GridVariables").liveBytes, 4096);
  }
  EXPECT_EQ(t.stats("GridVariables").liveBytes, 0);
  EXPECT_EQ(t.stats("GridVariables").peakBytes, 4096);
}

TEST_F(AllocationTrackerTest, ThreadSafety) {
  auto& t = AllocationTracker::instance();
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&t] {
      for (int k = 0; k < 1000; ++k) {
        t.recordAlloc("shared", 8);
        t.recordFree("shared", 8);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.stats("shared").liveBytes, 0);
  EXPECT_EQ(t.stats("shared").totalAllocs, 4000);
}

TEST(CompareScalingRuns, FlagsReplicatedPatterns) {
  // The intended use (paper Section VII): snapshots from a 64-rank and a
  // 512-rank run. "halo" shrinks per rank (scales); "coarse level copy"
  // is constant per rank (replication — does not scale).
  std::map<std::string, TagStats> small, large;
  small["halo"] = TagStats{0, 8 << 20, 0};
  large["halo"] = TagStats{0, 2 << 20, 0};  // 4x fewer at 8x ranks
  small["coarse level copy"] = TagStats{0, 42 << 20, 0};
  large["coarse level copy"] = TagStats{0, 42 << 20, 0};  // constant

  const auto verdicts = compareScalingRuns(small, 64, large, 512);
  ASSERT_EQ(verdicts.size(), 2u);
  for (const auto& v : verdicts) {
    if (v.tag == "halo") {
      EXPECT_TRUE(v.scales);
      EXPECT_NEAR(v.scalingExponent, -0.667, 0.01);
    } else {
      EXPECT_FALSE(v.scales);
      EXPECT_NEAR(v.scalingExponent, 0.0, 1e-9);
    }
  }
}

TEST(CompareScalingRuns, MissingTagsSkipped) {
  std::map<std::string, TagStats> small, large;
  small["only-small"] = TagStats{0, 100, 0};
  const auto verdicts = compareScalingRuns(small, 2, large, 4);
  EXPECT_TRUE(verdicts.empty());
}

}  // namespace
}  // namespace rmcrt::mem
