#include "mem/allocators.h"

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <thread>
#include <vector>

namespace rmcrt::mem {
namespace {

TEST(PoolRouter, ClassOfMapsSizesToPowerOfTwoClasses) {
  EXPECT_EQ(PoolRouter::classOf(1), 0u);    // 16
  EXPECT_EQ(PoolRouter::classOf(16), 0u);   // 16
  EXPECT_EQ(PoolRouter::classOf(17), 1u);   // 32
  EXPECT_EQ(PoolRouter::classOf(32), 1u);   // 32
  EXPECT_EQ(PoolRouter::classOf(33), 2u);   // 64
  EXPECT_EQ(PoolRouter::classOf(4096), 8u); // 4096
}

TEST(PoolRouter, SmallAllocationsComeFromPools) {
  auto& r = PoolRouter::instance();
  const auto before = r.poolStats(PoolRouter::classOf(100)).allocations;
  void* p = r.allocate(100);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(r.poolStats(PoolRouter::classOf(100)).allocations, before + 1);
  r.deallocate(p, 100);
}

TEST(PoolRouter, LargeAllocationsGoToMmap) {
  auto& r = PoolRouter::instance();
  const auto before = MmapArena::stats().bytesMapped;
  void* p = r.allocate(1 << 20);
  ASSERT_NE(p, nullptr);
  EXPECT_GT(MmapArena::stats().bytesMapped, before);
  r.deallocate(p, 1 << 20);
  EXPECT_EQ(MmapArena::stats().bytesMapped, before);
}

TEST(PooledAllocator, WorksWithStdContainers) {
  std::vector<int, PooledAllocator<int>> v;
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_EQ(v[999], 999);
  std::list<double, PooledAllocator<double>> l;
  for (int i = 0; i < 100; ++i) l.push_back(i * 0.5);
  EXPECT_DOUBLE_EQ(l.back(), 49.5);
}

TEST(PooledAllocator, MapWithPooledNodes) {
  std::map<int, int, std::less<int>,
           PooledAllocator<std::pair<const int, int>>> m;
  for (int i = 0; i < 500; ++i) m[i] = i * i;
  EXPECT_EQ(m[22], 484);
}

TEST(MmapAllocatorAdapter, VectorUsesAnonymousMemory) {
  const auto before = MmapArena::stats().bytesMapped;
  {
    std::vector<double, MmapAllocator<double>> v(1 << 16, 1.0);
    EXPECT_GT(MmapArena::stats().bytesMapped, before);
    EXPECT_DOUBLE_EQ(v.back(), 1.0);
  }
  EXPECT_EQ(MmapArena::stats().bytesMapped, before);
}

TEST(Allocators, EqualityIsStateless) {
  EXPECT_TRUE(PooledAllocator<int>() == PooledAllocator<double>());
  EXPECT_TRUE(MmapAllocator<int>() == MmapAllocator<char>());
}

TEST(PoolRouter, ConcurrentMixedSizes) {
  auto& r = PoolRouter::instance();
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&r, t] {
      std::vector<std::pair<void*, std::size_t>> live;
      for (int i = 0; i < 2000; ++i) {
        const std::size_t sz = 16u << ((i + t) % 8);
        void* p = r.allocate(sz);
        ASSERT_NE(p, nullptr);
        live.emplace_back(p, sz);
        if (live.size() > 32) {
          r.deallocate(live.front().first, live.front().second);
          live.erase(live.begin());
        }
      }
      for (auto& [p, sz] : live) r.deallocate(p, sz);
    });
  }
  for (auto& th : threads) th.join();
  SUCCEED();
}

}  // namespace
}  // namespace rmcrt::mem
