#include "mem/mmap_arena.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

namespace rmcrt::mem {
namespace {

TEST(MmapArena, MapGivesZeroedWritableMemory) {
  const std::size_t n = 1 << 20;
  auto* p = static_cast<unsigned char*>(MmapArena::map(n));
  ASSERT_NE(p, nullptr);
  for (std::size_t i = 0; i < n; i += 4096) EXPECT_EQ(p[i], 0);
  std::memset(p, 0xAB, n);
  EXPECT_EQ(p[n - 1], 0xAB);
  MmapArena::unmap(p, n);
}

TEST(MmapArena, RoundToPages) {
  const std::size_t pg = MmapArena::pageSize();
  EXPECT_EQ(MmapArena::roundToPages(1), pg);
  EXPECT_EQ(MmapArena::roundToPages(pg), pg);
  EXPECT_EQ(MmapArena::roundToPages(pg + 1), 2 * pg);
}

TEST(MmapArena, StatsTrackLiveBytes) {
  const auto before = MmapArena::stats().bytesMapped;
  void* p = MmapArena::map(10 * 4096);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(MmapArena::stats().bytesMapped - before,
            MmapArena::roundToPages(10 * 4096));
  MmapArena::unmap(p, 10 * 4096);
  EXPECT_EQ(MmapArena::stats().bytesMapped, before);
}

TEST(MmapArena, PeakHighWaterMark) {
  MmapArena::resetStats();
  void* a = MmapArena::map(1 << 20);
  void* b = MmapArena::map(1 << 20);
  const auto peakWithBoth = MmapArena::stats().peakBytesMapped;
  MmapArena::unmap(a, 1 << 20);
  MmapArena::unmap(b, 1 << 20);
  EXPECT_EQ(MmapArena::stats().peakBytesMapped, peakWithBoth);
  EXPECT_GE(peakWithBoth, 2u << 20);
}

TEST(MmapArena, ZeroByteRequestStillValid) {
  void* p = MmapArena::map(0);
  ASSERT_NE(p, nullptr);
  MmapArena::unmap(p, 0);
}

TEST(MmapArena, ConcurrentMapUnmap) {
  const auto before = MmapArena::stats().bytesMapped;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 200; ++i) {
        void* p = MmapArena::map(64 * 1024);
        ASSERT_NE(p, nullptr);
        std::memset(p, 1, 64);
        MmapArena::unmap(p, 64 * 1024);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(MmapArena::stats().bytesMapped, before);
}

}  // namespace
}  // namespace rmcrt::mem
