/// Multi-rank soak under chaos: the full RMCRT pipeline driven by the
/// SimulationController for several timesteps over a dropping/reordering
/// transport, with the unified metrics registry wired in. The channel
/// must absorb every fault (no watchdog abort, all steps complete) and
/// the metrics must reconcile: retransmits happened, per-step message
/// accounting balances across ranks, the timeline is well-formed, and
/// the JSON emission parses.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "../util/mini_json.h"
#include "comm/fault_injector.h"
#include "core/problems.h"
#include "core/rmcrt_component.h"
#include "grid/load_balancer.h"
#include "runtime/simulation_controller.h"
#include "util/metrics.h"

namespace rmcrt::runtime {
namespace {

using core::RmcrtComponent;
using core::RmcrtSetup;
using grid::Grid;
using grid::LoadBalancer;

TEST(MetricsSoak, ChaosTimestepsReconcileInRegistry) {
  constexpr int kRanks = 3;
  constexpr int kSteps = 6;

  auto grid = Grid::makeTwoLevel(Vector(0.0), Vector(1.0), IntVector(16),
                                 IntVector(4), IntVector(4), IntVector(4));
  RmcrtSetup setup;
  setup.problem = core::burnsChriston();
  setup.trace.nDivQRays = 8;
  setup.trace.seed = 33;
  setup.roiHalo = 3;

  auto lb = std::make_shared<LoadBalancer>(*grid, kRanks);
  comm::Communicator world(kRanks);
  auto inj = std::make_shared<comm::FaultInjector>(/*seed=*/404);
  comm::FaultProbabilities p;
  p.drop = 0.05;
  p.reorder = 0.05;
  inj->setDefaultProbabilities(p);
  inj->setReorderHoldMs(0.5);
  world.setFaultInjector(inj);

  SchedulerConfig cfg;
  cfg.channel.baseBackoffMs = 2.0;
  cfg.channel.maxBackoffMs = 20.0;
  cfg.channel.progressIntervalMs = 0.5;

  std::vector<std::unique_ptr<Scheduler>> scheds;
  for (int r = 0; r < kRanks; ++r)
    scheds.push_back(std::make_unique<Scheduler>(
        grid, lb, world, r, RequestContainer::WaitFreePool, cfg));

  MetricsRegistry reg;  // private registry: no cross-test contamination
  std::vector<std::vector<TimestepRecord>> records(kRanks);
  std::vector<std::thread> threads;
  for (int r = 0; r < kRanks; ++r) {
    threads.emplace_back([&, r] {
      SimulationController ctl(
          *scheds[r],
          [&setup](Scheduler& s) {
            RmcrtComponent::registerTwoLevelPipeline(s, setup);
          },
          [](Scheduler& s) {
            s.addTask(makeCarryForwardTask({core::RmcrtLabels::divQ},
                                           s.grid().numLevels() - 1));
          });
      ctl.setRadiationInterval(2);
      // Only rank 0 stamps the shared timeline so each step yields one
      // snapshot; every rank publishes its own gauges.
      ctl.setMetrics(&reg, "rank" + std::to_string(r) + ".",
                     /*ownsTimeline=*/r == 0);
      records[static_cast<std::size_t>(r)] = ctl.run(kSteps);
    });
  }
  for (auto& t : threads) t.join();

  // Every rank completed every step; the watchdog never fired.
  for (int r = 0; r < kRanks; ++r) {
    ASSERT_EQ(records[static_cast<std::size_t>(r)].size(),
              static_cast<std::size_t>(kSteps));
    EXPECT_EQ(reg.counter("rank" + std::to_string(r) +
                          ".timesteps_completed").value(),
              static_cast<std::uint64_t>(kSteps));
    EXPECT_EQ(reg.gauge("rank" + std::to_string(r) + ".watchdog_strikes")
                  .value(),
              0.0);
    for (const TimestepRecord& rec : records[static_cast<std::size_t>(r)])
      EXPECT_EQ(rec.stats.watchdogStrikes, 0u)
          << "rank " << r << " step " << rec.step;
  }
  EXPECT_FALSE(world.aborted());

  // Faults were injected and the channel repaired them invisibly:
  // retransmits happened, yet the per-step logical message accounting
  // balances exactly across ranks (retransmits live below this layer).
  EXPECT_GT(world.stats().dropsInjected, 0u);
  std::uint64_t retransmits = 0;
  for (auto& s : scheds) retransmits += s->stats().retransmits;
  EXPECT_GT(retransmits, 0u) << "drops must have forced retransmission";
  for (int step = 0; step < kSteps; ++step) {
    std::uint64_t sent = 0, received = 0, bytesSent = 0, bytesRecv = 0;
    for (int r = 0; r < kRanks; ++r) {
      const SchedulerStats& st =
          records[static_cast<std::size_t>(r)][static_cast<std::size_t>(
              step)].stats;
      sent += st.messagesSent;
      received += st.messagesReceived;
      bytesSent += st.bytesSent;
      bytesRecv += st.bytesReceived;
    }
    EXPECT_EQ(sent, received) << "unbalanced messages at step " << step;
    EXPECT_EQ(bytesSent, bytesRecv) << "unbalanced bytes at step " << step;
  }
  // Radiation steps move ghost data; carry-forward steps are local-only.
  EXPECT_GT(records[0][0].stats.messagesSent, 0u);

  // The channel's own counters reached the registry via the scheduler
  // export path (comm coverage of the unified emission).
  std::uint64_t channelRetransmits = 0;
  for (int r = 0; r < kRanks; ++r)
    channelRetransmits += static_cast<std::uint64_t>(
        reg.gauge("rank" + std::to_string(r) + ".channel.retransmits")
            .value());
  EXPECT_EQ(channelRetransmits, retransmits);

  // Timeline: one snapshot per step, labeled in order, with the step
  // counter monotone across it.
  const auto timeline = reg.timeline();
  ASSERT_EQ(timeline.size(), static_cast<std::size_t>(kSteps));
  double prevCompleted = 0.0;
  for (int step = 0; step < kSteps; ++step) {
    EXPECT_EQ(timeline[static_cast<std::size_t>(step)].timestep, step);
    const auto* c = timeline[static_cast<std::size_t>(step)].find(
        "rank0.timesteps_completed");
    ASSERT_NE(c, nullptr);
    EXPECT_GT(c->value, prevCompleted);
    prevCompleted = c->value;
  }

  // And the whole registry emits parseable JSON with those snapshots.
  std::ostringstream os;
  reg.writeJson(os);
  minijson::Value doc;
  ASSERT_NO_THROW(doc = minijson::parse(os.str()));
  EXPECT_EQ(doc.at("snapshots").array.size(),
            static_cast<std::size_t>(kSteps));
  EXPECT_DOUBLE_EQ(
      doc.at("final").at("rank0.timesteps_completed").number,
      static_cast<double>(kSteps));
}

}  // namespace
}  // namespace rmcrt::runtime
