/// Integration tests of the per-rank scheduler: multi-rank halo exchange,
/// whole-level ("infinite ghost cells") replication, and inter-level
/// requires — the three communication patterns the RMCRT pipeline needs.
/// Each test spawns one thread per rank over a shared Communicator, runs
/// identical task declarations, and checks the staged data is exactly what
/// a serial computation would produce.

#include "runtime/scheduler.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <thread>
#include <vector>

#include "grid/operators.h"

namespace rmcrt::runtime {
namespace {

using grid::Grid;
using grid::LoadBalancer;
using grid::Patch;

/// Deterministic cell fingerprint so any mis-staged cell is detectable.
double fingerprint(const IntVector& c, int level) {
  return 1000.0 * level + c.x() + 0.001 * c.y() + 0.000001 * c.z();
}

/// Run `configure(sched)` + executeTimestep on every rank concurrently.
void runRanks(std::shared_ptr<const Grid> grid, int numRanks,
              const std::function<void(Scheduler&)>& configure,
              const std::function<void(Scheduler&)>& verify,
              RequestContainer container = RequestContainer::WaitFreePool,
              grid::LbStrategy strategy = grid::LbStrategy::Block) {
  auto lb = std::make_shared<LoadBalancer>(*grid, numRanks, strategy);
  comm::Communicator world(numRanks);
  std::vector<std::unique_ptr<Scheduler>> scheds;
  for (int r = 0; r < numRanks; ++r)
    scheds.push_back(
        std::make_unique<Scheduler>(grid, lb, world, r, container));

  std::vector<std::thread> threads;
  for (int r = 0; r < numRanks; ++r) {
    threads.emplace_back([&, r] {
      configure(*scheds[r]);
      scheds[r]->executeTimestep();
    });
  }
  for (auto& t : threads) t.join();
  for (int r = 0; r < numRanks; ++r) verify(*scheds[r]);
}

/// Task that fills a label with the fingerprint on every patch of a level.
Task makeFillTask(const std::string& label, int level) {
  Task t("fill:" + label, level, [label, level](const TaskContext& ctx) {
    auto& v = ctx.newDW->getModifiable<double>(label, ctx.patch->id());
    for (const auto& c : ctx.patch->cells()) v[c] = fingerprint(c, level);
  });
  t.addComputes(Computes{label, VarType::Double, 0});
  return t;
}

TEST(Scheduler, LocalComputeNoCommunication) {
  auto grid = Grid::makeSingleLevel(Vector(0.0), Vector(1.0), IntVector(8),
                                    IntVector(4));
  runRanks(
      grid, 2,
      [](Scheduler& s) { s.addTask(makeFillTask("phi", 0)); },
      [&](Scheduler& s) {
        for (int pid : s.loadBalancer().patchesOf(s.rank())) {
          const auto& v = s.newDW().get<double>("phi", pid);
          for (const auto& c : grid->patchById(pid)->cells())
            EXPECT_DOUBLE_EQ(v[c], fingerprint(c, 0));
        }
        EXPECT_EQ(s.stats().messagesSent, 0u);
      });
}

class SchedulerContainers
    : public ::testing::TestWithParam<RequestContainer> {};

TEST_P(SchedulerContainers, GhostExchangeAcrossRanks) {
  auto grid = Grid::makeSingleLevel(Vector(0.0), Vector(1.0), IntVector(16),
                                    IntVector(4));  // 64 patches
  const int ng = 2;
  runRanks(
      grid, 4,
      [&](Scheduler& s) {
        s.addTask(makeFillTask("phi", 0));
        Task consume("consume", 0, [&](const TaskContext& ctx) {
          const auto& ghosted = ctx.getGhosted<double>("phi", ng);
          // Every cell of the clipped ghost window must carry the global
          // fingerprint, including cells owned by other ranks.
          for (const auto& c : ghosted.window())
            if (ghosted[c] != fingerprint(c, 0))
              ADD_FAILURE() << "bad ghost value at " << c;
        });
        consume.addRequires(Requires{"phi", VarType::Double, 0, ng, false});
        s.addTask(std::move(consume));
      },
      [](Scheduler& s) { EXPECT_GT(s.stats().tasksExecuted, 0u); },
      GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Containers, SchedulerContainers,
    ::testing::Values(RequestContainer::WaitFreePool,
                      RequestContainer::LockedSerialized),
    [](const auto& info) {
      return info.param == RequestContainer::WaitFreePool ? "WaitFree"
                                                          : "LockedSerial";
    });

TEST(Scheduler, WholeLevelReplication) {
  // The paper's "infinite ghost cells": every rank needs the whole coarse
  // level. Fill on owners, require wholeLevel, verify full coverage.
  auto grid = Grid::makeSingleLevel(Vector(0.0), Vector(1.0), IntVector(8),
                                    IntVector(2));  // 64 tiny patches
  runRanks(
      grid, 4,
      [&](Scheduler& s) {
        s.addTask(makeFillTask("abskg", 0));
        Task trace("trace", 0, [&](const TaskContext& ctx) {
          const auto& lv = ctx.getWholeLevel<double>("abskg", 0);
          for (const auto& c : ctx.grid->level(0).cells())
            if (lv[c] != fingerprint(c, 0))
              ADD_FAILURE() << "bad replicated value at " << c;
        });
        trace.addRequires(
            Requires{"abskg", VarType::Double, 0, 0, /*wholeLevel=*/true});
        s.addTask(std::move(trace));
      },
      [](Scheduler& s) {
        // Each rank must have sent its owned patches to the other ranks.
        EXPECT_GT(s.stats().messagesSent, 0u);
        EXPECT_GT(s.stats().bytesReceived, 0u);
      });
}

TEST(Scheduler, InterLevelRequiresForCoarsen) {
  // Coarsen task: coarse patches read the fine region they cover (possibly
  // remote) and average it down — the RMCRT property projection.
  auto grid = Grid::makeTwoLevel(Vector(0.0), Vector(1.0), IntVector(16),
                                 IntVector(4), IntVector(4), IntVector(2));
  runRanks(
      grid, 3,
      [&](Scheduler& s) {
        s.addTask(makeFillTask("phi", 1));  // fill fine level
        Task coarsen("coarsen", 0, [&](const TaskContext& ctx) {
          const auto& fine = ctx.getFineRegion<double>("phi", 1);
          auto& out = ctx.newDW->getModifiable<double>("phiCoarse",
                                                       ctx.patch->id());
          grid::coarsenAverage(fine, IntVector(4), out,
                               ctx.patch->cells());
        });
        coarsen.addRequires(Requires{"phi", VarType::Double, 1, 0, false});
        coarsen.addComputes(Computes{"phiCoarse", VarType::Double, 0});
        s.addTask(std::move(coarsen));
      },
      [&](Scheduler& s) {
        // Verify against a serial coarsening of the fingerprint field.
        for (int pid : s.loadBalancer().patchesOf(s.rank(), *grid, 0)) {
          const auto& v = s.newDW().get<double>("phiCoarse", pid);
          for (const auto& cc : grid->patchById(pid)->cells()) {
            double sum = 0.0;
            const IntVector fLo = cc * IntVector(4);
            for (const auto& fc : CellRange(fLo, fLo + IntVector(4)))
              sum += fingerprint(fc, 1);
            EXPECT_NEAR(v[cc], sum / 64.0, 1e-9) << "coarse cell " << cc;
          }
        }
      });
}

TEST(Scheduler, FromOldDWReadsPreviousTimestep) {
  auto grid = Grid::makeSingleLevel(Vector(0.0), Vector(1.0), IntVector(8),
                                    IntVector(4));
  auto lb = std::make_shared<LoadBalancer>(*grid, 2);
  comm::Communicator world(2);
  std::vector<std::unique_ptr<Scheduler>> scheds;
  for (int r = 0; r < 2; ++r)
    scheds.push_back(std::make_unique<Scheduler>(grid, lb, world, r));

  // Timestep 1: fill phi. Then advance. Timestep 2: carry forward from
  // the old DW with ghosts.
  std::vector<std::thread> threads;
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      Scheduler& s = *scheds[r];
      s.addTask(makeFillTask("phi", 0));
      s.executeTimestep();
      s.advanceDataWarehouses();
      s.clearTasks();
      Task carry("carryForward", 0, [](const TaskContext& ctx) {
        const auto& old = ctx.getGhosted<double>("phi", 1, /*fromOld=*/true);
        auto& out = ctx.newDW->getModifiable<double>("phi", ctx.patch->id());
        for (const auto& c : ctx.patch->cells()) out[c] = old[c];
      });
      carry.addRequires(
          Requires{"phi", VarType::Double, 0, 1, false, /*fromOldDW=*/true});
      carry.addComputes(Computes{"phi", VarType::Double, 0});
      s.addTask(std::move(carry));
      s.executeTimestep();
    });
  }
  for (auto& t : threads) t.join();
  for (int r = 0; r < 2; ++r) {
    for (int pid : scheds[r]->loadBalancer().patchesOf(r)) {
      const auto& v = scheds[r]->newDW().get<double>("phi", pid);
      for (const auto& c : grid->patchById(pid)->cells())
        EXPECT_DOUBLE_EQ(v[c], fingerprint(c, 0));
    }
  }
}

TEST(Scheduler, StatsAttributeTimeAndTraffic) {
  auto grid = Grid::makeSingleLevel(Vector(0.0), Vector(1.0), IntVector(16),
                                    IntVector(4));
  runRanks(
      grid, 4,
      [&](Scheduler& s) {
        s.addTask(makeFillTask("phi", 0));
        Task consume("consume", 0, [](const TaskContext& ctx) {
          (void)ctx.getGhosted<double>("phi", 1);
        });
        consume.addRequires(Requires{"phi", VarType::Double, 0, 1, false});
        s.addTask(std::move(consume));
      },
      [](Scheduler& s) {
        const SchedulerStats& st = s.stats();
        EXPECT_GT(st.tasksExecuted, 0u);
        EXPECT_GT(st.localCommSeconds, 0.0);
        EXPECT_GT(st.taskExecSeconds, 0.0);
        EXPECT_EQ(st.messagesReceived > 0, st.bytesReceived > 0);
      });
}

TEST(Scheduler, SingleRankWholeLevelNeedsNoMessages) {
  auto grid = Grid::makeSingleLevel(Vector(0.0), Vector(1.0), IntVector(8),
                                    IntVector(4));
  runRanks(
      grid, 1,
      [&](Scheduler& s) {
        s.addTask(makeFillTask("abskg", 0));
        Task trace("trace", 0, [](const TaskContext& ctx) {
          const auto& lv = ctx.getWholeLevel<double>("abskg", 0);
          (void)lv;
        });
        trace.addRequires(Requires{"abskg", VarType::Double, 0, 0, true});
        s.addTask(std::move(trace));
      },
      [](Scheduler& s) {
        EXPECT_EQ(s.stats().messagesSent, 0u);
        EXPECT_EQ(s.stats().messagesReceived, 0u);
      });
}

TEST(Scheduler, MortonLoadBalancedExchangeMatches) {
  auto grid = Grid::makeSingleLevel(Vector(0.0), Vector(1.0), IntVector(16),
                                    IntVector(4));
  runRanks(
      grid, 4,
      [&](Scheduler& s) {
        s.addTask(makeFillTask("phi", 0));
        Task consume("consume", 0, [](const TaskContext& ctx) {
          const auto& g = ctx.getGhosted<double>("phi", 2);
          for (const auto& c : g.window())
            if (g[c] != fingerprint(c, 0))
              ADD_FAILURE() << "bad ghost at " << c;
        });
        consume.addRequires(Requires{"phi", VarType::Double, 0, 2, false});
        s.addTask(std::move(consume));
      },
      [](Scheduler&) {}, RequestContainer::WaitFreePool,
      grid::LbStrategy::Morton);
}

}  // namespace
}  // namespace rmcrt::runtime
