#include "runtime/data_archiver.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "grid/grid.h"

namespace rmcrt::runtime {
namespace {

grid::Patch makePatch(int id) {
  return grid::Patch(id, 0,
                     CellRange(IntVector(id * 4, 0, 0),
                               IntVector(id * 4 + 4, 4, 4)));
}

class DataArchiverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test directory: ctest runs the discovered tests in parallel,
    // and two tests sharing one checkpoint dir race on grid.txt.
    m_dir = std::string("/tmp/rmcrt_checkpoint_test_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
  }
  void TearDown() override {
    // Best-effort cleanup of the checkpoint directory.
    for (const auto& e : DataArchiver::index(m_dir)) {
      std::remove((m_dir + "/" + e.label + ".p" +
                   std::to_string(e.patchId) + ".bin")
                      .c_str());
    }
    std::remove((m_dir + "/index.txt").c_str());
    std::remove((m_dir + "/grid.txt").c_str());
    std::remove(m_dir.c_str());
  }
  std::string m_dir;
};

TEST_F(DataArchiverTest, CheckpointRestoreRoundTrip) {
  DataWarehouse dw;
  for (int pid : {0, 1, 2}) {
    grid::CCVariable<double> v(makePatch(pid), 1, 0.0);
    for (const auto& c : v.window())
      v[c] = pid * 1000.0 + c.x() + 0.5 * c.y() - 2.0 * c.z();
    dw.put("divQ", pid, std::move(v));
  }
  ASSERT_TRUE(DataArchiver::checkpoint(m_dir, dw, {"divQ"}, {0, 1, 2}));

  DataWarehouse restored;
  ASSERT_TRUE(DataArchiver::restore(m_dir, restored));
  for (int pid : {0, 1, 2}) {
    ASSERT_TRUE(restored.exists("divQ", pid));
    const auto& orig = dw.get<double>("divQ", pid);
    const auto& back = restored.get<double>("divQ", pid);
    EXPECT_EQ(back.window(), orig.window());
    for (const auto& c : orig.window())
      EXPECT_DOUBLE_EQ(back[c], orig[c]) << "pid " << pid << " " << c;
  }
}

TEST_F(DataArchiverTest, MultipleLabels) {
  DataWarehouse dw;
  grid::CCVariable<double> a(makePatch(0), 0, 1.5);
  grid::CCVariable<double> b(makePatch(0), 0, -2.5);
  dw.put("abskg", 0, std::move(a));
  dw.put("sigmaT4OverPi", 0, std::move(b));
  ASSERT_TRUE(DataArchiver::checkpoint(m_dir, dw,
                                       {"abskg", "sigmaT4OverPi"}, {0}));
  const auto idx = DataArchiver::index(m_dir);
  EXPECT_EQ(idx.size(), 2u);

  DataWarehouse restored;
  ASSERT_TRUE(DataArchiver::restore(m_dir, restored));
  EXPECT_DOUBLE_EQ(
      restored.get<double>("abskg", 0)[IntVector(0, 0, 0)], 1.5);
  EXPECT_DOUBLE_EQ(
      restored.get<double>("sigmaT4OverPi", 0)[IntVector(0, 0, 0)], -2.5);
}

TEST_F(DataArchiverTest, MissingVariableFailsCheckpoint) {
  DataWarehouse dw;
  EXPECT_FALSE(DataArchiver::checkpoint(m_dir, dw, {"missing"}, {0}));
}

TEST_F(DataArchiverTest, RestoreFromMissingDirectoryFails) {
  DataWarehouse dw;
  EXPECT_FALSE(DataArchiver::restore("/tmp/rmcrt_no_such_dir", dw));
}

TEST_F(DataArchiverTest, TruncatedBlobFailsRestore) {
  DataWarehouse dw;
  grid::CCVariable<double> v(makePatch(0), 0, 3.0);
  dw.put("divQ", 0, std::move(v));
  ASSERT_TRUE(DataArchiver::checkpoint(m_dir, dw, {"divQ"}, {0}));
  // Truncate the blob.
  {
    std::ofstream trunc(m_dir + "/divQ.p0.bin",
                        std::ios::binary | std::ios::trunc);
    trunc << "short";
  }
  DataWarehouse restored;
  EXPECT_FALSE(DataArchiver::restore(m_dir, restored));
}

TEST_F(DataArchiverTest, GridRoundTripThroughRegridCycle) {
  // A checkpoint taken after a regrid must restore the REGRIDDED patch
  // set — irregular fine boxes and all — not the input-file tiling.
  auto before = grid::Grid::makeTwoLevel(Vector(0.0), Vector(1.0),
                                         IntVector(8), IntVector(4),
                                         IntVector(4), IntVector(2));
  ASSERT_TRUE(DataArchiver::checkpointGrid(m_dir, *before));
  auto back = DataArchiver::restoreGrid(m_dir);
  ASSERT_TRUE(back);
  EXPECT_EQ(back->numLevels(), before->numLevels());
  EXPECT_EQ(back->numPatches(), before->numPatches());

  // "Regrid": same domain, different (irregular) fine-level coverage.
  auto after = grid::Grid::makeAdaptive(
      Vector(0.0), Vector(1.0), IntVector(8), IntVector(4), IntVector(2),
      {CellRange(IntVector(0, 0, 0), IntVector(4, 4, 4)),
       CellRange(IntVector(4, 4, 4), IntVector(8, 8, 8))});
  ASSERT_TRUE(DataArchiver::checkpointGrid(m_dir, *after));
  back = DataArchiver::restoreGrid(m_dir);
  ASSERT_TRUE(back);
  ASSERT_EQ(back->numLevels(), after->numLevels());
  ASSERT_EQ(back->numPatches(), after->numPatches());
  for (int pid = 0; pid < after->numPatches(); ++pid) {
    const grid::Patch* want = after->patchById(pid);
    const grid::Patch* got = back->patchById(pid);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->cells(), want->cells()) << "patch " << pid;
  }
  EXPECT_FALSE(back->fineLevel().uniformlyTiled());
}

TEST_F(DataArchiverTest, CorruptGridRecordRejected) {
  auto g = grid::Grid::makeTwoLevel(Vector(0.0), Vector(1.0), IntVector(8),
                                    IntVector(4), IntVector(4),
                                    IntVector(2));
  ASSERT_TRUE(DataArchiver::checkpointGrid(m_dir, *g));

  // Truncated mid-record: parsing must fail, not fabricate levels.
  std::string contents;
  {
    std::ifstream is(m_dir + "/grid.txt");
    std::ostringstream buf;
    buf << is.rdbuf();
    contents = buf.str();
  }
  {
    std::ofstream os(m_dir + "/grid.txt", std::ios::trunc);
    os << contents.substr(0, contents.size() / 2);
  }
  EXPECT_FALSE(DataArchiver::restoreGrid(m_dir));

  // Garbage header likewise.
  {
    std::ofstream os(m_dir + "/grid.txt", std::ios::trunc);
    os << "not a grid record at all\n";
  }
  EXPECT_FALSE(DataArchiver::restoreGrid(m_dir));

  // Missing file likewise.
  std::remove((m_dir + "/grid.txt").c_str());
  EXPECT_FALSE(DataArchiver::restoreGrid(m_dir));
}

}  // namespace
}  // namespace rmcrt::runtime
