/// Resilience tests of the scheduler: a full RMCRT timestep over a lossy,
/// duplicating, delaying, reordering transport must produce bitwise the
/// same divQ as the fault-free run (recovered by the reliable channel);
/// and with recovery disabled, the watchdog must convert a permanent stall
/// into a structured TimestepStalled instead of a hang.

#include <gtest/gtest.h>

#include <chrono>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "comm/fault_injector.h"
#include "core/problems.h"
#include "core/rmcrt_component.h"
#include "grid/load_balancer.h"
#include "runtime/scheduler.h"

namespace rmcrt::runtime {
namespace {

using core::RmcrtComponent;
using core::RmcrtLabels;
using core::RmcrtSetup;
using grid::CCVariable;
using grid::Grid;
using grid::LoadBalancer;

double fingerprint(const IntVector& c, int level) {
  return 1000.0 * level + c.x() + 0.001 * c.y() + 0.000001 * c.z();
}

Task makeFillTask(const std::string& label, int level) {
  Task t("fill:" + label, level, [label, level](const TaskContext& ctx) {
    auto& v = ctx.newDW->getModifiable<double>(label, ctx.patch->id());
    for (const auto& c : ctx.patch->cells()) v[c] = fingerprint(c, level);
  });
  t.addComputes(Computes{label, VarType::Double, 0});
  return t;
}

/// A transport that drops, delays, duplicates, and reorders — roughly 1 in
/// 5 messages suffers some fault.
std::shared_ptr<comm::FaultInjector> chaosInjector(std::uint64_t seed) {
  auto inj = std::make_shared<comm::FaultInjector>(seed);
  comm::FaultProbabilities p;
  p.drop = 0.05;
  p.delay = 0.05;
  p.duplicate = 0.05;
  p.reorder = 0.03;
  p.delayMinMs = 0.1;
  p.delayMaxMs = 1.0;
  inj->setDefaultProbabilities(p);
  inj->setReorderHoldMs(0.5);
  return inj;
}

/// Channel tuned for test speed: retransmit quickly instead of waiting out
/// production backoff.
SchedulerConfig fastReliableConfig() {
  SchedulerConfig cfg;
  cfg.channel.baseBackoffMs = 2.0;
  cfg.channel.maxBackoffMs = 20.0;
  cfg.channel.progressIntervalMs = 0.5;
  return cfg;
}

TEST(SchedulerFault, ChaosTimestepMatchesSerialBitwise) {
  // The acceptance scenario: a multi-rank, multi-level RMCRT timestep over
  // a transport injecting ~5% drops plus delays, duplicates, and reorders
  // completes and the result is EXACTLY the fault-free answer.
  auto grid = Grid::makeTwoLevel(Vector(0.0), Vector(1.0), IntVector(16),
                                 IntVector(4), IntVector(4), IntVector(4));
  RmcrtSetup setup;
  setup.problem = core::burnsChriston();
  setup.trace.nDivQRays = 12;
  setup.trace.seed = 21;
  setup.roiHalo = 3;

  const int numRanks = 3;
  auto lb = std::make_shared<LoadBalancer>(*grid, numRanks);
  comm::Communicator world(numRanks);
  world.setFaultInjector(chaosInjector(/*seed=*/2024));

  std::vector<std::unique_ptr<Scheduler>> scheds;
  for (int r = 0; r < numRanks; ++r)
    scheds.push_back(std::make_unique<Scheduler>(
        grid, lb, world, r, RequestContainer::WaitFreePool,
        fastReliableConfig()));

  // Two timesteps: the second reuses the first's message tags, so any
  // stale duplicate or late retransmit parked in the unexpected queue
  // from timestep 1 is matched by timestep 2's receives — where only the
  // channel's sequence numbers keep it from corrupting fresh data.
  std::vector<std::thread> threads;
  for (int r = 0; r < numRanks; ++r) {
    threads.emplace_back([&, r] {
      RmcrtComponent::registerTwoLevelPipeline(*scheds[r], setup);
      scheds[r]->executeTimestep();
      scheds[r]->executeTimestep();
    });
  }
  for (auto& t : threads) t.join();

  // Faults actually happened, and the channel actually repaired them.
  const comm::CommStats cs = world.stats();
  EXPECT_GT(cs.dropsInjected, 0u);
  EXPECT_GT(cs.duplicatesInjected, 0u);
  std::uint64_t retransmits = 0, dupsDiscarded = 0;
  for (auto& s : scheds) {
    retransmits += s->stats().retransmits;
    dupsDiscarded += s->stats().duplicatesDiscarded;
  }
  EXPECT_GT(retransmits, 0u) << "drops must have forced retransmission";
  EXPECT_GT(dupsDiscarded, 0u)
      << "stale frames under reused tags must be caught by seq dedup";

  // Bitwise equality with the serial solver — the reliability layer must
  // be invisible to the physics.
  CCVariable<double> serial = RmcrtComponent::solveSerialTwoLevel(*grid, setup);
  for (auto& s : scheds) {
    for (int pid : s->loadBalancer().patchesOf(s->rank(), *grid,
                                               grid->numLevels() - 1)) {
      const auto& divQ = s->newDW().get<double>(RmcrtLabels::divQ, pid);
      for (const auto& c : grid->patchById(pid)->cells())
        ASSERT_DOUBLE_EQ(divQ[c], serial[c])
            << "patch " << pid << " cell " << c;
    }
  }
}

TEST(SchedulerFault, WatchdogRaisesTimestepStalledOnPermanentLoss) {
  // Retransmission disabled + a scripted permanent drop of every message
  // rank 0 -> rank 1: rank 1 can never receive its ghost data. The
  // watchdog must dump diagnostics, strike out, abort the world, and
  // throw TimestepStalled — within the configured deadlines, not hang.
  auto grid = Grid::makeSingleLevel(Vector(0.0), Vector(1.0), IntVector(8),
                                    IntVector(4));
  const int numRanks = 2;
  auto lb = std::make_shared<LoadBalancer>(*grid, numRanks);
  comm::Communicator world(numRanks);
  auto inj = std::make_shared<comm::FaultInjector>();
  inj->script(comm::ScriptedFault{/*src=*/0, /*dst=*/1, comm::kAnyTag,
                                  /*nth=*/1, comm::FaultAction::Drop,
                                  /*permanent=*/true});
  world.setFaultInjector(inj);

  SchedulerConfig cfg = fastReliableConfig();
  cfg.channel.retransmit = false;  // loss is detected but never repaired
  cfg.watchdogDeadlineSeconds = 0.15;
  cfg.watchdogMaxStrikes = 2;

  std::vector<std::unique_ptr<Scheduler>> scheds;
  for (int r = 0; r < numRanks; ++r)
    scheds.push_back(std::make_unique<Scheduler>(
        grid, lb, world, r, RequestContainer::WaitFreePool, cfg));

  enum class Outcome { Completed, Stalled, Aborted, Other };
  std::vector<Outcome> outcome(numRanks, Outcome::Other);
  std::vector<std::string> what(numRanks);
  std::vector<std::vector<TimestepStalled::Suspect>> suspects(numRanks);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int r = 0; r < numRanks; ++r) {
    threads.emplace_back([&, r] {
      Scheduler& s = *scheds[r];
      s.addTask(makeFillTask("phi", 0));
      Task consume("consume", 0, [](const TaskContext& ctx) {
        (void)ctx.getGhosted<double>("phi", 1);
      });
      consume.addRequires(Requires{"phi", VarType::Double, 0, 1, false});
      s.addTask(std::move(consume));
      try {
        s.executeTimestep();
        outcome[static_cast<std::size_t>(r)] = Outcome::Completed;
      } catch (const TimestepStalled& e) {
        outcome[static_cast<std::size_t>(r)] = Outcome::Stalled;
        what[static_cast<std::size_t>(r)] = e.what();
        suspects[static_cast<std::size_t>(r)] = e.suspects();
      } catch (const comm::CommAborted& e) {
        outcome[static_cast<std::size_t>(r)] = Outcome::Aborted;
        what[static_cast<std::size_t>(r)] = e.what();
      }
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // Rank 1 is the starved rank: it must fail structurally, with the
  // diagnostic naming the stalled phase, after exactly maxStrikes windows.
  EXPECT_EQ(outcome[1], Outcome::Stalled);
  EXPECT_NE(what[1].find("stalled in phase"), std::string::npos) << what[1];
  EXPECT_NE(what[1].find("pending recvs"), std::string::npos) << what[1];
  EXPECT_GE(scheds[1]->stats().watchdogStrikes, 2u);
  // The stall is attributed to rank 0 and classified SLOW: rank 1's send
  // link back to rank 0 is alive (only 0 -> 1 traffic is scripted away),
  // so the starved rank has no evidence its peer is dead.
  ASSERT_EQ(suspects[1].size(), 1u);
  EXPECT_EQ(suspects[1][0].rank, 0);
  EXPECT_FALSE(suspects[1][0].dead);
  EXPECT_GT(suspects[1][0].pendingRecvs, 0u);
  EXPECT_NE(what[1].find("suspect rank 0: SLOW"), std::string::npos)
      << what[1];
  // Rank 0 had all its data; it either finished the timestep before the
  // abort or was woken out of the phase barrier by it.
  EXPECT_TRUE(outcome[0] == Outcome::Completed ||
              outcome[0] == Outcome::Aborted);
  // The whole failure took strike windows, not retry-forever.
  EXPECT_LT(elapsed, 10.0);
  EXPECT_TRUE(world.aborted());
}

TEST(SchedulerFault, KillRankClassifiedDeadInStallDiagnostic) {
  // FaultInjector::killRank silences every message touching rank 0 while
  // retransmission stays on: rank 1's frames to the corpse exhaust the
  // retry budget, flipping linkDead — the watchdog must classify rank 0
  // as DEAD (restore + repartition territory), not merely SLOW.
  auto grid = Grid::makeSingleLevel(Vector(0.0), Vector(1.0), IntVector(8),
                                    IntVector(4));
  const int numRanks = 2;
  auto lb = std::make_shared<LoadBalancer>(*grid, numRanks);
  comm::Communicator world(numRanks);
  auto inj = std::make_shared<comm::FaultInjector>();
  inj->killRank(0);
  world.setFaultInjector(inj);
  EXPECT_TRUE(inj->isKilled(0));
  EXPECT_FALSE(inj->isKilled(1));

  // Rank 1 gets the short deadline so IT strikes out and classifies;
  // rank 0 (also starved — its inbound traffic is dropped too) would
  // otherwise race rank 1 to the abort and turn rank 1's failure into a
  // bare CommAborted.
  SchedulerConfig cfg = fastReliableConfig();
  cfg.channel.maxRetries = 3;
  cfg.watchdogMaxStrikes = 2;
  std::vector<std::unique_ptr<Scheduler>> scheds;
  for (int r = 0; r < numRanks; ++r) {
    cfg.watchdogDeadlineSeconds = r == 1 ? 0.3 : 30.0;
    scheds.push_back(std::make_unique<Scheduler>(
        grid, lb, world, r, RequestContainer::WaitFreePool, cfg));
  }

  std::vector<std::vector<TimestepStalled::Suspect>> suspects(numRanks);
  std::vector<std::string> what(numRanks);
  std::vector<std::thread> threads;
  for (int r = 0; r < numRanks; ++r) {
    threads.emplace_back([&, r] {
      Scheduler& s = *scheds[r];
      s.addTask(makeFillTask("phi", 0));
      Task consume("consume", 0, [](const TaskContext& ctx) {
        (void)ctx.getGhosted<double>("phi", 1);
      });
      consume.addRequires(Requires{"phi", VarType::Double, 0, 1, false});
      s.addTask(std::move(consume));
      try {
        s.executeTimestep();
      } catch (const TimestepStalled& e) {
        suspects[static_cast<std::size_t>(r)] = e.suspects();
        what[static_cast<std::size_t>(r)] = e.what();
      } catch (const comm::CommAborted&) {
      }
    });
  }
  for (auto& t : threads) t.join();

  // Rank 1 starved on the killed rank and its send link retry-capped:
  // the structured suspect list says rank 0, DEAD.
  ASSERT_FALSE(suspects[1].empty()) << "rank 1 must stall structurally";
  EXPECT_EQ(suspects[1][0].rank, 0);
  EXPECT_TRUE(suspects[1][0].dead);
  EXPECT_NE(what[1].find("suspect rank 0: DEAD"), std::string::npos)
      << what[1];
  EXPECT_TRUE(scheds[1]->channel()->linkDead(0));
  EXPECT_GT(inj->stats().dropped, 0u);
}

TEST(SchedulerFault, LegacyDirectPathStillWorks) {
  // reliableComm=false routes messages straight to the communicator — the
  // pre-resilience path must keep working (and carry no channel stats).
  auto grid = Grid::makeSingleLevel(Vector(0.0), Vector(1.0), IntVector(16),
                                    IntVector(4));
  const int numRanks = 4;
  auto lb = std::make_shared<LoadBalancer>(*grid, numRanks);
  comm::Communicator world(numRanks);

  SchedulerConfig cfg;
  cfg.reliableComm = false;

  std::vector<std::unique_ptr<Scheduler>> scheds;
  for (int r = 0; r < numRanks; ++r)
    scheds.push_back(std::make_unique<Scheduler>(
        grid, lb, world, r, RequestContainer::WaitFreePool, cfg));

  std::vector<std::thread> threads;
  for (int r = 0; r < numRanks; ++r) {
    threads.emplace_back([&, r] {
      Scheduler& s = *scheds[r];
      s.addTask(makeFillTask("phi", 0));
      Task consume("consume", 0, [](const TaskContext& ctx) {
        const auto& g = ctx.getGhosted<double>("phi", 2);
        for (const auto& c : g.window())
          if (g[c] != fingerprint(c, 0))
            ADD_FAILURE() << "bad ghost at " << c;
      });
      consume.addRequires(Requires{"phi", VarType::Double, 0, 2, false});
      s.addTask(std::move(consume));
      s.executeTimestep();
    });
  }
  for (auto& t : threads) t.join();

  for (auto& s : scheds) {
    EXPECT_EQ(s->channel(), nullptr);
    EXPECT_EQ(s->stats().retransmits, 0u);
    EXPECT_GT(s->stats().tasksExecuted, 0u);
  }
}

}  // namespace
}  // namespace rmcrt::runtime
