#include "runtime/task_graph.h"

#include <gtest/gtest.h>

#include "core/problems.h"
#include "core/rmcrt_component.h"
#include "runtime/scheduler.h"

namespace rmcrt::runtime {
namespace {

Task simpleTask(const std::string& name, int level) {
  return Task(name, level, [](const TaskContext&) {});
}

TEST(TaskGraph, EmptyGraphIsValid) {
  TaskGraph g({});
  EXPECT_TRUE(g.valid());
  EXPECT_TRUE(g.executionOrder().empty());
  EXPECT_TRUE(g.declaredOrderIsValid());
}

TEST(TaskGraph, ProducerConsumerEdge) {
  std::vector<Task> tasks;
  Task produce = simpleTask("produce", 0);
  produce.addComputes(Computes{"phi", VarType::Double, 0});
  Task consume = simpleTask("consume", 0);
  consume.addRequires(Requires{"phi", VarType::Double, 0, 1, false});
  tasks.push_back(std::move(produce));
  tasks.push_back(std::move(consume));

  TaskGraph g(tasks);
  EXPECT_TRUE(g.valid());
  ASSERT_EQ(g.edges().size(), 1u);
  EXPECT_EQ(g.edges()[0].producer, 0u);
  EXPECT_EQ(g.edges()[0].consumer, 1u);
  EXPECT_EQ(g.edges()[0].label, "phi");
  EXPECT_FALSE(g.edges()[0].interLevel);
  EXPECT_TRUE(g.declaredOrderIsValid());
}

TEST(TaskGraph, MissingProducerDiagnosed) {
  std::vector<Task> tasks;
  Task consume = simpleTask("consume", 0);
  consume.addRequires(Requires{"ghost", VarType::Double, 0, 0, false});
  tasks.push_back(std::move(consume));
  TaskGraph g(tasks);
  EXPECT_FALSE(g.valid());
  ASSERT_EQ(g.diagnostics().size(), 1u);
  EXPECT_EQ(g.diagnostics()[0].kind,
            GraphDiagnostic::Kind::MissingProducer);
}

TEST(TaskGraph, OldDwRequiresNeedNoProducer) {
  std::vector<Task> tasks;
  Task carry = simpleTask("carry", 0);
  carry.addRequires(Requires{"phi", VarType::Double, 0, 0, false,
                             /*fromOldDW=*/true});
  carry.addComputes(Computes{"phi", VarType::Double, 0});
  tasks.push_back(std::move(carry));
  TaskGraph g(tasks);
  EXPECT_TRUE(g.valid());
  EXPECT_TRUE(g.edges().empty());
}

TEST(TaskGraph, DuplicateComputeDiagnosed) {
  std::vector<Task> tasks;
  for (int i = 0; i < 2; ++i) {
    Task t = simpleTask("t" + std::to_string(i), 0);
    t.addComputes(Computes{"phi", VarType::Double, 0});
    tasks.push_back(std::move(t));
  }
  TaskGraph g(tasks);
  EXPECT_TRUE(g.valid());  // duplicate compute is a warning, not fatal
  ASSERT_EQ(g.diagnostics().size(), 1u);
  EXPECT_EQ(g.diagnostics()[0].kind,
            GraphDiagnostic::Kind::DuplicateCompute);
}

TEST(TaskGraph, CycleDetected) {
  std::vector<Task> tasks;
  Task a = simpleTask("a", 0);
  a.addComputes(Computes{"x", VarType::Double, 0});
  a.addRequires(Requires{"y", VarType::Double, 0, 0, false});
  Task b = simpleTask("b", 0);
  b.addComputes(Computes{"y", VarType::Double, 0});
  b.addRequires(Requires{"x", VarType::Double, 0, 0, false});
  tasks.push_back(std::move(a));
  tasks.push_back(std::move(b));
  TaskGraph g(tasks);
  EXPECT_FALSE(g.valid());
  EXPECT_TRUE(g.executionOrder().empty());
  bool sawCycle = false;
  for (const auto& d : g.diagnostics())
    sawCycle |= d.kind == GraphDiagnostic::Kind::Cycle;
  EXPECT_TRUE(sawCycle);
}

TEST(TaskGraph, TopologicalOrderRespectsDependencies) {
  // Declare out of order: consumer first.
  std::vector<Task> tasks;
  Task consume = simpleTask("consume", 0);
  consume.addRequires(Requires{"phi", VarType::Double, 0, 0, false});
  Task produce = simpleTask("produce", 0);
  produce.addComputes(Computes{"phi", VarType::Double, 0});
  tasks.push_back(std::move(consume));
  tasks.push_back(std::move(produce));
  TaskGraph g(tasks);
  EXPECT_TRUE(g.valid());
  EXPECT_FALSE(g.declaredOrderIsValid());  // declared order is wrong
  ASSERT_EQ(g.executionOrder().size(), 2u);
  EXPECT_EQ(g.executionOrder()[0], 1u);  // produce first
  EXPECT_EQ(g.executionOrder()[1], 0u);
}

TEST(TaskGraph, RmcrtPipelineCompilesCleanly) {
  // The production pipeline must compile with no diagnostics and a valid
  // declared order; the coarsen edge is inter-level.
  auto grid = grid::Grid::makeTwoLevel(Vector(0.0), Vector(1.0),
                                       IntVector(16), IntVector(4),
                                       IntVector(8), IntVector(4));
  auto lb = std::make_shared<grid::LoadBalancer>(*grid, 2);
  comm::Communicator world(2);
  Scheduler sched(grid, lb, world, 0);
  core::RmcrtSetup setup;
  setup.problem = core::burnsChriston();
  core::RmcrtComponent::registerTwoLevelPipeline(sched, setup);

  // Rebuild the declarations for analysis (the scheduler keeps them
  // private; re-register into a bare vector via a scratch scheduler is
  // equivalent — use the component's declarations directly).
  std::vector<Task> tasks;
  {
    Scheduler scratch(grid, lb, world, 1);
    core::RmcrtComponent::registerTwoLevelPipeline(scratch, setup);
    // Tasks aren't exposed; construct the equivalent declaration list
    // here (mirrors rmcrt_component.cc).
  }
  Task init("init", 1, [](const TaskContext&) {});
  init.addComputes(Computes{"abskg", VarType::Double, 0});
  init.addComputes(Computes{"sigmaT4OverPi", VarType::Double, 0});
  init.addComputes(Computes{"cellType", VarType::CellTypeVar, 0});
  Task coarsen("coarsen", 0, [](const TaskContext&) {});
  coarsen.addRequires(Requires{"abskg", VarType::Double, 1, 0, false});
  coarsen.addComputes(Computes{"abskg", VarType::Double, 0});
  Task trace("trace", 1, [](const TaskContext&) {});
  trace.addRequires(Requires{"abskg", VarType::Double, 1, 4, false});
  trace.addRequires(Requires{"abskg", VarType::Double, 0, 0, true});
  trace.addComputes(Computes{"divQ", VarType::Double, 0});
  tasks.push_back(std::move(init));
  tasks.push_back(std::move(coarsen));
  tasks.push_back(std::move(trace));

  TaskGraph g(tasks);
  EXPECT_TRUE(g.valid());
  EXPECT_TRUE(g.declaredOrderIsValid());
  bool sawInterLevel = false;
  for (const auto& e : g.edges()) sawInterLevel |= e.interLevel;
  EXPECT_TRUE(sawInterLevel);

  const auto estimates = g.estimateCommunication(*grid, *lb, 0);
  ASSERT_EQ(estimates.size(), 3u);
  EXPECT_EQ(estimates[0].recvMessagesPerRank, 0);   // init: local
  EXPECT_GT(estimates[1].recvMessagesPerRank, 0);   // coarsen: fine pulls
  EXPECT_GT(estimates[2].recvBytesPerRank, 0);      // trace: halo + level
}

TEST(TaskGraph, DotOutputContainsTasksAndEdges) {
  std::vector<Task> tasks;
  Task produce = simpleTask("produce", 0);
  produce.addComputes(Computes{"phi", VarType::Double, 0});
  Task consume = simpleTask("consume", 0);
  consume.addRequires(Requires{"phi", VarType::Double, 0, 0, false});
  tasks.push_back(std::move(produce));
  tasks.push_back(std::move(consume));
  const std::string dot = TaskGraph(tasks).toDot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("produce"), std::string::npos);
  EXPECT_NE(dot.find("t0 -> t1"), std::string::npos);
  EXPECT_NE(dot.find("phi"), std::string::npos);
}

}  // namespace
}  // namespace rmcrt::runtime
