/// AdmissionController tests: typed shed verdicts (global depth vs
/// per-tenant fairness), release/re-admit cycling, stats reconciliation,
/// and admit/release races under concurrency (also run under TSan in CI
/// as part of the service suite's dependency chain).

#include "runtime/admission.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace rmcrt::runtime {
namespace {

TEST(Admission, AdmitsUpToGlobalDepthThenShedsQueueFull) {
  AdmissionController ac({/*maxQueueDepth=*/3, /*maxPerTenant=*/8});
  EXPECT_EQ(ac.tryAdmit("a"), AdmissionVerdict::Admit);
  EXPECT_EQ(ac.tryAdmit("b"), AdmissionVerdict::Admit);
  EXPECT_EQ(ac.tryAdmit("c"), AdmissionVerdict::Admit);
  EXPECT_EQ(ac.tryAdmit("d"), AdmissionVerdict::QueueFull);
  EXPECT_EQ(ac.inFlight(), 3u);

  // Releasing any slot re-opens the global budget.
  ac.release("b");
  EXPECT_EQ(ac.tryAdmit("d"), AdmissionVerdict::Admit);
}

TEST(Admission, PerTenantCapShedsFloodingTenantOnly) {
  AdmissionController ac({/*maxQueueDepth=*/16, /*maxPerTenant=*/2});
  EXPECT_EQ(ac.tryAdmit("flood"), AdmissionVerdict::Admit);
  EXPECT_EQ(ac.tryAdmit("flood"), AdmissionVerdict::Admit);
  EXPECT_EQ(ac.tryAdmit("flood"), AdmissionVerdict::TenantBacklog)
      << "tenant at cap must shed with the tenant-specific verdict";
  EXPECT_EQ(ac.tryAdmit("polite"), AdmissionVerdict::Admit)
      << "other tenants keep admitting while one floods";
  EXPECT_EQ(ac.inFlightOf("flood"), 2u);
  EXPECT_EQ(ac.inFlightOf("polite"), 1u);
}

TEST(Admission, ReleaseRestoresTenantBudget) {
  AdmissionController ac({4, 1});
  EXPECT_EQ(ac.tryAdmit("t"), AdmissionVerdict::Admit);
  EXPECT_EQ(ac.tryAdmit("t"), AdmissionVerdict::TenantBacklog);
  ac.release("t");
  EXPECT_EQ(ac.tryAdmit("t"), AdmissionVerdict::Admit);
  EXPECT_EQ(ac.inFlightOf("t"), 1u);
}

TEST(Admission, UnbalancedReleaseIsIgnoredNotUnderflowed) {
  AdmissionController ac({4, 4});
  ac.release("never-admitted");
  EXPECT_EQ(ac.inFlight(), 0u);
  EXPECT_EQ(ac.stats().released, 0u);
  EXPECT_EQ(ac.tryAdmit("t"), AdmissionVerdict::Admit);
  ac.release("t");
  ac.release("t");  // second release of the same slot: no-op
  EXPECT_EQ(ac.inFlight(), 0u);
  EXPECT_EQ(ac.stats().released, 1u);
}

TEST(Admission, StatsReconcileExactly) {
  AdmissionController ac({2, 1});
  EXPECT_EQ(ac.tryAdmit("a"), AdmissionVerdict::Admit);
  EXPECT_EQ(ac.tryAdmit("a"), AdmissionVerdict::TenantBacklog);
  EXPECT_EQ(ac.tryAdmit("b"), AdmissionVerdict::Admit);
  EXPECT_EQ(ac.tryAdmit("c"), AdmissionVerdict::QueueFull);
  ac.release("a");

  const AdmissionStats s = ac.stats();
  EXPECT_EQ(s.admitted, 2u);
  EXPECT_EQ(s.released, 1u);
  EXPECT_EQ(s.shedTenant, 1u);
  EXPECT_EQ(s.shedQueueFull, 1u);
  EXPECT_EQ(s.admitted, s.released + s.inFlight)
      << "every admitted request is either released or still in flight";
}

TEST(Admission, ConcurrentAdmitReleaseNeverExceedsCaps) {
  const AdmissionConfig cfg{/*maxQueueDepth=*/8, /*maxPerTenant=*/3};
  AdmissionController ac(cfg);
  constexpr int kThreads = 6;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ac, t] {
      const std::string tenant = "tenant." + std::to_string(t % 3);
      for (int i = 0; i < kIters; ++i) {
        if (ac.tryAdmit(tenant) == AdmissionVerdict::Admit) {
          // Invariants can be read mid-flight: caps are never exceeded.
          EXPECT_LE(ac.inFlightOf(tenant), 3u);
          ac.release(tenant);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  const AdmissionStats s = ac.stats();
  EXPECT_EQ(s.inFlight, 0u);
  EXPECT_EQ(s.admitted, s.released);
  EXPECT_EQ(s.admitted + s.shedQueueFull + s.shedTenant,
            static_cast<std::uint64_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace rmcrt::runtime
