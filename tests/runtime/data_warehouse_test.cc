#include "runtime/data_warehouse.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace rmcrt::runtime {
namespace {

grid::Patch makePatch(int id = 0) {
  return grid::Patch(id, 0, CellRange(IntVector(0), IntVector(8)));
}

TEST(DataWarehouse, PutGetPatchVariable) {
  DataWarehouse dw;
  grid::CCVariable<double> v(makePatch(), 0, 1.5);
  v[IntVector(3, 3, 3)] = 9.0;
  dw.put("abskg", 0, std::move(v));
  EXPECT_TRUE(dw.exists("abskg", 0));
  EXPECT_FALSE(dw.exists("abskg", 1));
  EXPECT_FALSE(dw.exists("sigmaT4", 0));
  const auto& got = dw.get<double>("abskg", 0);
  EXPECT_DOUBLE_EQ(got[IntVector(3, 3, 3)], 9.0);
  EXPECT_DOUBLE_EQ(got[IntVector(0, 0, 0)], 1.5);
}

TEST(DataWarehouse, GetModifiableWritesThrough) {
  DataWarehouse dw;
  dw.put("divQ", 5, grid::CCVariable<double>(makePatch(5), 0, 0.0));
  dw.getModifiable<double>("divQ", 5)[IntVector(1, 1, 1)] = 4.2;
  EXPECT_DOUBLE_EQ(dw.get<double>("divQ", 5)[IntVector(1, 1, 1)], 4.2);
}

TEST(DataWarehouse, CellTypeVariable) {
  DataWarehouse dw;
  grid::CCVariable<grid::CellType> ct(makePatch(), 0, grid::CellType::Flow);
  ct[IntVector(0, 0, 0)] = grid::CellType::Wall;
  dw.put("cellType", 0, std::move(ct));
  EXPECT_EQ(dw.get<grid::CellType>("cellType", 0)[IntVector(0, 0, 0)],
            grid::CellType::Wall);
}

TEST(DataWarehouse, LevelVariables) {
  DataWarehouse dw;
  dw.putLevel("abskg", 0,
              grid::CCVariable<double>(
                  CellRange(IntVector(0), IntVector(16)), 0.25));
  EXPECT_TRUE(dw.existsLevel("abskg", 0));
  EXPECT_FALSE(dw.existsLevel("abskg", 1));
  EXPECT_DOUBLE_EQ(
      dw.getLevel<double>("abskg", 0)[IntVector(15, 15, 15)], 0.25);
}

TEST(DataWarehouse, RegionVariablesKeyedByWindow) {
  DataWarehouse dw;
  const CellRange w1(IntVector(0), IntVector(4));
  const CellRange w2(IntVector(-1), IntVector(5));
  dw.putRegion("abskg", 1, grid::CCVariable<double>(w1, 1.0));
  dw.putRegion("abskg", 1, grid::CCVariable<double>(w2, 2.0));
  EXPECT_TRUE(dw.existsRegion("abskg", 1, w1));
  EXPECT_TRUE(dw.existsRegion("abskg", 1, w2));
  EXPECT_FALSE(dw.existsRegion("abskg", 0, w1));
  EXPECT_DOUBLE_EQ(dw.getRegion<double>("abskg", 1, w1)[IntVector(0)], 1.0);
  EXPECT_DOUBLE_EQ(dw.getRegion<double>("abskg", 1, w2)[IntVector(0)], 2.0);
}

TEST(DataWarehouse, LiveBytesAccounting) {
  DataWarehouse dw;
  EXPECT_EQ(dw.liveBytes(), 0);
  dw.put("a", 0, grid::CCVariable<double>(makePatch(), 0, 0.0));
  EXPECT_EQ(dw.liveBytes(), 8 * 8 * 8 * 8);
  dw.putLevel("b", 0,
              grid::CCVariable<grid::CellType>(
                  CellRange(IntVector(0), IntVector(4)), grid::CellType::Flow));
  EXPECT_EQ(dw.liveBytes(), 8 * 8 * 8 * 8 + 4 * 4 * 4 * 4);
}

TEST(DataWarehouse, ClearDropsEverything) {
  DataWarehouse dw;
  dw.put("a", 0, grid::CCVariable<double>(makePatch(), 0, 0.0));
  dw.putLevel("b", 0, grid::CCVariable<double>(
                          CellRange(IntVector(0), IntVector(2)), 0.0));
  dw.clear();
  EXPECT_FALSE(dw.exists("a", 0));
  EXPECT_FALSE(dw.existsLevel("b", 0));
  EXPECT_EQ(dw.liveBytes(), 0);
}

TEST(DataWarehouse, OverwriteReplacesVariable) {
  DataWarehouse dw;
  dw.put("a", 0, grid::CCVariable<double>(makePatch(), 0, 1.0));
  dw.put("a", 0, grid::CCVariable<double>(makePatch(), 2, 7.0));
  const auto& got = dw.get<double>("a", 0);
  EXPECT_EQ(got.numGhost(), 2);
  EXPECT_DOUBLE_EQ(got[IntVector(-2, -2, -2)], 7.0);
}

TEST(DataWarehouse, ConcurrentReadersWithWriter) {
  DataWarehouse dw;
  for (int i = 0; i < 64; ++i)
    dw.put("v", i, grid::CCVariable<double>(makePatch(i), 0, i * 1.0));
  std::atomic<bool> bad{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&dw, &bad] {
      for (int round = 0; round < 200; ++round) {
        for (int i = 0; i < 64; ++i) {
          if (dw.get<double>("v", i)[IntVector(0)] != i * 1.0)
            bad.store(true);
        }
      }
    });
  }
  std::thread writer([&dw] {
    for (int i = 64; i < 256; ++i)
      dw.put("v", i, grid::CCVariable<double>(makePatch(i), 0, i * 1.0));
  });
  for (auto& t : readers) t.join();
  writer.join();
  EXPECT_FALSE(bad.load());
  EXPECT_EQ(dw.numPatchVars(), 256u);
}

}  // namespace
}  // namespace rmcrt::runtime
