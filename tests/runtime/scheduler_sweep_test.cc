/// Property sweeps over the scheduler's staging machinery: ghost widths,
/// rank counts and container choices must all deliver exactly the
/// fingerprint field into every staged window cell.

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <tuple>
#include <vector>

#include "runtime/scheduler.h"

namespace rmcrt::runtime {
namespace {

using grid::Grid;
using grid::LoadBalancer;

double fingerprint(const IntVector& c) {
  return 7.0 * c.x() + 0.01 * c.y() - 3.0 * c.z();
}

using GhostSweepParam = std::tuple<int /*ghost*/, int /*ranks*/>;

class GhostWidthSweep : public ::testing::TestWithParam<GhostSweepParam> {};

TEST_P(GhostWidthSweep, StagedWindowExactEverywhere) {
  const auto [ng, ranks] = GetParam();
  auto grid = Grid::makeSingleLevel(Vector(0.0), Vector(1.0), IntVector(12),
                                    IntVector(4));
  auto lb = std::make_shared<LoadBalancer>(*grid, ranks);
  comm::Communicator world(ranks);
  std::vector<std::unique_ptr<Scheduler>> scheds;
  for (int r = 0; r < ranks; ++r)
    scheds.push_back(std::make_unique<Scheduler>(grid, lb, world, r));

  std::atomic<int> badCells{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < ranks; ++r) {
    threads.emplace_back([&, r, ng = ng] {
      Scheduler& s = *scheds[r];
      Task fill("fill", 0, [](const TaskContext& ctx) {
        auto& v = ctx.newDW->getModifiable<double>("phi", ctx.patch->id());
        for (const auto& c : ctx.patch->cells()) v[c] = fingerprint(c);
      });
      fill.addComputes(Computes{"phi", VarType::Double, 0});
      s.addTask(std::move(fill));
      Task consume("consume", 0, [&badCells, ng](const TaskContext& ctx) {
        const auto& g = ctx.getGhosted<double>("phi", ng);
        for (const auto& c : g.window())
          if (g[c] != fingerprint(c)) badCells.fetch_add(1);
      });
      consume.addRequires(Requires{"phi", VarType::Double, 0, ng, false});
      s.addTask(std::move(consume));
      s.executeTimestep();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(badCells.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    GhostByRanks, GhostWidthSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 4, 6),
                       ::testing::Values(1, 3)),
    [](const auto& info) {
      return "g" + std::to_string(std::get<0>(info.param)) + "_r" +
             std::to_string(std::get<1>(info.param));
    });

TEST(SchedulerSweep, GhostWiderThanPatchStillExact) {
  // Ghost width exceeding the patch edge pulls data from beyond nearest
  // neighbors — stresses the transfer enumeration.
  auto grid = Grid::makeSingleLevel(Vector(0.0), Vector(1.0), IntVector(12),
                                    IntVector(3));
  const int ranks = 4, ng = 7;  // > 2 patch widths
  auto lb = std::make_shared<LoadBalancer>(*grid, ranks);
  comm::Communicator world(ranks);
  std::vector<std::unique_ptr<Scheduler>> scheds;
  for (int r = 0; r < ranks; ++r)
    scheds.push_back(std::make_unique<Scheduler>(grid, lb, world, r));
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < ranks; ++r) {
    threads.emplace_back([&, r] {
      Scheduler& s = *scheds[r];
      Task fill("fill", 0, [](const TaskContext& ctx) {
        auto& v = ctx.newDW->getModifiable<double>("phi", ctx.patch->id());
        for (const auto& c : ctx.patch->cells()) v[c] = fingerprint(c);
      });
      fill.addComputes(Computes{"phi", VarType::Double, 0});
      s.addTask(std::move(fill));
      Task consume("consume", 0, [&bad](const TaskContext& ctx) {
        const auto& g = ctx.getGhosted<double>("phi", ng);
        for (const auto& c : g.window())
          if (g[c] != fingerprint(c)) bad.fetch_add(1);
      });
      consume.addRequires(Requires{"phi", VarType::Double, 0, ng, false});
      s.addTask(std::move(consume));
      s.executeTimestep();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(bad.load(), 0);
}

TEST(SchedulerSweep, CellTypeVariableExchanges) {
  // The non-double payload path (CellType = int32) through staging.
  auto grid = Grid::makeSingleLevel(Vector(0.0), Vector(1.0), IntVector(8),
                                    IntVector(4));
  const int ranks = 2;
  auto lb = std::make_shared<LoadBalancer>(*grid, ranks);
  comm::Communicator world(ranks);
  std::vector<std::unique_ptr<Scheduler>> scheds;
  for (int r = 0; r < ranks; ++r)
    scheds.push_back(std::make_unique<Scheduler>(grid, lb, world, r));
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < ranks; ++r) {
    threads.emplace_back([&, r] {
      Scheduler& s = *scheds[r];
      Task fill("fill", 0, [](const TaskContext& ctx) {
        auto& v = ctx.newDW->getModifiable<grid::CellType>(
            "cellType", ctx.patch->id());
        for (const auto& c : ctx.patch->cells())
          v[c] = (c.x() + c.y() + c.z()) % 2 == 0 ? grid::CellType::Wall
                                                  : grid::CellType::Flow;
      });
      fill.addComputes(Computes{"cellType", VarType::CellTypeVar, 0});
      s.addTask(std::move(fill));
      Task consume("consume", 0, [&bad](const TaskContext& ctx) {
        const auto& g = ctx.getGhosted<grid::CellType>("cellType", 2);
        for (const auto& c : g.window()) {
          const auto expect = (c.x() + c.y() + c.z()) % 2 == 0
                                  ? grid::CellType::Wall
                                  : grid::CellType::Flow;
          if (g[c] != expect) bad.fetch_add(1);
        }
      });
      consume.addRequires(
          Requires{"cellType", VarType::CellTypeVar, 0, 2, false});
      s.addTask(std::move(consume));
      s.executeTimestep();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(bad.load(), 0);
}

}  // namespace
}  // namespace rmcrt::runtime
