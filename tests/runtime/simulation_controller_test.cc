#include "runtime/simulation_controller.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "core/problems.h"
#include "core/rmcrt_component.h"
#include "grid/load_balancer.h"

namespace rmcrt::runtime {
namespace {

using grid::Grid;
using grid::LoadBalancer;

/// Multi-rank controller run: radiation every `interval` steps with
/// carry-forward in between; returns per-rank records.
std::vector<std::vector<TimestepRecord>> runControlled(
    std::shared_ptr<const Grid> grid, int ranks, int steps, int interval) {
  auto lb = std::make_shared<LoadBalancer>(*grid, ranks);
  comm::Communicator world(ranks);
  std::vector<std::unique_ptr<Scheduler>> scheds;
  for (int r = 0; r < ranks; ++r)
    scheds.push_back(std::make_unique<Scheduler>(grid, lb, world, r));

  core::RmcrtSetup setup;
  setup.problem = core::burnsChriston();
  setup.trace.nDivQRays = 4;
  setup.roiHalo = 2;

  std::vector<std::vector<TimestepRecord>> records(
      static_cast<std::size_t>(ranks));
  std::vector<std::thread> threads;
  for (int r = 0; r < ranks; ++r) {
    threads.emplace_back([&, r] {
      SimulationController ctl(
          *scheds[r],
          [&](Scheduler& s) {
            core::RmcrtComponent::registerTwoLevelPipeline(s, setup);
          },
          [&](Scheduler& s) {
            s.addTask(makeCarryForwardTask({core::RmcrtLabels::divQ},
                                           grid->numLevels() - 1));
          });
      ctl.setRadiationInterval(interval);
      records[static_cast<std::size_t>(r)] = ctl.run(steps);
    });
  }
  for (auto& t : threads) t.join();
  // Schedulers hold the final state; verify divQ survived the carries.
  for (int r = 0; r < ranks; ++r) {
    for (int pid : lb->patchesOf(r, *grid, grid->numLevels() - 1)) {
      EXPECT_TRUE(
          scheds[r]->newDW().exists(core::RmcrtLabels::divQ, pid))
          << "divQ missing after run on patch " << pid;
    }
  }
  return records;
}

std::shared_ptr<Grid> smallGrid() {
  return Grid::makeTwoLevel(Vector(0.0), Vector(1.0), IntVector(16),
                            IntVector(4), IntVector(8), IntVector(4));
}

TEST(SimulationController, RunsRequestedTimesteps) {
  auto records = runControlled(smallGrid(), 2, 5, 1);
  for (const auto& rankRecords : records) {
    ASSERT_EQ(rankRecords.size(), 5u);
    for (const auto& rec : rankRecords) {
      EXPECT_TRUE(rec.radiationStep);  // interval 1 = every step
      EXPECT_GT(rec.stats.tasksExecuted, 0u);
    }
  }
}

TEST(SimulationController, LooseCouplingSkipsRadiation) {
  // Interval 3 over 7 steps: radiation at steps 0, 3, 6.
  auto records = runControlled(smallGrid(), 2, 7, 3);
  for (const auto& rankRecords : records) {
    ASSERT_EQ(rankRecords.size(), 7u);
    for (const auto& rec : rankRecords) {
      EXPECT_EQ(rec.radiationStep, rec.step % 3 == 0) << "step " << rec.step;
    }
    // Carry-forward steps are much cheaper than radiation steps.
    EXPECT_LT(rankRecords[1].stats.taskExecSeconds,
              rankRecords[0].stats.taskExecSeconds);
  }
}

TEST(SimulationController, CarryForwardPreservesDivQExactly) {
  auto grid = smallGrid();
  auto lb = std::make_shared<LoadBalancer>(*grid, 1);
  comm::Communicator world(1);
  Scheduler sched(grid, lb, world, 0);

  core::RmcrtSetup setup;
  setup.problem = core::burnsChriston();
  setup.trace.nDivQRays = 6;
  setup.roiHalo = 2;

  SimulationController ctl(
      sched,
      [&](Scheduler& s) {
        core::RmcrtComponent::registerTwoLevelPipeline(s, setup);
      },
      [&](Scheduler& s) {
        s.addTask(makeCarryForwardTask({core::RmcrtLabels::divQ},
                                       grid->numLevels() - 1));
      });
  ctl.setRadiationInterval(100);  // radiation only at step 0
  ctl.run(4);

  // After 3 carry-forwards the divQ field equals the radiation solve.
  const grid::CCVariable<double> serial =
      core::RmcrtComponent::solveSerialTwoLevel(*grid, setup);
  for (int pid : lb->patchesOf(0, *grid, grid->numLevels() - 1)) {
    const auto& divQ = sched.newDW().get<double>(core::RmcrtLabels::divQ, pid);
    for (const auto& c : grid->patchById(pid)->cells())
      EXPECT_DOUBLE_EQ(divQ[c], serial[c]);
  }
}

TEST(SimulationController, StatsResetPerTimestep) {
  auto records = runControlled(smallGrid(), 1, 3, 1);
  // Each record's stats describe that step only (reset between steps):
  // roughly equal task counts per radiation step.
  const auto& r = records[0];
  EXPECT_EQ(r[0].stats.tasksExecuted, r[1].stats.tasksExecuted);
  EXPECT_EQ(r[1].stats.tasksExecuted, r[2].stats.tasksExecuted);
}

TEST(CarryForwardTask, DeclaresRequiresAndComputes) {
  Task t = makeCarryForwardTask({"a", "b"}, 1);
  EXPECT_EQ(t.requiresList().size(), 2u);
  EXPECT_EQ(t.computesList().size(), 2u);
  EXPECT_TRUE(t.requiresList()[0].fromOldDW);
  EXPECT_EQ(t.level(), 1);
}

}  // namespace
}  // namespace rmcrt::runtime
