#include "runtime/reductions.h"

#include <gtest/gtest.h>

#include <cmath>

#include <thread>
#include <vector>

namespace rmcrt::runtime {
namespace {

TEST(Reductions, IdentitiesAndCombine) {
  EXPECT_EQ(ReductionSet::identity(ReductionOp::Sum), 0.0);
  EXPECT_TRUE(std::isinf(ReductionSet::identity(ReductionOp::Min)));
  EXPECT_TRUE(std::isinf(-ReductionSet::identity(ReductionOp::Max)));
  EXPECT_DOUBLE_EQ(ReductionSet::combine(ReductionOp::Sum, 2, 3), 5);
  EXPECT_DOUBLE_EQ(ReductionSet::combine(ReductionOp::Min, 2, 3), 2);
  EXPECT_DOUBLE_EQ(ReductionSet::combine(ReductionOp::Max, 2, 3), 3);
}

TEST(Reductions, LocalPartialAccumulates) {
  ReductionSet set;
  set.declare("delT", ReductionOp::Min);
  set.contribute("delT", 0.5);
  set.contribute("delT", 0.2);
  set.contribute("delT", 0.9);
  EXPECT_DOUBLE_EQ(set.partial("delT"), 0.2);
}

TEST(Reductions, DeclareIsIdempotent) {
  ReductionSet set;
  set.declare("q", ReductionOp::Sum);
  set.declare("q", ReductionOp::Sum);
  set.contribute("q", 1.0);
  set.contribute("q", 2.0);
  EXPECT_DOUBLE_EQ(set.partial("q"), 3.0);
}

TEST(Reductions, ConcurrentContributions) {
  ReductionSet set;
  set.declare("power", ReductionOp::Sum);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&set] {
      for (int i = 0; i < 1000; ++i) set.contribute("power", 0.5);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_DOUBLE_EQ(set.partial("power"), 2000.0);
}

TEST(Reductions, ReduceAcrossRanksMinSumMax) {
  const int P = 4;
  comm::Communicator world(P);
  std::vector<ReductionSet> sets(P);
  std::vector<double> minOut(P), sumOut(P), maxOut(P);
  std::vector<std::thread> ranks;
  for (int r = 0; r < P; ++r) {
    ranks.emplace_back([&, r] {
      sets[r].declare("delT", ReductionOp::Min);
      sets[r].declare("q", ReductionOp::Sum);
      sets[r].declare("peak", ReductionOp::Max);
      sets[r].contribute("delT", 1.0 / (r + 1));  // min = 1/4
      sets[r].contribute("q", r * 1.0);           // sum = 6
      sets[r].contribute("peak", r * 2.0);        // max = 6
      minOut[r] = sets[r].reduceAcross("delT", world, r);
      sumOut[r] = sets[r].reduceAcross("q", world, r);
      maxOut[r] = sets[r].reduceAcross("peak", world, r);
    });
  }
  for (auto& t : ranks) t.join();
  for (int r = 0; r < P; ++r) {
    EXPECT_DOUBLE_EQ(minOut[r], 0.25);
    EXPECT_DOUBLE_EQ(sumOut[r], 6.0);
    EXPECT_DOUBLE_EQ(maxOut[r], 6.0);
  }
}

TEST(Reductions, ReduceResetsPartialToIdentity) {
  comm::Communicator world(1);
  ReductionSet set;
  set.declare("delT", ReductionOp::Min);
  set.contribute("delT", 0.1);
  EXPECT_DOUBLE_EQ(set.reduceAcross("delT", world, 0), 0.1);
  EXPECT_TRUE(std::isinf(set.partial("delT")));
  // Next timestep accumulates fresh.
  set.contribute("delT", 0.7);
  EXPECT_DOUBLE_EQ(set.reduceAcross("delT", world, 0), 0.7);
}

}  // namespace
}  // namespace rmcrt::runtime
