/// Whole-cluster snapshot / replay / recovery acceptance suite:
///  * straight N-step run vs. snapshot-at-k-then-restore is BITWISE
///    identical (divQ digests and RNG stream counters),
///  * a recorded run replays with identical per-step digests and a
///    tampered journal raises ReplayDivergence,
///  * killing a rank mid-run auto-restores from the last snapshot onto
///    the survivors and finishes within the Burns-Christon tolerance,
///  * elastic restore onto more or fewer ranks leaves every patch owned
///    exactly once with its data intact,
///  * corrupt or torn snapshot directories are rejected outright,
///  * channel / fault-injector / GPU level-DB state all round-trip.

#include "runtime/snapshot.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "comm/fault_injector.h"
#include "comm/reliable_channel.h"
#include "core/problems.h"
#include "core/rmcrt_component.h"
#include "gpu/gpu_data_warehouse.h"
#include "grid/load_balancer.h"

namespace rmcrt::runtime {
namespace {

using grid::CCVariable;
using grid::Grid;
using grid::LoadBalancer;

std::shared_ptr<Grid> smallGrid() {
  return Grid::makeTwoLevel(Vector(0.0), Vector(1.0), IntVector(16),
                            IntVector(4), IntVector(8), IntVector(4));
}

core::RmcrtSetup makeSetup() {
  core::RmcrtSetup setup;
  setup.problem = core::burnsChriston();
  setup.trace.nDivQRays = 4;
  setup.roiHalo = 2;
  return setup;
}

/// Resilience knobs sized for tests: fail fast, never wait out production
/// backoff budgets.
void tuneForTests(HarnessConfig& cfg) {
  cfg.sched.channel.baseBackoffMs = 2.0;
  cfg.sched.channel.maxBackoffMs = 20.0;
  cfg.sched.channel.progressIntervalMs = 0.5;
  cfg.sched.channel.maxRetries = 6;
  cfg.sched.watchdogDeadlineSeconds = 0.4;
  cfg.sched.watchdogMaxStrikes = 2;
  cfg.collectiveTimeoutSeconds = 5.0;
}

HarnessConfig baseConfig(std::shared_ptr<const Grid> grid, int ranks,
                         int steps, int interval) {
  HarnessConfig cfg;
  cfg.grid = grid;
  cfg.numRanks = ranks;
  cfg.steps = steps;
  cfg.radiationInterval = interval;
  const core::RmcrtSetup setup = makeSetup();
  cfg.registerRadiation = [setup](Scheduler& s) {
    core::RmcrtComponent::registerTwoLevelPipeline(s, setup);
  };
  const int fineLevel = grid->numLevels() - 1;
  cfg.registerCarryForward = [fineLevel](Scheduler& s) {
    s.addTask(makeCarryForwardTask({core::RmcrtLabels::divQ}, fineLevel));
  };
  return cfg;
}

class SnapshotReplayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    m_dir = std::string("/tmp/rmcrt_snapshot_test_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(m_dir);
    std::filesystem::create_directories(m_dir);
  }
  void TearDown() override { std::filesystem::remove_all(m_dir); }
  std::string m_dir;
};

/// Collect every finest-level divQ value of \p h keyed by (patch, cell).
std::vector<std::pair<int, std::vector<double>>> collectDivQ(
    WorldHarness& h) {
  std::vector<std::pair<int, std::vector<double>>> out;
  const int lvl = h.grid().numLevels() - 1;
  for (int r = 0; r < h.numRanks(); ++r) {
    for (int pid : h.loadBalancer().patchesOf(r, h.grid(), lvl)) {
      const auto& v =
          h.scheduler(r).newDW().get<double>(core::RmcrtLabels::divQ, pid);
      std::vector<double> cells;
      for (const auto& c : h.grid().patchById(pid)->cells())
        cells.push_back(v[c]);
      out.emplace_back(pid, std::move(cells));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

// --- tentpole acceptance -------------------------------------------------

TEST_F(SnapshotReplayTest, SnapshotRoundTripBitExact) {
  auto grid = smallGrid();
  const int steps = 7, ranks = 2, interval = 3;

  // Straight run: 7 steps, radiation at 0/3/6, no snapshots.
  WorldHarness straight(baseConfig(grid, ranks, steps, interval));
  HarnessResult a = straight.run();
  ASSERT_TRUE(a.completed);

  // Same run, snapshotting every 2 completed steps (after 1, 3, 5): the
  // checkpoint machinery must not perturb the physics.
  HarnessConfig snapCfg = baseConfig(grid, ranks, steps, interval);
  snapCfg.snapshotDir = m_dir;
  snapCfg.snapshotEvery = 2;
  WorldHarness snapped(snapCfg);
  HarnessResult b = snapped.run();
  ASSERT_TRUE(b.completed);
  EXPECT_EQ(b.snapshots, 3);
  EXPECT_EQ(b.lastSnapshotStep, 5);
  EXPECT_GT(b.snapshotBytes, 0u);
  ASSERT_EQ(a.digests.size(), b.digests.size());
  for (int r = 0; r < ranks; ++r) EXPECT_EQ(a.digests[r], b.digests[r]);

  // Restore the snapshot taken after step 3 and run the remaining steps
  // 4..6: every per-step digest, the final divQ field, and the RNG stream
  // counters must match the straight run BITWISE.
  HarnessConfig resumeCfg = baseConfig(grid, ranks, steps, interval);
  resumeCfg.restoreDir = m_dir + "/snap3";
  WorldHarness resumed(resumeCfg);
  HarnessResult c = resumed.run();
  ASSERT_TRUE(c.completed);
  for (int r = 0; r < ranks; ++r) {
    ASSERT_EQ(c.digests[r].size(), 3u) << "rank " << r;
    for (const auto& [step, digest] : c.digests[r]) {
      const auto it = std::find_if(
          a.digests[r].begin(), a.digests[r].end(),
          [s = step](const auto& p) { return p.first == s; });
      ASSERT_NE(it, a.digests[r].end());
      EXPECT_EQ(digest, it->second) << "rank " << r << " step " << step;
    }
    EXPECT_EQ(resumed.rngState(r), straight.rngState(r)) << "rank " << r;
  }
  const auto divA = collectDivQ(straight);
  const auto divC = collectDivQ(resumed);
  ASSERT_EQ(divA.size(), divC.size());
  for (std::size_t i = 0; i < divA.size(); ++i) {
    ASSERT_EQ(divA[i].first, divC[i].first);
    ASSERT_EQ(divA[i].second.size(), divC[i].second.size());
    for (std::size_t j = 0; j < divA[i].second.size(); ++j)
      EXPECT_DOUBLE_EQ(divA[i].second[j], divC[i].second[j])
          << "patch " << divA[i].first << " cell " << j;
  }
}

TEST_F(SnapshotReplayTest, RecordReplayIdentical) {
  auto grid = smallGrid();
  const std::string journalDir = m_dir + "/journal";

  HarnessConfig recCfg = baseConfig(grid, 2, 6, 2);
  recCfg.recordDir = journalDir;
  WorldHarness recorder(recCfg);
  HarnessResult rec = recorder.run();
  ASSERT_TRUE(rec.completed);

  ReplayJournal journal;
  ASSERT_TRUE(journal.load(journalDir));
  ASSERT_EQ(journal.rankDigests.size(), 2u);
  EXPECT_EQ(journal.rankDigests[0].size(), 6u);

  // Replaying verifies every step against the journal; identical config
  // must sail through with identical digests.
  HarnessConfig repCfg = baseConfig(grid, 2, 6, 2);
  repCfg.replayDir = journalDir;
  WorldHarness replayer(repCfg);
  HarnessResult rep = replayer.run();
  ASSERT_TRUE(rep.completed);
  EXPECT_EQ(rep.digests, rec.digests);

  // A tampered journal must be caught as ReplayDivergence at the exact
  // step, not produce silently different results.
  journal.rankDigests[0][3].second ^= 0xdeadbeefull;
  const std::string tamperedDir = m_dir + "/tampered";
  ASSERT_TRUE(journal.save(tamperedDir));
  HarnessConfig badCfg = baseConfig(grid, 2, 6, 2);
  badCfg.replayDir = tamperedDir;
  WorldHarness diverger(badCfg);
  EXPECT_THROW(diverger.run(), ReplayDivergence);
}

TEST_F(SnapshotReplayTest, KillRankAutoRestore) {
  auto grid = smallGrid();
  const int steps = 6, interval = 2;

  // Fault-free golden on the victim-free world for the final comparison.
  const core::RmcrtSetup setup = makeSetup();
  const CCVariable<double> serial =
      core::RmcrtComponent::solveSerialTwoLevel(*grid, setup);

  HarnessConfig cfg = baseConfig(grid, 3, steps, interval);
  tuneForTests(cfg);
  cfg.snapshotDir = m_dir;
  cfg.snapshotEvery = 2;
  cfg.injector = std::make_shared<comm::FaultInjector>();
  cfg.killRank = 1;
  cfg.killAtStep = 3;  // dies after completing step 2; last snapshot: step 1
  WorldHarness h(cfg);
  HarnessResult res = h.run();

  ASSERT_TRUE(res.completed) << "run must finish via auto-recovery";
  EXPECT_EQ(res.recoveries, 1);
  EXPECT_EQ(res.finalRanks, 2);
  EXPECT_EQ(h.numRanks(), 2);

  // The survivors own every patch exactly once and the answer matches the
  // no-fault golden within the Burns-Christon tolerance (1%).
  const int lvl = grid->numLevels() - 1;
  std::set<int> owned;
  for (int r = 0; r < h.numRanks(); ++r)
    for (int pid : h.loadBalancer().patchesOf(r, h.grid(), lvl))
      EXPECT_TRUE(owned.insert(pid).second) << "patch " << pid;
  EXPECT_EQ(static_cast<int>(owned.size()),
            grid->fineLevel().numPatches());
  double maxRel = 0.0;
  for (const auto& [pid, cells] : collectDivQ(h)) {
    std::size_t j = 0;
    for (const auto& c : grid->patchById(pid)->cells()) {
      const double want = serial[c];
      const double got = cells[j++];
      const double rel =
          std::abs(got - want) / std::max(std::abs(want), 1e-12);
      maxRel = std::max(maxRel, rel);
      ASSERT_LT(rel, 0.01) << "patch " << pid << " cell " << c;
    }
  }
  EXPECT_LT(maxRel, 0.01);
}

TEST_F(SnapshotReplayTest, ElasticResizeOwnsEveryPatchOnce) {
  auto grid = smallGrid();

  // Source world: 2 ranks' newDWs carrying a fingerprinted divQ on every
  // patch of every level.
  auto srcLb = std::make_shared<LoadBalancer>(*grid, 2);
  std::vector<DataWarehouse> srcOld(2), srcNew(2);
  for (int r = 0; r < 2; ++r) {
    for (int pid : srcLb->patchesOf(r)) {
      const grid::Patch* p = grid->patchById(pid);
      CCVariable<double> v(*p, 0, 0.0);
      for (const auto& c : p->cells())
        v[c] = 100.0 * pid + c.x() + 0.01 * c.y() + 0.0001 * c.z();
      srcNew[static_cast<std::size_t>(r)].put("divQ", pid, std::move(v));
    }
  }
  Snapshot::WorldStateView save;
  save.step = 4;
  save.domainSeed = 9;
  save.grid = grid;
  for (int r = 0; r < 2; ++r) {
    Snapshot::RankStateView v;
    v.oldDW = &srcOld[static_cast<std::size_t>(r)];
    v.newDW = &srcNew[static_cast<std::size_t>(r)];
    save.ranks.push_back(v);
  }
  ASSERT_TRUE(Snapshot::save(m_dir + "/snap", save));

  // Resize in both directions; every patch must land on exactly one rank
  // with its payload intact.
  for (int newRanks : {1, 3}) {
    auto g = Snapshot::restoreGrid(m_dir + "/snap");
    ASSERT_TRUE(g);
    LoadBalancer lb(*g, newRanks);
    std::vector<DataWarehouse> dstOld(static_cast<std::size_t>(newRanks)),
        dstNew(static_cast<std::size_t>(newRanks));
    Snapshot::WorldStateView world;
    for (int r = 0; r < newRanks; ++r) {
      Snapshot::RankStateView v;
      v.oldDW = &dstOld[static_cast<std::size_t>(r)];
      v.newDW = &dstNew[static_cast<std::size_t>(r)];
      world.ranks.push_back(v);
    }
    ASSERT_TRUE(Snapshot::restoreElastic(m_dir + "/snap", world, lb));
    EXPECT_EQ(world.step, 4);

    for (int pid = 0; pid < g->numPatches(); ++pid) {
      int owners = 0;
      for (int r = 0; r < newRanks; ++r)
        if (dstNew[static_cast<std::size_t>(r)].exists("divQ", pid))
          ++owners;
      EXPECT_EQ(owners, 1) << "resize to " << newRanks << " patch " << pid;
      const int owner = lb.rankOf(pid);
      ASSERT_TRUE(dstNew[static_cast<std::size_t>(owner)].exists("divQ", pid));
      const auto& v =
          dstNew[static_cast<std::size_t>(owner)].get<double>("divQ", pid);
      for (const auto& c : g->patchById(pid)->cells())
        EXPECT_DOUBLE_EQ(
            v[c], 100.0 * pid + c.x() + 0.01 * c.y() + 0.0001 * c.z())
            << "resize to " << newRanks << " patch " << pid << " " << c;
    }
  }
}

TEST_F(SnapshotReplayTest, ElasticResumeGrowsRankCount) {
  // Snapshot under 2 ranks, resume under 3: the harness routes through
  // restoreElastic and the run still completes with correct physics.
  auto grid = smallGrid();
  HarnessConfig snapCfg = baseConfig(grid, 2, 6, 2);
  snapCfg.snapshotDir = m_dir;
  snapCfg.snapshotEvery = 2;
  WorldHarness snapped(snapCfg);
  ASSERT_TRUE(snapped.run().completed);

  HarnessConfig growCfg = baseConfig(grid, 3, 6, 2);
  growCfg.restoreDir = m_dir + "/snap3";
  WorldHarness grown(growCfg);
  HarnessResult res = grown.run();
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(grown.numRanks(), 3);

  const int lvl = grid->numLevels() - 1;
  std::set<int> owned;
  for (int r = 0; r < 3; ++r)
    for (int pid : grown.loadBalancer().patchesOf(r, grown.grid(), lvl))
      EXPECT_TRUE(owned.insert(pid).second) << "patch " << pid;
  const auto want = collectDivQ(snapped);
  const auto got = collectDivQ(grown);
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(want[i].first, got[i].first);
    for (std::size_t j = 0; j < want[i].second.size(); ++j)
      EXPECT_DOUBLE_EQ(want[i].second[j], got[i].second[j])
          << "patch " << want[i].first << " cell " << j;
  }
}

// --- format robustness ---------------------------------------------------

TEST_F(SnapshotReplayTest, ChecksumRejectsCorruption) {
  auto grid = smallGrid();
  DataWarehouse oldDW, newDW;
  CCVariable<double> v(*grid->patchById(0), 1, 2.5);
  newDW.put("divQ", 0, std::move(v));
  Snapshot::WorldStateView save;
  save.step = 2;
  save.grid = grid;
  Snapshot::RankStateView rv;
  rv.oldDW = &oldDW;
  rv.newDW = &newDW;
  save.ranks.push_back(rv);
  const std::string dir = m_dir + "/snap";
  ASSERT_TRUE(Snapshot::save(dir, save));

  // Pristine: loads.
  {
    DataWarehouse o, n;
    Snapshot::WorldStateView w;
    Snapshot::RankStateView r0;
    r0.oldDW = &o;
    r0.newDW = &n;
    w.ranks.push_back(r0);
    ASSERT_TRUE(Snapshot::restore(dir, w));
    ASSERT_TRUE(n.exists("divQ", 0));
  }

  // Flip one payload byte: the manifest checksum must reject the blob.
  {
    std::fstream f(dir + "/rank0.bin",
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekp(100);
    char c = 0;
    f.seekg(100);
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x5a);
    f.seekp(100);
    f.write(&c, 1);
  }
  {
    DataWarehouse o, n;
    Snapshot::WorldStateView w;
    Snapshot::RankStateView r0;
    r0.oldDW = &o;
    r0.newDW = &n;
    w.ranks.push_back(r0);
    EXPECT_FALSE(Snapshot::restore(dir, w));
  }

  // Torn snapshot (no MANIFEST — crash before the commit record): both
  // probe and restore refuse.
  std::filesystem::remove(dir + "/MANIFEST");
  SnapshotManifest man;
  EXPECT_FALSE(Snapshot::peek(dir, man));
  EXPECT_FALSE(Snapshot::restoreGrid(dir));

  // Truncated MANIFEST likewise.
  {
    std::ofstream f(dir + "/MANIFEST", std::ios::trunc);
    f << "rmcrt-snapshot v1\nstep 2\n";
  }
  EXPECT_FALSE(Snapshot::peek(dir, man));
}

TEST_F(SnapshotReplayTest, RankCountMismatchRejectsVerbatimRestore) {
  auto grid = smallGrid();
  DataWarehouse oldDW, newDW;
  Snapshot::WorldStateView save;
  save.step = 0;
  save.grid = grid;
  Snapshot::RankStateView rv;
  rv.oldDW = &oldDW;
  rv.newDW = &newDW;
  save.ranks.push_back(rv);
  ASSERT_TRUE(Snapshot::save(m_dir + "/snap", save));

  Snapshot::WorldStateView w;
  w.ranks.resize(2);  // saved with 1
  EXPECT_FALSE(Snapshot::restore(m_dir + "/snap", w));
}

// --- component state round-trips ----------------------------------------

TEST_F(SnapshotReplayTest, ChannelStateRoundTrip) {
  // A send with no receiver posted leaves an unacked frame in flight;
  // snapshotting that channel and restoring into a fresh world must
  // preserve sequence numbers and redeliver the frame.
  const char payload[] = "ghost-row";
  comm::ReliableChannel::ChannelState cs;
  {
    comm::Communicator world(2);
    comm::ReliableChannel ch0(world, 0);
    comm::ReliableChannel ch1(world, 1);
    ch0.send(1, /*tag=*/7, payload, sizeof payload);
    cs = ch0.saveState();
    ASSERT_EQ(cs.sendLinks.size(), 1u);
    EXPECT_EQ(cs.sendLinks[0].dst, 1);
    EXPECT_EQ(cs.sendLinks[0].nextSeq, 2u);
    ASSERT_EQ(cs.sendLinks[0].unacked.size(), 1u);
    EXPECT_EQ(cs.sendLinks[0].unacked[0].tag, 7);
  }
  // Fresh world, restored sender: the frame is due immediately, so the
  // receiver gets it through normal progress.
  comm::Communicator world(2);
  comm::ReliableChannel ch0(world, 0);
  comm::ReliableChannel ch1(world, 1);
  ASSERT_TRUE(ch0.restoreState(cs));
  const auto cs2 = ch0.saveState();
  ASSERT_EQ(cs2.sendLinks.size(), 1u);
  EXPECT_EQ(cs2.sendLinks[0].nextSeq, cs.sendLinks[0].nextSeq);
  ASSERT_EQ(cs2.sendLinks[0].unacked.size(), 1u);
  EXPECT_EQ(cs2.sendLinks[0].unacked[0].bytes, cs.sendLinks[0].unacked[0].bytes);

  char got[sizeof payload] = {};
  comm::Request req = ch1.postRecv(0, 7, got, sizeof got);
  for (int i = 0; i < 2000 && !req.test(); ++i) {
    ch0.progress();
    ch1.progress();
  }
  ASSERT_TRUE(req.test()) << "restored in-flight frame must be delivered";
  EXPECT_STREQ(got, payload);
}

TEST_F(SnapshotReplayTest, FaultInjectorStateRoundTrip) {
  comm::FaultInjector a(/*seed=*/42);
  comm::FaultProbabilities p;
  p.drop = 0.3;
  a.setDefaultProbabilities(p);
  a.script(comm::ScriptedFault{0, 1, comm::kAnyTag, /*nth=*/3,
                               comm::FaultAction::Drop, false});
  a.killRank(2);
  // Burn some per-link RNG state so the counters are mid-stream.
  for (int i = 0; i < 17; ++i) (void)a.plan(0, 1, 5);

  const std::string blob = a.saveState();
  comm::FaultInjector b(/*seed=*/42);
  b.setDefaultProbabilities(p);  // config travels outside the blob
  b.script(comm::ScriptedFault{0, 1, comm::kAnyTag, 3,
                               comm::FaultAction::Drop, false});
  ASSERT_TRUE(b.restoreState(blob));
  EXPECT_EQ(b.killedRanks(), std::vector<int>{2});

  // Identical decision stream from here on.
  for (int i = 0; i < 64; ++i) {
    const auto pa = a.plan(0, 1, 5);
    const auto pb = b.plan(0, 1, 5);
    EXPECT_EQ(static_cast<int>(pa.action), static_cast<int>(pb.action))
        << "draw " << i;
  }
  // Wrong script config must be refused, leaving the target untouched.
  comm::FaultInjector c;
  EXPECT_FALSE(c.restoreState(blob));
  EXPECT_TRUE(c.killedRanks().empty());
}

TEST_F(SnapshotReplayTest, GpuLevelDatabaseRoundTrip) {
  auto grid = smallGrid();
  gpu::GpuDevice dev;
  gpu::GpuDataWarehouse gdw(dev);
  const grid::CellRange window = grid->coarseLevel().cells();
  CCVariable<double> abskg(window, 0.0);
  for (const auto& c : window)
    abskg[c] = 0.9 * c.x() + 0.09 * c.y() + 0.009 * c.z();
  gdw.getOrUploadLevelVar("abskg", 0, abskg);

  DataWarehouse oldDW, newDW;
  Snapshot::WorldStateView save;
  save.step = 1;
  save.grid = grid;
  Snapshot::RankStateView rv;
  rv.oldDW = &oldDW;
  rv.newDW = &newDW;
  rv.gpuDW = &gdw;
  save.ranks.push_back(rv);
  ASSERT_TRUE(Snapshot::save(m_dir + "/snap", save));

  gpu::GpuDevice dev2;
  gpu::GpuDataWarehouse back(dev2);
  DataWarehouse o2, n2;
  Snapshot::WorldStateView w;
  Snapshot::RankStateView r0;
  r0.oldDW = &o2;
  r0.newDW = &n2;
  r0.gpuDW = &back;
  w.ranks.push_back(r0);
  ASSERT_TRUE(Snapshot::restore(m_dir + "/snap", w));

  std::size_t seen = 0;
  back.forEachLevelVar([&](const std::string& key, const gpu::DeviceVar& dv) {
    ++seen;
    EXPECT_EQ(key, "abskg@L0");
    ASSERT_EQ(dv.bytes, static_cast<std::size_t>(abskg.sizeBytes()));
    EXPECT_EQ(0, std::memcmp(dv.devPtr, abskg.data(), dv.bytes));
  });
  EXPECT_EQ(seen, 1u);
}

}  // namespace
}  // namespace rmcrt::runtime
