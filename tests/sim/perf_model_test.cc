#include "sim/perf_model.h"

#include <gtest/gtest.h>

#include "sim/event_sim.h"
#include "sim/scaling_study.h"

namespace rmcrt::sim {
namespace {

TEST(ResourceTimeline, SingleServerSerializes) {
  ResourceTimeline r(1);
  EXPECT_DOUBLE_EQ(r.schedule(0.0, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(r.schedule(0.0, 3.0), 5.0);  // waits for server
  EXPECT_DOUBLE_EQ(r.schedule(10.0, 1.0), 11.0);
  EXPECT_DOUBLE_EQ(r.makespan(), 11.0);
  EXPECT_DOUBLE_EQ(r.busyTime(), 6.0);
}

TEST(ResourceTimeline, TwoServersOverlap) {
  ResourceTimeline r(2);
  EXPECT_DOUBLE_EQ(r.schedule(0.0, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(r.schedule(0.0, 2.0), 2.0);  // second engine
  EXPECT_DOUBLE_EQ(r.schedule(0.0, 1.0), 3.0);  // queues behind one
  r.reset();
  EXPECT_DOUBLE_EQ(r.earliestFree(), 0.0);
}

TEST(PerfModel, StrongScalingIsMonotoneWhileOverDecomposed) {
  const MachineModel m = titan();
  ProblemConfig p = largeProblem(16);  // 32768 patches
  double prev = 1e99;
  for (int g : {128, 256, 512, 1024, 2048, 4096, 8192, 16384}) {
    const double t = simulateTimestep(m, p, g).total;
    EXPECT_LT(t, prev) << "time must fall up to " << g << " GPUs";
    prev = t;
  }
}

TEST(PerfModel, LargerPatchesAreFasterPerGpu) {
  // Paper Section V observation 1: larger patches = more significant
  // GPU speedup (compare at a GPU count all three decompositions fill).
  const MachineModel m = titan();
  const int gpus = 256;
  const double t16 = simulateTimestep(m, largeProblem(16), gpus).total;
  const double t32 = simulateTimestep(m, largeProblem(32), gpus).total;
  const double t64 = simulateTimestep(m, largeProblem(64), gpus).total;
  EXPECT_GT(t16, t32);
  EXPECT_GT(t32, t64);
}

TEST(PerfModel, PaperEfficiencyHeadlines) {
  // Paper Section V: strong-scaling efficiency of the LARGE benchmark is
  // 96% from 4096->8192 GPUs and 89% from 4096->16384. The model must
  // land in the same regime (+-6 points).
  const MachineModel m = titan();
  const double e8k = largeProblemEfficiency(m, 16, 4096, 8192);
  const double e16k = largeProblemEfficiency(m, 16, 4096, 16384);
  EXPECT_NEAR(e8k, 0.96, 0.06);
  EXPECT_NEAR(e16k, 0.89, 0.06);
  EXPECT_GT(e8k, e16k);
}

TEST(PerfModel, SeriesEndWhenPatchesRunOut) {
  const auto series = largeStudy().run(titan());
  for (const auto& s : series) {
    ProblemConfig p = largeProblem(s.patchSize);
    for (const auto& pt : s.points)
      EXPECT_LE(pt.gpus, p.numFinePatches());
  }
  // 64^3 tops out at 512 GPUs; 16^3 reaches 16384.
  EXPECT_EQ(series[0].points.back().gpus, 16384);  // 16^3
  EXPECT_EQ(series[2].points.back().gpus, 512);    // 64^3
}

TEST(PerfModel, WaitFreeContainerReducesLocalComm) {
  const MachineModel m = titan();
  ProblemConfig p = largeProblem(8);
  for (int nodes : {512, 4096, 16384}) {
    const double before = localCommTime(m, p, nodes,
                                        CommContainer::LockedVector);
    const double after =
        localCommTime(m, p, nodes, CommContainer::WaitFree);
    const double speedup = before / after;
    EXPECT_GT(speedup, 2.0) << nodes;
    EXPECT_LT(speedup, 5.0) << nodes;  // paper Table I: 2.27x - 4.40x
  }
}

TEST(PerfModel, LocalCommDropsWithNodeCount) {
  // Fig. 1 shape: both curves decrease as the fixed problem spreads.
  const auto rows = commImprovementStudy(titan());
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i].beforeSeconds, rows[i - 1].beforeSeconds);
    EXPECT_LT(rows[i].afterSeconds, rows[i - 1].afterSeconds);
  }
  // Order-of-magnitude agreement with Table I's first row (6.25 s).
  EXPECT_GT(rows.front().beforeSeconds, 1.0);
  EXPECT_LT(rows.front().beforeSeconds, 20.0);
}

TEST(PerfModel, PerPatchCoarseCopiesExceedK20xMemory) {
  // Section III-C: without the level database, per-patch coarse copies
  // exceed the 6 GB K20X for the LARGE problem; with it, the footprint
  // fits.
  const MachineModel m = titan();
  ProblemConfig p = largeProblem(64);
  const auto shared = simulateTimestep(m, p, 512, CommContainer::WaitFree,
                                       /*perPatchCoarseCopies=*/false);
  EXPECT_FALSE(shared.deviceMemoryExceeded);
  // A hundred resident per-patch copies of a 42 MB coarse level blow the
  // budget once enough tasks are resident; emulate by growing the
  // concurrency.
  MachineModel crowded = m;
  crowded.concurrentKernels = 128;
  const auto copies = simulateTimestep(crowded, p, 4, CommContainer::WaitFree,
                                       /*perPatchCoarseCopies=*/true);
  EXPECT_TRUE(copies.deviceMemoryExceeded);
  const auto sharedCrowded = simulateTimestep(
      crowded, p, 4, CommContainer::WaitFree, /*perPatchCoarseCopies=*/false);
  EXPECT_FALSE(sharedCrowded.deviceMemoryExceeded);
}

TEST(PerfModel, PerPatchCopiesAlsoCostPcieTime) {
  const MachineModel m = titan();
  ProblemConfig p = largeProblem(32);
  const auto shared = simulateTimestep(m, p, 256, CommContainer::WaitFree,
                                       false);
  const auto copies = simulateTimestep(m, p, 256, CommContainer::WaitFree,
                                       true);
  EXPECT_GT(copies.pcie, 2.0 * shared.pcie);
  EXPECT_GE(copies.total, shared.total);
}

TEST(PerfModel, BreakdownComponentsAreConsistent) {
  const auto b = simulateTimestep(titan(), mediumProblem(32), 64);
  EXPECT_GT(b.total, 0.0);
  EXPECT_GT(b.kernel, 0.0);
  EXPECT_GT(b.pcie, 0.0);
  EXPECT_GE(b.total, b.gpuMakespan);
  EXPECT_GT(b.localComm, 0.0);
}

TEST(PerfModel, EfficiencyDefinitionMatchesEq3) {
  ScalingPoint a{100, {}}, b{200, {}};
  a.breakdown.total = 2.0;
  b.breakdown.total = 1.0;  // perfect halving
  EXPECT_DOUBLE_EQ(parallelEfficiency(a, b), 1.0);
  b.breakdown.total = 1.25;
  EXPECT_DOUBLE_EQ(parallelEfficiency(a, b), 0.8);
}

TEST(PerfModel, Eq3GoldenValuesFromPaperHeadlines) {
  // Hand-derived inversions of Eq. 3, E = (t_a * n_a) / (t_b * n_b):
  // fix t_4096 = 1 s and construct the t_b that makes E land exactly on
  // the paper's headline numbers.
  ScalingPoint a{4096, {}};
  a.breakdown.total = 1.0;
  ScalingPoint b{8192, {}};
  b.breakdown.total = 4096.0 / (8192.0 * 0.96);  // = 0.5208333... s
  EXPECT_NEAR(parallelEfficiency(a, b), 0.96, 1e-12);
  ScalingPoint c{16384, {}};
  c.breakdown.total = 4096.0 / (16384.0 * 0.89);  // = 0.2808988... s
  EXPECT_NEAR(parallelEfficiency(a, c), 0.89, 1e-12);
  // Non-power-of-two counts: (100 GPUs, 3 s) -> (300 GPUs, 1.5 s) is
  // 300/450 = 2/3 efficient.
  ScalingPoint d{100, {}}, e{300, {}};
  d.breakdown.total = 3.0;
  e.breakdown.total = 1.5;
  EXPECT_NEAR(parallelEfficiency(d, e), 2.0 / 3.0, 1e-12);
}

TEST(PerfModel, Eq3IsComposableAcrossDoublings) {
  // E(a->c) = E(a->b) * E(b->c): the whole-sweep efficiency is the
  // product of the per-doubling efficiencies, so gating the doublings
  // gates the sweep.
  const MachineModel m = titan();
  const auto pts = strongScalingSeries(m, largeProblem(16),
                                       {4096, 8192, 16384});
  const double composed = parallelEfficiency(pts[0], pts[1]) *
                          parallelEfficiency(pts[1], pts[2]);
  EXPECT_NEAR(parallelEfficiency(pts[0], pts[2]), composed, 1e-12);
}

}  // namespace
}  // namespace rmcrt::sim
