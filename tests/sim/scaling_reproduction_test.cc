/// \file scaling_reproduction_test.cc
/// The CI shape gate for the paper's headline claim (DESIGN.md §15):
/// strong scaling of the Burns–Christon 2-level RMCRT benchmark, 512 ->
/// 16,384 GPUs, patch sizes 16^3/32^3/64^3. The suite asserts the
/// paper's qualitative claims twice — against the committed
/// BENCH_scaling.json artifact, and against a fresh in-process smoke
/// study collected through the same calibration chain (committed kernel
/// baseline -> machine model -> event sim) — so a model or calibration
/// regression cannot hide behind a stale artifact, and a corrupted
/// artifact cannot hide behind a healthy model.
///
/// Gated claims:
///  * coverage — the LARGE sweep spans 512..16,384 GPUs; each patch-size
///    curve ends where its decomposition runs out of patches (16^3
///    reaches 16,384; 64^3 stops at 512);
///  * crossover — the largest feasible patch size wins at every GPU
///    count (paper Section V observation 1);
///  * rolloff — every series is monotone decreasing in time, and the
///    per-doubling Eq. 3 efficiency of the 16^3 curve degrades
///    monotonically toward the tail (scaling rolls off as patches/GPU
///    approaches 1);
///  * Eq. 3 headlines — the Titan-default model lands on the paper's
///    96% (4096->8192) and 89% (4096->16,384) within ±6 points; the
///    kernel-calibrated model scales at least as well (slower device =>
///    kernel-dominated => flatter curves) and never exceeds 1;
///  * Table I — local communication time falls as the fixed problem
///    spreads, and the wait-free pool's speedup stays inside the paper's
///    2.27–4.40x regime.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/calibration.h"
#include "sim/scaling_report.h"
#include "util/mini_json.h"

namespace rmcrt::sim {
namespace {

constexpr double kPaperEffTolerance = 0.06;  ///< ±6 points (Section V)

std::string repoPath(const std::string& rel) {
  return std::string(RMCRT_REPO_DIR) + "/" + rel;
}

// ---------------------------------------------------------------------------
// A model variant's sweep in one in-memory form, so the same shape checks
// run against the committed JSON and against a freshly collected report.

struct Pt {
  int gpus = 0;
  std::int64_t patchesPerGpu = 0;
  double seconds = 0;
};

struct CommRow {
  int nodes = 0;
  double beforeS = 0, afterS = 0, speedup = 0;
};

struct ModelData {
  // study name ("medium"/"large") -> patch size -> points.
  std::map<std::string, std::map<int, std::vector<Pt>>> studies;
  std::vector<CommRow> comm;
  double eff4096To8192 = 0, eff4096To16384 = 0, eff512To16384 = 0;
};

ModelData fromJson(const minijson::Value& model) {
  ModelData d;
  for (const char* study : {"medium", "large"}) {
    for (const minijson::Value& se : model.at(study).at("series").array) {
      const int patch = static_cast<int>(se.at("patch_size").number);
      for (const minijson::Value& p : se.at("points").array) {
        d.studies[study][patch].push_back(
            Pt{static_cast<int>(p.at("gpus").number),
               static_cast<std::int64_t>(p.at("patches_per_gpu").number),
               p.at("seconds").number});
      }
    }
  }
  for (const minijson::Value& r : model.at("comm_study").array) {
    d.comm.push_back(CommRow{static_cast<int>(r.at("nodes").number),
                             r.at("before_s").number, r.at("after_s").number,
                             r.at("speedup").number});
  }
  const minijson::Value& eff = model.at("efficiency_large_p16");
  d.eff4096To8192 = eff.at("eff_4096_to_8192").number;
  d.eff4096To16384 = eff.at("eff_4096_to_16384").number;
  d.eff512To16384 = eff.at("eff_512_to_16384").number;
  return d;
}

ModelData fromResult(const ModelScalingResult& r) {
  ModelData d;
  const auto add = [&d](const char* study, const ProblemConfig& base,
                        const std::vector<StrongScalingStudy::Series>& ss) {
    for (const auto& se : ss) {
      ProblemConfig p = base;
      p.patchSize = se.patchSize;
      for (const ScalingPoint& pt : se.points)
        d.studies[study][se.patchSize].push_back(
            Pt{pt.gpus, p.patchesPerRank(pt.gpus), pt.breakdown.total});
    }
  };
  add("medium", mediumProblem(), r.medium);
  add("large", largeProblem(), r.large);
  for (const CommStudyRow& row : r.comm)
    d.comm.push_back(
        CommRow{row.nodes, row.beforeSeconds, row.afterSeconds, row.speedup});
  d.eff4096To8192 = r.effLarge16From4096To8192;
  d.eff4096To16384 = r.effLarge16From4096To16384;
  d.eff512To16384 = r.effLarge16From512To16384;
  return d;
}

const minijson::Value& committedDoc() {
  static const minijson::Value doc = [] {
    const std::string path = repoPath("BENCH_scaling.json");
    std::ifstream in(path);
    if (!in)
      throw std::runtime_error("committed scaling baseline missing: " + path);
    std::stringstream buf;
    buf << in.rdbuf();
    return minijson::parse(buf.str());
  }();
  return doc;
}

ModelData committedModel(const std::string& name) {
  return fromJson(committedDoc().at("models").at(name));
}

/// The fresh smoke study: the same calibration chain CI's bench smoke
/// run uses, collected in-process. Deterministic — no timers.
const ScalingReport& freshReport() {
  static const ScalingReport report = collectScalingReport(
      calibrationFromBenchJson(repoPath("BENCH_rmcrt_kernel.json")));
  return report;
}

// ---------------------------------------------------------------------------
// Shape checks (shared between committed artifact and fresh study).

const std::vector<Pt>& seriesOf(const ModelData& d, const std::string& study,
                                int patch) {
  auto si = d.studies.find(study);
  if (si == d.studies.end())
    throw std::runtime_error("study missing: " + study);
  auto pi = si->second.find(patch);
  if (pi == si->second.end())
    throw std::runtime_error(study + " series missing patch " +
                             std::to_string(patch));
  return pi->second;
}

/// Eq. 3 between two points of one series.
double eff(const Pt& a, const Pt& b) {
  return (a.seconds * a.gpus) / (b.seconds * b.gpus);
}

void checkCoverage(const ModelData& d, const std::string& label) {
  SCOPED_TRACE(label);
  // LARGE (Fig. 3): the paper's 512 -> 16,384 sweep. Each curve ends at
  // its own decomposition limit: 512^3/16^3 = 32768 patches (>= 16384
  // GPUs), /32^3 = 4096, /64^3 = 512.
  const std::map<int, int> largeEnds{{16, 16384}, {32, 4096}, {64, 512}};
  for (const auto& [patch, endGpus] : largeEnds) {
    const auto& s = seriesOf(d, "large", patch);
    ASSERT_FALSE(s.empty());
    EXPECT_EQ(s.back().gpus, endGpus) << "large " << patch << "^3";
    EXPECT_GE(s.back().patchesPerGpu, 1);
  }
  for (int g : {512, 1024, 2048, 4096, 8192, 16384}) {
    const auto& s = seriesOf(d, "large", 16);
    EXPECT_TRUE(std::any_of(s.begin(), s.end(),
                            [g](const Pt& p) { return p.gpus == g; }))
        << "large 16^3 missing " << g << " GPUs";
  }
  // MEDIUM (Fig. 2): 256^3/16^3 = 4096, /32^3 = 512, /64^3 = 64.
  const std::map<int, int> mediumEnds{{16, 4096}, {32, 512}, {64, 64}};
  for (const auto& [patch, endGpus] : mediumEnds)
    EXPECT_EQ(seriesOf(d, "medium", patch).back().gpus, endGpus)
        << "medium " << patch << "^3";
  // "The 16^3 curve extends furthest."
  for (const char* study : {"medium", "large"}) {
    EXPECT_GT(seriesOf(d, study, 16).back().gpus,
              seriesOf(d, study, 32).back().gpus);
    EXPECT_GT(seriesOf(d, study, 32).back().gpus,
              seriesOf(d, study, 64).back().gpus);
  }
}

void checkCrossover(const ModelData& d, const std::string& label) {
  SCOPED_TRACE(label);
  // Paper Section V observation 1: larger patches give more work per
  // kernel, so the largest patch size still feasible wins at every GPU
  // count — 64^3 while it lasts, then 32^3, then 16^3 alone.
  for (const auto& [study, byPatch] : d.studies) {
    std::map<int, std::map<int, double>> byGpus;  // gpus -> patch -> s
    for (const auto& [patch, pts] : byPatch)
      for (const Pt& p : pts) byGpus[p.gpus][patch] = p.seconds;
    for (const auto& [gpus, entries] : byGpus) {
      const int largestFeasible = entries.rbegin()->first;
      for (const auto& [patch, seconds] : entries) {
        if (patch == largestFeasible) continue;
        EXPECT_LT(entries.at(largestFeasible), seconds)
            << study << " @" << gpus << " GPUs: " << largestFeasible
            << "^3 must beat " << patch << "^3";
      }
    }
  }
}

void checkRolloff(const ModelData& d, const std::string& label,
                  bool titanStrict) {
  SCOPED_TRACE(label);
  // Time falls monotonically while over-decomposed (every committed
  // point has >= 1 patch per GPU)...
  for (const auto& [study, byPatch] : d.studies) {
    for (const auto& [patch, pts] : byPatch)
      for (std::size_t i = 1; i < pts.size(); ++i)
        EXPECT_LT(pts[i].seconds, pts[i - 1].seconds)
            << study << " " << patch << "^3 @" << pts[i].gpus;
  }
  // ...but the per-doubling Eq. 3 efficiency of the 16^3 curves degrades
  // monotonically toward the tail: scaling rolls off as patches/GPU
  // approaches 1, exactly where the paper's figures flatten.
  for (const char* study : {"medium", "large"}) {
    const auto& s = seriesOf(d, study, 16);
    double prev = 1.0 + 1e-9;
    for (std::size_t i = 1; i < s.size(); ++i) {
      const double e = eff(s[i - 1], s[i]);
      EXPECT_LE(e, prev + 1e-9)
          << study << " 16^3 doubling to " << s[i].gpus
          << ": rolloff must not recover";
      EXPECT_LE(e, 1.0 + 1e-9);
      prev = e;
    }
    EXPECT_LT(eff(s[s.size() - 2], s.back()), eff(s[0], s[1]))
        << study << ": the last doubling must be the least efficient";
  }
  if (titanStrict) {
    // On the Titan-default model the tail rolloff is pronounced: the
    // final 8192->16384 doubling of the LARGE 16^3 curve (2 patches/GPU)
    // drops below the paper's 96% mid-sweep efficiency.
    const auto& s = seriesOf(d, "large", 16);
    EXPECT_LT(eff(s[s.size() - 2], s.back()), 0.96);
    EXPECT_EQ(s.back().patchesPerGpu, 2);
  }
}

void checkEfficiency(const ModelData& d, const std::string& label,
                     bool titanStrict) {
  SCOPED_TRACE(label);
  EXPECT_GT(d.eff4096To8192, d.eff4096To16384);
  EXPECT_LE(d.eff4096To8192, 1.0 + 1e-9);
  EXPECT_LE(d.eff4096To16384, 1.0 + 1e-9);
  // Whole-sweep efficiency (512 -> 16,384, 32x more GPUs) stays high —
  // the strong-scaling claim survives the full sweep in either model.
  EXPECT_GT(d.eff512To16384, 0.85);
  if (titanStrict) {
    EXPECT_NEAR(d.eff4096To8192, PaperReference::eff4096To8192,
                kPaperEffTolerance);
    EXPECT_NEAR(d.eff4096To16384, PaperReference::eff4096To16384,
                kPaperEffTolerance);
  } else {
    // The kernel-calibrated device is slower than a K20X, so the kernel
    // dominates and scaling can only flatten relative to Titan defaults.
    EXPECT_GE(d.eff4096To8192, PaperReference::eff4096To8192 - 0.01);
    EXPECT_GE(d.eff4096To16384, PaperReference::eff4096To16384 - 0.01);
  }
}

void checkCommStudy(const ModelData& d, const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_GE(d.comm.size(), 2u);
  EXPECT_EQ(d.comm.front().nodes, 512);
  EXPECT_EQ(d.comm.back().nodes, 16384);
  for (std::size_t i = 0; i < d.comm.size(); ++i) {
    const CommRow& r = d.comm[i];
    EXPECT_GT(r.beforeS, r.afterS) << r.nodes;
    // Paper Table I: 2.27x .. 4.40x across 512..16k nodes; the model
    // must stay in that regime (with headroom for calibration drift).
    EXPECT_GT(r.speedup, 2.0) << r.nodes;
    EXPECT_LT(r.speedup, 5.0) << r.nodes;
    if (i > 0) {
      // Fig. 1 shape: both curves fall as the fixed problem spreads.
      EXPECT_LT(r.beforeS, d.comm[i - 1].beforeS) << r.nodes;
      EXPECT_LT(r.afterS, d.comm[i - 1].afterS) << r.nodes;
    }
  }
  // Order-of-magnitude agreement with Table I's first row (6.25 s).
  EXPECT_GT(d.comm.front().beforeS, 1.0);
  EXPECT_LT(d.comm.front().beforeS, 20.0);
}

// ---------------------------------------------------------------------------
// Committed-artifact gates.

TEST(ScalingReproduction, CommittedBaselineParsesWithSchema) {
  const minijson::Value& doc = committedDoc();
  EXPECT_EQ(doc.at("benchmark").str, "rmcrt_scaling_study");
  ASSERT_TRUE(doc.has("models"));
  for (const char* model : {"titan_default", "calibrated"}) {
    const minijson::Value& m = doc.at("models").at(model);
    for (const char* key :
         {"gpu_mseg_per_s", "medium", "large", "comm_study",
          "efficiency_large_p16"})
      EXPECT_TRUE(m.has(key)) << model << "." << key;
  }
  const minijson::Value& cal = doc.at("calibration");
  for (const char* key :
       {"source", "detail", "host_mseg_per_s", "host_to_gpu_scale"})
    EXPECT_TRUE(cal.has(key)) << "calibration." << key;
  // The committed artifact must be traceable to the committed kernel
  // baseline, not to a live host measurement or the fallback constants.
  EXPECT_EQ(cal.at("source").str, "bench_json");
  EXPECT_GT(cal.at("host_mseg_per_s").number, 0.0);
}

TEST(ScalingReproduction, CommittedSweepCoversPaperRange) {
  checkCoverage(committedModel("titan_default"), "titan_default");
  checkCoverage(committedModel("calibrated"), "calibrated");
}

TEST(ScalingReproduction, CommittedLargestFeasiblePatchWins) {
  checkCrossover(committedModel("titan_default"), "titan_default");
  checkCrossover(committedModel("calibrated"), "calibrated");
}

TEST(ScalingReproduction, CommittedScalingRollsOffAtTheTail) {
  checkRolloff(committedModel("titan_default"), "titan_default",
               /*titanStrict=*/true);
  checkRolloff(committedModel("calibrated"), "calibrated",
               /*titanStrict=*/false);
}

TEST(ScalingReproduction, CommittedEq3EfficiencyBounds) {
  checkEfficiency(committedModel("titan_default"), "titan_default",
                  /*titanStrict=*/true);
  checkEfficiency(committedModel("calibrated"), "calibrated",
                  /*titanStrict=*/false);
}

TEST(ScalingReproduction, CommittedTableICommTrends) {
  checkCommStudy(committedModel("titan_default"), "titan_default");
  checkCommStudy(committedModel("calibrated"), "calibrated");
}

// ---------------------------------------------------------------------------
// Fresh-smoke-run gates: the same claims must hold for a study collected
// right now through the calibration chain, and the fresh numbers must
// agree with the committed artifact (both are deterministic functions of
// the committed kernel baseline).

TEST(ScalingReproduction, FreshSmokeStudyReproducesShape) {
  const ScalingReport& r = freshReport();
  EXPECT_EQ(r.calibration.source, CalibrationSource::BenchJson)
      << r.calibration.detail;
  for (const auto* m : {&r.titanDefault, &r.calibrated}) {
    const bool strict = m->name == "titan_default";
    const ModelData d = fromResult(*m);
    checkCoverage(d, "fresh " + m->name);
    checkCrossover(d, "fresh " + m->name);
    checkRolloff(d, "fresh " + m->name, strict);
    checkEfficiency(d, "fresh " + m->name, strict);
    checkCommStudy(d, "fresh " + m->name);
  }
}

TEST(ScalingReproduction, FreshSmokeStudyMatchesCommittedArtifact) {
  for (const char* name : {"titan_default", "calibrated"}) {
    SCOPED_TRACE(name);
    const ModelData fresh = fromResult(std::string(name) == "titan_default"
                                           ? freshReport().titanDefault
                                           : freshReport().calibrated);
    const ModelData committed = committedModel(name);
    ASSERT_EQ(fresh.studies.size(), committed.studies.size());
    for (const auto& [study, byPatch] : committed.studies) {
      for (const auto& [patch, pts] : byPatch) {
        const auto& fpts = seriesOf(fresh, study, patch);
        ASSERT_EQ(fpts.size(), pts.size()) << study << " " << patch;
        for (std::size_t i = 0; i < pts.size(); ++i) {
          EXPECT_EQ(fpts[i].gpus, pts[i].gpus);
          // The committed JSON rounds to 6 decimals; beyond that the two
          // sides are the same deterministic arithmetic.
          EXPECT_NEAR(fpts[i].seconds, pts[i].seconds,
                      1e-5 + 1e-5 * pts[i].seconds)
              << study << " " << patch << "^3 @" << pts[i].gpus;
        }
      }
    }
    EXPECT_NEAR(fresh.eff4096To8192, committed.eff4096To8192, 1e-5);
    EXPECT_NEAR(fresh.eff4096To16384, committed.eff4096To16384, 1e-5);
  }
}

// ---------------------------------------------------------------------------
// Emitter schema and fallback determinism.

TEST(ScalingReproduction, EmittedJsonParsesWithSchema) {
  // Schema-by-parsing: the exact bytes bench_scaling_{medium,large}
  // write must round-trip through the JSON grammar with every key the
  // gates above consume.
  std::stringstream ss;
  writeScalingReportJson(ss, freshReport(), /*smoke=*/true);
  minijson::Value doc;
  ASSERT_NO_THROW(doc = minijson::parse(ss.str()));
  EXPECT_TRUE(doc.at("smoke").boolean);
  for (const char* model : {"titan_default", "calibrated"}) {
    const ModelData d = fromJson(doc.at("models").at(model));
    EXPECT_EQ(d.studies.at("large").at(16).back().gpus, 16384);
    EXPECT_EQ(d.comm.size(), 6u);
  }
  const minijson::Value& paper = doc.at("paper");
  EXPECT_DOUBLE_EQ(paper.at("eff_4096_to_8192").number, 0.96);
  EXPECT_DOUBLE_EQ(paper.at("eff_4096_to_16384").number, 0.89);
}

TEST(ScalingReproduction, FallbackCalibrationKeepsTheShape) {
  // A host without any committed baseline still produces a study with
  // the paper's shape — the gate never depends on a file that may be
  // absent in a fresh checkout of only the sources.
  const Calibration fb =
      calibrationFromBenchJson("/nonexistent/kernel.json");
  EXPECT_EQ(fb.source, CalibrationSource::Fallback);
  const ScalingReport r = collectScalingReport(fb);
  const ModelData d = fromResult(r.calibrated);
  checkCoverage(d, "fallback calibrated");
  checkCrossover(d, "fallback calibrated");
  checkRolloff(d, "fallback calibrated", /*titanStrict=*/false);
}

}  // namespace
}  // namespace rmcrt::sim
