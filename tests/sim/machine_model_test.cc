/// \file machine_model_test.cc
/// Golden-value tests for the two analytic curves in MachineModel that
/// the strong-scaling shape gate leans on: the patch-occupancy
/// saturation curve (paper Section V observation 1) and the torus
/// contention factor behind effectiveNetBandwidth (DESIGN.md §7). All
/// expectations are hand-derived from the closed forms so a silent
/// constant change fails loudly.

#include <gtest/gtest.h>

#include "sim/machine_model.h"

namespace rmcrt::sim {
namespace {

TEST(MachineModelTest, TitanDefaultsMatchPaperFootnote) {
  const MachineModel m = titan();
  EXPECT_EQ(m.gpuMemoryBytes, 6ull << 30);         // K20X: 6 GB GDDR5
  EXPECT_DOUBLE_EQ(m.netLatencySeconds, 1.4e-6);   // Gemini
  EXPECT_EQ(m.commThreads, 16);                    // 16 cores/node
  // Sustained injection bandwidth must stay below the quoted 20 GB/s
  // peak — the model encodes achievable, not datasheet, bandwidth.
  EXPECT_LE(m.netBandwidth, 20.0e9);
  EXPECT_GT(m.netBandwidth, 0.0);
}

TEST(MachineModelTest, OccupancyGoldenValues) {
  const MachineModel m = titan();
  // eff = n / (n + 20e3), hand-evaluated at the paper's patch sizes:
  //   16^3 = 4096   -> 4096/24096   = 0.16999...
  //   32^3 = 32768  -> 32768/52768  = 0.62098...
  //   64^3 = 262144 -> 262144/282144 = 0.92911...
  EXPECT_DOUBLE_EQ(m.occupancy(4096.0), 4096.0 / 24096.0);
  EXPECT_DOUBLE_EQ(m.occupancy(32768.0), 32768.0 / 52768.0);
  EXPECT_DOUBLE_EQ(m.occupancy(262144.0), 262144.0 / 282144.0);
  // The header's documented rounded values.
  EXPECT_NEAR(m.occupancy(4096.0), 0.17, 5e-3);
  EXPECT_NEAR(m.occupancy(32768.0), 0.62, 5e-3);
  EXPECT_NEAR(m.occupancy(262144.0), 0.93, 5e-3);
  // Exactly half occupancy at halfOccupancyCells, saturating toward 1.
  EXPECT_DOUBLE_EQ(m.occupancy(m.halfOccupancyCells), 0.5);
  EXPECT_LT(m.occupancy(1.0e9), 1.0);
  EXPECT_GT(m.occupancy(1.0e9), 0.99);
}

TEST(MachineModelTest, OccupancyMonotoneInPatchSize) {
  const MachineModel m = titan();
  double prev = 0.0;
  for (int edge : {8, 16, 32, 64, 128}) {
    const double cells = static_cast<double>(edge) * edge * edge;
    const double occ = m.occupancy(cells);
    EXPECT_GT(occ, prev) << edge;
    EXPECT_GT(occ, 0.0);
    EXPECT_LT(occ, 1.0);
    prev = occ;
  }
}

TEST(MachineModelTest, TorusContentionGoldenValues) {
  const MachineModel m = titan();
  // bw_eff = netBandwidth / (1 + P/16384), hand-evaluated:
  EXPECT_DOUBLE_EQ(m.effectiveNetBandwidth(0), m.netBandwidth);
  EXPECT_DOUBLE_EQ(m.effectiveNetBandwidth(4096), m.netBandwidth / 1.25);
  EXPECT_DOUBLE_EQ(m.effectiveNetBandwidth(8192), m.netBandwidth / 1.5);
  // At the full 16,384-node sweep endpoint contention exactly halves
  // the per-node bandwidth — the knob behind the large-sweep rolloff.
  EXPECT_DOUBLE_EQ(m.effectiveNetBandwidth(16384), m.netBandwidth / 2.0);
}

TEST(MachineModelTest, TorusContentionMonotoneDecreasing) {
  const MachineModel m = titan();
  double prev = m.effectiveNetBandwidth(1);
  for (int nodes = 2; nodes <= 16384; nodes *= 2) {
    const double bw = m.effectiveNetBandwidth(nodes);
    EXPECT_LT(bw, prev) << nodes;
    EXPECT_GT(bw, 0.0);
    prev = bw;
  }
}

TEST(MachineModelTest, ContentionScaleIsTunable) {
  // A machine with a stiffer interconnect (larger contention scale)
  // must never see less bandwidth at the same node count.
  MachineModel soft = titan();
  MachineModel stiff = titan();
  stiff.torusContentionScale = 2.0 * soft.torusContentionScale;
  for (int nodes : {512, 4096, 16384})
    EXPECT_GT(stiff.effectiveNetBandwidth(nodes),
              soft.effectiveNetBandwidth(nodes))
        << nodes;
}

}  // namespace
}  // namespace rmcrt::sim
