#include "sim/csv_export.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace rmcrt::sim {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  std::stringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

TEST(CsvExport, ScalingStudyHeaderAndRows) {
  StrongScalingStudy study;
  study.title = "test";
  study.baseProblem = mediumProblem();
  study.patchSizes = {16, 32};
  study.gpuCounts = {64, 128};
  const std::string path = "/tmp/rmcrt_csv_test.csv";
  ASSERT_TRUE(writeScalingCsv(path, study, titan()));
  const std::string content = slurp(path);
  EXPECT_NE(content.find("gpus,p16,p32"), std::string::npos);
  // Two data rows after the header.
  int lines = 0;
  for (char c : content)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 3);
  std::remove(path.c_str());
}

TEST(CsvExport, InfeasiblePointsAreEmptyCells) {
  StrongScalingStudy study;
  study.baseProblem = mediumProblem();
  study.patchSizes = {64};  // only 64 patches in MEDIUM
  study.gpuCounts = {64, 128};
  const std::string path = "/tmp/rmcrt_csv_test2.csv";
  ASSERT_TRUE(writeScalingCsv(path, study, titan()));
  const std::string content = slurp(path);
  // Row "128," ends with the empty cell.
  EXPECT_NE(content.find("128,\n"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CsvExport, CommStudyRows) {
  const std::string path = "/tmp/rmcrt_csv_test3.csv";
  ASSERT_TRUE(writeCommStudyCsv(path, commImprovementStudy(titan())));
  const std::string content = slurp(path);
  EXPECT_NE(content.find("nodes,before_s,after_s,speedup"),
            std::string::npos);
  EXPECT_NE(content.find("512,"), std::string::npos);
  EXPECT_NE(content.find("16384,"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CsvExport, FailsOnBadPath) {
  StrongScalingStudy study;
  study.baseProblem = mediumProblem();
  study.patchSizes = {32};
  study.gpuCounts = {64};
  EXPECT_FALSE(
      writeScalingCsv("/nonexistent-dir/x.csv", study, titan()));
  EXPECT_FALSE(writeCommStudyCsv("/nonexistent-dir/y.csv", {}));
}

}  // namespace
}  // namespace rmcrt::sim
