#include "sim/calibration.h"

#include <gtest/gtest.h>

#include <fstream>
#include <string>

namespace rmcrt::sim {
namespace {

/// Writes \p text as a temp baseline file and returns its path.
std::string writeBaseline(const std::string& name, const std::string& text) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path);
  out << text;
  return path;
}

TEST(Calibration, KernelMeasurementIsPositiveAndPlausible) {
  const double segPerSec = measureKernelSegmentsPerSecond(16, 2);
  EXPECT_GT(segPerSec, 1e5);   // even a slow host marches >100k cells/s
  EXPECT_LT(segPerSec, 1e11);  // and no host marches 100G cells/s
}

TEST(Calibration, ContainerCostsMeasured) {
  double wf = 0, locked = 0;
  measureContainerCosts(wf, locked, /*threads=*/2, /*messages=*/4000);
  EXPECT_GT(wf, 0.0);
  EXPECT_GT(locked, 0.0);
  EXPECT_LT(wf, 1e-3);  // < 1 ms per message
  EXPECT_LT(locked, 1e-2);
}

TEST(Calibration, CalibrateAppliesMeasurements) {
  Calibration c;
  c.hostSegmentsPerSecond = 1.0e8;
  c.waitFreePerMessage = 2.0e-6;
  c.lockedPerMessage = 5.0e-6;
  const MachineModel m = calibrate(titan(), c, /*hostToGpuScale=*/10.0);
  EXPECT_DOUBLE_EQ(m.gpuSegmentsPerSecond, 1.0e9);
  EXPECT_DOUBLE_EQ(m.perMessageOverheadWaitFree, 2.0e-6);
  EXPECT_DOUBLE_EQ(m.perMessageOverheadLocked, 5.0e-6);
}

TEST(Calibration, ZeroMeasurementsKeepDefaults) {
  const MachineModel base = titan();
  const MachineModel m = calibrate(base, Calibration{});
  EXPECT_DOUBLE_EQ(m.gpuSegmentsPerSecond, base.gpuSegmentsPerSecond);
  EXPECT_DOUBLE_EQ(m.perMessageOverheadWaitFree,
                   base.perMessageOverheadWaitFree);
}

TEST(Calibration, BenchJsonPrefersSimdThroughput) {
  const std::string path = writeBaseline(
      "cal_simd.json",
      R"({"simd_microbench": {"supported": true, "isa": "avx512",
           "grid_n": 128, "simd_mseg_per_s": 50.25,
           "scalar_mseg_per_s": 10.0},
          "sweep": [{"threads": 1, "mseg_per_s": 40.0}]})");
  const Calibration c = calibrationFromBenchJson(path);
  EXPECT_EQ(c.source, CalibrationSource::BenchJson);
  EXPECT_DOUBLE_EQ(c.hostSegmentsPerSecond, 50.25e6);
  EXPECT_NE(c.detail.find("simd_microbench.simd_mseg_per_s"),
            std::string::npos)
      << c.detail;
  EXPECT_NE(c.detail.find("avx512"), std::string::npos) << c.detail;
  // Container costs are not in the baseline; calibrate() must keep the
  // machine defaults for them.
  EXPECT_DOUBLE_EQ(c.waitFreePerMessage, 0.0);
  const MachineModel m = calibrate(titan(), c);
  EXPECT_DOUBLE_EQ(m.perMessageOverheadWaitFree,
                   titan().perMessageOverheadWaitFree);
  EXPECT_DOUBLE_EQ(m.gpuSegmentsPerSecond, 50.25e6 * 12.0);
}

TEST(Calibration, BenchJsonFallsBackToScalarWhenSimdUnsupported) {
  const std::string path = writeBaseline(
      "cal_scalar.json",
      R"({"simd_microbench": {"supported": false, "grid_n": 64,
           "scalar_mseg_per_s": 10.5}})");
  const Calibration c = calibrationFromBenchJson(path);
  EXPECT_EQ(c.source, CalibrationSource::BenchJson);
  EXPECT_DOUBLE_EQ(c.hostSegmentsPerSecond, 10.5e6);
  EXPECT_NE(c.detail.find("scalar_mseg_per_s"), std::string::npos)
      << c.detail;
}

TEST(Calibration, BenchJsonReadsSweepFromPreSimdBaselines) {
  // Baselines committed before the SIMD microbench existed only carry
  // the thread-sweep; the serial sample is the calibration quantity.
  const std::string path = writeBaseline(
      "cal_sweep.json",
      R"({"sweep": [{"threads": 4, "mseg_per_s": 120.0},
                    {"threads": 1, "mseg_per_s": 41.83}]})");
  const Calibration c = calibrationFromBenchJson(path);
  EXPECT_EQ(c.source, CalibrationSource::BenchJson);
  EXPECT_DOUBLE_EQ(c.hostSegmentsPerSecond, 41.83e6);
  EXPECT_NE(c.detail.find("sweep[threads==1]"), std::string::npos)
      << c.detail;
}

TEST(Calibration, MissingFileYieldsDeterministicFallback) {
  const Calibration a = calibrationFromBenchJson("/nonexistent/b.json");
  const Calibration b = calibrationFromBenchJson("/nonexistent/b.json");
  EXPECT_EQ(a.source, CalibrationSource::Fallback);
  EXPECT_DOUBLE_EQ(a.hostSegmentsPerSecond, 36.0e6);
  EXPECT_DOUBLE_EQ(a.hostSegmentsPerSecond, b.hostSegmentsPerSecond);
  EXPECT_EQ(a.detail, b.detail);
  EXPECT_NE(a.detail.find("cannot open"), std::string::npos) << a.detail;
}

TEST(Calibration, MalformedOrKeylessJsonYieldsFallback) {
  const Calibration bad =
      calibrationFromBenchJson(writeBaseline("cal_bad.json", "{not json"));
  EXPECT_EQ(bad.source, CalibrationSource::Fallback);
  EXPECT_DOUBLE_EQ(bad.hostSegmentsPerSecond, 36.0e6);

  const Calibration keyless = calibrationFromBenchJson(
      writeBaseline("cal_keyless.json", R"({"benchmark": "other"})"));
  EXPECT_EQ(keyless.source, CalibrationSource::Fallback);
  EXPECT_NE(keyless.detail.find("no usable mseg_per_s"), std::string::npos)
      << keyless.detail;
}

TEST(Calibration, CommittedKernelBaselineLoads) {
  // The repo's own committed baseline must calibrate, and from the SIMD
  // key — this is the exact chain bench_scaling_* and the scaling shape
  // gate run on.
  const Calibration c = calibrationFromBenchJson(
      std::string(RMCRT_REPO_DIR) + "/BENCH_rmcrt_kernel.json");
  EXPECT_EQ(c.source, CalibrationSource::BenchJson);
  EXPECT_GT(c.hostSegmentsPerSecond, 1e6);
  EXPECT_LT(c.hostSegmentsPerSecond, 1e11);
  EXPECT_EQ(calibrationSourceName(c.source), std::string("bench_json"));
}

TEST(Calibration, SourceNamesAreStable) {
  // check_bench_regression.py and the shape gate match on these strings.
  EXPECT_STREQ(calibrationSourceName(CalibrationSource::Measured),
               "measured");
  EXPECT_STREQ(calibrationSourceName(CalibrationSource::BenchJson),
               "bench_json");
  EXPECT_STREQ(calibrationSourceName(CalibrationSource::Fallback),
               "fallback");
}

TEST(Calibration, CalibratedModelStillScales) {
  // The scaling SHAPE must be robust to the calibrated throughput:
  // monotone decrease while over-decomposed, regardless of host speed.
  Calibration c;
  c.hostSegmentsPerSecond = measureKernelSegmentsPerSecond(16, 2);
  const MachineModel m = calibrate(titan(), c);
  ProblemConfig p = largeProblem(16);
  double prev = 1e99;
  for (int g : {512, 2048, 8192}) {
    const double t = simulateTimestep(m, p, g).total;
    EXPECT_LT(t, prev);
    prev = t;
  }
}

}  // namespace
}  // namespace rmcrt::sim
