#include "sim/calibration.h"

#include <gtest/gtest.h>

namespace rmcrt::sim {
namespace {

TEST(Calibration, KernelMeasurementIsPositiveAndPlausible) {
  const double segPerSec = measureKernelSegmentsPerSecond(16, 2);
  EXPECT_GT(segPerSec, 1e5);   // even a slow host marches >100k cells/s
  EXPECT_LT(segPerSec, 1e11);  // and no host marches 100G cells/s
}

TEST(Calibration, ContainerCostsMeasured) {
  double wf = 0, locked = 0;
  measureContainerCosts(wf, locked, /*threads=*/2, /*messages=*/4000);
  EXPECT_GT(wf, 0.0);
  EXPECT_GT(locked, 0.0);
  EXPECT_LT(wf, 1e-3);  // < 1 ms per message
  EXPECT_LT(locked, 1e-2);
}

TEST(Calibration, CalibrateAppliesMeasurements) {
  Calibration c;
  c.hostSegmentsPerSecond = 1.0e8;
  c.waitFreePerMessage = 2.0e-6;
  c.lockedPerMessage = 5.0e-6;
  const MachineModel m = calibrate(titan(), c, /*hostToGpuScale=*/10.0);
  EXPECT_DOUBLE_EQ(m.gpuSegmentsPerSecond, 1.0e9);
  EXPECT_DOUBLE_EQ(m.perMessageOverheadWaitFree, 2.0e-6);
  EXPECT_DOUBLE_EQ(m.perMessageOverheadLocked, 5.0e-6);
}

TEST(Calibration, ZeroMeasurementsKeepDefaults) {
  const MachineModel base = titan();
  const MachineModel m = calibrate(base, Calibration{});
  EXPECT_DOUBLE_EQ(m.gpuSegmentsPerSecond, base.gpuSegmentsPerSecond);
  EXPECT_DOUBLE_EQ(m.perMessageOverheadWaitFree,
                   base.perMessageOverheadWaitFree);
}

TEST(Calibration, CalibratedModelStillScales) {
  // The scaling SHAPE must be robust to the calibrated throughput:
  // monotone decrease while over-decomposed, regardless of host speed.
  Calibration c;
  c.hostSegmentsPerSecond = measureKernelSegmentsPerSecond(16, 2);
  const MachineModel m = calibrate(titan(), c);
  ProblemConfig p = largeProblem(16);
  double prev = 1e99;
  for (int g : {512, 2048, 8192}) {
    const double t = simulateTimestep(m, p, g).total;
    EXPECT_LT(t, prev);
    prev = t;
  }
}

}  // namespace
}  // namespace rmcrt::sim
