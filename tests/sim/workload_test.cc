#include "sim/workload.h"

#include <gtest/gtest.h>

namespace rmcrt::sim {
namespace {

TEST(ProblemConfig, MediumMatchesPaperCellCounts) {
  // Paper Section V: MEDIUM = 17.04M cells total (256^3 + 64^3).
  ProblemConfig p = mediumProblem();
  EXPECT_EQ(p.fineCells(), 16777216);
  EXPECT_EQ(p.coarseCells(), 262144);
  EXPECT_EQ(p.totalCells(), 17039360);
}

TEST(ProblemConfig, LargeMatchesPaperCellCounts) {
  // Paper Section V: LARGE = 136.31M cells total (512^3 + 128^3).
  ProblemConfig p = largeProblem();
  EXPECT_EQ(p.totalCells(), 136314880);
}

TEST(ProblemConfig, TableOnePatchCountMatchesPaper) {
  // Paper Section IV-B: "262k total mesh patches" for the 512^3 CPU
  // problem => fine patch edge 8.
  ProblemConfig p = largeProblem(8);
  EXPECT_EQ(p.numFinePatches(), 262144);
}

TEST(ProblemConfig, PatchCounts) {
  EXPECT_EQ(largeProblem(16).numFinePatches(), 32768);
  EXPECT_EQ(largeProblem(32).numFinePatches(), 4096);
  EXPECT_EQ(largeProblem(64).numFinePatches(), 512);
  EXPECT_EQ(mediumProblem(64).numFinePatches(), 64);
}

TEST(ProblemConfig, PatchesPerRankCeil) {
  ProblemConfig p = mediumProblem(32);  // 512 patches
  EXPECT_EQ(p.patchesPerRank(1), 512);
  EXPECT_EQ(p.patchesPerRank(512), 1);
  EXPECT_EQ(p.patchesPerRank(500), 2);  // straggler holds two
}

TEST(ProblemConfig, ReplicationVolumeIsCoarseLevelShare) {
  ProblemConfig p = largeProblem();
  const double full =
      p.coarseCells() * ProblemConfig::bytesPerPropertyCell;
  EXPECT_NEAR(p.replicationBytesPerRank(2), full / 2, 1.0);
  EXPECT_NEAR(p.replicationBytesPerRank(1024), full * (1023.0 / 1024), 1.0);
  // Single rank: nothing to replicate remotely... (share = 0).
  EXPECT_NEAR(p.replicationBytesPerRank(1), 0.0, 1.0);
}

TEST(ProblemConfig, SingleLevelWouldReplicateFineLevel) {
  // The point of the AMR scheme: coarse replication is RR^3 smaller than
  // replicating the fine level.
  ProblemConfig p = largeProblem();
  const double coarse = p.replicationBytesPerRank(1024);
  const double fineEquivalent =
      p.fineCells() * ProblemConfig::bytesPerPropertyCell *
      (1.0 - 1.0 / 1024.0);
  EXPECT_NEAR(fineEquivalent / coarse, 64.0, 0.1);  // RR^3 = 64
}

TEST(ProblemConfig, HaloVolumeShrinksPerRankWithScale) {
  ProblemConfig p = largeProblem(16);
  EXPECT_GT(p.haloBytesPerRank(128), p.haloBytesPerRank(1024));
  EXPECT_GT(p.haloBytesPerRank(1024), p.haloBytesPerRank(16384));
  EXPECT_EQ(p.haloBytesPerRank(1), 0.0);
}

TEST(ProblemConfig, DependencyRecordsDominatedByReplication) {
  // The paper's race/overhead hot spot: whole-level requirements create
  // (fine patch x coarse patch) records.
  ProblemConfig p = largeProblem(8);
  const double recs = p.dependencyRecordsPerRank(512);
  EXPECT_GT(recs, 1e6);  // ~512 patches x 4096 coarse patches
  EXPECT_LT(recs, 3e6);
  EXPECT_GT(recs, p.dependencyRecordsPerRank(16384));
}

TEST(ProblemConfig, DeviceBytesLevelDbVsPerPatch) {
  ProblemConfig p = largeProblem(32);
  const double shared = p.deviceBytesNeeded(4, false);
  const double copies = p.deviceBytesNeeded(4, true);
  // 4 tasks with private coarse copies hold ~4x the coarse bytes.
  const double coarseBytes =
      p.coarseCells() * ProblemConfig::bytesPerPropertyCell;
  EXPECT_NEAR(copies - shared, 3 * coarseBytes, 1.0);
  // LARGE coarse level = 128^3 * 20 B = 42 MB per copy.
  EXPECT_GT(coarseBytes, 40e6);
}

TEST(ProblemConfig, SegmentsScaleWithRaysAndCells) {
  ProblemConfig p = mediumProblem(32);
  const double base = p.segmentsPerRank(64);
  ProblemConfig doubleRays = p;
  doubleRays.raysPerCell = 200;
  EXPECT_NEAR(doubleRays.segmentsPerRank(64) / base, 2.0, 1e-9);
  EXPECT_NEAR(p.segmentsPerRank(128) / base, 0.5, 1e-9);
}

}  // namespace
}  // namespace rmcrt::sim
