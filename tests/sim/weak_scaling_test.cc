#include <gtest/gtest.h>

#include <cmath>

#include "sim/perf_model.h"

namespace rmcrt::sim {
namespace {

TEST(WeakScaling, AggregateVolumeGrowsQuadratically) {
  // Paper Section V: weak scaling is omitted because "radiation or any
  // globally coupled algorithm grows quadratically as O(N^2) ... with
  // respect to the problem size". Verify the model reproduces the
  // quadratic law: 4x the ranks -> ~16x the aggregate volume.
  ProblemConfig base = mediumProblem();
  const auto pts = weakScalingCommVolume(base, {64, 256, 1024});
  ASSERT_EQ(pts.size(), 3u);
  const double g1 =
      pts[1].aggregateSingleLevelBytes / pts[0].aggregateSingleLevelBytes;
  const double g2 =
      pts[2].aggregateSingleLevelBytes / pts[1].aggregateSingleLevelBytes;
  EXPECT_NEAR(g1, 16.0, 0.2);
  EXPECT_NEAR(g2, 16.0, 0.2);
  // Same law for the 2-level scheme (it reduces the constant, not the
  // exponent — which is why the paper pursues strong scaling instead).
  const double t1 =
      pts[1].aggregateTwoLevelBytes / pts[0].aggregateTwoLevelBytes;
  EXPECT_NEAR(t1, 16.0, 0.2);
}

TEST(WeakScaling, TwoLevelReducesConstantByRrCubed) {
  ProblemConfig base = mediumProblem();  // RR 4
  const auto pts = weakScalingCommVolume(base, {256});
  EXPECT_NEAR(
      pts[0].aggregateSingleLevelBytes / pts[0].aggregateTwoLevelBytes,
      64.0, 0.1);
}

TEST(WeakScaling, SingleRankHasNoTraffic) {
  const auto pts = weakScalingCommVolume(mediumProblem(), {1});
  EXPECT_DOUBLE_EQ(pts[0].aggregateSingleLevelBytes, 0.0);
  EXPECT_DOUBLE_EQ(pts[0].aggregateTwoLevelBytes, 0.0);
}

}  // namespace
}  // namespace rmcrt::sim
