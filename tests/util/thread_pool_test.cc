#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace rmcrt {
namespace {

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&count] { count.fetch_add(1); });
  pool.waitIdle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleWithNoTasks) {
  ThreadPool pool(2);
  pool.waitIdle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(8);
  const std::int64_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallelFor(0, n, [&](std::int64_t i) { hits[i].fetch_add(1); });
  for (std::int64_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallelFor(5, 5, [&](std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
}

TEST(ThreadPool, ParallelForSum) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> sum{0};
  pool.parallelFor(1, 1001, [&](std::int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 500500);
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> c{0};
  pool.submit([&c] { c.fetch_add(1); });
  pool.waitIdle();
  EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.shutdown();
  pool.shutdown();
  SUCCEED();
}

TEST(ThreadPool, NestedSubmitFromWorker) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&pool, &count] {
      pool.submit([&count] { count.fetch_add(1); });
    });
  }
  pool.waitIdle();
  EXPECT_EQ(count.load(), 10);
}

}  // namespace
}  // namespace rmcrt
