#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace rmcrt {
namespace {

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&count] { count.fetch_add(1); });
  pool.waitIdle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleWithNoTasks) {
  ThreadPool pool(2);
  pool.waitIdle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(8);
  const std::int64_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallelFor(0, n, [&](std::int64_t i) { hits[i].fetch_add(1); });
  for (std::int64_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallelFor(5, 5, [&](std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
}

TEST(ThreadPool, ParallelForSum) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> sum{0};
  pool.parallelFor(1, 1001, [&](std::int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 500500);
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> c{0};
  pool.submit([&c] { c.fetch_add(1); });
  pool.waitIdle();
  EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.shutdown();
  pool.shutdown();
  SUCCEED();
}

TEST(ThreadPool, NestedSubmitFromWorker) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&pool, &count] {
      pool.submit([&count] { count.fetch_add(1); });
    });
  }
  pool.waitIdle();
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  // Regression: submit() used to silently enqueue onto a dead pool — the
  // task never ran and waitIdle() on the lost work hung forever.
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
}

TEST(ThreadPool, ParallelForCompletionTracksLaunchedChunks) {
  // Regression: the completion check compared `done.fetch_add(1) >= 0`
  // (a tautology), so correctness leaned on every chunk notifying. Run
  // many small parallelFors to exercise the last-chunk-signals path.
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<std::int64_t> sum{0};
    pool.parallelFor(0, 37, [&](std::int64_t i) { sum.fetch_add(i); });
    ASSERT_EQ(sum.load(), 36 * 37 / 2);
  }
}

TEST(ThreadPool, NestedParallelForFromWorkerRunsInline) {
  // A worker calling parallelFor on its own pool must not deadlock
  // (blocking a worker slot on chunks only workers can run): the nested
  // loop degrades to inline serial execution on that worker.
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(64);
  std::atomic<bool> nestedRan{false};
  pool.parallelFor(0, 4, [&](std::int64_t outer) {
    EXPECT_TRUE(pool.onWorkerThread());
    pool.parallelFor(outer * 16, (outer + 1) * 16,
                     [&](std::int64_t i) { hits[i].fetch_add(1); });
    nestedRan.store(true);
  });
  EXPECT_TRUE(nestedRan.load());
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_FALSE(pool.onWorkerThread());
}

TEST(ThreadPool, ConcurrentParallelForFromManyCallers) {
  // Several external threads (rank schedulers) sharing one pool: each
  // parallelFor call must complete independently and exactly cover its
  // range.
  ThreadPool pool(4);
  constexpr int kCallers = 6, kN = 500;
  std::vector<std::vector<std::atomic<int>>> hits(kCallers);
  for (auto& h : hits) h = std::vector<std::atomic<int>>(kN);
  std::vector<std::thread> callers;
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      pool.parallelFor(0, kN,
                       [&, t](std::int64_t i) { hits[t][i].fetch_add(1); });
    });
  }
  for (auto& c : callers) c.join();
  for (int t = 0; t < kCallers; ++t)
    for (int i = 0; i < kN; ++i) ASSERT_EQ(hits[t][i].load(), 1);
}

}  // namespace
}  // namespace rmcrt
