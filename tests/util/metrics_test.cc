/// MetricsRegistry tests: counter monotonicity under concurrency (exact
/// totals), NaN-gauge omission, stable references across reset, timeline
/// snapshots, and JSON/CSV emission validated by parsing.

#include "util/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "mini_json.h"

namespace rmcrt {
namespace {

TEST(Metrics, CounterAccumulatesAndResets) {
  MetricsRegistry reg;
  MetricsCounter& c = reg.counter("events");
  c.add(5);
  c.increment();
  EXPECT_EQ(c.value(), 6u);
  EXPECT_EQ(reg.counter("events").value(), 6u) << "same name, same counter";
  reg.reset();
  EXPECT_EQ(c.value(), 0u) << "reset zeroes but keeps the reference valid";
  c.add(2);
  EXPECT_EQ(reg.counter("events").value(), 2u);
}

TEST(Metrics, GaugeHoldsPointInTimeValue) {
  MetricsRegistry reg;
  reg.setGauge("queue_depth", 7.5);
  reg.setGauge("queue_depth", 3.0);
  const auto snap = reg.snapshot();
  const auto* e = snap.find("queue_depth");
  ASSERT_NE(e, nullptr);
  EXPECT_DOUBLE_EQ(e->value, 3.0);
  EXPECT_FALSE(e->isCounter);
}

TEST(Metrics, NanGaugeOmittedFromSnapshot) {
  MetricsRegistry reg;
  reg.setGauge("empty_min", std::numeric_limits<double>::quiet_NaN());
  reg.setGauge("real", 1.0);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.find("empty_min"), nullptr)
      << "NaN means 'no data': must be omitted, not emitted as 0";
  ASSERT_NE(snap.find("real"), nullptr);

  // And the JSON emission stays parseable (no bare 'nan' token).
  reg.recordTimestep(0);
  std::ostringstream os;
  reg.writeJson(os);
  EXPECT_NO_THROW(minijson::parse(os.str())) << os.str();
  EXPECT_EQ(os.str().find("nan"), std::string::npos);
}

TEST(Metrics, SnapshotSortedByName) {
  MetricsRegistry reg;
  reg.addCounter("zebra", 1);
  reg.setGauge("apple", 2.0);
  reg.addCounter("mango", 3);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.entries.size(), 3u);
  for (std::size_t i = 1; i < snap.entries.size(); ++i)
    EXPECT_LT(snap.entries[i - 1].name, snap.entries[i].name);
}

TEST(Metrics, ConcurrentCountersKeepExactTotals) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      // Half the threads cache the reference (the hot-path idiom), half
      // go through the name lookup every time.
      if (t % 2 == 0) {
        MetricsCounter& c = reg.counter("shared");
        for (int i = 0; i < kIters; ++i) c.increment();
      } else {
        for (int i = 0; i < kIters; ++i) reg.addCounter("shared", 1);
      }
      reg.addCounter("per_thread." + std::to_string(t), kIters);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.counter("shared").value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(reg.counter("per_thread." + std::to_string(t)).value(),
              static_cast<std::uint64_t>(kIters));
}

TEST(Metrics, TimelineSnapshotsAreLabeledAndMonotone) {
  MetricsRegistry reg;
  for (int step = 0; step < 5; ++step) {
    reg.addCounter("work_items", static_cast<std::uint64_t>(step + 1));
    reg.setGauge("step_seconds", 0.1 * (step + 1));
    reg.recordTimestep(step);
  }
  const auto timeline = reg.timeline();
  ASSERT_EQ(timeline.size(), 5u);
  double prev = -1.0;
  for (int step = 0; step < 5; ++step) {
    EXPECT_EQ(timeline[step].timestep, step);
    const auto* c = timeline[step].find("work_items");
    ASSERT_NE(c, nullptr);
    EXPECT_TRUE(c->isCounter);
    EXPECT_GT(c->value, prev) << "counters must be monotone over time";
    prev = c->value;
  }
}

TEST(Metrics, WriteJsonParsesWithSnapshotsAndFinal) {
  MetricsRegistry reg;
  reg.addCounter("rays", 100);
  reg.recordTimestep(0);
  reg.addCounter("rays", 50);
  reg.recordTimestep(1);
  std::ostringstream os;
  reg.writeJson(os);

  minijson::Value doc;
  ASSERT_NO_THROW(doc = minijson::parse(os.str())) << os.str();
  const auto& snaps = doc.at("snapshots").array;
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_DOUBLE_EQ(snaps[0].at("timestep").number, 0.0);
  EXPECT_DOUBLE_EQ(snaps[0].at("metrics").at("rays").number, 100.0);
  EXPECT_DOUBLE_EQ(snaps[1].at("metrics").at("rays").number, 150.0);
  EXPECT_DOUBLE_EQ(doc.at("final").at("rays").number, 150.0);
}

TEST(Metrics, WriteCsvUnionsNamesWithEmptyCells) {
  MetricsRegistry reg;
  reg.addCounter("alpha", 1);
  reg.recordTimestep(0);
  reg.setGauge("beta", 2.5);  // appears only from the second row on
  reg.recordTimestep(1);
  std::ostringstream os;
  reg.writeCsv(os);

  std::vector<std::string> lines;
  std::istringstream is(os.str());
  for (std::string line; std::getline(is, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u);  // header + 2 timeline rows + final row
  EXPECT_EQ(lines[0], "timestep,alpha,beta");
  EXPECT_EQ(lines[1], "0,1,") << "metric absent at step 0 -> empty cell";
  EXPECT_EQ(lines[2], "1,1,2.5");
  EXPECT_EQ(lines[3].substr(0, 3), "-1,") << "final state rides as row -1";
}

TEST(Metrics, GlobalRegistryIsAProcessSingleton) {
  MetricsRegistry& a = MetricsRegistry::global();
  MetricsRegistry& b = MetricsRegistry::global();
  EXPECT_EQ(&a, &b);
}

TEST(Metrics, ViewPrefixesNamesIntoParentRegistry) {
  MetricsRegistry reg;
  MetricsView tenantA = reg.view("service.tenant.a");
  MetricsView tenantB = reg.view("service.tenant.b.");  // trailing dot ok
  tenantA.counter("submitted").add(3);
  tenantB.counter("submitted").add(5);
  tenantA.setGauge("p99_ms", 12.5);

  // Both land in the parent under their prefixes.
  EXPECT_EQ(reg.counter("service.tenant.a.submitted").value(), 3u);
  EXPECT_EQ(reg.counter("service.tenant.b.submitted").value(), 5u);
  EXPECT_DOUBLE_EQ(reg.gauge("service.tenant.a.p99_ms").value(), 12.5);
}

TEST(Metrics, ViewSnapshotIsOnlyTheTenantSlice) {
  MetricsRegistry reg;
  reg.counter("other.counter").add(7);
  MetricsView t = reg.view("service.tenant.x");
  t.counter("completed").add(2);
  t.counter("rejected").add(1);

  const auto slice = t.snapshot();
  ASSERT_EQ(slice.entries.size(), 2u);
  EXPECT_EQ(slice.entries[0].name, "service.tenant.x.completed");
  EXPECT_EQ(slice.entries[1].name, "service.tenant.x.rejected");
  EXPECT_EQ(slice.find("other.counter"), nullptr);
}

TEST(Metrics, ViewReferencesSurviveRegistryReset) {
  MetricsRegistry reg;
  MetricsView t = reg.view("tenant");
  MetricsCounter& c = t.counter("ops");
  c.add(4);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(1);
  EXPECT_EQ(reg.counter("tenant.ops").value(), 1u);
}

}  // namespace
}  // namespace rmcrt
