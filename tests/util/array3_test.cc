#include "util/array3.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mem/allocators.h"

namespace rmcrt {
namespace {

TEST(Array3, AllocateAndIndex) {
  CellRange w(IntVector(0, 0, 0), IntVector(4, 4, 4));
  Array3<double> a(w, 1.5);
  EXPECT_EQ(a.size(), 64);
  EXPECT_TRUE(a.allocated());
  for (const auto& c : w) EXPECT_DOUBLE_EQ(a[c], 1.5);
  a[IntVector(2, 3, 1)] = -7.0;
  EXPECT_DOUBLE_EQ(a.at(2, 3, 1), -7.0);
}

TEST(Array3, NegativeWindowIndices) {
  CellRange w(IntVector(-2, -2, -2), IntVector(2, 2, 2));
  Array3<int> a(w, 0);
  a[IntVector(-2, -2, -2)] = 1;
  a[IntVector(1, 1, 1)] = 2;
  EXPECT_EQ(a[IntVector(-2, -2, -2)], 1);
  EXPECT_EQ(a[IntVector(1, 1, 1)], 2);
}

TEST(Array3, XFastestLayout) {
  CellRange w(IntVector(0, 0, 0), IntVector(3, 2, 2));
  Array3<int> a(w, 0);
  EXPECT_EQ(a.offset(IntVector(1, 0, 0)) - a.offset(IntVector(0, 0, 0)), 1);
  EXPECT_EQ(a.offset(IntVector(0, 1, 0)) - a.offset(IntVector(0, 0, 0)), 3);
  EXPECT_EQ(a.offset(IntVector(0, 0, 1)) - a.offset(IntVector(0, 0, 0)), 6);
}

TEST(Array3, CopyAndMove) {
  CellRange w(IntVector(0, 0, 0), IntVector(2, 2, 2));
  Array3<double> a(w, 3.0);
  a[IntVector(1, 1, 1)] = 9.0;
  Array3<double> b = a;  // copy
  EXPECT_DOUBLE_EQ(b[IntVector(1, 1, 1)], 9.0);
  b[IntVector(1, 1, 1)] = 4.0;
  EXPECT_DOUBLE_EQ(a[IntVector(1, 1, 1)], 9.0);  // deep copy

  Array3<double> c = std::move(a);  // move steals storage
  EXPECT_DOUBLE_EQ(c[IntVector(1, 1, 1)], 9.0);
  EXPECT_FALSE(a.allocated());  // NOLINT(bugprone-use-after-move)
}

TEST(Array3, Fill) {
  Array3<float> a(CellRange(IntVector(0, 0, 0), IntVector(3, 3, 3)), 0.0f);
  a.fill(2.5f);
  for (const auto& c : a.window()) EXPECT_FLOAT_EQ(a[c], 2.5f);
}

TEST(Array3, CopyRegionBetweenOverlappingWindows) {
  // Simulates a ghost exchange: source patch [0,4)^3, destination window
  // [2,6)^3 with the overlap [2,4)^3 copied across.
  Array3<double> src(CellRange(IntVector(0, 0, 0), IntVector(4, 4, 4)), 0.0);
  for (const auto& c : src.window())
    src[c] = c.x() + 10.0 * c.y() + 100.0 * c.z();
  Array3<double> dst(CellRange(IntVector(2, 2, 2), IntVector(6, 6, 6)), -1.0);
  CellRange overlap = src.window().intersect(dst.window());
  dst.copyRegion(src, overlap);
  for (const auto& c : overlap)
    EXPECT_DOUBLE_EQ(dst[c], c.x() + 10.0 * c.y() + 100.0 * c.z());
  EXPECT_DOUBLE_EQ(dst[IntVector(5, 5, 5)], -1.0);  // untouched
}

TEST(Array3, PackUnpackRoundTrip) {
  Array3<double> src(CellRange(IntVector(-1, -1, -1), IntVector(3, 3, 3)),
                     0.0);
  for (const auto& c : src.window())
    src[c] = 1.0 * c.x() - 2.0 * c.y() + 3.5 * c.z();
  CellRange region(IntVector(0, -1, 0), IntVector(2, 2, 3));
  std::vector<double> buf(static_cast<std::size_t>(region.volume()));
  EXPECT_EQ(src.packRegion(region, buf.data()), region.volume());

  Array3<double> dst(src.window(), 0.0);
  EXPECT_EQ(dst.unpackRegion(region, buf.data()), region.volume());
  for (const auto& c : region) EXPECT_DOUBLE_EQ(dst[c], src[c]);
}

TEST(Array3, NonTrivialElementType) {
  Array3<std::string> a(CellRange(IntVector(0, 0, 0), IntVector(2, 2, 2)),
                        std::string("x"));
  a[IntVector(1, 0, 1)] = "hello";
  Array3<std::string> b = a;
  EXPECT_EQ(b[IntVector(1, 0, 1)], "hello");
  EXPECT_EQ(b[IntVector(0, 0, 0)], "x");
}

TEST(Array3, WithMmapAllocator) {
  using A = Array3<double, mem::MmapAllocator<double>>;
  const auto before = mem::MmapArena::stats().bytesMapped;
  {
    A a(CellRange(IntVector(0, 0, 0), IntVector(32, 32, 32)), 1.0);
    EXPECT_GT(mem::MmapArena::stats().bytesMapped, before);
    EXPECT_DOUBLE_EQ(a[IntVector(31, 31, 31)], 1.0);
  }
  EXPECT_EQ(mem::MmapArena::stats().bytesMapped, before);  // all unmapped
}

TEST(Array3, EmptyWindow) {
  Array3<double> a;
  EXPECT_FALSE(a.allocated());
  EXPECT_EQ(a.size(), 0);
}

}  // namespace
}  // namespace rmcrt
