#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rmcrt {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum sq dev = 32 -> 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, NegativeValues) {
  RunningStats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
}

TEST(RunningStats, EmptyMinMaxAreNaNNotZero) {
  // Regression: an empty accumulator used to report min()/max() == 0.0,
  // indistinguishable from a real measured zero. NaN is the registry-wide
  // "no data" convention (metrics emission omits NaN gauges).
  RunningStats s;
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
  s.add(4.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(ErrorNorms, RelativeL2) {
  std::vector<double> a{1.0, 2.0, 3.0};
  std::vector<double> b{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(relativeL2Error(a, b), 0.0);
  std::vector<double> c{2.0, 2.0, 3.0};
  EXPECT_NEAR(relativeL2Error(c, b), 1.0 / std::sqrt(14.0), 1e-12);
}

TEST(ErrorNorms, MaxAbs) {
  std::vector<double> a{1.0, 5.0, 3.0};
  std::vector<double> b{1.0, 2.0, 3.5};
  EXPECT_DOUBLE_EQ(maxAbsError(a, b), 3.0);
}

TEST(ErrorNorms, ZeroReferenceFallsBackToAbsolute) {
  std::vector<double> a{3.0, 4.0};
  std::vector<double> b{0.0, 0.0};
  EXPECT_DOUBLE_EQ(relativeL2Error(a, b), 5.0);
}

}  // namespace
}  // namespace rmcrt
