#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rmcrt {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum sq dev = 32 -> 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, NegativeValues) {
  RunningStats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
}

TEST(RunningStats, EmptyMinMaxAreNaNNotZero) {
  // Regression: an empty accumulator used to report min()/max() == 0.0,
  // indistinguishable from a real measured zero. NaN is the registry-wide
  // "no data" convention (metrics emission omits NaN gauges).
  RunningStats s;
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
  s.add(4.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(ErrorNorms, RelativeL2) {
  std::vector<double> a{1.0, 2.0, 3.0};
  std::vector<double> b{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(relativeL2Error(a, b), 0.0);
  std::vector<double> c{2.0, 2.0, 3.0};
  EXPECT_NEAR(relativeL2Error(c, b), 1.0 / std::sqrt(14.0), 1e-12);
}

TEST(ErrorNorms, MaxAbs) {
  std::vector<double> a{1.0, 5.0, 3.0};
  std::vector<double> b{1.0, 2.0, 3.5};
  EXPECT_DOUBLE_EQ(maxAbsError(a, b), 3.0);
}

TEST(ErrorNorms, ZeroReferenceFallsBackToAbsolute) {
  std::vector<double> a{3.0, 4.0};
  std::vector<double> b{0.0, 0.0};
  EXPECT_DOUBLE_EQ(relativeL2Error(a, b), 5.0);
}

// --- streaming quantiles (P²) ----------------------------------------------

/// Exact quantile of a sample by sort + linear interpolation — the
/// reference the streaming estimator is held against.
double exactQuantile(std::vector<double> v, double q) {
  std::sort(v.begin(), v.end());
  const double rank = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

/// Deterministic xorshift so the test never depends on libstdc++'s
/// distribution implementations.
double nextUniform(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return static_cast<double>(s >> 11) * 0x1.0p-53;
}

TEST(P2Quantile, EmptyIsNaN) {
  P2Quantile p(0.5);
  EXPECT_TRUE(std::isnan(p.value()));
  EXPECT_EQ(p.count(), 0);
}

TEST(P2Quantile, ExactUpToFiveSamples) {
  P2Quantile median(0.5);
  median.add(9.0);
  EXPECT_DOUBLE_EQ(median.value(), 9.0);
  median.add(1.0);
  EXPECT_DOUBLE_EQ(median.value(), 5.0);  // interpolated midpoint
  median.add(5.0);
  EXPECT_DOUBLE_EQ(median.value(), 5.0);
  median.add(3.0);
  median.add(7.0);
  EXPECT_DOUBLE_EQ(median.value(), 5.0);  // exact median of {1,3,5,7,9}
}

TEST(P2Quantile, MedianOfUniformStream) {
  P2Quantile p(0.5);
  std::vector<double> samples;
  std::uint64_t seed = 0x5eedu;
  for (int i = 0; i < 20000; ++i) {
    const double x = nextUniform(seed);
    samples.push_back(x);
    p.add(x);
  }
  EXPECT_NEAR(p.value(), exactQuantile(samples, 0.5), 0.02);
  EXPECT_EQ(p.count(), 20000);
}

TEST(P2Quantile, TailQuantileOfSkewedStream) {
  // Heavy-tailed (exp-transformed uniform) — the latency-like shape the
  // service's p99 SLO tracking sees. P² must land within a few percent
  // of the exact tail, not collapse to the median.
  P2Quantile p99(0.99);
  std::vector<double> samples;
  std::uint64_t seed = 0xabcdef12u;
  for (int i = 0; i < 50000; ++i) {
    const double u = nextUniform(seed);
    const double x = -std::log(1.0 - u);  // Exp(1)
    samples.push_back(x);
    p99.add(x);
  }
  const double exact = exactQuantile(samples, 0.99);  // ~= ln(100) ~ 4.6
  EXPECT_NEAR(p99.value(), exact, 0.15 * exact);
}

TEST(P2Quantile, EstimateStaysWithinObservedRange) {
  P2Quantile p(0.9);
  std::uint64_t seed = 77;
  double lo = std::numeric_limits<double>::infinity(), hi = -lo;
  for (int i = 0; i < 1000; ++i) {
    const double x = 100.0 * nextUniform(seed) - 50.0;
    lo = std::min(lo, x);
    hi = std::max(hi, x);
    p.add(x);
    EXPECT_GE(p.value(), lo);
    EXPECT_LE(p.value(), hi);
  }
}

TEST(RunningStats, QuantilesEmptyAreNaN) {
  RunningStats s;
  EXPECT_TRUE(std::isnan(s.p50()));
  EXPECT_TRUE(std::isnan(s.p99()));
}

TEST(RunningStats, QuantilesTrackTheStream) {
  RunningStats s;
  std::vector<double> samples;
  std::uint64_t seed = 0x1234u;
  for (int i = 0; i < 10000; ++i) {
    const double x = 5.0 + 3.0 * nextUniform(seed);
    samples.push_back(x);
    s.add(x);
  }
  EXPECT_NEAR(s.p50(), exactQuantile(samples, 0.5), 0.05);
  EXPECT_NEAR(s.p99(), exactQuantile(samples, 0.99), 0.05);
  // Welford moments are untouched by the quantile addition.
  EXPECT_NEAR(s.mean(), 6.5, 0.05);
}

}  // namespace
}  // namespace rmcrt
