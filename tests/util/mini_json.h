#pragma once

/// The parser moved to src/util/mini_json.h so sim/calibration.cc can
/// load the committed bench baselines with it; tests keep this include
/// path (every test target has src/ on its include path via rmcrt_util).

#include "util/mini_json.h"
