#include "util/range.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace rmcrt {
namespace {

TEST(CellRange, SizeAndVolume) {
  CellRange r(IntVector(0, 0, 0), IntVector(4, 3, 2));
  EXPECT_EQ(r.size(), IntVector(4, 3, 2));
  EXPECT_EQ(r.volume(), 24);
  EXPECT_FALSE(r.empty());
}

TEST(CellRange, EmptyWhenDegenerate) {
  CellRange r(IntVector(2, 0, 0), IntVector(2, 5, 5));
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.volume(), 0);
  CellRange inverted(IntVector(3, 0, 0), IntVector(1, 5, 5));
  EXPECT_TRUE(inverted.empty());
}

TEST(CellRange, ContainsPoint) {
  CellRange r(IntVector(-2, -2, -2), IntVector(2, 2, 2));
  EXPECT_TRUE(r.contains(IntVector(-2, -2, -2)));
  EXPECT_TRUE(r.contains(IntVector(1, 1, 1)));
  EXPECT_FALSE(r.contains(IntVector(2, 0, 0)));  // high is exclusive
  EXPECT_FALSE(r.contains(IntVector(-3, 0, 0)));
}

TEST(CellRange, ContainsRange) {
  CellRange outer(IntVector(0, 0, 0), IntVector(10, 10, 10));
  EXPECT_TRUE(outer.contains(CellRange(IntVector(2, 2, 2), IntVector(8, 8, 8))));
  EXPECT_TRUE(outer.contains(outer));
  EXPECT_FALSE(
      outer.contains(CellRange(IntVector(2, 2, 2), IntVector(11, 8, 8))));
  // Empty ranges are contained everywhere.
  EXPECT_TRUE(outer.contains(CellRange()));
}

TEST(CellRange, Intersect) {
  CellRange a(IntVector(0, 0, 0), IntVector(5, 5, 5));
  CellRange b(IntVector(3, 3, 3), IntVector(8, 8, 8));
  CellRange i = a.intersect(b);
  EXPECT_EQ(i, CellRange(IntVector(3, 3, 3), IntVector(5, 5, 5)));
  CellRange disjoint(IntVector(6, 6, 6), IntVector(9, 9, 9));
  EXPECT_TRUE(a.intersect(disjoint).empty());
}

TEST(CellRange, UnionWith) {
  CellRange a(IntVector(0, 0, 0), IntVector(2, 2, 2));
  CellRange b(IntVector(5, 5, 5), IntVector(6, 6, 6));
  EXPECT_EQ(a.unionWith(b), CellRange(IntVector(0, 0, 0), IntVector(6, 6, 6)));
  EXPECT_EQ(a.unionWith(CellRange()), a);
  EXPECT_EQ(CellRange().unionWith(b), b);
}

TEST(CellRange, GrownAndShifted) {
  CellRange r(IntVector(0, 0, 0), IntVector(4, 4, 4));
  EXPECT_EQ(r.grown(2), CellRange(IntVector(-2, -2, -2), IntVector(6, 6, 6)));
  EXPECT_EQ(r.grown(2).grown(-2), r);
  EXPECT_EQ(r.shifted(IntVector(1, 0, -1)),
            CellRange(IntVector(1, 0, -1), IntVector(5, 4, 3)));
}

TEST(CellRange, CoarsenedPositive) {
  CellRange fine(IntVector(0, 0, 0), IntVector(8, 8, 8));
  EXPECT_EQ(fine.coarsened(IntVector(4)),
            CellRange(IntVector(0, 0, 0), IntVector(2, 2, 2)));
  // Non-aligned high rounds outward.
  CellRange odd(IntVector(0, 0, 0), IntVector(5, 5, 5));
  EXPECT_EQ(odd.coarsened(IntVector(4)),
            CellRange(IntVector(0, 0, 0), IntVector(2, 2, 2)));
}

TEST(CellRange, CoarsenedNegativeIndicesUseFloor) {
  // Ghost window extending below zero: floor division must round toward
  // negative infinity so the coarse window still covers the fine one.
  CellRange ghost(IntVector(-3, -1, 0), IntVector(4, 4, 4));
  CellRange c = ghost.coarsened(IntVector(4));
  EXPECT_EQ(c.low(), IntVector(-1, -1, 0));
  EXPECT_EQ(c.high(), IntVector(1, 1, 1));
  EXPECT_TRUE(c.refined(IntVector(4)).contains(ghost));
}

TEST(CellRange, RefinedIsInverseForAligned) {
  CellRange c(IntVector(-1, 0, 2), IntVector(3, 4, 5));
  EXPECT_EQ(c.refined(IntVector(2)).coarsened(IntVector(2)), c);
}

TEST(CellRange, IterationVisitsAllCellsXFastest) {
  CellRange r(IntVector(-1, 0, 1), IntVector(1, 2, 3));
  std::vector<IntVector> visited;
  for (const IntVector& c : r) visited.push_back(c);
  ASSERT_EQ(visited.size(), static_cast<std::size_t>(r.volume()));
  EXPECT_EQ(visited.front(), IntVector(-1, 0, 1));
  EXPECT_EQ(visited[1], IntVector(0, 0, 1));  // x fastest
  EXPECT_EQ(visited.back(), IntVector(0, 1, 2));
  std::set<std::string> unique;
  for (const auto& c : visited) unique.insert(c.toString());
  EXPECT_EQ(unique.size(), visited.size());
}

TEST(CellRange, IterationOfEmptyRange) {
  CellRange r(IntVector(0, 0, 0), IntVector(0, 5, 5));
  int count = 0;
  for ([[maybe_unused]] const IntVector& c : r) ++count;
  EXPECT_EQ(count, 0);
}

}  // namespace
}  // namespace rmcrt
