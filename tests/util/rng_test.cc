#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace rmcrt {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.nextU64() == b.nextU64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    double d = r.nextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng r(123);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double d = r.nextDouble();
    sum += d;
    sum2 += d * d;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.002);
}

TEST(Rng, PerCellStreamsIndependentOfConstructionOrder) {
  // The stream for a (cell, ray) pair must not depend on which other
  // streams exist — this is what makes RMCRT results independent of the
  // patch decomposition.
  Rng a(99, IntVector(10, 20, 30), 5);
  const std::uint64_t first = a.nextU64();
  Rng c(99, IntVector(0, 0, 0), 0);
  (void)c.nextU64();
  Rng b(99, IntVector(10, 20, 30), 5);
  EXPECT_EQ(b.nextU64(), first);
}

TEST(Rng, NeighboringCellsDecorrelated) {
  // Streams of adjacent cells should not be shifted copies.
  Rng a(1, IntVector(5, 5, 5), 0);
  Rng b(1, IntVector(6, 5, 5), 0);
  std::vector<std::uint64_t> sa, sb;
  for (int i = 0; i < 32; ++i) {
    sa.push_back(a.nextU64());
    sb.push_back(b.nextU64());
  }
  for (int lag = 0; lag < 8; ++lag) {
    int matches = 0;
    for (int i = 0; i + lag < 32; ++i)
      if (sa[i + lag] == sb[i]) ++matches;
    EXPECT_EQ(matches, 0) << "lag " << lag;
  }
}

TEST(Rng, RayIdSeparatesStreams) {
  Rng a(1, IntVector(2, 2, 2), 0);
  Rng b(1, IntVector(2, 2, 2), 1);
  EXPECT_NE(a.nextU64(), b.nextU64());
}

TEST(Rng, UniformRange) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    double d = r.uniform(-2.0, 3.0);
    EXPECT_GE(d, -2.0);
    EXPECT_LT(d, 3.0);
  }
}

TEST(Rng, NextBelowInRange) {
  Rng r(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    auto v = r.nextBelow(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all 10 values hit in 1000 draws
}

TEST(Rng, NoStreamCollisionsAcrossLargeAndNegativeCoords) {
  // Regression: the old seed packed the three 32-bit coordinates into one
  // word at bit offsets 0/21/42. The fields overlap, so distinct cells
  // with any coordinate >= 2^21 — e.g. (2^21, 0, 0) vs (0, 1, 0) — and
  // all negative coordinates (whose uint32 images fill the high bits)
  // could share a ray stream, correlating neighboring cells' estimators.
  // With per-component hash chaining every (cell, ray) over a coordinate
  // range spanning negatives and > 2^21 must seed a distinct stream.
  const int coords[] = {-(1 << 21) - 3, -(1 << 13), -1, 0,
                        1,              19,         (1 << 21), (1 << 21) + 1,
                        (1 << 22) + 7};
  std::set<std::uint64_t> seeds;
  std::size_t streams = 0;
  for (int x : coords)
    for (int y : coords)
      for (int z : coords)
        for (std::uint32_t ray = 0; ray < 2; ++ray) {
          seeds.insert(Rng::streamSeed(42, IntVector(x, y, z), ray));
          ++streams;
        }
  EXPECT_EQ(seeds.size(), streams) << "colliding ray streams";
}

TEST(Rng, OldPackingCollisionPairsNowDistinct) {
  // The concrete aliases of the packed layout: x's bit 21 vs y's bit 0,
  // and y's bit 21 vs z's bit 0.
  Rng a(7, IntVector(1 << 21, 0, 0), 0);
  Rng b(7, IntVector(0, 1, 0), 0);
  EXPECT_NE(a.nextU64(), b.nextU64());
  Rng c(7, IntVector(0, 1 << 21, 0), 0);
  Rng d(7, IntVector(0, 0, 1), 0);
  EXPECT_NE(c.nextU64(), d.nextU64());
  // Sign extension: a negative x used to smear ones across y's and z's
  // fields; distinct negative cells must stay distinct.
  Rng e(7, IntVector(-1, 0, 0), 0);
  Rng f(7, IntVector(-1, -1, -1), 0);
  EXPECT_NE(e.nextU64(), f.nextU64());
}

TEST(Rng, SaveRestoreResumesMidSequence) {
  // Snapshot/restart regression: capturing state() mid-stream and
  // resuming via fromState() must continue the exact sequence — unlike
  // re-seeding, which hashes the seed and starts a different stream.
  Rng a(0xDEADBEEFull, IntVector(3, -7, 11), 2);
  for (int i = 0; i < 17; ++i) (void)a.nextU64();
  const std::uint64_t saved = a.state();

  Rng resumed = Rng::fromState(saved);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(resumed.nextU64(), a.nextU64());

  // Re-seeding with the raw state is NOT a resume (the ctor hashes).
  Rng reseeded(saved);
  Rng fresh = Rng::fromState(saved);
  EXPECT_NE(reseeded.nextU64(), fresh.nextU64());

  // state() itself is passive: reading it does not advance the stream.
  Rng b(1234);
  const std::uint64_t s0 = b.state();
  (void)b.state();
  EXPECT_EQ(b.state(), s0);
}

TEST(Splitmix64, KnownFixedPointFreeMixing) {
  // Bijectivity smoke test: no collisions among consecutive inputs.
  std::set<std::uint64_t> outs;
  for (std::uint64_t i = 0; i < 4096; ++i) outs.insert(splitmix64(i));
  EXPECT_EQ(outs.size(), 4096u);
}

}  // namespace
}  // namespace rmcrt
