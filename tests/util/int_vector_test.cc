#include "util/int_vector.h"

#include <gtest/gtest.h>

#include <map>
#include <unordered_set>

namespace rmcrt {
namespace {

TEST(IntVector, DefaultIsZero) {
  IntVector v;
  EXPECT_EQ(v, IntVector(0, 0, 0));
}

TEST(IntVector, SplatConstructor) {
  EXPECT_EQ(IntVector(3), IntVector(3, 3, 3));
}

TEST(IntVector, Arithmetic) {
  IntVector a(1, 2, 3), b(4, 5, 6);
  EXPECT_EQ(a + b, IntVector(5, 7, 9));
  EXPECT_EQ(b - a, IntVector(3, 3, 3));
  EXPECT_EQ(a * b, IntVector(4, 10, 18));
  EXPECT_EQ(b / a, IntVector(4, 2, 2));
  EXPECT_EQ(a * 2, IntVector(2, 4, 6));
  EXPECT_EQ(b / 2, IntVector(2, 2, 3));
  EXPECT_EQ(-a, IntVector(-1, -2, -3));
}

TEST(IntVector, CompoundAssign) {
  IntVector a(1, 1, 1);
  a += IntVector(2, 3, 4);
  EXPECT_EQ(a, IntVector(3, 4, 5));
  a -= IntVector(1, 1, 1);
  EXPECT_EQ(a, IntVector(2, 3, 4));
}

TEST(IntVector, ComponentwiseComparisons) {
  EXPECT_TRUE(IntVector(0, 0, 0).allLess(IntVector(1, 1, 1)));
  EXPECT_FALSE(IntVector(0, 0, 1).allLess(IntVector(1, 1, 1)));
  EXPECT_TRUE(IntVector(0, 0, 1).allLessEq(IntVector(1, 1, 1)));
  EXPECT_TRUE(IntVector(1, 1, 1).allGreaterEq(IntVector(1, 0, 1)));
  EXPECT_FALSE(IntVector(1, -1, 1).allGreaterEq(IntVector(1, 0, 1)));
}

TEST(IntVector, Volume) {
  EXPECT_EQ(IntVector(4, 5, 6).volume(), 120);
  // Does not overflow 32 bits: 2048^3 > 2^31.
  EXPECT_EQ(IntVector(2048, 2048, 2048).volume(), 8589934592LL);
}

TEST(IntVector, MinMax) {
  IntVector a(1, 5, 3), b(2, 4, 3);
  EXPECT_EQ(min(a, b), IntVector(1, 4, 3));
  EXPECT_EQ(max(a, b), IntVector(2, 5, 3));
}

TEST(IntVector, LexicographicOrderingForMaps) {
  std::map<IntVector, int, IntVectorLess> m;
  m[IntVector(0, 0, 1)] = 1;
  m[IntVector(0, 1, 0)] = 2;
  m[IntVector(1, 0, 0)] = 3;
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(m.begin()->second, 1);  // (0,0,1) < (0,1,0) < (1,0,0)
}

TEST(IntVector, HashDistinguishesAxes) {
  IntVectorHash h;
  std::unordered_set<std::size_t> seen;
  // Axis permutations of the same components must hash differently.
  seen.insert(h(IntVector(1, 2, 3)));
  seen.insert(h(IntVector(3, 2, 1)));
  seen.insert(h(IntVector(2, 3, 1)));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Vector, DotLengthNormalize) {
  Vector v(3.0, 4.0, 0.0);
  EXPECT_DOUBLE_EQ(v.dot(v), 25.0);
  EXPECT_DOUBLE_EQ(v.length(), 5.0);
  Vector n = v.normalized();
  EXPECT_NEAR(n.length(), 1.0, 1e-15);
  EXPECT_NEAR(n.x(), 0.6, 1e-15);
}

TEST(Vector, SafeInverseHandlesZeros) {
  Vector inv = Vector(2.0, 0.0, -4.0).safeInverse();
  EXPECT_DOUBLE_EQ(inv.x(), 0.5);
  EXPECT_TRUE(std::isinf(inv.y()));
  EXPECT_DOUBLE_EQ(inv.z(), -0.25);
}

TEST(Vector, FromIntVector) {
  Vector v{IntVector(1, 2, 3)};
  EXPECT_DOUBLE_EQ(v.x(), 1.0);
  EXPECT_DOUBLE_EQ(v.z(), 3.0);
}

TEST(Vector, ScalarOps) {
  Vector v(1.0, 2.0, 3.0);
  EXPECT_EQ(2.0 * v, Vector(2.0, 4.0, 6.0));
  EXPECT_EQ(v / 2.0, Vector(0.5, 1.0, 1.5));
  EXPECT_DOUBLE_EQ(v.minComponent(), 1.0);
  EXPECT_DOUBLE_EQ(v.maxComponent(), 3.0);
}

}  // namespace
}  // namespace rmcrt
