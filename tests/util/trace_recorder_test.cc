/// Trace-recorder schema tests: the emitted Chrome trace-event JSON must
/// parse, spans on one thread must nest properly, tids/pids/timestamps
/// must be valid, ring overflow must drop (and report) rather than grow,
/// and with tracing disabled the macros must record nothing.

#include "util/trace_recorder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "mini_json.h"

namespace rmcrt {
namespace {

/// Every test runs against the global recorder (that is what the macros
/// target); this fixture leaves it disabled and empty on both sides.
class TraceRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::global().setEnabled(false);
    TraceRecorder::global().clear();
  }
  void TearDown() override {
    TraceRecorder::global().setEnabled(false);
    TraceRecorder::global().clear();
  }
};

TEST_F(TraceRecorderTest, DisabledRecordsNothing) {
  {
    RMCRT_TRACE_SPAN("test", "should_not_appear");
    RMCRT_TRACE_INSTANT("test", "also_not");
  }
  EXPECT_TRUE(TraceRecorder::global().snapshotEvents().empty());
}

TEST_F(TraceRecorderTest, SpanRecordsCompleteEvent) {
  TraceRecorder::global().setEnabled(true);
  { RMCRT_TRACE_SPAN("test", "unit_span"); }
  const auto events = TraceRecorder::global().snapshotEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "unit_span");
  EXPECT_STREQ(events[0].cat, "test");
  EXPECT_EQ(events[0].phase, 'X');
  EXPECT_GE(events[0].tsNs, 0);
  EXPECT_GE(events[0].durNs, 0);
}

TEST_F(TraceRecorderTest, InstantEventHasNoDuration) {
  TraceRecorder::global().setEnabled(true);
  RMCRT_TRACE_INSTANT("test", "tick");
  const auto events = TraceRecorder::global().snapshotEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].phase, 'i');
  EXPECT_EQ(events[0].durNs, 0);
}

TEST_F(TraceRecorderTest, DynamicNamesAreCopiedAndTruncated) {
  TraceRecorder::global().setEnabled(true);
  {
    std::string name(100, 'x');  // longer than TraceEvent::kNameCap
    TraceSpan span("test", name);
  }
  const auto events = TraceRecorder::global().snapshotEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].name).size(),
            TraceEvent::kNameCap - 1);  // truncated, NUL-terminated
}

TEST_F(TraceRecorderTest, SpansNestProperlyPerThread) {
  TraceRecorder::global().setEnabled(true);
  {
    RMCRT_TRACE_SPAN("test", "outer");
    {
      RMCRT_TRACE_SPAN("test", "mid");
      { RMCRT_TRACE_SPAN("test", "inner"); }
      { RMCRT_TRACE_SPAN("test", "inner2"); }
    }
  }
  auto events = TraceRecorder::global().snapshotEvents();
  ASSERT_EQ(events.size(), 4u);
  for (const auto& e : events) EXPECT_EQ(e.tid, events[0].tid);

  // Validate nesting: sweep spans by start time and keep a stack of open
  // intervals — every span must lie entirely within the enclosing one
  // (same-thread spans from scoped RAII can never partially overlap).
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.tsNs != b.tsNs) return a.tsNs < b.tsNs;
              return a.durNs > b.durNs;  // parent first on equal start
            });
  std::vector<const TraceEvent*> open;
  for (const auto& e : events) {
    while (!open.empty() &&
           e.tsNs >= open.back()->tsNs + open.back()->durNs)
      open.pop_back();
    if (!open.empty()) {
      EXPECT_GE(e.tsNs, open.back()->tsNs);
      EXPECT_LE(e.tsNs + e.durNs, open.back()->tsNs + open.back()->durNs)
          << e.name << " escapes " << open.back()->name;
    }
    open.push_back(&e);
  }
  // "outer" must be the root: it contains all other spans.
  const auto outer =
      std::find_if(events.begin(), events.end(), [](const TraceEvent& e) {
        return std::string(e.name) == "outer";
      });
  ASSERT_NE(outer, events.end());
  for (const auto& e : events) {
    EXPECT_GE(e.tsNs, outer->tsNs);
    EXPECT_LE(e.tsNs + e.durNs, outer->tsNs + outer->durNs);
  }
}

TEST_F(TraceRecorderTest, ThreadsGetDistinctTidsAndAllEventsSurvive) {
  TraceRecorder::global().setEnabled(true);
  constexpr int kThreads = 8;
  constexpr int kEventsPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kEventsPerThread; ++i)
        RMCRT_TRACE_INSTANT("test", "mt");
    });
  }
  for (auto& t : threads) t.join();
  const auto events = TraceRecorder::global().snapshotEvents();
  ASSERT_EQ(events.size(),
            static_cast<std::size_t>(kThreads * kEventsPerThread));
  std::vector<std::uint32_t> tids;
  for (const auto& e : events) tids.push_back(e.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
  EXPECT_EQ(TraceRecorder::global().droppedEvents(), 0u);
}

TEST_F(TraceRecorderTest, RingOverflowDropsOldestAndCounts) {
  // A private recorder instance so the capacity override cannot leak into
  // other tests; the buffer is created on a fresh thread, after the
  // capacity is set, so the small ring actually applies.
  TraceRecorder rec;
  rec.setEnabled(true);
  rec.setCapacityPerThread(8);
  std::thread writer([&rec] {
    for (int i = 0; i < 20; ++i)
      rec.recordInstant("test", ("ev" + std::to_string(i)).c_str());
  });
  writer.join();
  const auto events = rec.snapshotEvents();
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(rec.droppedEvents(), 12u);
  // Oldest-first emission of the survivors: ev12..ev19.
  EXPECT_STREQ(events.front().name, "ev12");
  EXPECT_STREQ(events.back().name, "ev19");
}

TEST_F(TraceRecorderTest, ChromeTraceJsonParsesWithValidFields) {
  TraceRecorder::global().setEnabled(true);
  TraceRecorder::global().setThreadName("main-thread");
  TraceRecorder::global().setThreadPid(3);
  { RMCRT_TRACE_SPAN("cat_a", "span_a"); }
  RMCRT_TRACE_INSTANT("cat_b", "mark \"quoted\"");
  std::thread([&] {
    TraceRecorder::global().setThreadPid(4);
    RMCRT_TRACE_SPAN("cat_c", "other_thread");
  }).join();

  std::ostringstream os;
  TraceRecorder::global().writeChromeTrace(os);
  minijson::Value doc;
  ASSERT_NO_THROW(doc = minijson::parse(os.str())) << os.str();

  ASSERT_TRUE(doc.has("traceEvents"));
  const auto& events = doc.at("traceEvents").array;
  ASSERT_GE(events.size(), 3u);
  bool sawMeta = false, sawSpan = false, sawInstant = false;
  for (const auto& e : events) {
    const std::string ph = e.at("ph").str;
    ASSERT_TRUE(e.has("pid"));
    ASSERT_TRUE(e.has("tid"));
    if (ph == "M") {
      sawMeta = true;
      EXPECT_EQ(e.at("name").str, "thread_name");
      EXPECT_EQ(e.at("args").at("name").str, "main-thread");
      continue;
    }
    EXPECT_GE(e.at("ts").number, 0.0);
    if (ph == "X") {
      sawSpan = true;
      EXPECT_GE(e.at("dur").number, 0.0);
    }
    if (ph == "i") sawInstant = true;
  }
  EXPECT_TRUE(sawMeta);
  EXPECT_TRUE(sawSpan);
  EXPECT_TRUE(sawInstant);
  EXPECT_EQ(doc.at("displayTimeUnit").str, "ms");
  EXPECT_EQ(doc.at("otherData").at("droppedEvents").str, "0");

  // The per-thread pids survived into the right events.
  bool sawPid3 = false, sawPid4 = false;
  for (const auto& e : events) {
    if (e.at("ph").str == "M") continue;
    if (e.at("pid").number == 3.0) sawPid3 = true;
    if (e.at("pid").number == 4.0) sawPid4 = true;
  }
  EXPECT_TRUE(sawPid3);
  EXPECT_TRUE(sawPid4);
}

TEST_F(TraceRecorderTest, EnableMidRunOnlyRecordsWhileEnabled) {
  RMCRT_TRACE_INSTANT("test", "before");
  TraceRecorder::global().setEnabled(true);
  RMCRT_TRACE_INSTANT("test", "during");
  TraceRecorder::global().setEnabled(false);
  RMCRT_TRACE_INSTANT("test", "after");
  const auto events = TraceRecorder::global().snapshotEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "during");
}

}  // namespace
}  // namespace rmcrt
