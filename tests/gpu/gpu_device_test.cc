#include "gpu/gpu_device.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

namespace rmcrt::gpu {
namespace {

GpuDevice::Config smallConfig(std::size_t bytes = 1 << 20) {
  GpuDevice::Config cfg;
  cfg.globalMemoryBytes = bytes;
  cfg.workerSlots = 2;
  return cfg;
}

TEST(GpuDevice, AllocateAndFreeTracksUsage) {
  GpuDevice dev(smallConfig());
  EXPECT_EQ(dev.bytesInUse(), 0u);
  void* p = dev.allocate(100 * 1024);
  EXPECT_GE(dev.bytesInUse(), 100u * 1024);
  dev.free(p, 100 * 1024);
  EXPECT_EQ(dev.bytesInUse(), 0u);
}

TEST(GpuDevice, ThrowsWhenCapacityExceeded) {
  GpuDevice dev(smallConfig(256 * 1024));
  void* p = dev.allocate(200 * 1024);
  EXPECT_THROW(dev.allocate(100 * 1024), DeviceOutOfMemory);
  EXPECT_EQ(dev.stats().allocFailures, 1u);
  dev.free(p, 200 * 1024);
  // After freeing, the allocation succeeds.
  void* q = dev.allocate(100 * 1024);
  dev.free(q, 100 * 1024);
}

TEST(GpuDevice, PeakTracksHighWater) {
  GpuDevice dev(smallConfig());
  void* a = dev.allocate(64 * 1024);
  void* b = dev.allocate(64 * 1024);
  const auto peak = dev.stats().peakBytesInUse;
  dev.free(a, 64 * 1024);
  dev.free(b, 64 * 1024);
  EXPECT_EQ(dev.stats().peakBytesInUse, peak);
  EXPECT_GE(peak, 128u * 1024);
}

TEST(GpuDevice, SynchronousCopiesMeterBytes) {
  GpuDevice dev(smallConfig());
  std::vector<double> host(1024, 3.0);
  void* d = dev.allocate(1024 * sizeof(double));
  dev.copyToDevice(d, host.data(), 1024 * sizeof(double));
  std::vector<double> back(1024, 0.0);
  dev.copyToHost(back.data(), d, 1024 * sizeof(double));
  EXPECT_DOUBLE_EQ(back[512], 3.0);
  const auto st = dev.stats();
  EXPECT_EQ(st.h2dBytes, 1024 * sizeof(double));
  EXPECT_EQ(st.d2hBytes, 1024 * sizeof(double));
  EXPECT_EQ(st.h2dTransfers, 1u);
  EXPECT_EQ(st.d2hTransfers, 1u);
  dev.free(d, 1024 * sizeof(double));
}

TEST(GpuStream, OpsRunInOrder) {
  GpuDevice dev(smallConfig());
  auto stream = dev.createStream();
  std::vector<int> order;
  std::mutex m;
  for (int i = 0; i < 50; ++i) {
    stream->enqueueKernel([&, i] {
      std::lock_guard<std::mutex> lk(m);
      order.push_back(i);
    });
  }
  stream->synchronize();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(GpuStream, CopyKernelCopyPipeline) {
  GpuDevice dev(smallConfig());
  const std::size_t n = 256;
  std::vector<double> in(n, 2.0), out(n, 0.0);
  void* d = dev.allocate(n * sizeof(double));
  auto stream = dev.createStream();
  stream->enqueueCopyToDevice(d, in.data(), n * sizeof(double));
  stream->enqueueKernel([d, n] {
    auto* v = static_cast<double*>(d);
    for (std::size_t i = 0; i < n; ++i) v[i] *= 3.0;
  });
  stream->enqueueCopyToHost(out.data(), d, n * sizeof(double));
  stream->synchronize();
  for (std::size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(out[i], 6.0);
  EXPECT_EQ(dev.stats().kernelsLaunched, 1u);
  dev.free(d, n * sizeof(double));
}

TEST(GpuStream, MultipleStreamsInterleaveButEachStaysOrdered) {
  GpuDevice dev(smallConfig());
  auto s1 = dev.createStream();
  auto s2 = dev.createStream();
  std::atomic<int> c1{0}, c2{0};
  std::atomic<bool> bad{false};
  for (int i = 0; i < 100; ++i) {
    s1->enqueueKernel([&, i] {
      if (c1.fetch_add(1) != i) bad.store(true);
    });
    s2->enqueueKernel([&, i] {
      if (c2.fetch_add(1) != i) bad.store(true);
    });
  }
  s1->synchronize();
  s2->synchronize();
  EXPECT_FALSE(bad.load());
  EXPECT_EQ(c1.load(), 100);
  EXPECT_EQ(c2.load(), 100);
}

TEST(GpuDevice, SynchronizeDrainsAllStreams) {
  GpuDevice dev(smallConfig());
  auto s1 = dev.createStream();
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i)
    s1->enqueueKernel([&done] { done.fetch_add(1); });
  dev.synchronize();
  EXPECT_EQ(done.load(), 20);
}

TEST(GpuDevice, ConcurrentAllocationsRespectCapacity) {
  GpuDevice dev(smallConfig(4 << 20));
  std::atomic<std::uint64_t> granted{0};
  std::vector<std::thread> threads;
  std::mutex m;
  std::vector<std::pair<void*, std::size_t>> live;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        try {
          void* p = dev.allocate(64 * 1024);
          granted.fetch_add(64 * 1024);
          std::lock_guard<std::mutex> lk(m);
          live.emplace_back(p, 64 * 1024);
        } catch (const DeviceOutOfMemory&) {
          // acceptable under pressure
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(dev.bytesInUse(), dev.capacity());
  for (auto& [p, sz] : live) dev.free(p, sz);
  EXPECT_EQ(dev.bytesInUse(), 0u);
}

}  // namespace
}  // namespace rmcrt::gpu
