#include "gpu/gpu_data_warehouse.h"

#include <gtest/gtest.h>

namespace rmcrt::gpu {
namespace {

using grid::CCVariable;
using grid::CellRange;
using grid::Patch;

GpuDevice::Config cfg(std::size_t bytes = 64 << 20) {
  GpuDevice::Config c;
  c.globalMemoryBytes = bytes;
  return c;
}

CCVariable<double> makeHostVar(int seed, int side = 8) {
  CCVariable<double> v(CellRange(IntVector(0), IntVector(side)), 0.0);
  for (const auto& c : v.window())
    v[c] = seed + c.x() + 0.1 * c.y() + 0.01 * c.z();
  return v;
}

TEST(GpuDataWarehouse, PutFetchPatchVarRoundTrip) {
  GpuDevice dev(cfg());
  GpuDataWarehouse dw(dev);
  CCVariable<double> host = makeHostVar(5);
  dw.putPatchVar("abskg", 0, host);
  EXPECT_TRUE(dw.hasPatchVar("abskg", 0));
  EXPECT_FALSE(dw.hasPatchVar("abskg", 1));

  CCVariable<double> back(host.window(), 0.0);
  dw.fetchPatchVar("abskg", 0, back);
  for (const auto& c : host.window()) EXPECT_DOUBLE_EQ(back[c], host[c]);
}

TEST(GpuDataWarehouse, DeviceVarOffsetMatchesArrayLayout) {
  GpuDevice dev(cfg());
  GpuDataWarehouse dw(dev);
  CCVariable<double> host = makeHostVar(1, 4);
  DeviceVar& dv = dw.putPatchVar("v", 0, host);
  for (const auto& c : host.window())
    EXPECT_DOUBLE_EQ(dv.as<double>()[dv.offset(c)], host[c]);
}

TEST(GpuDataWarehouse, AllocatePatchVarForOutputs) {
  GpuDevice dev(cfg());
  GpuDataWarehouse dw(dev);
  const CellRange w(IntVector(0), IntVector(16));
  DeviceVar& dv = dw.allocatePatchVar("divQ", 3, w, sizeof(double));
  EXPECT_EQ(dv.bytes, 16u * 16 * 16 * 8);
  EXPECT_NE(dv.devPtr, nullptr);
  // Write through the device pointer then read back via fetch.
  dv.as<double>()[0] = 42.0;
  EXPECT_DOUBLE_EQ(dv.as<double>()[0], 42.0);
}

TEST(GpuDataWarehouse, LevelDatabaseUploadsExactlyOnce) {
  GpuDevice dev(cfg());
  GpuDataWarehouse dw(dev, GpuDataWarehouse::Mode::LevelDatabase);
  CCVariable<double> coarse = makeHostVar(7, 16);

  DeviceVar& a = dw.getOrUploadLevelVar("abskg", 0, coarse);
  const auto h2dAfterFirst = dev.stats().h2dBytes;
  // Ten more patch tasks request the same level var.
  for (int p = 0; p < 10; ++p) {
    DeviceVar& again = dw.getOrUploadLevelVar("abskg", 0, coarse, p);
    EXPECT_EQ(again.devPtr, a.devPtr) << "level DB must share one copy";
  }
  EXPECT_EQ(dev.stats().h2dBytes, h2dAfterFirst) << "no extra PCIe traffic";
  EXPECT_EQ(dw.numLevelVarCopies(), 1u);
}

TEST(GpuDataWarehouse, PerPatchModeUploadsPerPatch) {
  GpuDevice dev(cfg());
  GpuDataWarehouse dw(dev, GpuDataWarehouse::Mode::PerPatchCopies);
  CCVariable<double> coarse = makeHostVar(7, 16);
  const std::size_t oneCopy = coarse.sizeBytes();

  for (int p = 0; p < 4; ++p)
    dw.getOrUploadLevelVar("abskg", 0, coarse, p);
  EXPECT_EQ(dw.numLevelVarCopies(), 4u);
  EXPECT_EQ(dev.stats().h2dBytes, 4 * oneCopy);
  EXPECT_GE(dev.bytesInUse(), 4 * oneCopy);
}

TEST(GpuDataWarehouse, PerPatchModeExhaustsSmallDevice) {
  // The Section III-C failure: per-patch coarse copies exceed device
  // memory where the shared level DB fits comfortably.
  CCVariable<double> coarse = makeHostVar(3, 32);  // 256 KiB
  const std::size_t devBytes = 1 << 20;            // 1 MiB "GPU"

  GpuDevice devShared(cfg(devBytes));
  GpuDataWarehouse shared(devShared, GpuDataWarehouse::Mode::LevelDatabase);
  for (int p = 0; p < 16; ++p)
    EXPECT_NO_THROW(shared.getOrUploadLevelVar("abskg", 0, coarse, p));

  GpuDevice devCopies(cfg(devBytes));
  GpuDataWarehouse copies(devCopies, GpuDataWarehouse::Mode::PerPatchCopies);
  bool threw = false;
  try {
    for (int p = 0; p < 16; ++p)
      copies.getOrUploadLevelVar("abskg", 0, coarse, p);
  } catch (const DeviceOutOfMemory&) {
    threw = true;
  }
  EXPECT_TRUE(threw) << "redundant copies must exhaust the small device";
}

TEST(GpuDataWarehouse, ClearPatchVarsKeepsLevelDatabase) {
  GpuDevice dev(cfg());
  GpuDataWarehouse dw(dev);
  CCVariable<double> coarse = makeHostVar(1, 8);
  CCVariable<double> fine = makeHostVar(2, 4);
  dw.getOrUploadLevelVar("abskg", 0, coarse);
  dw.putPatchVar("abskg", 7, fine);
  dw.clearPatchVars();
  EXPECT_FALSE(dw.hasPatchVar("abskg", 7));
  EXPECT_TRUE(dw.hasLevelVar("abskg", 0));
  dw.clear();
  EXPECT_FALSE(dw.hasLevelVar("abskg", 0));
  EXPECT_EQ(dev.bytesInUse(), 0u);
}

TEST(GpuDataWarehouse, ReplacingPatchVarFreesOldCopy) {
  GpuDevice dev(cfg());
  GpuDataWarehouse dw(dev);
  CCVariable<double> v8 = makeHostVar(1, 8);
  CCVariable<double> v16 = makeHostVar(1, 16);
  dw.putPatchVar("v", 0, v8);
  const auto inUseSmall = dev.bytesInUse();
  dw.putPatchVar("v", 0, v16);
  // Old storage released; usage reflects only the larger variable.
  EXPECT_GE(dev.bytesInUse(), v16.sizeBytes() * 1u);
  EXPECT_LT(dev.bytesInUse(), inUseSmall + v16.sizeBytes() * 1u + 4096);
  dw.clear();
}

TEST(GpuDataWarehouse, StreamedUploadsCompleteAfterSync) {
  GpuDevice dev(cfg());
  GpuDataWarehouse dw(dev);
  CCVariable<double> host = makeHostVar(9, 8);
  auto stream = dev.createStream();
  dw.putPatchVar("v", 0, host, stream.get());
  stream->synchronize();
  CCVariable<double> back(host.window(), 0.0);
  dw.fetchPatchVar("v", 0, back);
  for (const auto& c : host.window()) EXPECT_DOUBLE_EQ(back[c], host[c]);
}

}  // namespace
}  // namespace rmcrt::gpu
