/// GPU failure-path tests: the CUDA-style deferred async error model on
/// streams, the executor's per-task fallback routing, OOM-safe warehouse
/// bookkeeping, and the full graceful-degradation ladder — a pipeline on a
/// memory-squeezed device must still produce bitwise-correct divQ, via
/// level-database eviction when that buys enough headroom and via the CPU
/// tracer when nothing does.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/problems.h"
#include "core/rmcrt_component.h"
#include "gpu/gpu_data_warehouse.h"
#include "gpu/gpu_device.h"
#include "gpu/gpu_task_executor.h"
#include "grid/load_balancer.h"
#include "runtime/scheduler.h"

namespace rmcrt::gpu {
namespace {

using namespace std::chrono_literals;

template <typename Pred>
bool waitFor(Pred pred, std::chrono::milliseconds timeout = 2000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(100us);
  }
  return true;
}

TEST(GpuStreamErrors, KernelExceptionSurfacesAtSynchronize) {
  GpuDevice dev;
  auto stream = dev.createStream();
  std::atomic<bool> laterRan{false};
  stream->enqueueKernel([] { throw std::runtime_error("kernel fault"); });
  stream->enqueueKernel([&] { laterRan.store(true); });

  // The error is captured asynchronously, then reported at the sync point
  // (CUDA semantics), and operations queued behind the fault are discarded.
  ASSERT_TRUE(waitFor([&] { return stream->failed(); }));
  EXPECT_THROW(stream->synchronize(), std::runtime_error);
  EXPECT_FALSE(laterRan.load());

  // The error was consumed: the stream is usable again.
  EXPECT_FALSE(stream->failed());
  std::atomic<bool> recovered{false};
  stream->enqueueKernel([&] { recovered.store(true); });
  stream->synchronize();
  EXPECT_TRUE(recovered.load());
}

TEST(GpuStreamErrors, DestructorSwallowsPendingError) {
  // A stream destroyed with a captured error must log and return — never
  // std::terminate. Surviving this scope IS the assertion.
  GpuDevice dev;
  {
    auto stream = dev.createStream();
    stream->enqueueKernel([] { throw std::runtime_error("unsynced fault"); });
  }
  SUCCEED();
}

TEST(GpuExecutor, FallbackRecoversFailedTasks) {
  GpuDevice dev;
  const int n = 8;
  std::vector<std::atomic<int>> result(n);
  std::vector<GpuPatchTask> tasks;
  for (int i = 0; i < n; ++i) {
    GpuPatchTask t;
    // Tasks 2 and 5 fail on the device (one at stage time, one inside the
    // kernel); their fallbacks must produce the result instead.
    if (i == 2) {
      t.stage = [](GpuStream&) { throw DeviceOutOfMemory(1, 0); };
    } else {
      t.stage = [](GpuStream&) {};
    }
    if (i == 5) {
      t.kernel = [] { throw std::runtime_error("kernel fault"); };
    } else {
      t.kernel = [&result, i] { result[static_cast<std::size_t>(i)] = i; };
    }
    t.finish = [](GpuStream&) {};
    t.fallback = [&result, i] { result[static_cast<std::size_t>(i)] = i; };
    tasks.push_back(std::move(t));
  }
  const ExecutorStats st = runGpuTasks(dev, tasks, /*maxResident=*/3);
  EXPECT_EQ(st.tasksRun, n);
  EXPECT_EQ(st.deviceErrors, 2);
  EXPECT_EQ(st.fallbacksRun, 2);
  for (int i = 0; i < n; ++i)
    EXPECT_EQ(result[static_cast<std::size_t>(i)].load(), i);
}

TEST(GpuExecutor, UnrecoveredErrorPropagatesAfterDrain) {
  GpuDevice dev;
  const int n = 6;
  std::vector<std::atomic<bool>> ran(n);
  std::vector<GpuPatchTask> tasks;
  for (int i = 0; i < n; ++i) {
    GpuPatchTask t;
    t.stage = [](GpuStream&) {};
    if (i == 1) {
      t.kernel = [] { throw std::runtime_error("no fallback"); };
      // no t.fallback: the error must reach the caller
    } else {
      t.kernel = [&ran, i] { ran[static_cast<std::size_t>(i)] = true; };
    }
    t.finish = [](GpuStream&) {};
    tasks.push_back(std::move(t));
  }
  EXPECT_THROW(runGpuTasks(dev, tasks, 2), std::runtime_error);
  // The failure did not strand the other tasks: everything else ran.
  for (int i = 0; i < n; ++i) {
    if (i == 1) continue;
    EXPECT_TRUE(ran[static_cast<std::size_t>(i)].load()) << i;
  }
}

TEST(GpuWarehouse, FailedAllocationLeavesNoEntry) {
  GpuDevice::Config cfg;
  cfg.globalMemoryBytes = 16 << 10;
  GpuDevice dev(cfg);
  GpuDataWarehouse gdw(dev);

  const grid::CellRange big(IntVector(0), IntVector(64));  // 2 MB of doubles
  EXPECT_THROW(gdw.allocatePatchVar("divQ", 0, big, sizeof(double)),
               DeviceOutOfMemory);
  // No half-made entry: a later lookup must not find a null DeviceVar.
  EXPECT_FALSE(gdw.hasPatchVar("divQ", 0));
  EXPECT_EQ(dev.bytesInUse(), 0u);
  EXPECT_GT(dev.stats().allocFailures, 0u);

  // Replacing an existing var with one that does not fit removes the old
  // entry (never leaves a stale device pointer to double-free).
  const grid::CellRange small(IntVector(0), IntVector(4));
  gdw.allocatePatchVar("divQ", 0, small, sizeof(double));
  ASSERT_TRUE(gdw.hasPatchVar("divQ", 0));
  EXPECT_THROW(gdw.allocatePatchVar("divQ", 0, big, sizeof(double)),
               DeviceOutOfMemory);
  EXPECT_FALSE(gdw.hasPatchVar("divQ", 0));
  EXPECT_EQ(dev.bytesInUse(), 0u);
}

TEST(GpuWarehouse, EvictLevelVarsFreesAndReuploadsOnDemand) {
  GpuDevice dev;
  GpuDataWarehouse gdw(dev);

  const grid::CellRange w(IntVector(0), IntVector(8));
  grid::CCVariable<double> host(w, 1.5);
  gdw.getOrUploadLevelVar("abskg", 0, host);
  gdw.getOrUploadLevelVar("sigmaT4OverPi", 0, host);
  ASSERT_EQ(gdw.numLevelVarCopies(), 2u);
  const std::uint64_t uploadsBefore = dev.stats().h2dTransfers;

  const std::size_t freed = gdw.evictLevelVars();
  EXPECT_EQ(freed, 2 * w.volume() * sizeof(double));
  EXPECT_EQ(gdw.numLevelVarCopies(), 0u);
  EXPECT_EQ(dev.bytesInUse(), 0u);

  // The next getOrUpload transparently re-creates the copy.
  DeviceVar& dv = gdw.getOrUploadLevelVar("abskg", 0, host);
  EXPECT_EQ(gdw.numLevelVarCopies(), 1u);
  EXPECT_EQ(dev.stats().h2dTransfers, uploadsBefore + 1);
  EXPECT_EQ(dv.as<double>()[0], 1.5);
}

/// ---- the full graceful-degradation ladder on the real pipeline ---------

core::RmcrtSetup smallSetup() {
  core::RmcrtSetup setup;
  setup.problem = core::burnsChriston();
  setup.trace.nDivQRays = 12;
  setup.trace.seed = 21;
  setup.roiHalo = 3;
  return setup;
}

/// Run the 2-level GPU pipeline on \p numRanks ranks, one device of
/// \p deviceBytes each, warehouses in \p mode. Returns the schedulers;
/// devices/gdws are output so callers can inspect stats.
std::vector<std::unique_ptr<runtime::Scheduler>> runGpuPipeline(
    std::shared_ptr<const grid::Grid> grid, int numRanks,
    const core::RmcrtSetup& setup, std::size_t deviceBytes,
    GpuDataWarehouse::Mode mode,
    std::vector<std::unique_ptr<GpuDevice>>& devices,
    std::vector<std::unique_ptr<GpuDataWarehouse>>& gdws,
    comm::Communicator& world) {
  auto lb = std::make_shared<grid::LoadBalancer>(*grid, numRanks);
  std::vector<std::unique_ptr<runtime::Scheduler>> scheds;
  for (int r = 0; r < numRanks; ++r) {
    GpuDevice::Config cfg;
    cfg.globalMemoryBytes = deviceBytes;
    devices.push_back(std::make_unique<GpuDevice>(cfg));
    gdws.push_back(std::make_unique<GpuDataWarehouse>(*devices.back(), mode));
    scheds.push_back(
        std::make_unique<runtime::Scheduler>(grid, lb, world, r));
  }
  std::vector<std::thread> threads;
  for (int r = 0; r < numRanks; ++r) {
    threads.emplace_back([&, r] {
      core::RmcrtComponent::registerTwoLevelGpuPipeline(*scheds[r], setup,
                                                        *gdws[r]);
      scheds[r]->executeTimestep();
    });
  }
  for (auto& t : threads) t.join();
  return scheds;
}

void compareToSerial(
    const grid::Grid& grid, const core::RmcrtSetup& setup,
    std::vector<std::unique_ptr<runtime::Scheduler>>& scheds) {
  grid::CCVariable<double> serial =
      core::RmcrtComponent::solveSerialTwoLevel(grid, setup);
  for (auto& s : scheds) {
    for (int pid : s->loadBalancer().patchesOf(s->rank(), grid,
                                               grid.numLevels() - 1)) {
      const auto& divQ =
          s->newDW().get<double>(core::RmcrtLabels::divQ, pid);
      for (const auto& c : grid.patchById(pid)->cells())
        ASSERT_DOUBLE_EQ(divQ[c], serial[c])
            << "patch " << pid << " cell " << c;
    }
  }
}

TEST(GpuPipelineResilience, SqueezedDeviceFallsBackToCpuBitwise) {
  // A device too small for even one patch's working set: every patch must
  // exhaust the OOM retry ladder and reroute to the CPU tracer — and the
  // answer must still be bitwise the serial one.
  auto grid = grid::Grid::makeTwoLevel(Vector(0.0), Vector(1.0),
                                       IntVector(16), IntVector(4),
                                       IntVector(4), IntVector(4));
  const core::RmcrtSetup setup = smallSetup();
  std::vector<std::unique_ptr<GpuDevice>> devices;
  std::vector<std::unique_ptr<GpuDataWarehouse>> gdws;
  comm::Communicator world(2);
  // 16 KB cannot hold even one interior patch's fused ROI records
  // (~10^3 cells * 24 B, page-rounded to 24 KB).
  auto scheds =
      runGpuPipeline(grid, 2, setup, /*deviceBytes=*/16 << 10,
                     GpuDataWarehouse::Mode::LevelDatabase, devices, gdws,
                     world);
  compareToSerial(*grid, setup, scheds);
  for (auto& dev : devices) {
    EXPECT_GT(dev->stats().allocFailures, 0u);
    EXPECT_GT(dev->stats().cpuFallbacks, 0u);
  }
}

TEST(GpuPipelineResilience, EvictionRescuesPerPatchCopies) {
  // PerPatchCopies mode accumulates a private coarse copy per patch until
  // the device fills mid-timestep — the paper's motivating failure. The
  // recovery ladder's evictLevelVars() must clear the stale copies and let
  // every patch complete ON DEVICE (no CPU fallback), bitwise correct.
  auto grid = grid::Grid::makeTwoLevel(Vector(0.0), Vector(1.0),
                                       IntVector(16), IntVector(4),
                                       IntVector(4), IntVector(4));
  const core::RmcrtSetup setup = smallSetup();
  std::vector<std::unique_ptr<GpuDevice>> devices;
  std::vector<std::unique_ptr<GpuDataWarehouse>> gdws;
  comm::Communicator world(2);
  // Sizing: each patch task transiently needs ~32 KB (page-rounded fused
  // ROI records + divQ + its own fused coarse copy) while the stale
  // coarse copies of previous patches accumulate at ~4 KB per patch.
  // 96 KB therefore fills after roughly half of a rank's 32 patches —
  // well before the timestep ends — yet offers ample room once evicted.
  auto scheds =
      runGpuPipeline(grid, 2, setup, /*deviceBytes=*/96 << 10,
                     GpuDataWarehouse::Mode::PerPatchCopies, devices, gdws,
                     world);
  compareToSerial(*grid, setup, scheds);
  for (auto& dev : devices) {
    EXPECT_GT(dev->stats().allocFailures, 0u)
        << "the squeeze never happened: test capacity too generous";
    EXPECT_EQ(dev->stats().cpuFallbacks, 0u)
        << "eviction failed to rescue the device path";
  }
}

}  // namespace
}  // namespace rmcrt::gpu
