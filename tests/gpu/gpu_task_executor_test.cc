#include "gpu/gpu_task_executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace rmcrt::gpu {
namespace {

GpuDevice::Config cfg(std::size_t mem = 16 << 20, int workers = 2) {
  GpuDevice::Config c;
  c.globalMemoryBytes = mem;
  c.workerSlots = workers;
  return c;
}

TEST(GpuTaskExecutor, RunsAllTasksInStageKernelFinishOrder) {
  GpuDevice dev(cfg());
  constexpr int kTasks = 20;
  std::vector<std::atomic<int>> phase(kTasks);
  std::vector<GpuPatchTask> tasks;
  for (int i = 0; i < kTasks; ++i) {
    GpuPatchTask t;
    t.stage = [&phase, i](GpuStream& s) {
      s.enqueueKernel([&phase, i] {
        EXPECT_EQ(phase[i].exchange(1), 0) << "stage must run first";
      });
    };
    t.kernel = [&phase, i] {
      EXPECT_EQ(phase[i].exchange(2), 1) << "kernel after stage";
    };
    t.finish = [&phase, i](GpuStream& s) {
      s.enqueueKernel([&phase, i] {
        EXPECT_EQ(phase[i].exchange(3), 2) << "finish after kernel";
      });
    };
    tasks.push_back(std::move(t));
  }
  const ExecutorStats stats = runGpuTasks(dev, tasks, 4);
  EXPECT_EQ(stats.tasksRun, kTasks);
  for (int i = 0; i < kTasks; ++i) EXPECT_EQ(phase[i].load(), 3);
}

TEST(GpuTaskExecutor, ResidencyBoundIsRespected) {
  GpuDevice dev(cfg());
  std::atomic<int> resident{0};
  std::atomic<int> maxResident{0};
  std::vector<GpuPatchTask> tasks;
  for (int i = 0; i < 32; ++i) {
    GpuPatchTask t;
    t.stage = [&](GpuStream& s) {
      s.enqueueKernel([&] {
        const int now = resident.fetch_add(1) + 1;
        int prev = maxResident.load();
        while (prev < now && !maxResident.compare_exchange_weak(prev, now)) {
        }
      });
    };
    t.finish = [&](GpuStream& s) {
      s.enqueueKernel([&] { resident.fetch_sub(1); });
    };
    tasks.push_back(std::move(t));
  }
  const ExecutorStats stats = runGpuTasks(dev, tasks, 3);
  EXPECT_EQ(stats.tasksRun, 32);
  EXPECT_LE(stats.maxConcurrentResident, 3);
  EXPECT_LE(maxResident.load(), 3);
  EXPECT_EQ(resident.load(), 0);
}

TEST(GpuTaskExecutor, BoundedMemoryWithManyTasks) {
  // Each resident task allocates 1 MiB; 64 tasks on a 8 MiB device only
  // work because residency is bounded (4 x 1 MiB at a time).
  GpuDevice dev(cfg(8 << 20));
  std::vector<GpuPatchTask> tasks;
  std::vector<void*> ptrs(64, nullptr);
  for (int i = 0; i < 64; ++i) {
    GpuPatchTask t;
    t.stage = [&dev, &ptrs, i](GpuStream& s) {
      s.enqueueKernel([&dev, &ptrs, i] { ptrs[i] = dev.allocate(1 << 20); });
    };
    t.finish = [&dev, &ptrs, i](GpuStream& s) {
      s.enqueueKernel([&dev, &ptrs, i] {
        dev.free(ptrs[i], 1 << 20);
        ptrs[i] = nullptr;
      });
    };
    tasks.push_back(std::move(t));
  }
  EXPECT_NO_THROW(runGpuTasks(dev, tasks, 4));
  EXPECT_EQ(dev.bytesInUse(), 0u);
  EXPECT_LE(dev.stats().peakBytesInUse, 6u << 20);
}

TEST(GpuTaskExecutor, EmptyBatch) {
  GpuDevice dev(cfg());
  const ExecutorStats stats = runGpuTasks(dev, {}, 4);
  EXPECT_EQ(stats.tasksRun, 0);
  EXPECT_EQ(stats.maxConcurrentResident, 0);
}

TEST(GpuTaskExecutor, SingleResidencyDegradesToSerial) {
  GpuDevice dev(cfg());
  std::atomic<int> running{0};
  std::atomic<bool> overlap{false};
  std::vector<GpuPatchTask> tasks;
  for (int i = 0; i < 8; ++i) {
    GpuPatchTask t;
    t.kernel = [&] {
      if (running.fetch_add(1) != 0) overlap.store(true);
      running.fetch_sub(1);
    };
    tasks.push_back(std::move(t));
  }
  const ExecutorStats stats = runGpuTasks(dev, tasks, 1);
  EXPECT_EQ(stats.tasksRun, 8);
  EXPECT_EQ(stats.maxConcurrentResident, 1);
  EXPECT_FALSE(overlap.load());
}

}  // namespace
}  // namespace rmcrt::gpu
