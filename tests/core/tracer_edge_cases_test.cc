/// Edge-case and robustness tests for the marching kernel: anisotropic
/// cells, axis-aligned directions (zero direction components), domains
/// not anchored at the origin, center-emission mode, and DOM mesh
/// convergence.

#include <gtest/gtest.h>

#include <cmath>

#include "core/dom_solver.h"
#include "core/problems.h"
#include "core/ray_tracer.h"
#include "grid/grid.h"

namespace rmcrt::core {
namespace {

using grid::CCVariable;
using grid::CellType;
using grid::Grid;

TEST(TracerEdge, AnisotropicCellsPreserveEquilibrium) {
  // A 2:1:4 aspect-ratio domain with matching cell counts -> anisotropic
  // dx. Equilibrium (uniform medium, hot walls) must still give divQ = 0:
  // any DDA bookkeeping error in per-axis crossing distances breaks it.
  auto grid = Grid::makeSingleLevel(Vector(0.0, 0.0, 0.0),
                                    Vector(2.0, 1.0, 4.0), IntVector(8),
                                    IntVector(8));
  RadiationProblem prob = uniformMedium(3.0, 1.0);
  CCVariable<double> abskg(grid->fineLevel().cells(), 0.0);
  CCVariable<double> sig(grid->fineLevel().cells(), 0.0);
  CCVariable<CellType> ct(grid->fineLevel().cells(), CellType::Flow);
  initializeProperties(grid->fineLevel(), prob, abskg, sig, ct);

  TraceLevel tl{LevelGeom::from(grid->fineLevel()),
                RadiationFieldsView{FieldView<double>::fromHost(abskg),
                                    FieldView<double>::fromHost(sig),
                                    FieldView<CellType>::fromHost(ct)},
                grid->fineLevel().cells()};
  TraceConfig cfg;
  cfg.nDivQRays = 16;
  cfg.threshold = 1e-12;
  Tracer tracer({tl}, WallProperties{prob.wallSigmaT4OverPi, 1.0}, cfg);
  CCVariable<double> divQ(grid->fineLevel().cells(), 0.0);
  tracer.computeDivQ(grid->fineLevel().cells(),
                     MutableFieldView<double>::fromHost(divQ));
  for (const auto& c : divQ.window()) EXPECT_NEAR(divQ[c], 0.0, 1e-9);
}

TEST(TracerEdge, AxisAlignedRaysHaveZeroComponents) {
  // Rays exactly along +x must march without NaNs (tMax/tDelta are
  // infinite on y/z) and hit the wall with the correct attenuation.
  auto grid = Grid::makeSingleLevel(Vector(0.0), Vector(1.0), IntVector(8),
                                    IntVector(8));
  CCVariable<double> abskg(grid->fineLevel().cells(), 2.0);
  CCVariable<double> sig(grid->fineLevel().cells(), 0.0);
  CCVariable<CellType> ct(grid->fineLevel().cells(), CellType::Flow);
  TraceLevel tl{LevelGeom::from(grid->fineLevel()),
                RadiationFieldsView{FieldView<double>::fromHost(abskg),
                                    FieldView<double>::fromHost(sig),
                                    FieldView<CellType>::fromHost(ct)},
                grid->fineLevel().cells()};
  TraceConfig cfg;
  cfg.threshold = 1e-14;
  Tracer tracer({tl}, WallProperties{1.0 / M_PI, 1.0}, cfg);
  // From the center straight to the +x wall: path 0.5, transmissivity
  // exp(-2*0.5); wall emits 1/pi.
  const double I =
      tracer.traceRay(Vector(0.5, 0.5, 0.5), Vector(1, 0, 0));
  EXPECT_NEAR(I, (1.0 / M_PI) * std::exp(-1.0), 1e-9);
  // Diagonal in x-y (z component zero).
  const double Id = tracer.traceRay(Vector(0.5, 0.5, 0.5),
                                    Vector(std::sqrt(0.5), std::sqrt(0.5), 0));
  const double path = std::sqrt(2.0) * 0.5;
  EXPECT_NEAR(Id, (1.0 / M_PI) * std::exp(-2.0 * path), 1e-9);
}

TEST(TracerEdge, DomainNotAnchoredAtOrigin) {
  auto grid = Grid::makeSingleLevel(Vector(-3.0, 5.0, 10.0),
                                    Vector(-2.0, 6.0, 11.0), IntVector(8),
                                    IntVector(8));
  RadiationProblem prob = uniformMedium(4.0, 1.0);
  CCVariable<double> abskg(grid->fineLevel().cells(), 0.0);
  CCVariable<double> sig(grid->fineLevel().cells(), 0.0);
  CCVariable<CellType> ct(grid->fineLevel().cells(), CellType::Flow);
  initializeProperties(grid->fineLevel(), prob, abskg, sig, ct);
  TraceLevel tl{LevelGeom::from(grid->fineLevel()),
                RadiationFieldsView{FieldView<double>::fromHost(abskg),
                                    FieldView<double>::fromHost(sig),
                                    FieldView<CellType>::fromHost(ct)},
                grid->fineLevel().cells()};
  TraceConfig cfg;
  cfg.nDivQRays = 8;
  cfg.threshold = 1e-12;
  Tracer tracer({tl}, WallProperties{1.0 / M_PI, 1.0}, cfg);
  CCVariable<double> divQ(grid->fineLevel().cells(), 0.0);
  tracer.computeDivQ(grid->fineLevel().cells(),
                     MutableFieldView<double>::fromHost(divQ));
  for (const auto& c : divQ.window()) EXPECT_NEAR(divQ[c], 0.0, 1e-9);
}

TEST(TracerEdge, CellCenterEmissionModeIsDeterministic) {
  auto grid = Grid::makeSingleLevel(Vector(0.0), Vector(1.0), IntVector(8),
                                    IntVector(8));
  RadiationProblem prob = burnsChriston();
  CCVariable<double> abskg(grid->fineLevel().cells(), 0.0);
  CCVariable<double> sig(grid->fineLevel().cells(), 0.0);
  CCVariable<CellType> ct(grid->fineLevel().cells(), CellType::Flow);
  initializeProperties(grid->fineLevel(), prob, abskg, sig, ct);
  TraceLevel tl{LevelGeom::from(grid->fineLevel()),
                RadiationFieldsView{FieldView<double>::fromHost(abskg),
                                    FieldView<double>::fromHost(sig),
                                    FieldView<CellType>::fromHost(ct)},
                grid->fineLevel().cells()};
  TraceConfig cfg;
  cfg.nDivQRays = 10;
  cfg.jitterRayOrigin = false;
  Tracer a({tl}, WallProperties{0.0, 1.0}, cfg);
  Tracer b({tl}, WallProperties{0.0, 1.0}, cfg);
  const IntVector probe(3, 4, 5);
  EXPECT_EQ(a.meanIncomingIntensity(probe), b.meanIncomingIntensity(probe));
}

TEST(DomConvergence, RefiningTheMeshConverges) {
  // Successive mesh refinement of DOM on Burns & Christon: the change
  // between successive resolutions shrinks (false scattering is a
  // discretization error, paper Section III-A).
  auto solveCenter = [](int n) {
    auto grid = Grid::makeSingleLevel(Vector(0.0), Vector(1.0),
                                      IntVector(n), IntVector(n));
    RadiationProblem prob = burnsChriston();
    CCVariable<double> abskg(grid->fineLevel().cells(), 0.0);
    CCVariable<double> sig(grid->fineLevel().cells(), 0.0);
    CCVariable<CellType> ct(grid->fineLevel().cells(), CellType::Flow);
    initializeProperties(grid->fineLevel(), prob, abskg, sig, ct);
    DomSolver solver(
        LevelGeom::from(grid->fineLevel()),
        RadiationFieldsView{FieldView<double>::fromHost(abskg),
                            FieldView<double>::fromHost(sig),
                            FieldView<CellType>::fromHost(ct)},
        WallProperties{0.0, 1.0}, 4);
    CCVariable<double> G(grid->fineLevel().cells(), 0.0);
    solver.computeIncidentRadiation(G);
    const IntVector c(n / 2, n / 2, n / 2);
    return 4.0 * M_PI * abskg[c] * (sig[c] - G[c] / (4.0 * M_PI));
  };
  const double q8 = solveCenter(8);
  const double q16 = solveCenter(16);
  const double q32 = solveCenter(32);
  EXPECT_LT(std::abs(q32 - q16), std::abs(q16 - q8));
  // All in a physically sensible band.
  for (double q : {q8, q16, q32}) {
    EXPECT_GT(q, 1.0);
    EXPECT_LT(q, 4.0);
  }
}

}  // namespace
}  // namespace rmcrt::core
