/// Property sweeps (TEST_P) over the distributed RMCRT pipeline: for any
/// combination of fine patch size, rank count and load-balancing
/// strategy, divQ must equal the serial two-level solve BITWISE — the
/// decomposition-independence property the counter-based RNG guarantees
/// and the staging machinery must preserve.

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <tuple>
#include <vector>

#include "core/problems.h"
#include "core/rmcrt_component.h"
#include "grid/load_balancer.h"
#include "runtime/scheduler.h"

namespace rmcrt::core {
namespace {

using grid::Grid;
using grid::LbStrategy;
using grid::LoadBalancer;
using runtime::Scheduler;

using SweepParam = std::tuple<int /*patchSize*/, int /*ranks*/, LbStrategy>;

class PipelineSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PipelineSweep, DistributedMatchesSerialBitwise) {
  const auto [patchSize, ranks, strategy] = GetParam();
  auto grid = Grid::makeTwoLevel(Vector(0.0), Vector(1.0), IntVector(16),
                                 IntVector(4), IntVector(patchSize),
                                 IntVector(2));
  RmcrtSetup setup;
  setup.problem = burnsChriston();
  setup.trace.nDivQRays = 6;
  setup.trace.seed = 31;
  setup.roiHalo = 2;

  auto lb = std::make_shared<LoadBalancer>(*grid, ranks, strategy);
  comm::Communicator world(ranks);
  std::vector<std::unique_ptr<Scheduler>> scheds;
  for (int r = 0; r < ranks; ++r)
    scheds.push_back(std::make_unique<Scheduler>(grid, lb, world, r));
  std::vector<std::thread> threads;
  for (int r = 0; r < ranks; ++r) {
    threads.emplace_back([&, r] {
      RmcrtComponent::registerTwoLevelPipeline(*scheds[r], setup);
      scheds[r]->executeTimestep();
    });
  }
  for (auto& t : threads) t.join();

  const grid::CCVariable<double> serial =
      RmcrtComponent::solveSerialTwoLevel(*grid, setup);
  for (auto& s : scheds) {
    for (int pid :
         s->loadBalancer().patchesOf(s->rank(), *grid, 1)) {
      const auto& divQ = s->newDW().get<double>(RmcrtLabels::divQ, pid);
      for (const auto& c : grid->patchById(pid)->cells())
        ASSERT_DOUBLE_EQ(divQ[c], serial[c])
            << "patch " << pid << " cell " << c;
    }
  }
}

std::string sweepName(
    const ::testing::TestParamInfo<SweepParam>& info) {
  const auto [patch, ranks, strategy] = info.param;
  const char* s = strategy == LbStrategy::Block
                      ? "Block"
                      : (strategy == LbStrategy::RoundRobin ? "RoundRobin"
                                                            : "Morton");
  return "p" + std::to_string(patch) + "_r" + std::to_string(ranks) + "_" +
         s;
}

INSTANTIATE_TEST_SUITE_P(
    PatchRankStrategy, PipelineSweep,
    ::testing::Combine(::testing::Values(4, 8, 16),
                       ::testing::Values(1, 2, 5),
                       ::testing::Values(LbStrategy::Block,
                                         LbStrategy::Morton)),
    sweepName);

/// Refinement-ratio sweep for the serial two-level tracer: RR 2 and RR 4
/// (the paper says "typically 2 or 4") must both approximate the
/// single-level answer, with RR 2 at least as accurate.
class RefinementRatioSweep : public ::testing::TestWithParam<int> {};

TEST_P(RefinementRatioSweep, TwoLevelTracksSingleLevel) {
  const int rr = GetParam();
  auto grid2 = Grid::makeTwoLevel(Vector(0.0), Vector(1.0), IntVector(16),
                                  IntVector(rr), IntVector(4),
                                  IntVector(std::max(1, 16 / rr / 2)));
  auto grid1 = Grid::makeSingleLevel(Vector(0.0), Vector(1.0),
                                     IntVector(16), IntVector(16));
  RmcrtSetup setup;
  setup.problem = burnsChriston();
  setup.trace.nDivQRays = 120;
  setup.trace.seed = 8;
  setup.roiHalo = 3;

  const auto two = RmcrtComponent::solveSerialTwoLevel(*grid2, setup);
  const auto one = RmcrtComponent::solveSerialSingleLevel(*grid1, setup);
  double num = 0, den = 0;
  for (const auto& c : two.window()) {
    num += (two[c] - one[c]) * (two[c] - one[c]);
    den += one[c] * one[c];
  }
  EXPECT_LT(std::sqrt(num / den), 0.10)
      << "RR " << rr << " deviates too much from single-level";
}

INSTANTIATE_TEST_SUITE_P(RR, RefinementRatioSweep, ::testing::Values(2, 4),
                         [](const auto& info) {
                           return "RR" + std::to_string(info.param);
                         });

/// Ray-count sweep: divQ variance shrinks monotonically (in aggregate)
/// with rays per cell.
class RayCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(RayCountSweep, DivQWithinPhysicalBounds) {
  auto grid = Grid::makeSingleLevel(Vector(0.0), Vector(1.0), IntVector(8),
                                    IntVector(8));
  RmcrtSetup setup;
  setup.problem = burnsChriston();
  setup.trace.nDivQRays = GetParam();
  const auto divQ = RmcrtComponent::solveSerialSingleLevel(*grid, setup);
  // Physical bounds: 0 <= divQ <= 4*pi*kappa*sigmaT4/pi = 4*kappa*sigmaT4
  // (cold walls: no cell can gain, none can lose more than it emits).
  for (const auto& c : divQ.window()) {
    EXPECT_GT(divQ[c], -0.3);  // small MC noise below zero allowed
    EXPECT_LT(divQ[c], 4.0 * 1.0 * 1.0 + 0.3);
  }
}

INSTANTIATE_TEST_SUITE_P(Rays, RayCountSweep,
                         ::testing::Values(1, 10, 50, 100),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace rmcrt::core
