/// tileCells contract: tiles exactly partition the input range (every
/// cell in exactly one tile) for divisible and non-divisible tile
/// shapes, the tile count matches the closed-form ceil-div formula the
/// reserve() uses, and degenerate inputs behave.

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "core/ray_tracer.h"

namespace rmcrt::core {
namespace {

int ceilDiv(int a, int b) { return (a + b - 1) / b; }

void expectExactPartition(const CellRange& cells, const IntVector& tileSize) {
  const std::vector<CellRange> tiles = tileCells(cells, tileSize);

  const IntVector ts(std::max(1, tileSize.x()), std::max(1, tileSize.y()),
                     std::max(1, tileSize.z()));
  const IntVector sz = cells.size();
  const std::size_t expectedCount =
      static_cast<std::size_t>(ceilDiv(sz.x(), ts.x())) *
      ceilDiv(sz.y(), ts.y()) * ceilDiv(sz.z(), ts.z());
  EXPECT_EQ(tiles.size(), expectedCount);

  // Exact coverage, no overlap: each cell appears exactly once.
  std::set<std::tuple<int, int, int>> seen;
  std::int64_t total = 0;
  for (const CellRange& t : tiles) {
    EXPECT_TRUE(cells.contains(t.low()));
    EXPECT_TRUE(cells.contains(t.high() - IntVector(1)));
    for (const IntVector& c : t) {
      EXPECT_TRUE(seen.insert({c.x(), c.y(), c.z()}).second)
          << "cell " << c << " in two tiles";
      ++total;
    }
    // No tile exceeds the requested shape.
    EXPECT_LE(t.size().x(), ts.x());
    EXPECT_LE(t.size().y(), ts.y());
    EXPECT_LE(t.size().z(), ts.z());
  }
  EXPECT_EQ(total, cells.volume());
}

TEST(TileCells, DivisibleShapeExactPartition) {
  expectExactPartition(CellRange(IntVector(0), IntVector(16)),
                       IntVector(8, 8, 8));
}

TEST(TileCells, NonDivisibleShapeExactPartition) {
  // 10/4 -> tiles of 4,4,2 per axis; remainder tiles must stay in range.
  expectExactPartition(CellRange(IntVector(0), IntVector(10)),
                       IntVector(4, 4, 4));
  // Mixed per-axis remainders, negative-offset window.
  expectExactPartition(CellRange(IntVector(-3, 1, -7), IntVector(9, 14, 2)),
                       IntVector(5, 3, 7));
  // Tile larger than the range: one tile, the range itself.
  const auto tiles = tileCells(CellRange(IntVector(0), IntVector(4)),
                               IntVector(64, 64, 64));
  ASSERT_EQ(tiles.size(), 1u);
  EXPECT_EQ(tiles[0], CellRange(IntVector(0), IntVector(4)));
}

TEST(TileCells, TileSizeClampedToOne) {
  // Non-positive components clamp to 1 cell per axis.
  expectExactPartition(CellRange(IntVector(0), IntVector(3)),
                       IntVector(0, -2, 1));
}

TEST(TileCells, EmptyRangeYieldsNoTiles) {
  EXPECT_TRUE(
      tileCells(CellRange(IntVector(5), IntVector(5)), IntVector(8)).empty());
}

}  // namespace
}  // namespace rmcrt::core
