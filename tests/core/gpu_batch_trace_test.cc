/// Integration of the concurrent GPU task executor with the RMCRT kernel
/// and the level database: many patch tasks in flight on streams, each
/// staging its ROI privately while sharing the single coarse-level device
/// copy — the full Section III-C execution pattern — validated bitwise
/// against the serial solver. Properties travel as fused PackedCell
/// records: one array per ROI, one shared coarse array in the level DB.

#include <gtest/gtest.h>

#include <vector>

#include "core/problems.h"
#include "core/rmcrt_component.h"
#include "gpu/gpu_task_executor.h"
#include "grid/operators.h"

namespace rmcrt::core {
namespace {

using grid::CCVariable;
using grid::CellType;
using grid::Grid;

TEST(GpuBatchTrace, ConcurrentPatchTasksShareLevelDbAndMatchSerial) {
  auto grid = Grid::makeTwoLevel(Vector(0.0), Vector(1.0), IntVector(16),
                                 IntVector(4), IntVector(4), IntVector(4));
  RmcrtSetup setup;
  setup.problem = burnsChriston();
  setup.trace.nDivQRays = 8;
  setup.trace.seed = 13;
  setup.roiHalo = 2;

  const grid::Level& fine = grid->fineLevel();
  const grid::Level& coarse = grid->coarseLevel();

  // Host fields (what the DataWarehouse would stage).
  CCVariable<double> fAbs(fine.cells(), 0.0), fSig(fine.cells(), 0.0);
  CCVariable<CellType> fCt(fine.cells(), CellType::Flow);
  initializeProperties(fine, setup.problem, fAbs, fSig, fCt);
  CCVariable<double> cAbs(coarse.cells(), 0.0), cSig(coarse.cells(), 0.0);
  CCVariable<CellType> cCt(coarse.cells(), CellType::Flow);
  grid::coarsenAverage(fAbs, IntVector(4), cAbs, coarse.cells());
  grid::coarsenAverage(fSig, IntVector(4), cSig, coarse.cells());
  grid::coarsenCellType(fCt, IntVector(4), cCt, coarse.cells());

  // Fused record arrays — the layout the kernel marches.
  const PackedLevelField finePacked(
      RadiationFieldsView{FieldView<double>::fromHost(fAbs),
                          FieldView<double>::fromHost(fSig),
                          FieldView<CellType>::fromHost(fCt)});
  const PackedLevelField coarsePacked(
      RadiationFieldsView{FieldView<double>::fromHost(cAbs),
                          FieldView<double>::fromHost(cSig),
                          FieldView<CellType>::fromHost(cCt)});

  gpu::GpuDevice::Config cfg;
  cfg.globalMemoryBytes = 64 << 20;
  cfg.workerSlots = 2;
  gpu::GpuDevice dev(cfg);
  gpu::GpuDataWarehouse gdw(dev);

  // Shared coarse upload happens once, up front (level database): ONE
  // copy where the unpacked layout staged three.
  gdw.getOrUploadLevelVarRaw(RmcrtLabels::packedRad, 0, coarsePacked.data(),
                             coarsePacked.window(), sizeof(PackedCell));

  const WallProperties walls{0.0, 1.0};
  std::vector<CCVariable<double>> results;
  results.reserve(fine.numPatches());
  for (const grid::Patch& p : fine.patches())
    results.emplace_back(p.cells(), 0.0);

  std::vector<gpu::GpuPatchTask> tasks;
  // Per-task host ROI record arrays, alive until the executor finishes
  // (uploads are enqueued on streams).
  std::vector<PackedLevelField> roiPacked(fine.numPatches());
  for (std::size_t i = 0; i < fine.numPatches(); ++i) {
    // (patch reference is re-bound inside each lambda via init-capture)
    gpu::GpuPatchTask t;
    t.stage = [&, i, &p = fine.patch(i)](gpu::GpuStream& s) {
      // Private ROI staging: fuse the ghosted window into records, then
      // ship ONE array.
      const CellRange roi =
          p.ghostWindow(setup.roiHalo).intersect(fine.cells());
      CCVariable<double> roiAbs(roi, 0.0), roiSig(roi, 0.0);
      CCVariable<CellType> roiCt(roi, CellType::Flow);
      roiAbs.copyRegion(fAbs, roi);
      roiSig.copyRegion(fSig, roi);
      roiCt.copyRegion(fCt, roi);
      roiPacked[i].pack(
          RadiationFieldsView{FieldView<double>::fromHost(roiAbs),
                              FieldView<double>::fromHost(roiSig),
                              FieldView<CellType>::fromHost(roiCt)});
      gdw.putPatchVarRaw(RmcrtLabels::packedRad, p.id(), roiPacked[i].data(),
                         roiPacked[i].window(), sizeof(PackedCell), &s);
      gdw.allocatePatchVar("divQ", p.id(), p.cells(), sizeof(double));
      // The CCVariable temporaries die here but the record array outlives
      // the enqueued copy (roiPacked spans the executor run); still sync
      // the staging copy for symmetry with the production path.
      s.synchronize();
    };
    t.kernel = [&, &p = fine.patch(i)] {
      // Packed-only levels: `fields` stays invalid on the device.
      TraceLevel fineTL{
          LevelGeom::from(fine), RadiationFieldsView{},
          gdw.getPatchVar(RmcrtLabels::packedRad, p.id()).window,
          PackedFieldView::fromDevice(
              gdw.getPatchVar(RmcrtLabels::packedRad, p.id()))};
      TraceLevel coarseTL{
          LevelGeom::from(coarse), RadiationFieldsView{}, coarse.cells(),
          PackedFieldView::fromDevice(gdw.getOrUploadLevelVarRaw(
              RmcrtLabels::packedRad, 0, coarsePacked.data(),
              coarsePacked.window(), sizeof(PackedCell)))};
      Tracer tracer({fineTL, coarseTL}, walls, setup.trace);
      gpu::DeviceVar out = gdw.getPatchVar("divQ", p.id());
      tracer.computeDivQ(p.cells(),
                         MutableFieldView<double>::fromDevice(out));
    };
    t.finish = [&, i, &p = fine.patch(i)](gpu::GpuStream& s) {
      gdw.fetchPatchVar("divQ", p.id(), results[i], &s);
      s.synchronize();
      gdw.removePatchVar(RmcrtLabels::packedRad, p.id());
      gdw.removePatchVar("divQ", p.id());
    };
    tasks.push_back(std::move(t));
  }

  const gpu::ExecutorStats stats = runGpuTasks(dev, tasks, 4);
  EXPECT_EQ(stats.tasksRun, static_cast<int>(fine.numPatches()));
  EXPECT_GT(stats.maxConcurrentResident, 1)
      << "batch execution should actually overlap tasks";
  EXPECT_EQ(gdw.numLevelVarCopies(), 1u);

  const CCVariable<double> serial =
      RmcrtComponent::solveSerialTwoLevel(*grid, setup);
  for (std::size_t i = 0; i < fine.numPatches(); ++i) {
    for (const auto& c : fine.patch(i).cells())
      ASSERT_DOUBLE_EQ(results[i][c], serial[c])
          << "patch " << i << " cell " << c;
  }
  // After the batch, only the shared level database remains resident:
  // one fused record array covering the coarse level.
  const std::size_t levelBytes =
      mem::MmapArena::roundToPages(coarsePacked.sizeBytes());
  EXPECT_EQ(dev.bytesInUse(), levelBytes);
}

}  // namespace
}  // namespace rmcrt::core
