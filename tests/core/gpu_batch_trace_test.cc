/// Integration of the concurrent GPU task executor with the RMCRT kernel
/// and the level database: many patch tasks in flight on streams, each
/// staging its ROI privately while sharing the single coarse-level device
/// copy — the full Section III-C execution pattern — validated bitwise
/// against the serial solver.

#include <gtest/gtest.h>

#include <vector>

#include "core/problems.h"
#include "core/rmcrt_component.h"
#include "gpu/gpu_task_executor.h"
#include "grid/operators.h"

namespace rmcrt::core {
namespace {

using grid::CCVariable;
using grid::CellType;
using grid::Grid;

TEST(GpuBatchTrace, ConcurrentPatchTasksShareLevelDbAndMatchSerial) {
  auto grid = Grid::makeTwoLevel(Vector(0.0), Vector(1.0), IntVector(16),
                                 IntVector(4), IntVector(4), IntVector(4));
  RmcrtSetup setup;
  setup.problem = burnsChriston();
  setup.trace.nDivQRays = 8;
  setup.trace.seed = 13;
  setup.roiHalo = 2;

  const grid::Level& fine = grid->fineLevel();
  const grid::Level& coarse = grid->coarseLevel();

  // Host fields (what the DataWarehouse would stage).
  CCVariable<double> fAbs(fine.cells(), 0.0), fSig(fine.cells(), 0.0);
  CCVariable<CellType> fCt(fine.cells(), CellType::Flow);
  initializeProperties(fine, setup.problem, fAbs, fSig, fCt);
  CCVariable<double> cAbs(coarse.cells(), 0.0), cSig(coarse.cells(), 0.0);
  CCVariable<CellType> cCt(coarse.cells(), CellType::Flow);
  grid::coarsenAverage(fAbs, IntVector(4), cAbs, coarse.cells());
  grid::coarsenAverage(fSig, IntVector(4), cSig, coarse.cells());
  grid::coarsenCellType(fCt, IntVector(4), cCt, coarse.cells());

  gpu::GpuDevice::Config cfg;
  cfg.globalMemoryBytes = 64 << 20;
  cfg.workerSlots = 2;
  gpu::GpuDevice dev(cfg);
  gpu::GpuDataWarehouse gdw(dev);

  // Shared coarse upload happens once, up front (level database).
  gdw.getOrUploadLevelVar("abskg", 0, cAbs);
  gdw.getOrUploadLevelVar("sigmaT4OverPi", 0, cSig);
  gdw.getOrUploadLevelVar("cellType", 0, cCt);

  const WallProperties walls{0.0, 1.0};
  std::vector<CCVariable<double>> results;
  results.reserve(fine.numPatches());
  for (const grid::Patch& p : fine.patches())
    results.emplace_back(p.cells(), 0.0);

  std::vector<gpu::GpuPatchTask> tasks;
  for (std::size_t i = 0; i < fine.numPatches(); ++i) {
    // (patch reference is re-bound inside each lambda via init-capture)
    gpu::GpuPatchTask t;
    t.stage = [&, i, &p = fine.patch(i)](gpu::GpuStream& s) {
      // Private ROI staging (ghosted copies of the fine fields).
      const CellRange roi =
          p.ghostWindow(setup.roiHalo).intersect(fine.cells());
      CCVariable<double> roiAbs(roi, 0.0), roiSig(roi, 0.0);
      CCVariable<CellType> roiCt(roi, CellType::Flow);
      roiAbs.copyRegion(fAbs, roi);
      roiSig.copyRegion(fSig, roi);
      roiCt.copyRegion(fCt, roi);
      gdw.putPatchVar("abskg", p.id(), roiAbs, &s);
      gdw.putPatchVar("sigmaT4OverPi", p.id(), roiSig, &s);
      gdw.putPatchVar("cellType", p.id(), roiCt, &s);
      gdw.allocatePatchVar("divQ", p.id(), p.cells(), sizeof(double));
      // NOTE: host ROI temporaries die here, but the stream copied them
      // synchronously? No: uploads are enqueued. Keep them alive by
      // synchronizing the staging copies now (cheap at this scale).
      s.synchronize();
    };
    t.kernel = [&, &p = fine.patch(i)] {
      TraceLevel fineTL{
          LevelGeom::from(fine),
          RadiationFieldsView{
              FieldView<double>::fromDevice(gdw.getPatchVar("abskg", p.id())),
              FieldView<double>::fromDevice(
                  gdw.getPatchVar("sigmaT4OverPi", p.id())),
              FieldView<CellType>::fromDevice(
                  gdw.getPatchVar("cellType", p.id()))},
          gdw.getPatchVar("abskg", p.id()).window};
      TraceLevel coarseTL{
          LevelGeom::from(coarse),
          RadiationFieldsView{
              FieldView<double>::fromDevice(
                  gdw.getOrUploadLevelVar("abskg", 0, cAbs)),
              FieldView<double>::fromDevice(
                  gdw.getOrUploadLevelVar("sigmaT4OverPi", 0, cSig)),
              FieldView<CellType>::fromDevice(
                  gdw.getOrUploadLevelVar("cellType", 0, cCt))},
          coarse.cells()};
      Tracer tracer({fineTL, coarseTL}, walls, setup.trace);
      gpu::DeviceVar out = gdw.getPatchVar("divQ", p.id());
      tracer.computeDivQ(p.cells(),
                         MutableFieldView<double>::fromDevice(out));
    };
    t.finish = [&, i, &p = fine.patch(i)](gpu::GpuStream& s) {
      gdw.fetchPatchVar("divQ", p.id(), results[i], &s);
      s.synchronize();
      gdw.removePatchVar("abskg", p.id());
      gdw.removePatchVar("sigmaT4OverPi", p.id());
      gdw.removePatchVar("cellType", p.id());
      gdw.removePatchVar("divQ", p.id());
    };
    tasks.push_back(std::move(t));
  }

  const gpu::ExecutorStats stats = runGpuTasks(dev, tasks, 4);
  EXPECT_EQ(stats.tasksRun, static_cast<int>(fine.numPatches()));
  EXPECT_GT(stats.maxConcurrentResident, 1)
      << "batch execution should actually overlap tasks";
  EXPECT_EQ(gdw.numLevelVarCopies(), 3u);

  const CCVariable<double> serial =
      RmcrtComponent::solveSerialTwoLevel(*grid, setup);
  for (std::size_t i = 0; i < fine.numPatches(); ++i) {
    for (const auto& c : fine.patch(i).cells())
      ASSERT_DOUBLE_EQ(results[i][c], serial[c])
          << "patch " << i << " cell " << c;
  }
  // After the batch, only the shared level database remains resident.
  const std::size_t levelBytes =
      mem::MmapArena::roundToPages(cAbs.sizeBytes()) +
      mem::MmapArena::roundToPages(cSig.sizeBytes()) +
      mem::MmapArena::roundToPages(cCt.sizeBytes());
  EXPECT_EQ(dev.bytesInUse(), levelBytes);
}

}  // namespace
}  // namespace rmcrt::core
