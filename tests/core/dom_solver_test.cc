#include "core/dom_solver.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/problems.h"
#include "grid/grid.h"
#include "util/stats.h"

namespace rmcrt::core {
namespace {

using grid::CCVariable;
using grid::CellType;
using grid::Grid;

class QuadratureOrders : public ::testing::TestWithParam<int> {};

TEST_P(QuadratureOrders, WeightsSumToFourPi) {
  const auto quad = levelSymmetricQuadrature(GetParam());
  double sum = 0.0;
  for (const auto& o : quad) sum += o.weight;
  EXPECT_NEAR(sum, 4.0 * M_PI, 1e-12);
}

TEST_P(QuadratureOrders, DirectionsAreUnitVectors) {
  for (const auto& o : levelSymmetricQuadrature(GetParam()))
    EXPECT_NEAR(o.dir.length(), 1.0, 1e-6);
}

TEST_P(QuadratureOrders, FirstMomentVanishes) {
  Vector m(0.0);
  for (const auto& o : levelSymmetricQuadrature(GetParam()))
    m += o.dir * o.weight;
  EXPECT_NEAR(m.x(), 0.0, 1e-12);
  EXPECT_NEAR(m.y(), 0.0, 1e-12);
  EXPECT_NEAR(m.z(), 0.0, 1e-12);
}

TEST_P(QuadratureOrders, SecondMomentIsIsotropic) {
  // Integral of s_i s_j dOmega = (4*pi/3) delta_ij for exact quadrature.
  double xx = 0, yy = 0, zz = 0, xy = 0;
  for (const auto& o : levelSymmetricQuadrature(GetParam())) {
    xx += o.weight * o.dir.x() * o.dir.x();
    yy += o.weight * o.dir.y() * o.dir.y();
    zz += o.weight * o.dir.z() * o.dir.z();
    xy += o.weight * o.dir.x() * o.dir.y();
  }
  EXPECT_NEAR(xx, 4.0 * M_PI / 3.0, 1e-9);
  EXPECT_NEAR(yy, 4.0 * M_PI / 3.0, 1e-9);
  EXPECT_NEAR(zz, 4.0 * M_PI / 3.0, 1e-9);
  EXPECT_NEAR(xy, 0.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(S2S4, QuadratureOrders, ::testing::Values(2, 4),
                         [](const auto& info) {
                           return "S" + std::to_string(info.param);
                         });

TEST(QuadratureCounts, S2Has8S4Has24) {
  EXPECT_EQ(levelSymmetricQuadrature(2).size(), 8u);
  EXPECT_EQ(levelSymmetricQuadrature(4).size(), 24u);
}

struct DomHarness {
  std::shared_ptr<Grid> grid;
  CCVariable<double> abskg, sig;
  CCVariable<CellType> ct;
  WallProperties walls;

  DomHarness(const RadiationProblem& prob, int n)
      : grid(Grid::makeSingleLevel(Vector(0.0), Vector(1.0), IntVector(n),
                                   IntVector(n))),
        abskg(grid->fineLevel().cells(), 0.0),
        sig(grid->fineLevel().cells(), 0.0),
        ct(grid->fineLevel().cells(), CellType::Flow),
        walls{prob.wallSigmaT4OverPi, prob.wallEmissivity} {
    initializeProperties(grid->fineLevel(), prob, abskg, sig, ct);
  }

  DomSolver makeSolver(int order = 4) const {
    return DomSolver(LevelGeom::from(grid->fineLevel()),
                     RadiationFieldsView{FieldView<double>::fromHost(abskg),
                                         FieldView<double>::fromHost(sig),
                                         FieldView<CellType>::fromHost(ct)},
                     walls, order);
  }
};

TEST(DomSolver, EquilibriumGivesZeroDivQ) {
  DomHarness h(uniformMedium(3.0, 1.0), 8);
  DomSolver solver = h.makeSolver();
  CCVariable<double> divQ(h.grid->fineLevel().cells(), -1.0);
  solver.computeDivQ(h.grid->fineLevel().cells(),
                     MutableFieldView<double>::fromHost(divQ));
  for (const auto& c : divQ.window())
    EXPECT_NEAR(divQ[c], 0.0, 1e-10) << "cell " << c;
}

TEST(DomSolver, ColdWallsLoseEnergyEverywhere) {
  RadiationProblem prob = uniformMedium(1.0, 1.0);
  prob.wallSigmaT4OverPi = 0.0;
  DomHarness h(prob, 16);
  DomSolver solver = h.makeSolver();
  CCVariable<double> divQ(h.grid->fineLevel().cells(), 0.0);
  solver.computeDivQ(h.grid->fineLevel().cells(),
                     MutableFieldView<double>::fromHost(divQ));
  for (const auto& c : divQ.window()) EXPECT_GT(divQ[c], 0.0);
  EXPECT_GT(divQ[IntVector(0, 0, 0)], divQ[IntVector(8, 8, 8)]);
}

TEST(DomSolver, SymmetryOfBurnsChristonField) {
  DomHarness h(burnsChriston(), 16);
  DomSolver solver = h.makeSolver();
  CCVariable<double> divQ(h.grid->fineLevel().cells(), 0.0);
  solver.computeDivQ(h.grid->fineLevel().cells(),
                     MutableFieldView<double>::fromHost(divQ));
  // The problem is symmetric under reflection through the domain center.
  for (int x = 0; x < 8; ++x) {
    const double a = divQ[IntVector(x, 8, 8)];
    const double b = divQ[IntVector(15 - x, 8, 8)];
    EXPECT_NEAR(a, b, 1e-9) << "x " << x;
  }
}

TEST(DomSolver, AgreesWithRmcrtOnBurnsChriston) {
  // The two methods approximate the same RTE: centerline divQ should
  // agree within combined discretization + Monte Carlo error.
  DomHarness h(burnsChriston(), 16);
  DomSolver dom = h.makeSolver(4);
  CCVariable<double> domQ(h.grid->fineLevel().cells(), 0.0);
  dom.computeDivQ(h.grid->fineLevel().cells(),
                  MutableFieldView<double>::fromHost(domQ));

  TraceLevel tl{LevelGeom::from(h.grid->fineLevel()),
                RadiationFieldsView{FieldView<double>::fromHost(h.abskg),
                                    FieldView<double>::fromHost(h.sig),
                                    FieldView<CellType>::fromHost(h.ct)},
                h.grid->fineLevel().cells()};
  TraceConfig cfg;
  cfg.nDivQRays = 400;
  cfg.threshold = 1e-8;
  Tracer tracer({tl}, h.walls, cfg);
  CCVariable<double> mcQ(h.grid->fineLevel().cells(), 0.0);
  std::vector<double> a, b;
  for (int x = 0; x < 16; ++x) {
    const IntVector c(x, 8, 8);
    const double meanI = tracer.meanIncomingIntensity(c);
    a.push_back(4.0 * M_PI * h.abskg[c] * (h.sig[c] - meanI));
    b.push_back(domQ[c]);
  }
  EXPECT_LT(relativeL2Error(a, b), 0.12)
      << "RMCRT and S4 DOM should agree within ~12% on the centerline";
}

TEST(DomSolver, S4RefinesOverS2) {
  // Against a high-ray-count RMCRT reference, S4 should be at least as
  // accurate as S2 on the benchmark centerline (ray effects shrink).
  DomHarness h(burnsChriston(), 16);
  TraceLevel tl{LevelGeom::from(h.grid->fineLevel()),
                RadiationFieldsView{FieldView<double>::fromHost(h.abskg),
                                    FieldView<double>::fromHost(h.sig),
                                    FieldView<CellType>::fromHost(h.ct)},
                h.grid->fineLevel().cells()};
  TraceConfig cfg;
  cfg.nDivQRays = 3000;
  cfg.threshold = 1e-8;
  Tracer tracer({tl}, h.walls, cfg);
  std::vector<double> ref;
  for (int x = 0; x < 16; ++x) {
    const IntVector c(x, 8, 8);
    ref.push_back(4.0 * M_PI * h.abskg[c] *
                  (h.sig[c] - tracer.meanIncomingIntensity(c)));
  }
  auto domError = [&](int order) {
    DomSolver solver = h.makeSolver(order);
    CCVariable<double> q(h.grid->fineLevel().cells(), 0.0);
    solver.computeDivQ(h.grid->fineLevel().cells(),
                       MutableFieldView<double>::fromHost(q));
    std::vector<double> v;
    for (int x = 0; x < 16; ++x) v.push_back(q[IntVector(x, 8, 8)]);
    return relativeL2Error(v, ref);
  };
  EXPECT_LE(domError(4), domError(2) * 1.1);
}

TEST(DomSolver, InteriorWallBlocksTransport) {
  // A cold interior wall between a hot slab and a probe cell: the probe's
  // incident radiation must be much smaller than without the wall.
  auto makeG = [&](bool withWall) {
    auto grid = Grid::makeSingleLevel(Vector(0.0), Vector(1.0),
                                      IntVector(16), IntVector(16));
    CCVariable<double> abskg(grid->fineLevel().cells(), 0.01);
    CCVariable<double> sig(grid->fineLevel().cells(), 0.0);
    CCVariable<CellType> ct(grid->fineLevel().cells(), CellType::Flow);
    for (const auto& c : abskg.window()) {
      if (c.x() >= 13) {
        abskg[c] = 50.0;
        sig[c] = 1.0;
      }
      if (withWall && c.x() == 8) ct[c] = CellType::Wall;
    }
    DomSolver solver(
        LevelGeom::from(grid->fineLevel()),
        RadiationFieldsView{FieldView<double>::fromHost(abskg),
                            FieldView<double>::fromHost(sig),
                            FieldView<CellType>::fromHost(ct)},
        WallProperties{0.0, 1.0}, 4);
    CCVariable<double> G(grid->fineLevel().cells(), 0.0);
    solver.computeIncidentRadiation(G);
    return G[IntVector(2, 8, 8)];
  };
  const double open = makeG(false);
  const double blocked = makeG(true);
  EXPECT_LT(blocked, 0.2 * open);
}

}  // namespace
}  // namespace rmcrt::core
