/// Equivalence harness for the 8-wide SIMD packet march (marchPacket8,
/// DESIGN.md §14) against the scalar packed march — the golden reference.
///
/// The packet path performs the exact same DDA arithmetic as the scalar
/// path (bitwise-identical cell sequences and segment lengths); the only
/// divergence is the vectorized exp (≤ ~2 ulp per segment), which
/// accumulates multiplicatively through the transmissivity. Per-ray
/// intensities therefore agree within a small ULP budget, not bitwise;
/// these tests pin that budget (kUlpTolerance) across wall hits,
/// extinction retirement, coarse-level handoff, degenerate directions,
/// and partial packets.
///
/// On hosts without AVX2 (or with RMCRT_NO_SIMD set — the CI fallback
/// job), simdActive() is false and every "SIMD" tracer here runs the
/// scalar dispatch: the comparisons still run and must then hold
/// bitwise, which exercises exactly the runtime-dispatch fallback the
/// non-AVX2 CI job exists to cover.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "core/problems.h"
#include "core/ray_tracer.h"
#include "grid/grid.h"
#include "grid/operators.h"

namespace rmcrt::core {
namespace {

using grid::CCVariable;
using grid::CellType;
using grid::Grid;

/// ULP budget for per-ray intensity agreement. Each marched segment
/// contributes ≤ ~2 ulp of exp divergence into the running
/// transmissivity product; with the extinction threshold at 1e-4 a ray
/// marches at most a few hundred segments, so a 4096-ulp budget carries
/// ~10x headroom while still catching any real marching divergence
/// (a wrong cell path or segment length shows up as ~1e6+ ulp).
constexpr std::uint64_t kUlpTolerance = 4096;

/// Distance in units-in-the-last-place between two doubles, via the
/// standard monotone reinterpretation of the IEEE bit pattern. a == b
/// (including +0 vs -0) is 0; any NaN is "infinitely" far.
std::uint64_t ulpDistance(double a, double b) {
  if (a == b) return 0;
  if (std::isnan(a) || std::isnan(b))
    return std::numeric_limits<std::uint64_t>::max();
  auto ordered = [](double x) {
    std::int64_t i;
    std::memcpy(&i, &x, sizeof(i));
    if (i < 0) i = std::numeric_limits<std::int64_t>::min() - i;
    return i;
  };
  const std::int64_t ia = ordered(a), ib = ordered(b);
  const std::uint64_t d = static_cast<std::uint64_t>(ia) -
                          static_cast<std::uint64_t>(ib);
  return d > 0x8000000000000000ULL ? ~d + 1 : d;
}

TEST(UlpDistanceSelfCheck, BehavesLikeUlps) {
  EXPECT_EQ(ulpDistance(1.0, 1.0), 0u);
  EXPECT_EQ(ulpDistance(0.0, -0.0), 0u);
  EXPECT_EQ(ulpDistance(1.0, std::nextafter(1.0, 2.0)), 1u);
  EXPECT_EQ(ulpDistance(1.0, std::nextafter(std::nextafter(1.0, 0.0), 0.0)),
            2u);
  EXPECT_GT(ulpDistance(1.0, 1.0 + 1e-9), 1000000u);
}

/// Owns the fields and grid behind a single-level tracer configuration.
struct SingleLevelSetup {
  std::shared_ptr<Grid> grid;
  CCVariable<double> abskg;
  CCVariable<double> sig;
  CCVariable<CellType> ct;
  WallProperties walls;

  SingleLevelSetup(const RadiationProblem& prob, const IntVector& n)
      : grid(Grid::makeSingleLevel(Vector(0.0), Vector(1.0), n, n)),
        abskg(grid->fineLevel().cells(), 0.0),
        sig(grid->fineLevel().cells(), 0.0),
        ct(grid->fineLevel().cells(), CellType::Flow),
        walls{prob.wallSigmaT4OverPi, prob.wallEmissivity} {
    initializeProperties(grid->fineLevel(), prob, abskg, sig, ct);
  }

  Tracer makeTracer(bool simd, TraceConfig cfg = TraceConfig{}) const {
    cfg.useSimd = simd;
    TraceLevel tl{LevelGeom::from(grid->fineLevel()),
                  RadiationFieldsView{FieldView<double>::fromHost(abskg),
                                      FieldView<double>::fromHost(sig),
                                      FieldView<CellType>::fromHost(ct)},
                  grid->fineLevel().cells()};
    return Tracer({tl}, walls, cfg);
  }
};

/// Deterministic ray bundle spanning the direction sphere plus the
/// degenerate cases: axis-aligned (two exactly-zero components, both
/// signs of zero), axis-plane diagonals, the corner diagonal, and
/// near-axis directions. Sized to leave a partial final packet.
void makeRayBundle(int n, std::vector<Vector>& origins,
                   std::vector<Vector>& dirs) {
  origins.clear();
  dirs.clear();
  const Vector special[] = {
      Vector(1.0, 0.0, 0.0),   Vector(-1.0, 0.0, 0.0),
      Vector(0.0, 1.0, -0.0),  Vector(0.0, -1.0, 0.0),
      Vector(-0.0, 0.0, 1.0),  Vector(0.0, -0.0, -1.0),
      Vector(std::sqrt(0.5), std::sqrt(0.5), 0.0),
      Vector(-std::sqrt(0.5), 0.0, std::sqrt(0.5)),
      Vector(1.0, 1.0, 1.0) / std::sqrt(3.0),
      Vector(-1.0, -1.0, -1.0) / std::sqrt(3.0),
      Vector(1.0, 1e-14, -1e-14).normalized(),
  };
  for (int i = 0; i < n; ++i) {
    Rng rng(/*seed=*/1234, IntVector(i, 2 * i, 3 * i),
            static_cast<std::uint32_t>(i));
    origins.push_back(Vector(0.05, 0.05, 0.05) +
                      Vector(rng.nextDouble(), rng.nextDouble(),
                             rng.nextDouble()) *
                          0.9);
    if (i < static_cast<int>(std::size(special)))
      dirs.push_back(special[static_cast<std::size_t>(i)]);
    else
      dirs.push_back(isotropicDirection(rng));
  }
}

void expectBundleParity(const Tracer& simd, const Tracer& scalar, int n) {
  std::vector<Vector> origins, dirs;
  makeRayBundle(n, origins, dirs);
  std::vector<double> iSimd(static_cast<std::size_t>(n), -1.0);
  std::vector<double> iScalar(static_cast<std::size_t>(n), -1.0);
  simd.traceRays(n, origins.data(), dirs.data(), iSimd.data());
  scalar.traceRays(n, origins.data(), dirs.data(), iScalar.data());
  for (int i = 0; i < n; ++i) {
    const std::size_t s = static_cast<std::size_t>(i);
    EXPECT_LE(ulpDistance(iSimd[s], iScalar[s]), kUlpTolerance)
        << "ray " << i << " dir " << dirs[s] << ": simd " << iSimd[s]
        << " vs scalar " << iScalar[s];
  }
}

TEST(SimdMarch, DispatchMatchesRuntimeSupport) {
  SingleLevelSetup setup(burnsChriston(), IntVector(8));
  const Tracer t = setup.makeTracer(/*simd=*/true);
  EXPECT_EQ(t.simdActive(), Tracer::simdSupported());
  const Tracer s = setup.makeTracer(/*simd=*/false);
  EXPECT_FALSE(s.simdActive());
}

TEST(SimdMarch, BurnsChristonBundleWithinUlpTolerance) {
  // The benchmark medium: no interior walls, absorbing enough that rays
  // both extinguish (lane retirement mid-packet) and reach the walls.
  SingleLevelSetup setup(burnsChriston(), IntVector(16));
  TraceConfig cfg;
  const Tracer simd = setup.makeTracer(true, cfg);
  const Tracer scalar = setup.makeTracer(false, cfg);
  expectBundleParity(simd, scalar, 203);  // partial final packet (203 % 8 != 0)
}

TEST(SimdMarch, PartialPacketsAllSizes) {
  // Every bundle size below and around one packet: lane refill and
  // dead-lane masking must be right for n = 1..19 (not just multiples
  // of 8), and each ray's result must be independent of bundle size.
  SingleLevelSetup setup(burnsChriston(), IntVector(8));
  const Tracer simd = setup.makeTracer(true);
  const Tracer scalar = setup.makeTracer(false);
  for (int n = 1; n <= 19; ++n) {
    SCOPED_TRACE("bundle size " + std::to_string(n));
    expectBundleParity(simd, scalar, n);
  }
}

TEST(SimdMarch, WallHeavyMediumRetiresLanesOnWalls) {
  // Near-transparent medium with hot walls: almost every ray retires on
  // a domain wall rather than by extinction.
  SingleLevelSetup setup(uniformMedium(0.05, 1.0), IntVector(16));
  TraceConfig cfg;
  cfg.threshold = 1e-10;
  expectBundleParity(setup.makeTracer(true, cfg),
                     setup.makeTracer(false, cfg), 100);
}

TEST(SimdMarch, InteriorWallCellsRetireLanes) {
  // A wall slab inside the domain exercises the packet march's cellType
  // gather and the wall-lane retirement mask (m_level0HasWalls is true).
  SingleLevelSetup setup(uniformMedium(0.5, 1.0), IntVector(16));
  for (const auto& c : setup.ct.window())
    if (c.x() == 11) setup.ct[c] = CellType::Wall;
  TraceConfig cfg;
  cfg.threshold = 1e-10;
  const Tracer simd = setup.makeTracer(true, cfg);
  const Tracer scalar = setup.makeTracer(false, cfg);
  expectBundleParity(simd, scalar, 100);
  // The slab must actually absorb: a +x ray from its doorstep sees the
  // wall emission immediately (identical in both paths up to ulps).
  const Vector o(10.5 / 16.0, 0.53, 0.51), d(1.0, 0.0, 0.0);
  double is = -1.0, ir = -1.0;
  simd.traceRays(1, &o, &d, &is);
  scalar.traceRays(1, &o, &d, &ir);
  EXPECT_LE(ulpDistance(is, ir), kUlpTolerance);
  EXPECT_GT(is, 0.0);
}

TEST(SimdMarch, HighExtinctionRetiresLanesEarly) {
  // Optically thick medium: every lane retires by the transmissivity
  // threshold within a few segments, churning the refill queue hard.
  SingleLevelSetup setup(uniformMedium(60.0, 1.0), IntVector(16));
  expectBundleParity(setup.makeTracer(true), setup.makeTracer(false), 64);
}

TEST(SimdMarch, MeanIntensityAndDivQParity) {
  // The production entry points: meanIncomingIntensity (packet bundle
  // per cell, identical RNG consumption) and computeDivQ.
  SingleLevelSetup setup(burnsChriston(), IntVector(16));
  TraceConfig cfg;
  cfg.nDivQRays = 48;
  cfg.seed = 11;
  const Tracer simd = setup.makeTracer(true, cfg);
  const Tracer scalar = setup.makeTracer(false, cfg);
  for (const IntVector& c :
       {IntVector(0, 0, 0), IntVector(8, 8, 8), IntVector(15, 3, 9)}) {
    const double a = simd.meanIncomingIntensity(c);
    const double b = scalar.meanIncomingIntensity(c);
    EXPECT_LE(ulpDistance(a, b), kUlpTolerance) << "cell " << c;
  }
  CCVariable<double> dqSimd(setup.grid->fineLevel().cells(), 0.0);
  CCVariable<double> dqScalar(setup.grid->fineLevel().cells(), 0.0);
  const CellRange probe(IntVector(4, 4, 4), IntVector(8, 8, 8));
  simd.computeDivQ(probe, MutableFieldView<double>::fromHost(dqSimd));
  scalar.computeDivQ(probe, MutableFieldView<double>::fromHost(dqScalar));
  for (const auto& c : probe) {
    // divQ differences pick up cancellation in (sigmaT4/pi - meanI), so
    // bound relative-to-magnitude rather than raw ulps.
    const double scale = std::max(
        {std::abs(dqSimd[c]), std::abs(dqScalar[c]), 1e-12});
    EXPECT_LE(std::abs(dqSimd[c] - dqScalar[c]) / scale, 1e-10)
        << "cell " << c;
  }
}

TEST(SimdMarch, SegmentCountsAgreeWithScalar) {
  // Ray geometry is bitwise identical between paths, so segment counts
  // can differ only where the exp divergence flips a ray's extinction
  // test on the exact threshold-straddling segment. Allow one segment of
  // slack per ray; with walls and moderate absorption that slack is
  // almost never consumed.
  SingleLevelSetup setup(burnsChriston(), IntVector(16));
  Tracer simd = setup.makeTracer(true);
  Tracer scalar = setup.makeTracer(false);
  std::vector<Vector> origins, dirs;
  const int n = 128;
  makeRayBundle(n, origins, dirs);
  std::vector<double> out(static_cast<std::size_t>(n));
  simd.traceRays(n, origins.data(), dirs.data(), out.data());
  scalar.traceRays(n, origins.data(), dirs.data(), out.data());
  const auto a = static_cast<std::int64_t>(simd.segmentCount());
  const auto b = static_cast<std::int64_t>(scalar.segmentCount());
  EXPECT_LE(std::abs(a - b), n);
  EXPECT_GT(a, 0);
}

TEST(SimdMarch, TwoLevelHandoffParity) {
  // Fine ROI + coarse continuation: rays leaving the fine allowed box
  // retire from the packet and finish on the coarse level through the
  // scalar march — intensities must still match the all-scalar result
  // within the ULP budget.
  auto grid = Grid::makeTwoLevel(Vector(0.0), Vector(1.0), IntVector(16),
                                 IntVector(4), IntVector(16), IntVector(4));
  const grid::Level& fine = grid->fineLevel();
  const grid::Level& coarse = grid->coarseLevel();
  RadiationProblem prob = burnsChriston();
  CCVariable<double> fAbs(fine.cells(), 0.0), fSig(fine.cells(), 0.0);
  CCVariable<CellType> fCt(fine.cells(), CellType::Flow);
  initializeProperties(fine, prob, fAbs, fSig, fCt);
  CCVariable<double> cAbs(coarse.cells(), 0.0), cSig(coarse.cells(), 0.0);
  CCVariable<CellType> cCt(coarse.cells(), CellType::Flow);
  grid::coarsenAverage(fAbs, fine.refinementRatio(), cAbs, coarse.cells());
  grid::coarsenAverage(fSig, fine.refinementRatio(), cSig, coarse.cells());
  grid::coarsenCellType(fCt, fine.refinementRatio(), cCt, coarse.cells());

  // Small ROI in the middle of the fine level so most rays hand off.
  const CellRange roi(IntVector(5, 5, 5), IntVector(11, 11, 11));
  const WallProperties walls{prob.wallSigmaT4OverPi, prob.wallEmissivity};
  auto makeTracer = [&](bool simdOn) {
    TraceConfig cfg;
    cfg.nDivQRays = 32;
    cfg.seed = 5;
    cfg.useSimd = simdOn;
    TraceLevel fineTL{LevelGeom::from(fine),
                      RadiationFieldsView{FieldView<double>::fromHost(fAbs),
                                          FieldView<double>::fromHost(fSig),
                                          FieldView<CellType>::fromHost(fCt)},
                      roi};
    TraceLevel coarseTL{
        LevelGeom::from(coarse),
        RadiationFieldsView{FieldView<double>::fromHost(cAbs),
                            FieldView<double>::fromHost(cSig),
                            FieldView<CellType>::fromHost(cCt)},
        coarse.cells()};
    return Tracer({fineTL, coarseTL}, walls, cfg);
  };
  const Tracer simd = makeTracer(true);
  const Tracer scalar = makeTracer(false);
  for (const IntVector& c :
       {IntVector(8, 8, 8), IntVector(6, 9, 10), IntVector(10, 5, 7)}) {
    const double a = simd.meanIncomingIntensity(c);
    const double b = scalar.meanIncomingIntensity(c);
    EXPECT_LE(ulpDistance(a, b), kUlpTolerance) << "cell " << c;
  }
}

TEST(SimdMarch, ScalarPathUnchangedByDispatchMachinery) {
  // The golden-reference guarantee: a useSimd=false tracer must produce
  // bitwise-identical results through traceRays and traceRay — the
  // packet-path plumbing cannot perturb the scalar march.
  SingleLevelSetup setup(burnsChriston(), IntVector(8));
  const Tracer t = setup.makeTracer(false);
  std::vector<Vector> origins, dirs;
  makeRayBundle(32, origins, dirs);
  std::vector<double> bundle(32);
  t.traceRays(32, origins.data(), dirs.data(), bundle.data());
  for (int i = 0; i < 32; ++i) {
    const std::size_t s = static_cast<std::size_t>(i);
    EXPECT_EQ(bundle[s], t.traceRay(origins[s], dirs[s])) << "ray " << i;
  }
}

// ---------------------------------------------------------------------
// Zero-length segment accounting (the hot-path counter fix): crossings
// with segLen == 0 — a ray starting exactly on the face it is about to
// cross, or the 2nd/3rd face crossings of an exact corner hit — are FP
// no-ops and must not count as marched segments.

TEST(SegmentAccounting, RayStartingOnAFaceSkipsTheZeroCrossing) {
  SingleLevelSetup setup(uniformMedium(0.25, 1.0), IntVector(8));
  TraceConfig cfg;
  cfg.threshold = 1e-12;
  Tracer t = setup.makeTracer(false, cfg);
  // Origin exactly on the low face of cell 3 (x = 3/8), marching -x:
  // the Amanatides-Woo setup clamps the first crossing to t = 0, a
  // zero-length segment in cell 3; the marched cells are 2, 1, 0.
  t.resetSegmentCount();
  t.traceRay(Vector(3.0 / 8.0, 0.51, 0.52), Vector(-1.0, 0.0, 0.0));
  EXPECT_EQ(t.segmentCount(), 3u);
}

TEST(SegmentAccounting, CornerDiagonalCountsOneSegmentPerSpan) {
  SingleLevelSetup setup(uniformMedium(0.25, 1.0), IntVector(8));
  TraceConfig cfg;
  cfg.threshold = 1e-12;
  Tracer t = setup.makeTracer(false, cfg);
  // From the exact cell corner at the domain center along the main
  // diagonal: every cell boundary is a 3-fold axis tie, where the x step
  // is followed by zero-length y and z crossings. Only the 4 real spans
  // (corner to corner, cells (4,4,4)..(7,7,7)) may count.
  t.resetSegmentCount();
  t.traceRay(Vector(0.5, 0.5, 0.5),
             Vector(1.0, 1.0, 1.0) / std::sqrt(3.0));
  EXPECT_EQ(t.segmentCount(), 4u);

  // And the packet path applies the identical rule.
  Tracer ts = setup.makeTracer(true, cfg);
  const Vector o(0.5, 0.5, 0.5);
  const Vector d = Vector(1.0, 1.0, 1.0) / std::sqrt(3.0);
  double out = 0.0;
  ts.resetSegmentCount();
  ts.traceRays(1, &o, &d, &out);
  EXPECT_EQ(ts.segmentCount(), 4u);
}

// ---------------------------------------------------------------------
// TraceConfig validation (the NaN-divQ fix): a non-positive ray count
// must be rejected at construction, not surface as NaN divQ later.

TEST(TraceConfigValidation, NonPositiveRayCountThrows) {
  SingleLevelSetup setup(burnsChriston(), IntVector(8));
  for (int bad : {0, -1, -100}) {
    TraceConfig cfg;
    cfg.nDivQRays = bad;
    EXPECT_THROW(setup.makeTracer(false, cfg), std::invalid_argument)
        << "nDivQRays = " << bad;
  }
  // And the boundary case is accepted and produces finite divQ.
  TraceConfig cfg;
  cfg.nDivQRays = 1;
  Tracer t = setup.makeTracer(false, cfg);
  EXPECT_TRUE(std::isfinite(t.meanIncomingIntensity(IntVector(4, 4, 4))));
}

}  // namespace
}  // namespace rmcrt::core
