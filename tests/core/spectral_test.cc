#include "core/spectral.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/problems.h"
#include "grid/grid.h"

namespace rmcrt::core {
namespace {

using grid::CCVariable;
using grid::CellType;
using grid::Grid;

struct SpectralHarness {
  std::shared_ptr<Grid> grid;
  CCVariable<double> abskg, sig;
  CCVariable<CellType> ct;
  WallProperties walls;

  explicit SpectralHarness(const RadiationProblem& prob, int n = 12)
      : grid(Grid::makeSingleLevel(Vector(0.0), Vector(1.0), IntVector(n),
                                   IntVector(n))),
        abskg(grid->fineLevel().cells(), 0.0),
        sig(grid->fineLevel().cells(), 0.0),
        ct(grid->fineLevel().cells(), CellType::Flow),
        walls{prob.wallSigmaT4OverPi, prob.wallEmissivity} {
    initializeProperties(grid->fineLevel(), prob, abskg, sig, ct);
  }

  std::vector<TraceLevel> levels() const {
    return {TraceLevel{LevelGeom::from(grid->fineLevel()),
                       RadiationFieldsView{
                           FieldView<double>::fromHost(abskg),
                           FieldView<double>::fromHost(sig),
                           FieldView<CellType>::fromHost(ct)},
                       grid->fineLevel().cells()}};
  }
};

TEST(BandModel, ThreebandIsPlanckConsistent) {
  const BandModel bands = threeband();
  double wsum = 0.0;
  for (const auto& b : bands) wsum += b.weight;
  EXPECT_NEAR(wsum, 1.0, 1e-12);
  // Planck-weighted mean kappa scale equals the gray mean (within the
  // rounding of the published-style coefficients).
  EXPECT_NEAR(planckMeanScale(bands), 1.0, 0.01);
}

TEST(SpectralTracer, SingleGrayBandMatchesGrayTracerExactly) {
  SpectralHarness h(burnsChriston());
  TraceConfig cfg;
  cfg.nDivQRays = 16;
  cfg.seed = 9;

  SpectralTracer spectral(h.levels(), h.walls, cfg, grayBand());
  CCVariable<double> sq(h.grid->fineLevel().cells(), 0.0);
  spectral.computeDivQ(h.grid->fineLevel().cells(),
                       MutableFieldView<double>::fromHost(sq));

  Tracer gray(h.levels(), h.walls, cfg);
  CCVariable<double> gq(h.grid->fineLevel().cells(), 0.0);
  gray.computeDivQ(h.grid->fineLevel().cells(),
                   MutableFieldView<double>::fromHost(gq));

  for (const auto& c : sq.window())
    EXPECT_DOUBLE_EQ(sq[c], gq[c]) << "cell " << c;
}

TEST(SpectralTracer, EquilibriumStillZero) {
  // Radiative equilibrium holds band by band (each band sees a uniform
  // medium with matching hot walls), so spectral divQ is also zero.
  SpectralHarness h(uniformMedium(4.0, 1.0));
  TraceConfig cfg;
  cfg.nDivQRays = 8;
  cfg.threshold = 1e-12;
  SpectralTracer spectral(h.levels(), h.walls, cfg, threeband());
  CCVariable<double> q(h.grid->fineLevel().cells(), 0.0);
  spectral.computeDivQ(h.grid->fineLevel().cells(),
                       MutableFieldView<double>::fromHost(q));
  for (const auto& c : q.window()) EXPECT_NEAR(q[c], 0.0, 1e-9);
}

TEST(SpectralTracer, WindowBandLosesMoreFromTheCenter) {
  // Non-gray physics: with cold walls, the optically thin window band
  // lets the domain center radiate straight to the walls, so the
  // spectral divQ at the center EXCEEDS the gray result computed from
  // the Planck-mean kappa (the classic non-gray enhancement).
  SpectralHarness h(uniformMedium(8.0, 1.0), 16);
  h.walls.sigmaT4OverPi = 0.0;  // cold walls
  TraceConfig cfg;
  cfg.nDivQRays = 300;
  cfg.threshold = 1e-9;

  SpectralTracer spectral(h.levels(), h.walls, cfg, threeband());
  Tracer gray(h.levels(), h.walls, cfg);

  const IntVector center(8, 8, 8);
  CCVariable<double> sq(CellRange(center, center + IntVector(1)), 0.0);
  spectral.computeDivQ(sq.window(), MutableFieldView<double>::fromHost(sq));
  const double grayI = gray.meanIncomingIntensity(center);
  const double grayQ = 4.0 * M_PI * 8.0 * (1.0 / M_PI - grayI);

  EXPECT_GT(sq[center], grayQ * 1.1)
      << "the transparent band must enhance net loss at the center";
}

TEST(SpectralTracer, BandIntensitiesOrderedByOpacity) {
  // Cold walls: the more transparent a band, the less of the medium's
  // emission reaches the detector (shorter emitting paths + wall escape),
  // so band intensity increases with kappa scale.
  SpectralHarness h(uniformMedium(8.0, 1.0), 16);
  h.walls.sigmaT4OverPi = 0.0;
  TraceConfig cfg;
  cfg.nDivQRays = 400;
  cfg.threshold = 1e-9;
  SpectralTracer spectral(h.levels(), h.walls, cfg, threeband());
  const auto I = spectral.bandIntensities(IntVector(8, 8, 8));
  ASSERT_EQ(I.size(), 3u);
  EXPECT_LT(I[0], I[1]);  // window < moderate
  EXPECT_LT(I[1], I[2]);  // moderate < strong
}

TEST(SpectralTracer, BandCountScalesWork) {
  SpectralHarness h(burnsChriston());
  TraceConfig cfg;
  cfg.nDivQRays = 4;
  SpectralTracer one(h.levels(), h.walls, cfg, grayBand());
  SpectralTracer three(h.levels(), h.walls, cfg, threeband());
  EXPECT_EQ(one.numBands(), 1u);
  EXPECT_EQ(three.numBands(), 3u);
}

}  // namespace
}  // namespace rmcrt::core
