#include "core/spectral.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/problems.h"
#include "grid/grid.h"
#include "util/thread_pool.h"

namespace rmcrt::core {
namespace {

using grid::CCVariable;
using grid::CellType;
using grid::Grid;

struct SpectralHarness {
  std::shared_ptr<Grid> grid;
  CCVariable<double> abskg, sig;
  CCVariable<CellType> ct;
  WallProperties walls;

  explicit SpectralHarness(const RadiationProblem& prob, int n = 12)
      : grid(Grid::makeSingleLevel(Vector(0.0), Vector(1.0), IntVector(n),
                                   IntVector(n))),
        abskg(grid->fineLevel().cells(), 0.0),
        sig(grid->fineLevel().cells(), 0.0),
        ct(grid->fineLevel().cells(), CellType::Flow),
        walls{prob.wallSigmaT4OverPi, prob.wallEmissivity} {
    initializeProperties(grid->fineLevel(), prob, abskg, sig, ct);
  }

  std::vector<TraceLevel> levels() const {
    return {TraceLevel{LevelGeom::from(grid->fineLevel()),
                       RadiationFieldsView{
                           FieldView<double>::fromHost(abskg),
                           FieldView<double>::fromHost(sig),
                           FieldView<CellType>::fromHost(ct)},
                       grid->fineLevel().cells()}};
  }
};

TEST(BandModel, ThreebandIsPlanckConsistent) {
  const BandModel bands = threeband();
  double wsum = 0.0;
  for (const auto& b : bands) wsum += b.weight;
  EXPECT_NEAR(wsum, 1.0, 1e-12);
  // Planck-weighted mean kappa scale equals the gray mean (within the
  // rounding of the published-style coefficients).
  EXPECT_NEAR(planckMeanScale(bands), 1.0, 0.01);
}

TEST(SpectralTracer, SingleGrayBandMatchesGrayTracerExactly) {
  SpectralHarness h(burnsChriston());
  TraceConfig cfg;
  cfg.nDivQRays = 16;
  cfg.seed = 9;

  SpectralTracer spectral(h.levels(), h.walls, cfg, grayBand());
  CCVariable<double> sq(h.grid->fineLevel().cells(), 0.0);
  spectral.computeDivQ(h.grid->fineLevel().cells(),
                       MutableFieldView<double>::fromHost(sq));

  Tracer gray(h.levels(), h.walls, cfg);
  CCVariable<double> gq(h.grid->fineLevel().cells(), 0.0);
  gray.computeDivQ(h.grid->fineLevel().cells(),
                   MutableFieldView<double>::fromHost(gq));

  for (const auto& c : sq.window())
    EXPECT_DOUBLE_EQ(sq[c], gq[c]) << "cell " << c;
}

TEST(SpectralTracer, EquilibriumStillZero) {
  // Radiative equilibrium holds band by band (each band sees a uniform
  // medium with matching hot walls), so spectral divQ is also zero.
  SpectralHarness h(uniformMedium(4.0, 1.0));
  TraceConfig cfg;
  cfg.nDivQRays = 8;
  cfg.threshold = 1e-12;
  SpectralTracer spectral(h.levels(), h.walls, cfg, threeband());
  CCVariable<double> q(h.grid->fineLevel().cells(), 0.0);
  spectral.computeDivQ(h.grid->fineLevel().cells(),
                       MutableFieldView<double>::fromHost(q));
  for (const auto& c : q.window()) EXPECT_NEAR(q[c], 0.0, 1e-9);
}

TEST(SpectralTracer, WindowBandLosesMoreFromTheCenter) {
  // Non-gray physics: with cold walls, the optically thin window band
  // lets the domain center radiate straight to the walls, so the
  // spectral divQ at the center EXCEEDS the gray result computed from
  // the Planck-mean kappa (the classic non-gray enhancement).
  SpectralHarness h(uniformMedium(8.0, 1.0), 16);
  h.walls.sigmaT4OverPi = 0.0;  // cold walls
  TraceConfig cfg;
  cfg.nDivQRays = 300;
  cfg.threshold = 1e-9;

  SpectralTracer spectral(h.levels(), h.walls, cfg, threeband());
  Tracer gray(h.levels(), h.walls, cfg);

  const IntVector center(8, 8, 8);
  CCVariable<double> sq(CellRange(center, center + IntVector(1)), 0.0);
  spectral.computeDivQ(sq.window(), MutableFieldView<double>::fromHost(sq));
  const double grayI = gray.meanIncomingIntensity(center);
  const double grayQ = 4.0 * M_PI * 8.0 * (1.0 / M_PI - grayI);

  EXPECT_GT(sq[center], grayQ * 1.1)
      << "the transparent band must enhance net loss at the center";
}

TEST(SpectralTracer, BandIntensitiesOrderedByOpacity) {
  // Cold walls: the more transparent a band, the less of the medium's
  // emission reaches the detector (shorter emitting paths + wall escape),
  // so band intensity increases with kappa scale.
  SpectralHarness h(uniformMedium(8.0, 1.0), 16);
  h.walls.sigmaT4OverPi = 0.0;
  TraceConfig cfg;
  cfg.nDivQRays = 400;
  cfg.threshold = 1e-9;
  SpectralTracer spectral(h.levels(), h.walls, cfg, threeband());
  const auto I = spectral.bandIntensities(IntVector(8, 8, 8));
  ASSERT_EQ(I.size(), 3u);
  EXPECT_LT(I[0], I[1]);  // window < moderate
  EXPECT_LT(I[1], I[2]);  // moderate < strong
}

TEST(SpectralTracer, TiledBatchMatchesFullSolveBitwise) {
  // The service drains spectral scenes as DivQTileJob work units; any
  // tiling of a range through computeDivQBatch must reproduce the
  // whole-range band loop bitwise.
  SpectralHarness h(burnsChriston());
  TraceConfig cfg;
  cfg.nDivQRays = 8;
  cfg.seed = 5;
  SpectralTracer spectral(h.levels(), h.walls, cfg, threeband());
  const CellRange cells = h.grid->fineLevel().cells();

  CCVariable<double> whole(cells, 0.0);
  spectral.computeDivQ(cells, MutableFieldView<double>::fromHost(whole));

  CCVariable<double> tiled(cells, 0.0);
  const MutableFieldView<double> sink =
      MutableFieldView<double>::fromHost(tiled);
  std::vector<Tracer::DivQTileJob> jobs;
  for (const CellRange& tile : tileCells(cells, IntVector(5, 3, 7)))
    jobs.push_back(Tracer::DivQTileJob{nullptr, tile, sink, &spectral});
  ThreadPool pool(4);
  Tracer::computeDivQBatch(jobs, &pool);

  for (const auto& c : cells)
    ASSERT_EQ(whole[c], tiled[c]) << "cell " << c;
}

TEST(SpectralTracer, AdaptiveBudgetsPropagateThroughBands) {
  // Bands inherit the adaptive-ray knobs: the band loop traces fewer
  // rays than the fixed fan, and stays bitwise deterministic across
  // pool sizes.
  SpectralHarness h(burnsChriston());
  TraceConfig fixed;
  fixed.nDivQRays = 16;
  fixed.seed = 5;
  TraceConfig adaptive = fixed;
  adaptive.adaptiveRays = true;
  adaptive.nPilotRays = 4;
  adaptive.errorTarget = 0.05;
  const CellRange cells = h.grid->fineLevel().cells();

  SpectralTracer sf(h.levels(), h.walls, fixed, threeband());
  SpectralTracer sa(h.levels(), h.walls, adaptive, threeband());
  CCVariable<double> qf(cells, 0.0), qa(cells, 0.0);
  sf.computeDivQ(cells, MutableFieldView<double>::fromHost(qf));
  sa.computeDivQ(cells, MutableFieldView<double>::fromHost(qa));
  EXPECT_LT(sa.segmentCount(), sf.segmentCount());

  ThreadPool pool(3);
  CCVariable<double> qa2(cells, 0.0);
  sa.computeDivQ(cells, MutableFieldView<double>::fromHost(qa2), &pool);
  for (const auto& c : cells) ASSERT_EQ(qa[c], qa2[c]) << "cell " << c;
}

TEST(SpectralTracer, SharedPackAcrossBands) {
  // One record set serves every band: the three-band tracer's levels all
  // alias the same packed view (kappa scaling lives in the march), so
  // per-band memory is O(1), not O(bands).
  SpectralHarness h(burnsChriston());
  TraceConfig cfg;
  cfg.nDivQRays = 4;
  cfg.usePackedFields = true;
  SpectralTracer spectral(h.levels(), h.walls, cfg, threeband());
  const PackedCell* base =
      spectral.bandTracer(0).levels()[0].packed.data();
  ASSERT_NE(base, nullptr);
  for (std::size_t b = 1; b < spectral.numBands(); ++b)
    EXPECT_EQ(spectral.bandTracer(b).levels()[0].packed.data(), base)
        << "band " << b << " packed its own copy";
}

TEST(SpectralTracer, BandCountScalesWork) {
  SpectralHarness h(burnsChriston());
  TraceConfig cfg;
  cfg.nDivQRays = 4;
  SpectralTracer one(h.levels(), h.walls, cfg, grayBand());
  SpectralTracer three(h.levels(), h.walls, cfg, threeband());
  EXPECT_EQ(one.numBands(), 1u);
  EXPECT_EQ(three.numBands(), 3u);
}

}  // namespace
}  // namespace rmcrt::core
