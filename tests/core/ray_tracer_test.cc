#include "core/ray_tracer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/problems.h"
#include "grid/grid.h"
#include "grid/operators.h"

namespace rmcrt::core {
namespace {

using grid::CCVariable;
using grid::CellType;
using grid::Grid;

/// Builds a single-level tracer over an analytic problem.
struct SingleLevelHarness {
  std::shared_ptr<Grid> grid;
  CCVariable<double> abskg, sig;
  CCVariable<CellType> ct;
  WallProperties walls;

  SingleLevelHarness(const RadiationProblem& prob, int n)
      : grid(Grid::makeSingleLevel(Vector(0.0), Vector(1.0), IntVector(n),
                                   IntVector(n))),
        abskg(grid->fineLevel().cells(), 0.0),
        sig(grid->fineLevel().cells(), 0.0),
        ct(grid->fineLevel().cells(), CellType::Flow),
        walls{prob.wallSigmaT4OverPi, prob.wallEmissivity} {
    initializeProperties(grid->fineLevel(), prob, abskg, sig, ct);
  }

  Tracer makeTracer(const TraceConfig& cfg) const {
    TraceLevel tl{LevelGeom::from(grid->fineLevel()),
                  RadiationFieldsView{FieldView<double>::fromHost(abskg),
                                      FieldView<double>::fromHost(sig),
                                      FieldView<CellType>::fromHost(ct)},
                  grid->fineLevel().cells()};
    return Tracer({tl}, walls, cfg);
  }
};

TEST(IsotropicDirection, UnitLengthAndZeroMean) {
  Rng rng(17);
  Vector mean(0.0);
  for (int i = 0; i < 20000; ++i) {
    const Vector d = isotropicDirection(rng);
    ASSERT_NEAR(d.length(), 1.0, 1e-12);
    mean += d;
  }
  mean = mean / 20000.0;
  EXPECT_NEAR(mean.x(), 0.0, 0.02);
  EXPECT_NEAR(mean.y(), 0.0, 0.02);
  EXPECT_NEAR(mean.z(), 0.0, 0.02);
}

TEST(LevelGeom, CellAtInvertsCellCenter) {
  auto g = Grid::makeSingleLevel(Vector(0.0), Vector(1.0), IntVector(8),
                                 IntVector(8));
  const LevelGeom geom = LevelGeom::from(g->fineLevel());
  for (const auto& c : geom.cells)
    EXPECT_EQ(geom.cellAt(geom.cellCenter(c)), c);
}

TEST(Tracer, EquilibriumMediumHasZeroDivQ) {
  // Uniform medium with walls at the same temperature: incoming intensity
  // equals local emission along every ray, so divQ = 0 to MC precision
  // (here: exactly, because every ray integrates to sigmaT4/pi).
  SingleLevelHarness h(uniformMedium(5.0, 1.0), 8);
  TraceConfig cfg;
  cfg.nDivQRays = 16;
  cfg.threshold = 1e-12;
  Tracer tracer = h.makeTracer(cfg);
  CCVariable<double> divQ(h.grid->fineLevel().cells(), 0.0);
  tracer.computeDivQ(h.grid->fineLevel().cells(),
                     MutableFieldView<double>::fromHost(divQ));
  for (const auto& c : divQ.window())
    EXPECT_NEAR(divQ[c], 0.0, 1e-9) << "cell " << c;
}

TEST(Tracer, ColdWallsGiveNetEmission) {
  // Cold black walls: every cell loses energy, divQ > 0 everywhere, and
  // boundary cells lose more than the center (their rays escape sooner).
  RadiationProblem prob = uniformMedium(1.0, 1.0);
  prob.wallSigmaT4OverPi = 0.0;
  SingleLevelHarness h(prob, 16);
  TraceConfig cfg;
  cfg.nDivQRays = 64;
  Tracer tracer = h.makeTracer(cfg);
  CCVariable<double> divQ(h.grid->fineLevel().cells(), 0.0);
  tracer.computeDivQ(h.grid->fineLevel().cells(),
                     MutableFieldView<double>::fromHost(divQ));
  const IntVector center(8, 8, 8), corner(0, 0, 0);
  EXPECT_GT(divQ[center], 0.0);
  EXPECT_GT(divQ[corner], divQ[center]);
}

TEST(Tracer, OpticallyThickCenterApproachesEquilibrium) {
  // kappa = 50 on a unit domain: the center cell cannot see the cold
  // walls; its incoming intensity approaches local emission.
  RadiationProblem prob = uniformMedium(50.0, 1.0);
  prob.wallSigmaT4OverPi = 0.0;
  SingleLevelHarness h(prob, 16);
  TraceConfig cfg;
  cfg.nDivQRays = 32;
  cfg.threshold = 1e-10;
  Tracer tracer = h.makeTracer(cfg);
  const double meanI = tracer.meanIncomingIntensity(IntVector(8, 8, 8));
  EXPECT_NEAR(meanI, 1.0 / M_PI, 0.01 / M_PI);
}

TEST(Tracer, DeterministicAcrossCallsAndDecompositions) {
  SingleLevelHarness h(burnsChriston(), 16);
  TraceConfig cfg;
  cfg.nDivQRays = 10;
  cfg.seed = 99;
  Tracer tracer = h.makeTracer(cfg);
  const IntVector probe(5, 9, 13);
  const double first = tracer.meanIncomingIntensity(probe);
  // Same cell, fresh tracer: bitwise identical (counter-based RNG).
  Tracer tracer2 = h.makeTracer(cfg);
  EXPECT_EQ(tracer2.meanIncomingIntensity(probe), first);
  // Different seed differs.
  TraceConfig cfg2 = cfg;
  cfg2.seed = 100;
  Tracer tracer3 = h.makeTracer(cfg2);
  EXPECT_NE(tracer3.meanIncomingIntensity(probe), first);
}

TEST(Tracer, RaySeesFarSideOfDomain) {
  // Medium transparent except for one hot emitting slab on the +x side;
  // a cell on the -x side must receive energy from it (nonlocal physics).
  auto grid = Grid::makeSingleLevel(Vector(0.0), Vector(1.0), IntVector(16),
                                    IntVector(16));
  CCVariable<double> abskg(grid->fineLevel().cells(), 1e-6);
  CCVariable<double> sig(grid->fineLevel().cells(), 0.0);
  CCVariable<CellType> ct(grid->fineLevel().cells(), CellType::Flow);
  for (const auto& c : abskg.window()) {
    if (c.x() >= 14) {
      abskg[c] = 100.0;  // optically thick hot slab
      sig[c] = 1.0;
    }
  }
  TraceLevel tl{LevelGeom::from(grid->fineLevel()),
                RadiationFieldsView{FieldView<double>::fromHost(abskg),
                                    FieldView<double>::fromHost(sig),
                                    FieldView<CellType>::fromHost(ct)},
                grid->fineLevel().cells()};
  TraceConfig cfg;
  cfg.nDivQRays = 2000;
  Tracer tracer({tl}, WallProperties{0.0, 1.0}, cfg);
  const double meanI = tracer.meanIncomingIntensity(IntVector(1, 8, 8));
  // The slab subtends a noticeable solid angle from across the domain.
  EXPECT_GT(meanI, 0.01);
}

TEST(Tracer, WallCellsTerminateRays) {
  // An interior wall bisecting the domain: cells on the cold side with a
  // hot wall see the wall's emission.
  auto grid = Grid::makeSingleLevel(Vector(0.0), Vector(1.0), IntVector(16),
                                    IntVector(16));
  CCVariable<double> abskg(grid->fineLevel().cells(), 1e-8);
  CCVariable<double> sig(grid->fineLevel().cells(), 0.0);
  CCVariable<CellType> ct(grid->fineLevel().cells(), CellType::Flow);
  for (const auto& c : ct.window()) {
    if (c.x() == 8) {
      ct[c] = CellType::Wall;
      sig[c] = 2.0;  // hot interior wall
    }
  }
  TraceLevel tl{LevelGeom::from(grid->fineLevel()),
                RadiationFieldsView{FieldView<double>::fromHost(abskg),
                                    FieldView<double>::fromHost(sig),
                                    FieldView<CellType>::fromHost(ct)},
                grid->fineLevel().cells()};
  TraceConfig cfg;
  cfg.nDivQRays = 500;
  Tracer tracer({tl}, WallProperties{0.0, 1.0}, cfg);
  // Cell adjacent to the hot wall: roughly half its rays hit the wall.
  const double nearWall = tracer.meanIncomingIntensity(IntVector(7, 8, 8));
  EXPECT_NEAR(nearWall, 1.0, 0.15);  // ~0.5 * 2.0
  // Cell far away in the corner sees the wall under a smaller solid angle.
  const double far = tracer.meanIncomingIntensity(IntVector(0, 0, 0));
  EXPECT_LT(far, nearWall);
  EXPECT_GT(far, 0.0);
}

TEST(Tracer, MonteCarloConvergenceRate) {
  // RMS error over a probe plane should fall like 1/sqrt(N): quadrupling
  // the rays should roughly halve the error.
  SingleLevelHarness h(burnsChriston(), 8);
  TraceConfig truthCfg;
  truthCfg.nDivQRays = 16384;
  truthCfg.seed = 1;
  Tracer truth = h.makeTracer(truthCfg);

  auto rmsError = [&](int rays, std::uint64_t seed) {
    TraceConfig cfg;
    cfg.nDivQRays = rays;
    cfg.seed = seed;
    Tracer t = h.makeTracer(cfg);
    double sum2 = 0.0;
    int n = 0;
    for (int x = 0; x < 8; ++x) {
      const IntVector c(x, 4, 4);
      const double e =
          t.meanIncomingIntensity(c) - truth.meanIncomingIntensity(c);
      sum2 += e * e;
      ++n;
    }
    return std::sqrt(sum2 / n);
  };

  // Average over several independent seeds to stabilize the ratio.
  double e100 = 0.0, e400 = 0.0;
  for (std::uint64_t s = 10; s < 14; ++s) {
    e100 += rmsError(100, s);
    e400 += rmsError(400, s);
  }
  const double ratio = e100 / e400;
  EXPECT_GT(ratio, 1.4) << "error must shrink with more rays";
  EXPECT_LT(ratio, 3.0) << "and roughly like 1/sqrt(N)";
}

TEST(Tracer, BoundaryFluxBlackbodyLimit) {
  // Optically thick uniform medium at sigmaT4 = 1: the wall receives the
  // blackbody flux sigma*T^4 = 1.
  RadiationProblem prob = uniformMedium(200.0, 1.0);
  SingleLevelHarness h(prob, 8);
  TraceConfig cfg;
  cfg.threshold = 1e-10;
  Tracer tracer = h.makeTracer(cfg);
  const double q =
      tracer.boundaryFlux(IntVector(0, 4, 4), IntVector(-1, 0, 0), 2000);
  EXPECT_NEAR(q, 1.0, 0.02);
}

TEST(Tracer, ThresholdTruncationBiasIsBounded) {
  SingleLevelHarness h(burnsChriston(), 8);
  TraceConfig tight;
  tight.nDivQRays = 400;
  tight.threshold = 1e-10;
  TraceConfig loose = tight;
  loose.threshold = 0.05;  // Uintah's production default
  const IntVector c(4, 4, 4);
  const double iTight = h.makeTracer(tight).meanIncomingIntensity(c);
  const double iLoose = h.makeTracer(loose).meanIncomingIntensity(c);
  // Same rays, so the difference is pure truncation bias; it must be
  // small and one-sided (truncation can only lose intensity).
  EXPECT_LE(iLoose, iTight + 1e-12);
  EXPECT_NEAR(iLoose, iTight, 0.05 * iTight);
}

}  // namespace
}  // namespace rmcrt::core
