/// Determinism suite for the multithreaded tiled tracer: divQ must be
/// bitwise identical to the serial path for every thread count, tile
/// shape and patch decomposition (the property the paper's validation
/// rests on — the counter-based RNG fixes every ray by (seed, cell, ray)
/// alone), and boundaryFlux must agree with analytic wall limits.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "core/problems.h"
#include "core/rmcrt_component.h"
#include "grid/grid.h"
#include "grid/load_balancer.h"
#include "runtime/scheduler.h"
#include "util/thread_pool.h"

namespace rmcrt::core {
namespace {

using grid::CCVariable;
using grid::CellType;
using grid::Grid;

struct Harness {
  std::shared_ptr<Grid> grid;
  CCVariable<double> abskg, sig;
  CCVariable<CellType> ct;
  WallProperties walls;

  Harness(const RadiationProblem& prob, int n)
      : grid(Grid::makeSingleLevel(Vector(0.0), Vector(1.0), IntVector(n),
                                   IntVector(n))),
        abskg(grid->fineLevel().cells(), 0.0),
        sig(grid->fineLevel().cells(), 0.0),
        ct(grid->fineLevel().cells(), CellType::Flow),
        walls{prob.wallSigmaT4OverPi, prob.wallEmissivity} {
    initializeProperties(grid->fineLevel(), prob, abskg, sig, ct);
  }

  Tracer makeTracer(const TraceConfig& cfg) const {
    TraceLevel tl{LevelGeom::from(grid->fineLevel()),
                  RadiationFieldsView{FieldView<double>::fromHost(abskg),
                                      FieldView<double>::fromHost(sig),
                                      FieldView<CellType>::fromHost(ct)},
                  grid->fineLevel().cells()};
    return Tracer({tl}, walls, cfg);
  }

  CCVariable<double> solve(const TraceConfig& cfg,
                           ThreadPool* pool = nullptr) const {
    Tracer tracer = makeTracer(cfg);
    CCVariable<double> divQ(grid->fineLevel().cells(), 0.0);
    tracer.computeDivQ(grid->fineLevel().cells(),
                       MutableFieldView<double>::fromHost(divQ), pool);
    return divQ;
  }
};

TraceConfig smallCfg() {
  TraceConfig cfg;
  cfg.nDivQRays = 8;
  cfg.seed = 1234;
  return cfg;
}

void expectBitwiseEqual(const CCVariable<double>& a,
                        const CCVariable<double>& b) {
  for (const auto& c : a.window())
    ASSERT_EQ(a[c], b[c]) << "cell " << c;  // exact, not NEAR
}

TEST(TileCells, PartitionsExactly) {
  const CellRange r(IntVector(-2, 0, 3), IntVector(9, 7, 10));
  for (const IntVector& ts :
       {IntVector(4, 4, 4), IntVector(1, 16, 3), IntVector(64, 64, 64)}) {
    const auto tiles = tileCells(r, ts);
    std::int64_t covered = 0;
    for (const CellRange& t : tiles) {
      EXPECT_TRUE(r.contains(t));
      covered += t.volume();
    }
    EXPECT_EQ(covered, r.volume()) << "tile " << ts;
  }
  EXPECT_TRUE(tileCells(CellRange(), IntVector(4, 4, 4)).empty());
  // Degenerate tile sizes clamp to 1 instead of looping forever.
  EXPECT_EQ(tileCells(CellRange(IntVector(0), IntVector(2)), IntVector(0))
                .size(),
            8u);
}

TEST(Determinism, DivQBitwiseIdenticalAcrossThreadCounts) {
  Harness h(burnsChriston(), 16);
  const TraceConfig cfg = smallCfg();
  const CCVariable<double> serial = h.solve(cfg);
  for (int threads : {2, 3, 8}) {
    ThreadPool pool(static_cast<std::size_t>(threads));
    const CCVariable<double> threaded = h.solve(cfg, &pool);
    expectBitwiseEqual(serial, threaded);
  }
}

TEST(Determinism, DivQBitwiseIdenticalAcrossTileShapes) {
  Harness h(burnsChriston(), 16);
  const CCVariable<double> serial = h.solve(smallCfg());
  ThreadPool pool(4);
  for (const IntVector& ts :
       {IntVector(1, 16, 16), IntVector(4, 4, 4), IntVector(5, 3, 2),
        IntVector(16, 16, 16), IntVector(3, 64, 1)}) {
    TraceConfig cfg = smallCfg();
    cfg.tileSize = ts;
    const CCVariable<double> tiled = h.solve(cfg, &pool);
    expectBitwiseEqual(serial, tiled);
  }
}

TEST(Determinism, DivQIndependentOfPatchDecomposition) {
  Harness h(burnsChriston(), 16);
  const TraceConfig cfg = smallCfg();
  const CCVariable<double> whole = h.solve(cfg);

  // Same tracer, driven patch-by-patch over an uneven decomposition, with
  // and without a pool: each cell's rays depend only on (seed, cell, ray),
  // so the assembled field matches the whole-range solve bitwise.
  Tracer tracer = h.makeTracer(cfg);
  ThreadPool pool(3);
  const CellRange all = h.grid->fineLevel().cells();
  const std::vector<CellRange> patches = {
      CellRange(IntVector(0, 0, 0), IntVector(7, 16, 16)),
      CellRange(IntVector(7, 0, 0), IntVector(16, 5, 16)),
      CellRange(IntVector(7, 5, 0), IntVector(16, 16, 16))};
  for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
    CCVariable<double> assembled(all, 0.0);
    std::int64_t covered = 0;
    for (const CellRange& patch : patches) {
      tracer.computeDivQ(patch, MutableFieldView<double>::fromHost(assembled),
                         p);
      covered += patch.volume();
    }
    ASSERT_EQ(covered, all.volume());
    expectBitwiseEqual(whole, assembled);
  }
}

TEST(Determinism, AdaptiveDivQBitwiseAcrossThreadsAndTiles) {
  // The variance-adaptive controller must inherit the full determinism
  // contract: a cell's budget is a pure function of (seed, cell), so any
  // thread count and tile shape reproduces the serial adaptive solve
  // bitwise.
  Harness h(burnsChriston(), 16);
  TraceConfig cfg = smallCfg();
  cfg.adaptiveRays = true;
  cfg.nPilotRays = 3;
  cfg.errorTarget = 0.05;
  const CCVariable<double> serial = h.solve(cfg);
  for (int threads : {2, 5}) {
    ThreadPool pool(static_cast<std::size_t>(threads));
    for (const IntVector& ts :
         {IntVector(4, 4, 4), IntVector(1, 16, 16), IntVector(5, 3, 2)}) {
      TraceConfig tiled = cfg;
      tiled.tileSize = ts;
      expectBitwiseEqual(serial, h.solve(tiled, &pool));
    }
  }
}

TEST(Determinism, SegmentCountIndependentOfThreadCount) {
  // Per-tile counters must aggregate to exactly the serial total — the
  // perf model is calibrated against this quantity.
  Harness h(burnsChriston(), 16);
  const TraceConfig cfg = smallCfg();
  Tracer tracer = h.makeTracer(cfg);
  CCVariable<double> divQ(h.grid->fineLevel().cells(), 0.0);
  tracer.computeDivQ(h.grid->fineLevel().cells(),
                     MutableFieldView<double>::fromHost(divQ));
  const std::uint64_t serialSegments = tracer.segmentCount();
  ASSERT_GT(serialSegments, 0u);
  for (int threads : {2, 8}) {
    ThreadPool pool(static_cast<std::size_t>(threads));
    tracer.resetSegmentCount();
    tracer.computeDivQ(h.grid->fineLevel().cells(),
                       MutableFieldView<double>::fromHost(divQ), &pool);
    EXPECT_EQ(tracer.segmentCount(), serialSegments);
  }
}

TEST(Determinism, BoundaryFluxPoolMatchesSerialBitwise) {
  Harness h(burnsChriston(), 16);
  TraceConfig cfg = smallCfg();
  Tracer tracer = h.makeTracer(cfg);
  ThreadPool pool(4);
  for (const auto& [cell, face] :
       std::vector<std::pair<IntVector, IntVector>>{
           {IntVector(0, 8, 8), IntVector(-1, 0, 0)},
           {IntVector(15, 3, 12), IntVector(1, 0, 0)},
           {IntVector(5, 0, 5), IntVector(0, -1, 0)}}) {
    const double serial = tracer.boundaryFlux(cell, face, 64);
    const double threaded = tracer.boundaryFlux(cell, face, 64, &pool);
    EXPECT_EQ(serial, threaded) << "face " << face;
  }
}

TEST(Determinism, ScheduledPipelineWithPoolMatchesSerialExactly) {
  // End-to-end plumbing: a scheduler configured with a worker pool hands
  // it to trace tasks through TaskContext; the distributed result must
  // still match the serial solve bitwise.
  auto grid = Grid::makeTwoLevel(Vector(0.0), Vector(1.0), IntVector(16),
                                 IntVector(4), IntVector(4), IntVector(4));
  RmcrtSetup setup;
  setup.problem = burnsChriston();
  setup.trace.nDivQRays = 6;
  setup.trace.seed = 77;
  setup.trace.tileSize = IntVector(4, 4, 4);
  setup.roiHalo = 3;

  ThreadPool pool(4);
  const int numRanks = 2;
  auto lb = std::make_shared<grid::LoadBalancer>(*grid, numRanks);
  comm::Communicator world(numRanks);
  runtime::SchedulerConfig schedCfg;
  schedCfg.taskPool = &pool;
  std::vector<std::unique_ptr<runtime::Scheduler>> scheds;
  for (int r = 0; r < numRanks; ++r)
    scheds.push_back(std::make_unique<runtime::Scheduler>(
        grid, lb, world, r, runtime::RequestContainer::WaitFreePool,
        schedCfg));
  std::vector<std::thread> threads;
  for (int r = 0; r < numRanks; ++r) {
    threads.emplace_back([&, r] {
      RmcrtComponent::registerTwoLevelPipeline(*scheds[r], setup);
      scheds[r]->executeTimestep();
    });
  }
  for (auto& t : threads) t.join();

  const CCVariable<double> serial =
      RmcrtComponent::solveSerialTwoLevel(*grid, setup);
  for (auto& s : scheds) {
    for (int pid : s->loadBalancer().patchesOf(s->rank(), *grid,
                                               grid->numLevels() - 1)) {
      const auto& divQ = s->newDW().get<double>(RmcrtLabels::divQ, pid);
      for (const auto& c : grid->patchById(pid)->cells())
        ASSERT_EQ(divQ[c], serial[c]) << "patch " << pid << " cell " << c;
    }
  }
}

TEST(BoundaryFlux, ColdWallLimitIsZero) {
  // Transparent medium, cold black walls: every ray reaches a wall with
  // zero emission, so the incident flux is exactly zero.
  RadiationProblem prob = uniformMedium(1e-12, 0.0);
  prob.wallSigmaT4OverPi = 0.0;
  Harness h(prob, 8);
  TraceConfig cfg;
  cfg.threshold = 1e-12;
  Tracer tracer = h.makeTracer(cfg);
  const double q =
      tracer.boundaryFlux(IntVector(0, 4, 4), IntVector(-1, 0, 0), 256);
  EXPECT_EQ(q, 0.0);
}

TEST(BoundaryFlux, HotWallLimitIsPiTimesIntensity) {
  // Transparent medium, hot black walls emitting sigmaT4/pi = 1/pi:
  // every ray carries exactly 1/pi, so flux = pi * (1/pi) = 1, jittered
  // origins or not.
  RadiationProblem prob = uniformMedium(1e-12, 0.0);
  prob.wallSigmaT4OverPi = 1.0 / M_PI;
  Harness h(prob, 8);
  TraceConfig cfg;
  cfg.threshold = 1e-12;
  Tracer tracer = h.makeTracer(cfg);
  const double q =
      tracer.boundaryFlux(IntVector(7, 4, 4), IntVector(1, 0, 0), 256);
  EXPECT_NEAR(q, 1.0, 1e-9);
}

TEST(BoundaryFlux, JitteredOriginsCoverTheFace) {
  // A hot slab hugging one half of the viewed face's cell column: rays
  // launched from the face center only would see a systematically
  // different solid angle than rays spread over the face. Check the
  // jittered estimator differs from the center-origin one (the bug was
  // jitterRayOrigin being ignored here) while both stay positive.
  auto grid = Grid::makeSingleLevel(Vector(0.0), Vector(1.0), IntVector(16),
                                    IntVector(16));
  CCVariable<double> abskg(grid->fineLevel().cells(), 1e-6);
  CCVariable<double> sig(grid->fineLevel().cells(), 0.0);
  CCVariable<CellType> ct(grid->fineLevel().cells(), CellType::Flow);
  for (const auto& c : abskg.window()) {
    if (c.x() >= 14 && c.y() >= 8) {
      abskg[c] = 200.0;
      sig[c] = 1.0;
    }
  }
  TraceLevel tl{LevelGeom::from(grid->fineLevel()),
                RadiationFieldsView{FieldView<double>::fromHost(abskg),
                                    FieldView<double>::fromHost(sig),
                                    FieldView<CellType>::fromHost(ct)},
                grid->fineLevel().cells()};
  TraceConfig jittered;
  jittered.nDivQRays = 4;
  TraceConfig centered = jittered;
  centered.jitterRayOrigin = false;
  const IntVector cell(0, 8, 8), face(-1, 0, 0);
  const double qJit = Tracer({tl}, WallProperties{0.0, 1.0}, jittered)
                          .boundaryFlux(cell, face, 512);
  const double qCen = Tracer({tl}, WallProperties{0.0, 1.0}, centered)
                          .boundaryFlux(cell, face, 512);
  EXPECT_GT(qJit, 0.0);
  EXPECT_GT(qCen, 0.0);
  EXPECT_NE(qJit, qCen);
  // Both estimators agree on the physics to MC tolerance.
  EXPECT_NEAR(qJit, qCen, 0.5 * std::max(qJit, qCen));
}

}  // namespace
}  // namespace rmcrt::core
