/// Tests of the multi-level (AMR) tracer against the single-level
/// reference: the coarse continuation must preserve the radiation physics
/// to within the coarsening error, and the ROI switch must be seamless.

#include <gtest/gtest.h>

#include <cmath>

#include "core/problems.h"
#include "core/ray_tracer.h"
#include "core/rmcrt_component.h"
#include "grid/grid.h"
#include "grid/operators.h"
#include "util/stats.h"

namespace rmcrt::core {
namespace {

using grid::CCVariable;
using grid::CellType;
using grid::Grid;

TEST(MultiLevelTracer, HugeRoiMatchesSingleLevelExactly) {
  // With the ROI covering the whole fine level, rays never reach the
  // coarse level: two-level result must equal single-level bitwise.
  auto grid = Grid::makeTwoLevel(Vector(0.0), Vector(1.0), IntVector(16),
                                 IntVector(4), IntVector(16), IntVector(4));
  RmcrtSetup setup;
  setup.problem = burnsChriston();
  setup.trace.nDivQRays = 20;
  setup.trace.seed = 3;
  setup.roiHalo = 64;  // ROI >> level: never leaves the fine mesh

  CCVariable<double> two = RmcrtComponent::solveSerialTwoLevel(*grid, setup);

  auto grid1 = Grid::makeSingleLevel(Vector(0.0), Vector(1.0), IntVector(16),
                                     IntVector(16));
  CCVariable<double> one =
      RmcrtComponent::solveSerialSingleLevel(*grid1, setup);

  for (const auto& c : two.window())
    EXPECT_DOUBLE_EQ(two[c], one[c]) << "cell " << c;
}

TEST(MultiLevelTracer, SmallRoiApproximatesSingleLevel) {
  // The production configuration: small ROI, rays continue on a 4x
  // coarser level. Accuracy should degrade only mildly (paper Sec. III-B;
  // the coarse level carries conservatively averaged properties).
  auto grid = Grid::makeTwoLevel(Vector(0.0), Vector(1.0), IntVector(32),
                                 IntVector(4), IntVector(8), IntVector(8));
  RmcrtSetup setup;
  setup.problem = burnsChriston();
  setup.trace.nDivQRays = 200;
  setup.trace.seed = 7;
  setup.roiHalo = 4;

  CCVariable<double> two = RmcrtComponent::solveSerialTwoLevel(*grid, setup);

  auto grid1 = Grid::makeSingleLevel(Vector(0.0), Vector(1.0), IntVector(32),
                                     IntVector(32));
  CCVariable<double> one =
      RmcrtComponent::solveSerialSingleLevel(*grid1, setup);

  // Compare along the centerline (the benchmark's QoI).
  std::vector<double> a, b;
  for (int x = 0; x < 32; ++x) {
    a.push_back(two[IntVector(x, 16, 16)]);
    b.push_back(one[IntVector(x, 16, 16)]);
  }
  EXPECT_LT(relativeL2Error(a, b), 0.08)
      << "multi-level centerline should track single-level within ~8%";
}

TEST(MultiLevelTracer, EquilibriumPreservedAcrossLevelSwitch) {
  // Equilibrium (uniform medium, matching hot walls) must survive the
  // fine->coarse handoff exactly: coarsening a uniform field is exact.
  auto grid = Grid::makeTwoLevel(Vector(0.0), Vector(1.0), IntVector(16),
                                 IntVector(4), IntVector(4), IntVector(4));
  RmcrtSetup setup;
  setup.problem = uniformMedium(5.0, 1.0);
  setup.trace.nDivQRays = 16;
  setup.trace.threshold = 1e-12;
  setup.roiHalo = 2;

  CCVariable<double> divQ = RmcrtComponent::solveSerialTwoLevel(*grid, setup);
  for (const auto& c : divQ.window())
    EXPECT_NEAR(divQ[c], 0.0, 1e-9) << "cell " << c;
}

TEST(MultiLevelTracer, RoiSizeSweepConvergesToSingleLevel) {
  // Property sweep: growing the ROI monotonically (within MC noise)
  // shrinks the deviation from the single-level answer.
  auto grid1 = Grid::makeSingleLevel(Vector(0.0), Vector(1.0), IntVector(16),
                                     IntVector(16));
  RmcrtSetup ref;
  ref.problem = burnsChriston();
  ref.trace.nDivQRays = 150;
  ref.trace.seed = 11;
  CCVariable<double> one = RmcrtComponent::solveSerialSingleLevel(*grid1, ref);

  auto errorForHalo = [&](int halo) {
    auto grid = Grid::makeTwoLevel(Vector(0.0), Vector(1.0), IntVector(16),
                                   IntVector(4), IntVector(4), IntVector(4));
    RmcrtSetup setup = ref;
    setup.roiHalo = halo;
    CCVariable<double> two =
        RmcrtComponent::solveSerialTwoLevel(*grid, setup);
    std::vector<double> a, b;
    for (const auto& c : two.window()) {
      a.push_back(two[c]);
      b.push_back(one[c]);
    }
    return relativeL2Error(a, b);
  };

  const double eTiny = errorForHalo(1);
  const double eBig = errorForHalo(12);
  EXPECT_LT(eBig, 1e-12) << "halo 12 covers the 16-cell level entirely";
  EXPECT_GT(eTiny, eBig);
  EXPECT_LT(eTiny, 0.15) << "even a 1-cell ROI stays in the right regime";
}

TEST(MultiLevelTracer, ThreeLevelStackTraces) {
  // A 3-level hierarchy (the generalization the design supports).
  auto grid = Grid::makeMultiLevel(
      Vector(0.0), Vector(1.0), IntVector(16), IntVector(2),
      {IntVector(4), IntVector(8), IntVector(16)});
  const grid::Level& fine = grid->fineLevel();

  // Build per-level fields by sampling/coarsening.
  RadiationProblem prob = burnsChriston();
  std::vector<CCVariable<double>> abs, sig;
  std::vector<CCVariable<CellType>> ct;
  for (int l = 0; l < 3; ++l) {
    const grid::Level& lev = grid->level(l);
    abs.emplace_back(lev.cells(), 0.0);
    sig.emplace_back(lev.cells(), 0.0);
    ct.emplace_back(lev.cells(), CellType::Flow);
    initializeProperties(lev, prob, abs.back(), sig.back(), ct.back());
  }

  std::vector<TraceLevel> levels;
  // Fine ROI: central patch + halo.
  const grid::Patch* p = fine.patchContaining(IntVector(8, 8, 8));
  levels.push_back(TraceLevel{
      LevelGeom::from(fine),
      RadiationFieldsView{FieldView<double>::fromHost(abs[2]),
                          FieldView<double>::fromHost(sig[2]),
                          FieldView<CellType>::fromHost(ct[2])},
      p->ghostWindow(2).intersect(fine.cells())});
  levels.push_back(TraceLevel{
      LevelGeom::from(grid->level(1)),
      RadiationFieldsView{FieldView<double>::fromHost(abs[1]),
                          FieldView<double>::fromHost(sig[1]),
                          FieldView<CellType>::fromHost(ct[1])},
      // mid level allowed: a wider box around the patch
      p->ghostWindow(6).intersect(fine.cells()).coarsened(IntVector(2))});
  levels.push_back(TraceLevel{
      LevelGeom::from(grid->level(0)),
      RadiationFieldsView{FieldView<double>::fromHost(abs[0]),
                          FieldView<double>::fromHost(sig[0]),
                          FieldView<CellType>::fromHost(ct[0])},
      grid->level(0).cells()});

  TraceConfig cfg;
  cfg.nDivQRays = 50;
  Tracer tracer(std::move(levels), WallProperties{0.0, 1.0}, cfg);
  CCVariable<double> divQ(p->cells(), 0.0);
  tracer.computeDivQ(p->cells(), MutableFieldView<double>::fromHost(divQ));
  for (const auto& c : p->cells()) {
    EXPECT_GT(divQ[c], 0.0);
    EXPECT_LT(divQ[c], 6.0);
  }
}

}  // namespace
}  // namespace rmcrt::core
