/// Golden-accuracy regression for the Burns & Christon benchmark: divQ
/// along the x centerline of a 41^3 single-level grid (the benchmark's
/// standard cut) against stored reference values.
///
/// The reference table was produced by this exact configuration (seed 71,
/// 64 rays/cell) with the counter-based RNG, which makes the computation
/// deterministic: every (seed, cell, ray) triple fixes the ray exactly.
/// On an identical libm the match is bitwise; the explicit 1% relative
/// tolerance absorbs math-library variation across platforms (a different
/// exp/log ULP can discretely reroute a single ray, worth at most
/// ~1/64 ~ 1.6% in one cell). Any real regression — RNG stream change,
/// marching defect, property initialization drift — moves many cells by
/// far more than that.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "core/problems.h"
#include "core/ray_tracer.h"
#include "grid/grid.h"
#include "util/stats.h"

namespace rmcrt::core {
namespace {

constexpr int kN = 41;
constexpr int kRays = 64;
constexpr std::uint64_t kSeed = 71;

/// divQ[x][20][20] for x = 0..40, generated as described above.
constexpr std::array<double, kN> kGoldenCenterline = {
    4.4609552858e-01, 6.0735124046e-01, 7.4960017701e-01, 9.2637246677e-01,
    1.0605447602e+00, 1.1962102243e+00, 1.3365321144e+00, 1.4811385839e+00,
    1.6443201582e+00, 1.7296060636e+00, 1.8964217596e+00, 1.9522157961e+00,
    2.0828674300e+00, 2.2192070741e+00, 2.3250959275e+00, 2.4341513432e+00,
    2.5688594937e+00, 2.6971807247e+00, 2.8209346024e+00, 2.9339498704e+00,
    3.0726095031e+00, 2.9470250045e+00, 2.8305977772e+00, 2.7013526027e+00,
    2.5760049502e+00, 2.4683274155e+00, 2.3414789189e+00, 2.2078016498e+00,
    2.1069885560e+00, 1.9786492472e+00, 1.8821203239e+00, 1.7618952821e+00,
    1.5920575489e+00, 1.5020508657e+00, 1.3213515024e+00, 1.2148171283e+00,
    1.0592060024e+00, 9.1384618418e-01, 7.6595689079e-01, 6.0016928224e-01,
    4.5270648797e-01};

TEST(BurnsChristonGolden, CenterlineDivQMatchesReference) {
  auto grid = grid::Grid::makeSingleLevel(Vector(0.0), Vector(1.0),
                                          IntVector(kN), IntVector(kN));
  grid::CCVariable<double> abskg(grid->fineLevel().cells(), 0.0);
  grid::CCVariable<double> sig(grid->fineLevel().cells(), 0.0);
  grid::CCVariable<grid::CellType> ct(grid->fineLevel().cells(),
                                      grid::CellType::Flow);
  initializeProperties(grid->fineLevel(), burnsChriston(), abskg, sig, ct);

  TraceLevel tl{LevelGeom::from(grid->fineLevel()),
                RadiationFieldsView{FieldView<double>::fromHost(abskg),
                                    FieldView<double>::fromHost(sig),
                                    FieldView<grid::CellType>::fromHost(ct)},
                grid->fineLevel().cells()};
  TraceConfig cfg;
  cfg.nDivQRays = kRays;
  cfg.seed = kSeed;
  Tracer tracer({tl}, WallProperties{0.0, 1.0}, cfg);

  grid::CCVariable<double> divQ(grid->fineLevel().cells(), 0.0);
  const int mid = kN / 2;
  const CellRange line(IntVector(0, mid, mid),
                       IntVector(kN, mid + 1, mid + 1));
  tracer.computeDivQ(line, MutableFieldView<double>::fromHost(divQ));

  for (int x = 0; x < kN; ++x) {
    const double got = divQ[IntVector(x, mid, mid)];
    const double want = kGoldenCenterline[static_cast<std::size_t>(x)];
    EXPECT_NEAR(got, want, 0.01 * std::abs(want))
        << "centerline cell x=" << x;
  }
}

TEST(BurnsChristonGolden, AdaptiveCenterlineWithinOnePercentOfFixed) {
  // The calibrated adaptive operating point (pilot 16, error target
  // 0.015, cap at nDivQRays) must hold the benchmark centerline within
  // the same 1% band the golden table enforces — measured as relative L2
  // against the fixed-fan answer computed in-process, so the gate is
  // libm-independent — while tracing measurably fewer segments.
  auto grid = grid::Grid::makeSingleLevel(Vector(0.0), Vector(1.0),
                                          IntVector(kN), IntVector(kN));
  grid::CCVariable<double> abskg(grid->fineLevel().cells(), 0.0);
  grid::CCVariable<double> sig(grid->fineLevel().cells(), 0.0);
  grid::CCVariable<grid::CellType> ct(grid->fineLevel().cells(),
                                      grid::CellType::Flow);
  initializeProperties(grid->fineLevel(), burnsChriston(), abskg, sig, ct);
  TraceLevel tl{LevelGeom::from(grid->fineLevel()),
                RadiationFieldsView{FieldView<double>::fromHost(abskg),
                                    FieldView<double>::fromHost(sig),
                                    FieldView<grid::CellType>::fromHost(ct)},
                grid->fineLevel().cells()};
  TraceConfig fixedCfg;
  fixedCfg.nDivQRays = kRays;
  fixedCfg.seed = kSeed;
  TraceConfig adaptiveCfg = fixedCfg;
  adaptiveCfg.adaptiveRays = true;
  adaptiveCfg.nPilotRays = 16;
  adaptiveCfg.errorTarget = 0.015;
  adaptiveCfg.nMaxRays = 0;  // cap at nDivQRays

  const int mid = kN / 2;
  const CellRange line(IntVector(0, mid, mid),
                       IntVector(kN, mid + 1, mid + 1));
  const auto solveLine = [&](const TraceConfig& cfg, std::uint64_t* segs) {
    Tracer tracer({tl}, WallProperties{0.0, 1.0}, cfg);
    grid::CCVariable<double> divQ(grid->fineLevel().cells(), 0.0);
    tracer.computeDivQ(line, MutableFieldView<double>::fromHost(divQ));
    *segs = tracer.segmentCount();
    std::vector<double> out;
    for (int x = 0; x < kN; ++x) out.push_back(divQ[IntVector(x, mid, mid)]);
    return out;
  };
  std::uint64_t fixedSegs = 0, adaptiveSegs = 0;
  const std::vector<double> fixed = solveLine(fixedCfg, &fixedSegs);
  const std::vector<double> adaptive = solveLine(adaptiveCfg, &adaptiveSegs);

  EXPECT_LT(adaptiveSegs, fixedSegs) << "controller saved nothing";
  EXPECT_LT(relativeL2Error(adaptive, fixed), 0.01);
  // And the adaptive answer still sits inside the golden table's band
  // (the table tolerance plus the adaptive budget's own error).
  for (int x = 0; x < kN; ++x) {
    const double want = kGoldenCenterline[static_cast<std::size_t>(x)];
    EXPECT_NEAR(adaptive[static_cast<std::size_t>(x)], want,
                0.05 * std::abs(want))
        << "centerline cell x=" << x;
  }
}

TEST(BurnsChristonGolden, CenterlineHasBenchmarkShape) {
  // Physics sanity independent of the stored table: cold black walls
  // drain a hot emitting medium, so divQ > 0 everywhere, peaking at the
  // domain center where the absorption coefficient (hence emission)
  // peaks, and roughly symmetric about it (Monte Carlo noise at 64
  // rays/cell stays well under the 15% band used here).
  const auto& g = kGoldenCenterline;
  const int mid = kN / 2;
  for (int x = 0; x < kN; ++x) {
    EXPECT_GT(g[static_cast<std::size_t>(x)], 0.0) << "x=" << x;
    EXPECT_LE(g[static_cast<std::size_t>(x)],
              g[static_cast<std::size_t>(mid)] + 1e-12)
        << "peak must be at the center; x=" << x;
  }
  for (int x = 0; x < kN; ++x) {
    const double a = g[static_cast<std::size_t>(x)];
    const double b = g[static_cast<std::size_t>(kN - 1 - x)];
    EXPECT_NEAR(a, b, 0.15 * std::max(a, b))
        << "asymmetry beyond Monte Carlo noise at x=" << x;
  }
}

}  // namespace
}  // namespace rmcrt::core
