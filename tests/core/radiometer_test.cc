#include "core/radiometer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/problems.h"
#include "grid/grid.h"

namespace rmcrt::core {
namespace {

using grid::CCVariable;
using grid::CellType;
using grid::Grid;

struct RadiometerHarness {
  std::shared_ptr<Grid> grid;
  CCVariable<double> abskg, sig;
  CCVariable<CellType> ct;

  RadiometerHarness()
      : grid(Grid::makeSingleLevel(Vector(0.0), Vector(1.0), IntVector(16),
                                   IntVector(16))),
        abskg(grid->fineLevel().cells(), 1e-6),
        sig(grid->fineLevel().cells(), 0.0),
        ct(grid->fineLevel().cells(), CellType::Flow) {}

  Tracer tracer(const WallProperties& walls) const {
    TraceLevel tl{LevelGeom::from(grid->fineLevel()),
                  RadiationFieldsView{FieldView<double>::fromHost(abskg),
                                      FieldView<double>::fromHost(sig),
                                      FieldView<CellType>::fromHost(ct)},
                  grid->fineLevel().cells()};
    TraceConfig cfg;
    cfg.threshold = 1e-10;
    return Tracer({tl}, walls, cfg);
  }
};

TEST(Radiometer, SolidAngleFormula) {
  RadiometerHarness h;
  Tracer t = h.tracer(WallProperties{0.0, 1.0});
  RadiometerSpec spec;
  spec.position = Vector(0.5, 0.5, 0.5);
  spec.viewDirection = Vector(1, 0, 0);
  spec.halfAngleRadians = M_PI / 2.0;  // hemisphere
  spec.nRays = 10;
  const auto r = evaluateRadiometer(t, spec);
  EXPECT_NEAR(r.solidAngle, 2.0 * M_PI, 1e-12);
  spec.halfAngleRadians = 0.1;
  EXPECT_NEAR(evaluateRadiometer(t, spec).solidAngle,
              2.0 * M_PI * (1.0 - std::cos(0.1)), 1e-12);
}

TEST(Radiometer, SeesUniformHotWallsAsBlackbody) {
  // Transparent medium, hot black walls at sigmaT4 = 1: every ray ends
  // on a wall, so mean intensity = 1/pi regardless of aim or cone.
  RadiometerHarness h;
  Tracer t = h.tracer(WallProperties{1.0 / M_PI, 1.0});
  for (double halfAngle : {0.1, 0.5, 1.2}) {
    RadiometerSpec spec;
    spec.position = Vector(0.5, 0.5, 0.5);
    spec.viewDirection = Vector(0.3, -0.5, 0.8);
    spec.halfAngleRadians = halfAngle;
    spec.nRays = 200;
    const auto r = evaluateRadiometer(t, spec);
    // Tolerance: the near-transparent medium (kappa = 1e-6) absorbs a
    // ~1e-6 fraction of each wall ray.
    EXPECT_NEAR(r.meanIntensity, 1.0 / M_PI, 1e-5);
    EXPECT_NEAR(r.flux, r.solidAngle / M_PI, 1e-5);
  }
}

TEST(Radiometer, NarrowConeResolvesAHotSpot) {
  // A hot emitting slab on the +x side of a cold transparent domain: a
  // radiometer aimed at the slab reads high; aimed away it reads ~0.
  RadiometerHarness h;
  for (const auto& c : h.abskg.window()) {
    if (c.x() >= 14) {
      h.abskg[c] = 200.0;
      h.sig[c] = 1.0;
    }
  }
  Tracer t = h.tracer(WallProperties{0.0, 1.0});
  RadiometerSpec toward;
  toward.position = Vector(0.2, 0.5, 0.5);
  toward.viewDirection = Vector(1, 0, 0);
  toward.halfAngleRadians = 0.15;
  toward.nRays = 300;
  RadiometerSpec away = toward;
  away.viewDirection = Vector(-1, 0, 0);

  const double hot = evaluateRadiometer(t, toward).meanIntensity;
  const double cold = evaluateRadiometer(t, away).meanIntensity;
  EXPECT_NEAR(hot, 1.0, 0.05);  // optically thick slab = blackbody at 1
  EXPECT_NEAR(cold, 0.0, 1e-9);
}

TEST(Radiometer, WiderConeDilutesAPointSource) {
  // Aimed at a small hot region, a wider cone averages in cold
  // background: mean intensity decreases with cone angle.
  RadiometerHarness h;
  for (const auto& c : h.abskg.window()) {
    const IntVector d = c - IntVector(14, 8, 8);
    if (d.x() * d.x() + d.y() * d.y() + d.z() * d.z() <= 2) {
      h.abskg[c] = 400.0;
      h.sig[c] = 1.0;
    }
  }
  Tracer t = h.tracer(WallProperties{0.0, 1.0});
  RadiometerSpec spec;
  spec.position = Vector(0.1, 0.53, 0.53);
  spec.viewDirection = (Vector(14.5 / 16, 8.5 / 16, 8.5 / 16) - spec.position)
                           .normalized();
  spec.nRays = 2000;
  spec.halfAngleRadians = 0.06;
  const double narrow = evaluateRadiometer(t, spec).meanIntensity;
  spec.halfAngleRadians = 0.8;
  const double wide = evaluateRadiometer(t, spec).meanIntensity;
  EXPECT_GT(narrow, 3.0 * wide);
}

}  // namespace
}  // namespace rmcrt::core
