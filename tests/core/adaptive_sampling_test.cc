/// Variance-adaptive per-cell ray budgets (DESIGN.md §17): config
/// validation, the bitwise neutrality contract (knobs off = fixed fan;
/// saturated controller = fixed fan), determinism of the budgets across
/// thread counts / tile shapes / patch decompositions (a budget is a
/// pure function of (seed, cell)), the segment savings at bounded error,
/// and the ray-accounting observability surface.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/problems.h"
#include "core/ray_tracer.h"
#include "grid/grid.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace rmcrt::core {
namespace {

using grid::CCVariable;
using grid::CellType;
using grid::Grid;

struct Harness {
  std::shared_ptr<Grid> grid;
  CCVariable<double> abskg, sig;
  CCVariable<CellType> ct;
  WallProperties walls;

  explicit Harness(const RadiationProblem& prob, int n = 16)
      : grid(Grid::makeSingleLevel(Vector(0.0), Vector(1.0), IntVector(n),
                                   IntVector(n))),
        abskg(grid->fineLevel().cells(), 0.0),
        sig(grid->fineLevel().cells(), 0.0),
        ct(grid->fineLevel().cells(), CellType::Flow),
        walls{prob.wallSigmaT4OverPi, prob.wallEmissivity} {
    initializeProperties(grid->fineLevel(), prob, abskg, sig, ct);
  }

  Tracer makeTracer(const TraceConfig& cfg) const {
    TraceLevel tl{LevelGeom::from(grid->fineLevel()),
                  RadiationFieldsView{FieldView<double>::fromHost(abskg),
                                      FieldView<double>::fromHost(sig),
                                      FieldView<CellType>::fromHost(ct)},
                  grid->fineLevel().cells()};
    return Tracer({tl}, walls, cfg);
  }

  CCVariable<double> solve(const TraceConfig& cfg,
                           ThreadPool* pool = nullptr) const {
    Tracer tracer = makeTracer(cfg);
    CCVariable<double> divQ(grid->fineLevel().cells(), 0.0);
    tracer.computeDivQ(grid->fineLevel().cells(),
                       MutableFieldView<double>::fromHost(divQ), pool);
    return divQ;
  }
};

TraceConfig fixedCfg() {
  TraceConfig cfg;
  cfg.nDivQRays = 16;
  cfg.seed = 1234;
  return cfg;
}

TraceConfig adaptiveCfg() {
  TraceConfig cfg = fixedCfg();
  cfg.adaptiveRays = true;
  cfg.nPilotRays = 4;
  cfg.errorTarget = 0.05;
  cfg.nMaxRays = 0;  // cap at nDivQRays
  return cfg;
}

void expectBitwiseEqual(const CCVariable<double>& a,
                        const CCVariable<double>& b) {
  for (const auto& c : a.window())
    ASSERT_EQ(a[c], b[c]) << "cell " << c;  // exact, not NEAR
}

std::vector<double> flatten(const CCVariable<double>& f) {
  std::vector<double> out;
  for (const auto& c : f.window()) out.push_back(f[c]);
  return out;
}

TEST(AdaptiveConfig, RejectsNonPositiveKnobs) {
  Harness h(burnsChriston());
  {
    TraceConfig cfg = adaptiveCfg();
    cfg.nPilotRays = 0;
    EXPECT_THROW(h.makeTracer(cfg), std::invalid_argument);
  }
  {
    TraceConfig cfg = adaptiveCfg();
    cfg.errorTarget = 0.0;
    EXPECT_THROW(h.makeTracer(cfg), std::invalid_argument);
  }
  {
    TraceConfig cfg = adaptiveCfg();
    cfg.errorTarget = -1.0;
    EXPECT_THROW(h.makeTracer(cfg), std::invalid_argument);
  }
  {
    TraceConfig cfg = adaptiveCfg();
    cfg.nMaxRays = -3;
    EXPECT_THROW(h.makeTracer(cfg), std::invalid_argument);
  }
  // With the controller off the knobs are dormant and unvalidated — the
  // defaults of a config that never asked for adaptivity must not throw.
  {
    TraceConfig cfg = fixedCfg();
    cfg.nPilotRays = 0;
    EXPECT_NO_THROW(h.makeTracer(cfg));
  }
}

TEST(AdaptiveConfig, RejectsNonPositiveFluxRays) {
  Harness h(burnsChriston());
  TraceConfig cfg = fixedCfg();
  cfg.nFluxRays = 0;
  EXPECT_THROW(h.makeTracer(cfg), std::invalid_argument);
  cfg.nFluxRays = -5;
  EXPECT_THROW(h.makeTracer(cfg), std::invalid_argument);
}

TEST(AdaptiveConfig, BoundaryFluxDefaultsToConfiguredFluxRays) {
  Harness h(burnsChriston());
  TraceConfig cfg = fixedCfg();
  cfg.nFluxRays = 32;
  Tracer tracer = h.makeTracer(cfg);
  const IntVector cell(0, 8, 8), face(-1, 0, 0);
  // Omitting the count (or passing 0) uses TraceConfig::nFluxRays, so the
  // split from nDivQRays is observable end to end.
  EXPECT_EQ(tracer.boundaryFlux(cell, face),
            tracer.boundaryFlux(cell, face, 32));
  EXPECT_EQ(tracer.boundaryFlux(cell, face, 0),
            tracer.boundaryFlux(cell, face, 32));
}

TEST(AdaptiveSampling, KnobsOffIsBitwiseTheFixedFan) {
  Harness h(burnsChriston());
  TraceConfig off = fixedCfg();
  off.adaptiveRays = false;
  off.nPilotRays = 2;
  off.errorTarget = 0.5;
  off.nMaxRays = 8;
  expectBitwiseEqual(h.solve(fixedCfg()), h.solve(off));
}

TEST(AdaptiveSampling, SaturatedControllerIsBitwiseTheFixedFan) {
  // pilot == cap == nDivQRays: the pilot pass traces the entire fixed
  // fan (same (seed, cell, ray) streams, same left-to-right sum), the
  // top-up adds nothing, and the estimator divides by the same count.
  Harness h(burnsChriston());
  TraceConfig sat = fixedCfg();
  sat.adaptiveRays = true;
  sat.nPilotRays = sat.nDivQRays;
  sat.nMaxRays = sat.nDivQRays;
  expectBitwiseEqual(h.solve(fixedCfg()), h.solve(sat));
}

TEST(AdaptiveSampling, BitwiseIdenticalAcrossThreadCounts) {
  Harness h(burnsChriston());
  const CCVariable<double> serial = h.solve(adaptiveCfg());
  for (int threads : {2, 3, 8}) {
    ThreadPool pool(static_cast<std::size_t>(threads));
    expectBitwiseEqual(serial, h.solve(adaptiveCfg(), &pool));
  }
}

TEST(AdaptiveSampling, BitwiseIdenticalAcrossTileShapes) {
  Harness h(burnsChriston());
  const CCVariable<double> serial = h.solve(adaptiveCfg());
  ThreadPool pool(4);
  for (const IntVector& ts :
       {IntVector(1, 16, 16), IntVector(4, 4, 4), IntVector(5, 3, 2),
        IntVector(3, 64, 1)}) {
    TraceConfig cfg = adaptiveCfg();
    cfg.tileSize = ts;
    expectBitwiseEqual(serial, h.solve(cfg, &pool));
  }
}

TEST(AdaptiveSampling, BudgetIsPureFunctionOfSeedAndCell) {
  // Patch-by-patch assembly over an uneven decomposition reproduces the
  // whole-range solve bitwise: a cell's pilot statistics (hence budget)
  // never depend on which tile or patch evaluated it.
  Harness h(burnsChriston());
  const CCVariable<double> whole = h.solve(adaptiveCfg());
  Tracer tracer = h.makeTracer(adaptiveCfg());
  const CellRange all = h.grid->fineLevel().cells();
  CCVariable<double> assembled(all, 0.0);
  for (const CellRange& patch :
       {CellRange(IntVector(0, 0, 0), IntVector(7, 16, 16)),
        CellRange(IntVector(7, 0, 0), IntVector(16, 5, 16)),
        CellRange(IntVector(7, 5, 0), IntVector(16, 16, 16))})
    tracer.computeDivQ(patch, MutableFieldView<double>::fromHost(assembled));
  expectBitwiseEqual(whole, assembled);
}

TEST(AdaptiveSampling, PackedAndLegacyLayoutsAgreeBitwise) {
  Harness h(burnsChriston());
  TraceConfig packed = adaptiveCfg();
  TraceConfig legacy = adaptiveCfg();
  packed.usePackedFields = true;
  legacy.usePackedFields = false;
  expectBitwiseEqual(h.solve(packed), h.solve(legacy));
}

TEST(AdaptiveSampling, SavesRaysAtBoundedError) {
  Harness h(burnsChriston());
  Tracer fixed = h.makeTracer(fixedCfg());
  Tracer adaptive = h.makeTracer(adaptiveCfg());
  const CellRange cells = h.grid->fineLevel().cells();
  CCVariable<double> qFixed(cells, 0.0), qAdaptive(cells, 0.0);
  fixed.computeDivQ(cells, MutableFieldView<double>::fromHost(qFixed));
  adaptive.computeDivQ(cells, MutableFieldView<double>::fromHost(qAdaptive));

  EXPECT_LT(adaptive.raysTraced(), fixed.raysTraced());
  EXPECT_LT(adaptive.segmentCount(), fixed.segmentCount());
  // The loose in-test error band; the golden test pins the calibrated 1%
  // operating point on the 41^3 benchmark fixture.
  EXPECT_LT(relativeL2Error(flatten(qAdaptive), flatten(qFixed)), 0.10);
}

TEST(AdaptiveSampling, RayAccountingIsExactForTheFixedFan) {
  Harness h(burnsChriston());
  const TraceConfig cfg = fixedCfg();
  Tracer tracer = h.makeTracer(cfg);
  const CellRange cells = h.grid->fineLevel().cells();
  CCVariable<double> divQ(cells, 0.0);
  tracer.computeDivQ(cells, MutableFieldView<double>::fromHost(divQ));
  const std::uint64_t nCells = static_cast<std::uint64_t>(cells.volume());
  EXPECT_EQ(tracer.cellsTraced(), nCells);
  EXPECT_EQ(tracer.raysTraced(),
            nCells * static_cast<std::uint64_t>(cfg.nDivQRays));
  EXPECT_EQ(tracer.maxRayBudget(),
            static_cast<std::uint64_t>(cfg.nDivQRays));
  tracer.resetRayStats();
  EXPECT_EQ(tracer.raysTraced(), 0u);
  EXPECT_EQ(tracer.cellsTraced(), 0u);
  EXPECT_EQ(tracer.maxRayBudget(), 0u);
}

TEST(AdaptiveSampling, BudgetsRespectPilotAndCapBounds) {
  Harness h(burnsChriston());
  TraceConfig cfg = adaptiveCfg();
  Tracer tracer = h.makeTracer(cfg);
  const CellRange cells = h.grid->fineLevel().cells();
  CCVariable<double> divQ(cells, 0.0);
  tracer.computeDivQ(cells, MutableFieldView<double>::fromHost(divQ));
  const std::uint64_t nCells = static_cast<std::uint64_t>(cells.volume());
  EXPECT_GE(tracer.raysTraced(),
            nCells * static_cast<std::uint64_t>(cfg.nPilotRays));
  EXPECT_LE(tracer.raysTraced(),
            nCells * static_cast<std::uint64_t>(cfg.nDivQRays));
  EXPECT_LE(tracer.maxRayBudget(),
            static_cast<std::uint64_t>(cfg.nDivQRays));
  EXPECT_GE(tracer.maxRayBudget(),
            static_cast<std::uint64_t>(cfg.nPilotRays));
}

}  // namespace
}  // namespace rmcrt::core
