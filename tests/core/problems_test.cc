#include "core/problems.h"

#include <gtest/gtest.h>

#include <cmath>

#include "grid/grid.h"

namespace rmcrt::core {
namespace {

TEST(BurnsChriston, KappaPeaksAtCenterFallsToCorners) {
  RadiationProblem p = burnsChriston();
  EXPECT_NEAR(p.abskg(Vector(0.5, 0.5, 0.5)), 1.0, 1e-12);
  EXPECT_NEAR(p.abskg(Vector(0.0, 0.0, 0.0)), 0.1, 1e-12);
  EXPECT_NEAR(p.abskg(Vector(1.0, 1.0, 1.0)), 0.1, 1e-12);
  EXPECT_NEAR(p.abskg(Vector(0.0, 0.5, 0.5)), 0.1, 1e-12);
}

TEST(BurnsChriston, SeparableProductForm) {
  RadiationProblem p = burnsChriston();
  // kappa - 0.1 factors into the three 1-D hat functions.
  auto hat = [](double t) { return 1.0 - 2.0 * std::abs(t - 0.5); };
  const Vector x(0.3, 0.7, 0.55);
  EXPECT_NEAR(p.abskg(x) - 0.1,
              0.9 * hat(x.x()) * hat(x.y()) * hat(x.z()), 1e-12);
}

TEST(BurnsChriston, UniformSourceColdWalls) {
  RadiationProblem p = burnsChriston();
  EXPECT_DOUBLE_EQ(p.sigmaT4OverPi(Vector(0.2, 0.9, 0.1)), 1.0 / M_PI);
  EXPECT_DOUBLE_EQ(p.wallSigmaT4OverPi, 0.0);
  EXPECT_DOUBLE_EQ(p.wallEmissivity, 1.0);
}

TEST(UniformMedium, ConstantEverywhere) {
  RadiationProblem p = uniformMedium(2.5, 3.0);
  EXPECT_DOUBLE_EQ(p.abskg(Vector(0.1, 0.1, 0.1)), 2.5);
  EXPECT_DOUBLE_EQ(p.abskg(Vector(0.9, 0.2, 0.7)), 2.5);
  EXPECT_DOUBLE_EQ(p.sigmaT4OverPi(Vector(0.5, 0.5, 0.5)), 3.0 / M_PI);
  EXPECT_DOUBLE_EQ(p.wallSigmaT4OverPi, 3.0 / M_PI);
}

TEST(SyntheticBoiler, HotCoreCoolerWalls) {
  RadiationProblem p = syntheticBoiler();
  const double core = p.sigmaT4OverPi(Vector(0.5, 0.5, 0.4));
  const double corner = p.sigmaT4OverPi(Vector(0.0, 0.0, 1.0));
  EXPECT_GT(core, 10.0 * corner);
  EXPECT_GT(p.abskg(Vector(0.5, 0.5, 0.4)), p.abskg(Vector(0.0, 0.0, 0.0)));
  EXPECT_GT(p.wallSigmaT4OverPi, 0.0);
  EXPECT_LT(p.wallEmissivity, 1.0);
}

TEST(InitializeProperties, SamplesCellCentersIncludingGhosts) {
  auto g = grid::Grid::makeSingleLevel(Vector(0.0), Vector(1.0),
                                       IntVector(8), IntVector(8));
  const grid::Level& level = g->fineLevel();
  grid::Patch p(0, 0, CellRange(IntVector(2), IntVector(6)));
  grid::CCVariable<double> abskg(p, 2, 0.0);
  grid::CCVariable<double> sig(p, 2, 0.0);
  grid::CCVariable<grid::CellType> ct(p, 2, grid::CellType::Flow);
  RadiationProblem prob = burnsChriston();
  initializeProperties(level, prob, abskg, sig, ct);
  for (const auto& c : abskg.window()) {
    EXPECT_DOUBLE_EQ(abskg[c], prob.abskg(level.cellCenter(c)));
    EXPECT_DOUBLE_EQ(sig[c], 1.0 / M_PI);
    EXPECT_EQ(ct[c], grid::CellType::Flow);
  }
}

}  // namespace
}  // namespace rmcrt::core
