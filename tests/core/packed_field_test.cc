/// The packed kernel data layout (DESIGN.md §12): record fusion
/// semantics, the incremental-stride invariants the DDA relies on, the
/// PackedLevelCache repack bookkeeping, and — the load-bearing claim —
/// bitwise identity of divQ and boundaryFlux between the packed
/// incremental-stride march and the legacy three-view march on a
/// two-level ROI configuration that exercises wall-cell absorption,
/// coarse-level handoff, and domain-exit paths, serial and threaded.
/// Built standalone so the TSan and ASan+UBSan CI jobs run it too.

#include <gtest/gtest.h>

#include <vector>

#include "core/packed_field.h"
#include "core/problems.h"
#include "core/ray_tracer.h"
#include "grid/grid.h"
#include "grid/operators.h"
#include "util/thread_pool.h"

namespace rmcrt::core {
namespace {

using grid::CCVariable;
using grid::CellType;
using grid::Grid;

TEST(PackedField, RecordsMatchSourceFieldsBitwise) {
  const CellRange w(IntVector(-2, 0, 1), IntVector(3, 4, 5));
  CCVariable<double> abskg(w, 0.0), sig(w, 0.0);
  CCVariable<CellType> ct(w, CellType::Flow);
  int i = 0;
  for (const IntVector& c : w) {
    abskg[c] = 0.1 * ++i;
    sig[c] = 3.25 / i;
    if (i % 7 == 0) ct[c] = CellType::Wall;
  }

  const PackedLevelField packed(
      RadiationFieldsView{FieldView<double>::fromHost(abskg),
                          FieldView<double>::fromHost(sig),
                          FieldView<CellType>::fromHost(ct)});
  ASSERT_TRUE(packed.valid());
  EXPECT_EQ(packed.window(), w);
  const PackedFieldView v = packed.view();
  for (const IntVector& c : w) {
    const PackedCell& rec = v[c];
    EXPECT_EQ(rec.abskg, abskg[c]);
    EXPECT_EQ(rec.sigmaT4OverPi, sig[c]);
    EXPECT_EQ(rec.cellType, static_cast<std::uint32_t>(ct[c]));
  }
}

TEST(PackedField, MissingCellTypeBakesFlowSentinel) {
  const CellRange w(IntVector(0), IntVector(3));
  CCVariable<double> abskg(w, 0.5), sig(w, 1.5);
  const PackedLevelField packed(
      RadiationFieldsView{FieldView<double>::fromHost(abskg),
                          FieldView<double>::fromHost(sig),
                          FieldView<CellType>{}});
  for (const IntVector& c : w)
    EXPECT_EQ(packed.view()[c].cellType, PackedCell::kFlow);
}

TEST(PackedField, StridesMatchOffsetDeltas) {
  // The incremental DDA's core invariant: bumping the linear offset by
  // stride(axis) is exactly a unit step along that axis.
  const CellRange w(IntVector(-1, 2, 0), IntVector(6, 7, 4));
  std::vector<PackedCell> storage(static_cast<std::size_t>(w.volume()));
  const PackedFieldView v(storage.data(), w);
  const IntVector unit[3] = {IntVector(1, 0, 0), IntVector(0, 1, 0),
                             IntVector(0, 0, 1)};
  for (const IntVector& c : w)
    for (int a = 0; a < 3; ++a) {
      const IntVector n = c + unit[a];
      if (!w.contains(n)) continue;
      EXPECT_EQ(v.offsetOf(n) - v.offsetOf(c), v.stride(a));
    }
  EXPECT_EQ(v.offsetOf(w.low()), 0);
}

TEST(PackedField, RepackRefreshesOnlyTheRegion) {
  const CellRange w(IntVector(0), IntVector(4));
  CCVariable<double> abskg(w, 1.0), sig(w, 2.0);
  RadiationFieldsView fields{FieldView<double>::fromHost(abskg),
                             FieldView<double>::fromHost(sig),
                             FieldView<CellType>{}};
  PackedLevelField packed(fields);

  // Mutate the source everywhere, repack only a corner box.
  for (const IntVector& c : w) abskg[c] = 9.0;
  const CellRange corner(IntVector(0), IntVector(2));
  packed.repack(fields, corner);
  for (const IntVector& c : w)
    EXPECT_EQ(packed.view()[c].abskg, corner.contains(c) ? 9.0 : 1.0);
}

TEST(PackedLevelCache, FullPackOnceThenRegionRepacksOnCoverageChange) {
  const CellRange w(IntVector(0), IntVector(8));
  CCVariable<double> abskg(w, 1.0), sig(w, 2.0);
  RadiationFieldsView fields{FieldView<double>::fromHost(abskg),
                             FieldView<double>::fromHost(sig),
                             FieldView<CellType>{}};
  PackedLevelCache cache;

  const CellRange boxA(IntVector(0), IntVector(2));
  const CellRange boxB(IntVector(4, 0, 0), IntVector(6, 2, 2));
  cache.refresh(fields, {boxA});
  EXPECT_EQ(cache.fullPacks(), 1);
  EXPECT_EQ(cache.regionRepacks(), 0);

  // Unchanged coverage: records reused verbatim, no repack at all.
  cache.refresh(fields, {boxA});
  EXPECT_EQ(cache.fullPacks(), 1);
  EXPECT_EQ(cache.regionRepacks(), 0);

  // boxB enters, boxA leaves: exactly the symmetric difference repacks,
  // and the repack picks up the current field values in those regions.
  for (const IntVector& c : boxA) abskg[c] = 5.0;
  for (const IntVector& c : boxB) abskg[c] = 7.0;
  const PackedFieldView v = cache.refresh(fields, {boxB});
  EXPECT_EQ(cache.fullPacks(), 1);
  EXPECT_EQ(cache.regionRepacks(), 2);
  for (const IntVector& c : boxA) EXPECT_EQ(v[c].abskg, 5.0);
  for (const IntVector& c : boxB) EXPECT_EQ(v[c].abskg, 7.0);

  // A window change (regrid of this level) forces a fresh full pack.
  const CellRange w2(IntVector(0), IntVector(6));
  CCVariable<double> abskg2(w2, 3.0), sig2(w2, 4.0);
  cache.refresh(RadiationFieldsView{FieldView<double>::fromHost(abskg2),
                                    FieldView<double>::fromHost(sig2),
                                    FieldView<CellType>{}},
                {boxA});
  EXPECT_EQ(cache.fullPacks(), 2);
}

/// Two-level ROI fixture with interior wall cells: rays starting on the
/// fine ROI hand off to the coarse level, absorb at the intruding wall
/// block or exit the domain — every branch of the march loop.
struct TwoLevelFixture {
  std::shared_ptr<Grid> grid;
  CCVariable<double> fAbs, fSig;
  CCVariable<CellType> fCt;
  CCVariable<double> cAbs, cSig;
  CCVariable<CellType> cCt;
  CellRange roi, patch;

  TwoLevelFixture()
      : grid(Grid::makeTwoLevel(Vector(0.0), Vector(1.0), IntVector(16),
                                IntVector(4), IntVector(4), IntVector(4))),
        fAbs(grid->fineLevel().cells(), 0.0),
        fSig(grid->fineLevel().cells(), 0.0),
        fCt(grid->fineLevel().cells(), CellType::Flow),
        cAbs(grid->coarseLevel().cells(), 0.0),
        cSig(grid->coarseLevel().cells(), 0.0),
        cCt(grid->coarseLevel().cells(), CellType::Flow) {
    initializeProperties(grid->fineLevel(), burnsChriston(), fAbs, fSig,
                         fCt);
    // An intruding wall block on the fine level (rr-aligned so it
    // coarsens exactly), with a wall emissive source so wall absorption
    // contributes a distinctive term.
    for (const IntVector& c :
         CellRange(IntVector(8, 8, 8), IntVector(12, 12, 12)))
      fCt[c] = CellType::Wall;
    const IntVector rr = grid->fineLevel().refinementRatio();
    grid::coarsenAverage(fAbs, rr, cAbs, grid->coarseLevel().cells());
    grid::coarsenAverage(fSig, rr, cSig, grid->coarseLevel().cells());
    grid::coarsenCellType(fCt, rr, cCt, grid->coarseLevel().cells());
    // ROI = first fine patch + halo; marching beyond it continues on the
    // coarse level until the wall block or the domain boundary.
    patch = grid->fineLevel().patch(0).cells();
    roi = grid->fineLevel()
              .patch(0)
              .ghostWindow(3)
              .intersect(grid->fineLevel().cells());
  }

  Tracer tracer(bool packed, int rays = 12) const {
    TraceLevel fineTL{LevelGeom::from(grid->fineLevel()),
                      RadiationFieldsView{FieldView<double>::fromHost(fAbs),
                                          FieldView<double>::fromHost(fSig),
                                          FieldView<CellType>::fromHost(fCt)},
                      roi};
    TraceLevel coarseTL{
        LevelGeom::from(grid->coarseLevel()),
        RadiationFieldsView{FieldView<double>::fromHost(cAbs),
                            FieldView<double>::fromHost(cSig),
                            FieldView<CellType>::fromHost(cCt)},
        grid->coarseLevel().cells()};
    TraceConfig cfg;
    cfg.nDivQRays = rays;
    cfg.seed = 33;
    cfg.usePackedFields = packed;
    return Tracer({fineTL, coarseTL}, WallProperties{0.25, 0.9}, cfg);
  }
};

TEST(PackedVsLegacy, DivQBitwiseIdenticalOnTwoLevelRoi) {
  const TwoLevelFixture fx;
  Tracer packed = fx.tracer(true);
  Tracer legacy = fx.tracer(false);

  CCVariable<double> divQPacked(fx.patch, 0.0), divQLegacy(fx.patch, 0.0);
  packed.computeDivQ(fx.patch, MutableFieldView<double>::fromHost(divQPacked));
  legacy.computeDivQ(fx.patch, MutableFieldView<double>::fromHost(divQLegacy));
  for (const IntVector& c : fx.patch)
    ASSERT_EQ(divQPacked[c], divQLegacy[c]) << "cell " << c;
  // Identical FP ops in identical order also means identical marching
  // work: the segment counters must agree exactly.
  EXPECT_EQ(packed.segmentCount(), legacy.segmentCount());
}

TEST(PackedVsLegacy, DivQBitwiseIdenticalThreaded) {
  const TwoLevelFixture fx;
  Tracer packed = fx.tracer(true);
  Tracer legacy = fx.tracer(false);
  ThreadPool pool(4);

  CCVariable<double> divQPacked(fx.patch, 0.0), divQLegacy(fx.patch, 0.0);
  packed.computeDivQ(fx.patch, MutableFieldView<double>::fromHost(divQPacked),
                     &pool);
  legacy.computeDivQ(fx.patch, MutableFieldView<double>::fromHost(divQLegacy),
                     &pool);
  for (const IntVector& c : fx.patch)
    ASSERT_EQ(divQPacked[c], divQLegacy[c]) << "cell " << c;
}

TEST(PackedVsLegacy, BoundaryFluxBitwiseIdentical) {
  const TwoLevelFixture fx;
  Tracer packed = fx.tracer(true);
  Tracer legacy = fx.tracer(false);
  ThreadPool pool(4);

  // A boundary face of the ROI patch: rays sweep the inward hemisphere,
  // crossing fine cells, coarse cells, the wall block, and the far
  // domain boundary.
  const IntVector cell(0, 2, 2);
  const IntVector face(-1, 0, 0);
  const double serialPacked = packed.boundaryFlux(cell, face, 64);
  const double serialLegacy = legacy.boundaryFlux(cell, face, 64);
  EXPECT_EQ(serialPacked, serialLegacy);
  const double pooledPacked = packed.boundaryFlux(cell, face, 64, &pool);
  EXPECT_EQ(pooledPacked, serialLegacy);
}

TEST(PackedVsLegacy, SharedPackedViewMatchesTracerOwnedPacking) {
  // Supplying a pre-packed coarse view (the PackedLevelCache path) must
  // be indistinguishable from letting the Tracer pack it itself.
  const TwoLevelFixture fx;
  Tracer owned = fx.tracer(true);

  const PackedLevelField coarsePacked(
      RadiationFieldsView{FieldView<double>::fromHost(fx.cAbs),
                          FieldView<double>::fromHost(fx.cSig),
                          FieldView<CellType>::fromHost(fx.cCt)});
  TraceLevel fineTL{LevelGeom::from(fx.grid->fineLevel()),
                    RadiationFieldsView{FieldView<double>::fromHost(fx.fAbs),
                                        FieldView<double>::fromHost(fx.fSig),
                                        FieldView<CellType>::fromHost(fx.fCt)},
                    fx.roi};
  TraceLevel coarseTL{LevelGeom::from(fx.grid->coarseLevel()),
                      RadiationFieldsView{FieldView<double>::fromHost(fx.cAbs),
                                          FieldView<double>::fromHost(fx.cSig),
                                          FieldView<CellType>::fromHost(fx.cCt)},
                      fx.grid->coarseLevel().cells(), coarsePacked.view()};
  TraceConfig cfg;
  cfg.nDivQRays = 12;
  cfg.seed = 33;
  Tracer shared({fineTL, coarseTL}, WallProperties{0.25, 0.9}, cfg);

  CCVariable<double> divQOwned(fx.patch, 0.0), divQShared(fx.patch, 0.0);
  owned.computeDivQ(fx.patch, MutableFieldView<double>::fromHost(divQOwned));
  shared.computeDivQ(fx.patch, MutableFieldView<double>::fromHost(divQShared));
  for (const IntVector& c : fx.patch)
    ASSERT_EQ(divQOwned[c], divQShared[c]) << "cell " << c;
}

}  // namespace
}  // namespace rmcrt::core
