/// End-to-end pipeline tests: the full distributed RMCRT task pipeline
/// (init -> coarsen -> trace) over the scheduler/comm substrate, on CPU
/// and on the simulated GPU, validated against the serial solver. The
/// counter-based RNG makes the comparison EXACT: any staging, coarsening
/// or kernel defect shows up as a bitwise difference.

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "core/problems.h"
#include "core/rmcrt_component.h"
#include "grid/load_balancer.h"
#include "runtime/scheduler.h"

namespace rmcrt::core {
namespace {

using grid::CCVariable;
using grid::Grid;
using grid::LoadBalancer;
using runtime::RequestContainer;
using runtime::Scheduler;

RmcrtSetup smallSetup() {
  RmcrtSetup setup;
  setup.problem = burnsChriston();
  setup.trace.nDivQRays = 12;
  setup.trace.seed = 21;
  setup.roiHalo = 3;
  return setup;
}

/// Run the distributed pipeline on \p numRanks ranks; returns the
/// schedulers (owning the per-rank results).
std::vector<std::unique_ptr<Scheduler>> runDistributed(
    std::shared_ptr<const Grid> grid, int numRanks, const RmcrtSetup& setup,
    bool gpu, std::vector<std::unique_ptr<gpu::GpuDevice>>* /*devices*/,
    std::vector<std::unique_ptr<gpu::GpuDataWarehouse>>* gdws) {
  auto lb = std::make_shared<LoadBalancer>(*grid, numRanks);
  auto world = std::make_shared<comm::Communicator>(numRanks);
  std::vector<std::unique_ptr<Scheduler>> scheds;
  for (int r = 0; r < numRanks; ++r)
    scheds.push_back(std::make_unique<Scheduler>(grid, lb, *world, r));

  std::vector<std::thread> threads;
  for (int r = 0; r < numRanks; ++r) {
    threads.emplace_back([&, r] {
      if (gpu) {
        RmcrtComponent::registerTwoLevelGpuPipeline(*scheds[r], setup,
                                                    *(*gdws)[r]);
      } else {
        RmcrtComponent::registerTwoLevelPipeline(*scheds[r], setup);
      }
      scheds[r]->executeTimestep();
    });
  }
  for (auto& t : threads) t.join();
  // Keep world alive as long as schedulers (captured by shared_ptr trick):
  // schedulers reference it only during executeTimestep, so we are safe.
  static std::vector<std::shared_ptr<comm::Communicator>> keepAlive;
  keepAlive.push_back(world);
  return scheds;
}

void compareToSerial(const Grid& grid, const RmcrtSetup& setup,
                     std::vector<std::unique_ptr<Scheduler>>& scheds) {
  CCVariable<double> serial = RmcrtComponent::solveSerialTwoLevel(grid, setup);
  for (auto& s : scheds) {
    for (int pid : s->loadBalancer().patchesOf(
             s->rank(), grid, grid.numLevels() - 1)) {
      const auto& divQ = s->newDW().get<double>(RmcrtLabels::divQ, pid);
      for (const auto& c : grid.patchById(pid)->cells())
        ASSERT_DOUBLE_EQ(divQ[c], serial[c])
            << "patch " << pid << " cell " << c;
    }
  }
}

TEST(RmcrtPipeline, DistributedCpuMatchesSerialExactly) {
  auto grid = Grid::makeTwoLevel(Vector(0.0), Vector(1.0), IntVector(16),
                                 IntVector(4), IntVector(4), IntVector(4));
  const RmcrtSetup setup = smallSetup();
  auto scheds = runDistributed(grid, 4, setup, false, nullptr, nullptr);
  compareToSerial(*grid, setup, scheds);
}

TEST(RmcrtPipeline, DistributedCpuSingleRankMatches) {
  auto grid = Grid::makeTwoLevel(Vector(0.0), Vector(1.0), IntVector(16),
                                 IntVector(4), IntVector(8), IntVector(4));
  const RmcrtSetup setup = smallSetup();
  auto scheds = runDistributed(grid, 1, setup, false, nullptr, nullptr);
  compareToSerial(*grid, setup, scheds);
}

TEST(RmcrtPipeline, ResultIndependentOfRankCount) {
  // 2 ranks vs 3 ranks: identical divQ (the decomposition-independence
  // the counter-based RNG buys; paper relies on this for validation).
  auto grid = Grid::makeTwoLevel(Vector(0.0), Vector(1.0), IntVector(16),
                                 IntVector(4), IntVector(4), IntVector(4));
  const RmcrtSetup setup = smallSetup();
  auto s2 = runDistributed(grid, 2, setup, false, nullptr, nullptr);
  auto s3 = runDistributed(grid, 3, setup, false, nullptr, nullptr);
  compareToSerial(*grid, setup, s2);
  compareToSerial(*grid, setup, s3);
}

TEST(RmcrtPipeline, GpuPipelineMatchesSerialExactly) {
  auto grid = Grid::makeTwoLevel(Vector(0.0), Vector(1.0), IntVector(16),
                                 IntVector(4), IntVector(4), IntVector(4));
  const RmcrtSetup setup = smallSetup();
  const int numRanks = 2;
  std::vector<std::unique_ptr<gpu::GpuDevice>> devices;
  std::vector<std::unique_ptr<gpu::GpuDataWarehouse>> gdws;
  for (int r = 0; r < numRanks; ++r) {
    gpu::GpuDevice::Config cfg;
    cfg.globalMemoryBytes = 256 << 20;
    devices.push_back(std::make_unique<gpu::GpuDevice>(cfg));
    gdws.push_back(std::make_unique<gpu::GpuDataWarehouse>(*devices.back()));
  }
  auto scheds = runDistributed(grid, numRanks, setup, true, &devices, &gdws);
  compareToSerial(*grid, setup, scheds);
  // The level database held exactly one shared copy of the fused coarse
  // records (abskg + sigmaT4 + cellType travel as one PackedCell array).
  for (auto& gdw : gdws) EXPECT_EQ(gdw->numLevelVarCopies(), 1u);
  // PCIe traffic flowed both ways.
  for (auto& dev : devices) {
    EXPECT_GT(dev->stats().h2dBytes, 0u);
    EXPECT_GT(dev->stats().d2hBytes, 0u);
  }
}

TEST(RmcrtPipeline, SingleLevelPipelineMatchesSerial) {
  auto grid = Grid::makeSingleLevel(Vector(0.0), Vector(1.0), IntVector(16),
                                    IntVector(4));
  RmcrtSetup setup = smallSetup();

  auto lb = std::make_shared<LoadBalancer>(*grid, 3);
  comm::Communicator world(3);
  std::vector<std::unique_ptr<Scheduler>> scheds;
  for (int r = 0; r < 3; ++r)
    scheds.push_back(std::make_unique<Scheduler>(grid, lb, world, r));
  std::vector<std::thread> threads;
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([&, r] {
      RmcrtComponent::registerSingleLevelPipeline(*scheds[r], setup);
      scheds[r]->executeTimestep();
    });
  }
  for (auto& t : threads) t.join();

  CCVariable<double> serial =
      RmcrtComponent::solveSerialSingleLevel(*grid, setup);
  for (auto& s : scheds) {
    for (int pid : s->loadBalancer().patchesOf(s->rank())) {
      const auto& divQ = s->newDW().get<double>(RmcrtLabels::divQ, pid);
      for (const auto& c : grid->patchById(pid)->cells())
        ASSERT_DOUBLE_EQ(divQ[c], serial[c]);
    }
  }
}

TEST(RmcrtPipeline, TwoLevelMovesLessDataThanSingleLevel) {
  // The paper's reason for the AMR scheme: per-rank received bytes for
  // whole-level replication shrink by ~RR^3 when the radiation mesh is
  // the coarse level.
  // Needs a grid large enough that whole-level replication dominates the
  // halo traffic (at toy sizes the fixed halo overhead of the 2-level
  // scheme swamps the saved replication; the paper's win is asymptotic in
  // N_fine / RR^3).
  RmcrtSetup setup = smallSetup();
  setup.problem = uniformMedium(8.0, 1.0);  // short rays: cheap trace
  setup.trace.nDivQRays = 4;
  setup.roiHalo = 1;
  const int P = 4;

  auto run = [&](bool twoLevel) -> std::uint64_t {
    std::shared_ptr<Grid> grid;
    if (twoLevel)
      grid = Grid::makeTwoLevel(Vector(0.0), Vector(1.0), IntVector(32),
                                IntVector(4), IntVector(8), IntVector(4));
    else
      grid = Grid::makeSingleLevel(Vector(0.0), Vector(1.0), IntVector(32),
                                   IntVector(8));
    auto lb = std::make_shared<LoadBalancer>(*grid, P);
    comm::Communicator world(P);
    std::vector<std::unique_ptr<Scheduler>> scheds;
    for (int r = 0; r < P; ++r)
      scheds.push_back(std::make_unique<Scheduler>(grid, lb, world, r));
    std::vector<std::thread> threads;
    for (int r = 0; r < P; ++r) {
      threads.emplace_back([&, r] {
        if (twoLevel)
          RmcrtComponent::registerTwoLevelPipeline(*scheds[r], setup);
        else
          RmcrtComponent::registerSingleLevelPipeline(*scheds[r], setup);
        scheds[r]->executeTimestep();
      });
    }
    for (auto& t : threads) t.join();
    std::uint64_t bytes = 0;
    for (auto& s : scheds) bytes += s->stats().bytesReceived;
    return bytes;
  };

  const std::uint64_t singleLevelBytes = run(false);
  const std::uint64_t twoLevelBytes = run(true);
  EXPECT_LT(twoLevelBytes, singleLevelBytes / 2)
      << "AMR scheme must cut replication volume substantially";
}

}  // namespace
}  // namespace rmcrt::core
