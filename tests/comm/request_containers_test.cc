/// Tests of the two request-container designs from paper Section IV-A:
/// the legacy mutex-protected vector (with its buffer-leak race) and the
/// wait-free pool replacement (Algorithm 1). The harness drives both
/// through the same simulated-MPI workload so the behavioural contrast is
/// direct: the pool never double-processes, the racy legacy mode leaks.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "comm/comm_node.h"
#include "comm/communicator.h"
#include "comm/locked_queue.h"
#include "comm/request_pool.h"

namespace rmcrt::comm {
namespace {

/// Posts \p nMessages receives on rank 1, each with a completion callback
/// that simulates the legacy processing pattern: allocate a staging buffer
/// (ledger.allocated), process, release (ledger.released). Double
/// processing allocates twice but releases once — the paper's leak.
template <typename Container>
void runWorkload(Container& container, int nMessages, int nPollThreads,
                 BufferLedger& ledger) {
  Communicator world(2);
  std::vector<std::unique_ptr<double[]>> buffers;
  buffers.reserve(static_cast<std::size_t>(nMessages));
  // Per-message once-guard modeling the real deallocation: every thread
  // that believes it is processing the message allocates a staging buffer,
  // but the deallocating callback can only run once per message — exactly
  // the paper's leak structure.
  auto releasedOnce =
      std::make_shared<std::vector<std::atomic<bool>>>(nMessages);

  for (int i = 0; i < nMessages; ++i) {
    buffers.push_back(std::make_unique<double[]>(8));
    Request r = world.irecv(1, 0, i, buffers.back().get(), 8 * sizeof(double));
    container.add(CommNode(std::move(r), [&ledger, releasedOnce,
                                          i](const Request&) {
      ledger.allocated.fetch_add(1, std::memory_order_relaxed);
      // Emulate unpack work so the race window is realistically wide.
      volatile double sink = 0;
      for (int k = 0; k < 50; ++k) sink = sink + k;
      if (!(*releasedOnce)[static_cast<std::size_t>(i)].exchange(true))
        ledger.released.fetch_add(1, std::memory_order_relaxed);
    }));
  }

  std::atomic<bool> sendsDone{false};
  std::thread sender([&] {
    double payload[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    for (int i = 0; i < nMessages; ++i)
      world.isend(0, 1, i, payload, sizeof payload);
    sendsDone.store(true);
  });

  std::vector<std::thread> pollers;
  for (int t = 0; t < nPollThreads; ++t) {
    pollers.emplace_back([&] {
      while (!sendsDone.load() || container.pending() > 0)
        container.processReady();
    });
  }
  sender.join();
  for (auto& t : pollers) t.join();
}

TEST(WaitFreeRequestPool, CompletesAllMessagesExactlyOnce) {
  WaitFreeRequestPool pool;
  BufferLedger ledger;
  std::atomic<int> callbackRuns{0};

  Communicator world(2);
  std::vector<std::unique_ptr<int[]>> bufs;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    bufs.push_back(std::make_unique<int[]>(1));
    Request r = world.irecv(1, 0, i, bufs.back().get(), sizeof(int));
    pool.add(CommNode(std::move(r),
                      [&callbackRuns](const Request&) { callbackRuns++; }));
  }
  for (int i = 0; i < n; ++i) world.isend(0, 1, i, &i, sizeof i);

  std::vector<std::thread> pollers;
  for (int t = 0; t < 8; ++t) {
    pollers.emplace_back([&pool] {
      while (pool.pending() > 0) pool.processReady();
    });
  }
  for (auto& t : pollers) t.join();
  EXPECT_EQ(callbackRuns.load(), n);
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(WaitFreeRequestPool, NoLeakUnderHeavyContention) {
  WaitFreeRequestPool pool;
  BufferLedger ledger;
  runWorkload(pool, 4000, 8, ledger);
  EXPECT_EQ(ledger.leaked(), 0);
  EXPECT_EQ(ledger.allocated.load(), 4000);
}

TEST(WaitFreeRequestPool, ProcessOneCompletesSingleRequest) {
  WaitFreeRequestPool pool;
  Communicator world(2);
  int out1 = 0, out2 = 0;
  std::atomic<int> done{0};
  Request r1 = world.irecv(1, 0, 1, &out1, sizeof out1);
  Request r2 = world.irecv(1, 0, 2, &out2, sizeof out2);
  pool.add(CommNode(std::move(r1), [&](const Request&) { done++; }));
  pool.add(CommNode(std::move(r2), [&](const Request&) { done++; }));
  EXPECT_FALSE(pool.processOne());  // nothing ready yet
  const int v = 9;
  world.isend(0, 1, 1, &v, sizeof v);
  EXPECT_TRUE(pool.processOne());
  EXPECT_EQ(done.load(), 1);
  EXPECT_EQ(pool.pending(), 1u);
}

TEST(LockedRequestQueue, SerializedModeIsCorrect) {
  LockedRequestQueue q(LockedRequestQueue::Mode::Serialized);
  BufferLedger ledger;
  runWorkload(q, 4000, 8, ledger);
  EXPECT_EQ(ledger.leaked(), 0);
  EXPECT_EQ(ledger.allocated.load(), 4000);
}

// Reproduces the paper's race: "multiple threads simultaneously processing
// the same received message, with all threads allocating a buffer for the
// same MPI message, and only one thread actually ... invoking the callback
// to deallocate its buffer." In our ledger model a double-process shows up
// as allocated > nMessages. The race is probabilistic; we try several
// rounds and accept the first reproduction. If the scheduler never
// interleaves unluckily (possible on a 1-core box), we skip rather than
// fail — the property under test is "the race EXISTS", demonstrated when
// any round leaks.
TEST(LockedRequestQueue, RacyModeDoubleProcessesUnderContention) {
  std::int64_t extra = 0;
  for (int round = 0; round < 20 && extra == 0; ++round) {
    LockedRequestQueue q(LockedRequestQueue::Mode::Racy);
    BufferLedger ledger;
    runWorkload(q, 3000, 8, ledger);
    extra = ledger.allocated.load() - 3000;
  }
  if (extra == 0 && std::thread::hardware_concurrency() < 2)
    GTEST_SKIP() << "single hardware thread: race cannot interleave";
  EXPECT_GT(extra, 0) << "legacy racy mode did not double-process; the "
                         "defect should reproduce under contention";
}

TEST(LockedRequestQueue, PendingCountsUnprocessed) {
  LockedRequestQueue q;
  Communicator world(2);
  int out = 0;
  Request r = world.irecv(1, 0, 0, &out, sizeof out);
  q.add(CommNode(std::move(r), nullptr));
  EXPECT_EQ(q.pending(), 1u);
  const int v = 3;
  world.isend(0, 1, 0, &v, sizeof v);
  q.processReady();
  EXPECT_EQ(q.pending(), 0u);
}

TEST(RequestContainers, BothDrainInterleavedSendRecv) {
  // Same traffic through both containers, single-threaded: identical
  // completion counts.
  for (int variant = 0; variant < 2; ++variant) {
    Communicator world(2);
    std::atomic<int> done{0};
    WaitFreeRequestPool pool;
    LockedRequestQueue queue(LockedRequestQueue::Mode::Serialized);
    std::vector<std::unique_ptr<int[]>> bufs;
    for (int i = 0; i < 100; ++i) {
      bufs.push_back(std::make_unique<int[]>(1));
      Request r = world.irecv(1, 0, i, bufs.back().get(), sizeof(int));
      CommNode node(std::move(r), [&done](const Request&) { done++; });
      if (variant == 0)
        pool.add(std::move(node));
      else
        queue.add(std::move(node));
      world.isend(0, 1, i, &i, sizeof i);
      if (variant == 0)
        pool.processReady();
      else
        queue.processReady();
    }
    EXPECT_EQ(done.load(), 100) << "variant " << variant;
  }
}

}  // namespace
}  // namespace rmcrt::comm
