/// Tests of the deterministic fault injector: seeded per-link
/// reproducibility, scripted one-shot faults, each fault action's observable
/// effect on the communicator, and — the regression the containers need —
/// that the three request-container designs keep (or, for the racy legacy
/// mode, fail to keep) their guarantees when messages duplicate, delay, and
/// reorder underneath them.

#include "comm/fault_injector.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "comm/comm_node.h"
#include "comm/communicator.h"
#include "comm/locked_queue.h"
#include "comm/request_pool.h"

namespace rmcrt::comm {
namespace {

using namespace std::chrono_literals;

/// Poll until \p pred holds or \p timeout elapses.
template <typename Pred>
bool waitFor(Pred pred, std::chrono::milliseconds timeout = 2000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

TEST(FaultInjector, SameSeedSamePerLinkDecisions) {
  FaultProbabilities p;
  p.drop = 0.2;
  p.delay = 0.2;
  p.duplicate = 0.2;
  p.reorder = 0.2;

  auto runSequence = [&](bool interleaveOtherLink) {
    FaultInjector inj(/*seed=*/42);
    inj.setDefaultProbabilities(p);
    std::vector<FaultAction> actions;
    for (int i = 0; i < 200; ++i) {
      // Traffic on an unrelated link must not perturb link (0,1)'s stream.
      if (interleaveOtherLink) inj.plan(2, 3, i);
      actions.push_back(inj.plan(0, 1, i).action);
    }
    return actions;
  };

  const auto a = runSequence(false);
  const auto b = runSequence(true);
  EXPECT_EQ(a, b);
  // Sanity: the stream actually exercises several actions.
  int faults = 0;
  for (FaultAction act : a)
    if (act != FaultAction::Deliver) ++faults;
  EXPECT_GT(faults, 20);
}

TEST(FaultInjector, CertainDropNeverDelivers) {
  Communicator world(2);
  auto inj = std::make_shared<FaultInjector>();
  FaultProbabilities p;
  p.drop = 1.0;
  inj->setDefaultProbabilities(p);
  world.setFaultInjector(inj);

  int out = 0;
  Request r = world.irecv(1, 0, 7, &out, sizeof out);
  const int v = 99;
  for (int i = 0; i < 10; ++i) world.isend(0, 1, 7, &v, sizeof v);
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(r.test());
  EXPECT_EQ(world.stats().dropsInjected, 10u);
}

TEST(FaultInjector, ScriptedNthDropSkipsExactlyOneMessage) {
  Communicator world(2);
  auto inj = std::make_shared<FaultInjector>();
  inj->script(ScriptedFault{/*src=*/0, /*dst=*/1, /*tag=*/7, /*nth=*/3,
                            FaultAction::Drop, /*permanent=*/false});
  world.setFaultInjector(inj);

  std::vector<int> out(4, -1);
  std::vector<Request> recvs;
  for (int i = 0; i < 4; ++i)
    recvs.push_back(world.irecv(1, 0, 7, &out[i], sizeof(int)));
  for (int v = 1; v <= 5; ++v) world.isend(0, 1, 7, &v, sizeof v);

  ASSERT_TRUE(waitFor([&] {
    for (const auto& r : recvs)
      if (!r.test()) return false;
    return true;
  }));
  // The 3rd send vanished; in-order matching hands recvs 1, 2, 4, 5.
  EXPECT_EQ(out, (std::vector<int>{1, 2, 4, 5}));
  EXPECT_EQ(world.stats().dropsInjected, 1u);
}

TEST(FaultInjector, ScriptedDuplicateArrivesTwice) {
  Communicator world(2);
  auto inj = std::make_shared<FaultInjector>();
  inj->script(ScriptedFault{0, 1, kAnyTag, 1, FaultAction::Duplicate, false});
  world.setFaultInjector(inj);

  int a = 0, b = 0;
  Request r1 = world.irecv(1, 0, 5, &a, sizeof a);
  Request r2 = world.irecv(1, 0, 5, &b, sizeof b);
  const int v = 31;
  world.isend(0, 1, 5, &v, sizeof v);
  ASSERT_TRUE(waitFor([&] { return r1.test() && r2.test(); }));
  EXPECT_EQ(a, 31);
  EXPECT_EQ(b, 31);
  EXPECT_EQ(world.stats().duplicatesInjected, 1u);
}

TEST(FaultInjector, ScriptedDelayDefersDelivery) {
  Communicator world(2);
  auto inj = std::make_shared<FaultInjector>();
  FaultProbabilities p;  // window for the scripted delay to draw from
  p.delayMinMs = 50.0;
  p.delayMaxMs = 50.0;
  inj->setDefaultProbabilities(p);
  inj->script(ScriptedFault{0, 1, kAnyTag, 1, FaultAction::Delay, false});
  world.setFaultInjector(inj);

  int out = 0;
  Request r = world.irecv(1, 0, 1, &out, sizeof out);
  const int v = 8;
  world.isend(0, 1, 1, &v, sizeof v);
  EXPECT_FALSE(r.test());  // 50 ms out; cannot have landed yet
  ASSERT_TRUE(waitFor([&] { return r.test(); }));
  EXPECT_EQ(out, 8);
  EXPECT_EQ(world.stats().delaysInjected, 1u);
}

TEST(FaultInjector, ScriptedReorderSwapsAdjacentMessages) {
  Communicator world(2);
  auto inj = std::make_shared<FaultInjector>();
  // Long hold so the flush-by-timer path cannot win the race against the
  // second send on a loaded machine: the successor must do the flushing.
  inj->setReorderHoldMs(500.0);
  inj->script(ScriptedFault{0, 1, kAnyTag, 1, FaultAction::Reorder, false});
  world.setFaultInjector(inj);

  int a = 0, b = 0;
  Request r1 = world.irecv(1, 0, kAnyTag, &a, sizeof a);
  Request r2 = world.irecv(1, 0, kAnyTag, &b, sizeof b);
  const int first = 1, second = 2;
  world.isend(0, 1, 10, &first, sizeof first);   // held back
  world.isend(0, 1, 11, &second, sizeof second);  // overtakes, flushes
  ASSERT_TRUE(waitFor([&] { return r1.test() && r2.test(); }));
  EXPECT_EQ(a, 2);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(world.stats().reordersInjected, 1u);
}

TEST(FaultInjector, HeldReorderFlushesByTimerWithoutSuccessor) {
  Communicator world(2);
  auto inj = std::make_shared<FaultInjector>();
  inj->setReorderHoldMs(5.0);
  inj->script(ScriptedFault{0, 1, kAnyTag, 1, FaultAction::Reorder, false});
  world.setFaultInjector(inj);

  int out = 0;
  Request r = world.irecv(1, 0, kAnyTag, &out, sizeof out);
  const int v = 77;
  world.isend(0, 1, 0, &v, sizeof v);  // held; nothing ever overtakes it
  ASSERT_TRUE(waitFor([&] { return r.test(); }));
  EXPECT_EQ(out, 77);
}

/// ---- request containers under an unreliable transport (satellite) ------
///
/// Same workload as request_containers_test.cc, but the transport
/// duplicates, delays, and reorders (never drops: the workload awaits full
/// delivery). Duplicates land in the unexpected queue after the posted
/// recv completes, so every request still completes exactly once — the
/// containers' exactly-once processing is what is under test here.
template <typename Container>
void runFaultyWorkload(Container& container, int nMessages, int nPollThreads,
                       BufferLedger& ledger, std::uint64_t seed) {
  Communicator world(2);
  auto inj = std::make_shared<FaultInjector>(seed);
  FaultProbabilities p;
  p.delay = 0.10;
  p.duplicate = 0.10;
  p.reorder = 0.05;
  p.delayMinMs = 0.05;
  p.delayMaxMs = 0.5;
  inj->setDefaultProbabilities(p);
  inj->setReorderHoldMs(0.5);
  world.setFaultInjector(inj);

  std::vector<std::unique_ptr<double[]>> buffers;
  buffers.reserve(static_cast<std::size_t>(nMessages));
  auto releasedOnce =
      std::make_shared<std::vector<std::atomic<bool>>>(nMessages);

  for (int i = 0; i < nMessages; ++i) {
    buffers.push_back(std::make_unique<double[]>(8));
    Request r =
        world.irecv(1, 0, i, buffers.back().get(), 8 * sizeof(double));
    container.add(CommNode(std::move(r), [&ledger, releasedOnce,
                                          i](const Request&) {
      ledger.allocated.fetch_add(1, std::memory_order_relaxed);
      volatile double sink = 0;
      for (int k = 0; k < 50; ++k) sink = sink + k;
      if (!(*releasedOnce)[static_cast<std::size_t>(i)].exchange(true))
        ledger.released.fetch_add(1, std::memory_order_relaxed);
    }));
  }

  std::atomic<bool> sendsDone{false};
  std::thread sender([&] {
    double payload[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    for (int i = 0; i < nMessages; ++i)
      world.isend(0, 1, i, payload, sizeof payload);
    sendsDone.store(true);
  });

  std::vector<std::thread> pollers;
  for (int t = 0; t < nPollThreads; ++t) {
    pollers.emplace_back([&] {
      while (!sendsDone.load() || container.pending() > 0)
        container.processReady();
    });
  }
  sender.join();
  for (auto& t : pollers) t.join();
}

TEST(FaultyTransportContainers, WaitFreePoolNoLeak) {
  WaitFreeRequestPool pool;
  BufferLedger ledger;
  runFaultyWorkload(pool, 3000, 8, ledger, /*seed=*/7);
  EXPECT_EQ(ledger.leaked(), 0);
  EXPECT_EQ(ledger.allocated.load(), 3000);
}

TEST(FaultyTransportContainers, LockedSerializedNoLeak) {
  LockedRequestQueue q(LockedRequestQueue::Mode::Serialized);
  BufferLedger ledger;
  runFaultyWorkload(q, 3000, 8, ledger, /*seed=*/7);
  EXPECT_EQ(ledger.leaked(), 0);
  EXPECT_EQ(ledger.allocated.load(), 3000);
}

// The legacy racy container still double-processes when the transport
// misbehaves — fault injection does not mask the paper's race. Same
// probabilistic reproduce-or-skip protocol as the fault-free regression.
TEST(FaultyTransportContainers, LockedRacyStillLeaks) {
  std::int64_t extra = 0;
  for (int round = 0; round < 20 && extra == 0; ++round) {
    LockedRequestQueue q(LockedRequestQueue::Mode::Racy);
    BufferLedger ledger;
    runFaultyWorkload(q, 2000, 8, ledger,
                      /*seed=*/100 + static_cast<std::uint64_t>(round));
    extra = ledger.allocated.load() - 2000;
  }
  if (extra == 0 && std::thread::hardware_concurrency() < 2)
    GTEST_SKIP() << "single hardware thread: race cannot interleave";
  EXPECT_GT(extra, 0) << "legacy racy mode did not double-process under "
                         "an unreliable transport";
}

}  // namespace
}  // namespace rmcrt::comm
