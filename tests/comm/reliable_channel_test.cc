/// Tests of the reliability layer: exactly-once delivery over a transport
/// that drops, duplicates, delays, and reorders; zero protocol overhead on
/// a healthy link beyond acks; and the detect-only mode the scheduler
/// watchdog test relies on.

#include "comm/reliable_channel.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "comm/fault_injector.h"

namespace rmcrt::comm {
namespace {

using namespace std::chrono_literals;

template <typename Pred>
bool waitFor(Pred pred, std::chrono::milliseconds timeout = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(100us);
  }
  return true;
}

ReliableChannel::Config fastConfig() {
  ReliableChannel::Config cfg;
  cfg.baseBackoffMs = 2.0;
  cfg.maxBackoffMs = 20.0;
  cfg.progressIntervalMs = 0.5;
  return cfg;
}

/// N messages rank0 -> rank1, distinct tags, payload = tag pattern.
/// Returns when every receive completed (asserts on timeout).
void exchange(Communicator& world, ReliableChannel& tx, ReliableChannel& rx,
              int n) {
  std::vector<std::vector<double>> outs(static_cast<std::size_t>(n));
  std::vector<Request> recvs;
  for (int i = 0; i < n; ++i) {
    outs[static_cast<std::size_t>(i)].resize(8, -1.0);
    recvs.push_back(rx.postRecv(0, /*tag=*/i,
                                outs[static_cast<std::size_t>(i)].data(),
                                8 * sizeof(double)));
  }
  for (int i = 0; i < n; ++i) {
    double payload[8];
    for (int k = 0; k < 8; ++k) payload[k] = i * 8.0 + k;
    tx.send(1, i, payload, sizeof payload);
  }
  ASSERT_TRUE(waitFor([&] {
    for (const auto& r : recvs)
      if (!r.test()) return false;
    return true;
  })) << "delivery incomplete: " << rx.pendingRecvs().size()
      << " pending, " << tx.unackedCount() << " unacked";
  for (int i = 0; i < n; ++i)
    for (int k = 0; k < 8; ++k)
      ASSERT_EQ(outs[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)],
                i * 8.0 + k)
          << "message " << i << " word " << k;
  (void)world;
}

TEST(ReliableChannel, HealthyLinkNeedsNoRetransmits) {
  Communicator world(2);
  // Generous backoff: on a loaded machine a tight deadline would trigger
  // spurious retransmissions and break the "zero overhead" assertion.
  ReliableChannel::Config cfg = fastConfig();
  cfg.baseBackoffMs = 500.0;
  cfg.maxBackoffMs = 500.0;
  ReliableChannel tx(world, 0, cfg);
  ReliableChannel rx(world, 1, cfg);
  exchange(world, tx, rx, 100);
  ASSERT_TRUE(waitFor([&] { return tx.unackedCount() == 0; }));
  const auto s = tx.stats();
  EXPECT_EQ(s.dataSent, 100u);
  EXPECT_EQ(s.retransmits, 0u);
  EXPECT_EQ(rx.stats().dataDelivered, 100u);
  EXPECT_EQ(rx.stats().duplicatesDiscarded, 0u);
}

TEST(ReliableChannel, RecoversFromHeavyDrops) {
  Communicator world(2);
  auto inj = std::make_shared<FaultInjector>(11);
  FaultProbabilities p;
  p.drop = 0.3;  // applies to data AND acks
  inj->setDefaultProbabilities(p);
  world.setFaultInjector(inj);

  ReliableChannel tx(world, 0, fastConfig());
  ReliableChannel rx(world, 1, fastConfig());
  exchange(world, tx, rx, 200);
  EXPECT_GT(tx.stats().retransmits, 0u);
  EXPECT_EQ(rx.stats().dataDelivered, 200u);
  EXPECT_GT(tx.stats().maxBackoffMs, 0.0);
}

TEST(ReliableChannel, DiscardsInjectedDuplicates) {
  // One tag reused for every message (the scheduler's tags likewise recur
  // every timestep): each posted recv can match a stale duplicate of an
  // EARLIER message from the unexpected queue, and only the sequence
  // numbers tell fresh from stale. Payloads must come out in exact order.
  Communicator world(2);
  auto inj = std::make_shared<FaultInjector>(12);
  FaultProbabilities p;
  p.duplicate = 0.5;
  inj->setDefaultProbabilities(p);
  world.setFaultInjector(inj);

  ReliableChannel tx(world, 0, fastConfig());
  ReliableChannel rx(world, 1, fastConfig());
  for (int i = 0; i < 100; ++i) {
    double out = -1.0;
    Request r = rx.postRecv(0, /*tag=*/5, &out, sizeof out);
    const double v = 10.0 + i;
    tx.send(1, 5, &v, sizeof v);
    ASSERT_TRUE(waitFor([&] {
      rx.progress();
      return r.test();
    })) << "message " << i << " lost";
    ASSERT_EQ(out, v) << "message " << i << " corrupted or stale";
  }
  EXPECT_EQ(rx.stats().dataDelivered, 100u);
  EXPECT_GT(rx.stats().duplicatesDiscarded, 0u);
}

TEST(ReliableChannel, SurvivesDelayAndReorder) {
  Communicator world(2);
  auto inj = std::make_shared<FaultInjector>(13);
  FaultProbabilities p;
  p.delay = 0.2;
  p.reorder = 0.2;
  p.delayMinMs = 0.1;
  p.delayMaxMs = 2.0;
  inj->setDefaultProbabilities(p);
  inj->setReorderHoldMs(1.0);
  world.setFaultInjector(inj);

  ReliableChannel tx(world, 0, fastConfig());
  ReliableChannel rx(world, 1, fastConfig());
  exchange(world, tx, rx, 200);
  EXPECT_EQ(rx.stats().dataDelivered, 200u);
}

TEST(ReliableChannel, DetectOnlyModeNeverResends) {
  Communicator world(2);
  auto inj = std::make_shared<FaultInjector>();
  // Kill every data frame 0 -> 1; the reverse link stays clean.
  inj->script(ScriptedFault{0, 1, kAnyTag, 1, FaultAction::Drop,
                            /*permanent=*/true});
  world.setFaultInjector(inj);

  ReliableChannel::Config cfg = fastConfig();
  cfg.retransmit = false;
  ReliableChannel tx(world, 0, cfg);
  ReliableChannel rx(world, 1, cfg);

  double out[4] = {0};
  Request r = rx.postRecv(0, 42, out, sizeof out);
  const double payload[4] = {1, 2, 3, 4};
  tx.send(1, 42, payload, sizeof payload);

  std::this_thread::sleep_for(50ms);  // >> several backoff periods
  EXPECT_FALSE(r.test());
  EXPECT_EQ(tx.stats().retransmits, 0u);
  EXPECT_EQ(tx.unackedCount(), 1u);  // loss detected, not repaired
}

TEST(ReliableChannel, ForceRetransmitRepairsImmediately) {
  Communicator world(2);
  auto inj = std::make_shared<FaultInjector>();
  // Drop only the FIRST data frame; the retransmit must get through.
  inj->script(ScriptedFault{0, 1, kAnyTag, 1, FaultAction::Drop, false});
  world.setFaultInjector(inj);

  ReliableChannel::Config cfg = fastConfig();
  cfg.baseBackoffMs = 10000.0;  // organic retransmission effectively off
  cfg.backgroundProgress = false;
  ReliableChannel tx(world, 0, cfg);
  ReliableChannel rx(world, 1, cfg);

  double out[2] = {0};
  Request r = rx.postRecv(0, 9, out, sizeof out);
  const double payload[2] = {6.5, -1.0};
  tx.send(1, 9, payload, sizeof payload);
  rx.progress();
  EXPECT_FALSE(r.test());

  tx.forceRetransmit();  // the watchdog's recovery hook
  ASSERT_TRUE(waitFor([&] {
    rx.progress();
    tx.progress();
    return r.test();
  }));
  EXPECT_EQ(out[0], 6.5);
  EXPECT_EQ(tx.stats().retransmits, 1u);
}

TEST(ReliableChannel, StaleRetransmitUnderReusedTagIsDiscarded) {
  // A frame delivered AND retransmitted (ack lost) must not satisfy a
  // later recv posted with the same tag — the scenario of scheduler tags
  // reused across timesteps.
  Communicator world(2);
  auto inj = std::make_shared<FaultInjector>();
  // Drop the first ack 1 -> 0 so the sender retransmits a delivered frame.
  inj->script(ScriptedFault{1, 0, ReliableChannel::kAckTag, 1,
                            FaultAction::Drop, false});
  world.setFaultInjector(inj);

  ReliableChannel::Config cfg = fastConfig();
  cfg.backgroundProgress = false;
  cfg.baseBackoffMs = 1.0;
  ReliableChannel tx(world, 0, cfg);
  ReliableChannel rx(world, 1, cfg);

  double out1 = 0;
  Request r1 = rx.postRecv(0, 5, &out1, sizeof out1);
  const double v1 = 1.5;
  tx.send(1, 5, &v1, sizeof v1);
  ASSERT_TRUE(waitFor([&] {
    rx.progress();
    tx.progress();
    return r1.test();
  }));
  EXPECT_EQ(out1, 1.5);

  // Let the sender retransmit (its ack was dropped), then post a new recv
  // under the REUSED tag. The stale retransmit must be discarded and the
  // fresh message delivered.
  ASSERT_TRUE(waitFor([&] {
    tx.progress();
    return tx.stats().retransmits > 0;
  }));
  double out2 = 0;
  Request r2 = rx.postRecv(0, 5, &out2, sizeof out2);
  const double v2 = 2.5;
  tx.send(1, 5, &v2, sizeof v2);
  ASSERT_TRUE(waitFor([&] {
    rx.progress();
    tx.progress();
    return r2.test();
  }));
  EXPECT_EQ(out2, 2.5);
  EXPECT_GT(rx.stats().duplicatesDiscarded, 0u);
}

}  // namespace
}  // namespace rmcrt::comm
