#include "comm/communicator.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

namespace rmcrt::comm {
namespace {

TEST(Communicator, SendThenRecvMatches) {
  Communicator world(2);
  const double payload = 3.14;
  world.isend(0, 1, 7, &payload, sizeof payload);
  double out = 0.0;
  Request r = world.irecv(1, 0, 7, &out, sizeof out);
  EXPECT_TRUE(r.test());
  EXPECT_DOUBLE_EQ(out, 3.14);
  EXPECT_EQ(r.source(), 0);
  EXPECT_EQ(r.tag(), 7);
  EXPECT_EQ(r.bytes(), sizeof payload);
}

TEST(Communicator, RecvThenSendCompletesAsynchronously) {
  Communicator world(2);
  int out = 0;
  Request r = world.irecv(1, 0, 5, &out, sizeof out);
  EXPECT_FALSE(r.test());
  const int v = 42;
  world.isend(0, 1, 5, &v, sizeof v);
  EXPECT_TRUE(r.test());
  EXPECT_EQ(out, 42);
}

TEST(Communicator, TagSelectsMessage) {
  Communicator world(2);
  const int a = 1, b = 2;
  world.isend(0, 1, 10, &a, sizeof a);
  world.isend(0, 1, 20, &b, sizeof b);
  int out = 0;
  Request r = world.irecv(1, 0, 20, &out, sizeof out);
  ASSERT_TRUE(r.test());
  EXPECT_EQ(out, 2);
  r = world.irecv(1, 0, 10, &out, sizeof out);
  ASSERT_TRUE(r.test());
  EXPECT_EQ(out, 1);
}

TEST(Communicator, AnySourceAnyTag) {
  Communicator world(3);
  const int v = 99;
  world.isend(2, 0, 33, &v, sizeof v);
  int out = 0;
  Request r = world.irecv(0, kAnySource, kAnyTag, &out, sizeof out);
  ASSERT_TRUE(r.test());
  EXPECT_EQ(out, 99);
  EXPECT_EQ(r.source(), 2);
  EXPECT_EQ(r.tag(), 33);
}

TEST(Communicator, FifoOrderPerSourceAndTag) {
  Communicator world(2);
  for (int i = 0; i < 10; ++i) world.isend(0, 1, 1, &i, sizeof i);
  for (int i = 0; i < 10; ++i) {
    int out = -1;
    Request r = world.irecv(1, 0, 1, &out, sizeof out);
    ASSERT_TRUE(r.test());
    EXPECT_EQ(out, i);
  }
}

TEST(Communicator, SelfSend) {
  Communicator world(1);
  const int v = 5;
  world.isend(0, 0, 0, &v, sizeof v);
  int out = 0;
  Request r = world.irecv(0, 0, 0, &out, sizeof out);
  ASSERT_TRUE(r.test());
  EXPECT_EQ(out, 5);
}

TEST(Communicator, StatsCountTraffic) {
  Communicator world(2);
  world.resetStats();
  const char data[100] = {};
  world.isend(0, 1, 0, data, sizeof data);
  char out[100];
  world.irecv(1, 0, 0, out, sizeof out);
  const CommStats s = world.stats();
  EXPECT_EQ(s.messagesSent, 1u);
  EXPECT_EQ(s.bytesSent, 100u);
  EXPECT_EQ(s.recvsPosted, 1u);
  EXPECT_EQ(s.unexpectedMessages, 1u);  // send arrived before recv posted
}

TEST(Communicator, BarrierSynchronizesRankThreads) {
  const int P = 8;
  Communicator world(P);
  std::atomic<int> phase1{0};
  std::atomic<bool> violated{false};
  std::vector<std::thread> ranks;
  for (int r = 0; r < P; ++r) {
    ranks.emplace_back([&, r] {
      phase1.fetch_add(1);
      world.barrier(r);
      if (phase1.load() != P) violated.store(true);
    });
  }
  for (auto& t : ranks) t.join();
  EXPECT_FALSE(violated.load());
}

TEST(Communicator, AllReduceSum) {
  const int P = 6;
  Communicator world(P);
  std::vector<double> results(P);
  std::vector<std::thread> ranks;
  for (int r = 0; r < P; ++r) {
    ranks.emplace_back(
        [&, r] { results[r] = world.allReduceSum(r, r + 1.0); });
  }
  for (auto& t : ranks) t.join();
  for (int r = 0; r < P; ++r) EXPECT_DOUBLE_EQ(results[r], 21.0);
}

TEST(Communicator, AllReduceMax) {
  const int P = 5;
  Communicator world(P);
  std::vector<double> results(P);
  std::vector<std::thread> ranks;
  for (int r = 0; r < P; ++r) {
    ranks.emplace_back(
        [&, r] { results[r] = world.allReduceMax(r, r * 1.5); });
  }
  for (auto& t : ranks) t.join();
  for (int r = 0; r < P; ++r) EXPECT_DOUBLE_EQ(results[r], 6.0);
}

TEST(Communicator, AllGatherDistributesBlocks) {
  const int P = 4;
  Communicator world(P);
  std::vector<std::vector<int>> results(P, std::vector<int>(P));
  std::vector<std::thread> ranks;
  for (int r = 0; r < P; ++r) {
    ranks.emplace_back([&, r] {
      const int mine = r * 10;
      world.allGather(r, &mine, sizeof mine, results[r].data());
    });
  }
  for (auto& t : ranks) t.join();
  for (int r = 0; r < P; ++r)
    for (int s = 0; s < P; ++s) EXPECT_EQ(results[r][s], s * 10);
}

TEST(Communicator, RepeatedCollectivesDoNotDeadlockOrCorrupt) {
  const int P = 4;
  Communicator world(P);
  std::atomic<bool> bad{false};
  std::vector<std::thread> ranks;
  for (int r = 0; r < P; ++r) {
    ranks.emplace_back([&, r] {
      for (int i = 0; i < 50; ++i) {
        double s = world.allReduceSum(r, 1.0);
        if (s != P) bad.store(true);
        int mine = r + i;
        std::vector<int> all(P);
        world.allGather(r, &mine, sizeof mine, all.data());
        for (int k = 0; k < P; ++k)
          if (all[k] != k + i) bad.store(true);
        world.barrier(r);
      }
    });
  }
  for (auto& t : ranks) t.join();
  EXPECT_FALSE(bad.load());
}

TEST(Communicator, ManyThreadsPointToPointStress) {
  // MPI_THREAD_MULTIPLE surface: several threads send/recv on behalf of
  // the same ranks concurrently.
  Communicator world(2);
  const int kMsgs = 2000;
  std::thread sender([&] {
    for (int i = 0; i < kMsgs; ++i) world.isend(0, 1, i % 7, &i, sizeof i);
  });
  std::atomic<int> received{0};
  std::vector<std::thread> receivers;
  std::vector<std::vector<int>> sink(4, std::vector<int>(kMsgs));
  for (int t = 0; t < 4; ++t) {
    receivers.emplace_back([&, t] {
      while (true) {
        const int got = received.fetch_add(1);
        if (got >= kMsgs) break;
        int out = -1;
        world.recv(1, 0, kAnyTag, &out, sizeof out);
        sink[t][got % kMsgs] = out;
      }
    });
  }
  sender.join();
  for (auto& t : receivers) t.join();
  SUCCEED();
}

TEST(Communicator, TruncatedReceiveKeepsCapacity) {
  Communicator world(2);
  const std::uint64_t big[4] = {1, 2, 3, 4};
  world.isend(0, 1, 0, big, sizeof big);
  std::uint64_t small[2] = {0, 0};
  Request r = world.irecv(1, 0, 0, small, sizeof small);
  ASSERT_TRUE(r.test());
  EXPECT_EQ(r.bytes(), sizeof small);
  EXPECT_EQ(small[0], 1u);
  EXPECT_EQ(small[1], 2u);
}

}  // namespace
}  // namespace rmcrt::comm
