#include "comm/waitfree_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

namespace rmcrt::comm {
namespace {

struct Item {
  int id = 0;
  bool ready = false;
};

TEST(WaitFreePool, EmplaceFindErase) {
  WaitFreePool<Item> pool;
  pool.emplace(Item{1, true});
  pool.emplace(Item{2, false});
  EXPECT_EQ(pool.size(), 2u);

  auto it = pool.find_any([](const Item& i) { return i.ready; });
  ASSERT_TRUE(static_cast<bool>(it));
  EXPECT_EQ(it->id, 1);
  pool.erase(it);
  EXPECT_EQ(pool.size(), 1u);

  auto none = pool.find_any([](const Item& i) { return i.ready; });
  EXPECT_FALSE(static_cast<bool>(none));
}

TEST(WaitFreePool, IteratorReleaseOnDestructionReturnsSlot) {
  WaitFreePool<Item> pool;
  pool.emplace(Item{1, true});
  {
    auto it = pool.find_any([](const Item& i) { return i.ready; });
    ASSERT_TRUE(static_cast<bool>(it));
    // While claimed, no other iterator can reach the same element.
    auto it2 = pool.find_any([](const Item& i) { return i.ready; });
    EXPECT_FALSE(static_cast<bool>(it2));
  }  // it released without erase
  auto it3 = pool.find_any([](const Item& i) { return i.ready; });
  EXPECT_TRUE(static_cast<bool>(it3));
}

TEST(WaitFreePool, IteratorMoveTransfersClaim) {
  WaitFreePool<Item> pool;
  pool.emplace(Item{7, true});
  auto it = pool.find_any([](const Item&) { return true; });
  ASSERT_TRUE(static_cast<bool>(it));
  auto it2 = std::move(it);
  EXPECT_FALSE(static_cast<bool>(it));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(it2));
  EXPECT_EQ(it2->id, 7);
  pool.erase(it2);
  EXPECT_TRUE(pool.empty());
}

TEST(WaitFreePool, GrowsBeyondOneSegment) {
  WaitFreePool<Item, 8> pool;  // tiny segments
  for (int i = 0; i < 100; ++i) pool.emplace(Item{i, true});
  EXPECT_EQ(pool.size(), 100u);
  std::set<int> ids;
  for (;;) {
    auto it = pool.find_any([](const Item&) { return true; });
    if (!it) break;
    ids.insert(it->id);
    pool.erase(it);
  }
  EXPECT_EQ(ids.size(), 100u);
  EXPECT_TRUE(pool.empty());
}

TEST(WaitFreePool, SlotReuseAfterErase) {
  WaitFreePool<Item, 4> pool;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 4; ++i) pool.emplace(Item{i, true});
    for (int i = 0; i < 4; ++i) {
      auto it = pool.find_any([](const Item&) { return true; });
      ASSERT_TRUE(static_cast<bool>(it));
      pool.erase(it);
    }
  }
  EXPECT_TRUE(pool.empty());
}

TEST(WaitFreePool, NonTrivialElementDestroyed) {
  auto counter = std::make_shared<int>(0);
  struct Probe {
    std::shared_ptr<int> c;
    Probe(std::shared_ptr<int> counter) : c(std::move(counter)) {}
    Probe(Probe&&) = default;  // user-declared dtor suppresses implicit move
    Probe& operator=(Probe&&) = default;
    ~Probe() {
      if (c) ++*c;
    }
  };
  {
    WaitFreePool<Probe> pool;
    pool.emplace(Probe{counter});
    pool.emplace(Probe{counter});
    auto it = pool.find_any([](const Probe&) { return true; });
    ASSERT_TRUE(static_cast<bool>(it));
    pool.erase(it);                 // one destroyed by erase
    EXPECT_EQ(*counter, 1);
  }                                 // one destroyed by pool destructor
  EXPECT_EQ(*counter, 2);
}

// The paper's core guarantee: "no two threads can have iterators which
// dereference to the same object." Threads claim elements concurrently
// and mark them; any element processed twice is a violation.
TEST(WaitFreePool, ExactlyOnceProcessingUnderContention) {
  WaitFreePool<Item, 64> pool;
  constexpr int kItems = 20000;
  for (int i = 0; i < kItems; ++i) pool.emplace(Item{i, true});

  std::vector<std::atomic<int>> processed(kItems);
  std::atomic<int> total{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (;;) {
        auto it = pool.find_any([](const Item& i) { return i.ready; });
        if (!it) break;
        processed[it->id].fetch_add(1);
        pool.erase(it);
        total.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(total.load(), kItems);
  for (int i = 0; i < kItems; ++i)
    EXPECT_EQ(processed[i].load(), 1) << "item " << i;
  EXPECT_TRUE(pool.empty());
}

// Producers and consumers run simultaneously: emplace is wait-free with
// respect to concurrent claims.
TEST(WaitFreePool, ConcurrentProduceConsume) {
  WaitFreePool<Item, 32> pool;
  constexpr int kPerProducer = 5000;
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  std::atomic<int> consumed{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i)
        pool.emplace(Item{p * kPerProducer + i, true});
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (!done.load() || !pool.empty()) {
        auto it = pool.find_any([](const Item& i) { return i.ready; });
        if (it) {
          pool.erase(it);
          consumed.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  done.store(true);
  for (auto& t : consumers) t.join();
  EXPECT_EQ(consumed.load(), kPerProducer * kProducers);
}

TEST(WaitFreePool, PredicateSeesConsistentElement) {
  // The predicate runs under the claim, so partially-constructed elements
  // are never visible: every observed element must be fully initialized.
  WaitFreePool<std::pair<int, int>, 16> pool;
  std::atomic<bool> bad{false};
  std::atomic<bool> stop{false};
  std::thread producer([&] {
    for (int i = 0; i < 30000; ++i) pool.emplace(std::make_pair(i, ~i));
    stop.store(true);
  });
  std::thread consumer([&] {
    while (!stop.load() || !pool.empty()) {
      auto it = pool.find_any([&](const std::pair<int, int>& p) {
        if (p.second != ~p.first) bad.store(true);
        return true;
      });
      if (it) pool.erase(it);
    }
  });
  producer.join();
  consumer.join();
  EXPECT_FALSE(bad.load());
}

}  // namespace
}  // namespace rmcrt::comm
