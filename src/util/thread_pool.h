#pragma once

/// \file thread_pool.h
/// A fixed-size worker pool with a shared task queue, plus a parallel_for
/// helper with static chunking. Used by the simulated GPU executor (each
/// worker models an SM-like execution slot) and by the multi-threaded
/// scheduler tests.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace rmcrt {

/// A minimal thread pool. Tasks are `std::function<void()>`; submission is
/// thread-safe; `waitIdle()` blocks until every submitted task has run.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t numThreads) {
    if (numThreads == 0) numThreads = 1;
    m_workers.reserve(numThreads);
    for (std::size_t i = 0; i < numThreads; ++i) {
      m_workers.emplace_back([this, i] { workerLoop(i); });
    }
  }

  ~ThreadPool() { shutdown(); }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return m_workers.size(); }

  /// Enqueue a task for execution by any worker.
  /// \throws std::runtime_error after shutdown(): a task accepted then
  /// would sit in the queue forever, which silently loses work.
  void submit(std::function<void()> fn) {
    {
      std::lock_guard<std::mutex> lk(m_mutex);
      if (m_stop)
        throw std::runtime_error("ThreadPool::submit after shutdown");
      m_queue.push_back(std::move(fn));
      m_pending.fetch_add(1, std::memory_order_relaxed);
    }
    m_cv.notify_one();
  }

  /// Block until the queue is drained and all in-flight tasks finished.
  void waitIdle() {
    std::unique_lock<std::mutex> lk(m_mutex);
    m_idleCv.wait(lk, [this] {
      return m_pending.load(std::memory_order_acquire) == 0;
    });
  }

  /// Stop accepting work and join all workers (idempotent).
  void shutdown() {
    {
      std::lock_guard<std::mutex> lk(m_mutex);
      if (m_stop) return;
      m_stop = true;
    }
    m_cv.notify_all();
    for (auto& t : m_workers)
      if (t.joinable()) t.join();
  }

  /// True when the calling thread is one of this pool's workers.
  bool onWorkerThread() const { return currentWorkerPool() == this; }

  /// Run fn(i) for i in [begin, end) across the pool, blocking the caller
  /// until complete. Static chunking: ~4 chunks per worker.
  ///
  /// Reentrancy: when called from one of this pool's own worker threads,
  /// the loop runs inline on that worker. Blocking a worker slot on chunks
  /// that only workers can drain would deadlock once every worker waits —
  /// inline execution makes nested parallelism (e.g. a pool-executed task
  /// that tiles its own inner loop) degrade to serial instead. Calling
  /// from a worker of a *different* pool still blocks that worker; avoid
  /// cyclic cross-pool nesting.
  void parallelFor(std::int64_t begin, std::int64_t end,
                   const std::function<void(std::int64_t)>& fn) {
    const std::int64_t n = end - begin;
    if (n <= 0) return;
    if (onWorkerThread()) {
      for (std::int64_t i = begin; i < end; ++i) fn(i);
      return;
    }
    const std::int64_t nChunks =
        std::min<std::int64_t>(n, static_cast<std::int64_t>(size()) * 4);
    const std::int64_t chunk = (n + nChunks - 1) / nChunks;
    const std::int64_t launched = (n + chunk - 1) / chunk;
    std::mutex doneMutex;
    std::condition_variable doneCv;
    std::int64_t done = 0;  // guarded by doneMutex
    for (std::int64_t c = begin; c < end; c += chunk) {
      const std::int64_t lo = c;
      const std::int64_t hi = std::min(end, c + chunk);
      submit([lo, hi, &fn, &done, &doneMutex, &doneCv, launched] {
        for (std::int64_t i = lo; i < hi; ++i) fn(i);
        // Count and notify under the lock: the waiter may destroy the
        // condition variable as soon as it can observe done == launched,
        // so the final chunk must not touch it outside the critical
        // section.
        std::lock_guard<std::mutex> lk(doneMutex);
        if (++done == launched) doneCv.notify_all();
      });
    }
    std::unique_lock<std::mutex> lk(doneMutex);
    doneCv.wait(lk, [&] { return done == launched; });
  }

 private:
  /// The pool the calling thread works for, if any (nullptr outside
  /// worker threads). Lets parallelFor detect reentrant calls.
  static const ThreadPool*& currentWorkerPool() {
    thread_local const ThreadPool* pool = nullptr;
    return pool;
  }

  void workerLoop(std::size_t /*workerId*/) {
    currentWorkerPool() = this;
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lk(m_mutex);
        m_cv.wait(lk, [this] { return m_stop || !m_queue.empty(); });
        if (m_queue.empty()) {
          if (m_stop) return;
          continue;
        }
        task = std::move(m_queue.front());
        m_queue.pop_front();
      }
      task();
      if (m_pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lk(m_mutex);
        m_idleCv.notify_all();
      }
    }
  }

  std::vector<std::thread> m_workers;
  std::deque<std::function<void()>> m_queue;
  std::mutex m_mutex;
  std::condition_variable m_cv;
  std::condition_variable m_idleCv;
  std::atomic<std::int64_t> m_pending{0};
  bool m_stop = false;
};

}  // namespace rmcrt
