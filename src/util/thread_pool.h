#pragma once

/// \file thread_pool.h
/// A fixed-size worker pool with a shared task queue, plus a parallel_for
/// helper with static chunking. Used by the simulated GPU executor (each
/// worker models an SM-like execution slot) and by the multi-threaded
/// scheduler tests.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rmcrt {

/// A minimal thread pool. Tasks are `std::function<void()>`; submission is
/// thread-safe; `waitIdle()` blocks until every submitted task has run.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t numThreads) {
    if (numThreads == 0) numThreads = 1;
    m_workers.reserve(numThreads);
    for (std::size_t i = 0; i < numThreads; ++i) {
      m_workers.emplace_back([this, i] { workerLoop(i); });
    }
  }

  ~ThreadPool() { shutdown(); }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return m_workers.size(); }

  /// Enqueue a task for execution by any worker.
  void submit(std::function<void()> fn) {
    {
      std::lock_guard<std::mutex> lk(m_mutex);
      m_queue.push_back(std::move(fn));
      m_pending.fetch_add(1, std::memory_order_relaxed);
    }
    m_cv.notify_one();
  }

  /// Block until the queue is drained and all in-flight tasks finished.
  void waitIdle() {
    std::unique_lock<std::mutex> lk(m_mutex);
    m_idleCv.wait(lk, [this] {
      return m_pending.load(std::memory_order_acquire) == 0;
    });
  }

  /// Stop accepting work and join all workers (idempotent).
  void shutdown() {
    {
      std::lock_guard<std::mutex> lk(m_mutex);
      if (m_stop) return;
      m_stop = true;
    }
    m_cv.notify_all();
    for (auto& t : m_workers)
      if (t.joinable()) t.join();
  }

  /// Run fn(i) for i in [begin, end) across the pool, blocking the caller
  /// until complete. Static chunking: ~4 chunks per worker.
  void parallelFor(std::int64_t begin, std::int64_t end,
                   const std::function<void(std::int64_t)>& fn) {
    const std::int64_t n = end - begin;
    if (n <= 0) return;
    const std::int64_t nChunks =
        std::min<std::int64_t>(n, static_cast<std::int64_t>(size()) * 4);
    const std::int64_t chunk = (n + nChunks - 1) / nChunks;
    std::atomic<std::int64_t> done{0};
    std::mutex doneMutex;
    std::condition_variable doneCv;
    std::int64_t launched = 0;
    for (std::int64_t c = begin; c < end; c += chunk) {
      const std::int64_t lo = c;
      const std::int64_t hi = std::min(end, c + chunk);
      ++launched;
      submit([lo, hi, &fn, &done, &doneMutex, &doneCv] {
        for (std::int64_t i = lo; i < hi; ++i) fn(i);
        if (done.fetch_add(1, std::memory_order_acq_rel) >= 0) {
          std::lock_guard<std::mutex> lk(doneMutex);
          doneCv.notify_all();
        }
      });
    }
    std::unique_lock<std::mutex> lk(doneMutex);
    doneCv.wait(lk, [&] {
      return done.load(std::memory_order_acquire) == launched;
    });
  }

 private:
  void workerLoop(std::size_t /*workerId*/) {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lk(m_mutex);
        m_cv.wait(lk, [this] { return m_stop || !m_queue.empty(); });
        if (m_queue.empty()) {
          if (m_stop) return;
          continue;
        }
        task = std::move(m_queue.front());
        m_queue.pop_front();
      }
      task();
      if (m_pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lk(m_mutex);
        m_idleCv.notify_all();
      }
    }
  }

  std::vector<std::thread> m_workers;
  std::deque<std::function<void()>> m_queue;
  std::mutex m_mutex;
  std::condition_variable m_cv;
  std::condition_variable m_idleCv;
  std::atomic<std::int64_t> m_pending{0};
  bool m_stop = false;
};

}  // namespace rmcrt
