#pragma once

/// \file observability_cli.h
/// Shared command-line wiring for the observability layer (DESIGN.md
/// §10): every benchmark and example accepts
///
///   --trace-out <path>    write a Chrome trace-event JSON (open in
///                         Perfetto / chrome://tracing) of the run
///   --metrics-out <path>  write the MetricsRegistry snapshot (JSON, or
///                         CSV when the path ends in ".csv")
///
/// Both forms `--flag path` and `--flag=path` are accepted. Flags are
/// consumed from argv so downstream parsers (google-benchmark, positional
/// arguments) never see them. Passing `--trace-out` enables the global
/// TraceRecorder for the process; without it tracing stays off and costs
/// one relaxed atomic load per would-be span.

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "util/metrics.h"
#include "util/trace_recorder.h"

namespace rmcrt {

struct ObservabilityOptions {
  std::string traceOut;
  std::string metricsOut;

  bool any() const { return !traceOut.empty() || !metricsOut.empty(); }
};

namespace detail {

/// Match `--name=value` or `--name value`; on a match, stores the value
/// and tells the caller how many argv slots were consumed (1 or 2).
inline bool matchFlag(const char* name, int argc, char** argv, int i,
                      std::string* value, int* consumed) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(argv[i], name, len) != 0) return false;
  if (argv[i][len] == '=') {
    *value = argv[i] + len + 1;
    *consumed = 1;
    return true;
  }
  if (argv[i][len] == '\0' && i + 1 < argc) {
    *value = argv[i + 1];
    *consumed = 2;
    return true;
  }
  return false;
}

}  // namespace detail

/// Extract --trace-out/--metrics-out from the command line (compacting
/// argv in place) and enable the global TraceRecorder when a trace path
/// was requested.
inline ObservabilityOptions parseObservabilityFlags(int& argc,
                                                    char** argv) {
  ObservabilityOptions opts;
  int keep = 1;
  for (int i = 1; i < argc;) {
    int consumed = 0;
    if (detail::matchFlag("--trace-out", argc, argv, i, &opts.traceOut,
                          &consumed) ||
        detail::matchFlag("--metrics-out", argc, argv, i, &opts.metricsOut,
                          &consumed)) {
      i += consumed;
      continue;
    }
    argv[keep++] = argv[i++];
  }
  argc = keep;
  if (!opts.traceOut.empty()) TraceRecorder::global().setEnabled(true);
  return opts;
}

/// Write whatever the run accumulated: the trace buffer to
/// opts.traceOut, the global MetricsRegistry to opts.metricsOut.
/// Call once, at the end of main.
inline void writeObservabilityOutputs(const ObservabilityOptions& opts) {
  if (!opts.traceOut.empty()) {
    std::ofstream out(opts.traceOut);
    if (!out) {
      std::cerr << "observability: cannot open " << opts.traceOut << "\n";
    } else {
      TraceRecorder::global().writeChromeTrace(out);
      std::cout << "trace written to " << opts.traceOut << " ("
                << TraceRecorder::global().snapshotEvents().size()
                << " events)\n";
    }
  }
  if (!opts.metricsOut.empty()) {
    std::ofstream out(opts.metricsOut);
    if (!out) {
      std::cerr << "observability: cannot open " << opts.metricsOut
                << "\n";
      return;
    }
    const bool csv = opts.metricsOut.size() >= 4 &&
                     opts.metricsOut.compare(opts.metricsOut.size() - 4, 4,
                                             ".csv") == 0;
    if (csv)
      MetricsRegistry::global().writeCsv(out);
    else
      MetricsRegistry::global().writeJson(out);
    std::cout << "metrics written to " << opts.metricsOut << "\n";
  }
}

}  // namespace rmcrt
