#pragma once

/// \file metrics.h
/// Unified metrics registry (DESIGN.md §10): named monotone counters and
/// point-in-time gauges gathering the stats previously scattered across
/// SchedulerStats, ReliableChannelStats, DeviceStats, ExecutorStats,
/// ArenaStats, PoolStats, and the tracer's segment counter into one
/// emission path with per-timestep JSON/CSV snapshots.
///
/// Concurrency: counters and gauges are single atomics; add()/set() are
/// wait-free. Name lookup takes the registry mutex, so hot paths resolve
/// a counter once (e.g. a function-local static reference against the
/// global registry, which is never destroyed or compacted — registered
/// metrics are stable for the process lifetime; reset() zeroes values but
/// never invalidates references).
///
/// Emission: snapshot() captures every metric's current value;
/// recordTimestep() appends a labeled snapshot to an in-memory timeline;
/// writeJson()/writeCsv() emit the timeline plus the final state. Gauges
/// holding NaN are OMITTED from emission — NaN is the registry-wide
/// convention for "no data" (see RunningStats::min()/max() on an empty
/// accumulator), and an omitted metric cannot be mistaken for a real 0.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace rmcrt {

/// Monotonically-increasing event count.
class MetricsCounter {
 public:
  void add(std::uint64_t n) { m_v.fetch_add(n, std::memory_order_relaxed); }
  void increment() { add(1); }
  std::uint64_t value() const {
    return m_v.load(std::memory_order_relaxed);
  }
  void reset() { m_v.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> m_v{0};
};

/// Point-in-time value (may go up or down; NaN = "no data, omit").
class MetricsGauge {
 public:
  void set(double v) { m_v.store(v, std::memory_order_relaxed); }
  double value() const { return m_v.load(std::memory_order_relaxed); }
  void reset() { m_v.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> m_v{0.0};
};

class MetricsView;

class MetricsRegistry {
 public:
  static MetricsRegistry& global() {
    static MetricsRegistry g;
    return g;
  }

  /// One metric's value at snapshot time.
  struct SnapshotEntry {
    std::string name;
    double value = 0.0;
    bool isCounter = false;
  };
  /// All metrics at one instant, sorted by name.
  struct Snapshot {
    std::int64_t timestep = -1;  ///< -1: not tied to a timestep
    std::vector<SnapshotEntry> entries;

    const SnapshotEntry* find(const std::string& name) const {
      for (const auto& e : entries)
        if (e.name == name) return &e;
      return nullptr;
    }
  };

  /// Get or create. References stay valid for the process lifetime.
  MetricsCounter& counter(const std::string& name) {
    std::lock_guard<std::mutex> lk(m_mutex);
    auto& slot = m_counters[name];
    if (!slot) slot = std::make_unique<MetricsCounter>();
    return *slot;
  }
  MetricsGauge& gauge(const std::string& name) {
    std::lock_guard<std::mutex> lk(m_mutex);
    auto& slot = m_gauges[name];
    if (!slot) slot = std::make_unique<MetricsGauge>();
    return *slot;
  }

  /// Convenience single-shot forms (one lookup each — fine off hot paths).
  void addCounter(const std::string& name, std::uint64_t n) {
    counter(name).add(n);
  }
  void setGauge(const std::string& name, double v) { gauge(name).set(v); }

  /// A prefixed view of this registry — the multi-tenant carve-out (see
  /// MetricsView below). Defined after MetricsView.
  MetricsView view(const std::string& prefix);

  /// Snapshot restricted to metrics whose name starts with \p prefix —
  /// one tenant's slice of the registry without copying everything.
  Snapshot snapshotPrefixed(const std::string& prefix,
                            std::int64_t timestep = -1) const {
    std::lock_guard<std::mutex> lk(m_mutex);
    Snapshot all = snapshotLocked(timestep);
    Snapshot out;
    out.timestep = timestep;
    for (auto& e : all.entries)
      if (e.name.compare(0, prefix.size(), prefix) == 0)
        out.entries.push_back(std::move(e));
    return out;
  }

  /// Capture every registered metric. NaN gauges are omitted.
  Snapshot snapshot(std::int64_t timestep = -1) const {
    std::lock_guard<std::mutex> lk(m_mutex);
    return snapshotLocked(timestep);
  }

  /// Append a snapshot labeled with \p timestep to the timeline.
  void recordTimestep(std::int64_t timestep) {
    std::lock_guard<std::mutex> lk(m_mutex);
    m_timeline.push_back(snapshotLocked(timestep));
  }

  std::vector<Snapshot> timeline() const {
    std::lock_guard<std::mutex> lk(m_mutex);
    return m_timeline;
  }

  /// Zero every metric and drop the timeline. Metric references obtained
  /// before reset() remain valid (values restart from zero).
  void reset() {
    std::lock_guard<std::mutex> lk(m_mutex);
    for (auto& [name, c] : m_counters) c->reset();
    for (auto& [name, g] : m_gauges) g->reset();
    m_timeline.clear();
  }

  /// {"snapshots":[{"timestep":N,"metrics":{...}},...],"final":{...}}
  void writeJson(std::ostream& os) const {
    std::lock_guard<std::mutex> lk(m_mutex);
    os << "{\n\"snapshots\": [\n";
    for (std::size_t i = 0; i < m_timeline.size(); ++i) {
      os << "{\"timestep\": " << m_timeline[i].timestep
         << ", \"metrics\": ";
      writeMetricsObject(os, m_timeline[i]);
      os << "}" << (i + 1 < m_timeline.size() ? "," : "") << "\n";
    }
    os << "],\n\"final\": ";
    writeMetricsObject(os, snapshotLocked(-1));
    os << "\n}\n";
  }

  /// CSV: header `timestep,<name>,...` over the union of all names seen
  /// in the timeline plus the final state (emitted as timestep -1's row
  /// last); metrics absent from a snapshot emit an empty cell.
  void writeCsv(std::ostream& os) const {
    std::lock_guard<std::mutex> lk(m_mutex);
    std::vector<Snapshot> rows = m_timeline;
    rows.push_back(snapshotLocked(-1));
    std::set<std::string> names;
    for (const auto& s : rows)
      for (const auto& e : s.entries) names.insert(e.name);
    os << "timestep";
    for (const auto& n : names) os << "," << n;
    os << "\n";
    for (const auto& s : rows) {
      os << s.timestep;
      for (const auto& n : names) {
        os << ",";
        if (const SnapshotEntry* e = s.find(n)) os << e->value;
      }
      os << "\n";
    }
  }

 private:
  Snapshot snapshotLocked(std::int64_t timestep) const {
    Snapshot s;
    s.timestep = timestep;
    for (const auto& [name, c] : m_counters)
      s.entries.push_back(SnapshotEntry{
          name, static_cast<double>(c->value()), true});
    for (const auto& [name, g] : m_gauges) {
      const double v = g->value();
      if (std::isnan(v)) continue;  // "no data" — omit, don't fake a 0
      s.entries.push_back(SnapshotEntry{name, v, false});
    }
    // Both maps are name-ordered; merge keeps entries sorted.
    std::inplace_merge(
        s.entries.begin(),
        s.entries.begin() + static_cast<std::ptrdiff_t>(m_counters.size()),
        s.entries.end(), [](const SnapshotEntry& a, const SnapshotEntry& b) {
          return a.name < b.name;
        });
    return s;
  }

  static void writeMetricsObject(std::ostream& os, const Snapshot& s) {
    os << "{";
    for (std::size_t i = 0; i < s.entries.size(); ++i) {
      os << "\"" << s.entries[i].name << "\": " << s.entries[i].value
         << (i + 1 < s.entries.size() ? ", " : "");
    }
    os << "}";
  }

  mutable std::mutex m_mutex;
  std::map<std::string, std::unique_ptr<MetricsCounter>> m_counters;
  std::map<std::string, std::unique_ptr<MetricsGauge>> m_gauges;
  std::vector<Snapshot> m_timeline;
};

/// A per-tenant (or per-component) carve-out of a MetricsRegistry: every
/// counter/gauge resolved through the view lands under `<prefix>.` in the
/// parent registry, so one emission path serves all tenants while each
/// tenant's slice stays separable (snapshot() filters by the prefix).
/// Views are cheap value objects; the parent registry must outlive them.
/// The returned metric references follow the registry's stability
/// contract (valid for the process lifetime, reset() keeps them valid).
class MetricsView {
 public:
  MetricsView(MetricsRegistry& reg, std::string prefix)
      : m_reg(&reg), m_prefix(std::move(prefix)) {
    if (!m_prefix.empty() && m_prefix.back() != '.') m_prefix += '.';
  }

  const std::string& prefix() const { return m_prefix; }

  MetricsCounter& counter(const std::string& name) {
    return m_reg->counter(m_prefix + name);
  }
  MetricsGauge& gauge(const std::string& name) {
    return m_reg->gauge(m_prefix + name);
  }
  void addCounter(const std::string& name, std::uint64_t n) {
    counter(name).add(n);
  }
  void setGauge(const std::string& name, double v) { gauge(name).set(v); }

  /// This view's slice of the parent registry.
  MetricsRegistry::Snapshot snapshot(std::int64_t timestep = -1) const {
    return m_reg->snapshotPrefixed(m_prefix, timestep);
  }

 private:
  MetricsRegistry* m_reg;
  std::string m_prefix;
};

inline MetricsView MetricsRegistry::view(const std::string& prefix) {
  return MetricsView(*this, prefix);
}

}  // namespace rmcrt
