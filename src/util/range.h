#pragma once

/// \file range.h
/// Half-open 3-D index boxes (\c CellRange) and iteration over them.
/// A range covers cells with index i where low <= i < high, component-wise.

#include <cassert>
#include <cstdint>
#include <iterator>
#include <ostream>

#include "util/int_vector.h"

namespace rmcrt {

/// A half-open box of cell indices: [low, high) in each dimension.
/// Empty if any component of high <= low.
class CellRange {
 public:
  constexpr CellRange() = default;
  constexpr CellRange(const IntVector& low, const IntVector& high)
      : m_low(low), m_high(high) {}

  constexpr const IntVector& low() const { return m_low; }
  constexpr const IntVector& high() const { return m_high; }

  /// Extent in each dimension (clamped to zero for empty ranges).
  constexpr IntVector size() const {
    return max(m_high - m_low, IntVector(0));
  }
  constexpr std::int64_t volume() const { return size().volume(); }
  constexpr bool empty() const { return volume() == 0; }

  constexpr bool contains(const IntVector& idx) const {
    return idx.allGreaterEq(m_low) && idx.allLess(m_high);
  }
  /// True if \p other lies entirely inside this range.
  constexpr bool contains(const CellRange& other) const {
    return other.empty() ||
           (other.m_low.allGreaterEq(m_low) && other.m_high.allLessEq(m_high));
  }

  /// Component-wise intersection; may be empty.
  constexpr CellRange intersect(const CellRange& other) const {
    return {max(m_low, other.m_low), min(m_high, other.m_high)};
  }
  /// Smallest range containing both.
  constexpr CellRange unionWith(const CellRange& other) const {
    if (empty()) return other;
    if (other.empty()) return *this;
    return {min(m_low, other.m_low), max(m_high, other.m_high)};
  }
  /// Range grown by \p n cells on every face (negative shrinks).
  constexpr CellRange grown(int n) const {
    return {m_low - IntVector(n), m_high + IntVector(n)};
  }
  constexpr CellRange grown(const IntVector& n) const {
    return {m_low - n, m_high + n};
  }
  /// Range translated by \p d.
  constexpr CellRange shifted(const IntVector& d) const {
    return {m_low + d, m_high + d};
  }

  /// Coarsen indices by ratio \p rr with floor semantics valid for negative
  /// indices (ghost cells below zero).
  CellRange coarsened(const IntVector& rr) const {
    auto fdiv = [](int a, int b) {
      return a >= 0 ? a / b : -((-a + b - 1) / b);
    };
    auto cdiv = [](int a, int b) {
      return a >= 0 ? (a + b - 1) / b : -((-a) / b);
    };
    IntVector lo(fdiv(m_low.x(), rr.x()), fdiv(m_low.y(), rr.y()),
                 fdiv(m_low.z(), rr.z()));
    IntVector hi(cdiv(m_high.x(), rr.x()), cdiv(m_high.y(), rr.y()),
                 cdiv(m_high.z(), rr.z()));
    return {lo, hi};
  }
  /// Refine indices by ratio \p rr (exact inverse of coarsened for aligned
  /// ranges).
  constexpr CellRange refined(const IntVector& rr) const {
    return {m_low * rr, m_high * rr};
  }

  constexpr bool operator==(const CellRange& o) const {
    return m_low == o.m_low && m_high == o.m_high;
  }

  /// Forward iterator visiting indices in z-major (x fastest) order,
  /// matching the linearization used by Array3.
  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = IntVector;
    using difference_type = std::ptrdiff_t;
    using pointer = const IntVector*;
    using reference = const IntVector&;

    iterator() = default;
    iterator(const CellRange* r, const IntVector& pos) : m_r(r), m_pos(pos) {}

    reference operator*() const { return m_pos; }
    pointer operator->() const { return &m_pos; }

    iterator& operator++() {
      m_pos[0]++;
      if (m_pos[0] >= m_r->high().x()) {
        m_pos[0] = m_r->low().x();
        m_pos[1]++;
        if (m_pos[1] >= m_r->high().y()) {
          m_pos[1] = m_r->low().y();
          m_pos[2]++;
        }
      }
      return *this;
    }
    iterator operator++(int) {
      iterator t = *this;
      ++*this;
      return t;
    }
    bool operator==(const iterator& o) const { return m_pos == o.m_pos; }
    bool operator!=(const iterator& o) const { return !(*this == o); }

   private:
    const CellRange* m_r = nullptr;
    IntVector m_pos;
  };

  iterator begin() const {
    if (empty()) return end();
    return {this, m_low};
  }
  iterator end() const {
    // One past the last index in iteration order.
    return {this, IntVector(m_low.x(), m_low.y(), m_high.z())};
  }

 private:
  IntVector m_low;
  IntVector m_high;
};

inline std::ostream& operator<<(std::ostream& os, const CellRange& r) {
  return os << r.low() << ".." << r.high();
}

}  // namespace rmcrt
