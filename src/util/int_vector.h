#pragma once

/// \file int_vector.h
/// Integer and floating-point 3-vectors used throughout the grid,
/// ray-tracing and runtime layers. Mirrors Uintah's IntVector / Vector
/// types: IntVector indexes cells on a structured Cartesian mesh, Vector
/// carries physical positions and ray directions.

#include <algorithm>
#include <array>
#include <cmath>
#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>

namespace rmcrt {

/// A 3-component integer vector indexing cells/nodes on a structured mesh.
///
/// All arithmetic is component-wise. Comparison operators `<=` / `<` are
/// *component-wise conjunctions* (as in Uintah), used for box containment
/// tests; use `operator==` / `operator<=>` only via the named helpers to
/// avoid confusion with lexicographic ordering (provided separately for
/// use as a map key via IntVectorLess).
class IntVector {
 public:
  constexpr IntVector() : m_v{0, 0, 0} {}
  constexpr IntVector(int x, int y, int z) : m_v{x, y, z} {}
  /// Splat constructor: all three components equal to \p s.
  constexpr explicit IntVector(int s) : m_v{s, s, s} {}

  constexpr int x() const { return m_v[0]; }
  constexpr int y() const { return m_v[1]; }
  constexpr int z() const { return m_v[2]; }

  constexpr int& operator[](int i) { return m_v[i]; }
  constexpr int operator[](int i) const { return m_v[i]; }

  constexpr IntVector operator+(const IntVector& o) const {
    return {m_v[0] + o.m_v[0], m_v[1] + o.m_v[1], m_v[2] + o.m_v[2]};
  }
  constexpr IntVector operator-(const IntVector& o) const {
    return {m_v[0] - o.m_v[0], m_v[1] - o.m_v[1], m_v[2] - o.m_v[2]};
  }
  constexpr IntVector operator*(const IntVector& o) const {
    return {m_v[0] * o.m_v[0], m_v[1] * o.m_v[1], m_v[2] * o.m_v[2]};
  }
  constexpr IntVector operator/(const IntVector& o) const {
    return {m_v[0] / o.m_v[0], m_v[1] / o.m_v[1], m_v[2] / o.m_v[2]};
  }
  constexpr IntVector operator*(int s) const {
    return {m_v[0] * s, m_v[1] * s, m_v[2] * s};
  }
  constexpr IntVector operator/(int s) const {
    return {m_v[0] / s, m_v[1] / s, m_v[2] / s};
  }
  constexpr IntVector operator-() const { return {-m_v[0], -m_v[1], -m_v[2]}; }

  constexpr IntVector& operator+=(const IntVector& o) {
    m_v[0] += o.m_v[0];
    m_v[1] += o.m_v[1];
    m_v[2] += o.m_v[2];
    return *this;
  }
  constexpr IntVector& operator-=(const IntVector& o) {
    m_v[0] -= o.m_v[0];
    m_v[1] -= o.m_v[1];
    m_v[2] -= o.m_v[2];
    return *this;
  }

  constexpr bool operator==(const IntVector& o) const {
    return m_v[0] == o.m_v[0] && m_v[1] == o.m_v[1] && m_v[2] == o.m_v[2];
  }
  constexpr bool operator!=(const IntVector& o) const { return !(*this == o); }

  /// Component-wise "all strictly less" — box containment idiom.
  constexpr bool allLess(const IntVector& o) const {
    return m_v[0] < o.m_v[0] && m_v[1] < o.m_v[1] && m_v[2] < o.m_v[2];
  }
  /// Component-wise "all less-or-equal".
  constexpr bool allLessEq(const IntVector& o) const {
    return m_v[0] <= o.m_v[0] && m_v[1] <= o.m_v[1] && m_v[2] <= o.m_v[2];
  }
  /// Component-wise "all greater-or-equal".
  constexpr bool allGreaterEq(const IntVector& o) const {
    return m_v[0] >= o.m_v[0] && m_v[1] >= o.m_v[1] && m_v[2] >= o.m_v[2];
  }

  /// Product of the components; for an extent vector this is the cell count.
  constexpr std::int64_t volume() const {
    return static_cast<std::int64_t>(m_v[0]) * m_v[1] * m_v[2];
  }

  std::string toString() const {
    std::ostringstream os;
    os << "[" << m_v[0] << "," << m_v[1] << "," << m_v[2] << "]";
    return os.str();
  }

 private:
  std::array<int, 3> m_v;
};

constexpr IntVector min(const IntVector& a, const IntVector& b) {
  return {std::min(a.x(), b.x()), std::min(a.y(), b.y()),
          std::min(a.z(), b.z())};
}
constexpr IntVector max(const IntVector& a, const IntVector& b) {
  return {std::max(a.x(), b.x()), std::max(a.y(), b.y()),
          std::max(a.z(), b.z())};
}

inline std::ostream& operator<<(std::ostream& os, const IntVector& v) {
  return os << v.toString();
}

/// Strict weak ordering (lexicographic) for use as an associative-container
/// key. Kept out of operator< to avoid clashing with box-containment idiom.
struct IntVectorLess {
  constexpr bool operator()(const IntVector& a, const IntVector& b) const {
    if (a.x() != b.x()) return a.x() < b.x();
    if (a.y() != b.y()) return a.y() < b.y();
    return a.z() < b.z();
  }
};

struct IntVectorHash {
  std::size_t operator()(const IntVector& v) const {
    // 3-component mix; constants from splitmix64.
    std::uint64_t h = static_cast<std::uint32_t>(v.x());
    h = (h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(v.y()))
              << 21)) *
        0x9E3779B97F4A7C15ull;
    h = (h ^ (h >> 30) ^
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(v.z()))
          << 42)) *
        0xBF58476D1CE4E5B9ull;
    return static_cast<std::size_t>(h ^ (h >> 31));
  }
};

/// A 3-component double-precision vector: positions, directions, spacings.
class Vector {
 public:
  constexpr Vector() : m_v{0.0, 0.0, 0.0} {}
  constexpr Vector(double x, double y, double z) : m_v{x, y, z} {}
  constexpr explicit Vector(double s) : m_v{s, s, s} {}
  constexpr explicit Vector(const IntVector& iv)
      : m_v{static_cast<double>(iv.x()), static_cast<double>(iv.y()),
            static_cast<double>(iv.z())} {}

  constexpr double x() const { return m_v[0]; }
  constexpr double y() const { return m_v[1]; }
  constexpr double z() const { return m_v[2]; }

  constexpr double& operator[](int i) { return m_v[i]; }
  constexpr double operator[](int i) const { return m_v[i]; }

  constexpr Vector operator+(const Vector& o) const {
    return {m_v[0] + o.m_v[0], m_v[1] + o.m_v[1], m_v[2] + o.m_v[2]};
  }
  constexpr Vector operator-(const Vector& o) const {
    return {m_v[0] - o.m_v[0], m_v[1] - o.m_v[1], m_v[2] - o.m_v[2]};
  }
  constexpr Vector operator*(const Vector& o) const {
    return {m_v[0] * o.m_v[0], m_v[1] * o.m_v[1], m_v[2] * o.m_v[2]};
  }
  constexpr Vector operator/(const Vector& o) const {
    return {m_v[0] / o.m_v[0], m_v[1] / o.m_v[1], m_v[2] / o.m_v[2]};
  }
  constexpr Vector operator*(double s) const {
    return {m_v[0] * s, m_v[1] * s, m_v[2] * s};
  }
  constexpr Vector operator/(double s) const {
    return {m_v[0] / s, m_v[1] / s, m_v[2] / s};
  }
  constexpr Vector operator-() const { return {-m_v[0], -m_v[1], -m_v[2]}; }

  constexpr Vector& operator+=(const Vector& o) {
    m_v[0] += o.m_v[0];
    m_v[1] += o.m_v[1];
    m_v[2] += o.m_v[2];
    return *this;
  }

  constexpr bool operator==(const Vector& o) const {
    return m_v[0] == o.m_v[0] && m_v[1] == o.m_v[1] && m_v[2] == o.m_v[2];
  }

  constexpr double dot(const Vector& o) const {
    return m_v[0] * o.m_v[0] + m_v[1] * o.m_v[1] + m_v[2] * o.m_v[2];
  }
  double length() const { return std::sqrt(dot(*this)); }
  constexpr double length2() const { return dot(*this); }

  /// Returns this vector scaled to unit length. Undefined for zero vectors.
  Vector normalized() const { return *this / length(); }

  /// Component-wise reciprocal with +/-inf for zero components — the form
  /// ray-marching needs (a zero direction component never crosses planes).
  Vector safeInverse() const {
    auto inv = [](double c) {
      return c == 0.0 ? std::numeric_limits<double>::infinity()
                      : 1.0 / c;
    };
    return {inv(m_v[0]), inv(m_v[1]), inv(m_v[2])};
  }

  constexpr double minComponent() const {
    return std::min({m_v[0], m_v[1], m_v[2]});
  }
  constexpr double maxComponent() const {
    return std::max({m_v[0], m_v[1], m_v[2]});
  }

  std::string toString() const {
    std::ostringstream os;
    os << "[" << m_v[0] << "," << m_v[1] << "," << m_v[2] << "]";
    return os.str();
  }

 private:
  std::array<double, 3> m_v;
};

constexpr Vector operator*(double s, const Vector& v) { return v * s; }

inline std::ostream& operator<<(std::ostream& os, const Vector& v) {
  return os << v.toString();
}

}  // namespace rmcrt
