#pragma once

/// \file backoff.h
/// Bounded spin-then-sleep backoff for polling loops. The first few
/// iterations yield (cheap, keeps latency low when completion is
/// imminent); after the spin budget the waiter sleeps with exponentially
/// growing intervals up to a cap, so a stalled rank stops burning a core
/// while still reacting within ~1 ms once traffic resumes.

#include <chrono>
#include <thread>

namespace rmcrt::util {

class Backoff {
 public:
  explicit Backoff(int spinLimit = 64,
                   std::chrono::microseconds initialSleep =
                       std::chrono::microseconds(50),
                   std::chrono::microseconds maxSleep =
                       std::chrono::microseconds(1000))
      : m_spinLimit(spinLimit),
        m_initialSleep(initialSleep),
        m_maxSleep(maxSleep),
        m_sleep(initialSleep) {}

  /// Wait once: yield while within the spin budget, then sleep with
  /// exponential growth capped at maxSleep.
  void pause() {
    if (m_spins < m_spinLimit) {
      ++m_spins;
      std::this_thread::yield();
      return;
    }
    std::this_thread::sleep_for(m_sleep);
    m_sleep = std::min(m_maxSleep, m_sleep * 2);
  }

  /// Call when progress was made so the next wait starts cheap again.
  void reset() {
    m_spins = 0;
    m_sleep = m_initialSleep;
  }

 private:
  int m_spinLimit;
  std::chrono::microseconds m_initialSleep;
  std::chrono::microseconds m_maxSleep;
  int m_spins = 0;
  std::chrono::microseconds m_sleep;
};

}  // namespace rmcrt::util
