#pragma once

/// \file stats.h
/// Streaming statistics (Welford) and simple aggregate helpers used by
/// benchmarks, the performance model and accuracy tests.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace rmcrt {

/// Online mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) {
    ++m_n;
    const double delta = x - m_mean;
    m_mean += delta / static_cast<double>(m_n);
    m_m2 += delta * (x - m_mean);
    m_min = std::min(m_min, x);
    m_max = std::max(m_max, x);
    m_sum += x;
  }

  std::int64_t count() const { return m_n; }
  double mean() const { return m_mean; }
  double sum() const { return m_sum; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const {
    return m_n > 1 ? m_m2 / static_cast<double>(m_n - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  /// NaN for an empty accumulator — a 0.0 would read as a real sample in
  /// metrics snapshots (and emission omits NaN-valued entries entirely).
  double min() const {
    return m_n ? m_min : std::numeric_limits<double>::quiet_NaN();
  }
  double max() const {
    return m_n ? m_max : std::numeric_limits<double>::quiet_NaN();
  }

 private:
  std::int64_t m_n = 0;
  double m_mean = 0.0;
  double m_m2 = 0.0;
  double m_sum = 0.0;
  double m_min = std::numeric_limits<double>::infinity();
  double m_max = -std::numeric_limits<double>::infinity();
};

/// Relative L2 error between two equally-sized samples:
/// ||a-b||_2 / ||b||_2 (with b the reference).
inline double relativeL2Error(const std::vector<double>& a,
                              const std::vector<double>& b) {
  double num = 0.0, den = 0.0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    num += d * d;
    den += b[i] * b[i];
  }
  return den > 0.0 ? std::sqrt(num / den) : std::sqrt(num);
}

/// Max-norm error.
inline double maxAbsError(const std::vector<double>& a,
                          const std::vector<double>& b) {
  double m = 0.0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

}  // namespace rmcrt
