#pragma once

/// \file stats.h
/// Streaming statistics (Welford + P² quantiles) and simple aggregate
/// helpers used by benchmarks, the performance model, the radiation
/// service's latency SLO tracking, and accuracy tests.

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace rmcrt {

/// Streaming estimator of one quantile via the P² algorithm (Jain &
/// Chlamtac, CACM 1985): five markers whose heights approximate the
/// q-quantile without storing samples — O(1) memory and O(1) per add(),
/// which is what a long-lived service needs to report p99 latency over
/// millions of requests. The first five samples are exact (held in the
/// marker array and sorted); from the sixth on, marker heights move by
/// piecewise-parabolic interpolation. Accuracy is that of the published
/// algorithm: a few percent of the true quantile for well-behaved
/// distributions (stats_test bounds it against sorted-sample references).
class P2Quantile {
 public:
  explicit P2Quantile(double q = 0.5) : m_q(q) {
    for (int i = 0; i < 5; ++i) m_pos[i] = i + 1;
    m_desired[0] = 1.0;
    m_desired[1] = 1.0 + 2.0 * q;
    m_desired[2] = 1.0 + 4.0 * q;
    m_desired[3] = 3.0 + 2.0 * q;
    m_desired[4] = 5.0;
    m_increment[0] = 0.0;
    m_increment[1] = q / 2.0;
    m_increment[2] = q;
    m_increment[3] = (1.0 + q) / 2.0;
    m_increment[4] = 1.0;
  }

  double quantile() const { return m_q; }
  std::int64_t count() const { return m_n; }

  void add(double x) {
    if (m_n < 5) {
      m_height[static_cast<std::size_t>(m_n++)] = x;
      if (m_n == 5) std::sort(m_height.begin(), m_height.end());
      return;
    }
    ++m_n;
    // Which marker interval x lands in; clamp the extremes.
    int k;
    if (x < m_height[0]) {
      m_height[0] = x;
      k = 0;
    } else if (x >= m_height[4]) {
      m_height[4] = std::max(m_height[4], x);
      k = 3;
    } else {
      k = 0;
      while (k < 3 && x >= m_height[static_cast<std::size_t>(k + 1)]) ++k;
    }
    for (int i = k + 1; i < 5; ++i) ++m_pos[i];
    for (int i = 0; i < 5; ++i)
      m_desired[i] += m_increment[static_cast<std::size_t>(i)];
    // Adjust the three interior markers toward their desired positions.
    for (int i = 1; i <= 3; ++i) {
      const double d = m_desired[i] - static_cast<double>(m_pos[i]);
      const std::int64_t below = m_pos[i] - m_pos[i - 1];
      const std::int64_t above = m_pos[i + 1] - m_pos[i];
      if ((d >= 1.0 && above > 1) || (d <= -1.0 && below > 1)) {
        const int s = d >= 1.0 ? 1 : -1;
        double h = parabolic(i, s);
        if (!(m_height[static_cast<std::size_t>(i - 1)] < h &&
              h < m_height[static_cast<std::size_t>(i + 1)]))
          h = linear(i, s);  // parabolic left the bracket: fall back
        m_height[static_cast<std::size_t>(i)] = h;
        m_pos[i] += s;
      }
    }
  }

  /// Current estimate; exact for n <= 5, NaN when empty (the registry-wide
  /// "no data" convention — see RunningStats::min()).
  double value() const {
    if (m_n == 0) return std::numeric_limits<double>::quiet_NaN();
    if (m_n <= 5) {
      // The markers still hold the raw samples (sorted once n reaches 5;
      // adjustments only start on the 6th add) — report exactly.
      std::array<double, 5> h = m_height;
      std::sort(h.begin(), h.begin() + m_n);
      const double rank = m_q * static_cast<double>(m_n - 1);
      const auto lo = static_cast<std::size_t>(rank);
      const std::size_t hi =
          std::min(lo + 1, static_cast<std::size_t>(m_n - 1));
      const double frac = rank - static_cast<double>(lo);
      return h[lo] + frac * (h[hi] - h[lo]);
    }
    return m_height[2];
  }

 private:
  double parabolic(int i, int s) const {
    const double d = static_cast<double>(s);
    const double qi = m_height[static_cast<std::size_t>(i)];
    const double qm = m_height[static_cast<std::size_t>(i - 1)];
    const double qp = m_height[static_cast<std::size_t>(i + 1)];
    const double nm = static_cast<double>(m_pos[i - 1]);
    const double ni = static_cast<double>(m_pos[i]);
    const double np = static_cast<double>(m_pos[i + 1]);
    return qi + d / (np - nm) *
                    ((ni - nm + d) * (qp - qi) / (np - ni) +
                     (np - ni - d) * (qi - qm) / (ni - nm));
  }
  double linear(int i, int s) const {
    const auto j = static_cast<std::size_t>(i + s);
    return m_height[static_cast<std::size_t>(i)] +
           static_cast<double>(s) *
               (m_height[j] - m_height[static_cast<std::size_t>(i)]) /
               static_cast<double>(m_pos[i + s] - m_pos[i]);
  }

  double m_q;
  std::int64_t m_n = 0;
  std::array<double, 5> m_height{};   // marker heights (first 5: raw samples)
  std::array<std::int64_t, 5> m_pos{};  // marker positions (1-based)
  std::array<double, 5> m_desired{};
  std::array<double, 5> m_increment{};
};

/// Online mean/variance/min/max accumulator (Welford's algorithm), plus
/// streaming p50/p99 via two embedded P² estimators — every component
/// that aggregates through RunningStats can now report tail latency, not
/// just means.
class RunningStats {
 public:
  void add(double x) {
    ++m_n;
    const double delta = x - m_mean;
    m_mean += delta / static_cast<double>(m_n);
    m_m2 += delta * (x - m_mean);
    m_min = std::min(m_min, x);
    m_max = std::max(m_max, x);
    m_sum += x;
    m_p50.add(x);
    m_p99.add(x);
  }

  std::int64_t count() const { return m_n; }
  double mean() const { return m_mean; }
  double sum() const { return m_sum; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const {
    return m_n > 1 ? m_m2 / static_cast<double>(m_n - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  /// NaN for an empty accumulator — a 0.0 would read as a real sample in
  /// metrics snapshots (and emission omits NaN-valued entries entirely).
  double min() const {
    return m_n ? m_min : std::numeric_limits<double>::quiet_NaN();
  }
  double max() const {
    return m_n ? m_max : std::numeric_limits<double>::quiet_NaN();
  }
  /// Streaming median / 99th-percentile estimates (P²; exact for n <= 5,
  /// NaN when empty). See P2Quantile for the accuracy contract.
  double p50() const { return m_p50.value(); }
  double p99() const { return m_p99.value(); }

 private:
  std::int64_t m_n = 0;
  double m_mean = 0.0;
  double m_m2 = 0.0;
  double m_sum = 0.0;
  double m_min = std::numeric_limits<double>::infinity();
  double m_max = -std::numeric_limits<double>::infinity();
  P2Quantile m_p50{0.5};
  P2Quantile m_p99{0.99};
};

/// Relative L2 error between two equally-sized samples:
/// ||a-b||_2 / ||b||_2 (with b the reference).
inline double relativeL2Error(const std::vector<double>& a,
                              const std::vector<double>& b) {
  double num = 0.0, den = 0.0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    num += d * d;
    den += b[i] * b[i];
  }
  return den > 0.0 ? std::sqrt(num / den) : std::sqrt(num);
}

/// Max-norm error.
inline double maxAbsError(const std::vector<double>& a,
                          const std::vector<double>& b) {
  double m = 0.0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

}  // namespace rmcrt
