#pragma once

/// \file trace_recorder.h
/// Lock-cheap timeline tracing (DESIGN.md §10): scoped spans and instant
/// events recorded into per-thread ring buffers and emitted as Chrome
/// trace-event JSON (load in Perfetto / chrome://tracing). Used to
/// attribute per-timestep wall time to phases — MPI post/test, H2D/D2H
/// staging, kernel execution, task execute — the quantity the paper's
/// Figure 1 / Table I measure.
///
/// Cost model:
///  * compiled out entirely with -DRMCRT_TRACING_DISABLED (the macros
///    expand to nothing — a compile-time-checkable no-op path);
///  * disabled at runtime (the default): one relaxed atomic load per
///    RMCRT_TRACE_* site;
///  * enabled: one steady_clock read at span entry, one at exit, and one
///    append into the calling thread's own ring buffer. The buffer's
///    mutex is only ever contended by a concurrent dump/clear, never by
///    other recording threads.
///
/// Events carry a (pid, tid) pair like Chrome's: tid is a small integer
/// assigned per OS thread in registration order; pid defaults to 0 and is
/// settable per thread (the scheduler sets it to its MPI-style rank so
/// Perfetto groups each rank's rows together). Ring buffers overwrite
/// their oldest events when full; the dropped count is reported in the
/// trace metadata rather than silently lost.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace rmcrt {

/// One recorded event. Names/categories are copied (truncated) into
/// fixed-size storage so callers may pass transient strings.
struct TraceEvent {
  static constexpr std::size_t kNameCap = 48;
  static constexpr std::size_t kCatCap = 16;

  char name[kNameCap] = {0};
  char cat[kCatCap] = {0};
  char phase = 'X';          ///< 'X' complete span, 'i' instant
  std::int64_t tsNs = 0;     ///< start, ns since the recorder epoch
  std::int64_t durNs = 0;    ///< span duration ('X' only)
  std::uint32_t tid = 0;
  std::int32_t pid = 0;
};

/// Process-wide trace-event recorder.
class TraceRecorder {
 public:
  static TraceRecorder& global() {
    static TraceRecorder g;
    return g;
  }

  TraceRecorder() : m_epoch(std::chrono::steady_clock::now()) {}

  /// Runtime switch. Enabling mid-run is fine; events recorded while
  /// disabled are simply not recorded.
  void setEnabled(bool on) {
    m_enabled.store(on, std::memory_order_relaxed);
  }
  bool enabled() const {
    return m_enabled.load(std::memory_order_relaxed);
  }

  /// Ring capacity for buffers created AFTER this call (events per
  /// thread; existing buffers keep their capacity).
  void setCapacityPerThread(std::size_t events) {
    m_capacity.store(events ? events : 1, std::memory_order_relaxed);
  }

  /// Nanoseconds since the recorder epoch.
  std::int64_t nowNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - m_epoch)
        .count();
  }

  /// Record a complete span [tsNs, tsNs+durNs) on the calling thread.
  void recordComplete(const char* cat, const char* name, std::int64_t tsNs,
                      std::int64_t durNs) {
    TraceEvent ev;
    fill(ev, cat, name, 'X', tsNs, durNs);
    threadBuffer().push(ev);
  }

  /// Record an instantaneous event at now() on the calling thread.
  void recordInstant(const char* cat, const char* name) {
    TraceEvent ev;
    fill(ev, cat, name, 'i', nowNs(), 0);
    threadBuffer().push(ev);
  }

  /// Label the calling thread's row in the trace viewer.
  void setThreadName(const std::string& name) {
    ThreadBuffer& b = threadBuffer();
    std::lock_guard<std::mutex> lk(b.mutex);
    b.threadName = name;
  }

  /// Group the calling thread's events under process id \p pid (the
  /// scheduler uses its rank). Applies to events recorded afterwards.
  void setThreadPid(int pid) {
    threadBuffer().pid.store(pid, std::memory_order_relaxed);
  }

  /// All events recorded so far, across threads (tests / custom sinks).
  std::vector<TraceEvent> snapshotEvents() const {
    std::vector<TraceEvent> out;
    std::lock_guard<std::mutex> lk(m_registryMutex);
    for (const auto& b : m_buffers) {
      std::lock_guard<std::mutex> blk(b->mutex);
      b->appendTo(out);
    }
    return out;
  }

  /// Events overwritten because a ring filled, across threads.
  std::uint64_t droppedEvents() const {
    std::uint64_t n = 0;
    std::lock_guard<std::mutex> lk(m_registryMutex);
    for (const auto& b : m_buffers) {
      std::lock_guard<std::mutex> blk(b->mutex);
      n += b->dropped;
    }
    return n;
  }

  /// Discard all recorded events (buffers stay registered).
  void clear() {
    std::lock_guard<std::mutex> lk(m_registryMutex);
    for (const auto& b : m_buffers) {
      std::lock_guard<std::mutex> blk(b->mutex);
      b->count = 0;
      b->next = 0;
      b->dropped = 0;
    }
  }

  /// Emit the Chrome trace-event JSON object:
  ///   {"traceEvents":[...], "displayTimeUnit":"ms", ...}
  /// ts/dur are microseconds (fractional — ns precision survives).
  void writeChromeTrace(std::ostream& os) const {
    std::lock_guard<std::mutex> lk(m_registryMutex);
    os << "{\n\"traceEvents\": [\n";
    bool first = true;
    std::uint64_t dropped = 0;
    for (const auto& b : m_buffers) {
      std::lock_guard<std::mutex> blk(b->mutex);
      dropped += b->dropped;
      if (!b->threadName.empty()) {
        if (!first) os << ",\n";
        first = false;
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":"
           << b->pid.load(std::memory_order_relaxed) << ",\"tid\":"
           << b->tid << ",\"args\":{\"name\":\""
           << escaped(b->threadName.c_str()) << "\"}}";
      }
      std::vector<TraceEvent> events;
      b->appendTo(events);
      for (const TraceEvent& ev : events) {
        if (!first) os << ",\n";
        first = false;
        writeEvent(os, ev);
      }
    }
    os << "\n],\n\"displayTimeUnit\": \"ms\",\n\"otherData\": "
       << "{\"droppedEvents\": \"" << dropped << "\"}\n}\n";
  }

 private:
  /// Fixed-capacity ring of one thread's events. Appends lock the
  /// buffer's own mutex, which only a dump/clear ever contends.
  struct ThreadBuffer {
    explicit ThreadBuffer(std::uint32_t tidIn, std::size_t cap)
        : tid(tidIn), ring(cap) {}

    void push(const TraceEvent& ev) {
      std::lock_guard<std::mutex> lk(mutex);
      ring[next] = ev;
      ring[next].tid = tid;
      ring[next].pid = pid.load(std::memory_order_relaxed);
      next = (next + 1) % ring.size();
      if (count < ring.size())
        ++count;
      else
        ++dropped;
    }

    /// Oldest-to-newest copy of the ring's live events (caller holds
    /// mutex).
    void appendTo(std::vector<TraceEvent>& out) const {
      const std::size_t start = (next + ring.size() - count) % ring.size();
      for (std::size_t i = 0; i < count; ++i)
        out.push_back(ring[(start + i) % ring.size()]);
    }

    mutable std::mutex mutex;
    const std::uint32_t tid;
    std::atomic<std::int32_t> pid{0};
    std::string threadName;
    std::vector<TraceEvent> ring;
    std::size_t next = 0;
    std::size_t count = 0;
    std::uint64_t dropped = 0;
  };

  static void copyTruncated(char* dst, std::size_t cap, const char* src) {
    std::size_t i = 0;
    for (; src[i] != '\0' && i + 1 < cap; ++i) dst[i] = src[i];
    dst[i] = '\0';
  }

  void fill(TraceEvent& ev, const char* cat, const char* name, char phase,
            std::int64_t tsNs, std::int64_t durNs) const {
    copyTruncated(ev.name, TraceEvent::kNameCap, name);
    copyTruncated(ev.cat, TraceEvent::kCatCap, cat);
    ev.phase = phase;
    ev.tsNs = tsNs;
    ev.durNs = durNs;
  }

  ThreadBuffer& threadBuffer() {
    thread_local std::shared_ptr<ThreadBuffer> tl = registerThread();
    return *tl;
  }

  std::shared_ptr<ThreadBuffer> registerThread() {
    std::lock_guard<std::mutex> lk(m_registryMutex);
    auto b = std::make_shared<ThreadBuffer>(
        static_cast<std::uint32_t>(m_buffers.size()),
        m_capacity.load(std::memory_order_relaxed));
    m_buffers.push_back(b);
    return b;
  }

  /// JSON string escaping for names (names are short ASCII; anything
  /// exotic is dropped to '?').
  static std::string escaped(const char* s) {
    std::string out;
    for (; *s; ++s) {
      const char c = *s;
      if (c == '"' || c == '\\')
        out += '\\', out += c;
      else if (static_cast<unsigned char>(c) < 0x20)
        out += '?';
      else
        out += c;
    }
    return out;
  }

  static void writeEvent(std::ostream& os, const TraceEvent& ev) {
    os << "{\"name\":\"" << escaped(ev.name) << "\",\"cat\":\""
       << escaped(ev.cat) << "\",\"ph\":\"" << ev.phase
       << "\",\"ts\":" << static_cast<double>(ev.tsNs) / 1000.0
       << ",\"pid\":" << ev.pid << ",\"tid\":" << ev.tid;
    if (ev.phase == 'X')
      os << ",\"dur\":" << static_cast<double>(ev.durNs) / 1000.0;
    if (ev.phase == 'i') os << ",\"s\":\"t\"";
    os << "}";
  }

  std::atomic<bool> m_enabled{false};
  std::atomic<std::size_t> m_capacity{1 << 16};
  const std::chrono::steady_clock::time_point m_epoch;
  mutable std::mutex m_registryMutex;
  std::vector<std::shared_ptr<ThreadBuffer>> m_buffers;
};

/// RAII span against the global recorder. The enabled check happens once
/// at construction; a span that began enabled is recorded even if tracing
/// is switched off before it closes (cheap, and keeps the JSON nested).
class TraceSpan {
 public:
  TraceSpan(const char* cat, const char* name)
      : m_live(TraceRecorder::global().enabled()) {
    if (m_live) {
      m_cat = cat;
      m_name = name;
      m_startNs = TraceRecorder::global().nowNs();
    }
  }
  /// Span with a dynamically-built name (copied immediately).
  TraceSpan(const char* cat, const std::string& name)
      : m_live(TraceRecorder::global().enabled()) {
    if (m_live) {
      m_cat = cat;
      m_nameCopy = name;
      m_name = m_nameCopy.c_str();
      m_startNs = TraceRecorder::global().nowNs();
    }
  }
  ~TraceSpan() {
    if (m_live) {
      TraceRecorder& r = TraceRecorder::global();
      r.recordComplete(m_cat, m_name, m_startNs, r.nowNs() - m_startNs);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const bool m_live;
  const char* m_cat = "";
  const char* m_name = "";
  std::string m_nameCopy;
  std::int64_t m_startNs = 0;
};

#if defined(RMCRT_TRACING_DISABLED)
#define RMCRT_TRACE_SPAN(cat, name) \
  do {                              \
  } while (0)
#define RMCRT_TRACE_INSTANT(cat, name) \
  do {                                 \
  } while (0)
#else
#define RMCRT_TRACE_CONCAT2(a, b) a##b
#define RMCRT_TRACE_CONCAT(a, b) RMCRT_TRACE_CONCAT2(a, b)
#define RMCRT_TRACE_SPAN(cat, name) \
  ::rmcrt::TraceSpan RMCRT_TRACE_CONCAT(rmcrtTraceSpan_, __LINE__)(cat, name)
#define RMCRT_TRACE_INSTANT(cat, name)                   \
  do {                                                   \
    if (::rmcrt::TraceRecorder::global().enabled())      \
      ::rmcrt::TraceRecorder::global().recordInstant(cat, name); \
  } while (0)
#endif

}  // namespace rmcrt
