#pragma once

/// \file timers.h
/// Lightweight wall-clock timers and an accumulating scoped timer used by
/// the scheduler and benchmarks to attribute time to phases (task execute,
/// MPI post/test, H2D/D2H staging, ...).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace rmcrt {

/// A simple wall-clock stopwatch.
class Timer {
 public:
  using clock = std::chrono::steady_clock;

  Timer() : m_start(clock::now()) {}

  void reset() { m_start = clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - m_start).count();
  }
  /// Nanoseconds elapsed.
  std::int64_t nanoseconds() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                                m_start)
        .count();
  }

 private:
  clock::time_point m_start;
};

/// An atomically-accumulating time bucket; safe to add to from many
/// threads. Used for scheduler phase attribution ("local comm time").
class AtomicTimeAccumulator {
 public:
  void addSeconds(double s) {
    m_ns.fetch_add(static_cast<std::int64_t>(s * 1e9),
                   std::memory_order_relaxed);
  }
  void addNanoseconds(std::int64_t ns) {
    m_ns.fetch_add(ns, std::memory_order_relaxed);
  }
  double seconds() const {
    return static_cast<double>(m_ns.load(std::memory_order_relaxed)) * 1e-9;
  }
  void reset() { m_ns.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> m_ns{0};
};

/// RAII helper: adds the scope's wall time into an accumulator on exit.
class ScopedTimer {
 public:
  explicit ScopedTimer(AtomicTimeAccumulator& acc) : m_acc(acc) {}
  ~ScopedTimer() { m_acc.addNanoseconds(m_timer.nanoseconds()); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  AtomicTimeAccumulator& m_acc;
  Timer m_timer;
};

}  // namespace rmcrt
