#pragma once

/// \file rng.h
/// Counter-based pseudo-random number generation for Monte Carlo ray
/// tracing. Every (cell, ray) pair gets an independent, reproducible
/// stream regardless of patch decomposition, rank count or thread
/// scheduling — the property needed so RMCRT results are bitwise
/// deterministic across any parallel configuration. The mixing function is
/// splitmix64, which passes BigCrush as a 64-bit mixer.

#include <cstdint>

#include "util/int_vector.h"

namespace rmcrt {

/// splitmix64 finalizer: a bijective 64-bit mix.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// A small counter-based RNG: state advances through splitmix64 from a
/// seed derived by hashing (domain seed, cell index, ray id). Cheap to
/// construct per ray; no shared state between threads.
class Rng {
 public:
  /// Seed from an arbitrary 64-bit value.
  constexpr explicit Rng(std::uint64_t seed)
      : m_state(splitmix64(seed ^ 0xD1B54A32D192ED03ull)) {}

  /// Seed an independent stream for ray \p ray of cell \p cell in a
  /// simulation seeded with \p domainSeed. Each component is absorbed by
  /// its own full splitmix64 round (hash chaining). Packing the three
  /// 32-bit coordinates into one word at bit offsets 0/21/42 — the
  /// previous scheme — overlaps the fields, so cells with any coordinate
  /// >= 2^21, and all negative coordinates (whose uint32 images set the
  /// high bits), could collide into the same stream and correlate
  /// neighboring cells' estimators.
  Rng(std::uint64_t domainSeed, const IntVector& cell, std::uint32_t ray)
      : Rng(streamSeed(domainSeed, cell, ray)) {}

  /// The chained stream seed for (domainSeed, cell, ray); exposed for
  /// collision tests.
  static constexpr std::uint64_t streamSeed(std::uint64_t domainSeed,
                                            const IntVector& cell,
                                            std::uint32_t ray) {
    auto absorb = [](std::uint64_t h, std::uint64_t v) {
      return splitmix64(h ^ v);
    };
    std::uint64_t h = splitmix64(domainSeed);
    h = absorb(h, static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(cell.x())));
    h = absorb(h, static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(cell.y())));
    h = absorb(h, static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(cell.z())));
    h = absorb(h, static_cast<std::uint64_t>(ray));
    return h;
  }

  /// Next 64 uniformly distributed bits.
  constexpr std::uint64_t nextU64() {
    m_state += 0x9E3779B97F4A7C15ull;
    std::uint64_t x = m_state;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  /// Uniform double in [0, 1).
  constexpr double nextDouble() {
    // 53 high-quality bits -> [0,1).
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) {
    return lo + (hi - lo) * nextDouble();
  }

  /// Uniform integer in [0, n). Unbiased enough for MC use (n << 2^64).
  constexpr std::uint64_t nextBelow(std::uint64_t n) {
    return nextU64() % n;
  }

  /// The raw stream counter. Together with fromState() this lets a
  /// checkpoint resume a stream mid-sequence: the constructor hashes its
  /// seed, so re-seeding with state() would NOT continue the stream.
  constexpr std::uint64_t state() const { return m_state; }

  /// Rebuild an Rng that continues exactly where the stream whose state()
  /// was \p rawState left off.
  static constexpr Rng fromState(std::uint64_t rawState) {
    Rng r(0);
    r.m_state = rawState;
    return r;
  }

 private:
  std::uint64_t m_state;
};

}  // namespace rmcrt
