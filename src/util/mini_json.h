#pragma once

/// Minimal recursive-descent JSON parser: enough to read the committed
/// bench baselines (sim/calibration.cc loads per-segment cost from
/// BENCH_rmcrt_kernel.json) and to let tests validate emitter output by
/// parsing it. Throws std::runtime_error on any syntax error (so
/// EXPECT_NO_THROW(parse(...)) is the well-formedness check).

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace minijson {

struct Value {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  bool has(const std::string& key) const {
    return type == Type::Object && object.count(key) > 0;
  }
  const Value& at(const std::string& key) const {
    if (!has(key)) throw std::runtime_error("missing key: " + key);
    return object.at(key);
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : m_s(text) {}

  Value parse() {
    Value v = parseValue();
    skipWs();
    if (m_i != m_s.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("JSON error at offset " +
                             std::to_string(m_i) + ": " + why);
  }

  void skipWs() {
    while (m_i < m_s.size() &&
           std::isspace(static_cast<unsigned char>(m_s[m_i])))
      ++m_i;
  }

  char peek() {
    skipWs();
    if (m_i >= m_s.size()) fail("unexpected end of input");
    return m_s[m_i];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++m_i;
  }

  bool consumeLiteral(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (m_s.compare(m_i, n, lit) != 0) return false;
    m_i += n;
    return true;
  }

  Value parseValue() {
    const char c = peek();
    Value v;
    switch (c) {
      case '{':
        return parseObject();
      case '[':
        return parseArray();
      case '"':
        v.type = Value::Type::String;
        v.str = parseString();
        return v;
      case 't':
        if (!consumeLiteral("true")) fail("bad literal");
        v.type = Value::Type::Bool;
        v.boolean = true;
        return v;
      case 'f':
        if (!consumeLiteral("false")) fail("bad literal");
        v.type = Value::Type::Bool;
        return v;
      case 'n':
        if (!consumeLiteral("null")) fail("bad literal");
        return v;
      default:
        return parseNumber();
    }
  }

  Value parseObject() {
    expect('{');
    Value v;
    v.type = Value::Type::Object;
    if (peek() == '}') {
      ++m_i;
      return v;
    }
    for (;;) {
      if (peek() != '"') fail("expected object key");
      std::string key = parseString();
      expect(':');
      v.object[key] = parseValue();
      const char c = peek();
      ++m_i;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  Value parseArray() {
    expect('[');
    Value v;
    v.type = Value::Type::Array;
    if (peek() == ']') {
      ++m_i;
      return v;
    }
    for (;;) {
      v.array.push_back(parseValue());
      const char c = peek();
      ++m_i;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (m_i < m_s.size()) {
      const char c = m_s[m_i++];
      if (c == '"') return out;
      if (c == '\\') {
        if (m_i >= m_s.size()) fail("bad escape");
        const char e = m_s[m_i++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u':
            if (m_i + 4 > m_s.size()) fail("bad \\u escape");
            out += '?';  // tests never emit non-ASCII; placeholder is fine
            m_i += 4;
            break;
          default:
            fail("bad escape character");
        }
      } else {
        out += c;
      }
    }
    fail("unterminated string");
  }

  Value parseNumber() {
    const std::size_t start = m_i;
    if (m_i < m_s.size() && m_s[m_i] == '-') ++m_i;
    auto digits = [&] {
      std::size_t n = 0;
      while (m_i < m_s.size() &&
             std::isdigit(static_cast<unsigned char>(m_s[m_i]))) {
        ++m_i;
        ++n;
      }
      return n;
    };
    if (digits() == 0) fail("expected digits");
    if (m_i < m_s.size() && m_s[m_i] == '.') {
      ++m_i;
      if (digits() == 0) fail("expected fraction digits");
    }
    if (m_i < m_s.size() && (m_s[m_i] == 'e' || m_s[m_i] == 'E')) {
      ++m_i;
      if (m_i < m_s.size() && (m_s[m_i] == '+' || m_s[m_i] == '-')) ++m_i;
      if (digits() == 0) fail("expected exponent digits");
    }
    Value v;
    v.type = Value::Type::Number;
    v.number = std::strtod(m_s.c_str() + start, nullptr);
    return v;
  }

  const std::string& m_s;
  std::size_t m_i = 0;
};

inline Value parse(const std::string& text) { return Parser(text).parse(); }

}  // namespace minijson
