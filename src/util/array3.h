#pragma once

/// \file array3.h
/// A dense 3-D array addressed by absolute cell indices over a CellRange
/// window (low inclusive, high exclusive), with a pluggable allocator.
/// This is the storage engine under grid::CCVariable; the window may
/// include ghost cells, so indices can be negative.

#include <cassert>
#include <cstring>
#include <memory>
#include <type_traits>
#include <utility>

#include "util/int_vector.h"
#include "util/range.h"

namespace rmcrt {

/// Dense row-major (x fastest) 3-D array over a half-open index window.
///
/// \tparam T     element type (trivially copyable types get memcpy copies)
/// \tparam Alloc std::allocator-compatible allocator for T
template <typename T, typename Alloc = std::allocator<T>>
class Array3 {
 public:
  using value_type = T;
  using allocator_type = Alloc;

  Array3() = default;
  explicit Array3(const Alloc& alloc) : m_alloc(alloc) {}

  /// Allocate a window and value-initialize every element.
  explicit Array3(const CellRange& window, const T& init = T{},
                  const Alloc& alloc = Alloc())
      : m_alloc(alloc) {
    resize(window, init);
  }

  Array3(const Array3& o) : m_alloc(o.m_alloc) {
    resizeUninitialized(o.m_window);
    copyFrom(o.m_data, o.m_window.volume());
  }
  Array3& operator=(const Array3& o) {
    if (this != &o) {
      release();
      m_alloc = o.m_alloc;
      resizeUninitialized(o.m_window);
      copyFrom(o.m_data, o.m_window.volume());
    }
    return *this;
  }

  Array3(Array3&& o) noexcept
      : m_alloc(std::move(o.m_alloc)),
        m_window(o.m_window),
        m_size(o.m_size),
        m_data(o.m_data) {
    o.m_data = nullptr;
    o.m_window = CellRange();
  }
  Array3& operator=(Array3&& o) noexcept {
    if (this != &o) {
      release();
      m_alloc = std::move(o.m_alloc);
      m_window = o.m_window;
      m_size = o.m_size;
      m_data = o.m_data;
      o.m_data = nullptr;
      o.m_window = CellRange();
    }
    return *this;
  }

  ~Array3() { release(); }

  /// (Re)allocate to a new window, value-initializing all elements.
  void resize(const CellRange& window, const T& init = T{}) {
    resizeUninitialized(window);
    const std::int64_t n = m_window.volume();
    for (std::int64_t i = 0; i < n; ++i)
      std::allocator_traits<Alloc>::construct(m_alloc, m_data + i, init);
  }

  const CellRange& window() const { return m_window; }
  std::int64_t size() const { return m_window.volume(); }
  bool allocated() const { return m_data != nullptr; }

  T* data() { return m_data; }
  const T* data() const { return m_data; }

  /// Linear offset of an absolute index within this window.
  std::int64_t offset(const IntVector& idx) const {
    assert(m_window.contains(idx));
    const IntVector rel = idx - m_window.low();
    return rel.x() +
           m_size.x() * (static_cast<std::int64_t>(rel.y()) +
                         static_cast<std::int64_t>(m_size.y()) * rel.z());
  }

  T& operator[](const IntVector& idx) { return m_data[offset(idx)]; }
  const T& operator[](const IntVector& idx) const {
    return m_data[offset(idx)];
  }

  T& at(int x, int y, int z) { return (*this)[IntVector(x, y, z)]; }
  const T& at(int x, int y, int z) const { return (*this)[IntVector(x, y, z)]; }

  /// Fill the whole window with \p v.
  void fill(const T& v) {
    const std::int64_t n = size();
    for (std::int64_t i = 0; i < n; ++i) m_data[i] = v;
  }

  /// Copy the sub-box \p region from \p src (must be contained in both
  /// windows). This is the ghost-exchange workhorse.
  void copyRegion(const Array3& src, const CellRange& region) {
    assert(m_window.contains(region));
    assert(src.m_window.contains(region));
    for (int z = region.low().z(); z < region.high().z(); ++z) {
      for (int y = region.low().y(); y < region.high().y(); ++y) {
        const IntVector rowLo(region.low().x(), y, z);
        const std::int64_t count = region.high().x() - region.low().x();
        if constexpr (std::is_trivially_copyable_v<T>) {
          std::memcpy(&(*this)[rowLo], &src[rowLo],
                      static_cast<std::size_t>(count) * sizeof(T));
        } else {
          for (std::int64_t i = 0; i < count; ++i)
            m_data[offset(rowLo) + i] = src.m_data[src.offset(rowLo) + i];
        }
      }
    }
  }

  /// Serialize the sub-box \p region into a flat buffer (row-major).
  /// Returns the number of elements written.
  std::int64_t packRegion(const CellRange& region, T* out) const {
    assert(m_window.contains(region));
    std::int64_t k = 0;
    for (int z = region.low().z(); z < region.high().z(); ++z) {
      for (int y = region.low().y(); y < region.high().y(); ++y) {
        const IntVector rowLo(region.low().x(), y, z);
        const std::int64_t count = region.high().x() - region.low().x();
        if constexpr (std::is_trivially_copyable_v<T>) {
          std::memcpy(out + k, &(*this)[rowLo],
                      static_cast<std::size_t>(count) * sizeof(T));
        } else {
          for (std::int64_t i = 0; i < count; ++i)
            out[k + i] = m_data[offset(rowLo) + i];
        }
        k += count;
      }
    }
    return k;
  }

  /// Inverse of packRegion.
  std::int64_t unpackRegion(const CellRange& region, const T* in) {
    assert(m_window.contains(region));
    std::int64_t k = 0;
    for (int z = region.low().z(); z < region.high().z(); ++z) {
      for (int y = region.low().y(); y < region.high().y(); ++y) {
        const IntVector rowLo(region.low().x(), y, z);
        const std::int64_t count = region.high().x() - region.low().x();
        if constexpr (std::is_trivially_copyable_v<T>) {
          std::memcpy(&(*this)[rowLo], in + k,
                      static_cast<std::size_t>(count) * sizeof(T));
        } else {
          for (std::int64_t i = 0; i < count; ++i)
            m_data[offset(rowLo) + i] = in[k + i];
        }
        k += count;
      }
    }
    return k;
  }

 private:
  void resizeUninitialized(const CellRange& window) {
    release();
    m_window = window;
    m_size = window.size();
    const std::int64_t n = window.volume();
    m_data = n > 0 ? std::allocator_traits<Alloc>::allocate(
                         m_alloc, static_cast<std::size_t>(n))
                   : nullptr;
  }

  void copyFrom(const T* src, std::int64_t n) {
    if constexpr (std::is_trivially_copyable_v<T>) {
      if (n > 0)
        std::memcpy(m_data, src, static_cast<std::size_t>(n) * sizeof(T));
    } else {
      for (std::int64_t i = 0; i < n; ++i)
        std::allocator_traits<Alloc>::construct(m_alloc, m_data + i, src[i]);
    }
  }

  void release() {
    if (m_data) {
      const std::int64_t n = m_window.volume();
      if constexpr (!std::is_trivially_destructible_v<T>) {
        for (std::int64_t i = 0; i < n; ++i)
          std::allocator_traits<Alloc>::destroy(m_alloc, m_data + i);
      }
      std::allocator_traits<Alloc>::deallocate(m_alloc, m_data,
                                               static_cast<std::size_t>(n));
      m_data = nullptr;
    }
  }

  Alloc m_alloc{};
  CellRange m_window;
  IntVector m_size;
  T* m_data = nullptr;
};

}  // namespace rmcrt
