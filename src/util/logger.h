#pragma once

/// \file logger.h
/// Minimal leveled, thread-safe logging. Defaults to WARN so library code
/// stays quiet under test; benchmarks and examples raise the level.

#include <atomic>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace rmcrt {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3 };

/// Global log configuration and sink (stderr).
class Logger {
 public:
  static Logger& instance() {
    static Logger g;
    return g;
  }

  void setLevel(LogLevel lvl) {
    m_level.store(static_cast<int>(lvl), std::memory_order_relaxed);
  }
  LogLevel level() const {
    return static_cast<LogLevel>(m_level.load(std::memory_order_relaxed));
  }
  bool enabled(LogLevel lvl) const {
    return static_cast<int>(lvl) >= m_level.load(std::memory_order_relaxed);
  }

  void write(LogLevel lvl, const std::string& msg) {
    if (!enabled(lvl)) return;
    static const char* names[] = {"DEBUG", "INFO", "WARN", "ERROR"};
    std::lock_guard<std::mutex> lk(m_mutex);
    std::cerr << "[" << names[static_cast<int>(lvl)] << "] " << msg << "\n";
  }

 private:
  Logger() = default;
  std::atomic<int> m_level{static_cast<int>(LogLevel::Warn)};
  std::mutex m_mutex;
};

namespace detail {
inline void logStream(LogLevel lvl, const std::ostringstream& os) {
  Logger::instance().write(lvl, os.str());
}
}  // namespace detail

#define RMCRT_LOG(lvl, expr)                                   \
  do {                                                         \
    if (::rmcrt::Logger::instance().enabled(lvl)) {            \
      std::ostringstream rmcrt_log_os;                         \
      rmcrt_log_os << expr;                                    \
      ::rmcrt::detail::logStream(lvl, rmcrt_log_os);           \
    }                                                          \
  } while (0)

#define RMCRT_DEBUG(expr) RMCRT_LOG(::rmcrt::LogLevel::Debug, expr)
#define RMCRT_INFO(expr) RMCRT_LOG(::rmcrt::LogLevel::Info, expr)
#define RMCRT_WARN(expr) RMCRT_LOG(::rmcrt::LogLevel::Warn, expr)
#define RMCRT_ERROR(expr) RMCRT_LOG(::rmcrt::LogLevel::Error, expr)

}  // namespace rmcrt
