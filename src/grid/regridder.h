#pragma once

/// \file regridder.h
/// Patch-size reconfiguration (DESIGN.md D4): rebuild a grid with a
/// different fine-patch edge — the knob the paper sweeps (16^3 / 32^3 /
/// 64^3, "determining optimal fine mesh patch sizes to yield GPU
/// performance while maintaining over-decomposition") — and migrate
/// level-shaped data onto the new decomposition. Cell data is
/// decomposition-independent, so migration is windowed copying.

#include <memory>
#include <stdexcept>
#include <string>

#include "grid/grid.h"
#include "grid/variable.h"

namespace rmcrt::grid {

/// Build a grid identical to \p old but with fine patch edge
/// \p newFinePatchSize. Throws std::invalid_argument when the new patch
/// edge is non-positive or does not divide the fine extent, or when any
/// level of \p old is not uniformly tiled (adaptive grids are rebuilt by
/// the amr:: engine, not by patch-size reconfiguration). Coarser levels
/// keep their patch sizes.
inline std::shared_ptr<Grid> regridWithPatchSize(const Grid& old,
                                                 int newFinePatchSize) {
  for (int l = 0; l < old.numLevels(); ++l)
    if (!old.level(l).uniformlyTiled())
      throw std::invalid_argument(
          "regridWithPatchSize: level " + std::to_string(l) +
          " is not uniformly tiled; adaptive grids must be regridded "
          "through amr::AmrEngine");
  const IntVector fineExtent = old.fineLevel().cells().size();
  if (newFinePatchSize <= 0 || fineExtent.x() % newFinePatchSize != 0 ||
      fineExtent.y() % newFinePatchSize != 0 ||
      fineExtent.z() % newFinePatchSize != 0)
    throw std::invalid_argument(
        "regridWithPatchSize: new fine patch edge " +
        std::to_string(newFinePatchSize) +
        " must be positive and divide the fine extent (" +
        std::to_string(fineExtent.x()) + "," +
        std::to_string(fineExtent.y()) + "," +
        std::to_string(fineExtent.z()) + ")");
  std::vector<IntVector> patchSizes;
  for (int l = 0; l < old.numLevels(); ++l)
    patchSizes.push_back(old.level(l).patchSize());
  patchSizes.back() = IntVector(newFinePatchSize);
  const IntVector rr = old.numLevels() > 1
                           ? old.fineLevel().refinementRatio()
                           : IntVector(2);
  return Grid::makeMultiLevel(old.physLow(), old.physHigh(),
                              old.fineLevel().cells().size(), rr,
                              patchSizes);
}

/// Scatter a level-wide variable into per-patch variables of \p level
/// (the regrid "migration": new patches pull their windows out of the
/// old level image). Returns one variable per patch, ordered like
/// level.patches().
template <typename T>
std::vector<CCVariable<T>> scatterToPatches(const CCVariable<T>& levelVar,
                                            const Level& level,
                                            int numGhost = 0) {
  std::vector<CCVariable<T>> out;
  out.reserve(level.numPatches());
  for (const Patch& p : level.patches()) {
    CCVariable<T> v(p, numGhost);
    const CellRange copyRegion =
        v.window().intersect(levelVar.window());
    v.copyRegion(levelVar, copyRegion);
    out.push_back(std::move(v));
  }
  return out;
}

/// Gather per-patch variables into one level-wide image (inverse of
/// scatterToPatches; patch interiors only).
template <typename T>
CCVariable<T> gatherFromPatches(const std::vector<CCVariable<T>>& patchVars,
                                const Level& level) {
  CCVariable<T> out(level.cells(), T{});
  for (std::size_t i = 0; i < level.numPatches(); ++i)
    out.copyRegion(patchVars[i], level.patch(i).cells());
  return out;
}

}  // namespace rmcrt::grid
