#pragma once

/// \file grid.h
/// The AMR grid: an ordered set of levels (0 = coarsest) over one physical
/// domain, with factory helpers for the configurations the paper uses —
/// notably the 2-level RMCRT setup (fine CFD mesh + coarse radiation mesh
/// both spanning the whole domain, refinement ratio typically 4).

#include <memory>
#include <vector>

#include "grid/level.h"
#include "util/int_vector.h"

namespace rmcrt::grid {

/// An AMR grid over a rectangular physical domain.
class Grid {
 public:
  /// Build a single-level grid.
  /// \param physLow/physHigh  physical domain corners
  /// \param cells             cell extent
  /// \param patchSize         patch edge in cells (must divide cells)
  static std::shared_ptr<Grid> makeSingleLevel(const Vector& physLow,
                                               const Vector& physHigh,
                                               const IntVector& cells,
                                               const IntVector& patchSize);

  /// Build the paper's 2-level RMCRT configuration: level 1 (fine) has
  /// \p fineCells over the whole domain; level 0 (coarse) covers the same
  /// domain with fineCells / refinementRatio cells.
  /// \param finePatchSize    fine-level patch edge (the 16/32/64 sweep)
  /// \param coarsePatchSize  coarse-level patch edge
  static std::shared_ptr<Grid> makeTwoLevel(const Vector& physLow,
                                            const Vector& physHigh,
                                            const IntVector& fineCells,
                                            const IntVector& refinementRatio,
                                            const IntVector& finePatchSize,
                                            const IntVector& coarsePatchSize);

  /// Build an N-level hierarchy, coarsening by \p refinementRatio per
  /// level below the finest. Level i's patch size is \p patchSizes[i].
  static std::shared_ptr<Grid> makeMultiLevel(
      const Vector& physLow, const Vector& physHigh,
      const IntVector& fineCells, const IntVector& refinementRatio,
      const std::vector<IntVector>& patchSizes);

  /// Description of one level for makeFromSpec: either a uniform tiling
  /// (patchBoxes empty, patchSize used) or an explicit irregular patch
  /// set (patchBoxes non-empty, patchSize ignored). Extents are explicit
  /// so adaptive and checkpoint-restored hierarchies round-trip exactly.
  struct LevelSpec {
    CellRange extent;                  ///< cell extent (low typically 0)
    IntVector refinementRatio{1};      ///< to the next coarser level
    IntVector patchSize{0};            ///< uniform tiling edge
    bool irregular = false;            ///< use patchBoxes, not patchSize
    std::vector<CellRange> patchBoxes; ///< irregular patches (may be empty)
  };

  /// Build a grid from explicit per-level specs (0 = coarsest). Validates
  /// extent/refinement consistency and patch-box legality, throwing
  /// std::invalid_argument with a description of the offending level.
  static std::shared_ptr<Grid> makeFromSpec(const Vector& physLow,
                                            const Vector& physHigh,
                                            const std::vector<LevelSpec>& specs);

  /// Build the adaptive 2-level RMCRT configuration emitted by the
  /// regridding engine: a uniform coarse radiation level over the whole
  /// domain plus a fine level whose patches are \p fineBoxesCoarse
  /// (boxes in *coarse* cell coordinates, refined by \p refinementRatio).
  /// The fine level's extent is the whole refined domain, so geometry
  /// (dx, cell centers) matches the static two-level setup; the boxes may
  /// cover any subset of it — including none.
  static std::shared_ptr<Grid> makeAdaptive(
      const Vector& physLow, const Vector& physHigh,
      const IntVector& coarseCells, const IntVector& coarsePatchSize,
      const IntVector& refinementRatio,
      const std::vector<CellRange>& fineBoxesCoarse);

  int numLevels() const { return static_cast<int>(m_levels.size()); }
  const Level& level(int i) const { return *m_levels[static_cast<std::size_t>(i)]; }
  /// The finest level (highest index).
  const Level& fineLevel() const { return *m_levels.back(); }
  /// Level 0.
  const Level& coarseLevel() const { return *m_levels.front(); }

  /// Total patches across levels.
  int numPatches() const;
  /// Look up any patch by its global id (nullptr when out of range).
  const Patch* patchById(int id) const;
  /// The level a patch id lives on.
  const Level& levelOfPatch(int id) const;

  const Vector& physLow() const { return m_physLow; }
  const Vector& physHigh() const { return m_physHigh; }

 private:
  Grid(const Vector& physLow, const Vector& physHigh)
      : m_physLow(physLow), m_physHigh(physHigh) {}

  Vector m_physLow;
  Vector m_physHigh;
  std::vector<std::unique_ptr<Level>> m_levels;
};

}  // namespace rmcrt::grid
