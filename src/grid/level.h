#pragma once

/// \file level.h
/// One resolution level of the structured AMR hierarchy. Uintah-style:
/// every level spans a (possibly different) region of the physical domain
/// with uniform Cartesian spacing; in the RMCRT configuration the coarse
/// radiation level spans the *entire* domain while the fine CFD level also
/// spans the whole domain at `refinementRatio` times the resolution
/// (paper Section III-B: "each coarse level spans the entire domain").
/// Levels are either tiled uniformly by equally-sized patches (the static
/// configurations) or carry an explicit, possibly partial, set of
/// rectangular patch boxes (adaptive levels produced by the regridding
/// engine in src/amr/ — the clusterer's fine patches need not cover the
/// whole extent, and need not share one edge length).

#include <cassert>
#include <cstdint>
#include <vector>

#include "grid/patch.h"
#include "util/int_vector.h"
#include "util/range.h"

namespace rmcrt::grid {

/// A uniform-resolution mesh level tiled by rectangular patches.
class Level {
 public:
  /// \param index       level index (0 = coarsest)
  /// \param cells       the level's cell extent (half-open, low typically 0)
  /// \param physLow     physical position of cell-index low corner
  /// \param dx          cell spacing in each dimension
  /// \param patchSize   patch edge lengths in cells; each extent component
  ///                    must divide the corresponding cells extent
  /// \param refinementRatio ratio to the *next coarser* level (1 on level 0)
  /// \param firstPatchId    id assigned to this level's first patch
  Level(int index, const CellRange& cells, const Vector& physLow,
        const Vector& dx, const IntVector& patchSize,
        const IntVector& refinementRatio, int firstPatchId);

  /// Irregular (adaptive) level: patches are the given explicit boxes,
  /// which must be non-empty, pairwise disjoint, and contained in
  /// \p cells; they need not cover the extent. Throws
  /// std::invalid_argument on a malformed box set.
  Level(int index, const CellRange& cells, const Vector& physLow,
        const Vector& dx, const std::vector<CellRange>& patchBoxes,
        const IntVector& refinementRatio, int firstPatchId);

  int index() const { return m_index; }
  const CellRange& cells() const { return m_cells; }
  const Vector& dx() const { return m_dx; }
  const Vector& physLow() const { return m_physLow; }
  Vector physHigh() const {
    return m_physLow + Vector(m_cells.size()) * m_dx;
  }
  const IntVector& refinementRatio() const { return m_refinementRatio; }
  /// Patch edge lengths for uniformly tiled levels; IntVector(0) for
  /// irregular (adaptive) levels.
  const IntVector& patchSize() const { return m_patchSize; }
  /// Patch counts per dimension (IntVector(0) for irregular levels).
  const IntVector& patchLayout() const { return m_patchLayout; }
  /// True when the level is a uniform tiling of equally-sized patches
  /// (every static factory); false for adaptive levels with explicit
  /// patch boxes.
  bool uniformlyTiled() const { return m_uniform; }

  std::int64_t numCells() const { return m_cells.volume(); }
  /// Cells actually covered by patches: numCells() for uniformly tiled
  /// levels, the sum of patch volumes for irregular ones.
  std::int64_t coveredCells() const;
  std::size_t numPatches() const { return m_patches.size(); }
  const std::vector<Patch>& patches() const { return m_patches; }
  const Patch& patch(std::size_t i) const { return m_patches[i]; }

  /// Physical center of a cell.
  Vector cellCenter(const IntVector& c) const {
    return m_physLow +
           (Vector(c - m_cells.low()) + Vector(0.5)) * m_dx;
  }
  /// Physical position of a cell's low corner.
  Vector cellLowCorner(const IntVector& c) const {
    return m_physLow + Vector(c - m_cells.low()) * m_dx;
  }
  /// Cell containing a physical position (positions exactly on the high
  /// domain face map to the last cell).
  IntVector cellAtPosition(const Vector& p) const;

  /// Does the level's extent contain this cell?
  bool containsCell(const IntVector& c) const { return m_cells.contains(c); }

  /// The patch whose interior contains \p cell, or nullptr.
  const Patch* patchContaining(const IntVector& cell) const;

  /// All patches on this level whose interiors intersect \p range; each
  /// entry carries the intersection.
  struct Overlap {
    const Patch* patch;
    CellRange region;
  };
  std::vector<Overlap> patchesIntersecting(const CellRange& range) const;

  /// Neighbors of \p p: patches (other than p) intersecting p's ghost
  /// window of \p numGhost cells, with the overlap regions clipped to the
  /// level extent.
  std::vector<Overlap> neighbors(const Patch& p, int numGhost) const;

  /// Map a cell index on this level to the containing cell on the next
  /// coarser level (floor semantics; valid for negative ghost indices).
  IntVector mapCellToCoarser(const IntVector& c) const;
  /// Map a coarse-level cell to the low corner of its fine-cell block.
  IntVector mapCellToFiner(const IntVector& c) const {
    return c * m_refinementRatio;
  }

 private:
  int m_index;
  CellRange m_cells;
  Vector m_physLow;
  Vector m_dx;
  IntVector m_patchSize;
  IntVector m_patchLayout;
  IntVector m_refinementRatio;
  bool m_uniform = true;
  std::vector<Patch> m_patches;
};

}  // namespace rmcrt::grid
