#pragma once

/// \file variable.h
/// Cell-centered grid variables (Uintah's CCVariable) and variable labels.
/// A CCVariable allocates the patch interior plus a ghost margin from the
/// mmap-backed allocator — GridVariables are the paper's canonical "large
/// transient" allocation class (Section IV-B.1).

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "grid/patch.h"
#include "mem/allocators.h"
#include "util/array3.h"

namespace rmcrt::grid {

/// Identifies a simulation variable ("divQ", "abskg", "sigmaT4", ...).
/// Labels are interned by name; compare by pointer or by name equality.
class VarLabel {
 public:
  explicit VarLabel(std::string name) : m_name(std::move(name)) {}
  const std::string& name() const { return m_name; }

  bool operator==(const VarLabel& o) const { return m_name == o.m_name; }

 private:
  std::string m_name;
};

/// A cell-centered variable on one patch (plus ghost margin).
///
/// Storage comes from the mmap allocator by default so repeated
/// create/destroy cycles (every timestep, every patch) never touch the
/// heap.
template <typename T>
class CCVariable {
 public:
  using Storage = Array3<T, mem::MmapAllocator<T>>;

  CCVariable() = default;

  /// Allocate over \p patch interior plus \p numGhost cells per face.
  CCVariable(const Patch& patch, int numGhost, const T& init = T{})
      : m_storage(patch.ghostWindow(numGhost), init),
        m_interior(patch.cells()),
        m_numGhost(numGhost) {}

  /// Allocate over an explicit window (used by per-level variables whose
  /// "patch" is the whole level).
  CCVariable(const CellRange& window, const T& init = T{})
      : m_storage(window, init), m_interior(window), m_numGhost(0) {}

  /// Reconstruct a variable with an explicit window/interior/ghost triple
  /// — the checkpoint-restore path, which must reproduce a patch variable
  /// (ghost margin included) without the Patch it was built from.
  CCVariable(const CellRange& window, const CellRange& interior, int numGhost,
             const T& init = T{})
      : m_storage(window, init), m_interior(interior), m_numGhost(numGhost) {}

  const CellRange& window() const { return m_storage.window(); }
  const CellRange& interior() const { return m_interior; }
  int numGhost() const { return m_numGhost; }
  bool allocated() const { return m_storage.allocated(); }
  std::int64_t sizeCells() const { return m_storage.size(); }
  std::int64_t sizeBytes() const {
    return m_storage.size() * static_cast<std::int64_t>(sizeof(T));
  }

  T& operator[](const IntVector& c) { return m_storage[c]; }
  const T& operator[](const IntVector& c) const { return m_storage[c]; }

  T* data() { return m_storage.data(); }
  const T* data() const { return m_storage.data(); }

  Storage& storage() { return m_storage; }
  const Storage& storage() const { return m_storage; }

  void fill(const T& v) { m_storage.fill(v); }

  /// Copy \p region from another variable (ghost fill / coarsen targets).
  void copyRegion(const CCVariable& src, const CellRange& region) {
    m_storage.copyRegion(src.m_storage, region);
  }

 private:
  Storage m_storage;
  CellRange m_interior;
  int m_numGhost = 0;
};

/// Cell classification for ray tracing: interior flow cells participate in
/// emission/absorption, wall cells terminate rays with wall emissivity.
enum class CellType : std::int32_t { Flow = 0, Wall = 1 };

}  // namespace rmcrt::grid
