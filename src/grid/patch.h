#pragma once

/// \file patch.h
/// A Patch is one rectangular block of cells on one AMR level — the unit
/// of work distribution, task scheduling, and GPU kernel launch. Patches
/// tile their level's cell extent exactly (no overlap, no gaps).

#include <cstdint>
#include <ostream>

#include "util/int_vector.h"
#include "util/range.h"

namespace rmcrt::grid {

// The index/geometry vocabulary types live in the top-level namespace;
// re-export them so dependents can write grid::CellRange etc.
using rmcrt::CellRange;
using rmcrt::IntVector;
using rmcrt::Vector;

/// A patch on a structured AMR level.
class Patch {
 public:
  Patch() = default;
  Patch(int id, int levelIndex, const CellRange& cells)
      : m_id(id), m_levelIndex(levelIndex), m_cells(cells) {}

  /// Globally unique patch id within the Grid.
  int id() const { return m_id; }
  /// Index of the level this patch lives on (0 = coarsest).
  int levelIndex() const { return m_levelIndex; }

  /// Interior cells (no ghosts), half-open.
  const CellRange& cells() const { return m_cells; }
  IntVector low() const { return m_cells.low(); }
  IntVector high() const { return m_cells.high(); }
  std::int64_t numCells() const { return m_cells.volume(); }

  /// Interior grown by \p numGhost cells on every face — the allocation
  /// window of a variable with that ghost requirement.
  CellRange ghostWindow(int numGhost) const { return m_cells.grown(numGhost); }

  bool contains(const IntVector& cell) const { return m_cells.contains(cell); }

  bool operator==(const Patch& o) const {
    return m_id == o.m_id && m_levelIndex == o.m_levelIndex &&
           m_cells == o.m_cells;
  }

 private:
  int m_id = -1;
  int m_levelIndex = -1;
  CellRange m_cells;
};

inline std::ostream& operator<<(std::ostream& os, const Patch& p) {
  return os << "patch#" << p.id() << "(L" << p.levelIndex() << " "
            << p.cells() << ")";
}

}  // namespace rmcrt::grid
