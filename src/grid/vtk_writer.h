#pragma once

/// \file vtk_writer.h
/// Legacy-VTK (structured points) output of cell-centered fields, so
/// divQ / temperature / kappa fields from examples can be inspected in
/// ParaView/VisIt — the standard workflow around Uintah's UDA outputs,
/// reduced to its simplest interoperable form.

#include <fstream>
#include <map>
#include <string>

#include "grid/level.h"
#include "grid/variable.h"

namespace rmcrt::grid {

/// Write one level's cell-centered double fields as a legacy VTK
/// STRUCTURED_POINTS dataset (one scalar array per entry in \p fields;
/// every variable must span the full level extent). Returns false on I/O
/// failure.
inline bool writeVtkLevel(
    const std::string& path, const Level& level,
    const std::map<std::string, const CCVariable<double>*>& fields) {
  std::ofstream os(path);
  if (!os) return false;
  const IntVector n = level.cells().size();
  os << "# vtk DataFile Version 3.0\n"
     << "rmcrt level " << level.index() << "\n"
     << "ASCII\n"
     << "DATASET STRUCTURED_POINTS\n"
     << "DIMENSIONS " << n.x() << " " << n.y() << " " << n.z() << "\n"
     << "ORIGIN " << level.physLow().x() + 0.5 * level.dx().x() << " "
     << level.physLow().y() + 0.5 * level.dx().y() << " "
     << level.physLow().z() + 0.5 * level.dx().z() << "\n"
     << "SPACING " << level.dx().x() << " " << level.dx().y() << " "
     << level.dx().z() << "\n"
     << "POINT_DATA " << level.numCells() << "\n";
  for (const auto& [name, var] : fields) {
    if (!var || !var->window().contains(level.cells())) return false;
    os << "SCALARS " << name << " double 1\nLOOKUP_TABLE default\n";
    // VTK structured points iterate x fastest — same as CellRange.
    for (const IntVector& c : level.cells()) os << (*var)[c] << "\n";
  }
  return static_cast<bool>(os);
}

/// Patch->rank ownership as a cell field on \p level: every cell of a
/// patch carries the owning rank from \p lb; cells no patch covers (the
/// unrefined remainder of an adaptive fine level) carry -1. Write it
/// through writeVtkLevel to color a ParaView view by rank and inspect
/// rebalance decisions.
template <typename RankOf>
CCVariable<double> ownershipFieldBy(const Level& level, RankOf&& rankOf) {
  CCVariable<double> field(level.cells(), -1.0);
  for (const Patch& p : level.patches()) {
    const double rank = static_cast<double>(rankOf(p.id()));
    for (const IntVector& c : p.cells()) field[c] = rank;
  }
  return field;
}

template <typename Lb>
CCVariable<double> ownershipField(const Level& level, const Lb& lb) {
  return ownershipFieldBy(level, [&lb](int id) { return lb.rankOf(id); });
}

/// Refinement flags as a coarse-level cell field: 1 where the fine level
/// refines the coarse cell, 0 elsewhere. \p fine is the next finer level
/// (its refinementRatio maps fine boxes back to coarse cells).
inline CCVariable<double> refinementFlagField(const Level& coarse,
                                              const Level& fine) {
  CCVariable<double> field(coarse.cells(), 0.0);
  for (const Patch& p : fine.patches()) {
    const CellRange covered =
        p.cells().coarsened(fine.refinementRatio()).intersect(coarse.cells());
    for (const IntVector& c : covered) field[c] = 1.0;
  }
  return field;
}

}  // namespace rmcrt::grid
