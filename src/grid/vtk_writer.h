#pragma once

/// \file vtk_writer.h
/// Legacy-VTK (structured points) output of cell-centered fields, so
/// divQ / temperature / kappa fields from examples can be inspected in
/// ParaView/VisIt — the standard workflow around Uintah's UDA outputs,
/// reduced to its simplest interoperable form.

#include <fstream>
#include <map>
#include <string>

#include "grid/level.h"
#include "grid/variable.h"

namespace rmcrt::grid {

/// Write one level's cell-centered double fields as a legacy VTK
/// STRUCTURED_POINTS dataset (one scalar array per entry in \p fields;
/// every variable must span the full level extent). Returns false on I/O
/// failure.
inline bool writeVtkLevel(
    const std::string& path, const Level& level,
    const std::map<std::string, const CCVariable<double>*>& fields) {
  std::ofstream os(path);
  if (!os) return false;
  const IntVector n = level.cells().size();
  os << "# vtk DataFile Version 3.0\n"
     << "rmcrt level " << level.index() << "\n"
     << "ASCII\n"
     << "DATASET STRUCTURED_POINTS\n"
     << "DIMENSIONS " << n.x() << " " << n.y() << " " << n.z() << "\n"
     << "ORIGIN " << level.physLow().x() + 0.5 * level.dx().x() << " "
     << level.physLow().y() + 0.5 * level.dx().y() << " "
     << level.physLow().z() + 0.5 * level.dx().z() << "\n"
     << "SPACING " << level.dx().x() << " " << level.dx().y() << " "
     << level.dx().z() << "\n"
     << "POINT_DATA " << level.numCells() << "\n";
  for (const auto& [name, var] : fields) {
    if (!var || !var->window().contains(level.cells())) return false;
    os << "SCALARS " << name << " double 1\nLOOKUP_TABLE default\n";
    // VTK structured points iterate x fastest — same as CellRange.
    for (const IntVector& c : level.cells()) os << (*var)[c] << "\n";
  }
  return static_cast<bool>(os);
}

}  // namespace rmcrt::grid
