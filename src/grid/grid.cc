#include "grid/grid.h"

#include <cassert>
#include <stdexcept>
#include <string>

namespace rmcrt::grid {

std::shared_ptr<Grid> Grid::makeSingleLevel(const Vector& physLow,
                                            const Vector& physHigh,
                                            const IntVector& cells,
                                            const IntVector& patchSize) {
  auto g = std::shared_ptr<Grid>(new Grid(physLow, physHigh));
  const Vector dx = (physHigh - physLow) / Vector(cells);
  g->m_levels.push_back(std::make_unique<Level>(
      0, CellRange(IntVector(0), cells), physLow, dx, patchSize,
      IntVector(1), /*firstPatchId=*/0));
  return g;
}

std::shared_ptr<Grid> Grid::makeTwoLevel(const Vector& physLow,
                                         const Vector& physHigh,
                                         const IntVector& fineCells,
                                         const IntVector& refinementRatio,
                                         const IntVector& finePatchSize,
                                         const IntVector& coarsePatchSize) {
  return makeMultiLevel(physLow, physHigh, fineCells, refinementRatio,
                        {coarsePatchSize, finePatchSize});
}

std::shared_ptr<Grid> Grid::makeMultiLevel(
    const Vector& physLow, const Vector& physHigh,
    const IntVector& fineCells, const IntVector& refinementRatio,
    const std::vector<IntVector>& patchSizes) {
  assert(!patchSizes.empty());
  const int nLevels = static_cast<int>(patchSizes.size());
  auto g = std::shared_ptr<Grid>(new Grid(physLow, physHigh));

  // Compute per-level extents from the finest downward.
  std::vector<IntVector> extents(static_cast<std::size_t>(nLevels));
  extents.back() = fineCells;
  for (int l = nLevels - 2; l >= 0; --l) {
    const IntVector& finer = extents[static_cast<std::size_t>(l + 1)];
    assert(finer.x() % refinementRatio.x() == 0 &&
           finer.y() % refinementRatio.y() == 0 &&
           finer.z() % refinementRatio.z() == 0 &&
           "extent must be divisible by the refinement ratio");
    extents[static_cast<std::size_t>(l)] = finer / refinementRatio;
  }

  int nextPatchId = 0;
  for (int l = 0; l < nLevels; ++l) {
    const IntVector& ext = extents[static_cast<std::size_t>(l)];
    const Vector dx = (physHigh - physLow) / Vector(ext);
    const IntVector rr = (l == 0) ? IntVector(1) : refinementRatio;
    g->m_levels.push_back(std::make_unique<Level>(
        l, CellRange(IntVector(0), ext), physLow, dx,
        patchSizes[static_cast<std::size_t>(l)], rr, nextPatchId));
    nextPatchId += static_cast<int>(g->m_levels.back()->numPatches());
  }
  return g;
}

std::shared_ptr<Grid> Grid::makeFromSpec(const Vector& physLow,
                                         const Vector& physHigh,
                                         const std::vector<LevelSpec>& specs) {
  if (specs.empty())
    throw std::invalid_argument("Grid::makeFromSpec: no levels given");
  auto g = std::shared_ptr<Grid>(new Grid(physLow, physHigh));
  int nextPatchId = 0;
  for (std::size_t l = 0; l < specs.size(); ++l) {
    const LevelSpec& s = specs[l];
    if (s.extent.empty())
      throw std::invalid_argument("Grid::makeFromSpec: level " +
                                  std::to_string(l) + " has an empty extent");
    if (l > 0) {
      const IntVector coarser = specs[l - 1].extent.size();
      const IntVector expect = coarser * s.refinementRatio;
      if (s.extent.size() != expect)
        throw std::invalid_argument(
            "Grid::makeFromSpec: level " + std::to_string(l) +
            " extent does not equal the coarser extent times the "
            "refinement ratio");
    }
    const Vector dx = (physHigh - physLow) / Vector(s.extent.size());
    const IntVector rr = (l == 0) ? IntVector(1) : s.refinementRatio;
    if (s.irregular) {
      g->m_levels.push_back(std::make_unique<Level>(
          static_cast<int>(l), s.extent, physLow, dx, s.patchBoxes, rr,
          nextPatchId));
    } else {
      const IntVector ext = s.extent.size();
      if (s.patchSize.x() <= 0 || s.patchSize.y() <= 0 ||
          s.patchSize.z() <= 0 || ext.x() % s.patchSize.x() != 0 ||
          ext.y() % s.patchSize.y() != 0 || ext.z() % s.patchSize.z() != 0)
        throw std::invalid_argument(
            "Grid::makeFromSpec: level " + std::to_string(l) +
            " patch size (" + std::to_string(s.patchSize.x()) + "," +
            std::to_string(s.patchSize.y()) + "," +
            std::to_string(s.patchSize.z()) +
            ") must be positive and divide the level extent (" +
            std::to_string(ext.x()) + "," + std::to_string(ext.y()) + "," +
            std::to_string(ext.z()) + ")");
      g->m_levels.push_back(std::make_unique<Level>(
          static_cast<int>(l), s.extent, physLow, dx, s.patchSize, rr,
          nextPatchId));
    }
    nextPatchId += static_cast<int>(g->m_levels.back()->numPatches());
  }
  return g;
}

std::shared_ptr<Grid> Grid::makeAdaptive(
    const Vector& physLow, const Vector& physHigh,
    const IntVector& coarseCells, const IntVector& coarsePatchSize,
    const IntVector& refinementRatio,
    const std::vector<CellRange>& fineBoxesCoarse) {
  const CellRange coarseExtent(IntVector(0), coarseCells);
  std::vector<CellRange> fineBoxes;
  fineBoxes.reserve(fineBoxesCoarse.size());
  for (const CellRange& b : fineBoxesCoarse) {
    if (b.empty() || !coarseExtent.contains(b))
      throw std::invalid_argument(
          "Grid::makeAdaptive: refinement box outside the coarse extent");
    fineBoxes.push_back(b.refined(refinementRatio));
  }
  LevelSpec coarse;
  coarse.extent = coarseExtent;
  coarse.patchSize = coarsePatchSize;
  LevelSpec fine;
  fine.extent = CellRange(IntVector(0), coarseCells * refinementRatio);
  fine.refinementRatio = refinementRatio;
  fine.irregular = true;
  fine.patchBoxes = std::move(fineBoxes);
  return makeFromSpec(physLow, physHigh, {coarse, fine});
}

int Grid::numPatches() const {
  int n = 0;
  for (const auto& l : m_levels) n += static_cast<int>(l->numPatches());
  return n;
}

const Patch* Grid::patchById(int id) const {
  for (const auto& l : m_levels) {
    if (l->numPatches() == 0) continue;
    const int first = l->patch(0).id();
    const int last = first + static_cast<int>(l->numPatches()) - 1;
    if (id >= first && id <= last)
      return &l->patch(static_cast<std::size_t>(id - first));
  }
  return nullptr;
}

const Level& Grid::levelOfPatch(int id) const {
  const Patch* p = patchById(id);
  assert(p && "unknown patch id");
  return level(p->levelIndex());
}

}  // namespace rmcrt::grid
