#include "grid/grid.h"

#include <cassert>

namespace rmcrt::grid {

std::shared_ptr<Grid> Grid::makeSingleLevel(const Vector& physLow,
                                            const Vector& physHigh,
                                            const IntVector& cells,
                                            const IntVector& patchSize) {
  auto g = std::shared_ptr<Grid>(new Grid(physLow, physHigh));
  const Vector dx = (physHigh - physLow) / Vector(cells);
  g->m_levels.push_back(std::make_unique<Level>(
      0, CellRange(IntVector(0), cells), physLow, dx, patchSize,
      IntVector(1), /*firstPatchId=*/0));
  return g;
}

std::shared_ptr<Grid> Grid::makeTwoLevel(const Vector& physLow,
                                         const Vector& physHigh,
                                         const IntVector& fineCells,
                                         const IntVector& refinementRatio,
                                         const IntVector& finePatchSize,
                                         const IntVector& coarsePatchSize) {
  return makeMultiLevel(physLow, physHigh, fineCells, refinementRatio,
                        {coarsePatchSize, finePatchSize});
}

std::shared_ptr<Grid> Grid::makeMultiLevel(
    const Vector& physLow, const Vector& physHigh,
    const IntVector& fineCells, const IntVector& refinementRatio,
    const std::vector<IntVector>& patchSizes) {
  assert(!patchSizes.empty());
  const int nLevels = static_cast<int>(patchSizes.size());
  auto g = std::shared_ptr<Grid>(new Grid(physLow, physHigh));

  // Compute per-level extents from the finest downward.
  std::vector<IntVector> extents(static_cast<std::size_t>(nLevels));
  extents.back() = fineCells;
  for (int l = nLevels - 2; l >= 0; --l) {
    const IntVector& finer = extents[static_cast<std::size_t>(l + 1)];
    assert(finer.x() % refinementRatio.x() == 0 &&
           finer.y() % refinementRatio.y() == 0 &&
           finer.z() % refinementRatio.z() == 0 &&
           "extent must be divisible by the refinement ratio");
    extents[static_cast<std::size_t>(l)] = finer / refinementRatio;
  }

  int nextPatchId = 0;
  for (int l = 0; l < nLevels; ++l) {
    const IntVector& ext = extents[static_cast<std::size_t>(l)];
    const Vector dx = (physHigh - physLow) / Vector(ext);
    const IntVector rr = (l == 0) ? IntVector(1) : refinementRatio;
    g->m_levels.push_back(std::make_unique<Level>(
        l, CellRange(IntVector(0), ext), physLow, dx,
        patchSizes[static_cast<std::size_t>(l)], rr, nextPatchId));
    nextPatchId += static_cast<int>(g->m_levels.back()->numPatches());
  }
  return g;
}

int Grid::numPatches() const {
  int n = 0;
  for (const auto& l : m_levels) n += static_cast<int>(l->numPatches());
  return n;
}

const Patch* Grid::patchById(int id) const {
  for (const auto& l : m_levels) {
    if (l->numPatches() == 0) continue;
    const int first = l->patch(0).id();
    const int last = first + static_cast<int>(l->numPatches()) - 1;
    if (id >= first && id <= last)
      return &l->patch(static_cast<std::size_t>(id - first));
  }
  return nullptr;
}

const Level& Grid::levelOfPatch(int id) const {
  const Patch* p = patchById(id);
  assert(p && "unknown patch id");
  return level(p->levelIndex());
}

}  // namespace rmcrt::grid
