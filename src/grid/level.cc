#include "grid/level.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace rmcrt::grid {

namespace {
std::string describe(const CellRange& r) {
  std::ostringstream os;
  os << "[(" << r.low().x() << "," << r.low().y() << "," << r.low().z()
     << ")..(" << r.high().x() << "," << r.high().y() << "," << r.high().z()
     << "))";
  return os.str();
}
}  // namespace

Level::Level(int index, const CellRange& cells, const Vector& physLow,
             const Vector& dx, const IntVector& patchSize,
             const IntVector& refinementRatio, int firstPatchId)
    : m_index(index),
      m_cells(cells),
      m_physLow(physLow),
      m_dx(dx),
      m_patchSize(patchSize),
      m_refinementRatio(refinementRatio) {
  const IntVector extent = cells.size();
  assert(extent.x() % patchSize.x() == 0 &&
         extent.y() % patchSize.y() == 0 &&
         extent.z() % patchSize.z() == 0 &&
         "level extent must be a multiple of the patch size");
  m_patchLayout = extent / patchSize;

  m_patches.reserve(static_cast<std::size_t>(m_patchLayout.volume()));
  int id = firstPatchId;
  for (int pz = 0; pz < m_patchLayout.z(); ++pz) {
    for (int py = 0; py < m_patchLayout.y(); ++py) {
      for (int px = 0; px < m_patchLayout.x(); ++px) {
        const IntVector lo =
            cells.low() + IntVector(px, py, pz) * patchSize;
        m_patches.emplace_back(id++, index,
                               CellRange(lo, lo + patchSize));
      }
    }
  }
}

Level::Level(int index, const CellRange& cells, const Vector& physLow,
             const Vector& dx, const std::vector<CellRange>& patchBoxes,
             const IntVector& refinementRatio, int firstPatchId)
    : m_index(index),
      m_cells(cells),
      m_physLow(physLow),
      m_dx(dx),
      m_patchSize(IntVector(0)),
      m_patchLayout(IntVector(0)),
      m_refinementRatio(refinementRatio),
      m_uniform(false) {
  for (std::size_t i = 0; i < patchBoxes.size(); ++i) {
    const CellRange& b = patchBoxes[i];
    if (b.empty())
      throw std::invalid_argument("Level: patch box " + std::to_string(i) +
                                  " " + describe(b) + " is empty");
    if (!cells.contains(b.low()) ||
        !cells.contains(b.high() - IntVector(1)))
      throw std::invalid_argument(
          "Level: patch box " + std::to_string(i) + " " + describe(b) +
          " extends outside the level extent " + describe(cells));
    for (std::size_t j = 0; j < i; ++j) {
      if (!b.intersect(patchBoxes[j]).empty())
        throw std::invalid_argument(
            "Level: patch boxes " + std::to_string(j) + " " +
            describe(patchBoxes[j]) + " and " + std::to_string(i) + " " +
            describe(b) + " overlap");
    }
  }
  m_patches.reserve(patchBoxes.size());
  int id = firstPatchId;
  for (const CellRange& b : patchBoxes) m_patches.emplace_back(id++, index, b);
}

std::int64_t Level::coveredCells() const {
  if (m_uniform) return numCells();
  std::int64_t n = 0;
  for (const Patch& p : m_patches) n += p.numCells();
  return n;
}

IntVector Level::cellAtPosition(const Vector& p) const {
  const Vector rel = (p - m_physLow) / m_dx;
  IntVector c(static_cast<int>(std::floor(rel.x())),
              static_cast<int>(std::floor(rel.y())),
              static_cast<int>(std::floor(rel.z())));
  c += m_cells.low();
  // Clamp exact high-face hits into the last cell.
  c = min(c, m_cells.high() - IntVector(1));
  c = max(c, m_cells.low());
  return c;
}

const Patch* Level::patchContaining(const IntVector& cell) const {
  if (!m_cells.contains(cell)) return nullptr;
  if (!m_uniform) {
    for (const Patch& p : m_patches)
      if (p.cells().contains(cell)) return &p;
    return nullptr;
  }
  const IntVector rel = cell - m_cells.low();
  const IntVector pc(rel.x() / m_patchSize.x(), rel.y() / m_patchSize.y(),
                     rel.z() / m_patchSize.z());
  const std::size_t idx = static_cast<std::size_t>(
      pc.x() +
      m_patchLayout.x() *
          (static_cast<std::int64_t>(pc.y()) +
           static_cast<std::int64_t>(m_patchLayout.y()) * pc.z()));
  return &m_patches[idx];
}

std::vector<Level::Overlap> Level::patchesIntersecting(
    const CellRange& range) const {
  std::vector<Overlap> out;
  const CellRange clipped = range.intersect(m_cells);
  if (clipped.empty()) return out;
  if (!m_uniform) {
    // Irregular levels have no tiling arithmetic: scan the patch list
    // (adaptive fine levels hold tens of patches, so this stays cheap).
    for (const Patch& p : m_patches) {
      const CellRange overlap = p.cells().intersect(clipped);
      if (!overlap.empty()) out.push_back(Overlap{&p, overlap});
    }
    return out;
  }
  // Patch-coordinate bounding box of the clipped range.
  const IntVector relLo = clipped.low() - m_cells.low();
  const IntVector relHi = clipped.high() - m_cells.low() - IntVector(1);
  const IntVector pLo(relLo.x() / m_patchSize.x(),
                      relLo.y() / m_patchSize.y(),
                      relLo.z() / m_patchSize.z());
  const IntVector pHi(relHi.x() / m_patchSize.x(),
                      relHi.y() / m_patchSize.y(),
                      relHi.z() / m_patchSize.z());
  for (int pz = pLo.z(); pz <= pHi.z(); ++pz) {
    for (int py = pLo.y(); py <= pHi.y(); ++py) {
      for (int px = pLo.x(); px <= pHi.x(); ++px) {
        const std::size_t idx = static_cast<std::size_t>(
            px + m_patchLayout.x() *
                     (static_cast<std::int64_t>(py) +
                      static_cast<std::int64_t>(m_patchLayout.y()) * pz));
        const Patch& p = m_patches[idx];
        const CellRange overlap = p.cells().intersect(clipped);
        if (!overlap.empty()) out.push_back(Overlap{&p, overlap});
      }
    }
  }
  return out;
}

std::vector<Level::Overlap> Level::neighbors(const Patch& p,
                                             int numGhost) const {
  std::vector<Overlap> out;
  for (const Overlap& o : patchesIntersecting(p.ghostWindow(numGhost))) {
    if (o.patch->id() != p.id()) out.push_back(o);
  }
  return out;
}

IntVector Level::mapCellToCoarser(const IntVector& c) const {
  auto fdiv = [](int a, int b) {
    return a >= 0 ? a / b : -((-a + b - 1) / b);
  };
  return {fdiv(c.x(), m_refinementRatio.x()),
          fdiv(c.y(), m_refinementRatio.y()),
          fdiv(c.z(), m_refinementRatio.z())};
}

}  // namespace rmcrt::grid
