#pragma once

/// \file load_balancer.h
/// Static patch-to-rank assignment. Uintah load-balances patches over MPI
/// ranks with locality-preserving orderings; we provide contiguous-block,
/// round-robin, and Morton space-filling-curve strategies. The SFC
/// ordering keeps a rank's fine patches spatially clustered, which
/// matters for the halo-volume accounting in the communication model.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "grid/grid.h"

namespace rmcrt::grid {

enum class LbStrategy {
  Block,       ///< contiguous runs of patch ids per rank
  RoundRobin,  ///< patch i -> rank i % P
  Morton,      ///< Morton-order patches, then contiguous blocks
};

/// Interleave the low 21 bits of x,y,z into a 63-bit Morton code.
inline std::uint64_t mortonEncode(std::uint32_t x, std::uint32_t y,
                                  std::uint32_t z) {
  auto split = [](std::uint64_t v) {
    v &= 0x1FFFFF;  // 21 bits
    v = (v | v << 32) & 0x1F00000000FFFFull;
    v = (v | v << 16) & 0x1F0000FF0000FFull;
    v = (v | v << 8) & 0x100F00F00F00F00Full;
    v = (v | v << 4) & 0x10C30C30C30C30C3ull;
    v = (v | v << 2) & 0x1249249249249249ull;
    return v;
  };
  return split(x) | (split(y) << 1) | (split(z) << 2);
}

/// Immutable patch->rank map for one grid.
class LoadBalancer {
 public:
  /// Distribute every patch of \p grid over \p numRanks ranks. Each level
  /// is balanced independently so every rank holds patches of every level
  /// (required: every rank traces rays on its own fine patches and owns a
  /// share of the coarse level).
  LoadBalancer(const Grid& grid, int numRanks,
               LbStrategy strategy = LbStrategy::Morton);

  int numRanks() const { return m_numRanks; }

  /// Owning rank of a patch id.
  int rankOf(int patchId) const {
    return m_rankOf[static_cast<std::size_t>(patchId)];
  }

  /// All patch ids owned by \p rank (ascending).
  const std::vector<int>& patchesOf(int rank) const {
    return m_patchesOf[static_cast<std::size_t>(rank)];
  }

  /// Patch ids owned by \p rank on a given level.
  std::vector<int> patchesOf(int rank, const Grid& grid, int level) const {
    std::vector<int> out;
    for (int id : patchesOf(rank)) {
      const Patch* p = grid.patchById(id);
      if (p && p->levelIndex() == level) out.push_back(id);
    }
    return out;
  }

  /// Max/min owned fine-cell imbalance across ranks (1.0 = perfect).
  double imbalance(const Grid& grid) const;

 private:
  int m_numRanks;
  std::vector<int> m_rankOf;                // by patch id
  std::vector<std::vector<int>> m_patchesOf;  // by rank
};

inline LoadBalancer::LoadBalancer(const Grid& grid, int numRanks,
                                  LbStrategy strategy)
    : m_numRanks(numRanks),
      m_rankOf(static_cast<std::size_t>(grid.numPatches()), 0),
      m_patchesOf(static_cast<std::size_t>(numRanks)) {
  for (int l = 0; l < grid.numLevels(); ++l) {
    const Level& level = grid.level(l);
    std::vector<int> order;
    order.reserve(level.numPatches());
    for (const Patch& p : level.patches()) order.push_back(p.id());

    if (strategy == LbStrategy::Morton) {
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        const Patch* pa = grid.patchById(a);
        const Patch* pb = grid.patchById(b);
        const IntVector ca = pa->low() - level.cells().low();
        const IntVector cb = pb->low() - level.cells().low();
        const std::uint64_t ma =
            mortonEncode(static_cast<std::uint32_t>(ca.x()),
                         static_cast<std::uint32_t>(ca.y()),
                         static_cast<std::uint32_t>(ca.z()));
        const std::uint64_t mb =
            mortonEncode(static_cast<std::uint32_t>(cb.x()),
                         static_cast<std::uint32_t>(cb.y()),
                         static_cast<std::uint32_t>(cb.z()));
        return ma != mb ? ma < mb : a < b;
      });
    }

    const std::size_t n = order.size();
    for (std::size_t i = 0; i < n; ++i) {
      int rank;
      if (strategy == LbStrategy::RoundRobin) {
        rank = static_cast<int>(i) % numRanks;
      } else {  // Block and Morton both take contiguous runs of the order
        rank = static_cast<int>(i * static_cast<std::size_t>(numRanks) / n);
      }
      m_rankOf[static_cast<std::size_t>(order[i])] = rank;
      m_patchesOf[static_cast<std::size_t>(rank)].push_back(order[i]);
    }
  }
  for (auto& v : m_patchesOf) std::sort(v.begin(), v.end());
}

inline double LoadBalancer::imbalance(const Grid& grid) const {
  const Level& fine = grid.fineLevel();
  std::vector<std::int64_t> cells(static_cast<std::size_t>(m_numRanks), 0);
  for (const Patch& p : fine.patches())
    cells[static_cast<std::size_t>(rankOf(p.id()))] += p.numCells();
  const auto [mn, mx] = std::minmax_element(cells.begin(), cells.end());
  return *mn > 0 ? static_cast<double>(*mx) / static_cast<double>(*mn)
                 : static_cast<double>(*mx);
}

}  // namespace rmcrt::grid
