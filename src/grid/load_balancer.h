#pragma once

/// \file load_balancer.h
/// Static patch-to-rank assignment. Uintah load-balances patches over MPI
/// ranks with locality-preserving orderings; we provide contiguous-block,
/// round-robin, and Morton space-filling-curve strategies. The SFC
/// ordering keeps a rank's fine patches spatially clustered, which
/// matters for the halo-volume accounting in the communication model.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "grid/grid.h"

namespace rmcrt::grid {

enum class LbStrategy {
  Block,       ///< contiguous runs of patch ids per rank
  RoundRobin,  ///< patch i -> rank i % P
  Morton,      ///< Morton-order patches, then contiguous blocks
};

/// Interleave the low 21 bits of x,y,z into a 63-bit Morton code.
inline std::uint64_t mortonEncode(std::uint32_t x, std::uint32_t y,
                                  std::uint32_t z) {
  auto split = [](std::uint64_t v) {
    v &= 0x1FFFFF;  // 21 bits
    v = (v | v << 32) & 0x1F00000000FFFFull;
    v = (v | v << 16) & 0x1F0000FF0000FFull;
    v = (v | v << 8) & 0x100F00F00F00F00Full;
    v = (v | v << 4) & 0x10C30C30C30C30C3ull;
    v = (v | v << 2) & 0x1249249249249249ull;
    return v;
  };
  return split(x) | (split(y) << 1) | (split(z) << 2);
}

/// Immutable patch->rank map for one grid.
class LoadBalancer {
 public:
  /// Distribute every patch of \p grid over \p numRanks ranks. Each level
  /// is balanced independently so every rank holds patches of every level
  /// (required: every rank traces rays on its own fine patches and owns a
  /// share of the coarse level).
  LoadBalancer(const Grid& grid, int numRanks,
               LbStrategy strategy = LbStrategy::Morton);

  /// Measured-cost distribution: partition each level's Morton (or id)
  /// order into contiguous runs whose *costs* — not cell counts — are
  /// balanced. \p patchCosts is indexed by patch id over the whole grid;
  /// non-positive entries are treated as free. This is the dynamic
  /// rebalancing path: the amr:: engine feeds EWMA-smoothed traced-segment
  /// counts per patch so hot patches spread over ranks.
  LoadBalancer(const Grid& grid, int numRanks,
               const std::vector<double>& patchCosts,
               LbStrategy strategy = LbStrategy::Morton);

  int numRanks() const { return m_numRanks; }

  /// Owning rank of a patch id.
  int rankOf(int patchId) const {
    return m_rankOf[static_cast<std::size_t>(patchId)];
  }

  /// All patch ids owned by \p rank (ascending).
  const std::vector<int>& patchesOf(int rank) const {
    return m_patchesOf[static_cast<std::size_t>(rank)];
  }

  /// Patch ids owned by \p rank on a given level.
  std::vector<int> patchesOf(int rank, const Grid& grid, int level) const {
    std::vector<int> out;
    for (int id : patchesOf(rank)) {
      const Patch* p = grid.patchById(id);
      if (p && p->levelIndex() == level) out.push_back(id);
    }
    return out;
  }

  /// Max/min owned fine-cell imbalance across ranks (1.0 = perfect).
  double imbalance(const Grid& grid) const;

  /// Measured-cost imbalance: max over ranks of total owned cost divided
  /// by the mean rank cost (1.0 = perfect). Uses max/mean rather than
  /// max/min so a single idle rank does not blow the metric up; this is
  /// the value exported as the `rmcrt.lb.imbalance` gauge.
  double imbalance(const Grid& grid, const std::vector<double>& costs) const;

 private:
  void distributeLevel(const Grid& grid, const Level& level,
                       LbStrategy strategy,
                       const std::vector<double>* costs);

  int m_numRanks;
  std::vector<int> m_rankOf;                // by patch id
  std::vector<std::vector<int>> m_patchesOf;  // by rank
};

inline LoadBalancer::LoadBalancer(const Grid& grid, int numRanks,
                                  LbStrategy strategy)
    : m_numRanks(numRanks),
      m_rankOf(static_cast<std::size_t>(grid.numPatches()), 0),
      m_patchesOf(static_cast<std::size_t>(numRanks)) {
  for (int l = 0; l < grid.numLevels(); ++l)
    distributeLevel(grid, grid.level(l), strategy, nullptr);
  for (auto& v : m_patchesOf) std::sort(v.begin(), v.end());
}

inline LoadBalancer::LoadBalancer(const Grid& grid, int numRanks,
                                  const std::vector<double>& patchCosts,
                                  LbStrategy strategy)
    : m_numRanks(numRanks),
      m_rankOf(static_cast<std::size_t>(grid.numPatches()), 0),
      m_patchesOf(static_cast<std::size_t>(numRanks)) {
  for (int l = 0; l < grid.numLevels(); ++l)
    distributeLevel(grid, grid.level(l), strategy, &patchCosts);
  for (auto& v : m_patchesOf) std::sort(v.begin(), v.end());
}

inline void LoadBalancer::distributeLevel(const Grid& grid,
                                          const Level& level,
                                          LbStrategy strategy,
                                          const std::vector<double>* costs) {
  std::vector<int> order;
  order.reserve(level.numPatches());
  for (const Patch& p : level.patches()) order.push_back(p.id());

  if (strategy == LbStrategy::Morton) {
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const Patch* pa = grid.patchById(a);
      const Patch* pb = grid.patchById(b);
      const IntVector ca = pa->low() - level.cells().low();
      const IntVector cb = pb->low() - level.cells().low();
      const std::uint64_t ma =
          mortonEncode(static_cast<std::uint32_t>(ca.x()),
                       static_cast<std::uint32_t>(ca.y()),
                       static_cast<std::uint32_t>(ca.z()));
      const std::uint64_t mb =
          mortonEncode(static_cast<std::uint32_t>(cb.x()),
                       static_cast<std::uint32_t>(cb.y()),
                       static_cast<std::uint32_t>(cb.z()));
      return ma != mb ? ma < mb : a < b;
    });
  }

  const std::size_t n = order.size();
  if (n == 0) return;

  if (costs) {
    // Cost-weighted contiguous partition of the (Morton) order: patch i
    // goes to the rank whose ideal cost interval contains the midpoint of
    // i's cumulative-cost span. Monotone in i, so each rank still gets a
    // contiguous SFC run (locality preserved); falls back to the uniform
    // split when no patch on this level carries cost.
    double total = 0.0;
    std::vector<double> c(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto id = static_cast<std::size_t>(order[i]);
      const double v = id < costs->size() ? (*costs)[id] : 0.0;
      c[i] = v > 0.0 ? v : 0.0;
      total += c[i];
    }
    double cum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      int rank;
      if (total > 0.0) {
        rank = static_cast<int>((cum + 0.5 * c[i]) *
                                static_cast<double>(m_numRanks) / total);
        rank = std::min(rank, m_numRanks - 1);
      } else {
        rank = static_cast<int>(i * static_cast<std::size_t>(m_numRanks) / n);
      }
      cum += c[i];
      m_rankOf[static_cast<std::size_t>(order[i])] = rank;
      m_patchesOf[static_cast<std::size_t>(rank)].push_back(order[i]);
    }
    return;
  }

  for (std::size_t i = 0; i < n; ++i) {
    int rank;
    if (strategy == LbStrategy::RoundRobin) {
      rank = static_cast<int>(i) % m_numRanks;
    } else {  // Block and Morton both take contiguous runs of the order
      rank = static_cast<int>(i * static_cast<std::size_t>(m_numRanks) / n);
    }
    m_rankOf[static_cast<std::size_t>(order[i])] = rank;
    m_patchesOf[static_cast<std::size_t>(rank)].push_back(order[i]);
  }
}

inline double LoadBalancer::imbalance(const Grid& grid) const {
  const Level& fine = grid.fineLevel();
  std::vector<std::int64_t> cells(static_cast<std::size_t>(m_numRanks), 0);
  for (const Patch& p : fine.patches())
    cells[static_cast<std::size_t>(rankOf(p.id()))] += p.numCells();
  const auto [mn, mx] = std::minmax_element(cells.begin(), cells.end());
  return *mn > 0 ? static_cast<double>(*mx) / static_cast<double>(*mn)
                 : static_cast<double>(*mx);
}

inline double LoadBalancer::imbalance(const Grid& grid,
                                      const std::vector<double>& costs) const {
  std::vector<double> rankCost(static_cast<std::size_t>(m_numRanks), 0.0);
  double total = 0.0;
  for (int id = 0; id < grid.numPatches(); ++id) {
    const auto i = static_cast<std::size_t>(id);
    const double c = i < costs.size() && costs[i] > 0.0 ? costs[i] : 0.0;
    rankCost[static_cast<std::size_t>(rankOf(id))] += c;
    total += c;
  }
  if (total <= 0.0) return 1.0;
  const double mean = total / static_cast<double>(m_numRanks);
  const double mx = *std::max_element(rankCost.begin(), rankCost.end());
  return mx / mean;
}

}  // namespace rmcrt::grid
