#pragma once

/// \file operators.h
/// Inter-level transfer operators. RMCRT projects the fine CFD mesh's
/// radiative properties down to every coarse radiation level (paper
/// Section III-B: "data required by our multi-level RMCRT algorithm from
/// the fine CFD mesh is projected to all coarse levels subject to a
/// user-defined refinement ratio"). Restriction is volume-weighted
/// averaging (exact for equal cell volumes); prolongation is piecewise
/// constant (used in tests to verify round-trips).

#include <cassert>

#include "grid/level.h"
#include "grid/variable.h"

namespace rmcrt::grid {

/// Average \p fine values into \p coarse over coarse region \p region
/// (coarse-level indices). Every coarse cell receives the arithmetic mean
/// of its rr^3 fine children.
template <typename T>
void coarsenAverage(const CCVariable<T>& fine, const IntVector& rr,
                    CCVariable<T>& coarse, const CellRange& region) {
  assert(coarse.window().contains(region));
  const double inv =
      1.0 / static_cast<double>(IntVector(rr).volume());
  for (const IntVector& cc : region) {
    const IntVector fLo = cc * rr;
    T sum{};
    for (const IntVector& fc :
         CellRange(fLo, fLo + rr)) {
      sum += fine[fc];
    }
    coarse[cc] = static_cast<T>(sum * inv);
  }
}

/// Majority-free coarsening for cell types: a coarse cell is a Wall iff
/// any child is a Wall (conservative for ray termination).
inline void coarsenCellType(const CCVariable<CellType>& fine,
                            const IntVector& rr,
                            CCVariable<CellType>& coarse,
                            const CellRange& region) {
  for (const IntVector& cc : region) {
    const IntVector fLo = cc * rr;
    CellType t = CellType::Flow;
    for (const IntVector& fc : CellRange(fLo, fLo + rr)) {
      if (fine[fc] == CellType::Wall) {
        t = CellType::Wall;
        break;
      }
    }
    coarse[cc] = t;
  }
}

/// Piecewise-constant prolongation: each fine cell in \p fineRegion takes
/// its coarse parent's value.
template <typename T>
void refineConstant(const CCVariable<T>& coarse, const IntVector& rr,
                    CCVariable<T>& fine, const CellRange& fineRegion) {
  auto fdiv = [](int a, int b) {
    return a >= 0 ? a / b : -((-a + b - 1) / b);
  };
  for (const IntVector& fc : fineRegion) {
    const IntVector cc(fdiv(fc.x(), rr.x()), fdiv(fc.y(), rr.y()),
                       fdiv(fc.z(), rr.z()));
    fine[fc] = coarse[cc];
  }
}

}  // namespace rmcrt::grid
