#pragma once

/// \file mmap_arena.h
/// Large-allocation support that bypasses the general-purpose heap
/// entirely, per the paper's Section IV-B: "For large allocations, we
/// completely avoided the heap by implementing a specialized allocator
/// that uses mmap to allocate anonymous virtual memory." Mixing transient
/// multi-megabyte MPI/GridVariable buffers with persistent small objects
/// fragments the heap until the process dies at the edge of nodal memory;
/// mapping large blocks keeps the heap compact because munmap returns the
/// pages to the OS unconditionally.

#include <cstddef>
#include <cstdint>

#include "util/metrics.h"

namespace rmcrt::mem {

/// Aggregate counters for a mapping source; all methods thread-safe.
struct ArenaStats {
  std::uint64_t bytesMapped = 0;     ///< currently live mapped bytes
  std::uint64_t peakBytesMapped = 0; ///< high-water mark
  std::uint64_t totalMapCalls = 0;
  std::uint64_t totalUnmapCalls = 0;
};

/// Publish an arena snapshot into \p reg as gauges under \p prefix
/// (e.g. "mem.arena.").
inline void exportMetrics(const ArenaStats& s, MetricsRegistry& reg,
                          const std::string& prefix) {
  reg.setGauge(prefix + "bytes_mapped", static_cast<double>(s.bytesMapped));
  reg.setGauge(prefix + "peak_bytes_mapped",
               static_cast<double>(s.peakBytesMapped));
  reg.setGauge(prefix + "map_calls", static_cast<double>(s.totalMapCalls));
  reg.setGauge(prefix + "unmap_calls",
               static_cast<double>(s.totalUnmapCalls));
}

/// Anonymous-memory mapper with statistics. All functions are free of
/// shared mutable state other than the atomic counters, hence fully
/// thread-safe.
class MmapArena {
 public:
  /// Map at least \p bytes of zeroed anonymous memory (rounded up to the
  /// page size). Returns nullptr on exhaustion.
  static void* map(std::size_t bytes);

  /// Unmap a region previously returned by map() with the same size.
  static void unmap(void* p, std::size_t bytes);

  /// Round \p bytes up to a whole number of pages.
  static std::size_t roundToPages(std::size_t bytes);

  static std::size_t pageSize();

  /// Snapshot of the global counters.
  static ArenaStats stats();

  /// Zero the counters (between benchmark phases).
  static void resetStats();
};

}  // namespace rmcrt::mem
