#include "mem/lockfree_pool.h"

namespace rmcrt::mem {

namespace {
// Fixed capacity for the append-only slab table so it never reallocates
// while readers index into it concurrently. 64Ki slabs of (default) 1024
// blocks covers 2^26 blocks per pool — far beyond any realistic load.
constexpr std::size_t kMaxSlabs = 65536;
}  // namespace

LockFreePool::LockFreePool(std::size_t blockSize,
                           std::uint32_t blocksPerSlab)
    : m_blockSize((blockSize + 15) / 16 * 16),
      m_blocksPerSlab(blocksPerSlab == 0 ? 1 : blocksPerSlab) {
  if (m_blockSize < 16) m_blockSize = 16;
  m_slabs.reserve(kMaxSlabs);
}

LockFreePool::~LockFreePool() {
  const std::uint32_t n = m_slabCount.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < n; ++i)
    MmapArena::unmap(m_slabs[i].base, m_slabs[i].bytes);
}

void LockFreePool::growSlab() {
  // Serialize growth; contending threads spin briefly then retry the fast
  // path (another thread's new slab feeds their allocation).
  while (m_growLock.test_and_set(std::memory_order_acquire)) {
    // spin
  }
  const std::uint32_t slabIdx = m_slabCount.load(std::memory_order_relaxed);
  // Re-check: someone may have grown while we waited and the free list is
  // non-empty again; growing anyway is harmless, so proceed (keeps the
  // logic simple and growth rare).
  assert(slabIdx < kMaxSlabs && "LockFreePool exceeded slab capacity");
  Slab slab;
  slab.bytes = static_cast<std::size_t>(m_blocksPerSlab) * m_blockSize;
  slab.base = static_cast<std::byte*>(MmapArena::map(slab.bytes));
  if (!slab.base) {
    m_growLock.clear(std::memory_order_release);
    return;  // exhaustion: allocate() will return nullptr
  }
  m_slabs.push_back(slab);
  m_slabCount.store(slabIdx + 1, std::memory_order_release);

  // Thread the new slab's blocks into a local chain, then splice the whole
  // chain onto the global free stack with a single CAS loop.
  const std::uint32_t firstId = slabIdx * m_blocksPerSlab;
  const std::uint32_t lastId = firstId + m_blocksPerSlab - 1;
  for (std::uint32_t id = firstId; id < lastId; ++id)
    nextOf(id).store(id + 1, std::memory_order_relaxed);

  std::uint64_t head = m_head.load(std::memory_order_acquire);
  for (;;) {
    nextOf(lastId).store(headId(head), std::memory_order_relaxed);
    const std::uint64_t newHead = packHead(firstId, headTag(head) + 1);
    if (m_head.compare_exchange_weak(head, newHead,
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
      break;
    }
  }
  m_growLock.clear(std::memory_order_release);
}

void* LockFreePool::allocate() {
  for (;;) {
    std::uint64_t head = m_head.load(std::memory_order_acquire);
    while (headId(head) != kNilId) {
      const std::uint32_t id = headId(head);
      const std::uint32_t next = nextOf(id).load(std::memory_order_relaxed);
      const std::uint64_t newHead = packHead(next, headTag(head) + 1);
      if (m_head.compare_exchange_weak(head, newHead,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
        m_allocs.fetch_add(1, std::memory_order_relaxed);
        return blockAddress(id);
      }
    }
    const std::uint32_t before = m_slabCount.load(std::memory_order_acquire);
    growSlab();
    if (m_slabCount.load(std::memory_order_acquire) == before &&
        headId(m_head.load(std::memory_order_acquire)) == kNilId) {
      return nullptr;  // mapping failed and nothing was freed meanwhile
    }
  }
}

void LockFreePool::deallocate(void* p) {
  if (!p) return;
  // Recover the block id from the address.
  const std::uint32_t nSlabs = m_slabCount.load(std::memory_order_acquire);
  std::uint32_t id = kNilId;
  auto* bp = static_cast<std::byte*>(p);
  for (std::uint32_t s = 0; s < nSlabs; ++s) {
    const Slab& slab = m_slabs[s];
    if (bp >= slab.base && bp < slab.base + slab.bytes) {
      id = s * m_blocksPerSlab +
           static_cast<std::uint32_t>((bp - slab.base) / m_blockSize);
      break;
    }
  }
  assert(id != kNilId && "pointer not from this pool");
  std::uint64_t head = m_head.load(std::memory_order_acquire);
  for (;;) {
    nextOf(id).store(headId(head), std::memory_order_relaxed);
    const std::uint64_t newHead = packHead(id, headTag(head) + 1);
    if (m_head.compare_exchange_weak(head, newHead,
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
      m_deallocs.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
}

PoolStats LockFreePool::stats() const {
  PoolStats s;
  s.allocations = m_allocs.load(std::memory_order_relaxed);
  s.deallocations = m_deallocs.load(std::memory_order_relaxed);
  s.slabCount = m_slabCount.load(std::memory_order_relaxed);
  s.blocksPerSlab = m_blocksPerSlab;
  s.blockSize = m_blockSize;
  s.liveBlocks = s.allocations - s.deallocations;
  return s;
}

}  // namespace rmcrt::mem
