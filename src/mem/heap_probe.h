#pragma once

/// \file heap_probe.h
/// Heap fragmentation probing for the allocator benchmarks. Wraps glibc
/// mallinfo2 (when available) to report how much address space the heap
/// has consumed versus how much is actually in use — the gap is the
/// fragmentation the paper's Section IV-B fought ("the heap ... grew
/// continually, acting as though a significant memory leak still
/// existed").

#include <cstdint>

#if defined(__GLIBC__)
#include <malloc.h>
#define RMCRT_HAVE_MALLINFO2 1
#else
#define RMCRT_HAVE_MALLINFO2 0
#endif

namespace rmcrt::mem {

/// One snapshot of heap state.
struct HeapSnapshot {
  std::uint64_t heapBytesTotal = 0;  ///< arena extent (sbrk + mmapped by malloc)
  std::uint64_t heapBytesInUse = 0;  ///< bytes in live malloc allocations
  std::uint64_t heapBytesFree = 0;   ///< free bytes still held by the heap
  bool valid = false;

  /// Fraction of heap address space not backing live data: free/total.
  double fragmentationRatio() const {
    return heapBytesTotal > 0
               ? static_cast<double>(heapBytesFree) /
                     static_cast<double>(heapBytesTotal)
               : 0.0;
  }
};

inline HeapSnapshot probeHeap() {
  HeapSnapshot s;
#if RMCRT_HAVE_MALLINFO2
  struct mallinfo2 mi = mallinfo2();
  s.heapBytesTotal = static_cast<std::uint64_t>(mi.arena) +
                     static_cast<std::uint64_t>(mi.hblkhd);
  s.heapBytesInUse = static_cast<std::uint64_t>(mi.uordblks) +
                     static_cast<std::uint64_t>(mi.hblkhd);
  s.heapBytesFree = static_cast<std::uint64_t>(mi.fordblks);
  s.valid = true;
#endif
  return s;
}

}  // namespace rmcrt::mem
