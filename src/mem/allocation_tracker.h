#pragma once

/// \file allocation_tracker.h
/// Tagged allocation tracking — the paper's future-work item realized
/// (Section VII: "we will extend the use of our custom memory allocators
/// and trackers to implement ways of tracking memory allocations between
/// scaling runs to identify allocation patterns that do not scale").
///
/// Subsystems record their allocations under a tag ("MPI buffers",
/// "GridVariables", "coarse level", ...); a snapshot captures per-tag
/// live/peak bytes; and compareScalingRuns() contrasts snapshots taken at
/// two processor counts, flagging tags whose per-rank footprint fails to
/// shrink with scale — the signature of a replicated (non-scaling)
/// allocation pattern like the coarse-level copy.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace rmcrt::mem {

/// Per-tag counters.
struct TagStats {
  std::int64_t liveBytes = 0;
  std::int64_t peakBytes = 0;
  std::int64_t totalAllocs = 0;
};

/// Thread-safe tag-keyed allocation registry.
class AllocationTracker {
 public:
  static AllocationTracker& instance() {
    static AllocationTracker g;
    return g;
  }

  void recordAlloc(const std::string& tag, std::int64_t bytes) {
    std::lock_guard<std::mutex> lk(m_mutex);
    TagStats& s = m_tags[tag];
    s.liveBytes += bytes;
    s.peakBytes = std::max(s.peakBytes, s.liveBytes);
    ++s.totalAllocs;
  }

  void recordFree(const std::string& tag, std::int64_t bytes) {
    std::lock_guard<std::mutex> lk(m_mutex);
    m_tags[tag].liveBytes -= bytes;
  }

  TagStats stats(const std::string& tag) const {
    std::lock_guard<std::mutex> lk(m_mutex);
    auto it = m_tags.find(tag);
    return it != m_tags.end() ? it->second : TagStats{};
  }

  std::map<std::string, TagStats> snapshot() const {
    std::lock_guard<std::mutex> lk(m_mutex);
    return m_tags;
  }

  void reset() {
    std::lock_guard<std::mutex> lk(m_mutex);
    m_tags.clear();
  }

 private:
  AllocationTracker() = default;
  mutable std::mutex m_mutex;
  std::map<std::string, TagStats> m_tags;
};

/// RAII scope that records an allocation for its lifetime.
class TrackedAllocation {
 public:
  TrackedAllocation(std::string tag, std::int64_t bytes)
      : m_tag(std::move(tag)), m_bytes(bytes) {
    AllocationTracker::instance().recordAlloc(m_tag, m_bytes);
  }
  ~TrackedAllocation() {
    AllocationTracker::instance().recordFree(m_tag, m_bytes);
  }
  TrackedAllocation(const TrackedAllocation&) = delete;
  TrackedAllocation& operator=(const TrackedAllocation&) = delete;

 private:
  std::string m_tag;
  std::int64_t m_bytes;
};

/// One tag's verdict from a scaling comparison.
struct ScalingVerdict {
  std::string tag;
  std::int64_t peakAtSmall = 0;  ///< per-rank peak at the smaller run
  std::int64_t peakAtLarge = 0;  ///< per-rank peak at the larger run
  double scalingExponent = 0.0;  ///< d log(peak) / d log(ranks)
  bool scales = false;           ///< true when footprint shrinks with P
};

/// Compare per-rank snapshots from two scaling runs (rank counts pSmall
/// < pLarge). A tag "scales" when its per-rank peak decreases with rank
/// count (exponent <= -0.5, i.e., near-proportional decomposition);
/// constant or growing footprints (replication patterns) are flagged.
inline std::vector<ScalingVerdict> compareScalingRuns(
    const std::map<std::string, TagStats>& atSmall, int pSmall,
    const std::map<std::string, TagStats>& atLarge, int pLarge) {
  std::vector<ScalingVerdict> out;
  const double logRatio =
      std::log(static_cast<double>(pLarge) / static_cast<double>(pSmall));
  for (const auto& [tag, small] : atSmall) {
    auto it = atLarge.find(tag);
    if (it == atLarge.end()) continue;
    ScalingVerdict v;
    v.tag = tag;
    v.peakAtSmall = small.peakBytes;
    v.peakAtLarge = it->second.peakBytes;
    if (small.peakBytes > 0 && it->second.peakBytes > 0) {
      v.scalingExponent =
          std::log(static_cast<double>(it->second.peakBytes) /
                   static_cast<double>(small.peakBytes)) /
          logRatio;
    }
    v.scales = v.scalingExponent <= -0.5;
    out.push_back(v);
  }
  return out;
}

}  // namespace rmcrt::mem
