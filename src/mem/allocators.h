#pragma once

/// \file allocators.h
/// The allocation policy layer the paper's Section IV-B describes:
/// frequent small transient objects go to lock-free pools, large buffers
/// (MPI messages, GridVariables) go straight to mmap, and everything else
/// stays on the general heap. Exposed both as a singleton router
/// (PoolRouter) and as std::allocator-compatible adapters usable by
/// Array3/CCVariable and the comm layer's buffers.

#include <array>
#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>

#include "mem/lockfree_pool.h"
#include "mem/mmap_arena.h"

namespace rmcrt::mem {

/// Routes allocations by size class:
///   <= 4 KiB : lock-free pools (16B..4KiB in power-of-two classes)
///   >  4 KiB : direct mmap
/// A process-wide singleton mirrors how Uintah installs its allocators
/// once for the whole runtime.
class PoolRouter {
 public:
  static constexpr std::size_t kSmallLimit = 4096;
  static constexpr std::size_t kNumClasses = 9;  // 16,32,...,4096

  static PoolRouter& instance() {
    static PoolRouter g;
    return g;
  }

  void* allocate(std::size_t bytes) {
    if (bytes == 0) bytes = 1;
    if (bytes <= kSmallLimit) {
      return m_pools[classOf(bytes)]->allocate();
    }
    return MmapArena::map(bytes);
  }

  void deallocate(void* p, std::size_t bytes) {
    if (!p) return;
    if (bytes == 0) bytes = 1;
    if (bytes <= kSmallLimit) {
      m_pools[classOf(bytes)]->deallocate(p);
    } else {
      MmapArena::unmap(p, bytes);
    }
  }

  /// Size class index for a small allocation.
  static std::size_t classOf(std::size_t bytes) {
    std::size_t cls = 0;
    std::size_t sz = 16;
    while (sz < bytes) {
      sz <<= 1;
      ++cls;
    }
    return cls;
  }

  PoolStats poolStats(std::size_t cls) const { return m_pools[cls]->stats(); }

 private:
  PoolRouter() {
    std::size_t sz = 16;
    for (std::size_t c = 0; c < kNumClasses; ++c) {
      // Fewer blocks per slab for the big classes to bound slab size.
      const std::uint32_t perSlab =
          static_cast<std::uint32_t>(sz <= 256 ? 4096 : 256);
      m_pools[c] = std::make_unique<LockFreePool>(sz, perSlab);
      sz <<= 1;
    }
  }

  std::array<std::unique_ptr<LockFreePool>, kNumClasses> m_pools;
};

/// std::allocator adapter over PoolRouter — small element batches come
/// from the lock-free pools, large arrays from mmap. Stateless; all
/// instances compare equal.
template <typename T>
class PooledAllocator {
 public:
  using value_type = T;

  PooledAllocator() = default;
  template <typename U>
  PooledAllocator(const PooledAllocator<U>&) {}

  T* allocate(std::size_t n) {
    void* p = PoolRouter::instance().allocate(n * sizeof(T));
    if (!p) throw std::bad_alloc();
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t n) {
    PoolRouter::instance().deallocate(p, n * sizeof(T));
  }

  template <typename U>
  bool operator==(const PooledAllocator<U>&) const {
    return true;
  }
};

/// std::allocator adapter that always uses mmap — for GridVariables and
/// MPI buffers, which are the "large transient" class in the paper.
template <typename T>
class MmapAllocator {
 public:
  using value_type = T;

  MmapAllocator() = default;
  template <typename U>
  MmapAllocator(const MmapAllocator<U>&) {}

  T* allocate(std::size_t n) {
    void* p = MmapArena::map(n * sizeof(T));
    if (!p) throw std::bad_alloc();
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t n) {
    MmapArena::unmap(p, n * sizeof(T));
  }

  template <typename U>
  bool operator==(const MmapAllocator<U>&) const {
    return true;
  }
};

/// Plain heap allocator with call counting — the "before" configuration in
/// allocator benchmarks and the default for infrequent allocations.
template <typename T>
class CountingHeapAllocator {
 public:
  using value_type = T;

  CountingHeapAllocator() = default;
  template <typename U>
  CountingHeapAllocator(const CountingHeapAllocator<U>&) {}

  T* allocate(std::size_t n) {
    void* p = std::malloc(n * sizeof(T));
    if (!p) throw std::bad_alloc();
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) { std::free(p); }

  template <typename U>
  bool operator==(const CountingHeapAllocator<U>&) const {
    return true;
  }
};

}  // namespace rmcrt::mem
