#pragma once

/// \file lockfree_pool.h
/// A lock-free fixed-block memory pool built on top of the mmap arena,
/// per the paper's Section IV-B: "To manage our small transient objects,
/// i.e. objects that are frequently created and destroyed, we developed a
/// lock-free memory pool on top of our mmap allocator to avoid the heap
/// and to maximize throughput."
///
/// Free blocks live on a Treiber stack. The ABA problem is defeated by
/// addressing blocks with 32-bit ids (slab index * blocks-per-slab +
/// offset) packed with a 32-bit version tag into one 64-bit word, so a
/// plain 8-byte CAS suffices on every platform. Slabs are only ever added,
/// never removed, so ids stay valid for the pool's lifetime; slab growth
/// is the one (rare) path that takes a spinlock.

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "mem/mmap_arena.h"

namespace rmcrt::mem {

/// Statistics snapshot for a pool.
struct PoolStats {
  std::uint64_t allocations = 0;
  std::uint64_t deallocations = 0;
  std::uint64_t slabCount = 0;
  std::uint64_t blocksPerSlab = 0;
  std::uint64_t blockSize = 0;
  std::uint64_t liveBlocks = 0;
};

/// Publish a pool snapshot into \p reg as gauges under \p prefix
/// (e.g. "mem.pool.").
inline void exportMetrics(const PoolStats& s, MetricsRegistry& reg,
                          const std::string& prefix) {
  reg.setGauge(prefix + "allocations", static_cast<double>(s.allocations));
  reg.setGauge(prefix + "deallocations",
               static_cast<double>(s.deallocations));
  reg.setGauge(prefix + "slab_count", static_cast<double>(s.slabCount));
  reg.setGauge(prefix + "live_blocks", static_cast<double>(s.liveBlocks));
}

/// Lock-free pool of equally-sized blocks.
///
/// allocate()/deallocate() are lock-free in the steady state (every step,
/// at least one contending thread makes progress); only the path that maps
/// a fresh slab serializes briefly. Blocks are at least 8 bytes and
/// 16-byte aligned.
class LockFreePool {
 public:
  /// \param blockSize      usable bytes per block (rounded up to 16)
  /// \param blocksPerSlab  blocks added per slab growth (power of two not
  ///                       required)
  explicit LockFreePool(std::size_t blockSize,
                        std::uint32_t blocksPerSlab = 1024);

  ~LockFreePool();

  LockFreePool(const LockFreePool&) = delete;
  LockFreePool& operator=(const LockFreePool&) = delete;

  /// Pop a block; maps a new slab if the free list is empty. Never returns
  /// nullptr except on address-space exhaustion.
  void* allocate();

  /// Push a block back. \p p must have come from this pool.
  void deallocate(void* p);

  std::size_t blockSize() const { return m_blockSize; }

  PoolStats stats() const;

 private:
  static constexpr std::uint32_t kNilId = 0xFFFFFFFFu;

  // Head word layout: [ tag:32 | id:32 ].
  static constexpr std::uint64_t packHead(std::uint32_t id,
                                          std::uint32_t tag) {
    return (static_cast<std::uint64_t>(tag) << 32) | id;
  }
  static constexpr std::uint32_t headId(std::uint64_t h) {
    return static_cast<std::uint32_t>(h);
  }
  static constexpr std::uint32_t headTag(std::uint64_t h) {
    return static_cast<std::uint32_t>(h >> 32);
  }

  std::byte* blockAddress(std::uint32_t id) const {
    const std::uint32_t slab = id / m_blocksPerSlab;
    const std::uint32_t off = id % m_blocksPerSlab;
    return m_slabs[slab].base + static_cast<std::size_t>(off) * m_blockSize;
  }

  /// The first 4 bytes of a *free* block store the id of the next free
  /// block. (Reused as payload when allocated.)
  std::atomic<std::uint32_t>& nextOf(std::uint32_t id) const {
    return *reinterpret_cast<std::atomic<std::uint32_t>*>(blockAddress(id));
  }

  void growSlab();

  struct Slab {
    std::byte* base = nullptr;
    std::size_t bytes = 0;
  };

  std::size_t m_blockSize;
  std::uint32_t m_blocksPerSlab;
  std::atomic<std::uint64_t> m_head{packHead(kNilId, 0)};

  // Slab table: append-only; readers index it without locks because slots,
  // once published via m_slabCount (release), never change.
  mutable std::vector<Slab> m_slabs;
  std::atomic<std::uint32_t> m_slabCount{0};
  std::atomic_flag m_growLock = ATOMIC_FLAG_INIT;

  std::atomic<std::uint64_t> m_allocs{0};
  std::atomic<std::uint64_t> m_deallocs{0};
};

}  // namespace rmcrt::mem
