#include "mem/mmap_arena.h"

#include <sys/mman.h>
#include <unistd.h>

#include <atomic>
#include <cassert>

namespace rmcrt::mem {

namespace {

std::atomic<std::uint64_t> g_bytesMapped{0};
std::atomic<std::uint64_t> g_peakBytesMapped{0};
std::atomic<std::uint64_t> g_totalMapCalls{0};
std::atomic<std::uint64_t> g_totalUnmapCalls{0};

void bumpPeak(std::uint64_t current) {
  std::uint64_t prev = g_peakBytesMapped.load(std::memory_order_relaxed);
  while (prev < current &&
         !g_peakBytesMapped.compare_exchange_weak(prev, current,
                                                  std::memory_order_relaxed)) {
  }
}

}  // namespace

std::size_t MmapArena::pageSize() {
  static const std::size_t pg = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return pg;
}

std::size_t MmapArena::roundToPages(std::size_t bytes) {
  const std::size_t pg = pageSize();
  return (bytes + pg - 1) / pg * pg;
}

void* MmapArena::map(std::size_t bytes) {
  const std::size_t len = roundToPages(bytes == 0 ? 1 : bytes);
  void* p = ::mmap(nullptr, len, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) return nullptr;
  const std::uint64_t cur =
      g_bytesMapped.fetch_add(len, std::memory_order_relaxed) + len;
  bumpPeak(cur);
  g_totalMapCalls.fetch_add(1, std::memory_order_relaxed);
  return p;
}

void MmapArena::unmap(void* p, std::size_t bytes) {
  if (!p) return;
  const std::size_t len = roundToPages(bytes == 0 ? 1 : bytes);
  [[maybe_unused]] const int rc = ::munmap(p, len);
  assert(rc == 0);
  g_bytesMapped.fetch_sub(len, std::memory_order_relaxed);
  g_totalUnmapCalls.fetch_add(1, std::memory_order_relaxed);
}

ArenaStats MmapArena::stats() {
  ArenaStats s;
  s.bytesMapped = g_bytesMapped.load(std::memory_order_relaxed);
  s.peakBytesMapped = g_peakBytesMapped.load(std::memory_order_relaxed);
  s.totalMapCalls = g_totalMapCalls.load(std::memory_order_relaxed);
  s.totalUnmapCalls = g_totalUnmapCalls.load(std::memory_order_relaxed);
  return s;
}

void MmapArena::resetStats() {
  g_peakBytesMapped.store(g_bytesMapped.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  g_totalMapCalls.store(0, std::memory_order_relaxed);
  g_totalUnmapCalls.store(0, std::memory_order_relaxed);
}

}  // namespace rmcrt::mem
