#include "runtime/data_archiver.h"

#include <sys/stat.h>

#include <cstdint>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace rmcrt::runtime {

namespace {

std::string blobName(const std::string& label, int patchId) {
  return label + ".p" + std::to_string(patchId) + ".bin";
}

bool writeBlob(const std::string& path, const grid::CCVariable<double>& v) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.sizeBytes()));
  return static_cast<bool>(os);
}

}  // namespace

bool DataArchiver::checkpoint(const std::string& directory,
                              const DataWarehouse& dw,
                              const std::vector<std::string>& doubleLabels,
                              const std::vector<int>& patchIds) {
  ::mkdir(directory.c_str(), 0755);  // EEXIST is fine
  std::ofstream idx(directory + "/index.txt");
  if (!idx) return false;

  for (const std::string& label : doubleLabels) {
    for (int pid : patchIds) {
      if (!dw.exists(label, pid)) return false;
      const auto& v = dw.get<double>(label, pid);
      const CellRange& w = v.window();
      const CellRange& interior = v.interior();
      idx << label << " " << pid << " double " << w.low().x() << " "
          << w.low().y() << " " << w.low().z() << " " << w.high().x() << " "
          << w.high().y() << " " << w.high().z() << " "
          << interior.low().x() << " " << interior.low().y() << " "
          << interior.low().z() << " " << interior.high().x() << " "
          << interior.high().y() << " " << interior.high().z() << "\n";
      if (!writeBlob(directory + "/" + blobName(label, pid), v))
        return false;
    }
  }
  return static_cast<bool>(idx);
}

std::vector<ArchiveEntry> DataArchiver::index(const std::string& directory) {
  std::vector<ArchiveEntry> out;
  std::ifstream idx(directory + "/index.txt");
  std::string line;
  while (std::getline(idx, line)) {
    std::istringstream is(line);
    ArchiveEntry e;
    std::string kind;
    int lx, ly, lz, hx, hy, hz, ilx, ily, ilz, ihx, ihy, ihz;
    if (is >> e.label >> e.patchId >> kind >> lx >> ly >> lz >> hx >> hy >>
        hz >> ilx >> ily >> ilz >> ihx >> ihy >> ihz) {
      e.type = VarType::Double;
      out.push_back(e);
    }
  }
  return out;
}

bool DataArchiver::restore(const std::string& directory, DataWarehouse& dw) {
  std::ifstream idx(directory + "/index.txt");
  if (!idx) return false;
  std::string line;
  while (std::getline(idx, line)) {
    std::istringstream is(line);
    std::string label, kind;
    int pid, lx, ly, lz, hx, hy, hz, ilx, ily, ilz, ihx, ihy, ihz;
    if (!(is >> label >> pid >> kind >> lx >> ly >> lz >> hx >> hy >> hz >>
          ilx >> ily >> ilz >> ihx >> ihy >> ihz)) {
      return false;
    }
    const CellRange window(IntVector(lx, ly, lz), IntVector(hx, hy, hz));
    grid::CCVariable<double> v(window, 0.0);
    std::ifstream blob(directory + "/" + blobName(label, pid),
                       std::ios::binary);
    if (!blob) return false;
    blob.read(reinterpret_cast<char*>(v.data()),
              static_cast<std::streamsize>(v.sizeBytes()));
    if (blob.gcount() !=
        static_cast<std::streamsize>(v.sizeBytes())) {
      return false;
    }
    dw.put(label, pid, std::move(v));
  }
  return true;
}

namespace {

std::ostream& putRange(std::ostream& os, const CellRange& r) {
  return os << r.low().x() << " " << r.low().y() << " " << r.low().z() << " "
            << r.high().x() << " " << r.high().y() << " " << r.high().z();
}

bool getRange(std::istream& is, CellRange& r) {
  int lx, ly, lz, hx, hy, hz;
  if (!(is >> lx >> ly >> lz >> hx >> hy >> hz)) return false;
  r = CellRange(IntVector(lx, ly, lz), IntVector(hx, hy, hz));
  return true;
}

}  // namespace

bool DataArchiver::checkpointGrid(const std::string& directory,
                                  const grid::Grid& grid) {
  ::mkdir(directory.c_str(), 0755);  // EEXIST is fine
  std::ofstream os(directory + "/grid.txt");
  if (!os) return false;
  os << std::setprecision(17);
  const Vector lo = grid.physLow();
  const Vector hi = grid.physHigh();
  os << "bounds " << lo.x() << " " << lo.y() << " " << lo.z() << " "
     << hi.x() << " " << hi.y() << " " << hi.z() << "\n";
  os << "levels " << grid.numLevels() << "\n";
  for (int l = 0; l < grid.numLevels(); ++l) {
    const grid::Level& level = grid.level(l);
    const IntVector rr = level.refinementRatio();
    os << "level " << l << " "
       << (level.uniformlyTiled() ? "uniform" : "irregular") << " " << rr.x()
       << " " << rr.y() << " " << rr.z() << " ";
    putRange(os, level.cells());
    if (level.uniformlyTiled()) {
      const IntVector ps = level.patchSize();
      os << " " << ps.x() << " " << ps.y() << " " << ps.z() << "\n";
    } else {
      os << " " << level.numPatches() << "\n";
      for (const grid::Patch& p : level.patches()) {
        os << "box ";
        putRange(os, p.cells());
        os << "\n";
      }
    }
  }
  return static_cast<bool>(os);
}

std::shared_ptr<const grid::Grid> DataArchiver::restoreGrid(
    const std::string& directory) {
  std::ifstream is(directory + "/grid.txt");
  if (!is) return nullptr;
  std::string tok;
  Vector lo, hi;
  int numLevels = 0;
  {
    double lx, ly, lz, hx, hy, hz;
    if (!(is >> tok >> lx >> ly >> lz >> hx >> hy >> hz) || tok != "bounds")
      return nullptr;
    lo = Vector(lx, ly, lz);
    hi = Vector(hx, hy, hz);
  }
  if (!(is >> tok >> numLevels) || tok != "levels" || numLevels <= 0)
    return nullptr;

  std::vector<grid::Grid::LevelSpec> specs;
  for (int l = 0; l < numLevels; ++l) {
    int idx, rx, ry, rz;
    std::string kind;
    grid::Grid::LevelSpec spec;
    if (!(is >> tok >> idx >> kind >> rx >> ry >> rz) || tok != "level" ||
        idx != l) {
      return nullptr;
    }
    spec.refinementRatio = IntVector(rx, ry, rz);
    if (!getRange(is, spec.extent)) return nullptr;
    if (kind == "uniform") {
      int px, py, pz;
      if (!(is >> px >> py >> pz)) return nullptr;
      spec.patchSize = IntVector(px, py, pz);
    } else if (kind == "irregular") {
      spec.irregular = true;
      int numBoxes = 0;
      if (!(is >> numBoxes) || numBoxes < 0) return nullptr;
      spec.patchBoxes.reserve(static_cast<std::size_t>(numBoxes));
      for (int b = 0; b < numBoxes; ++b) {
        CellRange box;
        if (!(is >> tok) || tok != "box" || !getRange(is, box))
          return nullptr;
        spec.patchBoxes.push_back(box);
      }
    } else {
      return nullptr;
    }
    specs.push_back(std::move(spec));
  }
  try {
    return grid::Grid::makeFromSpec(lo, hi, specs);
  } catch (const std::exception&) {
    return nullptr;
  }
}

}  // namespace rmcrt::runtime
