#include "runtime/data_archiver.h"

#include <sys/stat.h>

#include <cstdint>
#include <fstream>
#include <sstream>

namespace rmcrt::runtime {

namespace {

std::string blobName(const std::string& label, int patchId) {
  return label + ".p" + std::to_string(patchId) + ".bin";
}

bool writeBlob(const std::string& path, const grid::CCVariable<double>& v) {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.sizeBytes()));
  return static_cast<bool>(os);
}

}  // namespace

bool DataArchiver::checkpoint(const std::string& directory,
                              const DataWarehouse& dw,
                              const std::vector<std::string>& doubleLabels,
                              const std::vector<int>& patchIds) {
  ::mkdir(directory.c_str(), 0755);  // EEXIST is fine
  std::ofstream idx(directory + "/index.txt");
  if (!idx) return false;

  for (const std::string& label : doubleLabels) {
    for (int pid : patchIds) {
      if (!dw.exists(label, pid)) return false;
      const auto& v = dw.get<double>(label, pid);
      const CellRange& w = v.window();
      const CellRange& interior = v.interior();
      idx << label << " " << pid << " double " << w.low().x() << " "
          << w.low().y() << " " << w.low().z() << " " << w.high().x() << " "
          << w.high().y() << " " << w.high().z() << " "
          << interior.low().x() << " " << interior.low().y() << " "
          << interior.low().z() << " " << interior.high().x() << " "
          << interior.high().y() << " " << interior.high().z() << "\n";
      if (!writeBlob(directory + "/" + blobName(label, pid), v))
        return false;
    }
  }
  return static_cast<bool>(idx);
}

std::vector<ArchiveEntry> DataArchiver::index(const std::string& directory) {
  std::vector<ArchiveEntry> out;
  std::ifstream idx(directory + "/index.txt");
  std::string line;
  while (std::getline(idx, line)) {
    std::istringstream is(line);
    ArchiveEntry e;
    std::string kind;
    int lx, ly, lz, hx, hy, hz, ilx, ily, ilz, ihx, ihy, ihz;
    if (is >> e.label >> e.patchId >> kind >> lx >> ly >> lz >> hx >> hy >>
        hz >> ilx >> ily >> ilz >> ihx >> ihy >> ihz) {
      e.type = VarType::Double;
      out.push_back(e);
    }
  }
  return out;
}

bool DataArchiver::restore(const std::string& directory, DataWarehouse& dw) {
  std::ifstream idx(directory + "/index.txt");
  if (!idx) return false;
  std::string line;
  while (std::getline(idx, line)) {
    std::istringstream is(line);
    std::string label, kind;
    int pid, lx, ly, lz, hx, hy, hz, ilx, ily, ilz, ihx, ihy, ihz;
    if (!(is >> label >> pid >> kind >> lx >> ly >> lz >> hx >> hy >> hz >>
          ilx >> ily >> ilz >> ihx >> ihy >> ihz)) {
      return false;
    }
    const CellRange window(IntVector(lx, ly, lz), IntVector(hx, hy, hz));
    grid::CCVariable<double> v(window, 0.0);
    std::ifstream blob(directory + "/" + blobName(label, pid),
                       std::ios::binary);
    if (!blob) return false;
    blob.read(reinterpret_cast<char*>(v.data()),
              static_cast<std::streamsize>(v.sizeBytes()));
    if (blob.gcount() !=
        static_cast<std::streamsize>(v.sizeBytes())) {
      return false;
    }
    dw.put(label, pid, std::move(v));
  }
  return true;
}

}  // namespace rmcrt::runtime
