#pragma once

/// \file simulation_controller.h
/// The timestep driver, mirroring Uintah's SimulationController: runs the
/// registered task pipeline for N timesteps with DataWarehouse rollover
/// between steps, and supports the paper's loose CFD-radiation coupling
/// ("Thermal radiation in the target boiler simulations is loosely
/// coupled to the computational fluid dynamics due to time-scale
/// separation"): the expensive radiation pipeline runs every
/// `radiationInterval` steps, with cheap carry-forward tasks in between
/// copying the last radiation solution ahead.

#include <cstdint>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "runtime/scheduler.h"
#include "util/trace_recorder.h"

namespace rmcrt::runtime {

/// Thrown during a --replay run when a step's state digest differs from
/// the recorded one: the replayed window is NOT reproducing the original
/// execution (nondeterminism crept in, or the snapshot/journal pair is
/// mismatched).
class ReplayDivergence : public std::runtime_error {
 public:
  ReplayDivergence(int step, std::uint64_t expected, std::uint64_t actual)
      : std::runtime_error(describe(step, expected, actual)), m_step(step) {}

  int step() const { return m_step; }

 private:
  static std::string describe(int step, std::uint64_t expected,
                              std::uint64_t actual) {
    std::ostringstream os;
    os << "replay diverged at step " << step << ": recorded digest 0x"
       << std::hex << expected << ", replayed digest 0x" << actual;
    return os.str();
  }
  int m_step;
};

/// Per-timestep record for reporting/regression.
struct TimestepRecord {
  int step = 0;
  bool radiationStep = false;
  bool regridded = false;  ///< the regrid hook changed grid or balance
  double seconds = 0.0;
  SchedulerStats stats;
};

/// Drives one rank's scheduler through a multi-timestep run. Construct
/// one per rank with identical configuration; call run() concurrently.
class SimulationController {
 public:
  /// \param sched       the rank's scheduler
  /// \param registerRadiation  called to register the full radiation
  ///        pipeline for a radiation step (scheduler tasks cleared first)
  /// \param registerCarryForward  called to register the cheap
  ///        carry-forward step (may be empty for "do nothing" steps)
  SimulationController(Scheduler& sched,
                       std::function<void(Scheduler&)> registerRadiation,
                       std::function<void(Scheduler&)> registerCarryForward)
      : m_sched(sched),
        m_registerRadiation(std::move(registerRadiation)),
        m_registerCarryForward(std::move(registerCarryForward)) {}

  /// Radiation solve frequency: every k-th timestep (1 = every step).
  void setRadiationInterval(int k) { m_radiationInterval = k > 0 ? k : 1; }

  /// Adaptive-regrid hook (the amr::AmrEngine entry point). Called once
  /// per timestep, after the DataWarehouse rollover and before task
  /// registration; returns true when it changed the scheduler's grid or
  /// load balance. On a regrid step the controller recompiles a TaskGraph
  /// over the re-registered pipeline and throws std::runtime_error if the
  /// declarations no longer form a valid DAG on the new grid.
  void setRegridHook(std::function<bool(int)> hook) {
    m_regridHook = std::move(hook);
  }

  /// Publish per-timestep scheduler stats into \p reg under
  /// \p prefix (e.g. "scheduler.rank0.") after every step, and stamp a
  /// timeline snapshot (MetricsRegistry::recordTimestep). Pass nullptr to
  /// disable (the default). When several ranks share one registry, only
  /// the rank whose controller was wired with \p ownsTimeline records the
  /// timeline snapshot, so each step yields exactly one snapshot.
  void setMetrics(MetricsRegistry* reg, std::string prefix,
                  bool ownsTimeline = true) {
    m_metrics = reg;
    m_metricsPrefix = std::move(prefix);
    m_ownsTimeline = ownsTimeline;
    // Baseline for the per-step tracing-rate gauge: segments marched
    // before this controller's run must not count toward its first step.
    m_lastTracerSegments =
        MetricsRegistry::global().counter("tracer.segments").value();
  }

  /// Called at the top of every step, before the DataWarehouse rollover —
  /// the injection point for scripted rank deaths (throw to simulate the
  /// rank vanishing mid-run) and for snapshot-schedule decisions.
  void setPreStepHook(std::function<void(int)> hook) {
    m_preStepHook = std::move(hook);
  }
  /// Called after a step fully completes (stats recorded, metrics
  /// exported, digest verified) — where a recovery harness takes its
  /// snapshots: the step boundary is quiescent, every rank having passed
  /// the final phase barrier.
  void setPostStepHook(std::function<void(int)> hook) {
    m_postStepHook = std::move(hook);
  }

  /// Wire deterministic record/replay. \p digest maps a completed step to
  /// a fingerprint of this rank's state (e.g. an FNV hash of the local
  /// divQ bytes). In record mode every step's digest is appended to
  /// \p recordInto; in replay mode each digest is checked against the
  /// recorded journal and a mismatch throws ReplayDivergence.
  void setStepDigest(std::function<std::uint64_t(int)> digest) {
    m_stepDigest = std::move(digest);
  }
  void setRecordSink(std::vector<std::pair<int, std::uint64_t>>* recordInto) {
    m_recordSink = recordInto;
  }
  void setReplayReference(
      std::vector<std::pair<int, std::uint64_t>> reference) {
    m_replayRef = std::move(reference);
    m_replaying = true;
  }

  /// Run steps [firstStep, firstStep+numTimesteps); returns one record per
  /// step. A nonzero \p firstStep resumes a run mid-stream (snapshot
  /// restore): the radiation/carry-forward cadence follows the ABSOLUTE
  /// step number, and the first resumed iteration still rolls the
  /// DataWarehouses — the restored newDW becomes oldDW exactly as it would
  /// have in the uninterrupted run.
  std::vector<TimestepRecord> run(int firstStep, int numTimesteps) {
    std::vector<TimestepRecord> records;
    records.reserve(static_cast<std::size_t>(numTimesteps));
    for (int step = firstStep; step < firstStep + numTimesteps; ++step) {
      if (m_preStepHook) m_preStepHook(step);
      // Roll the DataWarehouses BETWEEN steps (not after the last) so the
      // final step's results stay readable in newDW after run() returns.
      if (step > 0) m_sched.advanceDataWarehouses();
      const bool regridded = m_regridHook && m_regridHook(step);
      const bool radiation = (step % m_radiationInterval) == 0;
      RMCRT_TRACE_SPAN("sim", radiation ? "timestep:radiation"
                                        : "timestep:carry_forward");
      m_sched.clearTasks();
      if (radiation) {
        m_registerRadiation(m_sched);
      } else if (m_registerCarryForward) {
        m_registerCarryForward(m_sched);
      }
      if (regridded) validateRecompiledGraph();
      m_sched.resetStats();
      Timer timer;
      m_sched.executeTimestep();
      TimestepRecord rec;
      rec.step = step;
      rec.radiationStep = radiation;
      rec.regridded = regridded;
      rec.seconds = timer.seconds();
      rec.stats = m_sched.stats();
      records.push_back(rec);
      if (m_metrics) {
        m_sched.exportMetrics(*m_metrics, m_metricsPrefix);
        m_metrics->setGauge(m_metricsPrefix + "step_seconds", rec.seconds);
        m_metrics->addCounter(m_metricsPrefix + "timesteps_completed", 1);
        if (m_ownsTimeline) {
          // Per-step tracing rate in Mseg/s: the delta of the global
          // tracer.segments counter over this step's wall time — the
          // timeline-owning rank publishes it so each timestep snapshot
          // carries exactly one node-wide kernel-throughput sample.
          const std::uint64_t segs =
              MetricsRegistry::global().counter("tracer.segments").value();
          const double rate =
              rec.seconds > 0.0
                  ? static_cast<double>(segs - m_lastTracerSegments) /
                        rec.seconds / 1e6
                  : 0.0;
          m_lastTracerSegments = segs;
          m_metrics->setGauge("tracer.mseg_per_s", rate);
          m_metrics->recordTimestep(step);
        }
      }
      if (m_stepDigest) {
        const std::uint64_t d = m_stepDigest(step);
        if (m_recordSink) m_recordSink->emplace_back(step, d);
        if (m_replaying) verifyReplayDigest(step, d);
      }
      if (m_postStepHook) m_postStepHook(step);
    }
    return records;
  }

  /// Run \p numTimesteps from step 0 (the common, non-resumed case).
  std::vector<TimestepRecord> run(int numTimesteps) {
    return run(0, numTimesteps);
  }

 private:
  /// Recompile the task graph after a regrid and reject an invalid
  /// re-registration before it reaches the scheduler.
  void validateRecompiledGraph();

  void verifyReplayDigest(int step, std::uint64_t actual) {
    for (const auto& [s, d] : m_replayRef) {
      if (s != step) continue;
      if (d != actual) throw ReplayDivergence(step, d, actual);
      return;
    }
    // A step beyond the recorded window is not a divergence: replay may
    // legitimately run further than the journal covers.
  }

  Scheduler& m_sched;
  std::function<void(Scheduler&)> m_registerRadiation;
  std::function<void(Scheduler&)> m_registerCarryForward;
  std::function<bool(int)> m_regridHook;
  std::function<void(int)> m_preStepHook;
  std::function<void(int)> m_postStepHook;
  std::function<std::uint64_t(int)> m_stepDigest;
  std::vector<std::pair<int, std::uint64_t>>* m_recordSink = nullptr;
  std::vector<std::pair<int, std::uint64_t>> m_replayRef;
  bool m_replaying = false;
  int m_radiationInterval = 1;
  MetricsRegistry* m_metrics = nullptr;
  std::string m_metricsPrefix;
  bool m_ownsTimeline = true;
  /// tracer.segments reading at the end of the previous step (global,
  /// node-wide counter) — the gauge publishes per-step deltas.
  std::uint64_t m_lastTracerSegments = 0;
};

/// The standard RMCRT carry-forward task: copy divQ (and the property
/// fields a coupled CFD solve would need) from the old DataWarehouse to
/// the new one on every local patch of \p level.
Task makeCarryForwardTask(const std::vector<std::string>& doubleLabels,
                          int level);

}  // namespace rmcrt::runtime
