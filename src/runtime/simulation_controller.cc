#include "runtime/simulation_controller.h"

#include <stdexcept>

#include "runtime/task_graph.h"

namespace rmcrt::runtime {

void SimulationController::validateRecompiledGraph() {
  TaskGraph graph(m_sched.tasks());
  if (!graph.valid() || !graph.declaredOrderIsValid()) {
    std::string detail;
    for (const GraphDiagnostic& d : graph.diagnostics()) {
      if (!detail.empty()) detail += "; ";
      detail += d.detail;
    }
    if (detail.empty()) detail = "declared phase order violates dependencies";
    throw std::runtime_error(
        "SimulationController: task graph invalid after regrid: " + detail);
  }
  if (m_metrics)
    m_metrics->addCounter(m_metricsPrefix + "graph_recompiles", 1);
}

Task makeCarryForwardTask(const std::vector<std::string>& doubleLabels,
                          int level) {
  Task t("carryForward", level, [doubleLabels](const TaskContext& ctx) {
    for (const std::string& label : doubleLabels) {
      const auto& old =
          ctx.getGhosted<double>(label, /*numGhost=*/0, /*fromOld=*/true);
      auto& out = ctx.newDW->getModifiable<double>(label, ctx.patch->id());
      for (const auto& c : ctx.patch->cells()) out[c] = old[c];
    }
  });
  for (const std::string& label : doubleLabels) {
    t.addRequires(Requires{label, VarType::Double, level, 0, false,
                           /*fromOldDW=*/true});
    t.addComputes(Computes{label, VarType::Double, 0});
  }
  return t;
}

}  // namespace rmcrt::runtime
