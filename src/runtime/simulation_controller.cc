#include "runtime/simulation_controller.h"

namespace rmcrt::runtime {

Task makeCarryForwardTask(const std::vector<std::string>& doubleLabels,
                          int level) {
  Task t("carryForward", level, [doubleLabels](const TaskContext& ctx) {
    for (const std::string& label : doubleLabels) {
      const auto& old =
          ctx.getGhosted<double>(label, /*numGhost=*/0, /*fromOld=*/true);
      auto& out = ctx.newDW->getModifiable<double>(label, ctx.patch->id());
      for (const auto& c : ctx.patch->cells()) out[c] = old[c];
    }
  });
  for (const std::string& label : doubleLabels) {
    t.addRequires(Requires{label, VarType::Double, level, 0, false,
                           /*fromOldDW=*/true});
    t.addComputes(Computes{label, VarType::Double, 0});
  }
  return t;
}

}  // namespace rmcrt::runtime
