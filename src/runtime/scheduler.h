#pragma once

/// \file scheduler.h
/// The per-rank task scheduler: compiles task declarations into per-patch
/// work plus the message list that satisfies remote requires, executes
/// phases with communication/computation overlap, and attributes time to
/// "local communication" (posting/processing MPI) versus task execution —
/// the quantity Figure 1 / Table I of the paper measures.
///
/// Faithfulness notes versus Uintah:
///  * Requests are managed by a pluggable container — the wait-free pool
///    (paper Algorithm 1) or the legacy locked queue — so the paper's
///    before/after comparison runs through the production code path.
///  * Within a phase, a patch's task runs as soon as its own messages have
///    arrived (asynchronous, out-of-order across patches). Distinct task
///    declarations execute as ordered phases: a simplification of
///    Uintah's full DAG, adequate for the RMCRT pipeline whose
///    carry-forward -> coarsen -> trace chain is a strict sequence.
///  * Staged ghost/region data lives in the DataWarehouse as region
///    variables, mirroring Uintah's getRegion "memory it does not own".
///
/// Resilience: dependency messages route through a ReliableChannel
/// (sequence numbers + acks + retransmit) by default, so injected or real
/// message loss is recovered transparently; a watchdog in the execute loop
/// dumps a diagnostic snapshot, forces retransmission, and — after a
/// configurable number of strikes — fails the timestep with a structured
/// TimestepStalled error instead of hanging forever.

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/communicator.h"
#include "comm/locked_queue.h"
#include "comm/reliable_channel.h"
#include "comm/request_pool.h"
#include "grid/grid.h"
#include "grid/load_balancer.h"
#include "runtime/data_warehouse.h"
#include "runtime/task.h"
#include "util/metrics.h"
#include "util/timers.h"

namespace rmcrt {
class ThreadPool;
}

namespace rmcrt::runtime {

/// Which outstanding-request container the scheduler uses (paper §IV-A).
enum class RequestContainer {
  WaitFreePool,      ///< Algorithm 1 (the paper's "after")
  LockedSerialized,  ///< coarse-grained critical section ("before", safe)
  LockedRacy,        ///< original defective design (leaks under threads)
};

/// Thrown by executeTimestep() when the watchdog declares the timestep
/// dead: no request completed and no task became runnable within the
/// configured deadline for the configured number of strikes. Carries the
/// watchdog's per-rank classification so a recovery layer can tell a dead
/// rank (drop it, restore, repartition) from a slow one (wait / retry).
class TimestepStalled : public std::runtime_error {
 public:
  /// One rank this scheduler is blocked on.
  struct Suspect {
    int rank = -1;
    bool dead = false;  ///< send link to it exhausted retries (vs. slow)
    std::size_t pendingRecvs = 0;  ///< receives outstanding from it
  };

  using std::runtime_error::runtime_error;
  TimestepStalled(const std::string& what, std::vector<Suspect> suspects)
      : std::runtime_error(what), m_suspects(std::move(suspects)) {}

  const std::vector<Suspect>& suspects() const { return m_suspects; }

 private:
  std::vector<Suspect> m_suspects;
};

/// Resilience knobs for one scheduler.
struct SchedulerConfig {
  /// Route dependency messages through the ReliableChannel. When false,
  /// messages go straight to the communicator (the pre-resilience path).
  bool reliableComm = true;
  comm::ReliableChannel::Config channel{};
  /// Seconds without progress before a watchdog strike (diagnostic dump +
  /// forced retransmission). <= 0 disables the watchdog.
  double watchdogDeadlineSeconds = 60.0;
  /// Strikes before the timestep fails with TimestepStalled.
  int watchdogMaxStrikes = 3;
  /// Worker pool handed to task actions (TaskContext::pool) for
  /// intra-task tiled parallelism. Non-owning and may be shared by many
  /// ranks' schedulers; tasks themselves still execute on the scheduler
  /// thread, so one pool bounds the node's total trace parallelism (no
  /// oversubscription when ranks and tiles compose). nullptr = serial
  /// task actions.
  ThreadPool* taskPool = nullptr;
};

/// Wall-clock and traffic totals for one scheduler (one rank).
struct SchedulerStats {
  double localCommSeconds = 0;  ///< posting sends/recvs + processing ready
  double taskExecSeconds = 0;   ///< inside task actions
  double waitSeconds = 0;       ///< polling with nothing ready
  std::uint64_t messagesSent = 0;
  std::uint64_t bytesSent = 0;
  std::uint64_t messagesReceived = 0;
  std::uint64_t bytesReceived = 0;
  std::uint64_t tasksExecuted = 0;
  // Resilience counters (nonzero only with reliableComm):
  std::uint64_t retransmits = 0;
  std::uint64_t duplicatesDiscarded = 0;
  double maxBackoffMs = 0.0;
  std::uint64_t watchdogStrikes = 0;
};

/// One rank's scheduler. Construct one per rank over a shared Grid,
/// LoadBalancer and Communicator; call addTask() identically on every
/// rank; then run executeTimestep() concurrently (one thread per rank).
class Scheduler {
 public:
  Scheduler(std::shared_ptr<const grid::Grid> grid,
            std::shared_ptr<const grid::LoadBalancer> lb,
            comm::Communicator& world, int rank,
            RequestContainer container = RequestContainer::WaitFreePool,
            SchedulerConfig config = SchedulerConfig{});

  ~Scheduler();

  int rank() const { return m_rank; }
  const grid::Grid& grid() const { return *m_grid; }
  const grid::LoadBalancer& loadBalancer() const { return *m_lb; }
  const SchedulerConfig& config() const { return m_config; }

  DataWarehouse& oldDW() { return *m_oldDW; }
  DataWarehouse& newDW() { return *m_newDW; }

  /// Append a task phase. Must be called identically on every rank.
  void addTask(Task task) { m_tasks.push_back(std::move(task)); }
  void clearTasks() { m_tasks.clear(); }
  /// The registered task phases, in declaration order — exposed so the
  /// regrid path can recompile a TaskGraph over the re-registered
  /// pipeline and validate it against the new grid.
  const std::vector<Task>& tasks() const { return m_tasks; }

  /// Rewire this rank's scheduler onto a regridded grid and its new
  /// load balance. Must be called between timesteps (never while
  /// executeTimestep is running), identically on every rank, before the
  /// next registration pass. Registered tasks are cleared: the old
  /// declarations reference patches that no longer exist.
  void setGrid(std::shared_ptr<const grid::Grid> grid,
               std::shared_ptr<const grid::LoadBalancer> lb) {
    m_grid = std::move(grid);
    m_lb = std::move(lb);
    m_tasks.clear();
  }

  /// Execute all task phases once. Blocking; involves collective
  /// synchronization with the other ranks' schedulers. Throws
  /// TimestepStalled when the watchdog gives up, or comm::CommAborted when
  /// another rank aborted the world.
  void executeTimestep();

  /// Swap old and new DataWarehouses and clear the new one.
  void advanceDataWarehouses();

  const SchedulerStats& stats() const { return m_stats; }

  /// Publish this rank's stats (plus its reliable channel's, when
  /// enabled) into \p reg as gauges under \p prefix — e.g.
  /// "scheduler.rank0.messages_sent". Gauges, not counters: resetStats()
  /// restarts the underlying totals each timestep, so callers wanting a
  /// monotone series accumulate snapshots across recordTimestep() calls.
  void exportMetrics(MetricsRegistry& reg, const std::string& prefix) const;

  void resetStats() {
    m_stats = SchedulerStats{};
    m_localCommAcc.reset();
    m_taskExecAcc.reset();
    m_waitAcc.reset();
  }

  /// The reliability endpoint, when reliableComm is enabled.
  const comm::ReliableChannel* channel() const { return m_channel.get(); }
  comm::ReliableChannel* channel() { return m_channel.get(); }

  /// Classify the ranks this scheduler is currently blocked on by
  /// aggregating its pending receives per source and checking whether the
  /// send link back is retry-capped: a rank we cannot push frames to after
  /// the full retry budget is presumed DEAD; one that merely has not
  /// produced our inputs yet is SLOW. Used by the watchdog diagnostic and
  /// carried on TimestepStalled for the recovery layer.
  std::vector<TimestepStalled::Suspect> stallSuspects() const;

  /// The region window a requirement resolves to for one task patch;
  /// exposed so task actions can call DataWarehouse::getRegion with the
  /// identical key the scheduler staged.
  grid::CellRange requiredRegion(const Task& task, const grid::Patch& patch,
                                 const Requires& req) const;

 private:
  struct PendingTask;

  void runPhase(std::size_t phaseIdx);
  void stageRequirement(std::size_t phaseIdx, std::size_t reqIdx,
                        const Task& task, const Requires& req,
                        const std::vector<int>& localPatches,
                        std::vector<std::shared_ptr<PendingTask>>& pending);
  void postSendsFor(std::size_t phaseIdx, std::size_t reqIdx,
                    const Task& task, const Requires& req);
  void preallocateComputes(const Task& task,
                           const std::vector<int>& localPatches);

  std::int64_t messageTag(std::size_t phaseIdx, std::size_t reqIdx,
                          int srcPatch, int dstPatch) const;

  /// Describe the stalled phase for the watchdog log / TimestepStalled.
  std::string stallDiagnostic(std::size_t phaseIdx, std::size_t ranCount,
                              std::size_t totalTasks, int strikes) const;

  DataWarehouse& dwFor(const Requires& req) {
    return req.fromOldDW ? *m_oldDW : *m_newDW;
  }

  std::shared_ptr<const grid::Grid> m_grid;
  std::shared_ptr<const grid::LoadBalancer> m_lb;
  comm::Communicator& m_world;
  int m_rank;
  SchedulerConfig m_config;

  std::unique_ptr<DataWarehouse> m_oldDW;
  std::unique_ptr<DataWarehouse> m_newDW;
  std::vector<Task> m_tasks;

  RequestContainer m_containerKind;
  comm::WaitFreeRequestPool m_pool;
  comm::LockedRequestQueue m_lockedQueue;
  std::unique_ptr<comm::ReliableChannel> m_channel;

  /// Uniform view over the two container kinds.
  void containerAdd(comm::CommNode node);
  int containerProcessReady();
  std::size_t containerPending() const;

  SchedulerStats m_stats;
  AtomicTimeAccumulator m_localCommAcc;
  AtomicTimeAccumulator m_taskExecAcc;
  AtomicTimeAccumulator m_waitAcc;
};

}  // namespace rmcrt::runtime
