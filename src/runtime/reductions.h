#pragma once

/// \file reductions.h
/// Reduction variables — Uintah's mechanism for global scalars (the
/// timestep size delT, total radiative power, min/max diagnostics):
/// every patch task contributes a value; the per-rank partials combine
/// across ranks with an allreduce at the end of the timestep. ARCHES
/// uses exactly this to pick the stable delT after each RK stage.

#include <algorithm>
#include <atomic>
#include <cassert>
#include <limits>
#include <mutex>
#include <string>
#include <unordered_map>

#include "comm/communicator.h"

namespace rmcrt::runtime {

enum class ReductionOp { Min, Max, Sum };

/// Per-rank accumulator for named global reductions. Thread-safe: patch
/// tasks running on any thread contribute concurrently.
class ReductionSet {
 public:
  /// Declare a reduction (idempotent; the op must not change).
  void declare(const std::string& name, ReductionOp op) {
    std::lock_guard<std::mutex> lk(m_mutex);
    auto [it, inserted] = m_vars.emplace(name, Entry{op, identity(op)});
    assert(it->second.op == op && "reduction re-declared with another op");
    (void)inserted;
  }

  /// Contribute a local value.
  void contribute(const std::string& name, double value) {
    std::lock_guard<std::mutex> lk(m_mutex);
    auto it = m_vars.find(name);
    assert(it != m_vars.end() && "contribute to undeclared reduction");
    it->second.partial = combine(it->second.op, it->second.partial, value);
  }

  /// This rank's partial so far.
  double partial(const std::string& name) const {
    std::lock_guard<std::mutex> lk(m_mutex);
    auto it = m_vars.find(name);
    assert(it != m_vars.end());
    return it->second.partial;
  }

  /// Combine with all other ranks (collective: every rank must call,
  /// in the same order for every declared name). Returns the global
  /// value and resets the local partial to the identity.
  double reduceAcross(const std::string& name, comm::Communicator& world,
                      int rank) {
    ReductionOp op;
    double mine;
    {
      std::lock_guard<std::mutex> lk(m_mutex);
      auto it = m_vars.find(name);
      assert(it != m_vars.end());
      op = it->second.op;
      mine = it->second.partial;
      it->second.partial = identity(op);
    }
    switch (op) {
      case ReductionOp::Sum:
        return world.allReduceSum(rank, mine);
      case ReductionOp::Max:
        return world.allReduceMax(rank, mine);
      case ReductionOp::Min:
        // min(x) = -max(-x) over the ranks.
        return -world.allReduceMax(rank, -mine);
    }
    return mine;  // unreachable
  }

  static double identity(ReductionOp op) {
    switch (op) {
      case ReductionOp::Min:
        return std::numeric_limits<double>::infinity();
      case ReductionOp::Max:
        return -std::numeric_limits<double>::infinity();
      case ReductionOp::Sum:
        return 0.0;
    }
    return 0.0;
  }

  static double combine(ReductionOp op, double a, double b) {
    switch (op) {
      case ReductionOp::Min:
        return std::min(a, b);
      case ReductionOp::Max:
        return std::max(a, b);
      case ReductionOp::Sum:
        return a + b;
    }
    return b;
  }

 private:
  struct Entry {
    ReductionOp op;
    double partial;
  };
  mutable std::mutex m_mutex;
  std::unordered_map<std::string, Entry> m_vars;
};

}  // namespace rmcrt::runtime
