#include "runtime/snapshot.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <thread>
#include <tuple>

#include "amr/migrator.h"
#include "comm/reliable_channel.h"
#include "gpu/gpu_data_warehouse.h"
#include "runtime/data_archiver.h"
#include "util/timers.h"

namespace rmcrt::runtime {

namespace {

/// Identifies a rank blob ("RMCRTSNP" little-endian) before any decoding.
constexpr std::uint64_t kRankBlobMagic = 0x504e535452434d52ull;

// --- flat binary framing (host-endian; snapshots never leave the node) --

void putRaw(std::string& b, const void* p, std::size_t n) {
  b.append(static_cast<const char*>(p), n);
}
void putU8(std::string& b, std::uint8_t v) { putRaw(b, &v, sizeof v); }
void putU32(std::string& b, std::uint32_t v) { putRaw(b, &v, sizeof v); }
void putU64(std::string& b, std::uint64_t v) { putRaw(b, &v, sizeof v); }
void putI32(std::string& b, std::int32_t v) { putRaw(b, &v, sizeof v); }
void putI64(std::string& b, std::int64_t v) { putRaw(b, &v, sizeof v); }
void putString(std::string& b, const std::string& s) {
  putU32(b, static_cast<std::uint32_t>(s.size()));
  putRaw(b, s.data(), s.size());
}
void putRange(std::string& b, const grid::CellRange& r) {
  putI32(b, r.low().x());
  putI32(b, r.low().y());
  putI32(b, r.low().z());
  putI32(b, r.high().x());
  putI32(b, r.high().y());
  putI32(b, r.high().z());
}

/// Bounds-checked sequential decoder: any short read or bad tag latches
/// ok=false and every later getter returns zeros, so callers can decode a
/// whole section and test ok once.
struct Reader {
  const std::string& b;
  std::size_t pos = 0;
  bool ok = true;

  explicit Reader(const std::string& bytes) : b(bytes) {}

  bool need(std::size_t n) {
    if (!ok || b.size() - pos < n) {
      ok = false;
      return false;
    }
    return true;
  }
  void read(void* out, std::size_t n) {
    if (!need(n)) {
      std::memset(out, 0, n);
      return;
    }
    std::memcpy(out, b.data() + pos, n);
    pos += n;
  }
  const char* raw(std::size_t n) {
    if (!need(n)) return nullptr;
    const char* p = b.data() + pos;
    pos += n;
    return p;
  }
  std::uint8_t u8() {
    std::uint8_t v = 0;
    read(&v, sizeof v);
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    read(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    read(&v, sizeof v);
    return v;
  }
  std::int32_t i32() {
    std::int32_t v = 0;
    read(&v, sizeof v);
    return v;
  }
  std::int64_t i64() {
    std::int64_t v = 0;
    read(&v, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    const char* p = raw(n);
    return p ? std::string(p, n) : std::string();
  }
  grid::CellRange range() {
    std::int32_t v[6];
    for (auto& c : v) c = i32();
    return grid::CellRange(IntVector(v[0], v[1], v[2]),
                           IntVector(v[3], v[4], v[5]));
  }
};

// --- DataWarehouse <-> bytes --------------------------------------------

enum : std::uint8_t { kTagDouble = 0, kTagCellType = 1, kTagEmpty = 2 };

template <typename T>
void putCCVar(std::string& b, const grid::CCVariable<T>& v) {
  putRange(b, v.window());
  putRange(b, v.interior());
  putI32(b, v.numGhost());
  putU64(b, static_cast<std::uint64_t>(v.sizeBytes()));
  putRaw(b, v.data(), static_cast<std::size_t>(v.sizeBytes()));
}

void putSlot(std::string& b, const VarSlot& slot) {
  if (const auto* d = std::get_if<grid::CCVariable<double>>(&slot)) {
    putU8(b, kTagDouble);
    putCCVar(b, *d);
  } else if (const auto* c =
                 std::get_if<grid::CCVariable<grid::CellType>>(&slot)) {
    putU8(b, kTagCellType);
    putCCVar(b, *c);
  } else {
    putU8(b, kTagEmpty);
  }
}

void serializeDW(std::string& b, const DataWarehouse& dw) {
  putU64(b, dw.numPatchVars());
  dw.forEachPatchVar(
      [&](const std::string& label, int patchId, const VarSlot& slot) {
        putString(b, label);
        putI32(b, patchId);
        putSlot(b, slot);
      });
  putU64(b, dw.numLevelVars());
  dw.forEachLevelVar(
      [&](const std::string& label, int levelIndex, const VarSlot& slot) {
        putString(b, label);
        putI32(b, levelIndex);
        putSlot(b, slot);
      });
}

template <typename T>
bool readCCVar(Reader& r, grid::CCVariable<T>& out) {
  const grid::CellRange window = r.range();
  const grid::CellRange interior = r.range();
  const int numGhost = r.i32();
  const std::uint64_t nBytes = r.u64();
  if (!r.ok) return false;
  grid::CCVariable<T> v(window, interior, numGhost);
  if (nBytes != static_cast<std::uint64_t>(v.sizeBytes())) {
    r.ok = false;
    return false;
  }
  r.read(v.data(), static_cast<std::size_t>(nBytes));
  if (!r.ok) return false;
  out = std::move(v);
  return true;
}

/// Decode one warehouse section. \p patchInto / \p levelInto receive the
/// variables; either may be null to parse-and-discard (the elastic path
/// keeps only newDW patch vars).
bool deserializeDW(Reader& r, DataWarehouse* patchInto,
                   DataWarehouse* levelInto) {
  const std::uint64_t nPatch = r.u64();
  for (std::uint64_t i = 0; r.ok && i < nPatch; ++i) {
    const std::string label = r.str();
    const int id = r.i32();
    const std::uint8_t tag = r.u8();
    if (tag == kTagEmpty) continue;
    if (tag == kTagDouble) {
      grid::CCVariable<double> v;
      if (!readCCVar(r, v)) return false;
      if (patchInto) patchInto->put(label, id, std::move(v));
    } else if (tag == kTagCellType) {
      grid::CCVariable<grid::CellType> v;
      if (!readCCVar(r, v)) return false;
      if (patchInto) patchInto->put(label, id, std::move(v));
    } else {
      r.ok = false;
    }
  }
  const std::uint64_t nLevel = r.u64();
  for (std::uint64_t i = 0; r.ok && i < nLevel; ++i) {
    const std::string label = r.str();
    const int lvl = r.i32();
    const std::uint8_t tag = r.u8();
    if (tag == kTagEmpty) continue;
    if (tag == kTagDouble) {
      grid::CCVariable<double> v;
      if (!readCCVar(r, v)) return false;
      if (levelInto) levelInto->putLevel(label, lvl, std::move(v));
    } else if (tag == kTagCellType) {
      grid::CCVariable<grid::CellType> v;
      if (!readCCVar(r, v)) return false;
      if (levelInto) levelInto->putLevel(label, lvl, std::move(v));
    } else {
      r.ok = false;
    }
  }
  return r.ok;
}

// --- ReliableChannel state <-> bytes ------------------------------------

void serializeChannel(std::string& b, const comm::ReliableChannel& ch) {
  const comm::ReliableChannel::ChannelState cs = ch.saveState();
  putU32(b, static_cast<std::uint32_t>(cs.sendLinks.size()));
  for (const auto& sl : cs.sendLinks) {
    putI32(b, sl.dst);
    putU64(b, sl.nextSeq);
    putU8(b, sl.dead ? 1 : 0);
    putU32(b, static_cast<std::uint32_t>(sl.unacked.size()));
    for (const auto& f : sl.unacked) {
      putU64(b, f.seq);
      putI64(b, f.tag);
      putU64(b, f.bytes.size());
      putRaw(b, f.bytes.data(), f.bytes.size());
    }
  }
  putU32(b, static_cast<std::uint32_t>(cs.recvLinks.size()));
  for (const auto& rl : cs.recvLinks) {
    putI32(b, rl.src);
    putU64(b, rl.cumAck);
    putU32(b, static_cast<std::uint32_t>(rl.ahead.size()));
    for (std::uint64_t s : rl.ahead) putU64(b, s);
  }
}

bool deserializeChannel(Reader& r, comm::ReliableChannel::ChannelState& cs) {
  const std::uint32_t nSend = r.u32();
  for (std::uint32_t i = 0; r.ok && i < nSend; ++i) {
    comm::ReliableChannel::ChannelState::SendLinkState sl;
    sl.dst = r.i32();
    sl.nextSeq = r.u64();
    sl.dead = r.u8() != 0;
    const std::uint32_t nUnacked = r.u32();
    for (std::uint32_t j = 0; r.ok && j < nUnacked; ++j) {
      comm::ReliableChannel::ChannelState::Frame f;
      f.seq = r.u64();
      f.tag = r.i64();
      const std::uint64_t nb = r.u64();
      const char* p = r.raw(static_cast<std::size_t>(nb));
      if (!p) break;
      f.bytes.resize(static_cast<std::size_t>(nb));
      if (nb) std::memcpy(f.bytes.data(), p, static_cast<std::size_t>(nb));
      sl.unacked.push_back(std::move(f));
    }
    cs.sendLinks.push_back(std::move(sl));
  }
  const std::uint32_t nRecv = r.u32();
  for (std::uint32_t i = 0; r.ok && i < nRecv; ++i) {
    comm::ReliableChannel::ChannelState::RecvLinkState rl;
    rl.src = r.i32();
    rl.cumAck = r.u64();
    const std::uint32_t nAhead = r.u32();
    for (std::uint32_t j = 0; r.ok && j < nAhead; ++j)
      rl.ahead.push_back(r.u64());
    cs.recvLinks.push_back(std::move(rl));
  }
  return r.ok;
}

// --- GPU level-database <-> bytes ---------------------------------------

void serializeGpu(std::string& b, const gpu::GpuDataWarehouse& gdw) {
  std::uint64_t n = 0;
  gdw.forEachLevelVar([&](const std::string&, const gpu::DeviceVar&) { ++n; });
  putU64(b, n);
  gdw.forEachLevelVar([&](const std::string& key, const gpu::DeviceVar& dv) {
    putString(b, key);
    putRange(b, dv.window);
    putU64(b, dv.elemSize);
    putU64(b, dv.bytes);
    putRaw(b, dv.devPtr, dv.bytes);
  });
}

bool deserializeGpu(Reader& r, gpu::GpuDataWarehouse* gdw) {
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; r.ok && i < n; ++i) {
    const std::string key = r.str();
    const grid::CellRange window = r.range();
    const std::uint64_t elemSize = r.u64();
    const std::uint64_t nBytes = r.u64();
    if (elemSize == 0 ||
        nBytes != static_cast<std::uint64_t>(window.volume()) * elemSize) {
      r.ok = false;
      return false;
    }
    const char* p = r.raw(static_cast<std::size_t>(nBytes));
    if (!p) return false;
    if (gdw)
      gdw->restoreLevelVarRaw(key, window,
                              static_cast<std::size_t>(elemSize), p);
  }
  return r.ok;
}

// --- rank blob -----------------------------------------------------------

std::string serializeRank(const Snapshot::RankStateView& v, int rank) {
  std::string b;
  putU64(b, kRankBlobMagic);
  putU32(b, kSnapshotFormatVersion);
  putI32(b, rank);
  putU64(b, v.rngState);
  if (v.channel) {
    putU8(b, 1);
    serializeChannel(b, *v.channel);
  } else {
    putU8(b, 0);
  }
  for (const DataWarehouse* dw : {static_cast<const DataWarehouse*>(v.oldDW),
                                  static_cast<const DataWarehouse*>(v.newDW)}) {
    if (dw) {
      putU8(b, 1);
      serializeDW(b, *dw);
    } else {
      putU8(b, 0);
    }
  }
  if (v.gpuDW) {
    putU8(b, 1);
    serializeGpu(b, *v.gpuDW);
  } else {
    putU8(b, 0);
  }
  return b;
}

/// Decode one rank blob. In verbatim mode every section lands in the
/// matching view member; in elastic mode (\p elasticUnion non-null) only
/// newDW patch variables are kept — into the union warehouse — and
/// channel/GPU/RNG sections are parsed and discarded.
bool deserializeRank(const std::string& blob, int expectRank,
                     Snapshot::RankStateView* view,
                     DataWarehouse* elasticUnion) {
  Reader r(blob);
  if (r.u64() != kRankBlobMagic) return false;
  if (r.u32() != kSnapshotFormatVersion) return false;
  if (r.i32() != expectRank) return false;
  const std::uint64_t rng = r.u64();
  if (view) view->rngState = rng;
  if (r.u8() != 0) {
    comm::ReliableChannel::ChannelState cs;
    if (!deserializeChannel(r, cs)) return false;
    if (view && view->channel && !view->channel->restoreState(cs))
      return false;
  }
  DataWarehouse* oldTarget = view ? view->oldDW : nullptr;
  if (r.u8() != 0) {
    if (!deserializeDW(r, oldTarget, oldTarget)) return false;
  }
  DataWarehouse* newTarget = view ? view->newDW : elasticUnion;
  DataWarehouse* newLevelTarget = view ? view->newDW : nullptr;
  if (r.u8() != 0) {
    if (!deserializeDW(r, newTarget, newLevelTarget)) return false;
  }
  if (r.u8() != 0) {
    if (!deserializeGpu(r, view ? view->gpuDW : nullptr)) return false;
  }
  return r.ok;
}

bool writeFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return false;
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return os.good();
}

std::string rankBlobName(int rank) {
  return "rank" + std::to_string(rank) + ".bin";
}

/// Read + checksum-verify one snapshot file against the manifest.
bool loadVerified(const std::string& dir, const SnapshotManifest& man,
                  const std::string& name, std::string& out) {
  if (!readFileBytes(dir + "/" + name, out)) return false;
  return fnv1a(out.data(), out.size()) == man.checksumOf(name);
}

}  // namespace

// --- Snapshot ------------------------------------------------------------

bool Snapshot::save(const std::string& dir, const WorldStateView& world,
                    std::uint64_t* bytesOut) {
  if (!world.grid || world.ranks.empty()) return false;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  // Invalidate any previous snapshot in this directory before touching its
  // files: the manifest is the commit record, so it must go away first and
  // come back last.
  std::filesystem::remove(dir + "/MANIFEST", ec);

  SnapshotManifest man;
  man.step = world.step;
  man.numRanks = static_cast<int>(world.ranks.size());
  man.domainSeed = world.domainSeed;

  if (!DataArchiver::checkpointGrid(dir, *world.grid)) return false;
  std::string gridBytes;
  if (!readFileBytes(dir + "/grid.txt", gridBytes)) return false;
  man.files.emplace_back("grid.txt", fnv1a(gridBytes.data(), gridBytes.size()));
  std::uint64_t total = gridBytes.size();

  for (int r = 0; r < man.numRanks; ++r) {
    const std::string blob =
        serializeRank(world.ranks[static_cast<std::size_t>(r)], r);
    if (!writeFileBytes(dir + "/" + rankBlobName(r), blob)) return false;
    man.files.emplace_back(rankBlobName(r),
                           fnv1a(blob.data(), blob.size()));
    total += blob.size();
  }
  if (!man.save(dir)) return false;
  if (bytesOut) *bytesOut = total;
  return true;
}

bool Snapshot::peek(const std::string& dir, SnapshotManifest& out) {
  return out.load(dir);
}

std::shared_ptr<const grid::Grid> Snapshot::restoreGrid(
    const std::string& dir) {
  SnapshotManifest man;
  if (!man.load(dir)) return nullptr;
  std::string gridBytes;
  if (!loadVerified(dir, man, "grid.txt", gridBytes)) return nullptr;
  return DataArchiver::restoreGrid(dir);
}

bool Snapshot::restore(const std::string& dir, WorldStateView& world) {
  SnapshotManifest man;
  if (!man.load(dir)) return false;
  if (static_cast<int>(world.ranks.size()) != man.numRanks) return false;
  auto g = restoreGrid(dir);
  if (!g) return false;

  // Verify every blob BEFORE mutating any target: a corrupt rank must not
  // leave the world half-restored.
  std::vector<std::string> blobs(static_cast<std::size_t>(man.numRanks));
  for (int r = 0; r < man.numRanks; ++r) {
    if (!loadVerified(dir, man, rankBlobName(r),
                      blobs[static_cast<std::size_t>(r)]))
      return false;
  }

  for (int r = 0; r < man.numRanks; ++r) {
    RankStateView& v = world.ranks[static_cast<std::size_t>(r)];
    if (v.oldDW) v.oldDW->clear();
    if (v.newDW) v.newDW->clear();
    if (v.gpuDW) v.gpuDW->clear();
    if (!deserializeRank(blobs[static_cast<std::size_t>(r)], r, &v, nullptr))
      return false;
  }
  world.grid = std::move(g);
  world.step = man.step;
  world.domainSeed = man.domainSeed;
  return true;
}

bool Snapshot::restoreElastic(const std::string& dir, WorldStateView& world,
                              const grid::LoadBalancer& lb) {
  SnapshotManifest man;
  if (!man.load(dir)) return false;
  if (static_cast<int>(world.ranks.size()) != lb.numRanks()) return false;
  auto g = restoreGrid(dir);
  if (!g) return false;

  // Union of every saved rank's newDW patch variables.
  DataWarehouse unionDW;
  for (int r = 0; r < man.numRanks; ++r) {
    std::string blob;
    if (!loadVerified(dir, man, rankBlobName(r), blob)) return false;
    if (!deserializeRank(blob, r, nullptr, &unionDW)) return false;
  }

  // Which (label, level, type) combinations exist, with every patch of a
  // label mapped through the restored grid to its level.
  std::set<std::tuple<std::string, int, int>> combos;  // label, level, tag
  unionDW.forEachPatchVar(
      [&](const std::string& label, int patchId, const VarSlot& slot) {
        const int lvl = g->levelOfPatch(patchId).index();
        if (std::holds_alternative<grid::CCVariable<double>>(slot))
          combos.emplace(label, lvl, kTagDouble);
        else if (std::holds_alternative<grid::CCVariable<grid::CellType>>(slot))
          combos.emplace(label, lvl, kTagCellType);
      });

  for (auto& rank : world.ranks) {
    if (rank.oldDW) rank.oldDW->clear();
    if (rank.newDW) rank.newDW->clear();
    if (rank.gpuDW) rank.gpuDW->clear();
  }

  // Re-distribute: same grid on both sides, only ownership moves. Ghost
  // margins are not reconstructed (migrated vars are 0-ghost); the resumed
  // pipeline re-stages whatever halo data it requires.
  const amr::Migrator mig(*g, *g);
  for (const auto& [label, lvl, tag] : combos) {
    for (int nr = 0; nr < lb.numRanks(); ++nr) {
      DataWarehouse* dst = world.ranks[static_cast<std::size_t>(nr)].newDW;
      if (!dst) continue;
      const std::vector<int> ids = lb.patchesOf(nr, *g, lvl);
      if (ids.empty()) continue;
      if (tag == kTagDouble) {
        auto vars = mig.migratePatchVar<double>(label, lvl, unionDW, ids);
        for (std::size_t i = 0; i < ids.size(); ++i)
          dst->put(label, ids[i], std::move(vars[i]));
      } else {
        auto vars = mig.migratePatchVar<grid::CellType>(label, lvl, unionDW,
                                                        ids);
        for (std::size_t i = 0; i < ids.size(); ++i)
          dst->put(label, ids[i], std::move(vars[i]));
      }
    }
  }
  world.grid = std::move(g);
  world.step = man.step;
  world.domainSeed = man.domainSeed;
  return true;
}

// --- ReplayJournal -------------------------------------------------------

bool ReplayJournal::save(const std::string& dir) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  std::ofstream os(dir + "/JOURNAL", std::ios::binary | std::ios::trunc);
  if (!os) return false;
  os << "rmcrt-journal v1\n";
  os << "domainSeed " << domainSeed << "\n";
  os << "ranks " << rankDigests.size() << "\n";
  for (std::size_t r = 0; r < rankDigests.size(); ++r) {
    os << "rank " << r << " " << rankDigests[r].size() << "\n";
    for (const auto& [step, digest] : rankDigests[r])
      os << step << " " << std::hex << digest << std::dec << "\n";
  }
  os << "injector " << injectorState.size() << "\n";
  os.write(injectorState.data(),
           static_cast<std::streamsize>(injectorState.size()));
  return os.good();
}

bool ReplayJournal::load(const std::string& dir) {
  std::ifstream is(dir + "/JOURNAL", std::ios::binary);
  if (!is) return false;
  std::string magic, ver, word;
  if (!(is >> magic >> ver) || magic != "rmcrt-journal" || ver != "v1")
    return false;
  if (!(is >> word >> domainSeed) || word != "domainSeed") return false;
  std::size_t nRanks = 0;
  if (!(is >> word >> nRanks) || word != "ranks") return false;
  rankDigests.assign(nRanks, {});
  for (std::size_t r = 0; r < nRanks; ++r) {
    std::size_t rr = 0, n = 0;
    if (!(is >> word >> rr >> n) || word != "rank" || rr != r) return false;
    rankDigests[r].reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      int step = 0;
      std::uint64_t digest = 0;
      if (!(is >> step >> std::hex >> digest >> std::dec)) return false;
      rankDigests[r].emplace_back(step, digest);
    }
  }
  std::size_t nInj = 0;
  if (!(is >> word >> nInj) || word != "injector") return false;
  is.get();  // the newline after the count
  injectorState.resize(nInj);
  if (nInj) {
    is.read(injectorState.data(), static_cast<std::streamsize>(nInj));
    if (static_cast<std::size_t>(is.gcount()) != nInj) return false;
  }
  return true;
}

// --- WorldHarness --------------------------------------------------------

WorldHarness::WorldHarness(HarnessConfig cfg) : m_cfg(std::move(cfg)) {
  m_grid = m_cfg.grid;
  buildWorld(m_cfg.numRanks, /*attachInjector=*/true);
}

WorldHarness::~WorldHarness() {
  // Schedulers (and their reliable channels) must die before the
  // communicator they are wired to.
  m_scheds.clear();
  m_world.reset();
}

void WorldHarness::buildWorld(int numRanks, bool attachInjector) {
  m_scheds.clear();
  m_world.reset();
  m_world = std::make_unique<comm::Communicator>(numRanks);
  if (attachInjector && m_cfg.injector)
    m_world->setFaultInjector(m_cfg.injector);
  double timeout = m_cfg.collectiveTimeoutSeconds;
  if (timeout <= 0.0 && m_cfg.killRank >= 0) timeout = 10.0;
  if (timeout > 0.0) m_world->setCollectiveTimeout(timeout);

  // Cost-weighted Morton partition with patch cell volume as the cost
  // model: deterministic for a given grid, so every restore onto the same
  // rank count reproduces the exact ownership the snapshot was taken
  // under.
  std::vector<double> costs(static_cast<std::size_t>(m_grid->numPatches()));
  for (int pid = 0; pid < m_grid->numPatches(); ++pid)
    costs[static_cast<std::size_t>(pid)] =
        static_cast<double>(m_grid->patchById(pid)->cells().volume());
  m_lb = std::make_shared<grid::LoadBalancer>(*m_grid, numRanks, costs,
                                              grid::LbStrategy::Morton);

  m_rngs.clear();
  for (int r = 0; r < numRanks; ++r) {
    m_scheds.push_back(std::make_unique<Scheduler>(
        m_grid, m_lb, *m_world, r, RequestContainer::WaitFreePool,
        m_cfg.sched));
    m_rngs.emplace_back(m_cfg.domainSeed +
                        0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(r) + 1));
  }
}

Snapshot::WorldStateView WorldHarness::makeView(int step) {
  Snapshot::WorldStateView w;
  w.step = step;
  w.domainSeed = m_cfg.domainSeed;
  w.grid = m_grid;
  for (std::size_t r = 0; r < m_scheds.size(); ++r) {
    Snapshot::RankStateView v;
    v.oldDW = &m_scheds[r]->oldDW();
    v.newDW = &m_scheds[r]->newDW();
    v.channel = m_scheds[r]->channel();
    v.rngState = m_rngs[r].state();
    w.ranks.push_back(v);
  }
  return w;
}

std::uint64_t WorldHarness::digestRank(int rank) const {
  const int lvl =
      m_cfg.digestLevel < 0 ? m_grid->numLevels() - 1 : m_cfg.digestLevel;
  DataWarehouse& dw = m_scheds[static_cast<std::size_t>(rank)]->newDW();
  std::uint64_t h = 0xcbf29ce484222325ull;
  std::vector<int> ids = m_lb->patchesOf(rank, *m_grid, lvl);
  std::sort(ids.begin(), ids.end());
  for (int pid : ids) {
    if (!dw.exists(m_cfg.digestLabel, pid)) continue;
    const auto& v = dw.get<double>(m_cfg.digestLabel, pid);
    h = fnv1a(&pid, sizeof pid, h);
    h = fnv1a(v.data(), static_cast<std::size_t>(v.sizeBytes()), h);
  }
  return h;
}

void WorldHarness::maybeSnapshot(int step, int rank, HarnessResult& result) {
  if (m_cfg.snapshotEvery <= 0 || m_cfg.snapshotDir.empty()) return;
  if ((step + 1) % m_cfg.snapshotEvery != 0) return;
  // Double barrier: every scheduler is quiescent between the barriers, so
  // rank 0 can serialize the whole cluster without racing anyone.
  m_world->barrier(rank);
  if (rank == 0) {
    const std::string dir =
        m_cfg.snapshotDir + "/snap" + std::to_string(step);
    Timer t;
    std::uint64_t bytes = 0;
    if (Snapshot::save(dir, makeView(step), &bytes)) {
      m_lastSnapshotPath = dir;
      m_lastSnapshotStep = step;
      ++result.snapshots;
      result.snapshotBytes += bytes;
      result.snapshotSeconds += t.seconds();
      result.lastSnapshotStep = step;
    }
  }
  m_world->barrier(rank);
}

HarnessResult WorldHarness::run() {
  HarnessResult result;

  ReplayJournal journal;
  bool replaying = false;
  if (!m_cfg.replayDir.empty()) {
    if (!journal.load(m_cfg.replayDir)) return result;
    replaying = true;
    if (m_cfg.injector && !journal.injectorState.empty())
      m_cfg.injector->restoreState(journal.injectorState);
  }
  // Capture the injector's decision state BEFORE any traffic perturbs it:
  // this is what a later --replay run restores to reproduce the faults.
  std::string recordedInjector;
  if (!m_cfg.recordDir.empty() && m_cfg.injector)
    recordedInjector = m_cfg.injector->saveState();

  int firstStep = 0;
  if (!m_cfg.restoreDir.empty()) {
    SnapshotManifest man;
    auto g = Snapshot::restoreGrid(m_cfg.restoreDir);
    if (!g || !Snapshot::peek(m_cfg.restoreDir, man)) return result;
    m_grid = std::move(g);
    buildWorld(m_cfg.numRanks, /*attachInjector=*/true);
    Snapshot::WorldStateView view = makeView(-1);
    if (m_cfg.numRanks == man.numRanks) {
      if (!Snapshot::restore(m_cfg.restoreDir, view)) return result;
      for (int r = 0; r < m_cfg.numRanks; ++r)
        m_rngs[static_cast<std::size_t>(r)] = Rng::fromState(
            view.ranks[static_cast<std::size_t>(r)].rngState);
    } else {
      if (!Snapshot::restoreElastic(m_cfg.restoreDir, view, *m_lb))
        return result;
    }
    m_lastSnapshotPath = m_cfg.restoreDir;
    m_lastSnapshotStep = man.step;
    firstStep = man.step + 1;
  }
  for (int attempt = 0; attempt < 8; ++attempt) {
    const int R = numRanks();
    const int stepsLeft = m_cfg.steps - firstStep;
    if (stepsLeft <= 0) break;

    std::vector<std::vector<TimestepRecord>> records(
        static_cast<std::size_t>(R));
    std::vector<std::vector<std::pair<int, std::uint64_t>>> digests(
        static_cast<std::size_t>(R));
    std::vector<int> deadRanks;
    std::mutex failMutex;
    std::exception_ptr fatal;  // ReplayDivergence etc: rethrown to caller
    std::atomic<bool> anyFailure{false};

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(R));
    for (int r = 0; r < R; ++r) {
      threads.emplace_back([&, r] {
        try {
          SimulationController ctl(*m_scheds[static_cast<std::size_t>(r)],
                                   m_cfg.registerRadiation,
                                   m_cfg.registerCarryForward);
          ctl.setRadiationInterval(m_cfg.radiationInterval);
          ctl.setPreStepHook([&, r](int step) {
            if (!m_killDone && r == m_cfg.killRank &&
                step == m_cfg.killAtStep && m_cfg.injector) {
              // Silence every link touching this rank, then vanish.
              m_cfg.injector->killRank(r);
              throw RankKilled(r, step);
            }
          });
          ctl.setStepDigest([this, r](int) { return digestRank(r); });
          ctl.setRecordSink(&digests[static_cast<std::size_t>(r)]);
          if (replaying &&
              static_cast<std::size_t>(r) < journal.rankDigests.size())
            ctl.setReplayReference(
                journal.rankDigests[static_cast<std::size_t>(r)]);
          ctl.setPostStepHook([&, r](int step) {
            // One auxiliary stream draw per completed step: the restored
            // counter must resume exactly here.
            m_rngs[static_cast<std::size_t>(r)].nextU64();
            maybeSnapshot(step, r, result);
          });
          records[static_cast<std::size_t>(r)] = ctl.run(firstStep, stepsLeft);
        } catch (const RankKilled& k) {
          std::lock_guard<std::mutex> lk(failMutex);
          deadRanks.push_back(k.rank());
          anyFailure.store(true);
        } catch (const TimestepStalled& ts) {
          std::lock_guard<std::mutex> lk(failMutex);
          for (const auto& s : ts.suspects())
            if (s.dead) deadRanks.push_back(s.rank);
          anyFailure.store(true);
        } catch (const comm::CommAborted&) {
          anyFailure.store(true);
        } catch (...) {
          // Replay divergence or an unexpected error: fatal for the whole
          // run, not a recoverable rank loss.
          {
            std::lock_guard<std::mutex> lk(failMutex);
            if (!fatal) fatal = std::current_exception();
          }
          anyFailure.store(true);
          m_world->abort("harness rank " + std::to_string(r) + " failed");
        }
      });
    }
    for (auto& t : threads) t.join();
    if (fatal) std::rethrow_exception(fatal);

    if (!anyFailure.load()) {
      result.completed = true;
      result.finalRanks = R;
      result.records = std::move(records);
      result.digests = std::move(digests);
      break;
    }
    if (!m_cfg.autoRecover) {
      result.finalRanks = R;
      return result;
    }

    // --- recovery: drop the dead ranks, restore, resume -----------------
    ++result.recoveries;
    m_killDone = true;
    std::sort(deadRanks.begin(), deadRanks.end());
    deadRanks.erase(std::unique(deadRanks.begin(), deadRanks.end()),
                    deadRanks.end());
    if (deadRanks.empty() && m_cfg.killRank >= 0)
      deadRanks.push_back(m_cfg.killRank);  // victim died before reporting
    const int newR = R - static_cast<int>(deadRanks.size());
    if (newR < 1) return result;

    if (m_lastSnapshotPath.empty()) {
      // No checkpoint yet: rebuild the survivors and restart from step 0.
      buildWorld(newR, /*attachInjector=*/false);
      firstStep = 0;
      continue;
    }
    auto g = Snapshot::restoreGrid(m_lastSnapshotPath);
    SnapshotManifest man;
    if (!g || !Snapshot::peek(m_lastSnapshotPath, man)) return result;
    m_grid = std::move(g);
    buildWorld(newR, /*attachInjector=*/false);
    Snapshot::WorldStateView view = makeView(-1);
    if (newR == man.numRanks) {
      if (!Snapshot::restore(m_lastSnapshotPath, view)) return result;
      for (int r = 0; r < newR; ++r)
        m_rngs[static_cast<std::size_t>(r)] = Rng::fromState(
            view.ranks[static_cast<std::size_t>(r)].rngState);
    } else {
      if (!Snapshot::restoreElastic(m_lastSnapshotPath, view, *m_lb))
        return result;
    }
    firstStep = man.step + 1;
  }

  if (result.completed && !m_cfg.recordDir.empty()) {
    journal.domainSeed = m_cfg.domainSeed;
    journal.injectorState = recordedInjector;
    journal.rankDigests = result.digests;
    journal.save(m_cfg.recordDir);
  }
  return result;
}

}  // namespace rmcrt::runtime
