#pragma once

/// \file task.h
/// Uintah-style task declaration: a named computation over the patches of
/// one level, with declared requires (inputs, possibly with ghost cells or
/// a whole-level halo) and computes (outputs). The scheduler compiles the
/// declarations into per-patch DetailedTasks and the message list that
/// satisfies the remote requires.

#include <functional>
#include <string>
#include <vector>

#include "grid/grid.h"
#include "runtime/data_warehouse.h"

namespace rmcrt {
class ThreadPool;
}

namespace rmcrt::runtime {

/// Variable payload type, needed by the scheduler to pack/unpack messages.
enum class VarType { Double, CellTypeVar };

/// What a task needs before it can run on a patch.
struct Requires {
  std::string label;
  VarType type = VarType::Double;
  /// Level the data lives on (absolute level index).
  int level = 0;
  /// Ghost cells needed around the patch (same-level halo exchange).
  int numGhost = 0;
  /// The paper's "infinite ghost cells": the task needs the variable over
  /// the ENTIRE level (coarse radiation data). Triggers whole-level
  /// replication instead of halo exchange.
  bool wholeLevel = false;
  /// Read the previous timestep's DataWarehouse instead of this one.
  bool fromOldDW = false;
};

/// What a task produces on each of its patches.
struct Computes {
  std::string label;
  VarType type = VarType::Double;
  /// Ghost margin to allocate with the output (usually 0).
  int numGhost = 0;
};

/// Execution context handed to a task's action for one patch.
struct TaskContext {
  int rank;
  const grid::Grid* grid;
  const grid::Patch* patch;  ///< the patch to operate on
  DataWarehouse* oldDW;      ///< previous timestep state
  DataWarehouse* newDW;      ///< this timestep's results
  /// Worker pool for intra-task parallelism (tiled tracing), when the
  /// scheduler was configured with one. Task actions run on the scheduler
  /// thread; only loops inside an action fan out here, so patch-level
  /// execution and intra-patch tiles share one set of execution slots
  /// without oversubscription. nullptr = run serially.
  ThreadPool* pool = nullptr;

  /// Staged same-level data with \p numGhost ghost cells (window clipped
  /// to the level extent) — matches the scheduler's staging key for a
  /// Requires{label, numGhost}.
  template <typename T>
  const grid::CCVariable<T>& getGhosted(const std::string& label,
                                        int numGhost,
                                        bool fromOld = false) const {
    const grid::Level& level = grid->level(patch->levelIndex());
    const grid::CellRange window =
        patch->ghostWindow(numGhost).intersect(level.cells());
    return (fromOld ? oldDW : newDW)
        ->getRegion<T>(label, patch->levelIndex(), window);
  }

  /// Staged whole-level data (the "infinite ghost cells" requirement).
  template <typename T>
  const grid::CCVariable<T>& getWholeLevel(const std::string& label,
                                           int levelIndex,
                                           bool fromOld = false) const {
    const grid::CellRange window = grid->level(levelIndex).cells();
    return (fromOld ? oldDW : newDW)->getRegion<T>(label, levelIndex, window);
  }

  /// Staged finer-level data covering this patch (inter-level requires,
  /// e.g. the coarsen task reading the fine CFD mesh).
  template <typename T>
  const grid::CCVariable<T>& getFineRegion(const std::string& label,
                                           int fineLevel, int numGhost = 0,
                                           bool fromOld = false) const {
    grid::CellRange r = patch->cells();
    for (int l = patch->levelIndex() + 1; l <= fineLevel; ++l)
      r = r.refined(grid->level(l).refinementRatio());
    const grid::CellRange window =
        r.grown(numGhost).intersect(grid->level(fineLevel).cells());
    return (fromOld ? oldDW : newDW)->getRegion<T>(label, fineLevel, window);
  }
};

/// A task declaration. Tasks added to the scheduler run as ordered phases;
/// within a phase, per-patch instances run as soon as their own inputs
/// (local copies + remote messages) are satisfied.
class Task {
 public:
  using Action = std::function<void(const TaskContext&)>;

  /// \param name   diagnostic name ("RMCRT::rayTrace")
  /// \param level  absolute index of the level whose patches the task
  ///               visits
  /// \param action per-patch callback
  Task(std::string name, int level, Action action)
      : m_name(std::move(name)), m_level(level), m_action(std::move(action)) {}

  // ("requires" itself is a C++20 keyword, hence addRequires.)
  Task& addRequires(Requires r) {
    m_requires.push_back(std::move(r));
    return *this;
  }
  Task& addComputes(Computes c) {
    m_computes.push_back(std::move(c));
    return *this;
  }

  const std::string& name() const { return m_name; }
  int level() const { return m_level; }
  const std::vector<Requires>& requiresList() const { return m_requires; }
  const std::vector<Computes>& computesList() const { return m_computes; }
  const Action& action() const { return m_action; }

 private:
  std::string m_name;
  int m_level;
  Action m_action;
  std::vector<Requires> m_requires;
  std::vector<Computes> m_computes;
};

}  // namespace rmcrt::runtime
