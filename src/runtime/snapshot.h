#pragma once

/// \file snapshot.h
/// Whole-cluster snapshot, deterministic replay, and rank-loss recovery
/// for the in-process simulated cluster.
///
/// Three layers:
///
///  * Snapshot — serialize EVERY rank's state (both DataWarehouses,
///    ReliableChannel link state, GPU level-database arenas, RNG stream
///    counter) plus the shared grid into a checksummed, versioned
///    directory (see world_state.h), and restore it bit-exactly. Restore
///    also works *elastically* onto a different rank count: the union of
///    all saved patch variables is re-partitioned onto the new ranks
///    through the cost-weighted Morton LoadBalancer and amr::Migrator.
///
///  * ReplayJournal — the record/replay side channel: per-rank per-step
///    state digests plus the FaultInjector's serialized decision state, so
///    any failed window can be re-run from a snapshot with identical
///    RNG/fault streams and verified step-by-step (ReplayDivergence on
///    mismatch).
///
///  * WorldHarness — drives an N-rank world through a timestep run with
///    periodic snapshots, scripted rank kills (FaultInjector::killRank),
///    automatic restore-from-last-snapshot with the lost rank's patches
///    re-partitioned onto survivors, and record/replay wiring. This is the
///    recovery state machine tests, examples, and the snapshot benchmark
///    share.

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "comm/fault_injector.h"
#include "grid/grid.h"
#include "grid/load_balancer.h"
#include "runtime/scheduler.h"
#include "runtime/simulation_controller.h"
#include "runtime/world_state.h"
#include "util/rng.h"

namespace rmcrt::gpu {
class GpuDataWarehouse;
}

namespace rmcrt::runtime {

/// Thrown inside a rank's driver thread to simulate that rank dying:
/// after FaultInjector::killRank silences its links, the throw unwinds
/// the rank out of the timestep loop mid-run.
class RankKilled : public std::runtime_error {
 public:
  RankKilled(int rank, int step)
      : std::runtime_error("rank " + std::to_string(rank) +
                           " killed at step " + std::to_string(step)),
        m_rank(rank),
        m_step(step) {}
  int rank() const { return m_rank; }
  int step() const { return m_step; }

 private:
  int m_rank;
  int m_step;
};

/// Serialize/restore the whole simulated cluster. All functions are
/// static; the caller owns the objects the views point at and guarantees
/// quiescence (no scheduler mid-timestep, no channel traffic in flight)
/// for the duration of the call — the WorldHarness does this with a
/// double barrier at a step boundary.
class Snapshot {
 public:
  /// One rank's live state. Optional members may be null and are then
  /// skipped in both directions.
  struct RankStateView {
    DataWarehouse* oldDW = nullptr;
    DataWarehouse* newDW = nullptr;
    comm::ReliableChannel* channel = nullptr;
    gpu::GpuDataWarehouse* gpuDW = nullptr;
    std::uint64_t rngState = 0;  ///< in (save) / out (restore)
  };

  /// The cluster at one step boundary.
  struct WorldStateView {
    int step = -1;  ///< last completed timestep
    std::uint64_t domainSeed = 0;
    std::shared_ptr<const grid::Grid> grid;
    std::vector<RankStateView> ranks;
  };

  /// Write a snapshot of \p world into directory \p dir (created if
  /// absent): grid.txt, one rank<r>.bin per rank, MANIFEST last. Returns
  /// false on I/O failure; \p bytesOut (optional) receives the total bytes
  /// written.
  static bool save(const std::string& dir, const WorldStateView& world,
                   std::uint64_t* bytesOut = nullptr);

  /// Read just the MANIFEST (validity probe; rank count for elastic
  /// decisions). False when missing/torn/mismatched version.
  static bool peek(const std::string& dir, SnapshotManifest& out);

  /// Rebuild the archived grid, verifying grid.txt against the manifest
  /// checksum. nullptr on any failure.
  static std::shared_ptr<const grid::Grid> restoreGrid(
      const std::string& dir);

  /// Verbatim restore onto the SAME rank count as saved:
  /// world.ranks.size() must equal the manifest's numRanks. Every rank's
  /// DataWarehouses, channel link state, GPU level-database entries and
  /// RNG counter are reloaded exactly; world.step and world.grid are set
  /// from the snapshot. All-or-nothing: any checksum or decode failure
  /// returns false (target warehouses may then be partially cleared but
  /// never partially restored into).
  static bool restore(const std::string& dir, WorldStateView& world);

  /// Elastic restore onto a DIFFERENT rank count: \p lb is the new
  /// partition (over the restored grid — build it via restoreGrid first)
  /// and world.ranks.size() must equal lb.numRanks(). The union of every
  /// saved rank's newDW *patch* variables is re-distributed so each new
  /// rank's newDW holds exactly its lb-owned patches (amr::Migrator
  /// windowed copy; ghost margins are not reconstructed). Channel, GPU,
  /// and RNG state are NOT restored — at a quiescent step boundary they
  /// regenerate, and the saved link topology is meaningless under a new
  /// rank numbering.
  static bool restoreElastic(const std::string& dir, WorldStateView& world,
                             const grid::LoadBalancer& lb);
};

/// The record/replay journal: what a --record run writes and a --replay
/// run verifies against. One digest per (rank, step) — the WorldHarness
/// digests each rank's local divQ bytes — plus the FaultInjector decision
/// state captured BEFORE the run, so replay reproduces the same faults.
struct ReplayJournal {
  std::uint64_t domainSeed = 0;
  std::string injectorState;  ///< FaultInjector::saveState blob (may be "")
  std::vector<std::vector<std::pair<int, std::uint64_t>>> rankDigests;

  bool save(const std::string& dir) const;
  bool load(const std::string& dir);
};

/// Configuration for one WorldHarness run.
struct HarnessConfig {
  std::shared_ptr<const grid::Grid> grid;
  int numRanks = 2;
  int steps = 5;
  int radiationInterval = 1;
  std::uint64_t domainSeed = 71;

  /// Pipeline registration, called identically on every rank (and again
  /// on the rebuilt schedulers after a recovery). Radiation is required.
  std::function<void(Scheduler&)> registerRadiation;
  std::function<void(Scheduler&)> registerCarryForward;

  /// Per-step digest source: FNV over this label's patch bytes on
  /// \p digestLevel (-1 = finest) in the rank's newDW.
  std::string digestLabel = "divQ";
  int digestLevel = -1;

  /// Snapshots: every N completed steps into snapshotDir/snap<step>.
  /// 0 disables.
  std::string snapshotDir;
  int snapshotEvery = 0;

  /// Start the run from this snapshot directory instead of step 0:
  /// verbatim restore when numRanks matches the snapshot, elastic restore
  /// (Snapshot::restoreElastic) otherwise. The run then covers steps
  /// [snapshot step + 1, steps).
  std::string restoreDir;

  /// Scripted rank loss: kill global rank \p killRank at the top of step
  /// \p killAtStep (requires \p injector). -1 disables.
  int killRank = -1;
  int killAtStep = -1;
  /// After a loss, restore from the last snapshot onto the survivors and
  /// finish the run. false: return with completed=false instead.
  bool autoRecover = true;

  /// Record/replay: write the journal into recordDir after the run, or
  /// verify each step against the journal loaded from replayDir.
  std::string recordDir;
  std::string replayDir;

  /// Scheduler resilience knobs (watchdog, channel retry budget).
  SchedulerConfig sched;
  /// Collective timeout so survivors escape the phase-end barrier a dead
  /// rank never reaches. <= 0: defaults to 10 s when a kill is scripted,
  /// otherwise unlimited.
  double collectiveTimeoutSeconds = 0.0;
  std::shared_ptr<comm::FaultInjector> injector;
};

/// What a WorldHarness run produced.
struct HarnessResult {
  bool completed = false;
  int finalRanks = 0;
  int recoveries = 0;

  /// Final (post-recovery) world's per-rank timestep records.
  std::vector<std::vector<TimestepRecord>> records;
  /// Final world's per-rank (step, digest) sequences.
  std::vector<std::vector<std::pair<int, std::uint64_t>>> digests;

  // Snapshot overhead accounting (bench --snapshot-every).
  int snapshots = 0;
  std::uint64_t snapshotBytes = 0;
  double snapshotSeconds = 0.0;
  int lastSnapshotStep = -1;
};

/// Drives an in-process cluster through a run with snapshots, scripted
/// rank loss, auto-recovery, and record/replay. Retains the final world
/// after run() so tests can inspect DataWarehouse contents.
class WorldHarness {
 public:
  explicit WorldHarness(HarnessConfig cfg);
  ~WorldHarness();

  WorldHarness(const WorldHarness&) = delete;
  WorldHarness& operator=(const WorldHarness&) = delete;

  HarnessResult run();

  // Post-run state access (valid until the harness dies).
  int numRanks() const { return static_cast<int>(m_scheds.size()); }
  Scheduler& scheduler(int rank) { return *m_scheds[static_cast<std::size_t>(rank)]; }
  const grid::LoadBalancer& loadBalancer() const { return *m_lb; }
  const grid::Grid& grid() const { return *m_grid; }
  /// The rank's auxiliary RNG stream state (save/restore regression).
  std::uint64_t rngState(int rank) const {
    return m_rngs[static_cast<std::size_t>(rank)].state();
  }

 private:
  void buildWorld(int numRanks, bool attachInjector);
  Snapshot::WorldStateView makeView(int step);
  /// Post-step snapshot under a double barrier: all ranks rendezvous,
  /// rank 0 serializes the quiescent cluster, all ranks rendezvous again.
  void maybeSnapshot(int step, int rank, HarnessResult& result);
  std::uint64_t digestRank(int rank) const;

  HarnessConfig m_cfg;
  std::shared_ptr<const grid::Grid> m_grid;
  std::shared_ptr<const grid::LoadBalancer> m_lb;
  std::unique_ptr<comm::Communicator> m_world;
  std::vector<std::unique_ptr<Scheduler>> m_scheds;
  std::vector<Rng> m_rngs;
  bool m_killDone = false;
  std::string m_lastSnapshotPath;
  int m_lastSnapshotStep = -1;
};

}  // namespace rmcrt::runtime
