#pragma once

/// \file data_archiver.h
/// Checkpoint/restart for DataWarehouse contents — the role Uintah's
/// DataArchiver/UDA plays for production boiler runs (multi-week
/// simulations on Titan survive node failures by restarting from the
/// archived state). Format: one directory per checkpoint holding a text
/// index (variable name, patch id, element kind, window) plus one raw
/// binary blob per variable.

#include <memory>
#include <string>
#include <vector>

#include "grid/grid.h"
#include "runtime/data_warehouse.h"
#include "runtime/task.h"

namespace rmcrt::runtime {

/// What gets archived for one variable.
struct ArchiveEntry {
  std::string label;
  int patchId = -1;  ///< -1 for level variables
  int levelIndex = -1;
  VarType type = VarType::Double;
};

/// Saves/loads a selected set of variables.
class DataArchiver {
 public:
  /// Write the listed patch variables of \p dw for the given patches to
  /// \p directory (created if absent). Returns false on I/O failure or
  /// missing variables.
  static bool checkpoint(const std::string& directory,
                         const DataWarehouse& dw,
                         const std::vector<std::string>& doubleLabels,
                         const std::vector<int>& patchIds);

  /// Restore every archived variable into \p dw (windows and values
  /// exactly as saved). Returns false if the directory or any blob is
  /// missing/corrupt.
  static bool restore(const std::string& directory, DataWarehouse& dw);

  /// List the entries recorded in a checkpoint's index.
  static std::vector<ArchiveEntry> index(const std::string& directory);

  /// Record the grid structure alongside the data: physical bounds and,
  /// per level, the cell extent, refinement ratio, and either the uniform
  /// patch size or (for adaptive levels) every patch box. A checkpoint
  /// taken after a regrid restores onto the regridded patch set, not the
  /// input-file grid — patch ids in the data index are only meaningful
  /// against this structure.
  static bool checkpointGrid(const std::string& directory,
                             const grid::Grid& grid);

  /// Rebuild the archived grid (Grid::makeFromSpec); nullptr if the
  /// directory has no grid record or it is corrupt.
  static std::shared_ptr<const grid::Grid> restoreGrid(
      const std::string& directory);
};

}  // namespace rmcrt::runtime
