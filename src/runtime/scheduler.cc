#include "runtime/scheduler.h"

#include <cassert>
#include <chrono>
#include <map>
#include <sstream>
#include <unordered_set>

#include "util/backoff.h"
#include "util/logger.h"
#include "util/trace_recorder.h"

namespace rmcrt::runtime {

namespace {

/// Invoke f.operator()<T>() for the payload type of a variable.
template <typename F>
void withType(VarType t, F&& f) {
  if (t == VarType::Double)
    f.template operator()<double>();
  else
    f.template operator()<grid::CellType>();
}

/// Deterministic ordered list of (source patch, staged window, overlap)
/// transfers that satisfy requirement \p req for all of \p receiverRank's
/// patches of \p task. Both sender and receiver ranks compute this list
/// identically, so the index of an entry is a collision-free message tag
/// component.
struct TransferEntry {
  int srcPatchId;
  grid::CellRange window;   ///< staged region (receiver side key)
  grid::CellRange overlap;  ///< srcPatch interior ∩ window (the payload)
};

std::vector<TransferEntry> transferList(
    const grid::Grid& grid, const grid::LoadBalancer& lb,
    const Scheduler& sched, const Task& task, const Requires& req,
    int receiverRank) {
  std::vector<TransferEntry> out;
  std::unordered_set<std::string> seen;
  const grid::Level& srcLevel = grid.level(req.level);
  for (int rp : lb.patchesOf(receiverRank, grid, task.level())) {
    const grid::Patch* p = grid.patchById(rp);
    const grid::CellRange window = sched.requiredRegion(task, *p, req);
    for (const auto& o : srcLevel.patchesIntersecting(window)) {
      std::string key = std::to_string(o.patch->id()) + "|" +
                        window.low().toString() + window.high().toString();
      if (seen.insert(std::move(key)).second)
        out.push_back(TransferEntry{o.patch->id(), window, o.region});
    }
  }
  return out;
}

}  // namespace

/// Per-patch execution record for the current phase.
struct Scheduler::PendingTask {
  const grid::Patch* patch = nullptr;
  std::atomic<int> outstanding{0};  ///< staged regions still incomplete
  bool ran = false;
};

Scheduler::Scheduler(std::shared_ptr<const grid::Grid> grid,
                     std::shared_ptr<const grid::LoadBalancer> lb,
                     comm::Communicator& world, int rank,
                     RequestContainer container, SchedulerConfig config)
    : m_grid(std::move(grid)),
      m_lb(std::move(lb)),
      m_world(world),
      m_rank(rank),
      m_config(config),
      m_oldDW(std::make_unique<DataWarehouse>()),
      m_newDW(std::make_unique<DataWarehouse>()),
      m_containerKind(container),
      m_lockedQueue(container == RequestContainer::LockedRacy
                        ? comm::LockedRequestQueue::Mode::Racy
                        : comm::LockedRequestQueue::Mode::Serialized) {
  if (m_config.reliableComm)
    m_channel = std::make_unique<comm::ReliableChannel>(m_world, m_rank,
                                                        m_config.channel);
}

Scheduler::~Scheduler() = default;

void Scheduler::containerAdd(comm::CommNode node) {
  if (m_containerKind == RequestContainer::WaitFreePool)
    m_pool.add(std::move(node));
  else
    m_lockedQueue.add(std::move(node));
}

int Scheduler::containerProcessReady() {
  return m_containerKind == RequestContainer::WaitFreePool
             ? m_pool.processReady()
             : m_lockedQueue.processReady();
}

std::size_t Scheduler::containerPending() const {
  return m_containerKind == RequestContainer::WaitFreePool
             ? m_pool.pending()
             : m_lockedQueue.pending();
}

grid::CellRange Scheduler::requiredRegion(const Task& task,
                                          const grid::Patch& patch,
                                          const Requires& req) const {
  const grid::Level& reqLevel = m_grid->level(req.level);
  if (req.wholeLevel) return reqLevel.cells();
  grid::CellRange region;
  if (req.level == task.level()) {
    region = patch.ghostWindow(req.numGhost);
  } else if (req.level > task.level()) {
    // Finer level: the fine cells covered by this patch.
    grid::CellRange r = patch.cells();
    for (int l = task.level() + 1; l <= req.level; ++l)
      r = r.refined(m_grid->level(l).refinementRatio());
    region = r.grown(req.numGhost);
  } else {
    // Coarser level: the coarse cells covering this patch.
    grid::CellRange r = patch.cells();
    for (int l = task.level(); l > req.level; --l)
      r = r.coarsened(m_grid->level(l).refinementRatio());
    region = r.grown(req.numGhost);
  }
  return region.intersect(reqLevel.cells());
}

void Scheduler::preallocateComputes(const Task& task,
                                    const std::vector<int>& localPatches) {
  for (int pid : localPatches) {
    const grid::Patch* p = m_grid->patchById(pid);
    for (const Computes& c : task.computesList()) {
      withType(c.type, [&]<typename T>() {
        if (!m_newDW->exists(c.label, pid))
          m_newDW->put(c.label, pid, grid::CCVariable<T>(*p, c.numGhost));
      });
    }
  }
}

std::int64_t Scheduler::messageTag(std::size_t phaseIdx, std::size_t reqIdx,
                                   int /*srcPatch*/, int seqIdx) const {
  // (phase, requirement, transfer-sequence) uniquely identifies a message
  // between a given rank pair; sequence indices come from the shared
  // deterministic transfer list.
  return (static_cast<std::int64_t>(phaseIdx) * 64 +
          static_cast<std::int64_t>(reqIdx)) *
             4000000 +
         seqIdx;
}

void Scheduler::stageRequirement(
    std::size_t phaseIdx, std::size_t reqIdx, const Task& task,
    const Requires& req, const std::vector<int>& localPatches,
    std::vector<std::shared_ptr<PendingTask>>& pending) {
  DataWarehouse& dw = dwFor(req);
  const grid::Level& srcLevel = m_grid->level(req.level);

  // 1. Collect the distinct staged windows and which pending tasks wait on
  //    each.
  struct Stage {
    grid::CellRange window;
    std::vector<PendingTask*> waiters;
    std::shared_ptr<std::atomic<int>> remainingMsgs =
        std::make_shared<std::atomic<int>>(0);
  };
  std::vector<Stage> stages;
  auto findStage = [&stages](const grid::CellRange& w) -> Stage* {
    for (auto& s : stages)
      if (s.window == w) return &s;
    return nullptr;
  };
  for (std::size_t i = 0; i < localPatches.size(); ++i) {
    const grid::Patch* p = m_grid->patchById(localPatches[i]);
    const grid::CellRange window = requiredRegion(task, *p, req);
    Stage* s = findStage(window);
    if (!s) {
      stages.push_back(
          Stage{window, {}, std::make_shared<std::atomic<int>>(0)});
      s = &stages.back();
    }
    s->waiters.push_back(pending[i].get());
  }

  // 2. Allocate each staged region, fill the locally-owned pieces, and
  //    post receives for the remote pieces. The transfer list gives the
  //    same sequence numbering the senders use.
  const auto transfers =
      transferList(*m_grid, *m_lb, *this, task, req, m_rank);
  for (Stage& s : stages) {
    withType(req.type, [&]<typename T>() {
      if (!dw.existsRegion(req.label, req.level, s.window))
        dw.putRegion(req.label, req.level,
                     grid::CCVariable<T>(s.window, T{}));
    });
  }
  for (std::size_t seq = 0; seq < transfers.size(); ++seq) {
    const TransferEntry& e = transfers[seq];
    Stage* s = findStage(e.window);
    assert(s && "transfer window not staged");
    const int owner = m_lb->rankOf(e.srcPatchId);
    withType(req.type, [&]<typename T>() {
      auto& staged =
          dw.getRegionModifiable<T>(req.label, req.level, e.window);
      if (owner == m_rank) {
        const auto& src = dw.get<T>(req.label, e.srcPatchId);
        staged.copyRegion(src, e.overlap);
      } else {
        s->remainingMsgs->fetch_add(1, std::memory_order_relaxed);
        const std::size_t bytes =
            static_cast<std::size_t>(e.overlap.volume()) * sizeof(T);
        auto buf = std::make_shared<comm::Buffer>(bytes);
        const std::int64_t tag = messageTag(phaseIdx, reqIdx, e.srcPatchId,
                                            static_cast<int>(seq));
        comm::Request r =
            m_channel
                ? m_channel->postRecv(owner, tag, buf->data(), bytes)
                : m_world.irecv(m_rank, owner, tag, buf->data(), bytes);
        auto* stagedPtr = &staged;
        auto remaining = s->remainingMsgs;
        auto waiters = s->waiters;  // copy: Stage dies before callbacks run
        grid::CellRange overlap = e.overlap;
        containerAdd(comm::CommNode(
            std::move(r),
            [this, stagedPtr, buf, overlap, remaining,
             waiters](const comm::Request& req2) {
              m_stats.messagesReceived++;
              m_stats.bytesReceived += req2.bytes();
              stagedPtr->storage().unpackRegion(
                  overlap, reinterpret_cast<const T*>(buf->data()));
              if (remaining->fetch_sub(1, std::memory_order_acq_rel) == 1) {
                for (PendingTask* w : waiters)
                  w->outstanding.fetch_sub(1, std::memory_order_acq_rel);
              }
            }));
      }
    });
  }
  // 3. Arm the waiter counts for stages with remote pieces. (Done after
  //    posting: our single polling loop only processes completions from
  //    this thread, so no decrement can race ahead of the increments.)
  for (Stage& s : stages) {
    if (s.remainingMsgs->load(std::memory_order_relaxed) > 0) {
      for (PendingTask* w : s.waiters)
        w->outstanding.fetch_add(1, std::memory_order_acq_rel);
    }
  }
}

void Scheduler::postSendsFor(std::size_t phaseIdx, std::size_t reqIdx,
                             const Task& task, const Requires& req) {
  DataWarehouse& dw = dwFor(req);
  for (int r = 0; r < m_world.size(); ++r) {
    if (r == m_rank) continue;
    const auto transfers =
        transferList(*m_grid, *m_lb, *this, task, req, r);
    for (std::size_t seq = 0; seq < transfers.size(); ++seq) {
      const TransferEntry& e = transfers[seq];
      if (m_lb->rankOf(e.srcPatchId) != m_rank) continue;
      withType(req.type, [&]<typename T>() {
        const auto& src = dw.get<T>(req.label, e.srcPatchId);
        const std::size_t n = static_cast<std::size_t>(e.overlap.volume());
        comm::Buffer buf(n * sizeof(T));
        src.storage().packRegion(e.overlap,
                                 reinterpret_cast<T*>(buf.data()));
        const std::int64_t tag = messageTag(phaseIdx, reqIdx, e.srcPatchId,
                                            static_cast<int>(seq));
        if (m_channel)
          m_channel->send(r, tag, buf.data(), buf.size());
        else
          m_world.isend(m_rank, r, tag, buf.data(), buf.size());
        m_stats.messagesSent++;
        m_stats.bytesSent += buf.size();
      });
    }
  }
}

std::vector<TimestepStalled::Suspect> Scheduler::stallSuspects() const {
  std::vector<TimestepStalled::Suspect> suspects;
  if (!m_channel) return suspects;
  std::map<int, std::size_t> bySource;
  for (const auto& [src, tag] : m_channel->pendingRecvs()) ++bySource[src];
  suspects.reserve(bySource.size());
  for (const auto& [src, count] : bySource) {
    TimestepStalled::Suspect s;
    s.rank = src;
    s.pendingRecvs = count;
    // If our own frames to that rank died after the full retry budget it
    // is not merely late with its sends — nothing reaches it at all.
    s.dead = m_channel->linkDead(src);
    suspects.push_back(s);
  }
  return suspects;
}

std::string Scheduler::stallDiagnostic(std::size_t phaseIdx,
                                       std::size_t ranCount,
                                       std::size_t totalTasks,
                                       int strikes) const {
  std::ostringstream os;
  os << "rank " << m_rank << " stalled in phase " << phaseIdx << " ('"
     << m_tasks[phaseIdx].name() << "'): " << ranCount << "/" << totalTasks
     << " patch tasks run, " << containerPending()
     << " requests outstanding, strike " << strikes << "/"
     << m_config.watchdogMaxStrikes;
  if (m_channel) {
    os << "; channel unacked=" << m_channel->unackedCount();
    const auto pendingRecvs = m_channel->pendingRecvs();
    os << ", pending recvs=" << pendingRecvs.size() << " [";
    std::size_t shown = 0;
    for (const auto& [src, tag] : pendingRecvs) {
      if (shown++ == 8) {
        os << " ...";
        break;
      }
      os << " (src " << src << ", tag " << tag << ")";
    }
    os << " ]";
    const auto cs = m_channel->stats();
    os << "; retransmits=" << cs.retransmits
       << " dupsDiscarded=" << cs.duplicatesDiscarded
       << " deadLinks=" << cs.deadLinks;
    for (const auto& s : stallSuspects()) {
      os << "; suspect rank " << s.rank << ": "
         << (s.dead ? "DEAD (send link exhausted retries)"
                    : "SLOW (inputs outstanding, link alive)")
         << ", " << s.pendingRecvs << " pending recvs";
    }
  }
  return os.str();
}

void Scheduler::runPhase(std::size_t phaseIdx) {
  const Task& task = m_tasks[phaseIdx];
  RMCRT_TRACE_SPAN("sched", "phase:" + task.name());
  const std::vector<int> localPatches =
      m_lb->patchesOf(m_rank, *m_grid, task.level());

  preallocateComputes(task, localPatches);

  std::vector<std::shared_ptr<PendingTask>> pending;
  pending.reserve(localPatches.size());
  for (int pid : localPatches) {
    auto pt = std::make_shared<PendingTask>();
    pt->patch = m_grid->patchById(pid);
    pending.push_back(std::move(pt));
  }

  // Post receives (staging) and sends — the paper's "local communication"
  // (time spent posting MPI messages).
  {
    RMCRT_TRACE_SPAN("sched", "post_mpi");
    ScopedTimer timer(m_localCommAcc);
    for (std::size_t ri = 0; ri < task.requiresList().size(); ++ri)
      stageRequirement(phaseIdx, ri, task, task.requiresList()[ri],
                       localPatches, pending);
    for (std::size_t ri = 0; ri < task.requiresList().size(); ++ri)
      postSendsFor(phaseIdx, ri, task, task.requiresList()[ri]);
  }

  // Execute patches as their inputs arrive, overlapping with completion
  // processing of the remaining messages.
  const bool watchdogOn = m_config.watchdogDeadlineSeconds > 0;
  const auto deadline = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(std::chrono::duration<double>(
      watchdogOn ? m_config.watchdogDeadlineSeconds : 0));
  auto lastProgress = std::chrono::steady_clock::now();
  int strikes = 0;
  util::Backoff backoff;
  std::size_t ranCount = 0;
  while (ranCount < pending.size()) {
    if (m_world.aborted()) throw comm::CommAborted(m_world.abortReason());
    if (m_channel) m_channel->progress();
    int processed;
    {
      ScopedTimer timer(m_localCommAcc);
      processed = containerProcessReady();
    }
    bool progress = processed > 0;
    for (auto& pt : pending) {
      if (!pt->ran &&
          pt->outstanding.load(std::memory_order_acquire) == 0) {
        TaskContext ctx{m_rank, m_grid.get(), pt->patch, m_oldDW.get(),
                        m_newDW.get(), m_config.taskPool};
        {
          RMCRT_TRACE_SPAN("sched", "exec:" + task.name());
          ScopedTimer timer(m_taskExecAcc);
          task.action()(ctx);
        }
        pt->ran = true;
        ++ranCount;
        ++m_stats.tasksExecuted;
        progress = true;
      }
    }
    if (progress) {
      lastProgress = std::chrono::steady_clock::now();
      backoff.reset();
      continue;
    }
    if (watchdogOn &&
        std::chrono::steady_clock::now() - lastProgress > deadline) {
      ++strikes;
      ++m_stats.watchdogStrikes;
      RMCRT_TRACE_INSTANT("sched", "watchdog_strike");
      const std::string diag =
          stallDiagnostic(phaseIdx, ranCount, pending.size(), strikes);
      RMCRT_ERROR("watchdog: " << diag);
      if (strikes >= m_config.watchdogMaxStrikes) {
        m_world.abort(diag);
        throw TimestepStalled(diag, stallSuspects());
      }
      // Kick the recovery path before the next strike window.
      if (m_channel) m_channel->forceRetransmit();
      lastProgress = std::chrono::steady_clock::now();
      continue;
    }
    ScopedTimer timer(m_waitAcc);
    backoff.pause();
  }

  // Phase boundary: everyone's sends for this phase have been consumed
  // before the next phase reuses tags.
  {
    RMCRT_TRACE_SPAN("sched", "barrier");
    m_world.barrier(m_rank);
  }
}

void Scheduler::executeTimestep() {
  if (TraceRecorder::global().enabled()) {
    // Group this rank's rows under its own pid in the trace viewer.
    TraceRecorder::global().setThreadPid(m_rank);
    TraceRecorder::global().setThreadName("rank" + std::to_string(m_rank) +
                                          "/scheduler");
  }
  RMCRT_TRACE_SPAN("sched", "timestep");
  for (std::size_t i = 0; i < m_tasks.size(); ++i) runPhase(i);
  m_stats.localCommSeconds = m_localCommAcc.seconds();
  m_stats.taskExecSeconds = m_taskExecAcc.seconds();
  m_stats.waitSeconds = m_waitAcc.seconds();
  if (m_channel) {
    const auto cs = m_channel->stats();
    m_stats.retransmits = cs.retransmits;
    m_stats.duplicatesDiscarded = cs.duplicatesDiscarded;
    m_stats.maxBackoffMs = cs.maxBackoffMs;
  }
}

void Scheduler::exportMetrics(MetricsRegistry& reg,
                              const std::string& prefix) const {
  reg.setGauge(prefix + "local_comm_seconds", m_stats.localCommSeconds);
  reg.setGauge(prefix + "task_exec_seconds", m_stats.taskExecSeconds);
  reg.setGauge(prefix + "wait_seconds", m_stats.waitSeconds);
  reg.setGauge(prefix + "messages_sent",
               static_cast<double>(m_stats.messagesSent));
  reg.setGauge(prefix + "bytes_sent",
               static_cast<double>(m_stats.bytesSent));
  reg.setGauge(prefix + "messages_received",
               static_cast<double>(m_stats.messagesReceived));
  reg.setGauge(prefix + "bytes_received",
               static_cast<double>(m_stats.bytesReceived));
  reg.setGauge(prefix + "tasks_executed",
               static_cast<double>(m_stats.tasksExecuted));
  reg.setGauge(prefix + "watchdog_strikes",
               static_cast<double>(m_stats.watchdogStrikes));
  if (m_channel)
    comm::exportMetrics(m_channel->stats(), reg, prefix + "channel.");
}

void Scheduler::advanceDataWarehouses() {
  std::swap(m_oldDW, m_newDW);
  m_newDW->clear();
}

}  // namespace rmcrt::runtime
