#pragma once

/// \file data_warehouse.h
/// The OnDemand DataWarehouse: per-rank storage of simulation variables
/// keyed by (label, patch) or (label, level). Uintah's DataWarehouse
/// "provides the application the illusion it has access to memory it does
/// not actually own" — tasks read ghost data and whole coarse levels that
/// the scheduler has staged in from other ranks ahead of execution.
///
/// Supported variable payloads: CCVariable<double> and
/// CCVariable<CellType>, covering the RMCRT property set (abskg, sigmaT4,
/// divQ are doubles; cellType is the flow/wall flag).

#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <variant>

#include "grid/variable.h"

namespace rmcrt::runtime {

/// One variable slot (empty until put).
using VarSlot = std::variant<std::monostate, grid::CCVariable<double>,
                             grid::CCVariable<grid::CellType>>;

/// Per-rank variable database. Thread-safe: lookups take a shared lock,
/// insertions an exclusive one. References returned by get() remain valid
/// until the entry is removed or the warehouse cleared (node pointers are
/// stable in the underlying map).
class DataWarehouse {
 public:
  /// --- patch variables -------------------------------------------------

  template <typename T>
  void put(const std::string& label, int patchId, grid::CCVariable<T> var) {
    std::unique_lock lk(m_mutex);
    m_patchVars[key(label, patchId)] = std::move(var);
  }

  /// Read-only access; the variable must exist with matching type.
  template <typename T>
  const grid::CCVariable<T>& get(const std::string& label,
                                 int patchId) const {
    std::shared_lock lk(m_mutex);
    auto it = m_patchVars.find(key(label, patchId));
    assert(it != m_patchVars.end() && "variable not in DataWarehouse");
    return std::get<grid::CCVariable<T>>(it->second);
  }

  /// Mutable access (scheduler staging, computing tasks).
  template <typename T>
  grid::CCVariable<T>& getModifiable(const std::string& label, int patchId) {
    std::shared_lock lk(m_mutex);
    auto it = m_patchVars.find(key(label, patchId));
    assert(it != m_patchVars.end() && "variable not in DataWarehouse");
    return std::get<grid::CCVariable<T>>(
        const_cast<VarSlot&>(it->second));
  }

  bool exists(const std::string& label, int patchId) const {
    std::shared_lock lk(m_mutex);
    return m_patchVars.count(key(label, patchId)) > 0;
  }

  /// --- per-level variables (the GPU-DW "level database" host mirror) ---

  template <typename T>
  void putLevel(const std::string& label, int levelIndex,
                grid::CCVariable<T> var) {
    std::unique_lock lk(m_mutex);
    m_levelVars[levelKey(label, levelIndex)] = std::move(var);
  }

  template <typename T>
  const grid::CCVariable<T>& getLevel(const std::string& label,
                                      int levelIndex) const {
    std::shared_lock lk(m_mutex);
    auto it = m_levelVars.find(levelKey(label, levelIndex));
    assert(it != m_levelVars.end() && "level variable not in DataWarehouse");
    return std::get<grid::CCVariable<T>>(it->second);
  }

  template <typename T>
  grid::CCVariable<T>& getLevelModifiable(const std::string& label,
                                          int levelIndex) {
    std::shared_lock lk(m_mutex);
    auto it = m_levelVars.find(levelKey(label, levelIndex));
    assert(it != m_levelVars.end() && "level variable not in DataWarehouse");
    return std::get<grid::CCVariable<T>>(const_cast<VarSlot&>(it->second));
  }

  bool existsLevel(const std::string& label, int levelIndex) const {
    std::shared_lock lk(m_mutex);
    return m_levelVars.count(levelKey(label, levelIndex)) > 0;
  }

  /// --- staged region variables ------------------------------------------
  /// A region variable is an assembled window of a label's data on one
  /// level, possibly spanning many patches (some remote) — Uintah's
  /// getRegion mechanism, "the illusion [of] access to memory it does not
  /// actually own". The scheduler stages these ahead of task execution;
  /// tasks read them via getRegion with the identical (label, level,
  /// window) key.

  template <typename T>
  void putRegion(const std::string& label, int levelIndex,
                 grid::CCVariable<T> var) {
    std::unique_lock lk(m_mutex);
    m_regionVars[regionKey(label, levelIndex, var.window())] = std::move(var);
  }

  template <typename T>
  const grid::CCVariable<T>& getRegion(const std::string& label,
                                       int levelIndex,
                                       const grid::CellRange& window) const {
    std::shared_lock lk(m_mutex);
    auto it = m_regionVars.find(regionKey(label, levelIndex, window));
    assert(it != m_regionVars.end() && "region not staged in DataWarehouse");
    return std::get<grid::CCVariable<T>>(it->second);
  }

  template <typename T>
  grid::CCVariable<T>& getRegionModifiable(const std::string& label,
                                           int levelIndex,
                                           const grid::CellRange& window) {
    std::shared_lock lk(m_mutex);
    auto it = m_regionVars.find(regionKey(label, levelIndex, window));
    assert(it != m_regionVars.end() && "region not staged in DataWarehouse");
    return std::get<grid::CCVariable<T>>(const_cast<VarSlot&>(it->second));
  }

  bool existsRegion(const std::string& label, int levelIndex,
                    const grid::CellRange& window) const {
    std::shared_lock lk(m_mutex);
    return m_regionVars.count(regionKey(label, levelIndex, window)) > 0;
  }

  /// --- lifecycle --------------------------------------------------------

  /// Drop everything (timestep rollover).
  void clear() {
    std::unique_lock lk(m_mutex);
    m_patchVars.clear();
    m_levelVars.clear();
    m_regionVars.clear();
  }

  /// Total live bytes across all stored variables.
  std::int64_t liveBytes() const {
    std::shared_lock lk(m_mutex);
    std::int64_t total = 0;
    auto add = [&total](const VarSlot& s) {
      if (auto* d = std::get_if<grid::CCVariable<double>>(&s))
        total += d->sizeBytes();
      else if (auto* c = std::get_if<grid::CCVariable<grid::CellType>>(&s))
        total += c->sizeBytes();
    };
    for (const auto& [k, v] : m_patchVars) add(v);
    for (const auto& [k, v] : m_levelVars) add(v);
    for (const auto& [k, v] : m_regionVars) add(v);
    return total;
  }

  std::size_t numPatchVars() const {
    std::shared_lock lk(m_mutex);
    return m_patchVars.size();
  }
  std::size_t numLevelVars() const {
    std::shared_lock lk(m_mutex);
    return m_levelVars.size();
  }

  /// --- enumeration (checkpoint serialization) ---------------------------
  /// Visit every patch variable as f(label, patchId, slot). Labels contain
  /// no '@', so splitting the key at its last "@p" is unambiguous. The
  /// shared lock is held for the whole walk: do not call put() from \p f.
  template <typename F>
  void forEachPatchVar(F&& f) const {
    std::shared_lock lk(m_mutex);
    for (const auto& [k, slot] : m_patchVars) {
      const std::size_t pos = k.rfind("@p");
      f(k.substr(0, pos), std::stoi(k.substr(pos + 2)), slot);
    }
  }

  /// Visit every per-level variable as f(label, levelIndex, slot).
  template <typename F>
  void forEachLevelVar(F&& f) const {
    std::shared_lock lk(m_mutex);
    for (const auto& [k, slot] : m_levelVars) {
      const std::size_t pos = k.rfind("@L");
      f(k.substr(0, pos), std::stoi(k.substr(pos + 2)), slot);
    }
  }

 private:
  static std::string key(const std::string& label, int patchId) {
    return label + "@p" + std::to_string(patchId);
  }
  static std::string levelKey(const std::string& label, int levelIndex) {
    return label + "@L" + std::to_string(levelIndex);
  }
  static std::string regionKey(const std::string& label, int levelIndex,
                               const grid::CellRange& w) {
    return label + "@L" + std::to_string(levelIndex) + "@" +
           w.low().toString() + w.high().toString();
  }

  mutable std::shared_mutex m_mutex;
  std::unordered_map<std::string, VarSlot> m_patchVars;
  std::unordered_map<std::string, VarSlot> m_levelVars;
  std::unordered_map<std::string, VarSlot> m_regionVars;
};

}  // namespace rmcrt::runtime
