#include "runtime/task_graph.h"

#include <algorithm>
#include <deque>
#include <sstream>

namespace rmcrt::runtime {

namespace {

std::string computeKey(const std::string& label, int level) {
  return label + "@L" + std::to_string(level);
}

}  // namespace

TaskGraph::TaskGraph(const std::vector<Task>& tasks) : m_tasks(tasks) {
  // Index producers by (label, level).
  std::map<std::string, std::size_t> producerOf;
  for (std::size_t i = 0; i < m_tasks.size(); ++i) {
    for (const Computes& c : m_tasks[i].computesList()) {
      const std::string key = computeKey(c.label, m_tasks[i].level());
      auto [it, inserted] = producerOf.emplace(key, i);
      if (!inserted) {
        // Re-computing a label in a later task (e.g. carryForward then
        // overwrite) is legal Uintah practice only across timesteps; in
        // one graph it is a declaration error.
        m_diagnostics.push_back(GraphDiagnostic{
            GraphDiagnostic::Kind::DuplicateCompute,
            key + " computed by both '" + m_tasks[it->second].name() +
                "' and '" + m_tasks[i].name() + "'"});
      }
    }
  }

  // Edges from requires.
  for (std::size_t i = 0; i < m_tasks.size(); ++i) {
    for (const Requires& r : m_tasks[i].requiresList()) {
      if (r.fromOldDW) continue;  // satisfied by the previous timestep
      const std::string key = computeKey(r.label, r.level);
      auto it = producerOf.find(key);
      if (it == producerOf.end()) {
        m_diagnostics.push_back(GraphDiagnostic{
            GraphDiagnostic::Kind::MissingProducer,
            "task '" + m_tasks[i].name() + "' requires " + key +
                " which no task computes"});
        continue;
      }
      if (it->second == i) continue;  // self-dependency via modifies: skip
      m_edges.push_back(TaskEdge{it->second, i, r.label,
                                 r.level != m_tasks[i].level()});
    }
  }

  // Kahn topological sort.
  std::vector<int> inDegree(m_tasks.size(), 0);
  std::vector<std::vector<std::size_t>> out(m_tasks.size());
  for (const TaskEdge& e : m_edges) {
    // Duplicate edges (several labels between same pair) inflate the
    // degree; that's fine for Kahn.
    ++inDegree[e.consumer];
    out[e.producer].push_back(e.consumer);
  }
  std::deque<std::size_t> ready;
  for (std::size_t i = 0; i < m_tasks.size(); ++i)
    if (inDegree[i] == 0) ready.push_back(i);
  while (!ready.empty()) {
    const std::size_t t = ready.front();
    ready.pop_front();
    m_order.push_back(t);
    for (std::size_t c : out[t])
      if (--inDegree[c] == 0) ready.push_back(c);
  }
  if (m_order.size() != m_tasks.size()) {
    m_diagnostics.push_back(GraphDiagnostic{GraphDiagnostic::Kind::Cycle,
                                            "dependency cycle detected"});
    m_order.clear();
  }
}

bool TaskGraph::valid() const {
  for (const auto& d : m_diagnostics) {
    if (d.kind == GraphDiagnostic::Kind::MissingProducer ||
        d.kind == GraphDiagnostic::Kind::Cycle) {
      return false;
    }
  }
  return true;
}

bool TaskGraph::declaredOrderIsValid() const {
  if (!valid()) return false;
  for (const TaskEdge& e : m_edges)
    if (e.producer > e.consumer) return false;
  return true;
}

std::vector<TaskCommEstimate> TaskGraph::estimateCommunication(
    const grid::Grid& grid, const grid::LoadBalancer& lb, int rank) const {
  std::vector<TaskCommEstimate> out;
  for (std::size_t i = 0; i < m_tasks.size(); ++i) {
    const Task& t = m_tasks[i];
    TaskCommEstimate est;
    est.taskIndex = i;
    est.taskName = t.name();
    const auto localPatches = lb.patchesOf(rank, grid, t.level());
    for (const Requires& r : t.requiresList()) {
      const grid::Level& srcLevel = grid.level(r.level);
      std::set<std::string> seen;
      for (int pid : localPatches) {
        const grid::Patch* p = grid.patchById(pid);
        // Reproduce Scheduler::requiredRegion geometry.
        grid::CellRange region;
        if (r.wholeLevel) {
          region = srcLevel.cells();
        } else if (r.level == t.level()) {
          region = p->ghostWindow(r.numGhost).intersect(srcLevel.cells());
        } else if (r.level > t.level()) {
          grid::CellRange g = p->cells();
          for (int l = t.level() + 1; l <= r.level; ++l)
            g = g.refined(grid.level(l).refinementRatio());
          region = g.grown(r.numGhost).intersect(srcLevel.cells());
        } else {
          grid::CellRange g = p->cells();
          for (int l = t.level(); l > r.level; --l)
            g = g.coarsened(grid.level(l).refinementRatio());
          region = g.grown(r.numGhost).intersect(srcLevel.cells());
        }
        for (const auto& o : srcLevel.patchesIntersecting(region)) {
          if (lb.rankOf(o.patch->id()) == rank) continue;
          const std::string key =
              std::to_string(o.patch->id()) + "|" +
              region.low().toString() + region.high().toString();
          if (!seen.insert(key).second) continue;
          est.recvMessagesPerRank += 1;
          const double elemBytes =
              r.type == VarType::Double ? 8.0 : 4.0;
          est.recvBytesPerRank +=
              static_cast<double>(o.region.volume()) * elemBytes;
        }
      }
    }
    out.push_back(est);
  }
  return out;
}

std::string TaskGraph::toDot() const {
  std::ostringstream os;
  os << "digraph taskgraph {\n  rankdir=LR;\n";
  for (std::size_t i = 0; i < m_tasks.size(); ++i) {
    os << "  t" << i << " [label=\"" << m_tasks[i].name() << "\\nL"
       << m_tasks[i].level() << "\", shape=box];\n";
  }
  // Merge parallel edges (same pair) into one label list.
  std::map<std::pair<std::size_t, std::size_t>, std::vector<std::string>>
      merged;
  for (const TaskEdge& e : m_edges)
    merged[{e.producer, e.consumer}].push_back(e.label);
  for (const auto& [pc, labels] : merged) {
    os << "  t" << pc.first << " -> t" << pc.second << " [label=\"";
    for (std::size_t k = 0; k < labels.size(); ++k)
      os << (k ? "," : "") << labels[k];
    os << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace rmcrt::runtime
