#pragma once

/// \file task_graph.h
/// Task-graph compilation and analysis — the front half of Uintah's
/// scheduler ("Uintah is unique in its ... use of a directed acyclic
/// graph (DAG) approach", paper Section II). Given the declared tasks,
/// the compiler:
///
///  * builds producer->consumer edges from matching computes/requires
///    labels (same level, or cross-level for coarsen-style requires);
///  * validates the declarations (every require has a producer or comes
///    from the old DataWarehouse; no label is computed twice on a level;
///    no dependency cycles);
///  * emits a topological phase order (the execution order the
///    phase-based Scheduler runs) and per-task metadata: which
///    requirements cross rank boundaries, estimated message counts;
///  * can render the graph as Graphviz DOT for documentation/debugging.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "grid/grid.h"
#include "grid/load_balancer.h"
#include "runtime/task.h"

namespace rmcrt::runtime {

/// One compiled edge: consumer task depends on producer task.
struct TaskEdge {
  std::size_t producer;  ///< index into the task list
  std::size_t consumer;
  std::string label;  ///< variable carrying the dependency
  bool interLevel = false;
};

/// Problems found during compilation.
struct GraphDiagnostic {
  enum class Kind {
    MissingProducer,   ///< require with no computing task (and not OldDW)
    DuplicateCompute,  ///< two tasks compute the same (label, level)
    Cycle,             ///< dependency cycle
  };
  Kind kind;
  std::string detail;
};

/// Per-task communication estimate for a given decomposition.
struct TaskCommEstimate {
  std::size_t taskIndex = 0;
  std::string taskName;
  /// Messages one rank receives to satisfy this task's requires.
  double recvMessagesPerRank = 0;
  double recvBytesPerRank = 0;
};

/// The compiled graph.
class TaskGraph {
 public:
  /// Compile \p tasks. Diagnostics are collected rather than thrown;
  /// valid() is false if any MissingProducer/Cycle was found.
  explicit TaskGraph(const std::vector<Task>& tasks);

  bool valid() const;
  const std::vector<GraphDiagnostic>& diagnostics() const {
    return m_diagnostics;
  }
  const std::vector<TaskEdge>& edges() const { return m_edges; }

  /// Topological execution order (task indices). Empty if cyclic.
  const std::vector<std::size_t>& executionOrder() const { return m_order; }

  /// True if the declared order (task list order) already respects all
  /// dependencies — the condition for the phase-based Scheduler to be
  /// correct as declared.
  bool declaredOrderIsValid() const;

  /// Estimate per-rank message counts/volumes per task for a concrete
  /// grid + load balance (uses the same transfer enumeration the
  /// Scheduler executes).
  std::vector<TaskCommEstimate> estimateCommunication(
      const grid::Grid& grid, const grid::LoadBalancer& lb, int rank) const;

  /// Graphviz DOT rendering of tasks and labeled edges.
  std::string toDot() const;

 private:
  const std::vector<Task>& tasksRef() const { return m_tasks; }

  std::vector<Task> m_tasks;  // copy: graphs outlive builders in tests
  std::vector<TaskEdge> m_edges;
  std::vector<GraphDiagnostic> m_diagnostics;
  std::vector<std::size_t> m_order;
};

}  // namespace rmcrt::runtime
