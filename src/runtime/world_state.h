#pragma once

/// \file world_state.h
/// On-disk framing for whole-cluster snapshots: the format version, the
/// FNV-1a checksum every blob is verified against, and the MANIFEST that
/// ties a snapshot directory together. A snapshot directory holds
///
///   grid.txt        — grid structure (DataArchiver::checkpointGrid)
///   rank<r>.bin     — one binary blob per rank (see snapshot.cc)
///   MANIFEST        — written LAST: version, step, rank count, domain
///                     seed, and the checksum of every other file
///
/// The manifest-last discipline makes torn snapshots self-identifying: a
/// crash mid-save leaves a directory with no (or truncated) MANIFEST, and
/// loaders reject it without inspecting the blobs. Any blob whose checksum
/// disagrees with the manifest likewise fails the whole load — a snapshot
/// restores completely or not at all.

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace rmcrt::runtime {

/// Bump when the rank-blob or manifest layout changes; loaders reject
/// other versions outright rather than guessing.
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

/// FNV-1a over a byte range, chainable via \p h.
inline std::uint64_t fnv1a(const void* data, std::size_t n,
                           std::uint64_t h = 0xcbf29ce484222325ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

/// The snapshot directory's table of contents.
struct SnapshotManifest {
  std::uint32_t version = kSnapshotFormatVersion;
  int step = -1;        ///< last completed timestep the snapshot captures
  int numRanks = 0;
  std::uint64_t domainSeed = 0;
  /// (file name, FNV-1a of its bytes) for every file in the directory.
  std::vector<std::pair<std::string, std::uint64_t>> files;

  std::uint64_t checksumOf(const std::string& name) const {
    for (const auto& [n, c] : files)
      if (n == name) return c;
    return 0;
  }

  /// Write the MANIFEST file. Call only after every listed file is on
  /// disk — the manifest's existence is the snapshot's commit record.
  bool save(const std::string& dir) const {
    std::ofstream os(dir + "/MANIFEST");
    if (!os) return false;
    os << "rmcrt-snapshot v" << version << "\n";
    os << "step " << step << "\n";
    os << "numRanks " << numRanks << "\n";
    os << "domainSeed " << domainSeed << "\n";
    os << "files " << files.size() << "\n";
    for (const auto& [name, sum] : files)
      os << name << " " << std::hex << sum << std::dec << "\n";
    return os.good();
  }

  /// Parse a MANIFEST; false on absence, truncation, or version mismatch.
  bool load(const std::string& dir) {
    std::ifstream is(dir + "/MANIFEST");
    if (!is) return false;
    std::string magic, ver, word;
    if (!(is >> magic >> ver) || magic != "rmcrt-snapshot") return false;
    // Piecewise compare: GCC 12's -Wrestrict trips a false positive on
    // the inlined "v" + to_string concatenation.
    if (ver.empty() || ver.front() != 'v' ||
        ver.compare(1, std::string::npos,
                    std::to_string(kSnapshotFormatVersion)) != 0)
      return false;
    version = kSnapshotFormatVersion;
    if (!(is >> word >> step) || word != "step") return false;
    if (!(is >> word >> numRanks) || word != "numRanks") return false;
    if (!(is >> word >> domainSeed) || word != "domainSeed") return false;
    std::size_t n = 0;
    if (!(is >> word >> n) || word != "files") return false;
    files.clear();
    for (std::size_t i = 0; i < n; ++i) {
      std::string name;
      std::uint64_t sum;
      if (!(is >> name >> std::hex >> sum >> std::dec)) return false;
      files.emplace_back(std::move(name), sum);
    }
    return true;
  }
};

/// Read a whole file into \p out and return true; false when unreadable.
inline bool readFileBytes(const std::string& path, std::string& out) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  std::ostringstream buf;
  buf << is.rdbuf();
  out = buf.str();
  return true;
}

}  // namespace rmcrt::runtime
