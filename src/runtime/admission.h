#pragma once

/// \file admission.h
/// Scheduler-side admission control for the radiation service (DESIGN.md
/// §16): a bounded in-flight budget with per-tenant fairness caps and
/// typed overload shedding. The controller only *counts* — it never
/// blocks and takes no locks beyond its own mutex — so callers can shed
/// load deterministically without deadlock risk: a request is either
/// admitted (and must later be released exactly once) or rejected with a
/// typed verdict the client can act on (back off vs. fix the request).
///
/// Fairness model: a global depth cap bounds total queued work (memory
/// and tail latency), and a per-tenant cap bounds how much of that budget
/// one tenant can hold, so a flooding tenant is shed with TenantBacklog
/// while others still admit. This is the service-side analogue of the
/// scheduler's bounded task queues.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace rmcrt::runtime {

/// Admission limits. Defaults suit the test/bench scale; production
/// servers size maxQueueDepth to memory and SLO headroom.
struct AdmissionConfig {
  std::size_t maxQueueDepth = 256;  ///< global in-flight request cap
  std::size_t maxPerTenant = 64;    ///< one tenant's share of the budget
};

/// Typed admission verdicts. Everything except Admit is a shed decision
/// the caller must surface to the client as a typed rejection.
enum class AdmissionVerdict : std::uint8_t {
  Admit,
  QueueFull,       ///< global depth cap reached — back off and retry
  TenantBacklog,   ///< this tenant's fairness cap reached — tenant backs off
};

inline const char* toString(AdmissionVerdict v) {
  switch (v) {
    case AdmissionVerdict::Admit: return "admit";
    case AdmissionVerdict::QueueFull: return "queue_full";
    case AdmissionVerdict::TenantBacklog: return "tenant_backlog";
  }
  return "unknown";
}

/// Counters for reconciliation: admitted == released + inFlight at any
/// quiescent instant, and admitted + shedQueueFull + shedTenant equals
/// the number of tryAdmit calls.
struct AdmissionStats {
  std::uint64_t admitted = 0;
  std::uint64_t released = 0;
  std::uint64_t shedQueueFull = 0;
  std::uint64_t shedTenant = 0;
  std::size_t inFlight = 0;
};

class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& cfg = {})
      : m_cfg(cfg) {}

  const AdmissionConfig& config() const { return m_cfg; }

  /// Try to admit one request for \p tenant. Never blocks. On Admit the
  /// caller owns one in-flight slot and must release(tenant) exactly once
  /// when the request completes or is rejected downstream.
  AdmissionVerdict tryAdmit(const std::string& tenant) {
    std::lock_guard<std::mutex> lk(m_mutex);
    if (m_inFlight >= m_cfg.maxQueueDepth) {
      ++m_shedQueueFull;
      return AdmissionVerdict::QueueFull;
    }
    std::size_t& t = m_perTenant[tenant];
    if (t >= m_cfg.maxPerTenant) {
      ++m_shedTenant;
      return AdmissionVerdict::TenantBacklog;
    }
    ++t;
    ++m_inFlight;
    ++m_admitted;
    return AdmissionVerdict::Admit;
  }

  /// Return an admitted request's slot. Must pair 1:1 with Admit verdicts.
  void release(const std::string& tenant) {
    std::lock_guard<std::mutex> lk(m_mutex);
    auto it = m_perTenant.find(tenant);
    if (it == m_perTenant.end() || it->second == 0 || m_inFlight == 0)
      return;  // unbalanced release: ignore rather than underflow
    if (--it->second == 0) m_perTenant.erase(it);
    --m_inFlight;
    ++m_released;
  }

  AdmissionStats stats() const {
    std::lock_guard<std::mutex> lk(m_mutex);
    return AdmissionStats{m_admitted, m_released, m_shedQueueFull,
                          m_shedTenant, m_inFlight};
  }

  std::size_t inFlight() const {
    std::lock_guard<std::mutex> lk(m_mutex);
    return m_inFlight;
  }
  std::size_t inFlightOf(const std::string& tenant) const {
    std::lock_guard<std::mutex> lk(m_mutex);
    auto it = m_perTenant.find(tenant);
    return it == m_perTenant.end() ? 0 : it->second;
  }

 private:
  AdmissionConfig m_cfg;
  mutable std::mutex m_mutex;
  std::map<std::string, std::size_t> m_perTenant;
  std::size_t m_inFlight = 0;
  std::uint64_t m_admitted = 0;
  std::uint64_t m_released = 0;
  std::uint64_t m_shedQueueFull = 0;
  std::uint64_t m_shedTenant = 0;
};

}  // namespace rmcrt::runtime
