#include "sim/perf_model.h"

#include <algorithm>
#include <cmath>

#include "sim/event_sim.h"

namespace rmcrt::sim {

namespace {

double perMessageOverhead(const MachineModel& m, CommContainer c) {
  return c == CommContainer::WaitFree ? m.perMessageOverheadWaitFree
                                      : m.perMessageOverheadLocked;
}

/// Effective parallelism of the comm threads posting/processing records:
/// the wait-free pool lets every thread make progress; the legacy locked
/// vector's exclusive scan sections limit how many threads help (paper
/// Section IV-A).
double commThreadParallelism(const MachineModel& m, CommContainer c) {
  return c == CommContainer::WaitFree
             ? static_cast<double>(m.commThreads)
             : 0.5 * static_cast<double>(m.commThreads);
}

}  // namespace

double localCommTime(const MachineModel& m, const ProblemConfig& p,
                     int nodes, CommContainer container) {
  // The dominant cost is posting/testing/completing the dependency
  // records (one per requiring-patch/providing-patch pair), plus the
  // host-side pack/unpack of the actual payload bytes.
  const double records = p.dependencyRecordsPerRank(nodes);
  const double bytes = p.haloBytesPerRank(nodes) +
                       p.replicationBytesPerRank(nodes) +
                       p.coarsenBytesPerRank(nodes);
  const double perMsg = perMessageOverhead(m, container);
  const double parallelism = commThreadParallelism(m, container);
  // Post + test/process each record, plus host-side pack/unpack.
  const double opTime = 2.0 * records * perMsg + bytes * m.hostPackPerByte;
  return opTime / parallelism;
}

TimestepBreakdown simulateTimestep(const MachineModel& m,
                                   const ProblemConfig& p, int gpus,
                                   CommContainer container,
                                   bool perPatchCoarseCopies) {
  TimestepBreakdown out;

  const std::int64_t nPatch = p.patchesPerRank(gpus);

  // --- 1. Host posts/processes MPI for the timestep (Fig. 1 metric). ---
  out.localComm = localCommTime(m, p, gpus, container);

  // --- 2. Network: halo + coarsen + replication arrive over the NIC. ---
  const double bw = m.effectiveNetBandwidth(gpus);
  const double haloArrive =
      gpus > 1 ? m.netLatencySeconds + p.haloBytesPerRank(gpus) / bw : 0.0;
  const double coarsenArrive =
      gpus > 1 ? m.netLatencySeconds + p.coarsenBytesPerRank(gpus) / bw
               : 0.0;
  const double replArrive =
      gpus > 1 ? m.netLatencySeconds * std::log2(static_cast<double>(gpus)) +
                     p.replicationBytesPerRank(gpus) / bw
               : 0.0;
  // The NIC serializes the three flows; the coarsen phase is a barrier
  // before replication of the coarse level can complete.
  out.network = haloArrive + coarsenArrive + replArrive;
  const double dataReady = out.localComm + out.network;

  // --- 3. Device memory feasibility (Section III-C). ---
  const int resident =
      std::min<int>(m.concurrentKernels, static_cast<int>(nPatch));
  if (p.deviceBytesNeeded(resident, perPatchCoarseCopies) >
      static_cast<double>(m.gpuMemoryBytes)) {
    out.deviceMemoryExceeded = true;
  }

  // --- 4. GPU pipeline: stage each patch over the copy engines, run the
  //        kernel on the GPU, return divQ. The GPU is one server whose
  //        effective throughput reflects how many concurrent kernels
  //        (over-decomposition) are available to fill it: occAgg =
  //        min(1, k * occ(patch)). This captures the paper's Section V
  //        observations — big patches fill the device alone, small
  //        patches need several co-resident kernels, and at extreme GPU
  //        counts too few patches remain to keep even Hyper-Q busy. ---
  ResourceTimeline copyEngines(m.copyEngines);
  ResourceTimeline kernelSlots(1);

  const double roiCells =
      std::pow(static_cast<double>(p.patchSize) + 2.0 * p.roiHalo, 3.0);
  const double h2dPerPatch =
      roiCells * ProblemConfig::bytesPerPropertyCell / m.pcieBandwidth +
      m.pcieLatencySeconds;
  const double d2hPerPatch =
      static_cast<double>(p.cellsPerPatch()) * 8.0 / m.pcieBandwidth +
      m.pcieLatencySeconds;
  const double coarseUpload =
      static_cast<double>(p.coarseCells()) *
          ProblemConfig::bytesPerPropertyCell / m.pcieBandwidth +
      m.pcieLatencySeconds;

  // Kernel time per patch: segments / (throughput * occupancy(patch)).
  // The occupancy penalty is per patch size; over-decomposition overlaps
  // staging (below) but cannot recover occupancy.
  const double occ1 = m.occupancy(static_cast<double>(p.cellsPerPatch()));
  const double segmentsPerPatch =
      static_cast<double>(p.cellsPerPatch()) * p.raysPerCell *
      (p.meanFineSegments() + p.meanCoarseSegments());
  const double kernelPerPatch =
      segmentsPerPatch / (m.gpuSegmentsPerSecond * occ1) +
      m.taskOverheadSeconds;

  // Shared coarse level uploads once (level DB) or per patch (ablation).
  double firstKernelReady = dataReady;
  if (!perPatchCoarseCopies) {
    firstKernelReady = copyEngines.schedule(dataReady, coarseUpload);
  }

  double lastDone = dataReady;
  for (std::int64_t i = 0; i < nPatch; ++i) {
    double staged = copyEngines.schedule(dataReady, h2dPerPatch);
    if (perPatchCoarseCopies)
      staged = copyEngines.schedule(staged, coarseUpload);
    const double ready = std::max(staged, firstKernelReady);
    const double kdone = kernelSlots.schedule(ready, kernelPerPatch);
    const double back = copyEngines.schedule(kdone, d2hPerPatch);
    lastDone = std::max(lastDone, back);
  }

  out.gpuMakespan = lastDone - dataReady;
  out.kernel = kernelSlots.busyTime();
  out.pcie = copyEngines.busyTime();
  out.overhead =
      static_cast<double>(nPatch) * m.taskOverheadSeconds;
  out.total = lastDone;
  return out;
}

std::vector<ScalingPoint> strongScalingSeries(
    const MachineModel& m, const ProblemConfig& p,
    const std::vector<int>& gpuCounts, CommContainer container) {
  std::vector<ScalingPoint> out;
  out.reserve(gpuCounts.size());
  for (int g : gpuCounts)
    out.push_back(ScalingPoint{g, simulateTimestep(m, p, g, container)});
  return out;
}

double parallelEfficiency(const ScalingPoint& a, const ScalingPoint& b) {
  return (a.breakdown.total * a.gpus) / (b.breakdown.total * b.gpus);
}

std::vector<WeakScalingPoint> weakScalingCommVolume(
    const ProblemConfig& base, const std::vector<int>& rankCounts) {
  std::vector<WeakScalingPoint> out;
  for (int P : rankCounts) {
    // Weak scaling: fixed fine cells per rank; total cells grow with P.
    const double fineCellsTotal =
        static_cast<double>(base.fineCells()) * P;
    const double coarseCellsTotal =
        fineCellsTotal / std::pow(static_cast<double>(base.refinementRatio),
                                  3.0);
    const double share = P > 1 ? 1.0 - 1.0 / P : 0.0;
    WeakScalingPoint w;
    w.ranks = P;
    // Every rank receives (almost) the whole replicated level: aggregate
    // volume = P * level * bytesPerCell -> O(P^2) since level ~ P.
    w.aggregateSingleLevelBytes =
        P * fineCellsTotal * ProblemConfig::bytesPerPropertyCell * share;
    w.aggregateTwoLevelBytes =
        P * coarseCellsTotal * ProblemConfig::bytesPerPropertyCell * share;
    out.push_back(w);
  }
  return out;
}

}  // namespace rmcrt::sim
