#pragma once

/// \file scaling_study.h
/// Harnesses that regenerate the paper's evaluation artifacts:
///  * Figures 2 / 3 — strong scaling of the MEDIUM (256^3) and LARGE
///    (512^3) 2-level GPU benchmarks for patch sizes 16^3 / 32^3 / 64^3;
///  * Figure 1 / Table I — local communication time before and after the
///    infrastructure improvements, 512 -> 16,384 nodes.
/// Output is printed as aligned text tables, one row per series point.

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/perf_model.h"

namespace rmcrt::sim {

/// One figure's worth of strong-scaling series (one per patch size).
struct StrongScalingStudy {
  std::string title;
  ProblemConfig baseProblem;
  std::vector<int> patchSizes;
  std::vector<int> gpuCounts;

  struct Series {
    int patchSize;
    std::vector<ScalingPoint> points;
  };
  std::vector<Series> run(const MachineModel& m) const;

  /// Print the paper-style table: rows = GPU counts, one column per
  /// patch size, seconds per timestep.
  void print(std::ostream& os, const MachineModel& m) const;
};

/// Figure 2: MEDIUM (256^3 fine / 64^3 coarse), up to 4096 GPUs.
StrongScalingStudy mediumStudy();
/// Figure 3: LARGE (512^3 fine / 128^3 coarse), up to 16384 GPUs.
StrongScalingStudy largeStudy();

/// Table I / Figure 1: local communication time at 512..16384 nodes,
/// before (locked vector) and after (wait-free pool), for the CPU
/// configuration of the LARGE benchmark (262k patches => patch size 8).
struct CommStudyRow {
  int nodes;
  double beforeSeconds;
  double afterSeconds;
  double speedup;
};
std::vector<CommStudyRow> commImprovementStudy(const MachineModel& m);
void printCommStudy(std::ostream& os, const std::vector<CommStudyRow>& rows);

/// The paper's headline efficiency numbers (Section V): parallel
/// efficiency per Eq. 3 between GPU counts a and b on the LARGE problem.
double largeProblemEfficiency(const MachineModel& m, int patchSize, int a,
                              int b);

}  // namespace rmcrt::sim
