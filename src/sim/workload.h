#pragma once

/// \file workload.h
/// The RMCRT workload descriptor and its derived communication /
/// computation quantities — the model of Humphrey et al. 2015 (the
/// paper's ref [5]) specialized to the 2-level benchmark configurations
/// of Section V.

#include <cmath>
#include <cstdint>

#include "util/int_vector.h"

namespace rmcrt::sim {

/// One 2-level RMCRT benchmark configuration.
struct ProblemConfig {
  int fineCellsPerSide = 256;  ///< fine CFD mesh edge (256 or 512)
  int refinementRatio = 4;     ///< fine -> coarse ratio (paper: 4)
  int patchSize = 32;          ///< fine patch edge (16, 32, 64)
  int raysPerCell = 100;       ///< paper Section V: 100
  int roiHalo = 4;             ///< fine-level ROI halo cells
  /// Mean rays actually traced per cell divided by raysPerCell under the
  /// variance-adaptive budget controller (1.0 = fixed fan, exactly the
  /// pre-adaptive model; the calibrated Burns-Christon run lands ~0.59,
  /// i.e. a 1.7x segment reduction at equal error).
  double adaptiveRayFraction = 1.0;
  /// Spectral bands traced per cell (WSGG band loop). 1 = gray, exactly
  /// the pre-spectral model; each extra band re-marches the same records.
  int spectralBands = 1;
  /// Mean ray path length in cells on the fine level before the ray
  /// leaves the ROI or is extinguished; rays exit through the nearest
  /// ROI face, so the expected in-ROI path is ~half the ROI edge.
  double meanFineSegments() const {
    return 0.5 * (patchSize + 2.0 * roiHalo);
  }
  /// Mean additional path on the coarse level (domain-scale march at
  /// coarse resolution).
  double meanCoarseSegments() const {
    return 0.6 * coarseCellsPerSide();
  }

  // --- derived sizes ------------------------------------------------------
  int coarseCellsPerSide() const { return fineCellsPerSide / refinementRatio; }
  std::int64_t fineCells() const {
    return static_cast<std::int64_t>(fineCellsPerSide) * fineCellsPerSide *
           fineCellsPerSide;
  }
  std::int64_t coarseCells() const {
    const std::int64_t c = coarseCellsPerSide();
    return c * c * c;
  }
  std::int64_t totalCells() const { return fineCells() + coarseCells(); }
  std::int64_t cellsPerPatch() const {
    return static_cast<std::int64_t>(patchSize) * patchSize * patchSize;
  }
  std::int64_t numFinePatches() const { return fineCells() / cellsPerPatch(); }

  /// Bytes per cell of radiative properties shipped around (abskg +
  /// sigmaT4 doubles + cellType int32).
  static constexpr double bytesPerPropertyCell = 8.0 + 8.0 + 4.0;

  /// --- per-rank communication quantities (P ranks, 1 GPU each) ----------

  /// Fine patches owned by one rank (ceil: the straggler rank bounds the
  /// timestep).
  std::int64_t patchesPerRank(int ranks) const {
    return (numFinePatches() + ranks - 1) / ranks;
  }

  /// Halo-exchange volume received per rank per timestep [B]: ghost
  /// shells of the owned patches, excluding faces against patches of the
  /// same rank. With a Morton (octant) decomposition roughly half the
  /// shell is remote at scale.
  double haloBytesPerRank(int ranks) const {
    const double edge = patchSize;
    const double shell =
        std::pow(edge + 2.0 * roiHalo, 3.0) - std::pow(edge, 3.0);
    const double remoteFraction =
        ranks == 1 ? 0.0 : std::min(1.0, 0.5 + 0.5 / std::cbrt(ranks));
    return static_cast<double>(patchesPerRank(ranks)) * shell *
           bytesPerPropertyCell * remoteFraction;
  }

  /// Halo messages received per rank (≈26 neighbors per owned patch,
  /// remote fraction as above).
  double haloMessagesPerRank(int ranks) const {
    const double remoteFraction =
        ranks == 1 ? 0.0 : std::min(1.0, 0.5 + 0.5 / std::cbrt(ranks));
    return static_cast<double>(patchesPerRank(ranks)) * 26.0 *
           remoteFraction;
  }

  /// Coarse-level replication ("infinite ghost cells"): every rank
  /// receives the entire coarse level minus its own share [B]. This is
  /// the reduced all-to-all — the single-level algorithm would ship
  /// fineCells() instead.
  double replicationBytesPerRank(int ranks) const {
    const double share = 1.0 - 1.0 / static_cast<double>(ranks);
    return static_cast<double>(coarseCells()) * bytesPerPropertyCell * share;
  }

  /// Replication messages per rank: one per remote rank per property
  /// bundle (aggregated sends), so O(P).
  double replicationMessagesPerRank(int ranks) const {
    return 3.0 * static_cast<double>(ranks - 1);
  }

  /// Coarse patches (the coarse level is tiled by the same patch edge).
  std::int64_t numCoarsePatches() const {
    const std::int64_t side =
        std::max<std::int64_t>(1, coarseCellsPerSide() / patchSize);
    return side * side * side;
  }

  /// Dependency RECORDS the runtime posts/tests per rank per timestep.
  /// Uintah's DataWarehouse creates one communication record per
  /// (requiring patch, providing patch) dependency — for the
  /// whole-level ("infinite ghost cells") requirement that is every
  /// owned fine patch against every remote coarse patch, which is what
  /// made the request-container cost dominate at scale (paper
  /// Section IV-A: "the high volume and size of MPI messages").
  double dependencyRecordsPerRank(int ranks) const {
    const double share = 1.0 - 1.0 / static_cast<double>(ranks);
    const double replication =
        static_cast<double>(patchesPerRank(ranks)) *
        static_cast<double>(numCoarsePatches()) * share;
    return haloMessagesPerRank(ranks) + replication +
           static_cast<double>(patchesPerRank(ranks)) * 2.0;
  }

  /// Coarsen-phase volume per rank [B]: the fine data projected to the
  /// coarse level crosses ranks once; amortized per rank it is the fine
  /// level read once, divided across ranks.
  double coarsenBytesPerRank(int ranks) const {
    return static_cast<double>(fineCells()) * bytesPerPropertyCell /
           static_cast<double>(ranks) * 0.5;
  }

  /// Total messages per rank per timestep.
  double messagesPerRank(int ranks) const {
    return haloMessagesPerRank(ranks) + replicationMessagesPerRank(ranks) +
           static_cast<double>(patchesPerRank(ranks)) * 2.0;  // coarsen
  }

  /// --- computation quantities -------------------------------------------

  /// Ray-march cell crossings per rank per timestep: every owned fine
  /// cell traces raysPerCell rays (scaled by the adaptive-budget fraction
  /// and repeated per spectral band), each crossing fine ROI cells then
  /// coarse cells. Defaults reproduce the fixed-fan gray model exactly.
  double segmentsPerRank(int ranks) const {
    const double cellsOwned =
        static_cast<double>(patchesPerRank(ranks)) *
        static_cast<double>(cellsPerPatch());
    return cellsOwned * raysPerCell * adaptiveRayFraction *
           static_cast<double>(spectralBands) *
           (meanFineSegments() + meanCoarseSegments());
  }

  /// PCIe bytes staged per rank per timestep: per-patch ROI properties in
  /// + divQ out, plus ONE shared coarse-level upload (the level
  /// database). Set \p perPatchCoarseCopies for the pre-paper behaviour.
  double pcieBytesPerRank(int ranks, bool perPatchCoarseCopies = false) const {
    const double roi = std::pow(patchSize + 2.0 * roiHalo, 3.0);
    const double perPatch = roi * bytesPerPropertyCell +
                            static_cast<double>(cellsPerPatch()) * 8.0;
    const double coarseBytes =
        static_cast<double>(coarseCells()) * bytesPerPropertyCell;
    const double coarseUploads =
        perPatchCoarseCopies ? static_cast<double>(patchesPerRank(ranks))
                             : 1.0;
    return static_cast<double>(patchesPerRank(ranks)) * perPatch +
           coarseUploads * coarseBytes;
  }

  /// Device-resident bytes needed simultaneously: k concurrent patch
  /// tasks' private data + the coarse level (shared once or per task).
  double deviceBytesNeeded(int concurrentTasks,
                           bool perPatchCoarseCopies = false) const {
    const double roi = std::pow(patchSize + 2.0 * roiHalo, 3.0);
    const double perPatch = roi * bytesPerPropertyCell +
                            static_cast<double>(cellsPerPatch()) * 8.0;
    const double coarseBytes =
        static_cast<double>(coarseCells()) * bytesPerPropertyCell;
    const double coarseCopies =
        perPatchCoarseCopies ? concurrentTasks : 1;
    return concurrentTasks * perPatch + coarseCopies * coarseBytes;
  }
};

/// The paper's two benchmark configurations (Section V).
inline ProblemConfig mediumProblem(int patchSize = 32) {
  ProblemConfig p;
  p.fineCellsPerSide = 256;
  p.patchSize = patchSize;
  return p;
}
inline ProblemConfig largeProblem(int patchSize = 32) {
  ProblemConfig p;
  p.fineCellsPerSide = 512;
  p.patchSize = patchSize;
  return p;
}

}  // namespace rmcrt::sim
