#include "sim/scaling_report.h"

#include <iomanip>
#include <ostream>

namespace rmcrt::sim {

namespace {

ModelScalingResult runModel(std::string name, const MachineModel& m) {
  ModelScalingResult r;
  r.name = std::move(name);
  r.machine = m;
  r.medium = mediumStudy().run(m);
  r.large = largeStudy().run(m);
  r.comm = commImprovementStudy(m);
  r.effLarge16From4096To8192 = largeProblemEfficiency(m, 16, 4096, 8192);
  r.effLarge16From4096To16384 = largeProblemEfficiency(m, 16, 4096, 16384);
  r.effLarge16From512To16384 = largeProblemEfficiency(m, 16, 512, 16384);
  return r;
}

std::string escapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

void writeSeries(std::ostream& os, const char* key,
                 const ProblemConfig& base,
                 const std::vector<StrongScalingStudy::Series>& series) {
  os << "    \"" << key << "\": {\"fine_cells_per_side\": "
     << base.fineCellsPerSide << ", \"series\": [\n";
  for (std::size_t s = 0; s < series.size(); ++s) {
    const auto& se = series[s];
    ProblemConfig p = base;
    p.patchSize = se.patchSize;
    os << "      {\"patch_size\": " << se.patchSize << ", \"max_gpus\": "
       << (se.points.empty() ? 0 : se.points.back().gpus)
       << ", \"points\": [\n";
    for (std::size_t i = 0; i < se.points.size(); ++i) {
      const ScalingPoint& pt = se.points[i];
      const TimestepBreakdown& b = pt.breakdown;
      os << "        {\"gpus\": " << pt.gpus << ", \"patches_per_gpu\": "
         << p.patchesPerRank(pt.gpus) << ", \"seconds\": " << b.total
         << ", \"local_comm_s\": " << b.localComm << ", \"network_s\": "
         << b.network << ", \"pcie_s\": " << b.pcie << ", \"kernel_s\": "
         << b.kernel << ", \"gpu_makespan_s\": " << b.gpuMakespan << "}"
         << (i + 1 < se.points.size() ? "," : "") << "\n";
    }
    os << "      ]}" << (s + 1 < series.size() ? "," : "") << "\n";
  }
  os << "    ]}";
}

void writeModel(std::ostream& os, const ModelScalingResult& r) {
  os << "  \"" << r.name << "\": {\n"
     << "    \"gpu_mseg_per_s\": " << r.machine.gpuSegmentsPerSecond / 1e6
     << ",\n";
  writeSeries(os, "medium", mediumProblem(), r.medium);
  os << ",\n";
  writeSeries(os, "large", largeProblem(), r.large);
  os << ",\n    \"comm_study\": [\n";
  for (std::size_t i = 0; i < r.comm.size(); ++i) {
    const CommStudyRow& row = r.comm[i];
    os << "      {\"nodes\": " << row.nodes << ", \"before_s\": "
       << row.beforeSeconds << ", \"after_s\": " << row.afterSeconds
       << ", \"speedup\": " << row.speedup << "}"
       << (i + 1 < r.comm.size() ? "," : "") << "\n";
  }
  os << "    ],\n"
     << "    \"efficiency_large_p16\": {\"eff_4096_to_8192\": "
     << r.effLarge16From4096To8192 << ", \"eff_4096_to_16384\": "
     << r.effLarge16From4096To16384 << ", \"eff_512_to_16384\": "
     << r.effLarge16From512To16384 << "}\n"
     << "  }";
}

}  // namespace

ScalingReport collectScalingReport(const Calibration& c,
                                   double hostToGpuScale) {
  ScalingReport r;
  r.calibration = c;
  r.hostToGpuScale = hostToGpuScale;
  r.titanDefault = runModel("titan_default", titan());
  r.calibrated =
      runModel("calibrated", calibrate(titan(), c, hostToGpuScale));
  return r;
}

void writeScalingReportJson(std::ostream& os, const ScalingReport& r,
                            bool smoke) {
  const std::streamsize oldPrec = os.precision();
  os << std::setprecision(6) << std::fixed;
  os << "{\n"
     << "  \"benchmark\": \"rmcrt_scaling_study\",\n"
     << "  \"problem\": \"burns_christon_2level_rr4_100rays\",\n"
     << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
     << "  \"paper\": {\"eff_4096_to_8192\": "
     << PaperReference::eff4096To8192 << ", \"eff_4096_to_16384\": "
     << PaperReference::eff4096To16384 << ", \"comm_speedup_min\": "
     << PaperReference::commSpeedupMin << ", \"comm_speedup_max\": "
     << PaperReference::commSpeedupMax << "},\n"
     << "  \"calibration\": {\"source\": \""
     << calibrationSourceName(r.calibration.source) << "\", \"detail\": \""
     << escapeJson(r.calibration.detail) << "\", \"host_mseg_per_s\": "
     << r.calibration.hostSegmentsPerSecond / 1e6
     << ", \"host_to_gpu_scale\": " << r.hostToGpuScale << "},\n"
     << "  \"models\": {\n";
  writeModel(os, r.titanDefault);
  os << ",\n";
  writeModel(os, r.calibrated);
  os << "\n  }\n}\n";
  os << std::setprecision(static_cast<int>(oldPrec));
  os.unsetf(std::ios::fixed);
}

}  // namespace rmcrt::sim
