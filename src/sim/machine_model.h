#pragma once

/// \file machine_model.h
/// Machine parameters for the cluster performance simulator (DESIGN.md
/// §2, §7). Defaults describe the DOE Titan XK7 as specified in the
/// paper's footnote 1 and K20X datasheets: one 16-core AMD Opteron 6274 +
/// one NVIDIA K20X (6 GB GDDR5) per node, Cray Gemini 3-D torus with
/// 1.4 us latency and 20 GB/s peak injection per node.

#include <cstddef>
#include <cstdint>

namespace rmcrt::sim {

/// Per-node and network characteristics.
struct MachineModel {
  // --- GPU ---------------------------------------------------------------
  /// Device global memory (K20X: 6 GB).
  std::size_t gpuMemoryBytes = 6ull << 30;
  /// Peak ray-segment throughput of one GPU at full occupancy
  /// [cell-crossings/s]. Calibrated from the real kernel (see
  /// calibration.h) and scaled by the host->K20X factor.
  double gpuSegmentsPerSecond = 2.0e9;
  /// Kernel-launch plus task-management overhead per patch task [s].
  double taskOverheadSeconds = 60e-6;
  /// Concurrent-kernel capability: number of patch kernels that can
  /// overlap to hide each other's staging (K20X: Hyper-Q, effectively a
  /// handful of useful slots).
  int concurrentKernels = 4;

  /// GPU occupancy as a function of patch cell count: small patches
  /// cannot fill the SMXs (paper Section V observation 1: "larger
  /// patches provide more work per GPU and yield a more significant
  /// speedup"). Concurrent kernels overlap staging and tails but do not
  /// recover per-kernel occupancy (each kernel's block count is fixed by
  /// its patch), so the penalty applies per patch regardless of
  /// over-decomposition. Saturating curve eff = n/(n+halfOccupancyCells):
  /// 16^3 -> 0.17, 32^3 -> 0.62, 64^3 -> 0.93.
  double halfOccupancyCells = 20.0e3;
  double occupancy(double cellsPerPatch) const {
    return cellsPerPatch / (cellsPerPatch + halfOccupancyCells);
  }

  // --- PCIe --------------------------------------------------------------
  /// Effective host<->device bandwidth [B/s] (PCIe 2.0 x16 ~ 6 GB/s).
  double pcieBandwidth = 6.0e9;
  double pcieLatencySeconds = 10e-6;
  int copyEngines = 2;

  // --- CPU / runtime -----------------------------------------------------
  /// Threads performing MPI sends/recvs (the paper runs 16/node).
  int commThreads = 16;
  /// CPU cost to post or process one communication record through the
  /// request container [s]; depends on the container (Table I's
  /// before/after). The locked vector additionally limits how many of
  /// the commThreads make progress (see perf_model.cc).
  double perMessageOverheadWaitFree = 8.0e-6;
  double perMessageOverheadLocked = 12.0e-6;
  /// Host-side per-byte packing/unpacking cost [s/B] (memcpy-bound).
  double hostPackPerByte = 1.0 / 8.0e9;

  // --- Network (Cray Gemini) ----------------------------------------------
  double netLatencySeconds = 1.4e-6;
  /// Effective per-node injection bandwidth [B/s]; the paper quotes
  /// 20 GB/s peak, sustained all-to-all traffic achieves a fraction.
  double netBandwidth = 5.0e9;
  /// Effective bisection-limited aggregate factor for all-to-all phases:
  /// at P nodes the per-node achievable bandwidth degrades as traffic
  /// crosses the torus; modeled as bw_eff = netBandwidth /
  /// (1 + P / torusContentionScale).
  double torusContentionScale = 16384.0;

  double effectiveNetBandwidth(int nodes) const {
    return netBandwidth /
           (1.0 + static_cast<double>(nodes) / torusContentionScale);
  }
};

/// Titan as described in the paper.
inline MachineModel titan() { return MachineModel{}; }

}  // namespace rmcrt::sim
