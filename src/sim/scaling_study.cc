#include "sim/scaling_study.h"

#include <algorithm>
#include <iomanip>
#include <ostream>

namespace rmcrt::sim {

std::vector<StrongScalingStudy::Series> StrongScalingStudy::run(
    const MachineModel& m) const {
  std::vector<Series> out;
  for (int ps : patchSizes) {
    ProblemConfig p = baseProblem;
    p.patchSize = ps;
    // A series ends where the decomposition runs out of patches (at
    // least one per GPU), exactly as the paper's figures stop each
    // patch-size curve at its own maximum GPU count.
    std::vector<int> feasible;
    for (int g : gpuCounts)
      if (g <= p.numFinePatches()) feasible.push_back(g);
    out.push_back(Series{ps, strongScalingSeries(m, p, feasible)});
  }
  return out;
}

void StrongScalingStudy::print(std::ostream& os,
                               const MachineModel& m) const {
  const auto series = run(m);
  os << title << "\n";
  os << std::setw(8) << "GPUs";
  for (const auto& s : series)
    os << std::setw(14) << (std::to_string(s.patchSize) + "^3 [s]");
  os << "\n";
  for (int g : gpuCounts) {
    os << std::setw(8) << g;
    for (const auto& s : series) {
      const auto it =
          std::find_if(s.points.begin(), s.points.end(),
                       [g](const ScalingPoint& sp) { return sp.gpus == g; });
      if (it != s.points.end()) {
        os << std::setw(14) << std::fixed << std::setprecision(3)
           << it->breakdown.total;
      } else {
        os << std::setw(14) << "-";  // fewer patches than GPUs
      }
    }
    os << "\n";
  }
  // Per-series parallel efficiency across that series' sweep (Eq. 3).
  os << std::setw(8) << "eff";
  for (const auto& s : series) {
    const double eff = parallelEfficiency(s.points.front(), s.points.back());
    os << std::setw(13) << std::fixed << std::setprecision(1) << (eff * 100)
       << "%";
  }
  os << "\n";
}

StrongScalingStudy mediumStudy() {
  StrongScalingStudy s;
  s.title =
      "Fig. 2 — GPU strong scaling, MEDIUM 2-level RMCRT (256^3 fine / "
      "64^3 coarse, RR:4, 100 rays)";
  s.baseProblem = mediumProblem();
  s.patchSizes = {16, 32, 64};
  s.gpuCounts = {16, 32, 64, 128, 256, 512, 1024, 2048, 4096};
  return s;
}

StrongScalingStudy largeStudy() {
  StrongScalingStudy s;
  s.title =
      "Fig. 3 — GPU strong scaling, LARGE 2-level RMCRT (512^3 fine / "
      "128^3 coarse, RR:4, 100 rays)";
  s.baseProblem = largeProblem();
  s.patchSizes = {16, 32, 64};
  s.gpuCounts = {128, 256, 512, 1024, 2048, 4096, 8192, 16384};
  return s;
}

std::vector<CommStudyRow> commImprovementStudy(const MachineModel& m) {
  // The paper's Fig. 1 configuration: LARGE problem, 2 levels, 136.31M
  // cells, 262k patches => fine patch edge 8 (512^3 / 8^3 = 262,144).
  ProblemConfig p = largeProblem(/*patchSize=*/8);
  std::vector<CommStudyRow> rows;
  for (int nodes : {512, 1024, 2048, 4096, 8192, 16384}) {
    CommStudyRow r;
    r.nodes = nodes;
    r.beforeSeconds = localCommTime(m, p, nodes, CommContainer::LockedVector);
    r.afterSeconds = localCommTime(m, p, nodes, CommContainer::WaitFree);
    r.speedup = r.beforeSeconds / r.afterSeconds;
    rows.push_back(r);
  }
  return rows;
}

void printCommStudy(std::ostream& os,
                    const std::vector<CommStudyRow>& rows) {
  os << "Table I / Fig. 1 — local communication time before/after "
        "infrastructure improvements\n";
  os << std::setw(8) << "#Nodes" << std::setw(14) << "before [s]"
     << std::setw(14) << "after [s]" << std::setw(12) << "speedup\n";
  for (const auto& r : rows) {
    os << std::setw(8) << r.nodes << std::setw(14) << std::fixed
       << std::setprecision(3) << r.beforeSeconds << std::setw(14)
       << r.afterSeconds << std::setw(10) << std::setprecision(2)
       << r.speedup << "X\n";
  }
}

double largeProblemEfficiency(const MachineModel& m, int patchSize, int a,
                              int b) {
  ProblemConfig p = largeProblem(patchSize);
  const ScalingPoint pa{a, simulateTimestep(m, p, a)};
  const ScalingPoint pb{b, simulateTimestep(m, p, b)};
  return parallelEfficiency(pa, pb);
}

}  // namespace rmcrt::sim
