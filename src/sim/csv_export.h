#pragma once

/// \file csv_export.h
/// CSV emission for the scaling studies, so the regenerated figures can
/// be plotted directly (gnuplot/matplotlib) alongside the paper's.

#include <fstream>
#include <string>

#include "sim/scaling_study.h"

namespace rmcrt::sim {

/// Write a strong-scaling study as CSV: one row per GPU count, one
/// column per patch size ("gpus,p16,p32,p64"); missing points (fewer
/// patches than GPUs) are empty cells. Returns false on I/O failure.
inline bool writeScalingCsv(const std::string& path,
                            const StrongScalingStudy& study,
                            const MachineModel& m) {
  std::ofstream os(path);
  if (!os) return false;
  const auto series = study.run(m);
  os << "gpus";
  for (const auto& s : series) os << ",p" << s.patchSize;
  os << "\n";
  for (int g : study.gpuCounts) {
    os << g;
    for (const auto& s : series) {
      os << ",";
      for (const auto& pt : s.points) {
        if (pt.gpus == g) {
          os << pt.breakdown.total;
          break;
        }
      }
    }
    os << "\n";
  }
  return static_cast<bool>(os);
}

/// Write the Table I rows as CSV ("nodes,before,after,speedup").
inline bool writeCommStudyCsv(const std::string& path,
                              const std::vector<CommStudyRow>& rows) {
  std::ofstream os(path);
  if (!os) return false;
  os << "nodes,before_s,after_s,speedup\n";
  for (const auto& r : rows) {
    os << r.nodes << "," << r.beforeSeconds << "," << r.afterSeconds << ","
       << r.speedup << "\n";
  }
  return static_cast<bool>(os);
}

}  // namespace rmcrt::sim
