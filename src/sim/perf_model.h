#pragma once

/// \file perf_model.h
/// Per-timestep execution-time prediction for the 2-level GPU RMCRT
/// benchmark on a Titan-like machine: the node timeline (MPI posting,
/// network arrival, PCIe staging on 2 copy engines, concurrent kernels)
/// is simulated with the list-scheduling engine; sweeping GPU counts
/// yields the strong-scaling curves of the paper's Figures 2 and 3.

#include <cstdint>
#include <string>
#include <vector>

#include "sim/machine_model.h"
#include "sim/workload.h"

namespace rmcrt::sim {

/// Which MPI request container the runtime uses (paper Table I).
enum class CommContainer { WaitFree, LockedVector };

/// One simulated timestep's time attribution (seconds).
struct TimestepBreakdown {
  double total = 0;
  double localComm = 0;   ///< CPU time posting/processing MPI (Fig. 1 metric)
  double network = 0;     ///< wire time for halos + replication
  double pcie = 0;        ///< staging time (overlapped portion included)
  double kernel = 0;      ///< GPU busy time
  double overhead = 0;    ///< per-task scheduling/launch overhead
  double gpuMakespan = 0; ///< pipeline finish after data ready
  bool deviceMemoryExceeded = false;
};

/// Simulate one rank's timestep (all ranks are statistically identical
/// for this symmetric benchmark; the slowest rank is modeled by ceiling
/// the patch distribution).
TimestepBreakdown simulateTimestep(const MachineModel& m,
                                   const ProblemConfig& p, int gpus,
                                   CommContainer container =
                                       CommContainer::WaitFree,
                                   bool perPatchCoarseCopies = false);

/// A strong-scaling series: time per timestep over GPU counts.
struct ScalingPoint {
  int gpus;
  TimestepBreakdown breakdown;
};

std::vector<ScalingPoint> strongScalingSeries(
    const MachineModel& m, const ProblemConfig& p,
    const std::vector<int>& gpuCounts,
    CommContainer container = CommContainer::WaitFree);

/// Parallel efficiency per the paper's Eq. 3 between two points of one
/// series: E = (t_a * n_a) / (t_b * n_b) for n_b > n_a.
double parallelEfficiency(const ScalingPoint& a, const ScalingPoint& b);

/// The "local communication time" of Figure 1 / Table I for the CPU
/// configuration (one MPI rank per node, 16 comm threads): messages per
/// node at \p nodes scale costed through the chosen request container.
double localCommTime(const MachineModel& m, const ProblemConfig& p,
                     int nodes, CommContainer container);

/// The paper's Section V justification for omitting weak scaling:
/// "radiation or any globally coupled algorithm grows quadratically as
/// O(N^2) ... with respect to the problem size." This helper quantifies
/// it: aggregate replication volume across all ranks for a weak-scaled
/// run (fixed cells per rank; domain grows with P), for the single-level
/// algorithm (replicate the fine level: O(P^2) aggregate) versus the
/// 2-level algorithm (replicate the coarse level: O(P^2)/RR^3 — same
/// growth law, RR^3 smaller constant).
struct WeakScalingPoint {
  int ranks;
  double aggregateSingleLevelBytes;
  double aggregateTwoLevelBytes;
};
std::vector<WeakScalingPoint> weakScalingCommVolume(
    const ProblemConfig& base, const std::vector<int>& rankCounts);

}  // namespace rmcrt::sim
