#pragma once

/// \file event_sim.h
/// A small deterministic list-scheduling engine: resources with k
/// identical servers onto which jobs are placed at the earliest time >=
/// their ready time. This is the discrete-event core of the node
/// timeline simulation — GPU kernel slots, PCIe copy engines and the NIC
/// are each a ResourceTimeline, and the per-patch task pipeline is a
/// chain of jobs with precedence (ready times).

#include <algorithm>
#include <cstddef>
#include <vector>

namespace rmcrt::sim {

/// k identical servers; schedule() places a job on the server that can
/// start it earliest.
class ResourceTimeline {
 public:
  explicit ResourceTimeline(int servers)
      : m_free(static_cast<std::size_t>(servers > 0 ? servers : 1), 0.0) {}

  /// Place a job that becomes ready at \p ready and runs for
  /// \p duration; returns its completion time.
  double schedule(double ready, double duration) {
    auto it = std::min_element(m_free.begin(), m_free.end());
    const double start = std::max(*it, ready);
    *it = start + duration;
    m_busy += duration;
    return *it;
  }

  /// Earliest time any server is free.
  double earliestFree() const {
    return *std::min_element(m_free.begin(), m_free.end());
  }
  /// Time the last server finishes.
  double makespan() const {
    return *std::max_element(m_free.begin(), m_free.end());
  }
  /// Total busy time across servers (utilization numerator).
  double busyTime() const { return m_busy; }

  int servers() const { return static_cast<int>(m_free.size()); }

  void reset() {
    std::fill(m_free.begin(), m_free.end(), 0.0);
    m_busy = 0.0;
  }

 private:
  std::vector<double> m_free;
  double m_busy = 0.0;
};

}  // namespace rmcrt::sim
