#pragma once

/// \file scaling_report.h
/// The paper's full evaluation — Figs. 2/3 strong scaling at patch sizes
/// 16^3/32^3/64^3, Table I local-communication study, and the Eq. 3
/// parallel-efficiency headlines — collected into one structure and
/// emitted as machine-readable JSON (the committed BENCH_scaling.json
/// that CI's shape gate verifies).
///
/// Every number is a deterministic function of the machine model, so the
/// report is reproducible byte for byte on any host as long as the
/// calibration input (the committed BENCH_rmcrt_kernel.json) is fixed.
/// Two model variants are always emitted:
///  * "titan_default" — the Titan machine model as documented in
///    machine_model.h (K20X at its datasheet-derived throughput); this is
///    the variant whose absolute efficiencies land on the paper's 96%/89%;
///  * "calibrated"    — gpuSegmentsPerSecond anchored to this repo's
///    measured SIMD packed kernel via calibrate(); slower device, so the
///    kernel dominates and scaling flattens — the shape claims (who wins
///    at each patch size, monotone rolloff) must hold there too.

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/calibration.h"
#include "sim/scaling_study.h"

namespace rmcrt::sim {

/// One machine-model variant's complete sweep results.
struct ModelScalingResult {
  std::string name;
  MachineModel machine;
  std::vector<StrongScalingStudy::Series> medium;  ///< Fig. 2
  std::vector<StrongScalingStudy::Series> large;   ///< Fig. 3
  std::vector<CommStudyRow> comm;                  ///< Table I / Fig. 1
  /// Eq. 3 on the LARGE problem, 16^3 patches (the paper's headlines).
  double effLarge16From4096To8192 = 0;
  double effLarge16From4096To16384 = 0;
  double effLarge16From512To16384 = 0;
};

/// The full study: calibration provenance plus both model variants.
struct ScalingReport {
  Calibration calibration;
  double hostToGpuScale = 12.0;
  ModelScalingResult titanDefault;
  ModelScalingResult calibrated;
};

/// Run every sweep for both model variants. Pure model arithmetic — no
/// timers, no host measurement — so safe for tests and CI smoke runs.
ScalingReport collectScalingReport(const Calibration& c,
                                   double hostToGpuScale = 12.0);

/// Emit the BENCH_scaling.json schema. \p smoke is recorded verbatim so
/// a CI smoke artifact is distinguishable from the committed baseline
/// (the numbers are identical either way).
void writeScalingReportJson(std::ostream& os, const ScalingReport& r,
                            bool smoke);

/// The paper's published reference values the shape gate compares to.
struct PaperReference {
  static constexpr double eff4096To8192 = 0.96;    ///< Section V
  static constexpr double eff4096To16384 = 0.89;   ///< Section V
  static constexpr double commSpeedupMin = 2.27;   ///< Table I
  static constexpr double commSpeedupMax = 4.40;   ///< Table I
};

}  // namespace rmcrt::sim
