#include "sim/calibration.h"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "comm/communicator.h"
#include "comm/locked_queue.h"
#include "comm/request_pool.h"
#include "core/problems.h"
#include "core/rmcrt_component.h"
#include "grid/operators.h"
#include "util/mini_json.h"
#include "util/timers.h"

namespace rmcrt::sim {

const char* calibrationSourceName(CalibrationSource s) {
  switch (s) {
    case CalibrationSource::Measured:
      return "measured";
    case CalibrationSource::BenchJson:
      return "bench_json";
    case CalibrationSource::Fallback:
      return "fallback";
  }
  return "unknown";
}

double measureKernelSegmentsPerSecond(int patchSize, int raysPerCell) {
  using namespace rmcrt::core;
  // A 2-level problem sized so one patch's trace is representative:
  // fine level = 2x the patch, coarse level at RR 4.
  const int fine = std::max(16, 2 * patchSize);
  auto grid = grid::Grid::makeTwoLevel(
      Vector(0.0), Vector(1.0), IntVector(fine), IntVector(4),
      IntVector(patchSize), IntVector(std::max(1, fine / 4)));

  const grid::Level& fineLevel = grid->fineLevel();
  const grid::Level& coarseLevel = grid->coarseLevel();
  grid::CCVariable<double> fAbs(fineLevel.cells(), 0.0),
      fSig(fineLevel.cells(), 0.0);
  grid::CCVariable<grid::CellType> fCt(fineLevel.cells(),
                                       grid::CellType::Flow);
  initializeProperties(fineLevel, burnsChriston(), fAbs, fSig, fCt);
  grid::CCVariable<double> cAbs(coarseLevel.cells(), 0.0),
      cSig(coarseLevel.cells(), 0.0);
  grid::CCVariable<grid::CellType> cCt(coarseLevel.cells(),
                                       grid::CellType::Flow);
  grid::coarsenAverage(fAbs, IntVector(4), cAbs, coarseLevel.cells());
  grid::coarsenAverage(fSig, IntVector(4), cSig, coarseLevel.cells());
  grid::coarsenCellType(fCt, IntVector(4), cCt, coarseLevel.cells());

  const grid::Patch& patch = fineLevel.patch(0);
  TraceLevel fineTL{LevelGeom::from(fineLevel),
                    RadiationFieldsView{FieldView<double>::fromHost(fAbs),
                                        FieldView<double>::fromHost(fSig),
                                        FieldView<grid::CellType>::fromHost(
                                            fCt)},
                    patch.ghostWindow(4).intersect(fineLevel.cells())};
  TraceLevel coarseTL{
      LevelGeom::from(coarseLevel),
      RadiationFieldsView{FieldView<double>::fromHost(cAbs),
                          FieldView<double>::fromHost(cSig),
                          FieldView<grid::CellType>::fromHost(cCt)},
      coarseLevel.cells()};
  TraceConfig cfg;
  cfg.nDivQRays = raysPerCell;
  Tracer tracer({fineTL, coarseTL}, WallProperties{0.0, 1.0}, cfg);

  grid::CCVariable<double> divQ(patch.cells(), 0.0);
  tracer.resetSegmentCount();
  Timer timer;
  tracer.computeDivQ(patch.cells(),
                     MutableFieldView<double>::fromHost(divQ));
  const double secs = timer.seconds();
  return static_cast<double>(tracer.segmentCount()) / secs;
}

namespace {

template <typename Container>
double timeContainer(Container& container, int threads, int messages) {
  // Steady-state shape: a bounded number of outstanding records at any
  // time (the scheduler posts a phase's receives, drains, repeats) —
  // otherwise the O(outstanding) scans of either container make the
  // measurement quadratic in the total message count.
  constexpr int kBatch = 256;
  comm::Communicator world(2);
  std::atomic<int> done{0};

  Timer timer;
  std::vector<std::thread> pollers;
  for (int t = 0; t < threads; ++t) {
    pollers.emplace_back([&] {
      while (done.load(std::memory_order_relaxed) < messages)
        container.processReady();
    });
  }
  std::vector<std::unique_ptr<int[]>> bufs(kBatch);
  for (int base = 0; base < messages; base += kBatch) {
    const int n = std::min(kBatch, messages - base);
    for (int i = 0; i < n; ++i) {
      bufs[static_cast<std::size_t>(i)] = std::make_unique<int[]>(1);
      comm::Request r = world.irecv(
          1, 0, base + i, bufs[static_cast<std::size_t>(i)].get(),
          sizeof(int));
      container.add(
          comm::CommNode(std::move(r), [&done](const comm::Request&) {
            done.fetch_add(1, std::memory_order_relaxed);
          }));
    }
    for (int i = 0; i < n; ++i) {
      const int v = base + i;
      world.isend(0, 1, v, &v, sizeof v);
    }
    while (done.load(std::memory_order_relaxed) < base + n)
      std::this_thread::yield();
  }
  for (auto& t : pollers) t.join();
  return timer.seconds() / static_cast<double>(messages);
}

}  // namespace

void measureContainerCosts(double& waitFreePerMessage,
                           double& lockedPerMessage, int threads,
                           int messages) {
  comm::WaitFreeRequestPool pool;
  waitFreePerMessage = timeContainer(pool, threads, messages);
  comm::LockedRequestQueue queue(comm::LockedRequestQueue::Mode::Serialized);
  lockedPerMessage = timeContainer(queue, threads, messages);
}

Calibration measureHost() {
  Calibration c;
  c.hostSegmentsPerSecond = measureKernelSegmentsPerSecond();
  measureContainerCosts(c.waitFreePerMessage, c.lockedPerMessage);
  c.source = CalibrationSource::Measured;
  c.detail = "measureKernelSegmentsPerSecond(16, 4) on this host";
  return c;
}

Calibration fallbackCalibration() {
  Calibration c;
  // The committed AVX-512 packet-march baseline (simd_mseg_per_s at the
  // 128^3 fixture) rounded to a constant: 36 Mseg/s on one host core.
  c.hostSegmentsPerSecond = 36.0e6;
  c.source = CalibrationSource::Fallback;
  c.detail = "reference constant 36 Mseg/s (no bench baseline)";
  return c;
}

namespace {

/// threads==1 sample of the sweep array, or nullptr.
const minijson::Value* serialSweepSample(const minijson::Value& doc) {
  if (!doc.has("sweep")) return nullptr;
  for (const minijson::Value& s : doc.at("sweep").array) {
    if (s.has("threads") && s.at("threads").number == 1.0 &&
        s.has("mseg_per_s") &&
        s.at("mseg_per_s").type == minijson::Value::Type::Number)
      return &s;
  }
  return nullptr;
}

}  // namespace

Calibration calibrationFromBenchJson(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    Calibration c = fallbackCalibration();
    c.detail = "fallback: cannot open " + path;
    return c;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  minijson::Value doc;
  try {
    doc = minijson::parse(buf.str());
  } catch (const std::exception& e) {
    Calibration c = fallbackCalibration();
    c.detail = "fallback: " + path + " does not parse (" + e.what() + ")";
    return c;
  }

  const auto numeric = [](const minijson::Value& obj, const char* key) {
    return obj.has(key) &&
           obj.at(key).type == minijson::Value::Type::Number &&
           obj.at(key).number > 0.0;
  };

  Calibration c;
  c.source = CalibrationSource::BenchJson;
  if (doc.has("simd_microbench")) {
    const minijson::Value& simd = doc.at("simd_microbench");
    const bool supported = simd.has("supported") &&
                           simd.at("supported").type ==
                               minijson::Value::Type::Bool &&
                           simd.at("supported").boolean;
    const std::string isa = simd.has("isa") ? simd.at("isa").str : "?";
    const std::string grid =
        simd.has("grid_n")
            ? std::to_string(static_cast<int>(simd.at("grid_n").number))
            : "?";
    if (supported && numeric(simd, "simd_mseg_per_s")) {
      c.hostSegmentsPerSecond = simd.at("simd_mseg_per_s").number * 1e6;
      c.detail = "simd_microbench.simd_mseg_per_s [" + isa + " @" + grid +
                 "^3] from " + path;
      return c;
    }
    if (numeric(simd, "scalar_mseg_per_s")) {
      c.hostSegmentsPerSecond = simd.at("scalar_mseg_per_s").number * 1e6;
      c.detail = "simd_microbench.scalar_mseg_per_s [@" + grid +
                 "^3] from " + path;
      return c;
    }
  }
  if (const minijson::Value* serial = serialSweepSample(doc);
      serial && serial->at("mseg_per_s").number > 0.0) {
    c.hostSegmentsPerSecond = serial->at("mseg_per_s").number * 1e6;
    c.detail = "sweep[threads==1].mseg_per_s from " + path;
    return c;
  }
  c = fallbackCalibration();
  c.detail = "fallback: " + path + " has no usable mseg_per_s key";
  return c;
}

MachineModel calibrate(MachineModel m, const Calibration& c,
                       double hostToGpuScale) {
  if (c.hostSegmentsPerSecond > 0)
    m.gpuSegmentsPerSecond = c.hostSegmentsPerSecond * hostToGpuScale;
  if (c.waitFreePerMessage > 0)
    m.perMessageOverheadWaitFree = c.waitFreePerMessage;
  if (c.lockedPerMessage > 0)
    m.perMessageOverheadLocked = c.lockedPerMessage;
  return m;
}

}  // namespace rmcrt::sim
