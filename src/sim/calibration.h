#pragma once

/// \file calibration.h
/// Calibrates the machine model from *measured* quantities of this very
/// repository: the real RMCRT kernel's segment throughput (per patch
/// size) and the real request containers' per-message cost. The
/// host-to-K20X scale factor converts one host core's measured kernel
/// throughput to the device's (documented substitution — absolute
/// seconds are testbed-specific; the scaling *shape* is what the model
/// must preserve).

#include <cstdint>
#include <string>

#include "sim/machine_model.h"
#include "sim/perf_model.h"

namespace rmcrt::sim {

/// Where a Calibration's numbers came from. The scaling studies record
/// this in BENCH_scaling.json so a committed artifact is traceable to
/// its input.
enum class CalibrationSource {
  Measured,   ///< measureHost(): kernels/containers re-run on this host
  BenchJson,  ///< loaded from a committed bench_rmcrt_kernel baseline
  Fallback,   ///< deterministic reference constants (no file, no timer)
};

const char* calibrationSourceName(CalibrationSource s);

/// Results of running the real kernels/containers on this host.
struct Calibration {
  /// Measured ray-marching throughput [cell crossings / s] on one host
  /// core (Burns & Christon fields, production-like parameters).
  double hostSegmentsPerSecond = 0;
  /// Measured per-message post+process cost of the wait-free pool [s].
  double waitFreePerMessage = 0;
  /// Same for the legacy locked vector (serialized mode).
  double lockedPerMessage = 0;
  CalibrationSource source = CalibrationSource::Measured;
  /// Which key/kernel produced hostSegmentsPerSecond (for provenance in
  /// emitted JSON), e.g. "simd_microbench.simd_mseg_per_s [avx512 @128^3]".
  std::string detail;
};

/// Run the real RMCRT kernel on a small problem and measure segment
/// throughput. \p patchSize controls the tested patch edge.
double measureKernelSegmentsPerSecond(int patchSize = 16,
                                      int raysPerCell = 4);

/// Run both request containers through an identical simulated-MPI
/// workload with \p threads pollers and return per-message costs.
void measureContainerCosts(double& waitFreePerMessage,
                           double& lockedPerMessage, int threads = 4,
                           int messages = 20000);

/// Measure everything.
Calibration measureHost();

/// Deterministic reference calibration: the committed AVX-512 baseline's
/// packet-march throughput rounded to a constant, no timers touched.
/// Used whenever a bench baseline is unavailable so the scaling study —
/// and its CI shape gate — stay reproducible byte for byte.
Calibration fallbackCalibration();

/// Load per-segment cost from a committed bench_rmcrt_kernel JSON
/// baseline instead of re-measuring this host. Key priority:
///   1. simd_microbench.simd_mseg_per_s   (supported == true — the SIMD
///      packed kernel at the 128^3 per-rank fixture, the production path)
///   2. simd_microbench.scalar_mseg_per_s (host without SIMD support)
///   3. sweep[threads==1].mseg_per_s      (pre-SIMD baselines)
/// Any missing file, parse error, or absent key returns
/// fallbackCalibration() with the reason recorded in .detail — the
/// result is always usable and always deterministic. Container costs are
/// not part of the kernel baseline and stay 0 (calibrate() then keeps
/// the machine-model defaults).
Calibration calibrationFromBenchJson(const std::string& path);

/// Apply a calibration to a machine model: GPU throughput = host
/// throughput * hostToGpuScale (K20X vs one Opteron core for this
/// memory-latency-bound kernel), and container costs taken as measured.
MachineModel calibrate(MachineModel m, const Calibration& c,
                       double hostToGpuScale = 12.0);

}  // namespace rmcrt::sim
