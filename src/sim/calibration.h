#pragma once

/// \file calibration.h
/// Calibrates the machine model from *measured* quantities of this very
/// repository: the real RMCRT kernel's segment throughput (per patch
/// size) and the real request containers' per-message cost. The
/// host-to-K20X scale factor converts one host core's measured kernel
/// throughput to the device's (documented substitution — absolute
/// seconds are testbed-specific; the scaling *shape* is what the model
/// must preserve).

#include <cstdint>

#include "sim/machine_model.h"
#include "sim/perf_model.h"

namespace rmcrt::sim {

/// Results of running the real kernels/containers on this host.
struct Calibration {
  /// Measured ray-marching throughput [cell crossings / s] on one host
  /// core (Burns & Christon fields, production-like parameters).
  double hostSegmentsPerSecond = 0;
  /// Measured per-message post+process cost of the wait-free pool [s].
  double waitFreePerMessage = 0;
  /// Same for the legacy locked vector (serialized mode).
  double lockedPerMessage = 0;
};

/// Run the real RMCRT kernel on a small problem and measure segment
/// throughput. \p patchSize controls the tested patch edge.
double measureKernelSegmentsPerSecond(int patchSize = 16,
                                      int raysPerCell = 4);

/// Run both request containers through an identical simulated-MPI
/// workload with \p threads pollers and return per-message costs.
void measureContainerCosts(double& waitFreePerMessage,
                           double& lockedPerMessage, int threads = 4,
                           int messages = 20000);

/// Measure everything.
Calibration measureHost();

/// Apply a calibration to a machine model: GPU throughput = host
/// throughput * hostToGpuScale (K20X vs one Opteron core for this
/// memory-latency-bound kernel), and container costs taken as measured.
MachineModel calibrate(MachineModel m, const Calibration& c,
                       double hostToGpuScale = 12.0);

}  // namespace rmcrt::sim
