#include "core/rmcrt_component.h"

#include <chrono>
#include <thread>

#include "amr/migrator.h"
#include "grid/operators.h"
#include "util/logger.h"
#include "util/thread_pool.h"
#include "util/trace_recorder.h"

namespace rmcrt::core {

using grid::CCVariable;
using grid::CellType;
using runtime::Computes;
using runtime::Requires;
using runtime::Task;
using runtime::TaskContext;
using runtime::VarType;

namespace {

/// Shared, copyable pipeline state captured by task lambdas.
struct PipelineState {
  RadiationProblem problem;
  TraceConfig trace;
  int roiHalo;
  ThreadPool* pool = nullptr;  ///< setup-supplied fallback tracing pool
  /// Per-rank coarse-record cache for the adaptive pipeline (may be
  /// null). Outlives the PipelineState that a re-registration replaces,
  /// so packed coarse records persist across radiation steps.
  std::shared_ptr<PackedLevelCache> packedCache;
  /// Spectral bands (empty = gray). Every trace task below dispatches
  /// through traceDivQ on this.
  BandModel bands;
};

/// The pool a trace task should tile on: the scheduler-provided one when
/// present (bounds node-wide parallelism), else the setup's.
ThreadPool* tracePool(const TaskContext& ctx, const PipelineState& st) {
  return ctx.pool != nullptr ? ctx.pool : st.pool;
}

/// The one dispatch point between the gray tracer and the spectral band
/// pipeline, shared by every trace task and the serial solvers. An
/// empty band model takes the exact gray path; otherwise the
/// SpectralTracer band loop runs over the SAME trace levels (one shared
/// record set). \p segmentsOut, when non-null, receives the traced
/// segment count (the measured-cost model's input).
void traceDivQ(std::vector<TraceLevel> levels, const WallProperties& walls,
               const PipelineState& st, const CellRange& cells,
               MutableFieldView<double> divQ, ThreadPool* pool,
               std::uint64_t* segmentsOut = nullptr) {
  if (st.bands.empty()) {
    Tracer tracer(std::move(levels), walls, st.trace);
    tracer.computeDivQ(cells, divQ, pool);
    if (segmentsOut != nullptr) *segmentsOut = tracer.segmentCount();
  } else {
    SpectralTracer tracer(levels, walls, st.trace, st.bands);
    tracer.computeDivQ(cells, divQ, pool);
    if (segmentsOut != nullptr) *segmentsOut = tracer.segmentCount();
  }
}

Task makeInitTask(std::shared_ptr<PipelineState> st, int fineLevel) {
  Task t("RMCRT::initProperties", fineLevel,
         [st](const TaskContext& ctx) {
           const grid::Level& level =
               ctx.grid->level(ctx.patch->levelIndex());
           auto& abskg = ctx.newDW->getModifiable<double>(
               RmcrtLabels::abskg, ctx.patch->id());
           auto& sig = ctx.newDW->getModifiable<double>(
               RmcrtLabels::sigmaT4, ctx.patch->id());
           auto& ct = ctx.newDW->getModifiable<CellType>(
               RmcrtLabels::cellType, ctx.patch->id());
           initializeProperties(level, st->problem, abskg, sig, ct);
         });
  t.addComputes(Computes{RmcrtLabels::abskg, VarType::Double, 0});
  t.addComputes(Computes{RmcrtLabels::sigmaT4, VarType::Double, 0});
  t.addComputes(Computes{RmcrtLabels::cellType, VarType::CellTypeVar, 0});
  return t;
}

Task makeCoarsenTask(int fineLevel) {
  Task t("RMCRT::coarsenProperties", /*level=*/0,
         [fineLevel](const TaskContext& ctx) {
           const IntVector rr =
               ctx.grid->level(fineLevel).refinementRatio();
           const auto& fAbs = ctx.getFineRegion<double>(
               RmcrtLabels::abskg, fineLevel);
           const auto& fSig = ctx.getFineRegion<double>(
               RmcrtLabels::sigmaT4, fineLevel);
           const auto& fCt = ctx.getFineRegion<CellType>(
               RmcrtLabels::cellType, fineLevel);
           auto& cAbs = ctx.newDW->getModifiable<double>(
               RmcrtLabels::abskg, ctx.patch->id());
           auto& cSig = ctx.newDW->getModifiable<double>(
               RmcrtLabels::sigmaT4, ctx.patch->id());
           auto& cCt = ctx.newDW->getModifiable<CellType>(
               RmcrtLabels::cellType, ctx.patch->id());
           grid::coarsenAverage(fAbs, rr, cAbs, ctx.patch->cells());
           grid::coarsenAverage(fSig, rr, cSig, ctx.patch->cells());
           grid::coarsenCellType(fCt, rr, cCt, ctx.patch->cells());
         });
  t.addRequires(Requires{RmcrtLabels::abskg, VarType::Double, fineLevel});
  t.addRequires(Requires{RmcrtLabels::sigmaT4, VarType::Double, fineLevel});
  t.addRequires(
      Requires{RmcrtLabels::cellType, VarType::CellTypeVar, fineLevel});
  t.addComputes(Computes{RmcrtLabels::abskg, VarType::Double, 0});
  t.addComputes(Computes{RmcrtLabels::sigmaT4, VarType::Double, 0});
  t.addComputes(Computes{RmcrtLabels::cellType, VarType::CellTypeVar, 0});
  return t;
}

/// Coarse radiation properties on an adaptive grid: sample the analytic
/// problem over the whole coarse patch (so unrefined regions carry real
/// coarse data, not zeros), then overlay averaged fine data wherever
/// fine patches cover. Fine patch boxes are rr-aligned in coarse space
/// (the clusterer works on a coarse-cell lattice), so the overlay
/// regions coarsen exactly.
Task makeUpdateCoarseTask(std::shared_ptr<PipelineState> st, int fineLevel) {
  Task t("RMCRT::updateCoarseProperties", /*level=*/0,
         [st, fineLevel](const TaskContext& ctx) {
           const grid::Level& coarse = ctx.grid->level(0);
           const grid::Level& fine = ctx.grid->level(fineLevel);
           const IntVector rr = fine.refinementRatio();
           auto& cAbs = ctx.newDW->getModifiable<double>(
               RmcrtLabels::abskg, ctx.patch->id());
           auto& cSig = ctx.newDW->getModifiable<double>(
               RmcrtLabels::sigmaT4, ctx.patch->id());
           auto& cCt = ctx.newDW->getModifiable<CellType>(
               RmcrtLabels::cellType, ctx.patch->id());
           initializeProperties(coarse, st->problem, cAbs, cSig, cCt);

           const auto& fAbs = ctx.getFineRegion<double>(
               RmcrtLabels::abskg, fineLevel);
           const auto& fSig = ctx.getFineRegion<double>(
               RmcrtLabels::sigmaT4, fineLevel);
           const auto& fCt = ctx.getFineRegion<CellType>(
               RmcrtLabels::cellType, fineLevel);
           const CellRange refined = ctx.patch->cells().refined(rr);
           for (const auto& o : fine.patchesIntersecting(refined)) {
             const CellRange cRegion = o.region.coarsened(rr);
             grid::coarsenAverage(fAbs, rr, cAbs, cRegion);
             grid::coarsenAverage(fSig, rr, cSig, cRegion);
             grid::coarsenCellType(fCt, rr, cCt, cRegion);
           }
         });
  t.addRequires(Requires{RmcrtLabels::abskg, VarType::Double, fineLevel});
  t.addRequires(Requires{RmcrtLabels::sigmaT4, VarType::Double, fineLevel});
  t.addRequires(
      Requires{RmcrtLabels::cellType, VarType::CellTypeVar, fineLevel});
  t.addComputes(Computes{RmcrtLabels::abskg, VarType::Double, 0});
  t.addComputes(Computes{RmcrtLabels::sigmaT4, VarType::Double, 0});
  t.addComputes(Computes{RmcrtLabels::cellType, VarType::CellTypeVar, 0});
  return t;
}

/// Assemble the fine-level (ROI) and coarse-level (whole domain) trace
/// inputs from the staged DataWarehouse regions.
std::vector<TraceLevel> buildTraceLevels(const TaskContext& ctx,
                                         int fineLevel, int roiHalo,
                                         bool twoLevel) {
  std::vector<TraceLevel> levels;
  const grid::Level& fine = ctx.grid->level(fineLevel);

  const auto& fAbs = ctx.getGhosted<double>(RmcrtLabels::abskg, roiHalo);
  const auto& fSig = ctx.getGhosted<double>(RmcrtLabels::sigmaT4, roiHalo);
  const auto& fCt = ctx.getGhosted<CellType>(RmcrtLabels::cellType, roiHalo);
  TraceLevel fineTL;
  fineTL.geom = LevelGeom::from(fine);
  fineTL.fields = RadiationFieldsView{
      FieldView<double>::fromHost(fAbs), FieldView<double>::fromHost(fSig),
      FieldView<CellType>::fromHost(fCt)};
  fineTL.allowed = fAbs.window();
  levels.push_back(fineTL);

  if (twoLevel) {
    const grid::Level& coarse = ctx.grid->level(0);
    const auto& cAbs = ctx.getWholeLevel<double>(RmcrtLabels::abskg, 0);
    const auto& cSig = ctx.getWholeLevel<double>(RmcrtLabels::sigmaT4, 0);
    const auto& cCt = ctx.getWholeLevel<CellType>(RmcrtLabels::cellType, 0);
    TraceLevel coarseTL;
    coarseTL.geom = LevelGeom::from(coarse);
    coarseTL.fields = RadiationFieldsView{
        FieldView<double>::fromHost(cAbs), FieldView<double>::fromHost(cSig),
        FieldView<CellType>::fromHost(cCt)};
    coarseTL.allowed = coarse.cells();
    levels.push_back(coarseTL);
  }
  return levels;
}

Task makeCpuTraceTask(std::shared_ptr<PipelineState> st, int fineLevel,
                      bool twoLevel) {
  Task t("RMCRT::rayTrace", fineLevel, [st, fineLevel,
                                        twoLevel](const TaskContext& ctx) {
    auto levels = buildTraceLevels(ctx, fineLevel, st->roiHalo, twoLevel);
    const WallProperties walls{st->problem.wallSigmaT4OverPi,
                               st->problem.wallEmissivity};
    auto& divQ =
        ctx.newDW->getModifiable<double>(RmcrtLabels::divQ, ctx.patch->id());
    traceDivQ(std::move(levels), walls, *st, ctx.patch->cells(),
              MutableFieldView<double>::fromHost(divQ), tracePool(ctx, *st));
  });
  t.addRequires(Requires{RmcrtLabels::abskg, VarType::Double, fineLevel,
                         st->roiHalo, false});
  t.addRequires(Requires{RmcrtLabels::sigmaT4, VarType::Double, fineLevel,
                         st->roiHalo, false});
  t.addRequires(Requires{RmcrtLabels::cellType, VarType::CellTypeVar,
                         fineLevel, st->roiHalo, false});
  if (twoLevel) {
    t.addRequires(
        Requires{RmcrtLabels::abskg, VarType::Double, 0, 0, true});
    t.addRequires(
        Requires{RmcrtLabels::sigmaT4, VarType::Double, 0, 0, true});
    t.addRequires(
        Requires{RmcrtLabels::cellType, VarType::CellTypeVar, 0, 0, true});
  }
  t.addComputes(Computes{RmcrtLabels::divQ, VarType::Double, 0});
  return t;
}

/// Adaptive trace: like the two-level CPU trace, but the staged ROI
/// window may contain cells no fine patch covers (the fine level is
/// irregular). Those cells arrive zero-filled from staging; prolong the
/// coarse radiation properties into them before marching so rays never
/// cross transparent space. The in-place fill is safe — task actions run
/// sequentially on the scheduler thread and the fill is deterministic
/// and idempotent — and each patch's traced-segment count feeds the
/// measured-cost model when one is supplied.
Task makeAdaptiveTraceTask(std::shared_ptr<PipelineState> st, int fineLevel,
                           amr::CostModel* costs) {
  Task t("RMCRT::rayTraceAdaptive", fineLevel,
         [st, fineLevel, costs](const TaskContext& ctx) {
           const grid::Level& fine = ctx.grid->level(fineLevel);
           const CellRange roi =
               ctx.patch->ghostWindow(st->roiHalo).intersect(fine.cells());
           const auto& cAbs =
               ctx.getWholeLevel<double>(RmcrtLabels::abskg, 0);
           const auto& cSig =
               ctx.getWholeLevel<double>(RmcrtLabels::sigmaT4, 0);
           const auto& cCt =
               ctx.getWholeLevel<CellType>(RmcrtLabels::cellType, 0);
           auto& fAbs = ctx.newDW->getRegionModifiable<double>(
               RmcrtLabels::abskg, fineLevel, roi);
           auto& fSig = ctx.newDW->getRegionModifiable<double>(
               RmcrtLabels::sigmaT4, fineLevel, roi);
           auto& fCt = ctx.newDW->getRegionModifiable<CellType>(
               RmcrtLabels::cellType, fineLevel, roi);
           amr::fillUncoveredFromCoarser(fAbs, roi, fine, cAbs);
           amr::fillUncoveredFromCoarser(fSig, roi, fine, cSig);
           amr::fillUncoveredFromCoarser(fCt, roi, fine, cCt);

           auto levels = buildTraceLevels(ctx, fineLevel, st->roiHalo,
                                          /*twoLevel=*/true);
           if (st->packedCache) {
             // Reuse the rank's fused coarse records across steps: only
             // regions whose fine coverage changed (regrid-migrated
             // patches) re-fuse; everything else is value-identical
             // because the analytic sampler is step-invariant.
             const IntVector rr = fine.refinementRatio();
             std::vector<CellRange> coverage;
             coverage.reserve(fine.patches().size());
             for (const grid::Patch& p : fine.patches())
               coverage.push_back(p.cells().coarsened(rr));
             levels[1].packed =
                 st->packedCache->refresh(levels[1].fields, coverage);
           }
           const WallProperties walls{st->problem.wallSigmaT4OverPi,
                                      st->problem.wallEmissivity};
           auto& divQ = ctx.newDW->getModifiable<double>(
               RmcrtLabels::divQ, ctx.patch->id());
           std::uint64_t segments = 0;
           traceDivQ(std::move(levels), walls, *st, ctx.patch->cells(),
                     MutableFieldView<double>::fromHost(divQ),
                     tracePool(ctx, *st), &segments);
           if (costs)
             costs->record(ctx.patch->id(), static_cast<double>(segments));
         });
  t.addRequires(Requires{RmcrtLabels::abskg, VarType::Double, fineLevel,
                         st->roiHalo, false});
  t.addRequires(Requires{RmcrtLabels::sigmaT4, VarType::Double, fineLevel,
                         st->roiHalo, false});
  t.addRequires(Requires{RmcrtLabels::cellType, VarType::CellTypeVar,
                         fineLevel, st->roiHalo, false});
  t.addRequires(Requires{RmcrtLabels::abskg, VarType::Double, 0, 0, true});
  t.addRequires(Requires{RmcrtLabels::sigmaT4, VarType::Double, 0, 0, true});
  t.addRequires(
      Requires{RmcrtLabels::cellType, VarType::CellTypeVar, 0, 0, true});
  t.addComputes(Computes{RmcrtLabels::divQ, VarType::Double, 0});
  return t;
}

/// Single-level trace: the whole fine level is replicated on every rank
/// ("infinite ghost cells" on the only level).
Task makeSingleLevelTraceTask(std::shared_ptr<PipelineState> st,
                              int fineLevel) {
  Task t("RMCRT::rayTraceSingleLevel", fineLevel,
         [st, fineLevel](const TaskContext& ctx) {
           const grid::Level& fine = ctx.grid->level(fineLevel);
           const auto& abs =
               ctx.getWholeLevel<double>(RmcrtLabels::abskg, fineLevel);
           const auto& sig =
               ctx.getWholeLevel<double>(RmcrtLabels::sigmaT4, fineLevel);
           const auto& ct = ctx.getWholeLevel<CellType>(
               RmcrtLabels::cellType, fineLevel);
           TraceLevel tl;
           tl.geom = LevelGeom::from(fine);
           tl.fields = RadiationFieldsView{
               FieldView<double>::fromHost(abs),
               FieldView<double>::fromHost(sig),
               FieldView<CellType>::fromHost(ct)};
           tl.allowed = fine.cells();
           const WallProperties walls{st->problem.wallSigmaT4OverPi,
                                      st->problem.wallEmissivity};
           auto& divQ = ctx.newDW->getModifiable<double>(
               RmcrtLabels::divQ, ctx.patch->id());
           traceDivQ({tl}, walls, *st, ctx.patch->cells(),
                     MutableFieldView<double>::fromHost(divQ),
                     tracePool(ctx, *st));
         });
  t.addRequires(
      Requires{RmcrtLabels::abskg, VarType::Double, fineLevel, 0, true});
  t.addRequires(
      Requires{RmcrtLabels::sigmaT4, VarType::Double, fineLevel, 0, true});
  t.addRequires(Requires{RmcrtLabels::cellType, VarType::CellTypeVar,
                         fineLevel, 0, true});
  t.addComputes(Computes{RmcrtLabels::divQ, VarType::Double, 0});
  return t;
}

/// One attempt at the device path of the GPU trace task. Throws
/// DeviceOutOfMemory when the device cannot hold the inputs; the caller
/// owns recovery. The per-attempt stream is a local, so stack unwinding
/// drains it before the caller frees any device memory it references.
void runGpuTraceAttempt(const TaskContext& ctx, const PipelineState& st,
                        int fineLevel, gpu::GpuDataWarehouse* gdw) {
  RMCRT_TRACE_SPAN("gpu", "trace_attempt");
  const int pid = ctx.patch->id();

  // Fuse the property triplets into PackedCell records on the host
  // BEFORE creating the stream: stack unwinding then drains the stream
  // before these buffers die, so in-flight H2D copies never read freed
  // memory.
  const auto& fAbs = ctx.getGhosted<double>(RmcrtLabels::abskg, st.roiHalo);
  const auto& fSig = ctx.getGhosted<double>(RmcrtLabels::sigmaT4, st.roiHalo);
  const auto& fCt =
      ctx.getGhosted<CellType>(RmcrtLabels::cellType, st.roiHalo);
  const PackedLevelField finePacked(
      RadiationFieldsView{FieldView<double>::fromHost(fAbs),
                          FieldView<double>::fromHost(fSig),
                          FieldView<CellType>::fromHost(fCt)});
  const auto& cAbs = ctx.getWholeLevel<double>(RmcrtLabels::abskg, 0);
  const auto& cSig = ctx.getWholeLevel<double>(RmcrtLabels::sigmaT4, 0);
  const auto& cCt = ctx.getWholeLevel<CellType>(RmcrtLabels::cellType, 0);
  const PackedLevelField coarsePacked(
      RadiationFieldsView{FieldView<double>::fromHost(cAbs),
                          FieldView<double>::fromHost(cSig),
                          FieldView<CellType>::fromHost(cCt)});

  auto stream = gdw->device().createStream();

  // H2D: ONE fused record array for this patch's ROI (private) ...
  gpu::DeviceVar& dPackedF =
      gdw->putPatchVarRaw(RmcrtLabels::packedRad, pid, finePacked.data(),
                          finePacked.window(), sizeof(PackedCell),
                          stream.get());

  // ... and ONE fused coarse copy through the level database, shared by
  // every patch task (paper Section III-C) — a single transfer where the
  // unpacked layout staged three.
  gpu::DeviceVar& dPackedC = gdw->getOrUploadLevelVarRaw(
      RmcrtLabels::packedRad, 0, coarsePacked.data(), coarsePacked.window(),
      sizeof(PackedCell), pid, stream.get());

  gpu::DeviceVar& dDivQ = gdw->allocatePatchVar(
      RmcrtLabels::divQ, pid, ctx.patch->cells(), sizeof(double));

  // Kernel: the same packed marching code, over device-resident records.
  const LevelGeom fineGeom = LevelGeom::from(ctx.grid->level(fineLevel));
  const LevelGeom coarseGeom = LevelGeom::from(ctx.grid->level(0));
  const CellRange patchCells = ctx.patch->cells();
  const WallProperties walls{st.problem.wallSigmaT4OverPi,
                             st.problem.wallEmissivity};
  const TraceConfig cfg = st.trace;
  const BandModel bands = st.bands;
  stream->enqueueKernel([=, &dPackedF, &dPackedC, &dDivQ] {
    // Packed-only levels: `fields` stays invalid, so the Tracer neither
    // re-packs nor falls back to the legacy march.
    TraceLevel fineTL{fineGeom, RadiationFieldsView{}, dPackedF.window,
                      PackedFieldView::fromDevice(dPackedF)};
    TraceLevel coarseTL{coarseGeom, RadiationFieldsView{}, coarseGeom.cells,
                        PackedFieldView::fromDevice(dPackedC)};
    gpu::DeviceVar out = dDivQ;
    // Serial inside the simulated kernel: the device executor's SM
    // workers are the parallelism on this path.
    if (bands.empty()) {
      Tracer tracer({fineTL, coarseTL}, walls, cfg);
      tracer.computeDivQ(patchCells,
                         MutableFieldView<double>::fromDevice(out));
    } else {
      // The band loop marches the SAME device-resident records for every
      // band (kappa scaling lives in the march), so the single H2D
      // upload above serves the whole spectrum.
      SpectralTracer tracer({fineTL, coarseTL}, walls, cfg, bands);
      tracer.computeDivQ(patchCells,
                         MutableFieldView<double>::fromDevice(out));
    }
  });

  // D2H: the result.
  auto& divQ = ctx.newDW->getModifiable<double>(RmcrtLabels::divQ, pid);
  gdw->fetchPatchVar(RmcrtLabels::divQ, pid, divQ, stream.get());
  {
    RMCRT_TRACE_SPAN("gpu", "stream_sync_wait");
    stream->synchronize();
  }

  // Free the per-patch device variables; the level database stays
  // resident for the next patch task.
  gdw->removePatchVar(RmcrtLabels::packedRad, pid);
  gdw->removePatchVar(RmcrtLabels::divQ, pid);
}

/// Free any per-patch device variables a failed attempt left behind.
void releasePatchDeviceVars(gpu::GpuDataWarehouse* gdw, int pid) {
  gdw->removePatchVar(RmcrtLabels::packedRad, pid);
  gdw->removePatchVar(RmcrtLabels::divQ, pid);
}

Task makeGpuTraceTask(std::shared_ptr<PipelineState> st, int fineLevel,
                      gpu::GpuDataWarehouse* gdw) {
  Task t("RMCRT::rayTraceGPU", fineLevel, [st, fineLevel,
                                           gdw](const TaskContext& ctx) {
    // Graceful degradation ladder (DESIGN.md "Failure model"): retry the
    // device path after evicting resident data, then fall back to the CPU
    // tracer over the identical staged inputs — bitwise the same divQ.
    constexpr int kMaxAttempts = 3;
    const int pid = ctx.patch->id();
    for (int attempt = 1; attempt <= kMaxAttempts; ++attempt) {
      try {
        runGpuTraceAttempt(ctx, *st, fineLevel, gdw);
        return;
      } catch (const gpu::DeviceOutOfMemory& e) {
        RMCRT_TRACE_INSTANT("gpu", "oom_retry");
        // The attempt's stream drained during unwinding, so freeing the
        // device memory its copies referenced is safe now.
        releasePatchDeviceVars(gdw, pid);
        if (attempt == kMaxAttempts) {
          RMCRT_WARN("GPU trace patch " << pid << ": " << e.what()
                                        << "; falling back to CPU tracer");
          break;
        }
        const std::size_t freed = gdw->evictLevelVars();
        RMCRT_WARN("GPU trace patch " << pid << " attempt " << attempt
                                      << ": " << e.what() << "; evicted "
                                      << freed << " level-db bytes, retrying");
        std::this_thread::sleep_for(std::chrono::milliseconds(1 << attempt));
      }
    }

    gdw->device().noteCpuFallback();
    auto levels = buildTraceLevels(ctx, fineLevel, st->roiHalo,
                                   /*twoLevel=*/true);
    const WallProperties walls{st->problem.wallSigmaT4OverPi,
                               st->problem.wallEmissivity};
    auto& divQ =
        ctx.newDW->getModifiable<double>(RmcrtLabels::divQ, pid);
    traceDivQ(std::move(levels), walls, *st, ctx.patch->cells(),
              MutableFieldView<double>::fromHost(divQ), tracePool(ctx, *st));
  });
  t.addRequires(Requires{RmcrtLabels::abskg, VarType::Double, fineLevel,
                         st->roiHalo, false});
  t.addRequires(Requires{RmcrtLabels::sigmaT4, VarType::Double, fineLevel,
                         st->roiHalo, false});
  t.addRequires(Requires{RmcrtLabels::cellType, VarType::CellTypeVar,
                         fineLevel, st->roiHalo, false});
  t.addRequires(Requires{RmcrtLabels::abskg, VarType::Double, 0, 0, true});
  t.addRequires(Requires{RmcrtLabels::sigmaT4, VarType::Double, 0, 0, true});
  t.addRequires(
      Requires{RmcrtLabels::cellType, VarType::CellTypeVar, 0, 0, true});
  t.addComputes(Computes{RmcrtLabels::divQ, VarType::Double, 0});
  return t;
}

}  // namespace

void RmcrtComponent::registerTwoLevelPipeline(runtime::Scheduler& sched,
                                              const RmcrtSetup& setup) {
  auto st = std::make_shared<PipelineState>(
      PipelineState{setup.problem, setup.trace, setup.roiHalo, setup.pool,
                    setup.packedCache, setup.bands});
  const int fineLevel = sched.grid().numLevels() - 1;
  sched.addTask(makeInitTask(st, fineLevel));
  sched.addTask(makeCoarsenTask(fineLevel));
  sched.addTask(makeCpuTraceTask(st, fineLevel, /*twoLevel=*/true));
}

void RmcrtComponent::registerAdaptivePipeline(runtime::Scheduler& sched,
                                              const RmcrtSetup& setup,
                                              amr::CostModel* costs) {
  auto st = std::make_shared<PipelineState>(
      PipelineState{setup.problem, setup.trace, setup.roiHalo, setup.pool,
                    setup.packedCache, setup.bands});
  const int fineLevel = sched.grid().numLevels() - 1;
  sched.addTask(makeInitTask(st, fineLevel));
  sched.addTask(makeUpdateCoarseTask(st, fineLevel));
  sched.addTask(makeAdaptiveTraceTask(st, fineLevel, costs));
}

amr::AmrEngine::PropertySampler RmcrtComponent::makePropertySampler(
    RadiationProblem problem) {
  return [problem = std::move(problem)](
             const grid::Level& level, grid::CCVariable<double>& abskg,
             grid::CCVariable<double>& sigmaT4) {
    grid::CCVariable<CellType> ct(abskg.window(), CellType::Flow);
    initializeProperties(level, problem, abskg, sigmaT4, ct);
  };
}

void RmcrtComponent::registerSingleLevelPipeline(runtime::Scheduler& sched,
                                                 const RmcrtSetup& setup) {
  auto st = std::make_shared<PipelineState>(
      PipelineState{setup.problem, setup.trace, setup.roiHalo, setup.pool,
                    setup.packedCache, setup.bands});
  const int fineLevel = sched.grid().numLevels() - 1;
  sched.addTask(makeInitTask(st, fineLevel));
  sched.addTask(makeSingleLevelTraceTask(st, fineLevel));
}

void RmcrtComponent::registerTwoLevelGpuPipeline(
    runtime::Scheduler& sched, const RmcrtSetup& setup,
    gpu::GpuDataWarehouse& gdw) {
  auto st = std::make_shared<PipelineState>(
      PipelineState{setup.problem, setup.trace, setup.roiHalo, setup.pool,
                    setup.packedCache, setup.bands});
  const int fineLevel = sched.grid().numLevels() - 1;
  sched.addTask(makeInitTask(st, fineLevel));
  sched.addTask(makeCoarsenTask(fineLevel));
  sched.addTask(makeGpuTraceTask(st, fineLevel, &gdw));
}

grid::CCVariable<double> RmcrtComponent::solveSerialSingleLevel(
    const grid::Grid& grid, const RmcrtSetup& setup) {
  const grid::Level& fine = grid.fineLevel();
  grid::CCVariable<double> abskg(fine.cells(), 0.0);
  grid::CCVariable<double> sig(fine.cells(), 0.0);
  grid::CCVariable<CellType> ct(fine.cells(), CellType::Flow);
  initializeProperties(fine, setup.problem, abskg, sig, ct);

  TraceLevel tl{LevelGeom::from(fine),
                RadiationFieldsView{FieldView<double>::fromHost(abskg),
                                    FieldView<double>::fromHost(sig),
                                    FieldView<CellType>::fromHost(ct)},
                fine.cells()};
  const WallProperties walls{setup.problem.wallSigmaT4OverPi,
                             setup.problem.wallEmissivity};
  grid::CCVariable<double> divQ(fine.cells(), 0.0);
  const PipelineState st{setup.problem, setup.trace, setup.roiHalo,
                         setup.pool, setup.packedCache, setup.bands};
  traceDivQ({tl}, walls, st, fine.cells(),
            MutableFieldView<double>::fromHost(divQ), setup.pool);
  return divQ;
}

grid::CCVariable<double> RmcrtComponent::solveSerialTwoLevel(
    const grid::Grid& grid, const RmcrtSetup& setup) {
  const grid::Level& fine = grid.fineLevel();
  const grid::Level& coarse = grid.coarseLevel();
  const IntVector rr = fine.refinementRatio();

  grid::CCVariable<double> fAbs(fine.cells(), 0.0), fSig(fine.cells(), 0.0);
  grid::CCVariable<CellType> fCt(fine.cells(), CellType::Flow);
  initializeProperties(fine, setup.problem, fAbs, fSig, fCt);

  grid::CCVariable<double> cAbs(coarse.cells(), 0.0),
      cSig(coarse.cells(), 0.0);
  grid::CCVariable<CellType> cCt(coarse.cells(), CellType::Flow);
  grid::coarsenAverage(fAbs, rr, cAbs, coarse.cells());
  grid::coarsenAverage(fSig, rr, cSig, coarse.cells());
  grid::coarsenCellType(fCt, rr, cCt, coarse.cells());

  const WallProperties walls{setup.problem.wallSigmaT4OverPi,
                             setup.problem.wallEmissivity};
  grid::CCVariable<double> divQ(fine.cells(), 0.0);
  const PipelineState st{setup.problem, setup.trace, setup.roiHalo,
                         setup.pool, setup.packedCache, setup.bands};

  // Trace per fine patch with its ROI, as the distributed pipeline would.
  for (const grid::Patch& p : fine.patches()) {
    const CellRange roi =
        p.ghostWindow(setup.roiHalo).intersect(fine.cells());
    TraceLevel fineTL{LevelGeom::from(fine),
                      RadiationFieldsView{
                          FieldView<double>::fromHost(fAbs),
                          FieldView<double>::fromHost(fSig),
                          FieldView<CellType>::fromHost(fCt)},
                      roi};
    TraceLevel coarseTL{LevelGeom::from(coarse),
                        RadiationFieldsView{
                            FieldView<double>::fromHost(cAbs),
                            FieldView<double>::fromHost(cSig),
                            FieldView<CellType>::fromHost(cCt)},
                        coarse.cells()};
    traceDivQ({fineTL, coarseTL}, walls, st, p.cells(),
              MutableFieldView<double>::fromHost(divQ), setup.pool);
  }
  return divQ;
}

}  // namespace rmcrt::core
