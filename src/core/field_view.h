#pragma once

/// \file field_view.h
/// A non-owning, trivially-copyable view of a cell-centered field — the
/// common data layout the ray-marching kernel reads whether it runs on the
/// host (CPU tracer) or inside the simulated GPU (DeviceVar storage). One
/// kernel implementation serves both paths, mirroring how Uintah's CUDA
/// kernel mirrors the CPU ray tracer.

#include <cassert>
#include <cstdint>

#include "gpu/gpu_data_warehouse.h"
#include "grid/variable.h"
#include "util/range.h"

namespace rmcrt::core {

template <typename T>
class FieldView {
 public:
  FieldView() = default;
  FieldView(const T* data, const CellRange& window)
      : m_data(data), m_window(window), m_size(window.size()) {}

  static FieldView fromHost(const grid::CCVariable<T>& v) {
    return FieldView(v.data(), v.window());
  }
  static FieldView fromDevice(const gpu::DeviceVar& dv) {
    assert(dv.elemSize == sizeof(T));
    return FieldView(static_cast<const T*>(dv.devPtr), dv.window);
  }

  const CellRange& window() const { return m_window; }
  bool valid() const { return m_data != nullptr; }

  const T& operator[](const IntVector& c) const {
    assert(m_window.contains(c));
    const IntVector rel = c - m_window.low();
    return m_data[rel.x() +
                  static_cast<std::int64_t>(m_size.x()) *
                      (rel.y() +
                       static_cast<std::int64_t>(m_size.y()) * rel.z())];
  }

 private:
  const T* m_data = nullptr;
  CellRange m_window;
  IntVector m_size;
};

/// Mutable counterpart for kernel outputs (divQ).
template <typename T>
class MutableFieldView {
 public:
  MutableFieldView() = default;
  MutableFieldView(T* data, const CellRange& window)
      : m_data(data), m_window(window), m_size(window.size()) {}

  static MutableFieldView fromHost(grid::CCVariable<T>& v) {
    return MutableFieldView(v.data(), v.window());
  }
  static MutableFieldView fromDevice(gpu::DeviceVar& dv) {
    assert(dv.elemSize == sizeof(T));
    return MutableFieldView(static_cast<T*>(dv.devPtr), dv.window);
  }

  const CellRange& window() const { return m_window; }

  T& operator[](const IntVector& c) const {
    assert(m_window.contains(c));
    const IntVector rel = c - m_window.low();
    return m_data[rel.x() +
                  static_cast<std::int64_t>(m_size.x()) *
                      (rel.y() +
                       static_cast<std::int64_t>(m_size.y()) * rel.z())];
  }

 private:
  T* m_data = nullptr;
  CellRange m_window;
  IntVector m_size;
};

/// The bundle of radiative-property views the tracer needs on one level:
/// absorption coefficient, sigmaT4/pi (emissive source), and cell type.
struct RadiationFieldsView {
  FieldView<double> abskg;
  FieldView<double> sigmaT4OverPi;
  FieldView<grid::CellType> cellType;
};

}  // namespace rmcrt::core
