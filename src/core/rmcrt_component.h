#pragma once

/// \file rmcrt_component.h
/// The RMCRT simulation component: registers the Uintah-style task
/// pipeline on a per-rank Scheduler. Mirrors the paper's production
/// structure (Sections III-B/C):
///
///   initProperties (fine level)   — sample kappa/sigmaT4/cellType from
///                                   the problem definition (stands in for
///                                   the ARCHES CFD state)
///   coarsenProperties (coarse)    — project fine properties to the
///                                   radiation mesh (requires remote fine
///                                   regions)
///   rayTrace (fine)               — requires fine properties with a halo
///                                   (the ROI) plus coarse properties with
///                                   the whole-level "infinite ghost
///                                   cells" requirement; computes divQ
///
/// Both a CPU trace task and a simulated-GPU trace task are provided; the
/// GPU variant stages data through the GpuDataWarehouse (shared level
/// database) and runs the kernel on device streams — the paper's
/// Section III-C data path.

#include <memory>

#include "amr/amr_engine.h"
#include "core/problems.h"
#include "core/ray_tracer.h"
#include "core/spectral.h"
#include "gpu/gpu_data_warehouse.h"
#include "runtime/scheduler.h"

namespace rmcrt::core {

/// Variable labels used by the pipeline.
struct RmcrtLabels {
  static constexpr const char* abskg = "abskg";
  static constexpr const char* sigmaT4 = "sigmaT4OverPi";
  static constexpr const char* cellType = "cellType";
  static constexpr const char* divQ = "divQ";
  /// Fused PackedCell records staged for the GPU kernel (one per-patch
  /// ROI array plus one shared coarse copy in the level database). The
  /// "@L<i>"-tagged level-db key means invalidateLevel evicts it on
  /// regrid like any other coarse property.
  static constexpr const char* packedRad = "packedRadProps";
};

/// Pipeline configuration.
struct RmcrtSetup {
  RadiationProblem problem;
  TraceConfig trace;
  /// Fine-mesh halo (cells) around each patch forming the ray-tracing
  /// region of interest; beyond it rays march the coarse level.
  int roiHalo = 4;
  /// Optional worker pool for tiled CPU tracing (non-owning; nullptr =
  /// serial). Scheduler-driven pipelines prefer the pool the scheduler
  /// hands tasks through TaskContext::pool; this one serves the serial
  /// solve* entry points and schedulers configured without a pool.
  ThreadPool* pool = nullptr;
  /// Optional per-rank cache of the coarse level's fused PackedCell
  /// records for the adaptive pipeline. With it, each radiation step
  /// repacks only coarse regions whose fine coverage changed since the
  /// previous step (the regrid-migrated patches) instead of re-fusing the
  /// whole level per Tracer. One cache per rank — never share across
  /// concurrently executing schedulers — and only valid while coarse
  /// properties outside fine coverage are step-invariant (true for the
  /// analytic samplers; see PackedLevelCache). nullptr: pack per Tracer.
  std::shared_ptr<PackedLevelCache> packedCache;
  /// Spectral band model. Empty (default): the gray solver, exactly as
  /// before. Non-empty: every trace task runs the SpectralTracer band
  /// loop — all bands sharing one PackedCell record set (and, on the
  /// GPU path, one device upload) — accumulating per-band divQ. A
  /// single {weight=1, kappaScale=1} band is bitwise the gray solver.
  BandModel bands;
};

/// Task-registration entry points. Call the same function on every rank's
/// scheduler, then executeTimestep() concurrently.
class RmcrtComponent {
 public:
  /// The paper's 2-level algorithm (coarse = level 0, fine = level 1).
  static void registerTwoLevelPipeline(runtime::Scheduler& sched,
                                       const RmcrtSetup& setup);

  /// The original single-level algorithm: the fine level is replicated on
  /// every rank (O(N_total^2) communication growth) — the baseline the
  /// AMR scheme improves on (paper Section III-C).
  static void registerSingleLevelPipeline(runtime::Scheduler& sched,
                                          const RmcrtSetup& setup);

  /// The adaptive (AMR) variant of the 2-level pipeline, for grids whose
  /// fine level is irregular (Grid::makeAdaptive): fine properties
  /// initialize per fine patch as usual; the coarse radiation mesh is
  /// sampled analytically everywhere and then overlaid with averaged
  /// fine data wherever fine patches cover; the trace task prolongs
  /// coarse properties into the uncovered parts of each ROI window
  /// before marching, so rays crossing unrefined space see
  /// coarse-accurate (never zero) radiative properties. When \p costs is
  /// given, each patch's traced-segment count is recorded into it — the
  /// AmrEngine's measured-cost input for dynamic rebalancing. Also valid
  /// on uniformly tiled grids (the fills degenerate to no-ops).
  static void registerAdaptivePipeline(runtime::Scheduler& sched,
                                       const RmcrtSetup& setup,
                                       amr::CostModel* costs = nullptr);

  /// The AmrEngine-facing property sampler backed by the analytic
  /// problem definition (samples abskg/sigmaT4 at cell centers) — wire
  /// it via AmrEngine::setPropertySampler so the error estimator flags
  /// from the same fields the pipeline traces.
  static amr::AmrEngine::PropertySampler makePropertySampler(
      RadiationProblem problem);

  /// 2-level pipeline whose trace task runs on the simulated GPU: fine
  /// patch data H2D per task, coarse properties through the shared level
  /// database, divQ D2H. \p gdw must outlive the scheduler run.
  static void registerTwoLevelGpuPipeline(runtime::Scheduler& sched,
                                          const RmcrtSetup& setup,
                                          gpu::GpuDataWarehouse& gdw);

  /// Serial convenience: solve divQ on the fine level of \p grid directly
  /// (no scheduler, single rank) — used by accuracy tests and examples.
  static grid::CCVariable<double> solveSerialSingleLevel(
      const grid::Grid& grid, const RmcrtSetup& setup);
  static grid::CCVariable<double> solveSerialTwoLevel(
      const grid::Grid& grid, const RmcrtSetup& setup);
};

}  // namespace rmcrt::core
